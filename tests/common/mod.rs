//! Shared support for the integration suites: pool/table factories with
//! the small geometries the tests use (so splits, stashes and SMOs fire
//! at test scale) and temp-file helpers for the file-backed pool.
//!
//! Every suite pulls this in with `mod common;` — keep additions here
//! instead of re-pasting setup into individual suites.
//!
//! Each test binary compiles its own copy of this module and uses only a
//! subset of it, so the blanket `dead_code` allow is required; don't add
//! helpers no suite calls.
#![allow(dead_code)]

use std::path::PathBuf;
use std::sync::Arc;

use dash_repro::{
    Cceh, CcehConfig, DashConfig, DashEh, DashLh, Key, LevelConfig, LevelHash, PmHashTable,
    PmemPool, PoolConfig,
};

/// A shadow-mode pool config of `mb` MiB: only flushed cachelines survive
/// `crash_image()`, so missing-flush bugs surface as lost writes.
pub fn shadow_cfg(mb: usize) -> PoolConfig {
    PoolConfig { size: mb << 20, shadow: true, ..Default::default() }
}

/// Small Dash-EH geometry: 4-bucket segments, depth-1 directory, so a few
/// thousand inserts already trigger segment splits and directory doubling.
pub fn small_eh_cfg() -> DashConfig {
    DashConfig { bucket_bits: 2, initial_depth: 1, ..Default::default() }
}

/// Small Dash-LH geometry: 4-bucket segments, 2-entry first array,
/// stride 2, so hybrid expansion happens at test scale.
pub fn small_lh_cfg() -> DashConfig {
    DashConfig { bucket_bits: 2, lh_first_array: 2, lh_stride: 2, ..Default::default() }
}

/// Fresh heap pool (`mb` MiB) + Dash-EH with the given config.
pub fn eh_table(mb: usize, cfg: DashConfig) -> Arc<DashEh<u64>> {
    let pool = PmemPool::create(PoolConfig::with_size(mb << 20)).unwrap();
    Arc::new(DashEh::create(pool, cfg).unwrap())
}

/// Fresh heap pool (`mb` MiB) + Dash-LH with the given config.
pub fn lh_table(mb: usize, cfg: DashConfig) -> Arc<DashLh<u64>> {
    let pool = PmemPool::create(PoolConfig::with_size(mb << 20)).unwrap();
    Arc::new(DashLh::create(pool, cfg).unwrap())
}

/// One of each of the four tables, each on its own fresh pool of
/// `pool_mb` MiB, behind the shared trait — generic over the key mode
/// (inline `u64` or pooled `VarKey`).
pub fn all_tables_generic<K: Key + 'static>(pool_mb: usize) -> Vec<Box<dyn PmHashTable<K>>> {
    let mk_pool = || PmemPool::create(PoolConfig::with_size(pool_mb << 20)).unwrap();
    vec![
        Box::new(DashEh::<K>::create(mk_pool(), DashConfig::default()).unwrap()),
        Box::new(DashLh::<K>::create(mk_pool(), DashConfig::default()).unwrap()),
        Box::new(Cceh::<K>::create(mk_pool(), CcehConfig::default()).unwrap()),
        Box::new(LevelHash::<K>::create(mk_pool(), LevelConfig::default()).unwrap()),
    ]
}

/// [`all_tables_generic`] for the common inline-key case.
pub fn all_tables(pool_mb: usize) -> Vec<Box<dyn PmHashTable<u64>>> {
    all_tables_generic::<u64>(pool_mb)
}

/// A unique temp-file path for file-backed pool tests; removed by
/// [`TempFile::drop`] even when the test panics.
pub struct TempFile {
    pub path: PathBuf,
}

impl TempFile {
    pub fn new(tag: &str) -> Self {
        let mut path = std::env::temp_dir();
        path.push(format!("dash-it-{tag}-{}", std::process::id()));
        // A stale file from a killed earlier run must not leak into this
        // one as pre-existing pool state.
        let _ = std::fs::remove_file(&path);
        TempFile { path }
    }
}

impl Drop for TempFile {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.path);
    }
}

/// A unique temp *directory* (sharded-store tests need one per store);
/// removed recursively on drop, even when the test panics.
pub struct TempDir {
    pub path: PathBuf,
}

impl TempDir {
    pub fn new(tag: &str) -> Self {
        let mut path = std::env::temp_dir();
        path.push(format!("dash-it-dir-{tag}-{}", std::process::id()));
        // A stale directory from a killed earlier run must not leak into
        // this one as pre-existing store state.
        let _ = std::fs::remove_dir_all(&path);
        TempDir { path }
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.path);
    }
}
