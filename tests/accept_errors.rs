//! Regression: transient accept failures must not stop the server.
//!
//! The pre-event-loop server treated any non-retryable `accept()` error
//! as fatal and shut the whole process down — so fd exhaustion
//! (EMFILE), a load condition, became an outage. The event-driven
//! accept loop instead backs off, counts the error in the
//! `accept_errors` INFO field, keeps serving established connections,
//! and retries the listener backlog once descriptors free up.
//!
//! The test drives the real syscall path by exhausting the process's
//! own fd table (client and server share it — this is an in-process
//! server): the soft `RLIMIT_NOFILE` is dropped to just above current
//! usage, every remaining slot is filled with `/dev/null` opens, and
//! exactly one slot is freed so a client `connect()` can succeed (the
//! TCP handshake completes via the listen backlog) while the server's
//! `accept()` has no fd left to return.
//!
//! This file holds a single `#[test]` on purpose: it manipulates the
//! process-wide fd limit, which must not race another test's sockets.
#![cfg(unix)]

use std::fs::File;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

use dash_repro::dash_server::net::{nofile_limit, set_nofile_limit};
use dash_repro::dash_server::Value;
use dash_repro::{serve, EngineConfig, RespClient, ShardedDash};

/// Highest fd currently open in this process (read before the limit is
/// lowered; the readdir itself briefly opens one more).
fn max_open_fd() -> u64 {
    std::fs::read_dir("/proc/self/fd")
        .unwrap()
        .filter_map(|e| e.unwrap().file_name().into_string().unwrap().parse::<u64>().ok())
        .max()
        .unwrap()
}

#[test]
fn fd_exhaustion_backs_off_instead_of_shutting_down() {
    let engine =
        ShardedDash::open(&EngineConfig { shards: 2, shard_bytes: 16 << 20, dir: None, ..EngineConfig::default() }).unwrap();
    let server = serve(engine, "127.0.0.1:0").unwrap();
    let addr = server.addr();

    // An established connection from before the exhaustion: the witness
    // that the server keeps serving through it.
    let mut witness = RespClient::connect(addr).unwrap();
    assert_eq!(witness.command(&[b"SET", b"k", b"v"]).unwrap(), Value::Simple("OK".into()));

    let (orig_soft, hard) = nofile_limit().unwrap();
    let lowered = max_open_fd() + 16;
    set_nofile_limit(lowered, hard).unwrap();

    // Fill every remaining slot, then free exactly one: the client's
    // socket() takes it, its handshake completes via the listen
    // backlog, and the server's accept() finds the table full.
    let mut hoard = Vec::new();
    while let Ok(f) = File::open("/dev/null") {
        hoard.push(f);
    }
    assert!(!hoard.is_empty(), "lowered limit left no headroom to exhaust");
    hoard.pop();
    let mut starved = TcpStream::connect(addr).expect("handshake must succeed via the backlog");

    // accept() fails EMFILE; the counter must tick and the server must
    // not die. (The backoff retries every 100 ms, so the counter keeps
    // climbing until descriptors free up — >= 1 is the contract.)
    let deadline = Instant::now() + Duration::from_secs(10);
    let mut accept_errors = 0u64;
    while Instant::now() < deadline {
        accept_errors = witness
            .info_field("accept_errors")
            .unwrap()
            .expect("INFO must report accept_errors")
            .parse()
            .unwrap();
        if accept_errors >= 1 {
            break;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    assert!(accept_errors >= 1, "accept failure must be counted, not fatal");
    assert_eq!(witness.command(&[b"PING"]).unwrap(), Value::Simple("PONG".into()));

    // Free the descriptors: the backed-off listener re-arms and serves
    // the connection that was waiting in the backlog the whole time.
    drop(hoard);
    set_nofile_limit(orig_soft, hard).unwrap();
    starved.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    starved.write_all(b"*2\r\n$3\r\nGET\r\n$1\r\nk\r\n").unwrap();
    let mut reply = [0u8; 32];
    let n = starved.read(&mut reply).unwrap();
    assert_eq!(&reply[..n], b"$1\r\nv\r\n", "backlogged connection must be served after recovery");

    server.shutdown();
}
