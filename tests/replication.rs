//! Replication end to end over TCP: snapshot+tail bootstrap under live
//! write load, convergence (replica SCAN enumeration key/value-identical
//! to the primary), read-only enforcement, INFO surface, and
//! promote-on-failover with no acknowledged write lost.
#![cfg(unix)]

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

use dash_repro::dash_server::{serve_with, ServeOptions, Value};
use dash_repro::{serve, EngineConfig, RespClient, ShardedDash};

mod common;
use common::TempDir;

fn dir_cfg(dir: &TempDir, shards: usize) -> EngineConfig {
    EngineConfig { shards, shard_bytes: 8 << 20, dir: Some(dir.path.clone()), ..EngineConfig::default() }
}

fn mem_cfg(shards: usize) -> EngineConfig {
    EngineConfig { shards, shard_bytes: 8 << 20, dir: None, ..EngineConfig::default() }
}

fn kv(i: u32) -> (Vec<u8>, Vec<u8>) {
    (
        format!("repl:{i:06}").into_bytes(),
        format!("value-{}", i.wrapping_mul(0x9E37_79B9)).into_bytes(),
    )
}

/// Poll `cond` every 50 ms until true, panicking with `what` after 20 s.
fn wait_for(what: &str, mut cond: impl FnMut() -> bool) {
    let t0 = Instant::now();
    while !cond() {
        assert!(t0.elapsed() < Duration::from_secs(20), "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(50));
    }
}

/// The full store as the wire sees it: SCAN enumeration + MGET values.
fn dump(client: &mut RespClient) -> HashMap<Vec<u8>, Vec<u8>> {
    let mut keys = client.scan_all(512).unwrap();
    keys.sort();
    keys.dedup();
    let mut out = HashMap::new();
    for chunk in keys.chunks(64) {
        let refs: Vec<&[u8]> = chunk.iter().map(|k| k.as_slice()).collect();
        for (k, v) in chunk.iter().zip(client.mget(&refs).unwrap()) {
            if let Some(v) = v {
                out.insert(k.clone(), v);
            }
        }
    }
    out
}

/// Replica offset ≥ a primary offset read AFTERWARDS ⇒ the replica has
/// applied everything published up to the primary read (offsets only
/// move forward, so the later read is the stronger bound).
fn in_sync(primary: &mut RespClient, replica: &mut RespClient) -> bool {
    let r = replica.repl_offset().unwrap();
    let link = replica.master_link().unwrap();
    let p = primary.repl_offset().unwrap();
    link.as_deref() == Some("up") && r >= p
}

/// The tentpole acceptance flow: a replica attached to a primary under
/// concurrent write load (bootstrap races the writers, the tail streams
/// sets AND deletes) converges after quiescing: SCAN enumeration
/// key/value-identical to the primary's.
#[test]
fn replica_converges_under_live_load() {
    let p_dir = TempDir::new("repl-conv-primary");
    let r_dir = TempDir::new("repl-conv-replica");
    let primary = serve(ShardedDash::open(&dir_cfg(&p_dir, 3)).unwrap(), "127.0.0.1:0").unwrap();
    let mut pc = RespClient::connect(primary.addr()).unwrap();
    // A stable preloaded population…
    for i in 0..1500 {
        let (k, v) = kv(i);
        assert_eq!(pc.command(&[b"SET", &k, &v]).unwrap(), Value::Simple("OK".into()));
    }
    // …plus live churn (sets, overwrites, deletes) while the replica
    // bootstraps mid-stream.
    let stop = AtomicBool::new(false);
    std::thread::scope(|s| {
        for t in 0..2u32 {
            let stop = &stop;
            let addr = primary.addr();
            s.spawn(move || {
                let mut c = RespClient::connect(addr).unwrap();
                let mut i = 0u32;
                while !stop.load(Ordering::Relaxed) {
                    let (k, v) = kv(500_000 + t * 10_000 + (i % 400));
                    match i % 5 {
                        4 => {
                            let _ = c.del(&[&k]).unwrap();
                        }
                        _ => {
                            assert_eq!(
                                c.command(&[b"SET", &k, &v]).unwrap(),
                                Value::Simple("OK".into())
                            );
                        }
                    }
                    i += 1;
                }
            });
        }
        // Attach the replica while the writers are running.
        let replica = serve_with(
            ShardedDash::open(&dir_cfg(&r_dir, 2)).unwrap(),
            "127.0.0.1:0",
            ServeOptions { replica_of: Some(primary.addr().to_string()), ..Default::default() },
        )
        .unwrap();
        let mut rc = RespClient::connect(replica.addr()).unwrap();
        wait_for("replica link up", || {
            rc.master_link().unwrap().as_deref() == Some("up")
        });
        // Let the tail stream live traffic for a while, then quiesce.
        std::thread::sleep(Duration::from_millis(300));
        stop.store(true, Ordering::Relaxed);
        s.spawn(|| {}); // writers join at scope end; wait for offsets after
        std::thread::sleep(Duration::from_millis(50));
        wait_for("offset convergence", || in_sync(&mut pc, &mut rc));

        // INFO surface on both sides.
        assert_eq!(pc.role().unwrap(), "primary");
        assert!(pc.connected_replicas().unwrap() >= 1, "primary must count its replica");
        assert_eq!(rc.role().unwrap(), "replica");
        assert_eq!(
            rc.info_field("master_addr").unwrap().as_deref(),
            Some(primary.addr().to_string().as_str())
        );

        // Convergence: identical key/value maps over the wire.
        let p_state = dump(&mut pc);
        let r_state = dump(&mut rc);
        assert!(p_state.len() >= 1500);
        assert_eq!(p_state.len(), r_state.len(), "replica key count diverged");
        for (k, v) in &p_state {
            assert_eq!(
                r_state.get(k),
                Some(v),
                "replica diverged on key {:?}",
                String::from_utf8_lossy(k)
            );
        }
        let Value::Integer(p_size) = pc.command(&[b"DBSIZE"]).unwrap() else { panic!() };
        let Value::Integer(r_size) = rc.command(&[b"DBSIZE"]).unwrap() else { panic!() };
        assert_eq!(p_size, r_size);
        replica.shutdown();
    });
    primary.shutdown();
}

/// Replica command surface: reads work, writes bounce with -READONLY,
/// PSYNC chaining is refused, and REPLCONF is tolerated.
#[test]
fn replica_is_read_only_until_promoted() {
    let primary = serve(ShardedDash::open(&mem_cfg(2)).unwrap(), "127.0.0.1:0").unwrap();
    let mut pc = RespClient::connect(primary.addr()).unwrap();
    for i in 0..300 {
        let (k, v) = kv(i);
        pc.command(&[b"SET", &k, &v]).unwrap();
    }
    let replica = serve_with(
        ShardedDash::open(&mem_cfg(2)).unwrap(),
        "127.0.0.1:0",
        ServeOptions { replica_of: Some(primary.addr().to_string()), ..Default::default() },
    )
    .unwrap();
    let mut rc = RespClient::connect(replica.addr()).unwrap();
    wait_for("replica sync", || in_sync(&mut pc, &mut rc));

    // Reads are served locally.
    let (k0, v0) = kv(0);
    assert_eq!(rc.command(&[b"GET", &k0]).unwrap(), Value::Bulk(v0.clone()));
    assert_eq!(rc.exists(&[&k0]).unwrap(), 1);
    assert_eq!(rc.mget(&[&k0]).unwrap(), vec![Some(v0)]);
    // Writes bounce with the READONLY error class (not ERR).
    for cmd in [
        vec![b"SET".to_vec(), k0.clone(), b"nope".to_vec()],
        vec![b"DEL".to_vec(), k0.clone()],
        vec![b"MSET".to_vec(), k0.clone(), b"nope".to_vec()],
    ] {
        let parts: Vec<&[u8]> = cmd.iter().map(|p| p.as_slice()).collect();
        let Value::Error(e) = rc.command(&parts).unwrap() else {
            panic!("write on replica must error");
        };
        assert!(e.starts_with("READONLY"), "{e}");
    }
    // Chained replication is refused; REPLCONF is accepted.
    let Value::Error(e) = rc.command(&[b"PSYNC", b"?", b"-1"]).unwrap() else {
        panic!("PSYNC on a replica must error");
    };
    assert!(e.contains("replica"), "{e}");
    assert_eq!(rc.command(&[b"REPLCONF", b"x", b"y"]).unwrap(), Value::Simple("OK".into()));
    // The rejected writes changed nothing — still in sync.
    assert_eq!(rc.command(&[b"DBSIZE"]).unwrap(), Value::Integer(300));

    // Promotion flips the switch: REPLICAOF NO ONE, then writes land.
    assert_eq!(rc.command(&[b"REPLICAOF", b"NO", b"ONE"]).unwrap(), Value::Simple("OK".into()));
    wait_for("role flip", || rc.role().unwrap() == "primary");
    assert_eq!(rc.command(&[b"SET", b"post-promote", b"w"]).unwrap(), Value::Simple("OK".into()));
    assert_eq!(rc.command(&[b"GET", b"post-promote"]).unwrap(), Value::bulk(*b"w"));
    // Idempotent on an already-primary server.
    assert_eq!(rc.command(&[b"REPLICAOF", b"NO", b"ONE"]).unwrap(), Value::Simple("OK".into()));
    // Runtime attach stays unsupported, with a clear error.
    let Value::Error(e) = rc.command(&[b"REPLICAOF", b"1.2.3.4", b"5"]).unwrap() else {
        panic!("runtime REPLICAOF host port must error");
    };
    assert!(e.contains("--replica-of"), "{e}");
    replica.shutdown();
    primary.shutdown();
}

/// The failover drill: writes acknowledged on the primary, replica
/// caught up (offset equality), primary dies, replica is promoted —
/// and every acknowledged write is there, and the promoted server
/// accepts new writes.
#[test]
fn promotion_after_primary_death_loses_no_acknowledged_write() {
    let p_dir = TempDir::new("repl-promo-primary");
    let r_dir = TempDir::new("repl-promo-replica");
    const N: u32 = 1000;
    let primary = serve(ShardedDash::open(&dir_cfg(&p_dir, 2)).unwrap(), "127.0.0.1:0").unwrap();
    let mut pc = RespClient::connect(primary.addr()).unwrap();
    let replica = serve_with(
        ShardedDash::open(&dir_cfg(&r_dir, 4)).unwrap(),
        "127.0.0.1:0",
        ServeOptions { replica_of: Some(primary.addr().to_string()), ..Default::default() },
    )
    .unwrap();
    let mut rc = RespClient::connect(replica.addr()).unwrap();
    // Acknowledged writes, half before the link is up, half after.
    for i in 0..N {
        let (k, v) = kv(i);
        assert_eq!(pc.command(&[b"SET", &k, &v]).unwrap(), Value::Simple("OK".into()));
    }
    wait_for("replica caught up", || in_sync(&mut pc, &mut rc));
    // The primary goes away (the CI smoke does this with kill -9; from
    // the replica's side a vanished peer is a vanished peer).
    primary.shutdown();
    wait_for("link down", || {
        rc.master_link().unwrap().as_deref() == Some("down")
    });
    // Reads keep working while orphaned.
    let (k7, v7) = kv(7);
    assert_eq!(rc.command(&[b"GET", &k7]).unwrap(), Value::Bulk(v7));
    // Promote and verify every acknowledged write.
    assert_eq!(rc.command(&[b"REPLICAOF", b"NO", b"ONE"]).unwrap(), Value::Simple("OK".into()));
    wait_for("role flip", || rc.role().unwrap() == "primary");
    assert_eq!(rc.command(&[b"DBSIZE"]).unwrap(), Value::Integer(i64::from(N)));
    for i in 0..N {
        let (k, v) = kv(i);
        assert_eq!(rc.command(&[b"GET", &k]).unwrap(), Value::Bulk(v), "key {i} lost in failover");
    }
    // The promoted server is a real primary: writes land and persist.
    for i in N..N + 50 {
        let (k, v) = kv(i);
        assert_eq!(rc.command(&[b"SET", &k, &v]).unwrap(), Value::Simple("OK".into()));
    }
    assert_eq!(rc.command(&[b"DBSIZE"]).unwrap(), Value::Integer(i64::from(N + 50)));
    replica.shutdown();
    // And its store survives a restart as a normal primary store.
    let reopened = ShardedDash::open(&dir_cfg(&r_dir, 4)).unwrap();
    assert_eq!(reopened.len(), u64::from(N + 50));
    let (k, v) = kv(N + 49);
    assert_eq!(reopened.get(&k).unwrap(), Some(v));
    reopened.close().unwrap();
}
