//! Expiration & eviction end to end: lazy vs active expiry, TTL
//! durability across crash/reopen and snapshot/restore, deterministic
//! replication (the primary is the only clock), sampled eviction under
//! a memory budget, value-log reclamation, and redo-log rotation with
//! snapshot-covered truncation.
#![cfg(unix)]

use std::time::{Duration, Instant};

use dash_repro::dash_server::expire::now_ms;
use dash_repro::dash_server::repl::log::segment_files;
use dash_repro::dash_server::{EvictionPolicy, Value};
use dash_repro::{
    serve, serve_with, EngineConfig, EngineError, RespClient, ServeOptions, ShardedDash,
};

mod common;
use common::TempDir;

fn mem_cfg(shards: usize) -> EngineConfig {
    EngineConfig { shards, shard_bytes: 8 << 20, dir: None, ..EngineConfig::default() }
}

fn dir_cfg(dir: &TempDir, shards: usize) -> EngineConfig {
    EngineConfig { shards, shard_bytes: 8 << 20, dir: Some(dir.path.clone()), ..EngineConfig::default() }
}

/// Poll `cond` every 25 ms until true, panicking with `what` after 20 s.
fn wait_for(what: &str, mut cond: impl FnMut() -> bool) {
    let t0 = Instant::now();
    while !cond() {
        assert!(t0.elapsed() < Duration::from_secs(20), "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(25));
    }
}

fn mix64(mut x: u64) -> u64 {
    x ^= x >> 33;
    x = x.wrapping_mul(0xff51_afd7_ed55_8ccd);
    x ^= x >> 33;
    x = x.wrapping_mul(0xc4ce_b9fe_1a85_ec53);
    x ^ (x >> 33)
}

/// Lazy expiry: once the deadline passes, every read path hides the key
/// immediately — and on a primary the read deletes it (counted).
#[test]
fn lazy_expiry_hides_and_deletes_on_read() {
    let store = ShardedDash::open(&mem_cfg(2)).unwrap();
    let now = now_ms();
    store.set(b"plain", b"keeper").unwrap();
    store.set_with_expiry(b"soon", b"doomed", now + 80).unwrap();

    // Alive before the deadline; TTL introspection is exact.
    assert_eq!(store.get(b"soon").unwrap(), Some(b"doomed".to_vec()));
    let ttl = store.ttl_ms(b"soon").unwrap();
    assert!((0..=80).contains(&ttl), "remaining ttl {ttl}");
    assert_eq!(store.ttl_ms(b"plain").unwrap(), -1, "no expiry reads as -1");
    assert_eq!(store.ttl_ms(b"absent").unwrap(), -2, "absent reads as -2");

    std::thread::sleep(Duration::from_millis(120));
    // No background tick has run: SCAN must already hide the key while
    // it still physically occupies a slot.
    let (_, keys) = store.scan_keys(0, 1024).unwrap();
    assert_eq!(keys, vec![b"plain".to_vec()], "SCAN surfaced an expired key");
    // The first read both hides and deletes (primary semantics).
    assert_eq!(store.get(b"soon").unwrap(), None);
    assert_eq!(store.ttl_ms(b"soon").unwrap(), -2);
    assert_eq!(store.len(), 1, "lazy expiry must delete, not just hide");
    assert_eq!(store.expired_keys_total(), 1);
    store.close().unwrap();
}

/// Active expiry: untouched keys are deleted by the timer-wheel tick
/// alone — no read ever observes them.
#[test]
fn active_expiry_reaps_untouched_keys() {
    let store = ShardedDash::open(&mem_cfg(3)).unwrap();
    const N: u64 = 40;
    let now = now_ms();
    for i in 0..N {
        store.set_with_expiry(format!("t{i}").as_bytes(), b"v", now + 100).unwrap();
    }
    store.set(b"keeper", b"v").unwrap();
    assert!(store.wheel_entries() >= N, "every deadline must be queued on the wheel");

    // Never read the doomed keys; only tick. The wheel runs 1 s buckets,
    // so draining can take up to a tick boundary — poll.
    wait_for("active expiry to reap all deadlines", || {
        store.expire_tick(usize::MAX);
        store.expired_keys_total() >= N
    });
    assert_eq!(store.len(), 1);
    assert_eq!(store.wheel_entries(), 0, "drained hints must leave the gauge at zero");
    assert_eq!(store.get(b"keeper").unwrap(), Some(b"v".to_vec()));
    store.close().unwrap();
}

/// TTLs live in the value blobs: they survive a crash-style teardown,
/// and deadlines that passed while the process was down are invisible on
/// reopen and reaped by the sweep (the wheel is volatile and never
/// rescans on open).
#[test]
fn ttl_survives_crash_reopen_and_sweep_reaps_stale_deadlines() {
    let dir = TempDir::new("expire-crash");
    let long_deadline = now_ms() + 60_000;
    {
        let store = ShardedDash::open(&dir_cfg(&dir, 2)).unwrap();
        store.set_with_expiry(b"long", b"v", long_deadline).unwrap();
        store.set_with_expiry(b"short", b"v", now_ms() + 80).unwrap();
        store.set(b"forever", b"v").unwrap();
        // Crash: drop without close().
    }
    std::thread::sleep(Duration::from_millis(120));
    let store = ShardedDash::open(&dir_cfg(&dir, 2)).unwrap();
    // The long deadline survived byte-exact (absolute, not re-derived).
    let ttl = store.ttl_ms(b"long").unwrap();
    assert!(ttl > 0 && ttl <= 60_000, "recovered ttl {ttl}");
    assert_eq!(store.ttl_ms(b"forever").unwrap(), -1);
    // `short` expired while the store was down: hidden from scan
    // immediately, and the sweep deletes it without any read.
    let (_, keys) = store.scan_keys(0, 1024).unwrap();
    assert!(!keys.contains(&b"short".to_vec()), "scan surfaced a stale deadline");
    wait_for("sweep to reap the pre-open deadline", || {
        store.sweep_tick(4096);
        store.len() == 2
    });
    assert!(store.expired_keys_total() >= 1);
    store.close().unwrap();
}

/// Snapshot/restore carries absolute deadlines and drops already-expired
/// records at capture time.
#[test]
fn snapshot_restore_preserves_deadlines_and_skips_expired() {
    let src = TempDir::new("expire-snap-src");
    let dst = TempDir::new("expire-snap-dst");
    let snap = src.path.join("ttl.snap");
    let store = ShardedDash::open(&dir_cfg(&src, 2)).unwrap();
    store.set_with_expiry(b"ttl", b"v", now_ms() + 60_000).unwrap();
    store.set_with_expiry(b"gone", b"v", now_ms() + 50).unwrap();
    store.set(b"plain", b"v").unwrap();
    std::thread::sleep(Duration::from_millis(90));
    store.snapshot_to(&snap).unwrap();
    store.close().unwrap();

    let restored = ShardedDash::restore(&dir_cfg(&dst, 3), &snap).unwrap();
    assert_eq!(restored.len(), 2, "expired records must not be snapshotted");
    let ttl = restored.ttl_ms(b"ttl").unwrap();
    assert!(ttl > 0 && ttl <= 60_000, "restored ttl {ttl}");
    assert_eq!(restored.ttl_ms(b"plain").unwrap(), -1);
    assert_eq!(restored.get(b"gone").unwrap(), None);
    restored.close().unwrap();
}

/// Replica-side discipline at the engine level: with local expiry off, an
/// expired key is hidden from every read but never deleted and never
/// counted — deletion is the primary's decision. Promotion flips the
/// switch and the sweep reaps.
#[test]
fn replica_hides_but_never_deletes_until_promoted() {
    let store = ShardedDash::open(&mem_cfg(1)).unwrap();
    store.set_local_expiry(false); // what serve_with does for --replica-of
    store.set_with_expiry(b"k", b"v", now_ms() + 60).unwrap();
    std::thread::sleep(Duration::from_millis(100));
    for _ in 0..3 {
        assert_eq!(store.get(b"k").unwrap(), None, "expired key served on a replica");
        assert_eq!(store.ttl_ms(b"k").unwrap(), -2);
    }
    store.expire_tick(usize::MAX);
    store.sweep_tick(4096);
    assert_eq!(store.len(), 1, "a replica must wait for the primary's DEL");
    assert_eq!(store.expired_keys_total(), 0);
    // Promotion: this node is the clock now.
    store.set_local_expiry(true);
    wait_for("post-promotion sweep", || {
        store.sweep_tick(4096);
        store.is_empty()
    });
    assert_eq!(store.expired_keys_total(), 1);
    store.close().unwrap();
}

/// The full wire: a replica attached over TCP converges byte-exactly
/// with a primary running expiring churn — every expiry reaches it as an
/// explicit DEL, never re-derived from its own clock.
#[test]
fn replica_converges_byte_exact_under_expiring_churn() {
    let primary = serve(ShardedDash::open(&mem_cfg(2)).unwrap(), "127.0.0.1:0").unwrap();
    let mut pc = RespClient::connect(primary.addr()).unwrap();
    const KEEP: u32 = 150;
    const DOOMED: u32 = 150;
    for i in 0..KEEP {
        let set = pc
            .command(&[b"SET", format!("keep:{i}").as_bytes(), format!("v{i}").as_bytes()])
            .unwrap();
        assert_eq!(set, Value::Simple("OK".into()));
    }
    for i in 0..DOOMED {
        // Spread deadlines 50..=250 ms out.
        let px = format!("{}", 50 + (i as u64 * 200) / u64::from(DOOMED));
        let set = pc
            .command(&[b"SET", format!("doom:{i}").as_bytes(), b"d", b"PX", px.as_bytes()])
            .unwrap();
        assert_eq!(set, Value::Simple("OK".into()));
    }
    let replica = serve_with(
        ShardedDash::open(&mem_cfg(3)).unwrap(),
        "127.0.0.1:0",
        ServeOptions { replica_of: Some(primary.addr().to_string()), ..Default::default() },
    )
    .unwrap();
    let mut rc = RespClient::connect(replica.addr()).unwrap();
    wait_for("replica link", || rc.master_link().unwrap().as_deref() == Some("up"));
    // The server's background tick actively expires the doomed keys and
    // publishes each as a DEL; DBSIZE on the primary is strict.
    wait_for("primary to reap all doomed keys", || {
        pc.command(&[b"DBSIZE"]).unwrap() == Value::Integer(i64::from(KEEP))
    });
    wait_for("offset convergence", || {
        let r = rc.repl_offset().unwrap();
        r >= pc.repl_offset().unwrap()
    });
    // Byte-exact: identical SCAN enumeration and identical values.
    let mut p_keys = pc.scan_all(256).unwrap();
    let mut r_keys = rc.scan_all(256).unwrap();
    p_keys.sort();
    r_keys.sort();
    assert_eq!(p_keys.len(), KEEP as usize);
    assert_eq!(p_keys, r_keys, "replica keyspace diverged from the primary");
    let refs: Vec<&[u8]> = p_keys.iter().map(|k| k.as_slice()).collect();
    for chunk in refs.chunks(64) {
        assert_eq!(
            pc.mget(chunk).unwrap(),
            rc.mget(chunk).unwrap(),
            "replica values diverged"
        );
    }
    replica.shutdown();
    primary.shutdown();
}

/// Sampled LRU eviction under a memory budget: zipf-ish churn far past
/// the budget never OOMs, memory stays under the cap the whole run,
/// evictions are counted, and every surviving key is byte-exact.
#[test]
fn eviction_keeps_memory_under_budget_with_zipf_churn() {
    const MAX_MEM: u64 = 4 << 20;
    const KEYSPACE: u64 = 2_000;
    const VAL_LEN: usize = 4096;
    let store = ShardedDash::open(&EngineConfig {
        max_memory: Some(MAX_MEM),
        eviction: EvictionPolicy::AllKeysLru,
        ..mem_cfg(2)
    })
    .unwrap();
    let value_for = |idx: u64| {
        let mut v = format!("value-{idx}-").into_bytes();
        v.resize(VAL_LEN, b'x');
        v
    };
    for i in 0..6_000u64 {
        let r = mix64(i);
        // Skew toward low indices: min of two uniforms.
        let idx = (r % KEYSPACE).min((r >> 32) % KEYSPACE);
        store
            .set(format!("z{idx:05}").as_bytes(), &value_for(idx))
            .unwrap_or_else(|e| panic!("write {i} failed under lru policy: {e}"));
        assert!(
            store.mem_used() <= MAX_MEM,
            "budget breached at write {i}: {} > {MAX_MEM}",
            store.mem_used()
        );
    }
    assert!(store.evicted_keys_total() > 0, "churn past the budget must evict");
    assert!(store.len() < KEYSPACE, "eviction must have removed keys");
    // Survivors are byte-exact — eviction removes keys, never corrupts.
    for key in store.keys().unwrap() {
        let idx: u64 = std::str::from_utf8(&key[1..]).unwrap().parse().unwrap();
        assert_eq!(store.get(&key).unwrap(), Some(value_for(idx)), "survivor corrupted");
    }
    store.close().unwrap();
}

/// noeviction: the budget still holds, but by rejecting writes with OOM
/// once reclamation alone cannot make room — and rejected writes change
/// nothing.
#[test]
fn noeviction_rejects_with_oom_and_loses_nothing() {
    const MAX_MEM: u64 = 512 << 10;
    let store = ShardedDash::open(&EngineConfig {
        max_memory: Some(MAX_MEM),
        eviction: EvictionPolicy::NoEviction,
        ..mem_cfg(1)
    })
    .unwrap();
    let val = vec![b'v'; 4096];
    let mut written = 0u32;
    let mut oom = false;
    for i in 0..1_000u32 {
        match store.set(format!("f{i:04}").as_bytes(), &val) {
            Ok(()) => written += 1,
            Err(EngineError::Oom) => {
                oom = true;
                break;
            }
            Err(e) => panic!("unexpected error: {e}"),
        }
    }
    assert!(oom, "a 512 KiB budget must reject 4 KiB writes eventually");
    assert!(written > 0, "the budget must admit writes before it fills");
    assert!(store.oom_rejections_total() > 0);
    // The budget gates value-blob admission; table structure growth
    // (segment splits) can overshoot it by a few blocks at most.
    assert!(store.mem_used() <= MAX_MEM + (64 << 10), "mem {}", store.mem_used());
    // Nothing admitted was harmed by the rejection.
    assert_eq!(store.len(), u64::from(written));
    for i in 0..written {
        assert_eq!(store.get(format!("f{i:04}").as_bytes()).unwrap(), Some(val.clone()));
    }
    store.close().unwrap();
}

/// Value-log fragmentation is observable and reclaimable: deletes grow
/// `dead_bytes` monotonically, reclamation returns the space to the
/// allocator (counted), and rewrites reuse it instead of growing the
/// pool.
#[test]
fn fragmentation_rises_then_reclamation_drops_it() {
    let store = ShardedDash::open(&mem_cfg(1)).unwrap();
    const N: u32 = 48;
    let val = vec![b'v'; 16000];
    for i in 0..N {
        store.set(format!("frag{i:04}").as_bytes(), &val).unwrap();
    }
    // Drain the epoch queue of insert-time structural defers so the
    // deletes below are the only garbage in flight (the queue
    // auto-collects every 128 items — each delete defers two, key blob
    // plus value blob — which would hide the rise).
    store.reclaim_all();
    let full = store.mem_used();
    let base_compactions = store.compactions_total();
    assert_eq!(store.dead_bytes(), 0, "no deletes yet, no garbage");
    // Delete in two halves: dead bytes must rise monotonically while
    // mem_used stands still — retired blobs count until reclaimed.
    for i in 0..N / 2 {
        assert!(store.del(format!("frag{i:04}").as_bytes()).unwrap());
    }
    let half_dead = store.dead_bytes();
    assert!(half_dead >= u64::from(N / 2) * 16000, "dead bytes lag deletes: {half_dead}");
    for i in N / 2..N {
        assert!(store.del(format!("frag{i:04}").as_bytes()).unwrap());
    }
    let all_dead = store.dead_bytes();
    assert!(all_dead > half_dead, "dead bytes must grow with deletes");
    assert_eq!(store.mem_used(), full, "retired blobs still count until reclaimed");
    // The threshold pass fires (garbage ratio is 100%), space returns.
    let freed = store.reclaim_tick();
    assert!(freed >= all_dead, "reclamation freed {freed} of {all_dead} dead bytes");
    assert_eq!(store.dead_bytes(), 0);
    assert!(store.mem_used() < full);
    assert!(store.compactions_total() > base_compactions);
    assert!(store.reclaimed_bytes_total() >= all_dead);
    // Same-size rewrites reuse the reclaimed space: no pool growth.
    for i in 0..N {
        store.set(format!("frag{i:04}").as_bytes(), &val).unwrap();
    }
    assert!(
        store.mem_used() <= full,
        "rewrite after reclaim must reuse space: {} > {full}",
        store.mem_used()
    );
    store.close().unwrap();
}

/// Log rotation + snapshot truncation + replay stay coherent: segments
/// seal as the active log crosses the cap, a durable snapshot deletes
/// the segments it covers, and snapshot + remaining chain still
/// reconstructs the exact state — absolute deadlines included.
#[test]
fn log_rotation_truncation_and_replay_stay_coherent() {
    let src = TempDir::new("expire-rot-src");
    let dst = TempDir::new("expire-rot-dst");
    let snap = src.path.join("mid.snap");
    let cfg = EngineConfig { repl_log_max_bytes: Some(2048), ..dir_cfg(&src, 1) };
    let store = ShardedDash::open(&cfg).unwrap();
    for i in 0..300u32 {
        store.set(format!("rot{i:04}").as_bytes(), format!("value-{i}").as_bytes()).unwrap();
    }
    let log_path = src.path.join("repl-0.log");
    let sealed = segment_files(&log_path).unwrap();
    assert!(sealed.len() >= 2, "a 2 KiB cap must seal segments (got {})", sealed.len());
    // A durable snapshot covers everything sealed so far — those
    // segments must be deleted, not kept forever.
    store.snapshot_to(&snap).unwrap();
    assert!(
        segment_files(&log_path).unwrap().len() < sealed.len(),
        "snapshot must truncate the segments it covers"
    );
    // Post-snapshot history: overwrites, a delete, and a TTL write whose
    // absolute deadline must travel through the log untouched.
    for i in 0..50u32 {
        store.set(format!("rot{i:04}").as_bytes(), b"rewritten").unwrap();
    }
    assert!(store.del(b"rot0299").unwrap());
    let deadline = now_ms() + 60_000;
    store.set_with_expiry(b"rot-ttl", b"v", deadline).unwrap();
    store.close().unwrap();

    // Restore the snapshot elsewhere, then replay the surviving chain.
    let restored = ShardedDash::restore(&dir_cfg(&dst, 2), &snap).unwrap();
    assert_eq!(restored.len(), 300, "snapshot alone is the mid-run state");
    restored.replay_log_dir(&src.path).unwrap();
    assert_eq!(restored.len(), 300, "300 - 1 deleted + 1 ttl key");
    for i in 0..300u32 {
        let want = match i {
            0..=49 => Some(b"rewritten".to_vec()),
            299 => None,
            _ => Some(format!("value-{i}").into_bytes()),
        };
        assert_eq!(restored.get(format!("rot{i:04}").as_bytes()).unwrap(), want, "key {i}");
    }
    // The deadline replayed as the primary wrote it — never re-derived.
    let ttl = restored.ttl_ms(b"rot-ttl").unwrap();
    assert!(ttl > 0 && ttl <= 60_000, "replayed ttl {ttl}");
    restored.close().unwrap();
}

/// The wire surface: SET expiry units, TTL/PTTL, EXPIRE/PEXPIRE/PERSIST,
/// UNLINK, strict DBSIZE, and the exact Redis error strings for bad
/// arguments.
#[test]
fn command_surface_over_the_wire() {
    let server = serve(ShardedDash::open(&mem_cfg(2)).unwrap(), "127.0.0.1:0").unwrap();
    let mut c = RespClient::connect(server.addr()).unwrap();
    let ok = Value::Simple("OK".into());

    // Every SET unit resolves to the same absolute-deadline machinery.
    assert_eq!(c.command(&[b"SET", b"a", b"v", b"EX", b"100"]).unwrap(), ok);
    let Value::Integer(ttl) = c.command(&[b"TTL", b"a"]).unwrap() else { panic!() };
    assert!((1..=100).contains(&ttl), "EX 100 → TTL {ttl}");
    let Value::Integer(pttl) = c.command(&[b"PTTL", b"a"]).unwrap() else { panic!() };
    assert!((1..=100_000).contains(&pttl), "PTTL {pttl}");
    let exat = format!("{}", now_ms() / 1000 + 100);
    assert_eq!(c.command(&[b"SET", b"b", b"v", b"EXAT", exat.as_bytes()]).unwrap(), ok);
    let Value::Integer(ttl) = c.command(&[b"TTL", b"b"]).unwrap() else { panic!() };
    assert!((1..=100).contains(&ttl), "EXAT → TTL {ttl}");
    // A PXAT already in the past: stored dead, never served.
    assert_eq!(c.command(&[b"SET", b"dead", b"v", b"PXAT", b"1000"]).unwrap(), ok);
    assert_eq!(c.command(&[b"GET", b"dead"]).unwrap(), Value::Nil);

    // EXPIRE grants, PERSIST removes, and both report precisely.
    assert_eq!(c.command(&[b"SET", b"p", b"v"]).unwrap(), ok);
    assert_eq!(c.command(&[b"EXPIRE", b"p", b"100"]).unwrap(), Value::Integer(1));
    let Value::Integer(ttl) = c.command(&[b"TTL", b"p"]).unwrap() else { panic!() };
    assert!(ttl > 0);
    assert_eq!(c.command(&[b"PERSIST", b"p"]).unwrap(), Value::Integer(1));
    assert_eq!(c.command(&[b"TTL", b"p"]).unwrap(), Value::Integer(-1));
    assert_eq!(c.command(&[b"PERSIST", b"p"]).unwrap(), Value::Integer(0));
    assert_eq!(c.command(&[b"EXPIRE", b"absent", b"10"]).unwrap(), Value::Integer(0));
    // A non-positive EXPIRE deletes outright (Redis semantics).
    assert_eq!(c.command(&[b"EXPIRE", b"p", b"-5"]).unwrap(), Value::Integer(1));
    assert_eq!(c.command(&[b"GET", b"p"]).unwrap(), Value::Nil);
    assert_eq!(c.command(&[b"TTL", b"absent"]).unwrap(), Value::Integer(-2));

    // UNLINK: the batch-delete path, same observable contract as DEL.
    assert_eq!(c.command(&[b"MSET", b"u1", b"x", b"u2", b"x"]).unwrap(), ok);
    assert_eq!(
        c.command(&[b"UNLINK", b"u1", b"u2", b"u3"]).unwrap(),
        Value::Integer(2)
    );
    assert_eq!(c.command(&[b"GET", b"u1"]).unwrap(), Value::Nil);

    // DBSIZE is strict: a passed deadline is not a key.
    assert_eq!(c.command(&[b"SET", b"fleeting", b"v", b"PX", b"60"]).unwrap(), ok);
    std::thread::sleep(Duration::from_millis(100));
    assert_eq!(c.command(&[b"DBSIZE"]).unwrap(), Value::Integer(2), "a+b only");

    // Argument errors are error replies, with Redis wording.
    for (cmd, needle) in [
        (vec![b"SET".to_vec(), b"k".to_vec(), b"v".to_vec(), b"EX".to_vec(), b"0".to_vec()],
            "invalid expire time"),
        (vec![b"SET".to_vec(), b"k".to_vec(), b"v".to_vec(), b"EX".to_vec(), b"abc".to_vec()],
            "invalid expire time"),
        (vec![b"SET".to_vec(), b"k".to_vec(), b"v".to_vec(), b"ZZ".to_vec(), b"5".to_vec()],
            "syntax error"),
        (vec![b"EXPIRE".to_vec(), b"k".to_vec(), b"abc".to_vec()],
            "not an integer"),
        (vec![b"EXPIRE".to_vec(), b"k".to_vec()], "wrong number of arguments"),
        (vec![b"UNLINK".to_vec()], "wrong number of arguments"),
        (vec![b"TTL".to_vec()], "wrong number of arguments"),
    ] {
        let parts: Vec<&[u8]> = cmd.iter().map(|p| p.as_slice()).collect();
        let Value::Error(e) = c.command(&parts).unwrap() else {
            panic!("{cmd:?} must produce an error reply");
        };
        assert!(e.contains(needle), "{cmd:?}: {e}");
    }
    // The connection survives every error.
    assert_eq!(c.command(&[b"PING"]).unwrap(), Value::Simple("PONG".into()));
    server.shutdown();
}
