//! Failure injection: enumerate power-cut points by sweeping the pool's
//! flush limit, crash at each point, reopen, and verify the table
//! recovers to a consistent state. This exercises every persistence
//! ordering decision in the insert/delete/split protocols (§4.6–4.8).

use std::collections::BTreeMap;

use dash_repro::dash_common::uniform_keys;
use dash_repro::{DashConfig, DashEh, DashLh, PmHashTable, PmemPool};

mod common;
use common::{shadow_cfg, small_eh_cfg, small_lh_cfg};

/// Consistency contract after a crash at an arbitrary flush boundary:
/// * every record committed before the cut-off survives with its value;
/// * in-flight operations either fully happened or fully didn't;
/// * the table stays operable (inserts/searches/removes work).
fn verify_recovered(
    table: &dyn PmHashTable<u64>,
    committed: &BTreeMap<u64, u64>,
    in_flight: &[u64],
) {
    for (k, v) in committed {
        assert_eq!(table.get(k), Some(*v), "committed key {k} lost or corrupt");
    }
    for k in in_flight {
        if let Some(v) = table.get(k) {
            assert_eq!(v, k.wrapping_mul(3), "in-flight key {k} has torn value");
        }
    }
    // No phantom duplicates: total records <= committed + in-flight.
    assert!(table.len_scan() <= (committed.len() + in_flight.len()) as u64);
}

/// Sweep crash points across a batch of inserts (which includes segment
/// splits at this scale) for Dash-EH.
#[test]
fn dash_eh_insert_crash_sweep() {
    let cfg = shadow_cfg(64);
    // Base state: enough records that further inserts trigger splits.
    let base_keys = uniform_keys(3_000, 1);
    let in_flight = uniform_keys(64, 2);

    // Determine the flush range of the in-flight batch once.
    let (flush_lo, flush_hi) = {
        let pool = PmemPool::create(cfg).unwrap();
        let t: DashEh<u64> = DashEh::create(pool.clone(), small_eh_cfg()).unwrap();
        for k in &base_keys {
            t.insert(k, k.wrapping_mul(7)).unwrap();
        }
        let lo = pool.flushes_issued();
        for k in &in_flight {
            t.insert(k, k.wrapping_mul(3)).unwrap();
        }
        (lo, pool.flushes_issued())
    };

    // Crash at ~20 evenly spaced points within the in-flight window.
    let step = ((flush_hi - flush_lo) / 20).max(1);
    let mut cut = flush_lo;
    while cut <= flush_hi {
        let pool = PmemPool::create(cfg).unwrap();
        let t: DashEh<u64> = DashEh::create(pool.clone(), small_eh_cfg()).unwrap();
        let mut committed = BTreeMap::new();
        for k in &base_keys {
            t.insert(k, k.wrapping_mul(7)).unwrap();
            committed.insert(*k, k.wrapping_mul(7));
        }
        pool.set_flush_limit(Some(cut));
        for k in &in_flight {
            let _ = t.insert(k, k.wrapping_mul(3));
        }
        let img = pool.crash_image();
        drop(t);

        let pool2 = PmemPool::open(img, cfg).unwrap();
        let t2: DashEh<u64> = DashEh::open(pool2).unwrap();
        verify_recovered(&t2, &committed, &in_flight);
        // Table remains fully operable post-recovery.
        for k in uniform_keys(50, cut) {
            let _ = t2.insert(&k, 1);
        }
        cut += step;
    }
}

#[test]
fn dash_lh_insert_crash_sweep() {
    let cfg = shadow_cfg(64);
    let dash_cfg = small_lh_cfg();
    let base_keys = uniform_keys(3_000, 5);
    let in_flight = uniform_keys(64, 6);

    let (flush_lo, flush_hi) = {
        let pool = PmemPool::create(cfg).unwrap();
        let t: DashLh<u64> = DashLh::create(pool.clone(), dash_cfg).unwrap();
        for k in &base_keys {
            t.insert(k, k.wrapping_mul(7)).unwrap();
        }
        let lo = pool.flushes_issued();
        for k in &in_flight {
            t.insert(k, k.wrapping_mul(3)).unwrap();
        }
        (lo, pool.flushes_issued())
    };

    let step = ((flush_hi - flush_lo) / 20).max(1);
    let mut cut = flush_lo;
    while cut <= flush_hi {
        let pool = PmemPool::create(cfg).unwrap();
        let t: DashLh<u64> = DashLh::create(pool.clone(), dash_cfg).unwrap();
        let mut committed = BTreeMap::new();
        for k in &base_keys {
            t.insert(k, k.wrapping_mul(7)).unwrap();
            committed.insert(*k, k.wrapping_mul(7));
        }
        pool.set_flush_limit(Some(cut));
        for k in &in_flight {
            let _ = t.insert(k, k.wrapping_mul(3));
        }
        let img = pool.crash_image();
        drop(t);

        let pool2 = PmemPool::open(img, cfg).unwrap();
        let t2: DashLh<u64> = DashLh::open(pool2).unwrap();
        verify_recovered(&t2, &committed, &in_flight);
        cut += step;
    }
}

/// Crash points across deletes: a deleted record must stay deleted once
/// the delete's flush landed, and reappear atomically otherwise.
#[test]
fn dash_eh_delete_crash_sweep() {
    let cfg = shadow_cfg(64);
    let keys = uniform_keys(2_000, 9);
    let victims: Vec<u64> = keys.iter().copied().step_by(10).collect();

    let (flush_lo, flush_hi) = {
        let pool = PmemPool::create(cfg).unwrap();
        let t: DashEh<u64> =
            DashEh::create(pool.clone(), DashConfig { bucket_bits: 3, ..Default::default() })
                .unwrap();
        for k in &keys {
            t.insert(k, *k).unwrap();
        }
        let lo = pool.flushes_issued();
        for k in &victims {
            assert!(t.remove(k));
        }
        (lo, pool.flushes_issued())
    };

    let step = ((flush_hi - flush_lo) / 12).max(1);
    let mut cut = flush_lo;
    while cut <= flush_hi {
        let pool = PmemPool::create(cfg).unwrap();
        let t: DashEh<u64> =
            DashEh::create(pool.clone(), DashConfig { bucket_bits: 3, ..Default::default() })
                .unwrap();
        for k in &keys {
            t.insert(k, *k).unwrap();
        }
        pool.set_flush_limit(Some(cut));
        for k in &victims {
            let _ = t.remove(k);
        }
        let img = pool.crash_image();
        drop(t);

        let pool2 = PmemPool::open(img, cfg).unwrap();
        let t2: DashEh<u64> = DashEh::open(pool2).unwrap();
        // Non-victims must all survive; victims are present (delete lost)
        // or absent (delete persisted) but never corrupt.
        let victim_set: std::collections::HashSet<u64> = victims.iter().copied().collect();
        for k in &keys {
            match t2.get(k) {
                Some(v) => assert_eq!(v, *k, "value of {k} corrupt"),
                None => assert!(victim_set.contains(k), "non-victim {k} lost"),
            }
        }
        cut += step;
    }
}

/// Repeated crashes: crash, recover, mutate, crash again — versions keep
/// advancing and data stays consistent.
#[test]
fn repeated_crashes_accumulate_correctly() {
    let cfg = shadow_cfg(64);
    let pool0 = PmemPool::create(cfg).unwrap();
    let t0: DashEh<u64> =
        DashEh::create(pool0.clone(), DashConfig { bucket_bits: 2, ..Default::default() }).unwrap();
    // One stream, sliced per round, so keys are disjoint across rounds.
    let stream = uniform_keys(1_000 + 5 * 500, 11);
    let mut expected = BTreeMap::new();
    for k in &stream[..1_000] {
        t0.insert(k, *k).unwrap();
        expected.insert(*k, *k);
    }
    let mut img = pool0.crash_image();
    drop(t0);

    for round in 0..5u64 {
        let pool = PmemPool::open(img, cfg).unwrap();
        let t: DashEh<u64> = DashEh::open(pool.clone()).unwrap();
        for (k, v) in &expected {
            assert_eq!(t.get(k), Some(*v), "round {round}: key {k}");
        }
        let lo = 1_000 + round as usize * 500;
        for k in &stream[lo..lo + 500] {
            t.insert(k, k ^ round).unwrap();
            expected.insert(*k, k ^ round);
        }
        img = pool.crash_image();
        drop(t);
    }
    let pool = PmemPool::open(img, cfg).unwrap();
    let t: DashEh<u64> = DashEh::open(pool).unwrap();
    assert_eq!(t.len_scan(), expected.len() as u64);
}
