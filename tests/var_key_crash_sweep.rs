//! Failure injection over **variable-length keys** (§4.5): each insert is
//! an allocate–persist–publish sequence (key blob first, then the record
//! slot pointing at it), so the crash surface is wider than for inline
//! keys. Sweeping power-cut points checks that
//!
//! * a committed var-key record always reads back byte-identical,
//! * an in-flight insert never leaves a torn key visible (the record's
//!   commit point — the alloc-bitmap flush — happens after the blob is
//!   persisted),
//! * key blobs of crashed inserts never leak permanently (the PMDK-style
//!   in-flight table returns them to the allocator on recovery).

use std::collections::BTreeMap;

use dash_repro::dash_common::var_keys;
use dash_repro::{DashConfig, DashEh, PmHashTable, PmemPool, PoolConfig, VarKey};

mod common;

fn shadow_cfg() -> PoolConfig {
    common::shadow_cfg(64)
}

#[test]
fn var_key_insert_crash_sweep() {
    let cfg = shadow_cfg();
    let dash_cfg = common::small_eh_cfg();
    let base: Vec<VarKey> = var_keys(1_500, 61, 16);
    let in_flight: Vec<VarKey> = var_keys(48, 67, 24);

    let (flush_lo, flush_hi) = {
        let pool = PmemPool::create(cfg).unwrap();
        let t: DashEh<VarKey> = DashEh::create(pool.clone(), dash_cfg).unwrap();
        for (i, k) in base.iter().enumerate() {
            t.insert(k, i as u64).unwrap();
        }
        let lo = pool.flushes_issued();
        for (i, k) in in_flight.iter().enumerate() {
            t.insert(k, 1_000_000 + i as u64).unwrap();
        }
        (lo, pool.flushes_issued())
    };

    let step = ((flush_hi - flush_lo) / 24).max(1);
    let mut cut = flush_lo;
    while cut <= flush_hi {
        let pool = PmemPool::create(cfg).unwrap();
        let t: DashEh<VarKey> = DashEh::create(pool.clone(), dash_cfg).unwrap();
        let mut committed = BTreeMap::new();
        for (i, k) in base.iter().enumerate() {
            t.insert(k, i as u64).unwrap();
            committed.insert(k.as_bytes().to_vec(), i as u64);
        }
        pool.set_flush_limit(Some(cut));
        for (i, k) in in_flight.iter().enumerate() {
            let _ = t.insert(k, 1_000_000 + i as u64);
        }
        let img = pool.crash_image();
        drop(t);

        let pool2 = PmemPool::open(img, cfg).unwrap();
        let t2: DashEh<VarKey> = DashEh::open(pool2).unwrap();
        for (bytes, v) in &committed {
            let k = VarKey::new(bytes.clone());
            assert_eq!(t2.get(&k), Some(*v), "committed var key lost at cut {cut}");
        }
        for (i, k) in in_flight.iter().enumerate() {
            if let Some(v) = t2.get(k) {
                assert_eq!(v, 1_000_000 + i as u64, "in-flight var key torn at cut {cut}");
            }
        }
        // The table stays operable with fresh var-key traffic.
        for k in var_keys(32, cut ^ 0x77, 16) {
            t2.insert(&k, 5).unwrap();
            assert_eq!(t2.get(&k), Some(5));
        }
        cut += step;
    }
}

#[test]
fn var_key_delete_crash_sweep() {
    let cfg = shadow_cfg();
    let dash_cfg = DashConfig { bucket_bits: 3, ..Default::default() };
    let keys: Vec<VarKey> = var_keys(1_200, 71, 16);
    let victims: Vec<VarKey> = keys.iter().step_by(8).cloned().collect();

    let (flush_lo, flush_hi) = {
        let pool = PmemPool::create(cfg).unwrap();
        let t: DashEh<VarKey> = DashEh::create(pool.clone(), dash_cfg).unwrap();
        for (i, k) in keys.iter().enumerate() {
            t.insert(k, i as u64).unwrap();
        }
        let lo = pool.flushes_issued();
        for k in &victims {
            assert!(t.remove(k));
        }
        (lo, pool.flushes_issued())
    };

    let step = ((flush_hi - flush_lo) / 12).max(1);
    let mut cut = flush_lo;
    while cut <= flush_hi {
        let pool = PmemPool::create(cfg).unwrap();
        let t: DashEh<VarKey> = DashEh::create(pool.clone(), dash_cfg).unwrap();
        for (i, k) in keys.iter().enumerate() {
            t.insert(k, i as u64).unwrap();
        }
        pool.set_flush_limit(Some(cut));
        for k in &victims {
            let _ = t.remove(k);
        }
        let img = pool.crash_image();
        drop(t);

        let pool2 = PmemPool::open(img, cfg).unwrap();
        let t2: DashEh<VarKey> = DashEh::open(pool2).unwrap();
        let victim_set: std::collections::HashSet<&[u8]> =
            victims.iter().map(|k| k.as_bytes()).collect();
        for (i, k) in keys.iter().enumerate() {
            match t2.get(k) {
                Some(v) => assert_eq!(v, i as u64, "value of var key {i} corrupt at cut {cut}"),
                None => assert!(
                    victim_set.contains(k.as_bytes()),
                    "non-victim var key {i} lost at cut {cut}"
                ),
            }
        }
        cut += step;
    }
}

/// Leak amplification check: repeated insert → crash → recover → delete
/// cycles must not consume the pool. If crashed inserts leaked their key
/// blobs permanently, this loop would exhaust the 64 MB pool quickly.
#[test]
fn crashed_var_key_inserts_do_not_leak() {
    let cfg = shadow_cfg();
    let dash_cfg = common::small_eh_cfg();
    let pool0 = PmemPool::create(cfg).unwrap();
    let t0: DashEh<VarKey> = DashEh::create(pool0.clone(), dash_cfg).unwrap();
    drop(t0);
    let mut img = pool0.crash_image();

    // Each round writes ~1.6 MB of key blobs (4k keys × ~400 B class) and
    // crashes mid-stream; 60 rounds ≈ 96 MB of blob traffic through a
    // 64 MB pool — impossible without reclamation. Each round is two
    // incarnations: one that crashes mid-insert (once flushes have been
    // dropped, the only sound continuation is to take the crash image —
    // see `set_flush_limit`), and a recovery incarnation that deletes
    // whatever committed.
    for round in 0..60u64 {
        let keys = var_keys(4_000, round, 384);
        {
            let pool = PmemPool::open(img, cfg).unwrap();
            let t: DashEh<VarKey> = DashEh::open(pool.clone()).unwrap();
            // Cut flushes mid-batch so inserts are in flight at the crash.
            pool.set_flush_limit(Some(pool.flushes_issued() + 6_000));
            for k in &keys {
                if t.insert(k, round).is_err() {
                    panic!("pool exhausted at round {round}: key blobs are leaking");
                }
            }
            img = pool.crash_image();
        }
        {
            let pool = PmemPool::open(img, cfg).unwrap();
            let t: DashEh<VarKey> = DashEh::open(pool.clone()).unwrap();
            // Delete everything that committed, freeing the blobs.
            for k in &keys {
                let _ = t.remove(k);
            }
            assert_eq!(t.len_scan(), 0, "round {round}: residue after deletes");
            img = pool.crash_image();
        }
    }
}
