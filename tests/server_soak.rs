//! Concurrency soak: 1024+ simultaneous connections on the fixed
//! event-loop worker pool.
//!
//! The thread-per-connection server spent one OS thread (and one 50 ms
//! poll timer) per client, so four-digit connection counts meant four-
//! digit thread counts. The event-driven core serves them all from a
//! handful of epoll loops; this test holds 1024 connections open at
//! once, proves the server counts them (`active_connections`), drives
//! pipelined PING/GET/SET traffic over every one of them, and asserts
//! a (deliberately generous, debug-build) p99 round-trip bound as a
//! did-the-loop-wedge tripwire rather than a performance claim — the
//! release-build numbers live in the CI smoke job and the README.
//!
//! `#[ignore]`-gated: ~2k sockets and a deliberately long runtime.
//! Run with: `cargo test --test server_soak -- --ignored`
#![cfg(unix)]

use std::sync::Mutex;
use std::time::{Duration, Instant};

use dash_repro::dash_server::net::ensure_nofile_limit;
use dash_repro::dash_server::Value;
use dash_repro::{serve_with, EngineConfig, RespClient, ServeOptions, ShardedDash};

const CONNS: usize = 1024;
const DRIVERS: usize = 8;
const ROUNDS: usize = 20;
/// Debug build, shared CPU, 1024 connections multiplexed onto a tiny
/// worker pool: the bound is a regression tripwire (a wedged or
/// polling loop blows through it), not a latency claim.
const P99_BOUND: Duration = Duration::from_millis(500);

#[test]
#[ignore = "opens 2k+ sockets and runs for a while; exercise via -- --ignored"]
fn soak_1024_connections_pipelined() {
    // Client and server share this process's fd table: a socket per
    // side, plus headroom.
    let got = ensure_nofile_limit((CONNS as u64) * 2 + 256).unwrap();
    assert!(got >= (CONNS as u64) * 2 + 256, "fd limit too low for the soak: {got}");

    let engine =
        ShardedDash::open(&EngineConfig { shards: 4, shard_bytes: 32 << 20, dir: None, ..EngineConfig::default() }).unwrap();
    let server = serve_with(
        engine,
        "127.0.0.1:0",
        // More workers than CPUs on purpose: round-robin assignment and
        // cross-loop shutdown must work with a genuinely multi-loop
        // pool even on a single-core runner.
        ServeOptions { event_workers: Some(2), ..Default::default() },
    )
    .unwrap();
    let addr = server.addr();

    let mut monitor = RespClient::connect(addr).unwrap();
    let mut clients: Vec<RespClient> = (0..CONNS)
        .map(|i| {
            RespClient::connect(addr)
                .unwrap_or_else(|e| panic!("connection {i} failed to open: {e}"))
        })
        .collect();

    // Every connection is open simultaneously and the server knows it.
    // (`active_connections` ticks when a worker loop adopts the socket,
    // an instant after connect() returns — poll briefly.)
    let deadline = Instant::now() + Duration::from_secs(10);
    let mut active: u64 = 0;
    while Instant::now() < deadline {
        active = monitor.info_field("active_connections").unwrap().unwrap().parse().unwrap();
        if active >= CONNS as u64 {
            break;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    assert!(active >= CONNS as u64, "server reports {active} active connections, want >= {CONNS}");

    // Drive pipelined traffic over every connection: DRIVERS threads,
    // each owning CONNS/DRIVERS connections, ROUNDS passes each. Per
    // pass and connection: pipelined SET + GET + PING, replies verified
    // in order, batch round-trip recorded.
    let rtts = Mutex::new(Vec::<Duration>::new());
    std::thread::scope(|s| {
        for (t, chunk) in clients.chunks_mut(CONNS / DRIVERS).enumerate() {
            let rtts = &rtts;
            s.spawn(move || {
                let mut local = Vec::with_capacity(ROUNDS * chunk.len());
                for round in 0..ROUNDS {
                    for (i, c) in chunk.iter_mut().enumerate() {
                        let key = format!("soak:{t}:{i}");
                        let val = format!("v{round}");
                        let t0 = Instant::now();
                        c.enqueue(&[b"SET", key.as_bytes(), val.as_bytes()]);
                        c.enqueue(&[b"GET", key.as_bytes()]);
                        c.enqueue(&[b"PING"]);
                        c.flush().unwrap();
                        assert_eq!(c.read_reply().unwrap(), Value::Simple("OK".into()));
                        assert_eq!(
                            c.read_reply().unwrap(),
                            Value::bulk(val.clone().into_bytes())
                        );
                        assert_eq!(c.read_reply().unwrap(), Value::Simple("PONG".into()));
                        local.push(t0.elapsed());
                    }
                }
                rtts.lock().unwrap().extend(local);
            });
        }
    });

    let mut rtts = rtts.into_inner().unwrap();
    rtts.sort_unstable();
    let p99 = rtts[(rtts.len() - 1) * 99 / 100];
    println!(
        "soak: {} pipelined batches over {CONNS} connections; p50 {:?}, p99 {:?}, max {:?}",
        rtts.len(),
        rtts[rtts.len() / 2],
        p99,
        rtts.last().unwrap()
    );
    assert!(p99 <= P99_BOUND, "p99 batch RTT {p99:?} exceeds the {P99_BOUND:?} tripwire");

    // Nothing panicked, nothing was refused, and every key landed.
    assert_eq!(monitor.info_field("worker_panics").unwrap().as_deref(), Some("0"));
    assert_eq!(monitor.info_field("accept_errors").unwrap().as_deref(), Some("0"));
    assert_eq!(
        monitor.command(&[b"DBSIZE"]).unwrap(),
        Value::Integer((DRIVERS * (CONNS / DRIVERS)) as i64)
    );

    drop(clients);
    server.shutdown();
}
