//! Online snapshot export / restore through the service layer: a
//! `SNAPSHOT` taken while writers are running must restore into a fresh
//! directory with every stable key byte-exact, survive a crash-style
//! teardown of the source store, and reject corruption cleanly.
#![cfg(unix)]

use std::sync::atomic::{AtomicBool, Ordering};

use dash_repro::dash_server::{snapshot, Value};
use dash_repro::{serve, EngineConfig, EngineError, RespClient, ShardedDash};

mod common;
use common::TempDir;

fn dir_cfg(dir: &TempDir, shards: usize) -> EngineConfig {
    EngineConfig { shards, shard_bytes: 16 << 20, dir: Some(dir.path.clone()), ..EngineConfig::default() }
}

fn kv(i: u32) -> (Vec<u8>, Vec<u8>) {
    (
        format!("snap:{i:06}").into_bytes(),
        format!("value-{}", i.wrapping_mul(0x9E37_79B9)).into_bytes(),
    )
}

/// The acceptance-criteria flow: snapshot under live 90/10 load, crash
/// the source, restore into a fresh directory, verify byte-exact.
#[test]
fn snapshot_under_live_load_restores_after_crash() {
    let src = TempDir::new("snap-src");
    let dst = TempDir::new("snap-dst");
    let snap_path = src.path.join("backup.snap");
    const STABLE: u32 = 3_000;
    {
        let store = ShardedDash::open(&dir_cfg(&src, 3)).unwrap();
        for i in 0..STABLE {
            let (k, v) = kv(i);
            store.set(&k, &v).unwrap();
        }
        // Live 90/10-style churn on a disjoint keyspace while the
        // snapshot streams: each key always gets the same value, so the
        // snapshot is byte-exact whatever interleaving wins.
        let stop = AtomicBool::new(false);
        let count = std::thread::scope(|s| {
            for t in 0..2u32 {
                let store = &store;
                let stop = &stop;
                s.spawn(move || {
                    let mut i = 0u32;
                    while !stop.load(Ordering::Relaxed) {
                        let (k, v) = kv(1_000_000 + (t * 100_000) + (i % 500));
                        if i.is_multiple_of(10) {
                            store.set(&k, &v).unwrap();
                        } else {
                            let _ = store.get(&k).unwrap();
                        }
                        i += 1;
                    }
                });
            }
            let count = store.snapshot_to(&snap_path).unwrap();
            stop.store(true, Ordering::Relaxed);
            count
        });
        assert!(count >= u64::from(STABLE), "snapshot must hold at least the stable keys");
        // Crash-style teardown: drop without close(). The snapshot file
        // must be self-contained — the source pools are not consulted.
    }
    let restored = ShardedDash::restore(&dir_cfg(&dst, 5), &snap_path).unwrap();
    for i in 0..STABLE {
        let (k, v) = kv(i);
        assert_eq!(restored.get(&k).unwrap(), Some(v), "stable key {i} lost through snapshot");
    }
    // The restored store re-partitioned onto 5 shards and is fully live.
    assert_eq!(restored.shard_count(), 5);
    restored.set(b"post-restore", b"writable").unwrap();
    assert_eq!(restored.get(b"post-restore").unwrap(), Some(b"writable".to_vec()));
    restored.close().unwrap();
}

#[test]
fn corrupted_snapshot_is_rejected_cleanly() {
    let src = TempDir::new("snap-corrupt-src");
    let dst = TempDir::new("snap-corrupt-dst");
    let snap_path = src.path.join("backup.snap");
    {
        let store = ShardedDash::open(&dir_cfg(&src, 2)).unwrap();
        for i in 0..500 {
            let (k, v) = kv(i);
            store.set(&k, &v).unwrap();
        }
        store.snapshot_to(&snap_path).unwrap();
        store.close().unwrap();
    }
    // Flip one value byte mid-file: the checksum must catch it and the
    // restore must fail *before* creating any store state.
    let mut bytes = std::fs::read(&snap_path).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x01;
    std::fs::write(&snap_path, &bytes).unwrap();
    match ShardedDash::restore(&dir_cfg(&dst, 2), &snap_path) {
        Err(EngineError::Snapshot(msg)) => {
            assert!(msg.contains("rejected") || msg.contains("checksum"), "{msg}");
        }
        Err(other) => panic!("corrupted snapshot must fail as Snapshot error, got {other}"),
        Ok(_) => panic!("corrupted snapshot must be rejected, but restore succeeded"),
    }
    assert!(
        !dst.path.join("shard-0.pool").exists(),
        "a rejected restore must not leave store files behind"
    );
}

#[test]
fn restore_refuses_an_existing_store() {
    let src = TempDir::new("snap-refuse-src");
    let dst = TempDir::new("snap-refuse-dst");
    let snap_path = src.path.join("backup.snap");
    {
        let store = ShardedDash::open(&dir_cfg(&src, 2)).unwrap();
        store.set(b"a", b"1").unwrap();
        store.snapshot_to(&snap_path).unwrap();
        store.close().unwrap();
    }
    {
        let existing = ShardedDash::open(&dir_cfg(&dst, 2)).unwrap();
        existing.set(b"precious", b"data").unwrap();
        existing.close().unwrap();
    }
    assert!(
        matches!(ShardedDash::restore(&dir_cfg(&dst, 2), &snap_path), Err(EngineError::Layout(_))),
        "restore must refuse to clobber an existing store"
    );
    // The precious data is untouched.
    let existing = ShardedDash::open(&dir_cfg(&dst, 2)).unwrap();
    assert_eq!(existing.get(b"precious").unwrap(), Some(b"data".to_vec()));
    existing.close().unwrap();
}

#[test]
fn snapshot_refuses_to_overwrite_live_pool_files() {
    let src = TempDir::new("snap-clobber");
    let store = ShardedDash::open(&dir_cfg(&src, 2)).unwrap();
    store.set(b"k", b"v").unwrap();
    // Pointing SNAPSHOT at a live shard pool (directly or via a dot
    // path) must be refused — renaming a snapshot over it would destroy
    // the shard at the next restart.
    let direct = src.path.join("shard-1.pool");
    let dotted = src.path.join(".").join("shard-1.pool");
    for target in [&direct, &dotted] {
        match store.snapshot_to(target) {
            Err(EngineError::Snapshot(msg)) => assert!(msg.contains("live shard"), "{msg}"),
            Err(other) => panic!("expected Snapshot error, got {other}"),
            Ok(_) => panic!("snapshot over a live pool file must be refused"),
        }
    }
    // The store is unharmed and a legal sibling path still works.
    assert_eq!(store.get(b"k").unwrap(), Some(b"v".to_vec()));
    assert_eq!(store.snapshot_to(&src.path.join("ok.snap")).unwrap(), 1);
    store.close().unwrap();
}

#[test]
fn failed_restore_leaves_no_half_built_store() {
    let src = TempDir::new("snap-bigsrc");
    let dst = TempDir::new("snap-bigdst");
    let snap_path = src.path.join("big.snap");
    {
        let store = ShardedDash::open(&dir_cfg(&src, 2)).unwrap();
        for i in 0..4_000 {
            let (k, v) = kv(i);
            store.set(&k, &v).unwrap();
        }
        store.snapshot_to(&snap_path).unwrap();
        store.close().unwrap();
    }
    // Restore into pools far too small. 64 KB dies creating the very
    // first table (open-path failure); 256 KB opens fine but runs out
    // mid-load — both must clean up every shard file they created, so a
    // properly-sized retry succeeds instead of being refused as an
    // existing store.
    for shard_bytes in [64 << 10, 256 << 10] {
        let tiny = EngineConfig { shards: 1, shard_bytes, dir: Some(dst.path.clone()), ..EngineConfig::default() };
        assert!(ShardedDash::restore(&tiny, &snap_path).is_err());
        assert!(
            !dst.path.join("shard-0.pool").exists(),
            "failed restore ({shard_bytes}B pools) must clean up its half-built store"
        );
    }
    let retry = ShardedDash::restore(&dir_cfg(&dst, 2), &snap_path).unwrap();
    assert_eq!(retry.len(), 4_000);
    retry.close().unwrap();
}

#[test]
fn snapshot_roundtrips_empty_and_binary_values() {
    let src = TempDir::new("snap-bin-src");
    let dst = TempDir::new("snap-bin-dst");
    let snap_path = src.path.join("backup.snap");
    let blob: Vec<u8> = (0..=255u8).cycle().take(50_000).collect();
    {
        let store = ShardedDash::open(&dir_cfg(&src, 2)).unwrap();
        store.set(b"empty", b"").unwrap();
        store.set(b"blob", &blob).unwrap();
        store.set(&[0u8, 13, 10, 255], b"binary-key").unwrap();
        assert_eq!(store.snapshot_to(&snap_path).unwrap(), 3);
        store.close().unwrap();
    }
    let restored = ShardedDash::restore(&dir_cfg(&dst, 1), &snap_path).unwrap();
    assert_eq!(restored.get(b"empty").unwrap(), Some(Vec::new()));
    assert_eq!(restored.get(b"blob").unwrap(), Some(blob));
    assert_eq!(restored.get(&[0u8, 13, 10, 255]).unwrap(), Some(b"binary-key".to_vec()));
    restored.close().unwrap();
}

/// The whole flow over the wire: SNAPSHOT command on a serving store,
/// then a fresh server bootstrapped from the file.
#[test]
fn snapshot_command_end_to_end_over_tcp() {
    let src = TempDir::new("snap-tcp-src");
    let dst = TempDir::new("snap-tcp-dst");
    let snap_path = src.path.join("wire.snap");
    const N: u32 = 800;
    {
        let server = serve(ShardedDash::open(&dir_cfg(&src, 2)).unwrap(), "127.0.0.1:0").unwrap();
        let mut c = RespClient::connect(server.addr()).unwrap();
        for i in 0..N {
            let (k, v) = kv(i);
            assert_eq!(c.command(&[b"SET", &k, &v]).unwrap(), Value::Simple("OK".into()));
        }
        let count = c.snapshot(snap_path.to_str().unwrap()).unwrap();
        assert_eq!(count, i64::from(N));
        // Arity / bad-path errors are replies, not disconnects.
        let Value::Error(e) = c.command(&[b"SNAPSHOT"]).unwrap() else {
            panic!("SNAPSHOT without a path must error");
        };
        assert!(e.contains("wrong number of arguments"), "{e}");
        let Value::Error(e) =
            c.command(&[b"SNAPSHOT", b"/nonexistent-dir-zz/x.snap"]).unwrap()
        else {
            panic!("unwritable snapshot path must error");
        };
        assert!(e.contains("snapshot"), "{e}");
        server.shutdown();
    }
    // The client can also verify the file out of band.
    let records = snapshot::read_all(&snap_path).unwrap();
    assert_eq!(records.len(), N as usize);
    // Bootstrap a brand-new server from the snapshot and read it back.
    {
        let engine = ShardedDash::restore(&dir_cfg(&dst, 4), &snap_path).unwrap();
        let server = serve(engine, "127.0.0.1:0").unwrap();
        let mut c = RespClient::connect(server.addr()).unwrap();
        assert_eq!(c.command(&[b"DBSIZE"]).unwrap(), Value::Integer(i64::from(N)));
        for i in (0..N).step_by(37) {
            let (k, v) = kv(i);
            assert_eq!(c.command(&[b"GET", &k]).unwrap(), Value::Bulk(v), "key {i}");
        }
        server.shutdown();
    }
}
