//! Variable-length key integration tests (§4.5): pooled, pointer-mode
//! keys across all four tables, concurrent use, and crash recovery
//! including the key-storage allocator.

use std::sync::Arc;

use dash_repro::dash_common::var_keys;
use dash_repro::{
    DashConfig, DashEh, DashLh, PmHashTable, PmemPool,
    PoolConfig, TableError, VarKey,
};

mod common;
use common::all_tables_generic;

fn all_tables(pool_mb: usize) -> Vec<Box<dyn PmHashTable<VarKey>>> {
    all_tables_generic::<VarKey>(pool_mb)
}

#[test]
fn sixteen_byte_keys_everywhere() {
    // The paper's variable-length workload: 16-byte keys, 8-byte values.
    let keys = var_keys(10_000, 1, 16);
    for table in all_tables(256) {
        for (i, k) in keys.iter().enumerate() {
            table.insert(k, i as u64).unwrap();
        }
        for (i, k) in keys.iter().enumerate() {
            assert_eq!(table.get(k), Some(i as u64), "{}: key {i}", table.name());
        }
        // Negative searches with same-length keys.
        for k in var_keys(2_000, 99, 16) {
            assert_eq!(table.get(&k), None, "{}", table.name());
        }
        assert!(
            matches!(table.insert(&keys[0], 0), Err(TableError::Duplicate)),
            "{}",
            table.name()
        );
    }
}

#[test]
fn mixed_key_lengths() {
    let table: DashEh<VarKey> = DashEh::create(
        PmemPool::create(PoolConfig::with_size(128 << 20)).unwrap(),
        DashConfig::default(),
    )
    .unwrap();
    let mut all = Vec::new();
    for (len, seed) in [(8, 1u64), (16, 2), (64, 3), (200, 4)] {
        all.extend(var_keys(1_000, seed, len));
    }
    for (i, k) in all.iter().enumerate() {
        table.insert(k, i as u64).unwrap();
    }
    for (i, k) in all.iter().enumerate() {
        assert_eq!(table.get(k), Some(i as u64), "len {}", k.as_bytes().len());
    }
}

#[test]
fn remove_releases_key_storage_for_reuse() {
    let pool = PmemPool::create(PoolConfig::with_size(64 << 20)).unwrap();
    let table: DashEh<VarKey> = DashEh::create(pool.clone(), DashConfig::default()).unwrap();
    let keys = var_keys(4_000, 5, 48);
    for k in &keys {
        table.insert(k, 1).unwrap();
    }
    for k in &keys {
        assert!(table.remove(k));
    }
    pool.epoch_collect();
    let frees_after = pool.stats().frees;
    assert!(
        frees_after >= keys.len() as u64,
        "key blocks must return to the allocator: {frees_after}"
    );
    // Reinsertion reuses the freed storage without growing the heap much.
    for k in &keys {
        table.insert(k, 2).unwrap();
    }
    for k in &keys {
        assert_eq!(table.get(k), Some(2));
    }
}

#[test]
fn var_keys_survive_crash_and_splits() {
    let cfg = common::shadow_cfg(128);
    let pool = PmemPool::create(cfg).unwrap();
    let table: DashEh<VarKey> = DashEh::create(pool.clone(), common::small_eh_cfg()).unwrap();
    let keys = var_keys(6_000, 9, 24);
    for (i, k) in keys.iter().enumerate() {
        table.insert(k, i as u64).unwrap();
    }
    let img = pool.crash_image();
    drop(table);
    let pool2 = PmemPool::open(img, cfg).unwrap();
    let t2: DashEh<VarKey> = DashEh::open(pool2).unwrap();
    for (i, k) in keys.iter().enumerate() {
        assert_eq!(t2.get(k), Some(i as u64), "var key {i} lost in crash");
    }
}

#[test]
fn concurrent_var_key_inserts() {
    let pool = PmemPool::create(PoolConfig::with_size(256 << 20)).unwrap();
    let table: Arc<DashLh<VarKey>> =
        Arc::new(DashLh::create(pool, DashConfig::default()).unwrap());
    let keys = Arc::new(var_keys(12_000, 11, 16));
    let threads = 8;
    let per = keys.len() / threads;
    std::thread::scope(|s| {
        for tid in 0..threads {
            let table = table.clone();
            let keys = keys.clone();
            s.spawn(move || {
                for i in tid * per..(tid + 1) * per {
                    table.insert(&keys[i], i as u64).unwrap();
                }
            });
        }
    });
    for (i, k) in keys.iter().enumerate() {
        assert_eq!(table.get(k), Some(i as u64));
    }
}
