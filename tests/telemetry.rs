//! The observability surface over the wire: SLOWLOG ring semantics
//! (wrap, reset, id monotonicity), Prometheus exposition validity under
//! live load, the sectioned INFO layout, and — ignored by default — the
//! proof that the default INFO payload no longer scales with key count.
#![cfg(unix)]

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

use dash_repro::{serve_with, EngineConfig, RespClient, ServeOptions, ServerHandle, ShardedDash};

/// An in-memory server with the telemetry knobs under test.
fn telemetry_server(shards: usize, shard_mb: usize, opts: ServeOptions) -> ServerHandle {
    let engine = ShardedDash::open(&EngineConfig {
        shards,
        shard_bytes: shard_mb << 20,
        dir: None,
        ..EngineConfig::default()
    })
    .unwrap();
    serve_with(engine, "127.0.0.1:0", opts).unwrap()
}

/// Scrape `GET <path>` from the metrics endpoint: `(status_line, body)`.
fn http_get(addr: std::net::SocketAddr, request: &str) -> (String, String) {
    let mut stream = TcpStream::connect(addr).unwrap();
    stream.write_all(request.as_bytes()).unwrap();
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).unwrap();
    let text = String::from_utf8(raw).unwrap();
    let (head, body) = text.split_once("\r\n\r\n").expect("response must have a header block");
    (head.lines().next().unwrap_or_default().to_string(), body.to_string())
}

#[test]
fn slowlog_wraps_resets_and_keeps_ids_monotonic_over_tcp() {
    // Threshold 0: every command is slow, so the ring (cap 128) wraps
    // deterministically.
    let server = telemetry_server(
        2,
        16,
        ServeOptions { slowlog_threshold_us: Some(0), ..Default::default() },
    );
    let mut c = RespClient::connect(server.addr()).unwrap();
    const ISSUED: usize = 300; // well past the 128-entry cap
    for i in 0..ISSUED {
        c.enqueue(&[b"SET", format!("slow:{i:04}").as_bytes(), b"v"]);
    }
    c.flush().unwrap();
    for _ in 0..ISSUED {
        c.read_reply().unwrap();
    }

    // Wrap: the ring retains exactly its capacity, not everything.
    let len = c.slowlog_len().unwrap();
    assert_eq!(len, 128, "ring must hold exactly SLOWLOG_CAP after {ISSUED} slow commands");

    // Newest first, ids strictly decreasing, and the newest id proves
    // eviction didn't recycle ids (300 commands → ids past 128).
    let entries = c.slowlog_get(10).unwrap();
    assert_eq!(entries.len(), 10);
    for pair in entries.windows(2) {
        assert!(pair[0].id > pair[1].id, "GET must be newest-first: {pair:?}");
    }
    assert!(
        entries[0].id >= ISSUED as i64 - 1,
        "ids must be monotonic across wrap, got newest {}",
        entries[0].id
    );
    // The entry carries the command, the key prefix and a worker id.
    let set_entry = entries.iter().find(|e| e.cmd == "SET").expect("a SET must be in the log");
    assert!(set_entry.key.starts_with("slow:"), "{set_entry:?}");
    assert!(set_entry.worker >= 0);

    // RESET clears the ring; ids keep counting (Redis semantics). The
    // RESET/LEN commands are themselves over-threshold at 0 µs, so the
    // ring isn't empty when LEN executes — but it must be tiny.
    let newest_before_reset = entries[0].id;
    c.slowlog_reset().unwrap();
    let len_after = c.slowlog_len().unwrap();
    assert!(len_after <= 2, "RESET must clear the ring, LEN saw {len_after}");
    c.command(&[b"SET", b"after-reset", b"v"]).unwrap();
    let after = c.slowlog_get(128).unwrap();
    assert!(!after.iter().any(|e| e.key == "slow:0000"), "old entries must be gone");
    assert!(
        after.iter().all(|e| e.id > newest_before_reset),
        "ids must keep counting across RESET: {after:?}"
    );

    // Bad argument shape is an error, not a hangup.
    let reply = c.command(&[b"SLOWLOG", b"GET", b"wat"]).unwrap();
    assert!(matches!(reply, dash_repro::dash_server::Value::Error(_)), "{reply:?}");
    server.shutdown();
}

#[test]
fn slowlog_default_threshold_ignores_fast_commands() {
    // Default threshold is 10 ms; in-memory point ops are microseconds.
    let server = telemetry_server(2, 16, ServeOptions::default());
    let mut c = RespClient::connect(server.addr()).unwrap();
    for i in 0..200u32 {
        c.command(&[b"SET", format!("fast:{i}").as_bytes(), b"v"]).unwrap();
    }
    assert_eq!(c.slowlog_len().unwrap(), 0, "fast commands must not be logged");
    server.shutdown();
}

#[test]
fn prometheus_scrape_is_valid_and_cumulative_under_load() {
    let server = telemetry_server(
        2,
        16,
        ServeOptions { metrics_addr: Some("127.0.0.1:0".into()), ..Default::default() },
    );
    let metrics_addr = server.metrics_addr().expect("metrics endpoint must be bound");
    let addr = server.addr();

    // Live writers during the scrape: the endpoint shares the accept
    // loop, so it must stay responsive and consistent mid-load.
    let stop = AtomicBool::new(false);
    let body = std::thread::scope(|s| {
        for t in 0..2 {
            let stop = &stop;
            s.spawn(move || {
                let mut c = RespClient::connect(addr).unwrap();
                let mut i = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let key = format!("load:{t}:{i}");
                    c.command(&[b"SET", key.as_bytes(), b"value-under-load"]).unwrap();
                    c.command(&[b"GET", key.as_bytes()]).unwrap();
                    i += 1;
                }
            });
        }
        // Let some load accrue, then scrape a few times.
        std::thread::sleep(Duration::from_millis(100));
        let mut last_body = String::new();
        for _ in 0..3 {
            let (status, body) = http_get(metrics_addr, "GET /metrics HTTP/1.0\r\n\r\n");
            assert_eq!(status, "HTTP/1.0 200 OK");
            last_body = body;
        }
        stop.store(true, Ordering::Relaxed);
        last_body
    });

    // Core series are present.
    assert!(body.contains("dash_cmd_latency_seconds_bucket"), "{body}");
    assert!(body.lines().any(|l| l == "dash_worker_panics_total 0"), "{body}");
    assert!(body.contains("dash_connections_accepted_total"), "{body}");
    assert!(body.contains("dash_shard_keys"), "{body}");
    assert!(body.contains("dash_eh_splits_total"), "{body}");

    // Histogram validity per command family: `le` bounds strictly
    // increasing, bucket values cumulative (non-decreasing), the +Inf
    // bucket equal to _count, and _sum present.
    for cmd in ["get", "set"] {
        let bucket_prefix = format!("dash_cmd_latency_seconds_bucket{{cmd=\"{cmd}\",le=\"");
        let mut last_le = f64::NEG_INFINITY;
        let mut last_value = 0u64;
        let mut inf_value = None;
        let mut buckets = 0;
        for line in body.lines() {
            let Some(rest) = line.strip_prefix(&bucket_prefix) else { continue };
            let (le_str, value_str) = rest.split_once("\"} ").unwrap();
            let value: u64 = value_str.parse().unwrap();
            assert!(value >= last_value, "buckets must be cumulative: {line}");
            last_value = value;
            buckets += 1;
            if le_str == "+Inf" {
                inf_value = Some(value);
            } else {
                let le: f64 = le_str.parse().unwrap();
                assert!(le > last_le, "le bounds must increase: {line}");
                last_le = le;
            }
        }
        assert!(buckets > 10, "family {cmd} must expose its bucket series");
        let count_line = format!("dash_cmd_latency_seconds_count{{cmd=\"{cmd}\"}} ");
        let count: u64 = body
            .lines()
            .find_map(|l| l.strip_prefix(&count_line))
            .expect("_count must be present")
            .parse()
            .unwrap();
        assert_eq!(inf_value, Some(count), "family {cmd}: +Inf bucket must equal _count");
        assert!(count > 0, "family {cmd} saw live load");
        let sum_line = format!("dash_cmd_latency_seconds_sum{{cmd=\"{cmd}\"}} ");
        assert!(body.lines().any(|l| l.starts_with(&sum_line)), "_sum must be present");
    }

    // Routing: unknown paths 404, non-GET 405 — and neither kills the
    // endpoint for the next scrape.
    let (status, _) = http_get(metrics_addr, "GET /nope HTTP/1.0\r\n\r\n");
    assert_eq!(status, "HTTP/1.0 404 Not Found");
    let (status, _) = http_get(metrics_addr, "POST /metrics HTTP/1.0\r\n\r\n");
    assert_eq!(status, "HTTP/1.0 405 Method Not Allowed");
    let (status, _) = http_get(metrics_addr, "GET / HTTP/1.0\r\n\r\n");
    assert_eq!(status, "HTTP/1.0 200 OK");
    server.shutdown();
}

#[test]
fn info_is_sectioned_and_typed_accessors_read_it() {
    let server = telemetry_server(2, 16, ServeOptions::default());
    let mut c = RespClient::connect(server.addr()).unwrap();
    c.command(&[b"SET", b"k1", b"v"]).unwrap();
    c.command(&[b"GET", b"k1"]).unwrap();

    // Default INFO: every cheap section, no scan_len.
    let info = c.info().unwrap();
    for section in ["# dash-server", "# replication", "# stats", "# latency", "# shards"] {
        assert!(info.contains(section), "default INFO must embed {section}: {info}");
    }
    assert!(!info.contains("scan_len"), "default INFO must not pay the O(keys) scan");

    // Section fetchers return just their section.
    let stats = c.stats_info().unwrap();
    assert!(stats.starts_with("# stats"), "{stats}");
    assert!(stats.contains("commands_served:"), "{stats}");
    assert!(stats.contains("eh_splits:"), "{stats}");
    assert!(stats.contains("epoch_pins:"), "{stats}");
    let latency = c.latency_info().unwrap();
    assert!(latency.starts_with("# latency"), "{latency}");
    assert!(latency.contains("cmd_get_count:"), "{latency}");
    assert!(latency.contains("cmd_get_p99_us:"), "after a GET there is a GET p99: {latency}");
    assert!(latency.contains("cmd_all_count:"), "{latency}");
    let keyspace = c.keyspace_info().unwrap();
    assert!(keyspace.starts_with("# keyspace"), "{keyspace}");
    assert!(keyspace.contains("scan_len:1"), "{keyspace}");

    // Typed accessors.
    assert_eq!(c.stat_u64("worker_panics").unwrap(), 0);
    assert_eq!(c.stat_u64("accept_errors").unwrap(), 0);
    assert!(c.stat_u64("commands_served").unwrap() > 0);
    assert!(c.stat_u64("epoch_pins").unwrap() > 0, "GET/SET pin the epoch");

    // Unknown sections are a clean error.
    let reply = c.command(&[b"INFO", b"bogus"]).unwrap();
    assert!(matches!(reply, dash_repro::dash_server::Value::Error(_)), "{reply:?}");
    server.shutdown();
}

/// The acceptance gate for the INFO redesign: the default payload's cost
/// must not scale with key count, while `INFO keyspace` (which carries
/// the scan ground truth) visibly does. Ignored by default — loading
/// 500k keys takes a few seconds; CI runs it via `--ignored`.
#[test]
#[ignore]
fn default_info_cost_does_not_scale_with_keys() {
    let server = telemetry_server(4, 256, ServeOptions::default());
    let mut c = RespClient::connect(server.addr()).unwrap();

    let load = |c: &mut RespClient, from: u32, to: u32| {
        let mut n = from;
        while n < to {
            let batch = 512.min(to - n);
            for i in n..n + batch {
                c.enqueue(&[b"SET", format!("key:{i:08}").as_bytes(), b"x"]);
            }
            c.flush().unwrap();
            for _ in 0..batch {
                c.read_reply().unwrap();
            }
            n += batch;
        }
    };
    let median_us = |c: &mut RespClient, cmd: &[&[u8]]| -> u64 {
        let mut times: Vec<u64> = (0..15)
            .map(|_| {
                let t0 = Instant::now();
                c.command(cmd).unwrap();
                t0.elapsed().as_micros() as u64
            })
            .collect();
        times.sort_unstable();
        times[times.len() / 2]
    };

    load(&mut c, 0, 10_000);
    let default_10k = median_us(&mut c, &[b"INFO"]);
    load(&mut c, 10_000, 500_000);
    let default_500k = median_us(&mut c, &[b"INFO"]);
    let keyspace_500k = median_us(&mut c, &[b"INFO", b"keyspace"]);
    println!(
        "INFO timings: default@10k {default_10k} us, default@500k {default_500k} us, \
         keyspace@500k {keyspace_500k} us"
    );

    // 50x the data must not mean 50x the default INFO. Allow 10x plus a
    // grace floor so scheduler noise on a µs-scale payload can't flake.
    assert!(
        default_500k < default_10k * 10 + 2_000,
        "default INFO scaled with keys: {default_10k} us @10k vs {default_500k} us @500k"
    );
    // The opt-in section really does pay the O(keys) scan.
    assert!(
        keyspace_500k > default_500k * 3,
        "INFO keyspace must cost visibly more than default INFO at 500k keys \
         ({keyspace_500k} us vs {default_500k} us)"
    );
    server.shutdown();
}
