//! Instant-recovery semantics (§4.8): constant pool-level work, lazy
//! per-segment recovery amortized over accesses, version stamping, and
//! the contrast with CCEH's full directory scan.

use dash_repro::dash_common::uniform_keys;
use dash_repro::{
    Cceh, CcehConfig, DashEh, DashLh, PmemPool,
};

mod common;
use common::{shadow_cfg as shadow, small_eh_cfg, small_lh_cfg};

/// Dash's open() must not touch segments: PM reads at open time stay
/// constant as data grows (the paper's "instant" claim), while CCEH's
/// grow linearly.
#[test]
fn dash_open_work_is_constant_cceh_is_linear() {
    let mut dash_reads = Vec::new();
    let mut cceh_reads = Vec::new();
    for n in [4_000usize, 16_000] {
        // Dash-EH.
        let cfg = shadow(128);
        let pool = PmemPool::create(cfg).unwrap();
        let t: DashEh<u64> = DashEh::create(pool.clone(), small_eh_cfg()).unwrap();
        for (i, k) in uniform_keys(n, 3).iter().enumerate() {
            t.insert(k, i as u64).unwrap();
        }
        let img = pool.crash_image();
        drop(t);
        let pool2 = PmemPool::open(img, cfg).unwrap();
        let before = pool2.stats();
        let _t2: DashEh<u64> = DashEh::open(pool2.clone()).unwrap();
        dash_reads.push(pool2.stats().since(&before).pm_reads);

        // CCEH.
        let pool = PmemPool::create(cfg).unwrap();
        let t: Cceh<u64> = Cceh::create(
            pool.clone(),
            CcehConfig { bucket_bits: 4, initial_depth: 1, ..Default::default() },
        )
        .unwrap();
        for (i, k) in uniform_keys(n, 3).iter().enumerate() {
            t.insert(k, i as u64).unwrap();
        }
        let img = pool.crash_image();
        drop(t);
        let pool2 = PmemPool::open(img, cfg).unwrap();
        let before = pool2.stats();
        let _t2: Cceh<u64> = Cceh::open(pool2.clone()).unwrap();
        cceh_reads.push(pool2.stats().since(&before).pm_reads);
    }
    assert_eq!(dash_reads[0], dash_reads[1], "Dash open() must do constant work: {dash_reads:?}");
    assert!(
        cceh_reads[1] >= cceh_reads[0] * 2,
        "CCEH open() must scale with data: {cceh_reads:?}"
    );
}

/// Lazy recovery is amortized: the first access to a segment pays for its
/// recovery; later accesses to the same segment don't.
#[test]
fn lazy_recovery_amortizes_over_accesses() {
    let cfg = shadow(64);
    let pool = PmemPool::create(cfg).unwrap();
    let t: DashEh<u64> = DashEh::create(pool.clone(), small_eh_cfg()).unwrap();
    let keys = uniform_keys(4_000, 5);
    for (i, k) in keys.iter().enumerate() {
        t.insert(k, i as u64).unwrap();
    }
    let img = pool.crash_image();
    drop(t);
    let pool2 = PmemPool::open(img, cfg).unwrap();
    let t2: DashEh<u64> = DashEh::open(pool2.clone()).unwrap();

    // First pass recovers segments (heavy); second pass is steady state.
    let before = pool2.stats();
    for k in &keys {
        assert!(t2.get(k).is_some());
    }
    let first = pool2.stats().since(&before);
    let before = pool2.stats();
    for k in &keys {
        assert!(t2.get(k).is_some());
    }
    let second = pool2.stats().since(&before);
    assert!(
        first.pm_reads > second.pm_reads,
        "first pass must include recovery reads: {} vs {}",
        first.pm_reads,
        second.pm_reads
    );
    // Steady state after recovery: pure probing, ~2 reads per positive
    // search at most (target + maybe probing bucket).
    assert!(
        second.pm_reads <= 3 * keys.len() as u64,
        "steady-state reads too high: {}",
        second.pm_reads
    );
}

/// A clean shutdown skips recovery entirely: no recovery work even on
/// first access.
#[test]
fn clean_shutdown_skips_lazy_recovery() {
    let cfg = shadow(64);
    let pool = PmemPool::create(cfg).unwrap();
    let t: DashLh<u64> = DashLh::create(pool.clone(), small_lh_cfg()).unwrap();
    let keys = uniform_keys(3_000, 7);
    for (i, k) in keys.iter().enumerate() {
        t.insert(k, i as u64).unwrap();
    }
    let img = pool.close_image();
    drop(t);
    let pool2 = PmemPool::open(img, cfg).unwrap();
    assert!(pool2.recovery_outcome().clean);
    let t2: DashLh<u64> = DashLh::open(pool2.clone()).unwrap();
    // Two identical passes: no recovery delta between them.
    let before = pool2.stats();
    for k in keys.iter().take(500) {
        assert!(t2.get(k).is_some());
    }
    let first = pool2.stats().since(&before);
    let before = pool2.stats();
    for k in keys.iter().take(500) {
        assert!(t2.get(k).is_some());
    }
    let second = pool2.stats().since(&before);
    let slack = 50; // epoch bookkeeping etc.
    assert!(
        first.pm_reads <= second.pm_reads + slack,
        "clean reopen must not pay recovery on first access: {} vs {}",
        first.pm_reads,
        second.pm_reads
    );
}

/// Mutations after a crash-recovery cycle persist across a second cycle
/// (recovered state is fully writable and re-recoverable).
#[test]
fn recovery_then_mutate_then_recover_again() {
    let cfg = shadow(64);
    let pool = PmemPool::create(cfg).unwrap();
    let t: DashEh<u64> = DashEh::create(pool.clone(), small_eh_cfg()).unwrap();
    let keys = uniform_keys(3_000, 9);
    for k in &keys {
        t.insert(k, 1).unwrap();
    }
    let img = pool.crash_image();
    drop(t);

    let pool2 = PmemPool::open(img, cfg).unwrap();
    let t2: DashEh<u64> = DashEh::open(pool2.clone()).unwrap();
    for k in keys.iter().step_by(2) {
        assert!(t2.update(k, 2));
    }
    for k in keys.iter().step_by(3) {
        t2.remove(k);
    }
    let img2 = pool2.crash_image();
    drop(t2);

    let pool3 = PmemPool::open(img2, cfg).unwrap();
    let t3: DashEh<u64> = DashEh::open(pool3).unwrap();
    for (i, k) in keys.iter().enumerate() {
        let expect = if i % 3 == 0 {
            None
        } else if i % 2 == 0 {
            Some(2)
        } else {
            Some(1)
        };
        assert_eq!(t3.get(k), expect, "key {i} after double recovery");
    }
}

/// Crash DURING post-crash lazy recovery: the half-recovered image must
/// still recover correctly (recovery is idempotent).
#[test]
fn crash_during_lazy_recovery_is_recoverable() {
    let cfg = shadow(64);
    let pool = PmemPool::create(cfg).unwrap();
    let t: DashEh<u64> = DashEh::create(pool.clone(), small_eh_cfg()).unwrap();
    let keys = uniform_keys(4_000, 11);
    for (i, k) in keys.iter().enumerate() {
        t.insert(k, i as u64).unwrap();
    }
    let img = pool.crash_image();
    drop(t);

    // First recovery, interrupted: only touch a fraction of the keys,
    // then cut power again — and drop all flushes midway through that
    // partial pass for good measure.
    let pool2 = PmemPool::open(img, cfg).unwrap();
    let t2: DashEh<u64> = DashEh::open(pool2.clone()).unwrap();
    for k in keys.iter().take(500) {
        assert!(t2.get(k).is_some());
    }
    pool2.set_flush_limit(Some(pool2.flushes_issued() + 20));
    for k in keys.iter().skip(500).take(500) {
        let _ = t2.get(k);
    }
    let img2 = pool2.crash_image();
    drop(t2);

    let pool3 = PmemPool::open(img2, cfg).unwrap();
    let t3: DashEh<u64> = DashEh::open(pool3).unwrap();
    for (i, k) in keys.iter().enumerate() {
        assert_eq!(t3.get(k), Some(i as u64), "key {i} lost across nested recovery");
    }
}
