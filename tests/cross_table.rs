//! Cross-table integration tests: all four hash tables (Dash-EH, Dash-LH,
//! CCEH, Level Hashing) driven through the shared `PmHashTable` trait
//! must agree on the same workload.

use std::sync::Arc;

use dash_repro::dash_common::{negative_keys, uniform_keys};
use dash_repro::{
    PmHashTable, ScanCursor, TableError,
};

mod common;
use common::all_tables;

#[test]
fn identical_results_across_tables() {
    let keys = uniform_keys(30_000, 101);
    let absent = negative_keys(10_000, 101);
    for table in all_tables(256) {
        for (i, k) in keys.iter().enumerate() {
            table.insert(k, i as u64).unwrap_or_else(|e| panic!("{}: insert {i}: {e}", table.name()));
        }
        for (i, k) in keys.iter().enumerate() {
            assert_eq!(table.get(k), Some(i as u64), "{}: positive search {i}", table.name());
        }
        for k in &absent {
            assert_eq!(table.get(k), None, "{}: negative search", table.name());
        }
        assert_eq!(table.len_scan(), keys.len() as u64, "{}", table.name());
    }
}

/// The batch surface (`pin` + `get_many`/`insert_many`/`remove_many`)
/// must agree with the single-key ops on every table — Dash-EH/LH run
/// their native single-pin batch loops, CCEH and Level the trait's
/// default fallbacks.
#[test]
fn batch_ops_agree_with_singles_everywhere() {
    let keys = uniform_keys(6_000, 202);
    let items: Vec<(u64, u64)> = keys.iter().enumerate().map(|(i, k)| (*k, i as u64)).collect();
    for table in all_tables(128) {
        let name = table.name();
        // An explicit session around the whole workload: epoch pins are
        // re-entrant, so everything below shares one epoch entry.
        let session = table.pin();
        assert!(
            table.insert_many(&items).iter().all(|r| r.is_ok()),
            "{name}: batch insert of fresh keys"
        );
        assert!(
            table
                .insert_many(&items[..32])
                .iter()
                .all(|r| matches!(r, Err(TableError::Duplicate))),
            "{name}: batch re-insert must report Duplicate per item"
        );
        for (i, got) in table.get_many(&keys).into_iter().enumerate() {
            assert_eq!(got, Some(i as u64), "{name}: batched get of key {i}");
        }
        let half = keys.len() / 2;
        assert!(
            table.remove_many(&keys[..half]).into_iter().all(|b| b),
            "{name}: batch remove of present keys"
        );
        assert!(
            table.remove_many(&keys[..half]).into_iter().all(|b| !b),
            "{name}: second batch remove sees absences"
        );
        drop(session);
        // Singles observe exactly what the batches did.
        for (i, k) in keys.iter().enumerate() {
            let expect = if i < half { None } else { Some(i as u64) };
            assert_eq!(table.get(k), expect, "{name}: key {i} after batch ops");
        }
        assert_eq!(table.len_scan(), (keys.len() - half) as u64, "{name}");
    }
}

/// The iteration surface must agree with the point-read surface on every
/// table: `for_each_kv` and a drained `scan` (native on Dash-EH/LH, the
/// full-walk trait default on CCEH/Level) see exactly the records that
/// `get` sees, and the cursor round-trips through its wire form.
#[test]
fn iteration_agrees_with_point_reads_everywhere() {
    let keys = uniform_keys(4_000, 909);
    for table in all_tables(128) {
        let name = table.name();
        for (i, k) in keys.iter().enumerate() {
            table.insert(k, i as u64).unwrap();
        }
        // Remove a third so the walks must skip dead slots.
        for k in keys.iter().step_by(3) {
            assert!(table.remove(k), "{name}");
        }
        let expected: std::collections::HashMap<u64, u64> = keys
            .iter()
            .enumerate()
            .filter(|(i, _)| i % 3 != 0)
            .map(|(i, k)| (*k, i as u64))
            .collect();
        let mut walked = std::collections::HashMap::new();
        table.for_each_kv(&mut |k, v| {
            assert!(walked.insert(*k, v).is_none(), "{name}: for_each_kv duplicated {k}");
        });
        assert_eq!(walked, expected, "{name}: for_each_kv vs point reads");
        let mut scanned = std::collections::HashMap::new();
        let mut cursor = ScanCursor::START;
        loop {
            let page = table.scan(cursor, 128);
            for (k, v) in page.items {
                assert!(scanned.insert(k, v).is_none(), "{name}: scan duplicated {k}");
            }
            if page.cursor.is_done() {
                break;
            }
            cursor = ScanCursor::resume(page.cursor.pos());
        }
        assert_eq!(scanned, expected, "{name}: scan vs point reads");
    }
}

#[test]
fn duplicates_rejected_everywhere() {
    for table in all_tables(64) {
        table.insert(&1, 10).unwrap();
        assert!(
            matches!(table.insert(&1, 20), Err(TableError::Duplicate)),
            "{}: duplicate must be rejected",
            table.name()
        );
        assert_eq!(table.get(&1), Some(10), "{}: original value intact", table.name());
    }
}

#[test]
fn update_remove_reinsert_everywhere() {
    let keys = uniform_keys(5_000, 33);
    for table in all_tables(128) {
        for k in &keys {
            table.insert(k, 1).unwrap();
        }
        for k in &keys {
            assert!(table.update(k, 2), "{}", table.name());
        }
        for k in keys.iter().step_by(3) {
            assert!(table.remove(k), "{}", table.name());
        }
        for (i, k) in keys.iter().enumerate() {
            let expect = if i % 3 == 0 { None } else { Some(2) };
            assert_eq!(table.get(k), expect, "{}: key {i}", table.name());
        }
        for k in keys.iter().step_by(3) {
            table.insert(k, 3).unwrap();
            assert_eq!(table.get(k), Some(3), "{}", table.name());
        }
    }
}

#[test]
fn interleaved_insert_delete_churn() {
    // Sustained churn: inserts and deletes interleaved so structural
    // operations (splits, stash traffic, resizes) happen under load.
    let keys = uniform_keys(20_000, 55);
    for table in all_tables(256) {
        let name = table.name();
        for window in keys.chunks(2_000) {
            for k in window {
                table.insert(k, 9).unwrap();
            }
            // Delete the first half of the window again.
            for k in &window[..window.len() / 2] {
                assert!(table.remove(k), "{name}");
            }
        }
        let expected: u64 = keys.chunks(2_000).map(|w| (w.len() - w.len() / 2) as u64).sum();
        assert_eq!(table.len_scan(), expected, "{name}");
    }
}

#[test]
fn concurrent_disjoint_writers_all_tables() {
    let keys = Arc::new(uniform_keys(16_000, 77));
    let threads = 8;
    let per = keys.len() / threads;
    for table in all_tables(256) {
        let table: Arc<dyn PmHashTable<u64>> = Arc::from(table);
        std::thread::scope(|s| {
            for tid in 0..threads {
                let table = table.clone();
                let keys = keys.clone();
                s.spawn(move || {
                    for i in tid * per..(tid + 1) * per {
                        table.insert(&keys[i], i as u64).unwrap();
                    }
                });
            }
        });
        for (i, k) in keys.iter().enumerate() {
            assert_eq!(table.get(k), Some(i as u64), "{}: key {i}", table.name());
        }
    }
}

#[test]
fn racing_duplicate_inserts_one_winner_everywhere() {
    for table in all_tables(64) {
        let table: Arc<dyn PmHashTable<u64>> = Arc::from(table);
        let wins = std::sync::atomic::AtomicUsize::new(0);
        std::thread::scope(|s| {
            for _ in 0..8 {
                let table = table.clone();
                let wins = &wins;
                s.spawn(move || {
                    if table.insert(&0xDEAD_BEEF, 1).is_ok() {
                        wins.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
                    }
                });
            }
        });
        assert_eq!(wins.load(std::sync::atomic::Ordering::SeqCst), 1, "{}", table.name());
    }
}
