//! The cluster layer end to end over TCP: slot assignment and the
//! CLUSTERDOWN/MOVED/CROSSSLOT dispatch gate, hash-tag routing,
//! redirect-following [`ClusterClient`] behavior against a stale slot
//! cache, the headline live slot migration under concurrent load (zero
//! lost acknowledged writes, every key served exactly once), and the
//! crash-safety story: a half-imported range is invisible without
//! ASKING, and a re-migration after the source restarts converges —
//! including purging the stale partial import at the target.
#![cfg(unix)]

use std::collections::HashSet;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::{Duration, Instant};

use dash_repro::dash_server::{key_slot, ClusterClient, Value};
use dash_repro::{serve_with, EngineConfig, RespClient, ServeOptions, ServerHandle, ShardedDash};

mod common;
use common::TempDir;

/// An in-memory cluster-mode server announcing its own bound address.
fn cluster_server(shards: usize) -> ServerHandle {
    let engine =
        ShardedDash::open(&EngineConfig { shards, shard_bytes: 8 << 20, dir: None, ..EngineConfig::default() }).unwrap();
    serve_with(
        engine,
        "127.0.0.1:0",
        ServeOptions { cluster_announce: Some("auto".into()), ..Default::default() },
    )
    .unwrap()
}

fn connect(server: &ServerHandle) -> RespClient {
    RespClient::connect(server.addr()).unwrap()
}

fn assert_ok(v: &Value) {
    assert_eq!(*v, Value::Simple("OK".into()), "expected +OK, got {v:?}");
}

/// `CLUSTER ASSIGN start end addr` against one node.
fn assign(c: &mut RespClient, start: u16, end: u16, addr: &str) {
    let reply = c
        .command(&[
            b"CLUSTER",
            b"ASSIGN",
            start.to_string().as_bytes(),
            end.to_string().as_bytes(),
            addr.as_bytes(),
        ])
        .unwrap();
    assert_ok(&reply);
}

/// A key whose slot falls in `[start, end]`, found by counting up from
/// `*salt` (deterministic across runs for a fixed starting salt).
fn key_in_range(start: u16, end: u16, salt: &mut u64) -> Vec<u8> {
    loop {
        *salt += 1;
        let key = format!("ck:{:08x}", *salt).into_bytes();
        let slot = key_slot(&key);
        if (start..=end).contains(&slot) {
            return key;
        }
    }
}

/// Poll `cond` every 50 ms until true, panicking with `what` after 30 s.
fn wait_for(what: &str, mut cond: impl FnMut() -> bool) {
    let t0 = Instant::now();
    while !cond() {
        assert!(t0.elapsed() < Duration::from_secs(30), "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(50));
    }
}

/// One field of the `CLUSTER INFO` bulk text.
fn cluster_info_field(c: &mut RespClient, name: &str) -> Option<String> {
    let Value::Bulk(text) = c.command(&[b"CLUSTER", b"INFO"]).unwrap() else {
        panic!("CLUSTER INFO must reply bulk");
    };
    String::from_utf8(text)
        .unwrap()
        .lines()
        .find_map(|l| l.strip_prefix(name).and_then(|r| r.strip_prefix(':')).map(str::to_string))
}

/// Block until the node's outbound migration reports done (and fail the
/// test immediately if it reports failed).
fn wait_migration_done(c: &mut RespClient) {
    wait_for("migration to complete", || {
        let state = cluster_info_field(c, "migration_state").unwrap_or_default();
        assert_ne!(
            state,
            "failed",
            "migration failed: {}",
            cluster_info_field(c, "migration_error").unwrap_or_default()
        );
        state == "done" && cluster_info_field(c, "migration_active").as_deref() == Some("0")
    });
}

/// The deterministic value every test writer stores under `key`.
fn val_of(key: &[u8]) -> Vec<u8> {
    let mut v = b"val:".to_vec();
    v.extend_from_slice(key);
    v
}

#[test]
fn clusterdown_moved_and_crossslot_gate() {
    let a = cluster_server(2);
    let b = cluster_server(2);
    let (a_addr, b_addr) = (a.addr().to_string(), b.addr().to_string());
    let mut ca = connect(&a);
    let mut cb = connect(&b);

    // Unassigned slots refuse keyed commands outright.
    match ca.command(&[b"SET", b"k", b"v"]).unwrap() {
        Value::Error(e) => assert!(e.starts_with("CLUSTERDOWN"), "got {e:?}"),
        other => panic!("expected CLUSTERDOWN, got {other:?}"),
    }

    // Split the slot space; every node learns the whole map.
    for c in [&mut ca, &mut cb] {
        assign(c, 0, 8191, &a_addr);
        assign(c, 8192, 16383, &b_addr);
    }
    assert_eq!(cluster_info_field(&mut ca, "cluster_state").as_deref(), Some("ok"));
    assert_eq!(cluster_info_field(&mut ca, "cluster_known_nodes").as_deref(), Some("2"));

    // A key the OTHER node owns: exact -MOVED with the owner's address.
    let mut salt = 0u64;
    let kb = key_in_range(8192, 16383, &mut salt);
    let slot = key_slot(&kb);
    match ca.command(&[b"SET", &kb, b"v"]).unwrap() {
        Value::Error(e) => assert_eq!(e, format!("MOVED {slot} {b_addr}")),
        other => panic!("expected MOVED, got {other:?}"),
    }
    // The owner serves it; reads see the write.
    assert_ok(&cb.command(&[b"SET", &kb, b"v"]).unwrap());
    assert_eq!(cb.command(&[b"GET", &kb]).unwrap(), Value::Bulk(b"v".to_vec()));
    // MOVED counts on the redirecting node.
    let moved: u64 = cluster_info_field(&mut ca, "moved_redirects").unwrap().parse().unwrap();
    assert!(moved >= 1);

    // Keys in different slots in one multi-key command: CROSSSLOT, even
    // when one of them is locally owned.
    let k1 = key_in_range(0, 8191, &mut salt);
    let mut k2 = key_in_range(0, 8191, &mut salt);
    while key_slot(&k2) == key_slot(&k1) {
        k2 = key_in_range(0, 8191, &mut salt);
    }
    match ca.command(&[b"MSET", &k1, b"v", &k2, b"v"]).unwrap() {
        Value::Error(e) => assert!(e.starts_with("CROSSSLOT"), "got {e:?}"),
        other => panic!("expected CROSSSLOT, got {other:?}"),
    }

    // Hash tags force co-location: {tag}a and {tag}b share a slot, so
    // the multi-key command is legal on the owner.
    let (t1, t2) = (b"{tag}a".to_vec(), b"{tag}b".to_vec());
    assert_eq!(key_slot(&t1), key_slot(&t2));
    let owner = if key_slot(&t1) <= 8191 { &mut ca } else { &mut cb };
    assert_ok(&owner.command(&[b"MSET", &t1, b"1", &t2, b"2"]).unwrap());
    assert_eq!(
        owner.command(&[b"MGET", &t1, &t2]).unwrap(),
        Value::Array(vec![Value::Bulk(b"1".to_vec()), Value::Bulk(b"2".to_vec())])
    );

    // Non-cluster servers reject the cluster surface explicitly.
    let plain = serve_with(
        ShardedDash::open(&EngineConfig { shards: 1, shard_bytes: 8 << 20, dir: None, ..EngineConfig::default() }).unwrap(),
        "127.0.0.1:0",
        ServeOptions::default(),
    )
    .unwrap();
    let mut cp = connect(&plain);
    for cmd in [&[b"CLUSTER" as &[u8], b"INFO"] as &[&[u8]], &[b"ASKING"]] {
        match cp.command(cmd).unwrap() {
            Value::Error(e) => assert!(e.contains("not started in cluster mode"), "got {e:?}"),
            other => panic!("expected an error, got {other:?}"),
        }
    }

    plain.shutdown();
    a.shutdown();
    b.shutdown();
}

#[test]
fn cluster_client_routes_and_recovers_from_stale_cache() {
    let a = cluster_server(2);
    let b = cluster_server(2);
    let (a_addr, b_addr) = (a.addr().to_string(), b.addr().to_string());
    let mut ca = connect(&a);
    let mut cb = connect(&b);
    for c in [&mut ca, &mut cb] {
        assign(c, 0, 9999, &a_addr);
        assign(c, 10000, 16383, &b_addr);
    }

    // Seeded with only node a, the client must still reach keys on b.
    let mut cc = ClusterClient::connect(&a_addr, Duration::from_secs(5)).unwrap();
    assert_eq!(cc.known_nodes().len(), 2);
    let keys: Vec<Vec<u8>> = (0..300).map(|i| format!("cc:{i:04}").into_bytes()).collect();
    for k in &keys {
        cc.set(k, &val_of(k)).unwrap();
    }
    for k in &keys {
        assert_eq!(cc.get(k).unwrap().as_deref(), Some(val_of(k).as_slice()));
    }
    assert_eq!(cc.del(&keys[0]).unwrap(), 1);
    assert_eq!(cc.get(&keys[0]).unwrap(), None);

    // Invalidate the client's cache: move an (empty) tail range from b
    // to a behind its back. The next op in that range gets -MOVED from
    // b, and the client must follow it and update its cache.
    for c in [&mut ca, &mut cb] {
        assign(c, 16000, 16383, &a_addr);
    }
    let mut salt = 0u64;
    let k = key_in_range(16000, 16383, &mut salt);
    let before = cc.stats();
    cc.set(&k, b"fresh").unwrap();
    assert_eq!(cc.get(&k).unwrap().as_deref(), Some(b"fresh" as &[u8]));
    assert!(cc.stats().moved > before.moved, "the stale-cache op must observe a MOVED");

    a.shutdown();
    b.shutdown();
}

/// The headline: a live slot migration under sustained concurrent load
/// loses zero acknowledged writes and ends with every key served
/// exactly once.
#[test]
fn live_migration_under_load_zero_lost_writes_exactly_once() {
    let a = cluster_server(2);
    let b = cluster_server(2);
    let (a_addr, b_addr) = (a.addr().to_string(), b.addr().to_string());
    let mut ca = connect(&a);
    let mut cb = connect(&b);
    for c in [&mut ca, &mut cb] {
        assign(c, 0, 16383, &a_addr);
    }

    // Preload a keyspace entirely owned by a.
    let keys: Vec<Vec<u8>> = (0..600).map(|i| format!("mig:{i:05}").into_bytes()).collect();
    {
        let mut cc = ClusterClient::connect(&a_addr, Duration::from_secs(5)).unwrap();
        for k in &keys {
            cc.set(k, &val_of(k)).unwrap();
        }
    }

    let stop = AtomicBool::new(false);
    let ops_done = AtomicU64::new(0);
    let seeds = format!("{a_addr},{b_addr}");
    std::thread::scope(|s| {
        // Sustained 50/50 load through redirect-following clients while
        // the range moves under it. Values are a pure function of the
        // key, so every successful GET is exactly verifiable.
        for t in 0..2u64 {
            let (stop, ops_done, seeds, keys) = (&stop, &ops_done, &seeds, &keys);
            s.spawn(move || {
                let mut cc = ClusterClient::connect(seeds, Duration::from_secs(5)).unwrap();
                let mut i = t;
                while !stop.load(Ordering::Relaxed) {
                    let k = &keys[(i % keys.len() as u64) as usize];
                    if i % 2 == 0 {
                        cc.set(k, &val_of(k)).unwrap();
                    } else {
                        let got = cc.get(k).unwrap();
                        assert_eq!(
                            got.as_deref(),
                            Some(val_of(k).as_slice()),
                            "acknowledged write lost or corrupted during migration"
                        );
                    }
                    ops_done.fetch_add(1, Ordering::Relaxed);
                    i += 7;
                }
            });
        }

        // Let the writers get going, then migrate more than half the
        // slot space out from under them.
        wait_for("writers warmed up", || ops_done.load(Ordering::Relaxed) > 200);
        let mut ctl = connect(&a);
        assert_ok(&ctl
            .command(&[b"CLUSTER", b"MIGRATE", b"0", b"9999", b_addr.as_bytes()])
            .unwrap());
        wait_migration_done(&mut ctl);
        // Keep load running a little past the flip, then quiesce.
        let after_flip = ops_done.load(Ordering::Relaxed);
        wait_for("post-flip traffic", || ops_done.load(Ordering::Relaxed) > after_flip + 100);
        stop.store(true, Ordering::Relaxed);
    });

    // Source-side accounting: exactly one migration, completed.
    assert_eq!(cluster_info_field(&mut ca, "migrations_completed").as_deref(), Some("1"));
    assert_eq!(cluster_info_field(&mut ca, "migrations_failed").as_deref(), Some("0"));

    // The source now redirects the migrated range with -MOVED.
    let migrated = keys.iter().find(|k| key_slot(k) <= 9999).unwrap();
    match ca.command(&[b"GET", migrated.as_slice()]).unwrap() {
        Value::Error(e) => {
            assert_eq!(e, format!("MOVED {} {b_addr}", key_slot(migrated)))
        }
        other => panic!("expected MOVED from the source after the flip, got {other:?}"),
    }

    // Exactly-once: the two stores partition the keyspace — no key on
    // both nodes, none lost, and the counters agree with the scans.
    let scan_a: HashSet<Vec<u8>> = ca.scan_all(512).unwrap().into_iter().collect();
    let scan_b: HashSet<Vec<u8>> = cb.scan_all(512).unwrap().into_iter().collect();
    assert!(scan_a.is_disjoint(&scan_b), "a key is held by both nodes after the migration");
    assert_eq!(scan_a.len() + scan_b.len(), keys.len());
    for k in &keys {
        let holder = if key_slot(k) <= 9999 { &scan_b } else { &scan_a };
        assert!(holder.contains(k), "key on the wrong side of the migrated range");
    }
    let dbsize = |c: &mut RespClient| match c.command(&[b"DBSIZE"]).unwrap() {
        Value::Integer(n) => n as usize,
        other => panic!("DBSIZE gave {other:?}"),
    };
    assert_eq!(dbsize(&mut ca) + dbsize(&mut cb), keys.len());

    // And the whole keyspace verifies exactly through redirects.
    let mut cc = ClusterClient::connect(&seeds, Duration::from_secs(5)).unwrap();
    for k in &keys {
        assert_eq!(cc.get(k).unwrap().as_deref(), Some(val_of(k).as_slice()));
    }

    a.shutdown();
    b.shutdown();
}

/// The crash-safety satellite: a half-imported range must be invisible
/// at the target (no ASKING → MOVED), a killed source still owns the
/// range after restart (ownership is the only durable state), and a
/// re-migration converges — purging the stale partial import first.
#[test]
fn half_import_invisible_and_crash_remigration_converges() {
    let dir = TempDir::new("cluster-crash-src");
    let a = serve_with(
        ShardedDash::open(&EngineConfig {
            shards: 2,
            shard_bytes: 8 << 20,
            dir: Some(dir.path.clone()),
            ..EngineConfig::default()
        })
        .unwrap(),
        "127.0.0.1:0",
        ServeOptions { cluster_announce: Some("auto".into()), ..Default::default() },
    )
    .unwrap();
    let b = cluster_server(2);
    let (a_addr, b_addr) = (a.addr().to_string(), b.addr().to_string());
    let mut ca = connect(&a);
    let mut cb = connect(&b);
    for c in [&mut ca, &mut cb] {
        assign(c, 0, 16383, &a_addr);
    }
    let keys: Vec<Vec<u8>> = (0..200).map(|i| format!("crash:{i:04}").into_bytes()).collect();
    for k in &keys {
        assert_ok(&ca.command(&[b"SET", k, &val_of(k)]).unwrap());
    }

    // Simulate a source that died mid-bulk-copy: the target accepted
    // the import and holds a few ASKING-written keys — with a value the
    // re-migration must overwrite, so a surviving "sneak" proves the
    // stale partial import leaked.
    assert_ok(&cb
        .command(&[b"CLUSTER", b"IMPORTING", b"0", b"9999", a_addr.as_bytes()])
        .unwrap());
    let half = keys.iter().find(|k| key_slot(k) <= 9999).unwrap().clone();
    assert_ok(&cb.command(&[b"ASKING"]).unwrap());
    assert_ok(&cb.command(&[b"SET", &half, b"sneak"]).unwrap());

    // Half-imported keys are invisible without ASKING: importing slots
    // redirect back to the owner.
    match cb.command(&[b"GET", &half]).unwrap() {
        Value::Error(e) => assert_eq!(e, format!("MOVED {} {a_addr}", key_slot(&half))),
        other => panic!("half-imported range must MOVED without ASKING, got {other:?}"),
    }
    // ...and ASKING is one-shot: it covered exactly the SET above, so a
    // plain GET after another ASKING+GET pair still redirects.
    assert_ok(&cb.command(&[b"ASKING"]).unwrap());
    assert_eq!(cb.command(&[b"GET", &half]).unwrap(), Value::Bulk(b"sneak".to_vec()));
    assert!(matches!(cb.command(&[b"GET", &half]).unwrap(), Value::Error(_)));

    // Kill the source. Its slot-map ownership is durable; every
    // migration phase is volatile by design, so after a restart the
    // source is the unambiguous owner of the whole range.
    drop(ca);
    a.shutdown();
    let a2 = serve_with(
        ShardedDash::open(&EngineConfig {
            shards: 2,
            shard_bytes: 8 << 20,
            dir: Some(dir.path.clone()),
            ..EngineConfig::default()
        })
        .unwrap(),
        "127.0.0.1:0",
        // The restarted process keeps its cluster identity (a real
        // deployment restarts on the same host:port; here the port is
        // ephemeral, so the identity is pinned explicitly).
        ServeOptions { cluster_announce: Some(a_addr.clone()), ..Default::default() },
    )
    .unwrap();
    let mut ca2 = connect(&a2);
    assert_eq!(
        cluster_info_field(&mut ca2, "cluster_slots_owned").as_deref(),
        Some("16384"),
        "restarted source must still own every slot"
    );
    for k in &keys {
        assert_eq!(ca2.command(&[b"GET", k]).unwrap(), Value::Bulk(val_of(k)));
    }

    // Re-migrate. The target still has the stale active import; the
    // handshake clears it (IMPORT-ABORT + retry), which also purges the
    // sneaked key before the fresh bulk copy.
    assert_ok(&ca2
        .command(&[b"CLUSTER", b"MIGRATE", b"0", b"9999", b_addr.as_bytes()])
        .unwrap());
    wait_migration_done(&mut ca2);

    // Converged: the target serves the range with the real values (the
    // stale "sneak" was purged), the source serves the rest, and the
    // two partition the keyspace exactly.
    for k in &keys {
        let owner = if key_slot(k) <= 9999 { &mut cb } else { &mut ca2 };
        assert_eq!(owner.command(&[b"GET", k]).unwrap(), Value::Bulk(val_of(k)));
    }
    let scan_a: HashSet<Vec<u8>> = ca2.scan_all(512).unwrap().into_iter().collect();
    let scan_b: HashSet<Vec<u8>> = cb.scan_all(512).unwrap().into_iter().collect();
    assert!(scan_a.is_disjoint(&scan_b));
    assert_eq!(scan_a.len() + scan_b.len(), keys.len());

    a2.shutdown();
    b.shutdown();
}

/// The client-timeout satellite: a configurable connect/read deadline,
/// with a normalized TimedOut error instead of an indefinite hang.
#[test]
fn client_read_timeout_fails_fast_against_a_silent_server() {
    // A listener that accepts and never replies.
    let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap().to_string();
    let hold = std::thread::spawn(move || listener.accept().map(|(s, _)| s));

    let t0 = Instant::now();
    let mut c = RespClient::connect_timeout(&addr, Duration::from_millis(300)).unwrap();
    let err = c.command(&[b"PING"]).unwrap_err();
    assert_eq!(err.kind(), std::io::ErrorKind::TimedOut, "got {err:?}");
    assert!(err.to_string().contains("read timeout"), "got {err}");
    assert!(
        t0.elapsed() < Duration::from_secs(5),
        "timeout must fire near the configured 300ms, took {:?}",
        t0.elapsed()
    );
    drop(hold.join().unwrap());
}

/// The telemetry satellite: `repl_log_bytes` in INFO replication and as
/// a Prometheus gauge, plus the cluster metric family.
#[test]
fn repl_log_bytes_and_cluster_metrics_surface() {
    let dir = TempDir::new("cluster-metrics");
    let engine = ShardedDash::open(&EngineConfig {
        shards: 2,
        shard_bytes: 8 << 20,
        dir: Some(dir.path.clone()),
        ..EngineConfig::default()
    })
    .unwrap();
    let server = serve_with(
        engine,
        "127.0.0.1:0",
        ServeOptions {
            cluster_announce: Some("auto".into()),
            metrics_addr: Some("127.0.0.1:0".into()),
            ..Default::default()
        },
    )
    .unwrap();
    let addr = server.addr().to_string();
    let mut c = connect(&server);
    assign(&mut c, 0, 16383, &addr);
    for i in 0..50 {
        assert_ok(&c.command(&[b"SET", format!("m:{i}").as_bytes(), b"v"]).unwrap());
    }

    // INFO replication carries the redo-log footprint.
    let bytes: u64 =
        c.info_field("repl_log_bytes").unwrap().expect("repl_log_bytes in INFO").parse().unwrap();
    assert!(bytes > 0, "50 SETs against a persistent store must have logged bytes");

    // The Prometheus endpoint exports the same gauge and the cluster
    // family.
    use std::io::{Read, Write};
    let mut stream = std::net::TcpStream::connect(server.metrics_addr().unwrap()).unwrap();
    stream.write_all(b"GET /metrics HTTP/1.0\r\n\r\n").unwrap();
    let mut body = String::new();
    stream.read_to_string(&mut body).unwrap();
    for needle in [
        "dash_repl_log_bytes ",
        "dash_cluster_enabled 1",
        "dash_cluster_slots_assigned 16384",
        "dash_cluster_slots_owned 16384",
        "dash_cluster_migrations_started_total 0",
    ] {
        assert!(body.contains(needle), "metrics must contain {needle:?}");
    }
    let logged: u64 = body
        .lines()
        .find_map(|l| l.strip_prefix("dash_repl_log_bytes "))
        .unwrap()
        .trim()
        .parse()
        .unwrap();
    assert_eq!(logged, bytes, "INFO and Prometheus must agree on the log footprint");

    server.shutdown();
}

/// Redirect hop counts propagate via TRACEID: a client op that chases a
/// MOVED redirect lands its span on the final owner carrying hops ≥ 1,
/// under the same span id the first node assigned.
#[test]
fn redirects_propagate_trace_hops() {
    let a = cluster_server(2);
    let b = cluster_server(2);
    let (a_addr, b_addr) = (a.addr().to_string(), b.addr().to_string());
    let mut ca = connect(&a);
    let mut cb = connect(&b);
    for c in [&mut ca, &mut cb] {
        assign(c, 0, 16383, &a_addr);
    }

    let mut cc = ClusterClient::connect(&a_addr, Duration::from_secs(5)).unwrap();
    cc.set_trace_every(1);

    // Direct hit: the span lands on the owner with zero hops, and the
    // client learns the id the server assigned.
    let mut salt = 0u64;
    let k0 = key_in_range(0, 16383, &mut salt);
    cc.set(&k0, b"v0").unwrap();
    let id0 = cc.last_trace_id();
    assert!(id0 > 0, "a traced op must learn its server-assigned span id");
    let rec0 = ca.trace_get(id0).unwrap().expect("span on the direct owner");
    assert_eq!(rec0.hops, 0);
    assert_eq!(rec0.reason, "forced");

    // Move every slot to b behind the client's back: its next op gets
    // -MOVED from a and the retry reaches b carrying hop count 1.
    for c in [&mut ca, &mut cb] {
        assign(c, 0, 16383, &b_addr);
    }
    let k1 = key_in_range(0, 16383, &mut salt);
    cc.set(&k1, b"v1").unwrap();
    let id1 = cc.last_trace_id();
    assert!(id1 > 0 && id1 != id0);
    let rec1 = cb.trace_get(id1).unwrap().expect("span on the final owner after MOVED");
    assert!(rec1.hops >= 1, "redirected span must carry its hop count: {rec1:?}");
    assert_eq!(rec1.reason, "forced");
    assert_eq!(rec1.cmd, "SET");
    // The redirecting node holds the MOVED attempt under the same id.
    let rec_a = ca.trace_get(id1).unwrap().expect("the first attempt traced on a");
    assert_eq!(rec_a.hops, 0);

    a.shutdown();
    b.shutdown();
}
