//! The §4.8 recovery-version corner cases: the global version V is one
//! byte; after 255 crashes it wraps. The paper's protocol resets V and
//! re-stamps every segment so lazy recovery stays sound. These tests
//! drive the table through enough crash/reopen cycles to cross the wrap
//! boundary and check consistency throughout.
//!
//! Crossing the one-byte boundary takes 255+ full crash/reopen cycles,
//! so the pure-survival sweeps are `#[ignore]`d by default (~20 s each);
//! `mutations_across_wrap_boundary` stays in the default run as the
//! representative wrap-crossing check. Run `cargo test -- --ignored`
//! when touching recovery-version code.

use dash_repro::dash_common::uniform_keys;
use dash_repro::{DashConfig, DashEh, DashLh, PmHashTable, PmemPool};

mod common;
use common::{shadow_cfg, small_eh_cfg, small_lh_cfg};

fn cfg() -> dash_repro::PoolConfig {
    shadow_cfg(32)
}

/// 300 crash/reopen cycles on Dash-EH: the version byte wraps at 255 and
/// data must remain intact and the table operable on every reopen.
#[test]
#[ignore = "slow (~20 s): 300 crash cycles; run with --ignored"]
fn eh_survives_version_wraparound() {
    let pool_cfg = cfg();
    let pool = PmemPool::create(pool_cfg).unwrap();
    let t: DashEh<u64> = DashEh::create(pool.clone(), small_eh_cfg()).unwrap();
    let keys = uniform_keys(500, 21);
    for k in &keys {
        t.insert(k, k.wrapping_mul(9)).unwrap();
    }
    let mut img = pool.crash_image();
    drop(t);

    let mut wrapped_seen = false;
    for round in 0..300u32 {
        let pool = PmemPool::open(img, pool_cfg).unwrap();
        wrapped_seen |= pool.recovery_outcome().wrapped;
        let t: DashEh<u64> = DashEh::open(pool.clone()).unwrap();
        // Spot-check a rotating slice each round; full check at wrap.
        let probe: Box<dyn Iterator<Item = &u64>> = if round % 50 == 0 || round == 255 {
            Box::new(keys.iter())
        } else {
            Box::new(keys.iter().skip((round as usize * 7) % keys.len()).take(20))
        };
        for k in probe {
            assert_eq!(t.get(k), Some(k.wrapping_mul(9)), "round {round}: key {k}");
        }
        img = pool.crash_image();
        drop(t);
    }
    assert!(wrapped_seen, "300 crashes must wrap the one-byte version");
}

/// Same crossing for Dash-LH (it shares the lazy-recovery machinery but
/// walks segment arrays instead of a directory).
#[test]
#[ignore = "slow (~20 s): 300 crash cycles; run with --ignored"]
fn lh_survives_version_wraparound() {
    let pool_cfg = cfg();
    let pool = PmemPool::create(pool_cfg).unwrap();
    let t: DashLh<u64> = DashLh::create(pool.clone(), small_lh_cfg()).unwrap();
    let keys = uniform_keys(500, 23);
    for k in &keys {
        t.insert(k, k.wrapping_mul(11)).unwrap();
    }
    let mut img = pool.crash_image();
    drop(t);

    let mut wrapped_seen = false;
    for round in 0..300u32 {
        let pool = PmemPool::open(img, pool_cfg).unwrap();
        wrapped_seen |= pool.recovery_outcome().wrapped;
        let t: DashLh<u64> = DashLh::open(pool.clone()).unwrap();
        let step = (round as usize * 13) % keys.len();
        for k in keys.iter().skip(step).take(20) {
            assert_eq!(t.get(k), Some(k.wrapping_mul(11)), "round {round}: key {k}");
        }
        img = pool.crash_image();
        drop(t);
    }
    assert!(wrapped_seen);
}

/// Mutations interleaved with the wrap: insert fresh keys on rounds near
/// the boundary and verify the combined state after crossing it.
#[test]
fn mutations_across_wrap_boundary() {
    let pool_cfg = cfg();
    let pool = PmemPool::create(pool_cfg).unwrap();
    let t: DashEh<u64> = DashEh::create(pool.clone(), small_eh_cfg()).unwrap();
    let base = uniform_keys(200, 29);
    for k in &base {
        t.insert(k, 7).unwrap();
    }
    let mut img = pool.crash_image();
    drop(t);

    // Burn crash cycles up to just below the wrap, then mutate around it.
    let fresh = uniform_keys(40, 31);
    let mut inserted = Vec::new();
    for round in 0..260u32 {
        let pool = PmemPool::open(img, pool_cfg).unwrap();
        let t: DashEh<u64> = DashEh::open(pool.clone()).unwrap();
        if (250..=258).contains(&round) {
            let k = fresh[(round - 250) as usize];
            t.insert(&k, u64::from(round)).unwrap();
            inserted.push((k, u64::from(round)));
        }
        img = pool.crash_image();
        drop(t);
    }
    let pool = PmemPool::open(img, pool_cfg).unwrap();
    let t: DashEh<u64> = DashEh::open(pool).unwrap();
    for k in &base {
        assert_eq!(t.get(k), Some(7));
    }
    for (k, v) in &inserted {
        assert_eq!(t.get(k), Some(*v), "key inserted at wrap boundary lost");
    }
    assert_eq!(t.len_scan(), (base.len() + inserted.len()) as u64);
}

/// A clean shutdown between crashes must not bump the version: verify via
/// the recovery outcome that clean reopens report `clean` and crashes
/// don't, mixing both kinds.
#[test]
fn clean_and_crash_reopens_interleave() {
    let pool_cfg = cfg();
    let pool = PmemPool::create(pool_cfg).unwrap();
    let t: DashEh<u64> = DashEh::create(pool.clone(), DashConfig::default()).unwrap();
    let keys = uniform_keys(300, 37);
    for k in &keys {
        t.insert(k, 1).unwrap();
    }
    let mut img = pool.close_image();
    drop(t);

    for round in 0..6u32 {
        let pool = PmemPool::open(img, pool_cfg).unwrap();
        let outcome = pool.recovery_outcome();
        if round % 2 == 0 {
            assert!(outcome.clean, "round {round} followed a clean shutdown");
        } else {
            assert!(!outcome.clean, "round {round} followed a crash");
        }
        let t: DashEh<u64> = DashEh::open(pool.clone()).unwrap();
        for k in keys.iter().take(50) {
            assert_eq!(t.get(k), Some(1));
        }
        img = if round % 2 == 0 { pool.crash_image() } else { pool.close_image() };
        drop(t);
    }
}
