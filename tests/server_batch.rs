//! Multi-key operations through the whole service stack: RESP
//! `MGET`/`MSET` and variadic `DEL`/`EXISTS` round-trips over TCP, plus
//! durability of batch-written keys across both a clean restart and a
//! crash-style teardown (the in-process equivalent of `kill -9`: the
//! pools are dropped without `close()`, so the clean marker stays unset
//! and reopen takes the crash-recovery path).
#![cfg(unix)]

use dash_repro::dash_server::Value;
use dash_repro::{serve, EngineConfig, RespClient, ShardedDash};

mod common;
use common::TempDir;

fn dir_cfg(dir: &TempDir, shards: usize) -> EngineConfig {
    EngineConfig { shards, shard_bytes: 16 << 20, dir: Some(dir.path.clone()), ..EngineConfig::default() }
}

fn mem_cfg(shards: usize) -> EngineConfig {
    EngineConfig { shards, shard_bytes: 16 << 20, dir: None, ..EngineConfig::default() }
}

fn kv(i: u32) -> (Vec<u8>, Vec<u8>) {
    (
        format!("batch:{i:06}").into_bytes(),
        format!("value-{}", i.wrapping_mul(0x9E37_79B9)).into_bytes(),
    )
}

#[test]
fn mget_mset_roundtrip_over_tcp() {
    let server = serve(ShardedDash::open(&mem_cfg(4)).unwrap(), "127.0.0.1:0").unwrap();
    let mut c = RespClient::connect(server.addr()).unwrap();

    const N: u32 = 500;
    let pairs: Vec<(Vec<u8>, Vec<u8>)> = (0..N).map(kv).collect();
    let refs: Vec<(&[u8], &[u8])> =
        pairs.iter().map(|(k, v)| (k.as_slice(), v.as_slice())).collect();
    c.mset(&refs).unwrap();
    assert_eq!(c.command(&[b"DBSIZE"]).unwrap(), Value::Integer(N as i64));

    // One MGET for the whole keyspace plus interleaved absent keys:
    // reply order must mirror request order exactly.
    let mut query: Vec<Vec<u8>> = Vec::new();
    for (i, (k, _)) in pairs.iter().enumerate() {
        query.push(k.clone());
        if i % 7 == 0 {
            query.push(format!("absent:{i}").into_bytes());
        }
    }
    let qrefs: Vec<&[u8]> = query.iter().map(|k| k.as_slice()).collect();
    let got = c.mget(&qrefs).unwrap();
    let mut pi = 0;
    for (q, g) in query.iter().zip(got) {
        if q.starts_with(b"absent:") {
            assert_eq!(g, None, "absent key must be Nil in position");
        } else {
            assert_eq!(g.as_deref(), Some(pairs[pi].1.as_slice()), "key {pi} out of order");
            pi += 1;
        }
    }

    // Variadic EXISTS counts repeats; variadic DEL reports removals.
    let (k0, _) = kv(0);
    let (k1, _) = kv(1);
    assert_eq!(c.exists(&[&k0, &k1, b"absent:x", &k0]).unwrap(), 3);
    assert_eq!(c.del(&[&k0, b"absent:x", &k1]).unwrap(), 2);
    assert_eq!(c.exists(&[&k0, &k1]).unwrap(), 0);
    assert_eq!(c.command(&[b"DBSIZE"]).unwrap(), Value::Integer((N - 2) as i64));
    server.shutdown();
}

#[test]
fn mset_overwrites_and_mixes_with_singles() {
    let server = serve(ShardedDash::open(&mem_cfg(2)).unwrap(), "127.0.0.1:0").unwrap();
    let mut c = RespClient::connect(server.addr()).unwrap();
    assert_eq!(c.command(&[b"SET", b"a", b"old"]).unwrap(), Value::Simple("OK".into()));
    c.mset(&[(b"a", b"new"), (b"b", b"fresh")]).unwrap();
    assert_eq!(c.command(&[b"GET", b"a"]).unwrap(), Value::bulk(*b"new"));
    assert_eq!(
        c.mget(&[b"a", b"b"]).unwrap(),
        vec![Some(b"new".to_vec()), Some(b"fresh".to_vec())]
    );
    assert_eq!(c.command(&[b"DBSIZE"]).unwrap(), Value::Integer(2), "overwrite must not grow");
    server.shutdown();
}

#[test]
fn mset_written_keys_survive_crash_teardown() {
    let dir = TempDir::new("batch-crash");
    const N: u32 = 2_000;
    {
        let store = ShardedDash::open(&dir_cfg(&dir, 3)).unwrap();
        let pairs: Vec<(Vec<u8>, Vec<u8>)> = (0..N).map(kv).collect();
        // Write the whole keyspace in MSET batches of 64, then drop the
        // store WITHOUT close(): a process kill. Every mset() that
        // returned is an acknowledged, durable batch.
        for chunk in pairs.chunks(64) {
            let refs: Vec<(&[u8], &[u8])> =
                chunk.iter().map(|(k, v)| (k.as_slice(), v.as_slice())).collect();
            store.mset(&refs).unwrap();
        }
        // A batch delete is acknowledged the same way.
        let (k_gone, _) = kv(7);
        assert_eq!(store.mdel(&[k_gone.as_slice()]).unwrap(), 1);
    }
    let store = ShardedDash::open(&dir_cfg(&dir, 3)).unwrap();
    assert_eq!(store.recovered_shards(), 3);
    for info in store.shard_infos() {
        assert!(!info.clean, "missing close() must look like a crash: {info:?}");
    }
    let keys: Vec<Vec<u8>> = (0..N).map(|i| kv(i).0).collect();
    let refs: Vec<&[u8]> = keys.iter().map(|k| k.as_slice()).collect();
    let got = store.mget(&refs).unwrap();
    for (i, g) in got.into_iter().enumerate() {
        let (_, v) = kv(i as u32);
        if i == 7 {
            assert_eq!(g, None, "batch-deleted key must stay deleted after crash");
        } else {
            assert_eq!(g, Some(v), "MSET-written key {i} lost in crash");
        }
    }
    assert_eq!(store.len(), (N - 1) as u64);
}

#[test]
fn mset_written_keys_survive_server_restart() {
    let dir = TempDir::new("batch-restart");
    const N: u32 = 1_000;
    {
        let server = serve(ShardedDash::open(&dir_cfg(&dir, 4)).unwrap(), "127.0.0.1:0").unwrap();
        let mut c = RespClient::connect(server.addr()).unwrap();
        let pairs: Vec<(Vec<u8>, Vec<u8>)> = (0..N).map(kv).collect();
        for chunk in pairs.chunks(50) {
            let refs: Vec<(&[u8], &[u8])> =
                chunk.iter().map(|(k, v)| (k.as_slice(), v.as_slice())).collect();
            c.mset(&refs).unwrap();
        }
        server.shutdown();
    }
    {
        let server = serve(ShardedDash::open(&dir_cfg(&dir, 4)).unwrap(), "127.0.0.1:0").unwrap();
        let mut c = RespClient::connect(server.addr()).unwrap();
        assert_eq!(c.command(&[b"DBSIZE"]).unwrap(), Value::Integer(N as i64));
        let keys: Vec<Vec<u8>> = (0..N).map(|i| kv(i).0).collect();
        let refs: Vec<&[u8]> = keys.iter().map(|k| k.as_slice()).collect();
        for (i, g) in c.mget(&refs).unwrap().into_iter().enumerate() {
            let (_, v) = kv(i as u32);
            assert_eq!(g, Some(v), "MSET-written key {i} lost across restart");
        }
        server.shutdown();
    }
}

/// Batch and single-key commands racing from multiple connections: every
/// MGET element must be either absent or the exact value for its key.
#[test]
fn concurrent_batch_and_single_commands() {
    let server = serve(ShardedDash::open(&mem_cfg(4)).unwrap(), "127.0.0.1:0").unwrap();
    let addr = server.addr();
    const ROUNDS: usize = 150;
    const SPAN: u32 = 60;
    std::thread::scope(|s| {
        for t in 0..4u32 {
            s.spawn(move || {
                let mut c = RespClient::connect(addr).unwrap();
                for r in 0..ROUNDS {
                    let base = (r as u32 + t) % SPAN;
                    let pairs: Vec<(Vec<u8>, Vec<u8>)> =
                        (base..base + 8).map(|i| kv(i % SPAN)).collect();
                    match r % 3 {
                        0 => {
                            let refs: Vec<(&[u8], &[u8])> = pairs
                                .iter()
                                .map(|(k, v)| (k.as_slice(), v.as_slice()))
                                .collect();
                            c.mset(&refs).unwrap();
                        }
                        1 => {
                            let keys: Vec<&[u8]> =
                                pairs.iter().map(|(k, _)| k.as_slice()).collect();
                            for ((_, want), got) in pairs.iter().zip(c.mget(&keys).unwrap()) {
                                if let Some(v) = got {
                                    assert_eq!(&v, want, "MGET returned a foreign value");
                                }
                            }
                        }
                        _ => {
                            let keys: Vec<&[u8]> =
                                pairs.iter().map(|(k, _)| k.as_slice()).collect();
                            let _ = c.del(&keys).unwrap();
                        }
                    }
                }
            });
        }
    });
    server.shutdown();
}
