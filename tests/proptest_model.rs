//! Property-based model checking: random operation sequences against a
//! `BTreeMap` reference model, including clean restarts, crash restarts
//! at arbitrary points, and the batched (`get_many`/`insert_many`/
//! `remove_many`) operation surface, for both Dash variants.
//!
//! The Dash-EH model check and the random-crash-point check run on every
//! `cargo test`; the LH and merging variants re-walk the same state
//! machine with different table configs and take ~30 s each, so they are
//! `#[ignore]`d by default — run `cargo test -- --ignored` (or
//! `--include-ignored`) before touching restart or merge code paths.

use std::collections::BTreeMap;

use proptest::prelude::*;

use dash_repro::dash_common::PmHashTable;
use dash_repro::{DashConfig, DashEh, DashLh, PmemPool, PoolConfig, TableError};

#[derive(Debug, Clone)]
enum Op {
    Insert(u16, u64),
    Remove(u16),
    Update(u16, u64),
    Get(u16),
    /// Batched variants drive the trait's `*_many` surface: one epoch
    /// entry per batch, per-item results checked against the model
    /// applied left to right (so intra-batch duplicates/repeats matter).
    InsertMany(Vec<(u16, u64)>),
    RemoveMany(Vec<u16>),
    GetMany(Vec<u16>),
    CleanRestart,
    CrashRestart,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        6 => (any::<u16>(), any::<u64>()).prop_map(|(k, v)| Op::Insert(k, v)),
        2 => any::<u16>().prop_map(Op::Remove),
        2 => (any::<u16>(), any::<u64>()).prop_map(|(k, v)| Op::Update(k, v)),
        3 => any::<u16>().prop_map(Op::Get),
        2 => proptest::collection::vec((any::<u16>(), any::<u64>()), 0..12).prop_map(Op::InsertMany),
        1 => proptest::collection::vec(any::<u16>(), 0..12).prop_map(Op::RemoveMany),
        2 => proptest::collection::vec(any::<u16>(), 0..12).prop_map(Op::GetMany),
        1 => Just(Op::CleanRestart),
        1 => Just(Op::CrashRestart),
    ]
}

/// Key space is narrowed to u16 so collisions (duplicate inserts, removes
/// of absent keys) happen often.
fn key_of(k: u16) -> u64 {
    // Spread the small key space across the hash range while keeping it
    // deterministic and collision-free.
    (u64::from(k) << 32) | 0xABCD
}

mod common;

fn shadow_cfg() -> PoolConfig {
    common::shadow_cfg(32)
}

fn check_model<T, MkOpen>(
    ops: Vec<Op>,
    mk_create: impl Fn(std::sync::Arc<PmemPool>) -> T,
    mk_open: MkOpen,
) where
    T: PmHashTable<u64>,
    MkOpen: Fn(std::sync::Arc<PmemPool>) -> T,
{
    let mut pool = PmemPool::create(shadow_cfg()).unwrap();
    let mut table = mk_create(pool.clone());
    let mut model: BTreeMap<u64, u64> = BTreeMap::new();

    for op in ops {
        match op {
            Op::Insert(k, v) => {
                let k = key_of(k);
                match table.insert(&k, v) {
                    Ok(()) => {
                        assert!(!model.contains_key(&k), "insert succeeded but model has {k}");
                        model.insert(k, v);
                    }
                    Err(TableError::Duplicate) => {
                        assert!(model.contains_key(&k), "spurious duplicate for {k}");
                    }
                    Err(e) => panic!("unexpected error: {e}"),
                }
            }
            Op::Remove(k) => {
                let k = key_of(k);
                assert_eq!(table.remove(&k), model.remove(&k).is_some(), "remove {k}");
            }
            Op::Update(k, v) => {
                let k = key_of(k);
                let expected = model.contains_key(&k);
                assert_eq!(table.update(&k, v), expected, "update {k}");
                if expected {
                    model.insert(k, v);
                }
            }
            Op::Get(k) => {
                let k = key_of(k);
                assert_eq!(table.get(&k), model.get(&k).copied(), "get {k}");
            }
            Op::InsertMany(items) => {
                let items: Vec<(u64, u64)> =
                    items.iter().map(|(k, v)| (key_of(*k), *v)).collect();
                let results = table.insert_many(&items);
                assert_eq!(results.len(), items.len(), "one result per item");
                for ((k, v), r) in items.iter().zip(results) {
                    match r {
                        Ok(()) => {
                            assert!(!model.contains_key(k), "batch insert succeeded but model has {k}");
                            model.insert(*k, *v);
                        }
                        Err(TableError::Duplicate) => {
                            assert!(model.contains_key(k), "spurious batch duplicate for {k}");
                        }
                        Err(e) => panic!("unexpected batch error: {e}"),
                    }
                }
            }
            Op::RemoveMany(ks) => {
                let ks: Vec<u64> = ks.iter().map(|k| key_of(*k)).collect();
                let results = table.remove_many(&ks);
                assert_eq!(results.len(), ks.len(), "one result per key");
                for (k, removed) in ks.iter().zip(results) {
                    assert_eq!(removed, model.remove(k).is_some(), "batch remove {k}");
                }
            }
            Op::GetMany(ks) => {
                let ks: Vec<u64> = ks.iter().map(|k| key_of(*k)).collect();
                let got = table.get_many(&ks);
                assert_eq!(got.len(), ks.len(), "one result per key");
                for (k, g) in ks.iter().zip(got) {
                    assert_eq!(g, model.get(k).copied(), "batch get {k}");
                }
            }
            Op::CleanRestart => {
                let img = pool.close_image();
                drop(table);
                pool = PmemPool::open(img, shadow_cfg()).unwrap();
                assert!(pool.recovery_outcome().clean);
                table = mk_open(pool.clone());
            }
            Op::CrashRestart => {
                // All operations completed, so everything is persisted;
                // a crash here must lose nothing.
                let img = pool.crash_image();
                drop(table);
                pool = PmemPool::open(img, shadow_cfg()).unwrap();
                assert!(!pool.recovery_outcome().clean);
                table = mk_open(pool.clone());
            }
        }
    }
    // Final audit.
    for (k, v) in &model {
        assert_eq!(table.get(k), Some(*v), "final audit {k}");
    }
    assert_eq!(table.len_scan(), model.len() as u64);
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    #[test]
    fn dash_eh_matches_model(ops in proptest::collection::vec(op_strategy(), 1..250)) {
        check_model(
            ops,
            |pool| DashEh::<u64>::create(pool, common::small_eh_cfg()).unwrap(),
            |pool| DashEh::<u64>::open(pool).unwrap(),
        );
    }

    #[test]
    #[ignore = "slow (~30 s): same model as dash_eh_matches_model on the LH config; run with --ignored"]
    fn dash_lh_matches_model(ops in proptest::collection::vec(op_strategy(), 1..250)) {
        check_model(
            ops,
            |pool| DashLh::<u64>::create(pool, common::small_lh_cfg()).unwrap(),
            |pool| DashLh::<u64>::open(pool).unwrap(),
        );
    }

    #[test]
    #[ignore = "slow (~30 s): model check with merging on; run with --ignored"]
    fn dash_eh_with_merging_matches_model(ops in proptest::collection::vec(op_strategy(), 1..250)) {
        check_model(
            ops,
            |pool| DashEh::<u64>::create(
                pool,
                DashConfig { merge_threshold: 0.25, ..common::small_eh_cfg() },
            ).unwrap(),
            |pool| DashEh::<u64>::open(pool).unwrap(),
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

    /// Crash mid-batch at a random flush cut-off: committed records must
    /// survive, in-flight ones must be atomic.
    #[test]
    fn dash_eh_random_crash_point(
        base in proptest::collection::btree_map(any::<u16>(), any::<u64>(), 1..120),
        tail in proptest::collection::btree_map(any::<u16>(), any::<u64>(), 1..40),
        cut_frac in 0.0f64..1.0,
    ) {
        let cfg = shadow_cfg();
        let pool = PmemPool::create(cfg).unwrap();
        let t: DashEh<u64> = DashEh::create(pool.clone(), common::small_eh_cfg()).unwrap();
        let mut committed = BTreeMap::new();
        for (k, v) in &base {
            let k = key_of(*k);
            if t.insert(&k, *v).is_ok() {
                committed.insert(k, *v);
            }
        }
        let lo = pool.flushes_issued();
        // Dry-run the tail to learn its flush count on a clone-free path:
        // insert, then compute the cut within the observed range.
        for (k, v) in &tail {
            let k = key_of(*k);
            let _ = t.insert(&k.wrapping_add(1), *v); // shift: avoid clobbering
        }
        let hi = pool.flushes_issued();
        let cut = lo + ((hi - lo) as f64 * cut_frac) as u64;

        // Fresh pool, same script, cut at `cut`.
        let pool = PmemPool::create(cfg).unwrap();
        let t: DashEh<u64> = DashEh::create(pool.clone(), common::small_eh_cfg()).unwrap();
        let mut committed = BTreeMap::new();
        for (k, v) in &base {
            let k = key_of(*k);
            if t.insert(&k, *v).is_ok() {
                committed.insert(k, *v);
            }
        }
        pool.set_flush_limit(Some(cut));
        for (k, v) in &tail {
            let k = key_of(*k).wrapping_add(1);
            let _ = t.insert(&k, *v);
        }
        let img = pool.crash_image();
        drop(t);

        let pool2 = PmemPool::open(img, cfg).unwrap();
        let t2: DashEh<u64> = DashEh::open(pool2).unwrap();
        for (k, v) in &committed {
            prop_assert_eq!(t2.get(k), Some(*v), "committed {} lost", k);
        }
        for (k, v) in &tail {
            let k = key_of(*k).wrapping_add(1);
            if let Some(got) = t2.get(&k) {
                prop_assert_eq!(got, *v, "torn in-flight value for {}", k);
            }
        }
    }
}
