//! Segment merging and directory halving (§4.7's shrink direction):
//! delete-heavy workloads must reclaim segments, shrink the directory,
//! keep every surviving record readable, and stay crash-consistent
//! through the forward-only merge protocol.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};

use dash_repro::dash_common::uniform_keys;
use dash_repro::{DashConfig, DashEh, PmHashTable, PmemPool, PoolConfig};

mod common;
use common::{shadow_cfg, small_eh_cfg};

fn merge_cfg() -> DashConfig {
    // Tiny segments (small_eh_cfg) so merges trigger at test scale.
    DashConfig { merge_threshold: 0.25, ..small_eh_cfg() }
}

fn table(pool_mb: usize, cfg: DashConfig) -> (std::sync::Arc<PmemPool>, DashEh<u64>) {
    let pool = PmemPool::create(PoolConfig::with_size(pool_mb << 20)).unwrap();
    let t = DashEh::create(pool.clone(), cfg).unwrap();
    (pool, t)
}

#[test]
fn delete_heavy_workload_reclaims_segments() {
    let (_pool, t) = table(64, merge_cfg());
    let keys = uniform_keys(20_000, 1);
    for (i, k) in keys.iter().enumerate() {
        t.insert(k, i as u64).unwrap();
    }
    let grown_segments = t.segment_count();
    let grown_depth = t.global_depth();

    // Delete 95 % of the records.
    for k in keys.iter().skip(keys.len() / 20) {
        assert!(t.remove(k));
    }
    let shrunk_segments = t.segment_count();
    assert!(
        shrunk_segments < grown_segments / 2,
        "merges must reclaim segments: {grown_segments} -> {shrunk_segments}"
    );
    assert!(
        t.global_depth() < grown_depth,
        "directory must halve: depth {grown_depth} -> {}",
        t.global_depth()
    );

    // Every survivor is intact; every deleted key is gone.
    for (i, k) in keys.iter().enumerate() {
        if i < keys.len() / 20 {
            assert_eq!(t.get(k), Some(i as u64), "survivor {k} lost");
        } else {
            assert_eq!(t.get(k), None, "deleted key {k} reappeared");
        }
    }
}

#[test]
fn merged_table_accepts_reinserts() {
    let (_pool, t) = table(64, merge_cfg());
    let keys = uniform_keys(8_000, 3);
    for cycle in 0..3u64 {
        for k in &keys {
            t.insert(k, k ^ cycle).unwrap();
        }
        for k in &keys {
            assert_eq!(t.get(k), Some(k ^ cycle));
        }
        for k in &keys {
            assert!(t.remove(k));
        }
        assert_eq!(t.len_scan(), 0, "cycle {cycle} left residue");
    }
    // Shrunk all the way back down.
    assert!(t.segment_count() <= 4, "segments not reclaimed: {}", t.segment_count());
}

#[test]
fn merge_disabled_by_default() {
    let (_pool, t) = table(64, small_eh_cfg());
    let keys = uniform_keys(10_000, 5);
    for k in &keys {
        t.insert(k, 1).unwrap();
    }
    let grown = t.segment_count();
    for k in &keys {
        assert!(t.remove(k));
    }
    assert_eq!(t.segment_count(), grown, "merge_threshold 0.0 must never merge");
}

/// Readers racing delete-triggered merges: every key is either visible
/// with its correct value or already deleted — never torn, and the reader
/// never crashes on a recycled segment (epoch reclamation at work).
#[test]
fn concurrent_readers_during_merges() {
    let (_pool, t) = table(128, merge_cfg());
    let t = std::sync::Arc::new(t);
    let keys = std::sync::Arc::new(uniform_keys(30_000, 7));
    for k in keys.iter() {
        t.insert(k, k.wrapping_mul(3)).unwrap();
    }
    let stop = AtomicBool::new(false);
    std::thread::scope(|s| {
        for _ in 0..4 {
            let t = t.clone();
            let keys = keys.clone();
            let stop = &stop;
            s.spawn(move || {
                let mut i = 0usize;
                while !stop.load(Ordering::Relaxed) {
                    let k = &keys[i % keys.len()];
                    if let Some(v) = t.get(k) {
                        assert_eq!(v, k.wrapping_mul(3), "torn read of {k}");
                    }
                    i += 1;
                }
            });
        }
        // Deleter: remove 97 % of keys, forcing a cascade of merges.
        for (i, k) in keys.iter().enumerate() {
            if i % 32 != 0 {
                assert!(t.remove(k));
            }
        }
        stop.store(true, Ordering::Relaxed);
    });
    for (i, k) in keys.iter().enumerate() {
        if i % 32 == 0 {
            assert_eq!(t.get(k), Some(k.wrapping_mul(3)));
        } else {
            assert_eq!(t.get(k), None);
        }
    }
}

/// Power cuts at every flush boundary inside a merge-heavy delete batch:
/// the forward-only protocol means a crashed merge either rolled forward
/// on recovery or never started; survivors are never lost.
#[test]
fn merge_crash_sweep() {
    let cfg = shadow_cfg(64);
    let keys = uniform_keys(6_000, 11);
    let survivors: Vec<u64> = keys.iter().copied().step_by(16).collect();
    let victims: Vec<u64> = keys.iter().copied().filter(|k| !survivors.contains(k)).collect();

    // Pass 1: find the flush window of the merge-triggering delete batch.
    let (flush_lo, flush_hi) = {
        let pool = PmemPool::create(cfg).unwrap();
        let t: DashEh<u64> = DashEh::create(pool.clone(), merge_cfg()).unwrap();
        for k in &keys {
            t.insert(k, k.wrapping_mul(5)).unwrap();
        }
        let grown = t.segment_count();
        let lo = pool.flushes_issued();
        for k in &victims {
            assert!(t.remove(k));
        }
        assert!(
            t.segment_count() < grown / 2,
            "sweep setup must actually merge: {grown} -> {}",
            t.segment_count()
        );
        (lo, pool.flushes_issued())
    };

    let step = ((flush_hi - flush_lo) / 16).max(1);
    let mut cut = flush_lo;
    while cut <= flush_hi {
        let pool = PmemPool::create(cfg).unwrap();
        let t: DashEh<u64> = DashEh::create(pool.clone(), merge_cfg()).unwrap();
        let mut committed = BTreeMap::new();
        for k in &keys {
            t.insert(k, k.wrapping_mul(5)).unwrap();
            committed.insert(*k, k.wrapping_mul(5));
        }
        pool.set_flush_limit(Some(cut));
        for k in &victims {
            let _ = t.remove(k);
        }
        let img = pool.crash_image();
        drop(t);

        let pool2 = PmemPool::open(img, cfg).unwrap();
        let t2: DashEh<u64> = DashEh::open(pool2).unwrap();
        // Survivors (never deleted) must be intact through any crashed
        // merge; victims may or may not have been deleted yet.
        for k in &survivors {
            assert_eq!(t2.get(k), Some(k.wrapping_mul(5)), "survivor {k} lost at cut {cut}");
        }
        for k in &victims {
            if let Some(v) = t2.get(k) {
                assert_eq!(v, k.wrapping_mul(5), "victim {k} torn at cut {cut}");
            }
        }
        // Table stays operable: finish the deletes, reinsert, read back.
        for k in &victims {
            let _ = t2.remove(k);
        }
        for k in victims.iter().take(100) {
            t2.insert(k, 42).unwrap();
            assert_eq!(t2.get(k), Some(42));
        }
        cut += step;
    }
}
