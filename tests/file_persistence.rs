//! End-to-end persistence over the file-backed pool: a Dash table written
//! through a `MAP_SHARED` mapping must survive clean shutdowns, unclean
//! teardowns (version bump + lazy recovery) and repeated reopen cycles —
//! the PMDK-pool workflow of the paper's implementation (§6.1), with pool
//! offsets standing in for its fixed-address persistent pointers.
#![cfg(unix)]

use dash_repro::dash_common::uniform_keys;
use dash_repro::{DashConfig, DashEh, DashLh, PmHashTable, PmemPool, PoolConfig};

mod common;
use common::TempFile;

#[test]
fn eh_survives_clean_close_and_reopen() {
    let tmp = TempFile::new("file-eh-clean");
    let path = &tmp.path;
    let cfg = PoolConfig::with_size(64 << 20);
    let keys = uniform_keys(30_000, 41);
    {
        let pool = PmemPool::create_file(path, cfg).unwrap();
        let t: DashEh<u64> = DashEh::create(pool.clone(), DashConfig::default()).unwrap();
        for (i, k) in keys.iter().enumerate() {
            t.insert(k, i as u64).unwrap();
        }
        pool.close().unwrap();
    }
    {
        let pool = PmemPool::open_file(path, cfg).unwrap();
        assert!(pool.recovery_outcome().clean);
        let t: DashEh<u64> = DashEh::open(pool.clone()).unwrap();
        for (i, k) in keys.iter().enumerate() {
            assert_eq!(t.get(k), Some(i as u64), "key {k} lost across file reopen");
        }
        // Table stays fully writable in the second incarnation.
        let fresh = uniform_keys(1_000, 43);
        for k in &fresh {
            t.insert(k, 7).unwrap();
        }
        for k in &fresh {
            assert_eq!(t.get(k), Some(7));
        }
        pool.close().unwrap();
    }
}

#[test]
fn eh_unclean_teardown_recovers_lazily() {
    let tmp = TempFile::new("file-eh-crash");
    let path = &tmp.path;
    let cfg = PoolConfig::with_size(64 << 20);
    let keys = uniform_keys(10_000, 47);
    {
        let pool = PmemPool::create_file(path, cfg).unwrap();
        let t: DashEh<u64> = DashEh::create(pool.clone(), DashConfig::default()).unwrap();
        for k in &keys {
            t.insert(k, k.wrapping_mul(13)).unwrap();
        }
        // Drop without close(): a process crash. Dirty pages reach the
        // file via the shared mapping; the clean marker stays unset.
    }
    let pool = PmemPool::open_file(path, cfg).unwrap();
    let out = pool.recovery_outcome();
    assert!(!out.clean, "missing close() must trigger crash recovery");
    let t: DashEh<u64> = DashEh::open(pool).unwrap();
    for k in &keys {
        assert_eq!(t.get(k), Some(k.wrapping_mul(13)));
    }
}

#[test]
fn lh_round_trips_through_file() {
    let tmp = TempFile::new("file-lh");
    let path = &tmp.path;
    let cfg = PoolConfig::with_size(64 << 20);
    let keys = uniform_keys(20_000, 53);
    {
        let pool = PmemPool::create_file(path, cfg).unwrap();
        let t: DashLh<u64> = DashLh::create(pool.clone(), DashConfig::default()).unwrap();
        for k in &keys {
            t.insert(k, k ^ 0xFF).unwrap();
        }
        pool.close().unwrap();
    }
    let pool = PmemPool::open_file(path, cfg).unwrap();
    let t: DashLh<u64> = DashLh::open(pool).unwrap();
    for k in &keys {
        assert_eq!(t.get(k), Some(k ^ 0xFF));
    }
    assert_eq!(t.len_scan(), keys.len() as u64);
}

#[test]
fn many_reopen_cycles_accumulate_data() {
    let tmp = TempFile::new("file-cycles");
    let path = &tmp.path;
    let cfg = PoolConfig::with_size(64 << 20);
    let stream = uniform_keys(5 * 2_000, 59);
    {
        let pool = PmemPool::create_file(path, cfg).unwrap();
        let _t: DashEh<u64> = DashEh::create(pool.clone(), DashConfig::default()).unwrap();
        pool.close().unwrap();
    }
    for round in 0..5usize {
        let pool = PmemPool::open_file(path, cfg).unwrap();
        let t: DashEh<u64> = DashEh::open(pool.clone()).unwrap();
        // Everything from prior rounds is present.
        for k in &stream[..round * 2_000] {
            assert_eq!(t.get(k), Some(*k), "round {round}");
        }
        for k in &stream[round * 2_000..(round + 1) * 2_000] {
            t.insert(k, *k).unwrap();
        }
        // Alternate clean and unclean teardowns.
        if round % 2 == 0 {
            pool.close().unwrap();
        }
    }
    let pool = PmemPool::open_file(path, cfg).unwrap();
    let t: DashEh<u64> = DashEh::open(pool).unwrap();
    assert_eq!(t.len_scan(), stream.len() as u64);
}
