//! Cursor-scan semantics across the table zoo: the Redis guarantee (a
//! key present for the whole scan is yielded at least once; quiescent
//! scans yield exactly once) must hold on Dash-EH and Dash-LH natively —
//! including under interleaved and fully concurrent inserts, removes and
//! structural operations — and on CCEH/Level Hashing through the trait's
//! full-walk default for quiescent pagination.

use std::collections::{HashMap, HashSet};
use std::sync::atomic::Ordering;
use std::sync::Arc;

use dash_repro::dash_common::{negative_keys, uniform_keys};
use dash_repro::{PmHashTable, ScanCursor};
use proptest::prelude::*;

mod common;
use common::{all_tables, eh_table, lh_table, small_eh_cfg, small_lh_cfg};

/// Drain a scan to completion, round-tripping every cursor through its
/// raw `pos()` (the wire form the server uses).
fn drain_scan<K: dash_repro::Key + std::hash::Hash + Eq>(
    table: &dyn PmHashTable<K>,
    budget: usize,
) -> Vec<(K, u64)> {
    let mut out = Vec::new();
    let mut cursor = ScanCursor::START;
    loop {
        let page = table.scan(cursor, budget);
        out.extend(page.items);
        if page.cursor.is_done() {
            return out;
        }
        cursor = ScanCursor::resume(page.cursor.pos());
    }
}

/// Quiescent pagination on every table (incl. the CCEH/Level trait
/// defaults): pages with a small budget must union to the exact record
/// set, with no duplicates, and resumed cursors must not re-yield.
#[test]
fn quiescent_scan_is_exact_on_all_tables() {
    let keys = uniform_keys(5_000, 303);
    for table in all_tables(128) {
        let name = table.name();
        for (i, k) in keys.iter().enumerate() {
            table.insert(k, i as u64).unwrap();
        }
        let mut seen: HashMap<u64, u64> = HashMap::new();
        let mut pages = 0usize;
        for (k, v) in drain_scan(table.as_ref(), 100) {
            assert!(seen.insert(k, v).is_none(), "{name}: key {k} yielded twice while quiescent");
            pages += 1;
        }
        assert!(pages > 0);
        assert_eq!(seen.len(), keys.len(), "{name}: scan must cover every record");
        for (i, k) in keys.iter().enumerate() {
            assert_eq!(seen.get(k), Some(&(i as u64)), "{name}: key {i} wrong/missing");
        }
        // A scan buys len_scan and load_factor for free (satellite: one
        // counting loop, shared by all tables).
        assert_eq!(table.len_scan(), keys.len() as u64, "{name}");
        let lf = table.load_factor();
        assert!(lf > 0.0 && lf <= 1.0, "{name}: load factor {lf}");
    }
}

/// Budget is a page-size hint everywhere: each page holds at least one
/// record (until done) and the iteration always terminates.
#[test]
fn scan_budget_paginates_on_all_tables() {
    let keys = uniform_keys(2_000, 404);
    for table in all_tables(64) {
        let name = table.name();
        for k in &keys {
            table.insert(k, 7).unwrap();
        }
        let mut cursor = ScanCursor::START;
        let mut pages = 0usize;
        let mut total = 0usize;
        loop {
            let page = table.scan(cursor, 50);
            pages += 1;
            total += page.items.len();
            assert!(
                !page.items.is_empty() || page.cursor.is_done(),
                "{name}: an unfinished page must make progress"
            );
            if page.cursor.is_done() {
                break;
            }
            cursor = page.cursor;
            assert!(pages < 10_000, "{name}: scan failed to terminate");
        }
        assert_eq!(total, keys.len(), "{name}");
        assert!(pages > 1, "{name}: 50-budget pages must paginate 2k records");
    }
}

/// Fully concurrent scan-vs-writers stress on the native implementations:
/// scanner threads page with tiny budgets while writer threads churn a
/// disjoint keyspace with inserts and removes (forcing splits/expansions
/// mid-scan). Every stable key must be yielded by every scanner.
fn concurrent_scan_stress<T: PmHashTable<u64>>(table: Arc<T>) {
    const SCANNERS: usize = 2;
    let stable = Arc::new(uniform_keys(4_000, 515));
    let churn = Arc::new(negative_keys(8_000, 515));
    for k in stable.iter() {
        table.insert(k, 1).unwrap();
    }
    // Writers churn until every scanner has finished its full iteration.
    let scanners_done = std::sync::atomic::AtomicUsize::new(0);
    std::thread::scope(|s| {
        for wt in 0..3usize {
            let table = table.clone();
            let churn = churn.clone();
            let scanners_done = &scanners_done;
            s.spawn(move || {
                let mut round = 0usize;
                while scanners_done.load(Ordering::Acquire) < SCANNERS {
                    for k in churn.iter().skip(wt).step_by(3) {
                        if round.is_multiple_of(2) {
                            let _ = table.insert(k, 2);
                        } else {
                            let _ = table.remove(k);
                        }
                    }
                    round += 1;
                }
            });
        }
        for _ in 0..SCANNERS {
            let table = table.clone();
            let stable = stable.clone();
            let scanners_done = &scanners_done;
            s.spawn(move || {
                let mut yielded: HashSet<u64> = HashSet::new();
                let mut cursor = ScanCursor::START;
                loop {
                    let page = table.scan(cursor, 32);
                    yielded.extend(page.items.iter().map(|(k, _)| *k));
                    if page.cursor.is_done() {
                        break;
                    }
                    cursor = page.cursor;
                }
                scanners_done.fetch_add(1, Ordering::Release);
                for k in stable.iter() {
                    assert!(yielded.contains(k), "stable key {k} lost by a concurrent scan");
                }
            });
        }
    });
}

#[test]
fn concurrent_scan_stress_eh() {
    concurrent_scan_stress(eh_table(256, small_eh_cfg()));
}

#[test]
fn concurrent_scan_stress_lh() {
    concurrent_scan_stress(lh_table(256, small_lh_cfg()));
}

/// Single-threaded but adversarially *interleaved*: a deterministic op
/// script runs between scan pages (inserts of new keys, removes and
/// re-inserts of churn keys, removes of designated stable keys), driven
/// by proptest. The checked property is the cursor contract itself:
/// every preloaded key that was never removed during the scan appears in
/// the yielded set, and nothing impossible (a key never inserted) is
/// ever yielded.
macro_rules! interleaved_scan_property {
    ($test_name:ident, $mk_table:expr) => {
        proptest! {
            #![proptest_config(ProptestConfig { cases: 12, ..Default::default() })]
            #[test]
            fn $test_name(
                ops in proptest::collection::vec((0u8..4, 0usize..2_000), 1..400),
                budget in 1usize..96,
                seed in 0u64..1_000,
            ) {
                let table = $mk_table;
                let stable = uniform_keys(1_500, 606 ^ seed);
                let churn = negative_keys(2_000, 606 ^ seed);
                for k in &stable {
                    table.insert(k, 1).unwrap();
                }
                let mut removed_stable: HashSet<u64> = HashSet::new();
                let mut churn_live: HashSet<u64> = HashSet::new();
                let mut yielded: HashSet<u64> = HashSet::new();
                let mut cursor = ScanCursor::START;
                let mut script = ops.iter().cycle();
                loop {
                    let page = table.scan(cursor, budget);
                    yielded.extend(page.items.iter().map(|(k, _)| *k));
                    if page.cursor.is_done() {
                        break;
                    }
                    cursor = ScanCursor::resume(page.cursor.pos());
                    // A burst of mutations between every pair of pages.
                    for _ in 0..4 {
                        let (op, idx) = script.next().unwrap();
                        match op % 4 {
                            0 => {
                                let k = churn[idx % churn.len()];
                                if table.insert(&k, 2).is_ok() {
                                    churn_live.insert(k);
                                }
                            }
                            1 => {
                                let k = churn[idx % churn.len()];
                                if table.remove(&k) {
                                    churn_live.remove(&k);
                                }
                            }
                            2 => {
                                // Remove a stable key: it forfeits the
                                // at-least-once guarantee.
                                let k = stable[idx % stable.len()];
                                if table.remove(&k) {
                                    removed_stable.insert(k);
                                }
                            }
                            _ => {
                                // Bulk insert to force structural ops.
                                for k in churn.iter().skip(idx % 7).step_by(7) {
                                    if table.insert(k, 3).is_ok() {
                                        churn_live.insert(*k);
                                    }
                                }
                            }
                        }
                    }
                }
                for k in &stable {
                    if !removed_stable.contains(k) {
                        prop_assert!(
                            yielded.contains(k),
                            "key {k} was present for the whole scan but never yielded"
                        );
                    }
                }
                let known: HashSet<u64> =
                    stable.iter().chain(churn.iter()).copied().collect();
                for k in &yielded {
                    prop_assert!(known.contains(k), "scan yielded a key {k} that never existed");
                }
            }
        }
    };
}

interleaved_scan_property!(interleaved_scan_holds_on_eh, eh_table(256, small_eh_cfg()));
interleaved_scan_property!(interleaved_scan_holds_on_lh, lh_table(256, small_lh_cfg()));
