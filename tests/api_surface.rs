//! Smoke test for the umbrella crate's re-export surface: every public
//! type the README/quickstart names must be reachable from `dash_repro`
//! and behave through the shared `PmHashTable` trait, for all four
//! tables in one loop.

use dash_repro::dash_common::uniform_keys;
use dash_repro::{
    hash64, hash_u64, Cceh, CcehConfig, DashConfig, DashEh, DashLh, LevelConfig, LevelHash,
    PmHashTable, PmemPool, PoolConfig, ScanCursor, TableError, VarKey, BUCKET_SLOTS,
};

mod common;

#[test]
fn umbrella_reexports_drive_all_four_tables() {
    let mk_pool = || PmemPool::create(PoolConfig::with_size(64 << 20)).unwrap();
    let tables: Vec<Box<dyn PmHashTable<u64>>> = vec![
        Box::new(DashEh::<u64>::create(mk_pool(), DashConfig::default()).unwrap()),
        Box::new(DashLh::<u64>::create(mk_pool(), DashConfig::default()).unwrap()),
        Box::new(Cceh::<u64>::create(mk_pool(), CcehConfig::default()).unwrap()),
        Box::new(LevelHash::<u64>::create(mk_pool(), LevelConfig::default()).unwrap()),
    ];
    let keys = uniform_keys(2_000, 71);
    for table in tables {
        let name = table.name();
        assert!(!name.is_empty());
        for (i, k) in keys.iter().enumerate() {
            table.insert(k, i as u64).unwrap_or_else(|e| panic!("{name}: insert: {e}"));
        }
        assert!(
            matches!(table.insert(&keys[0], 9), Err(TableError::Duplicate)),
            "{name}: duplicate accepted"
        );
        for (i, k) in keys.iter().enumerate() {
            assert_eq!(table.get(k), Some(i as u64), "{name}: get {i}");
            assert!(table.update(k, i as u64 + 1), "{name}: update {i}");
        }
        assert!(table.remove(&keys[0]), "{name}: remove");
        assert_eq!(table.get(&keys[0]), None, "{name}: removed key visible");
        // The batch-first surface is reachable through the trait object:
        // an epoch-scoped session plus the *_many ops.
        {
            let _session: dash_repro::Session<'_> = table.pin();
            let got = table.get_many(&keys[1..4]);
            assert_eq!(got, vec![Some(2), Some(3), Some(4)], "{name}: get_many");
            assert_eq!(table.remove_many(&keys[1..3]), vec![true, true], "{name}: remove_many");
            let reinsert: Vec<(u64, u64)> = keys[1..3].iter().map(|k| (*k, 1)).collect();
            assert!(table.insert_many(&reinsert).iter().all(|r| r.is_ok()), "{name}: insert_many");
        }
        assert_eq!(table.len_scan(), keys.len() as u64 - 1, "{name}: len_scan");
        assert!(table.capacity_slots() > 0, "{name}: capacity_slots");
        let lf = table.load_factor();
        assert!(lf > 0.0 && lf <= 1.0, "{name}: load factor {lf}");
        // The iteration-first surface is reachable through the trait
        // object: cursor scans plus the for_each_kv convenience walk.
        let mut scanned = 0u64;
        let mut cursor: ScanCursor = ScanCursor::START;
        loop {
            let page: dash_repro::ScanPage<u64> = table.scan(cursor, 500);
            scanned += page.items.len() as u64;
            if page.cursor.is_done() {
                break;
            }
            cursor = page.cursor;
        }
        assert_eq!(scanned, table.len_scan(), "{name}: scan covers the table");
        let mut walked = 0u64;
        table.for_each_kv(&mut |_, _| walked += 1);
        assert_eq!(walked, scanned, "{name}: for_each_kv agrees with scan");
    }
}

#[test]
fn umbrella_reexports_cover_var_keys_and_hashing() {
    // Hash helpers are re-exported and deterministic.
    assert_eq!(hash64(b"dash"), hash64(b"dash"));
    assert_eq!(hash_u64(42), hash_u64(42));
    assert_ne!(hash_u64(42), hash_u64(43));
    // Bucket geometry constant is visible (paper: 16 records per bucket).
    const _: () = assert!(BUCKET_SLOTS > 0);

    // VarKey round-trips through a table built from the umbrella exports.
    let pool = PmemPool::create(common::shadow_cfg(64)).unwrap();
    let table: DashEh<VarKey> = DashEh::create(pool, common::small_eh_cfg()).unwrap();
    let k = VarKey::new(&b"variable-length key"[..]);
    table.insert(&k, 7).unwrap();
    assert_eq!(table.get(&k), Some(7));
    assert!(table.remove(&k));
}
