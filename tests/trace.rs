//! End-to-end request tracing over TCP: the TRACE command family,
//! sampled vs threshold capture reasons, the stage-sum ≈ total
//! invariant under live load, flight-recorder ring retention, SLOWLOG
//! stage breakdowns, and trace-id propagation across replication.
#![cfg(unix)]

use std::time::{Duration, Instant};

use dash_repro::dash_server::{serve_with, ServeOptions, Value};
use dash_repro::{serve, EngineConfig, RespClient, ShardedDash};

fn mem_cfg(shards: usize) -> EngineConfig {
    EngineConfig { shards, shard_bytes: 8 << 20, dir: None, ..EngineConfig::default() }
}

/// Poll `cond` every 50 ms until true, panicking with `what` after 20 s.
fn wait_for(what: &str, mut cond: impl FnMut() -> bool) {
    let t0 = Instant::now();
    while !cond() {
        assert!(t0.elapsed() < Duration::from_secs(20), "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(50));
    }
}

fn assert_ok(v: &Value) {
    assert_eq!(*v, Value::Simple("OK".into()), "expected +OK, got {v:?}");
}

/// `TRACE STATUS` as a name → value map.
fn trace_status(c: &mut RespClient) -> std::collections::HashMap<String, i64> {
    let Value::Array(items) = c.command(&[b"TRACE", b"STATUS"]).unwrap() else {
        panic!("TRACE STATUS must reply an array");
    };
    items
        .chunks_exact(2)
        .map(|pair| match pair {
            [Value::Bulk(name), Value::Integer(v)] => {
                (String::from_utf8(name.clone()).unwrap(), *v)
            }
            other => panic!("STATUS pairs must be bulk/integer, got {other:?}"),
        })
        .collect()
}

const STAGES: [&str; 7] =
    ["queue_wait", "parse", "dispatch", "lock_wait", "execute", "persist", "reply_flush"];

#[test]
fn trace_surface_over_tcp() {
    let server = serve(ShardedDash::open(&mem_cfg(2)).unwrap(), "127.0.0.1:0").unwrap();
    let mut c = RespClient::connect(server.addr()).unwrap();

    // Tracing starts off; STATUS reflects the defaults.
    let st = trace_status(&mut c);
    assert_eq!(st["enabled"], 0);
    assert_eq!(st["retained"], 0);

    c.trace_on(Some(1)).unwrap();
    for i in 0..20 {
        let k = format!("t:{i:03}").into_bytes();
        assert_ok(&c.command(&[b"SET", &k, b"v"]).unwrap());
        assert_eq!(c.command(&[b"GET", &k]).unwrap(), Value::Bulk(b"v".to_vec()));
    }

    let st = trace_status(&mut c);
    assert_eq!(st["enabled"], 1);
    assert_eq!(st["sample_every"], 1);
    assert!(st["captured"] >= 40, "sample-every-1 must capture every command: {st:?}");

    // Completion races the pipeline tail: the reply-flush stamp lands
    // after the reply bytes hit the socket, so poll for the dump.
    wait_for("a SET and a GET span in the dump", || {
        let dump = c.trace_dump(256).unwrap();
        dump.iter().any(|t| t.cmd == "SET") && dump.iter().any(|t| t.cmd == "GET")
    });
    let dump = c.trace_dump(256).unwrap();
    let set = dump.iter().find(|t| t.cmd == "SET").unwrap();
    let get = dump.iter().find(|t| t.cmd == "GET").unwrap();
    for rec in [set, get] {
        assert_eq!(rec.reason, "sampled");
        assert_eq!(rec.hops, 0);
        assert!(rec.id >= 1 && rec.origin == rec.id);
        assert!(rec.total_ns > 0);
        let names: Vec<&str> = rec.stages_ns.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, STAGES, "every span carries all stages in order");
    }
    assert!(set.stage_ns("execute").unwrap() > 0, "SET must spend time executing");
    assert!(set.key.starts_with("t:"), "span records the key prefix, got {:?}", set.key);

    // GET finds the same span the dump showed; a never-allocated id is
    // an empty reply, not an error.
    let fetched = c.trace_get(set.id as u64).unwrap().expect("TRACE GET finds a dumped span");
    assert_eq!(fetched.id, set.id);
    assert_eq!(fetched.cmd, "SET");
    assert!(c.trace_get(0xFFFF_FFFF).unwrap().is_none());

    // RESET drains the rings but keeps the capture counters. Tracing
    // goes off first: with the 1-in-1 sampler live, the RESET span
    // itself would land in the ring right after it cleared.
    c.trace_off().unwrap();
    assert_ok(&c.command(&[b"TRACE", b"RESET"]).unwrap());
    let st = trace_status(&mut c);
    assert_eq!(st["enabled"], 0);
    assert_eq!(st["retained"], 0);
    assert!(st["captured"] >= 40);
    assert!(c.trace_dump(16).unwrap().is_empty());
    server.shutdown();
}

/// One connection pins one worker ring: pushing well past `RING_CAP`
/// (256) spans retains exactly the newest 256.
#[test]
fn flight_recorder_ring_wraps_over_tcp() {
    let server = serve(ShardedDash::open(&mem_cfg(1)).unwrap(), "127.0.0.1:0").unwrap();
    let mut c = RespClient::connect(server.addr()).unwrap();
    c.trace_on(Some(1)).unwrap();
    for i in 0..400 {
        let k = format!("wrap:{i:04}").into_bytes();
        assert_ok(&c.command(&[b"SET", &k, b"v"]).unwrap());
    }
    wait_for("the ring to fill", || trace_status(&mut c)["retained"] >= 256);
    let st = trace_status(&mut c);
    assert_eq!(st["retained"], 256, "per-worker ring must cap at RING_CAP");
    assert!(st["captured"] >= 400);
    // The dump holds only the newest spans: the earliest keys are gone.
    let dump = c.trace_dump(1024).unwrap();
    assert!(dump.iter().all(|t| t.key != "wrap:0000"), "oldest span must be evicted");
    server.shutdown();
}

#[test]
fn sampled_and_threshold_capture_reasons() {
    let server = serve(ShardedDash::open(&mem_cfg(2)).unwrap(), "127.0.0.1:0").unwrap();
    let mut c = RespClient::connect(server.addr()).unwrap();

    // Sampler on, threshold off: every capture says "sampled".
    c.trace_on(Some(1)).unwrap();
    assert_ok(&c.command(&[b"TRACE", b"THRESHOLD", b"0"]).unwrap());
    for i in 0..10 {
        let k = format!("s:{i}").into_bytes();
        assert_ok(&c.command(&[b"SET", &k, b"v"]).unwrap());
    }
    wait_for("sampled spans", || !c.trace_dump(64).unwrap().is_empty());
    assert!(c.trace_dump(64).unwrap().iter().all(|t| t.reason == "sampled"));

    // Sampler off, threshold 1 µs: end-to-end service time over the
    // loopback always clears 1 µs, so every command is captured — but
    // by the slow-path detector, with the coarse reason.
    assert_ok(&c.command(&[b"TRACE", b"ON", b"SAMPLE", b"0"]).unwrap());
    assert_ok(&c.command(&[b"TRACE", b"THRESHOLD", b"1"]).unwrap());
    assert_ok(&c.command(&[b"TRACE", b"RESET"]).unwrap());
    for i in 0..10 {
        let k = format!("th:{i}").into_bytes();
        assert_ok(&c.command(&[b"SET", &k, b"v"]).unwrap());
    }
    wait_for("threshold spans", || {
        c.trace_dump(64).unwrap().iter().any(|t| t.reason == "threshold")
    });
    let dump = c.trace_dump(64).unwrap();
    assert!(dump.iter().all(|t| t.reason == "threshold"), "sampler is off: {dump:?}");
    // Threshold capture is coarse: the whole engine seam lands in
    // execute, with no dispatch/lock/persist split.
    let rec = dump.iter().find(|t| t.cmd == "SET").unwrap();
    assert!(rec.stage_ns("execute").unwrap() > 0);
    assert_eq!(rec.stage_ns("dispatch").unwrap(), 0);
    assert_eq!(rec.stage_ns("persist").unwrap(), 0);

    // A 1-in-3 sampler with the threshold off captures roughly a third.
    assert_ok(&c.command(&[b"TRACE", b"ON", b"SAMPLE", b"3"]).unwrap());
    assert_ok(&c.command(&[b"TRACE", b"THRESHOLD", b"0"]).unwrap());
    assert_ok(&c.command(&[b"TRACE", b"RESET"]).unwrap());
    let before = trace_status(&mut c)["captured"];
    for i in 0..60 {
        let k = format!("p:{i}").into_bytes();
        assert_ok(&c.command(&[b"SET", &k, b"v"]).unwrap());
    }
    wait_for("period-3 captures", || trace_status(&mut c)["captured"] > before);
    let n = trace_status(&mut c)["captured"] - before;
    // The tick counter also covers the interleaved TRACE commands, so
    // bound the rate rather than demanding an exact count.
    assert!((10..=40).contains(&n), "1-in-3 of ~60 commands, got {n}");
    server.shutdown();
}

/// The acceptance invariant: for every captured span, the seven stage
/// durations sum to within 10% of the independently measured total.
#[test]
fn stage_sums_match_totals_under_live_load() {
    let server = serve(ShardedDash::open(&mem_cfg(4)).unwrap(), "127.0.0.1:0").unwrap();
    let mut c = RespClient::connect(server.addr()).unwrap();
    c.trace_on(Some(1)).unwrap();
    assert_ok(&c.command(&[b"TRACE", b"THRESHOLD", b"0"]).unwrap());
    for i in 0..300u32 {
        let k = format!("load:{:05}", i % 120).into_bytes();
        match i % 3 {
            0 => assert_ok(&c.command(&[b"SET", &k, &[b'x'; 64]]).unwrap()),
            1 => {
                c.command(&[b"GET", &k]).unwrap();
            }
            _ => {
                c.command(&[b"DEL", &k]).unwrap();
            }
        }
    }
    wait_for("a full ring of spans", || c.trace_dump(256).unwrap().len() >= 64);
    let dump = c.trace_dump(256).unwrap();
    for rec in &dump {
        assert_eq!(rec.stages_ns.len(), STAGES.len());
        let sum = rec.stage_sum_ns();
        let total = rec.total_ns;
        assert!(total > 0, "span without a total: {rec:?}");
        // 10% relative, with a 2 µs absolute floor so a sub-µs GET
        // cannot fail on clock granularity alone.
        let slack = (total / 10).max(2_000);
        assert!(
            (sum - total).abs() <= slack,
            "stage sum {sum} vs total {total} drifts past 10%: {rec:?}"
        );
    }
    assert!(dump.iter().any(|t| t.cmd == "SET"));
    assert!(dump.iter().any(|t| t.cmd == "GET"));
    server.shutdown();
}

/// SLOWLOG entries for captured commands carry the per-stage breakdown;
/// uncaptured commands keep the compact five-field shape.
#[test]
fn slowlog_attaches_stage_breakdown() {
    let server = serve_with(
        ShardedDash::open(&mem_cfg(2)).unwrap(),
        "127.0.0.1:0",
        ServeOptions { slowlog_threshold_us: Some(0), ..Default::default() },
    )
    .unwrap();
    let mut c = RespClient::connect(server.addr()).unwrap();

    // Uncaptured first: tracing is off, so no breakdown attaches.
    assert_ok(&c.command(&[b"SET", b"plain", b"v"]).unwrap());
    let entries = c.slowlog_get(16).unwrap();
    let plain = entries
        .iter()
        .find(|e| e.cmd == "SET" && e.key == "plain")
        .expect("threshold 0 logs every command");
    assert!(plain.stages_ns.is_none(), "uncaptured spans carry no stages: {plain:?}");

    c.trace_on(Some(1)).unwrap();
    assert_ok(&c.command(&[b"SET", b"traced", b"v"]).unwrap());
    let entries = c.slowlog_get(16).unwrap();
    let traced = entries
        .iter()
        .find(|e| e.cmd == "SET" && e.key == "traced")
        .expect("the traced SET is in the slowlog");
    let stages = traced.stages_ns.as_ref().expect("captured spans attach stage breakdowns");
    assert_eq!(stages.len(), STAGES.len());
    // The slowlog snapshot is taken before reply flush, so the first
    // six stages are meaningful and the sum stays within the recorded
    // duration's order of magnitude.
    assert!(stages.iter().all(|&ns| ns >= 0));
    assert!(stages.iter().sum::<i64>() > 0);
    server.shutdown();
}

/// TRACEID makes the client a tracing participant: the forced span is
/// captured on the primary, rides the replication tail, and lands in
/// the replica's flight recorder under the same id with reason "repl".
#[test]
fn trace_id_propagates_through_replication() {
    let primary = serve(ShardedDash::open(&mem_cfg(2)).unwrap(), "127.0.0.1:0").unwrap();
    let replica = serve_with(
        ShardedDash::open(&mem_cfg(2)).unwrap(),
        "127.0.0.1:0",
        ServeOptions { replica_of: Some(primary.addr().to_string()), ..Default::default() },
    )
    .unwrap();
    let mut pc = RespClient::connect(primary.addr()).unwrap();
    let mut rc = RespClient::connect(replica.addr()).unwrap();
    wait_for("replica link up", || {
        rc.master_link().unwrap().as_deref() == Some("up")
    });

    // Ask the server to assign a span id for the NEXT command (tracing
    // stays globally off — forced capture bypasses the sampler).
    let id = match pc.command(&[b"TRACEID", b"0", b"0"]).unwrap() {
        Value::Integer(n) if n > 0 => n as u64,
        other => panic!("TRACEID must assign a positive id, got {other:?}"),
    };
    assert_ok(&pc.command(&[b"SET", b"traced:key", b"traced:val"]).unwrap());

    // The primary captured it as forced…
    wait_for("the forced span on the primary", || pc.trace_get(id).unwrap().is_some());
    let prec = pc.trace_get(id).unwrap().unwrap();
    assert_eq!(prec.reason, "forced");
    assert_eq!(prec.cmd, "SET");
    assert_eq!(prec.origin as u64, id);

    // …and the replica recorded the same span id off the PSYNC tail.
    wait_for("the span to reach the replica", || rc.trace_get(id).unwrap().is_some());
    let rrec = rc.trace_get(id).unwrap().unwrap();
    assert_eq!(rrec.reason, "repl");
    assert_eq!(rrec.cmd, "SET");
    assert_eq!(rrec.origin as u64, id);
    assert_eq!(rrec.worker, -1, "replication applies outside the worker pool");
    assert_eq!(rc.command(&[b"GET", b"traced:key"]).unwrap(), Value::Bulk(b"traced:val".to_vec()));

    replica.shutdown();
    primary.shutdown();
}
