//! Concurrency stress: mixed reader/writer workloads under contention,
//! including keys deliberately funneled into few segments so optimistic
//! retries, displacement races and SMO/reader interleavings actually
//! fire.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use dash_repro::dash_common::uniform_keys;
use dash_repro::{DashConfig, PmHashTable};

mod common;
use common::{eh_table, lh_table};

/// Readers run concurrently with writers; every value a reader observes
/// must be one the writer actually wrote (odd generation counters make
/// torn values detectable).
fn readers_vs_writers<T: PmHashTable<u64> + 'static>(table: Arc<T>) {
    let keys = Arc::new(uniform_keys(2_000, 5));
    for k in keys.iter() {
        table.insert(k, 1).unwrap();
    }
    let stop = Arc::new(AtomicBool::new(false));
    let anomalies = Arc::new(AtomicU64::new(0));

    std::thread::scope(|s| {
        // Two writers continuously update with even values.
        for w in 0..2u64 {
            let table = table.clone();
            let keys = keys.clone();
            let stop = stop.clone();
            s.spawn(move || {
                let mut gen = 2u64;
                while !stop.load(Ordering::Relaxed) {
                    for k in keys.iter().skip(w as usize).step_by(2) {
                        table.update(k, gen);
                    }
                    gen += 2;
                }
            });
        }
        // Four readers: any observed value must be the initial 1 or an
        // even generation — an odd value > 1 would be a torn read.
        for _ in 0..4 {
            let table = table.clone();
            let keys = keys.clone();
            let stop = stop.clone();
            let anomalies = anomalies.clone();
            s.spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    for k in keys.iter() {
                        match table.get(k) {
                            Some(v) if v == 1 || v % 2 == 0 => {}
                            Some(_) => {
                                anomalies.fetch_add(1, Ordering::Relaxed);
                            }
                            None => {
                                anomalies.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                    }
                }
            });
        }
        std::thread::sleep(std::time::Duration::from_millis(400));
        stop.store(true, Ordering::Relaxed);
    });
    assert_eq!(anomalies.load(Ordering::Relaxed), 0, "torn or lost reads observed");
}

#[test]
fn eh_readers_never_see_torn_state() {
    readers_vs_writers(eh_table(64, DashConfig::default()));
}

#[test]
fn lh_readers_never_see_torn_state() {
    readers_vs_writers(lh_table(
        64,
        DashConfig { lh_first_array: 2, lh_stride: 2, ..Default::default() },
    ));
}

/// Concurrent inserts racing with splits on purpose: tiny segments force
/// constant SMO traffic.
#[test]
fn eh_insert_storm_through_splits() {
    let table = eh_table(
        256,
        DashConfig { bucket_bits: 2, initial_depth: 1, ..Default::default() },
    );
    let keys = Arc::new(uniform_keys(40_000, 3));
    let threads = 8;
    let per = keys.len() / threads;
    std::thread::scope(|s| {
        for tid in 0..threads {
            let table = table.clone();
            let keys = keys.clone();
            s.spawn(move || {
                for i in tid * per..(tid + 1) * per {
                    table.insert(&keys[i], i as u64).unwrap();
                }
            });
        }
    });
    for (i, k) in keys.iter().enumerate() {
        assert_eq!(table.get(k), Some(i as u64), "key {i} lost in split storm");
    }
    assert_eq!(table.len_scan(), keys.len() as u64);
}

#[test]
fn lh_insert_storm_through_expansion() {
    let table = lh_table(
        256,
        DashConfig { bucket_bits: 2, lh_first_array: 2, lh_stride: 2, ..Default::default() },
    );
    let keys = Arc::new(uniform_keys(40_000, 4));
    let threads = 8;
    let per = keys.len() / threads;
    std::thread::scope(|s| {
        for tid in 0..threads {
            let table = table.clone();
            let keys = keys.clone();
            s.spawn(move || {
                for i in tid * per..(tid + 1) * per {
                    table.insert(&keys[i], i as u64).unwrap();
                }
            });
        }
    });
    for (i, k) in keys.iter().enumerate() {
        assert_eq!(table.get(k), Some(i as u64), "key {i} lost during expansion");
    }
    let (level, next) = table.level_and_next();
    assert!(level > 0 || next > 0, "expansion must have triggered");
}

/// Writers inserting + removing while other writers insert different
/// keys: final state must contain exactly the surviving set.
#[test]
fn eh_mixed_insert_remove_partitioned() {
    let table = eh_table(128, DashConfig { bucket_bits: 3, ..Default::default() });
    let keep = Arc::new(uniform_keys(8_000, 6));
    let churn = Arc::new(uniform_keys(8_000, 7));
    std::thread::scope(|s| {
        for tid in 0..4 {
            let table = table.clone();
            let keep = keep.clone();
            s.spawn(move || {
                for i in (tid..keep.len()).step_by(4) {
                    table.insert(&keep[i], i as u64).unwrap();
                }
            });
        }
        for tid in 0..4 {
            let table = table.clone();
            let churn = churn.clone();
            s.spawn(move || {
                for i in (tid..churn.len()).step_by(4) {
                    table.insert(&churn[i], 0).unwrap();
                    assert!(table.remove(&churn[i]));
                }
            });
        }
    });
    for (i, k) in keep.iter().enumerate() {
        assert_eq!(table.get(k), Some(i as u64));
    }
    for k in churn.iter() {
        assert_eq!(table.get(k), None);
    }
    assert_eq!(table.len_scan(), keep.len() as u64);
}

/// Pessimistic-lock mode under the same storm (fig. 13's "correct but
/// slower" configuration must still be correct).
#[test]
fn eh_pessimistic_storm() {
    let table = eh_table(
        128,
        DashConfig {
            bucket_bits: 2,
            lock_mode: dash_repro::LockMode::Pessimistic,
            ..Default::default()
        },
    );
    let keys = Arc::new(uniform_keys(16_000, 8));
    std::thread::scope(|s| {
        for tid in 0..8 {
            let table = table.clone();
            let keys = keys.clone();
            s.spawn(move || {
                for i in (tid..keys.len()).step_by(8) {
                    table.insert(&keys[i], i as u64).unwrap();
                }
            });
        }
    });
    for (i, k) in keys.iter().enumerate() {
        assert_eq!(table.get(k), Some(i as u64));
    }
}
