//! Restart recovery through the **service layer**: the sharded store and
//! the RESP server must give back every acknowledged write after both a
//! clean shutdown and a crash-style teardown of the same pool files —
//! the paper's instant-recovery property (§4.8) lifted from one table to
//! a whole serving stack.
#![cfg(unix)]

use dash_repro::dash_server::Value;
use dash_repro::{serve, EngineConfig, RespClient, ShardedDash};

mod common;
use common::TempDir;

fn dir_cfg(dir: &TempDir, shards: usize) -> EngineConfig {
    EngineConfig {
        shards,
        shard_bytes: 16 << 20,
        dir: Some(dir.path.clone()),
        ..EngineConfig::default()
    }
}

fn kv(i: u32) -> (Vec<u8>, Vec<u8>) {
    (
        format!("user:{i:06}").into_bytes(),
        format!("payload-{}", i.wrapping_mul(0x9E37_79B9)).into_bytes(),
    )
}

#[test]
fn engine_survives_clean_close_and_reopen() {
    let dir = TempDir::new("engine-clean");
    const N: u32 = 3_000;
    {
        let store = ShardedDash::open(&dir_cfg(&dir, 3)).unwrap();
        assert_eq!(store.recovered_shards(), 0, "fresh store has nothing to recover");
        for i in 0..N {
            let (k, v) = kv(i);
            store.set(&k, &v).unwrap();
        }
        // Overwrites and deletes must also survive, not just inserts.
        store.set(b"user:000000", b"rewritten").unwrap();
        assert!(store.del(&kv(1).0).unwrap());
        store.close().unwrap();
    }
    {
        // Reopen with a *different* requested shard count: the on-disk
        // layout must win, or the partition function would orphan keys.
        let store = ShardedDash::open(&dir_cfg(&dir, 8)).unwrap();
        assert_eq!(store.shard_count(), 3, "existing store dictates its shard count");
        assert_eq!(store.recovered_shards(), 3);
        for info in store.shard_infos() {
            assert!(info.recovered && info.clean, "clean close must be seen: {info:?}");
        }
        assert_eq!(store.len(), (N - 1) as u64);
        assert_eq!(store.get(b"user:000000").unwrap(), Some(b"rewritten".to_vec()));
        assert_eq!(store.get(&kv(1).0).unwrap(), None, "deleted key must stay deleted");
        for i in 2..N {
            let (k, v) = kv(i);
            assert_eq!(store.get(&k).unwrap(), Some(v), "key {i} lost across clean reopen");
        }
        // And the second incarnation stays fully writable.
        store.set(b"second-life", b"yes").unwrap();
        assert_eq!(store.get(b"second-life").unwrap(), Some(b"yes".to_vec()));
    }
}

#[test]
fn engine_survives_crash_style_teardown() {
    let dir = TempDir::new("engine-crash");
    const N: u32 = 2_000;
    let versions_before: Vec<u8> = {
        let store = ShardedDash::open(&dir_cfg(&dir, 2)).unwrap();
        for i in 0..N {
            let (k, v) = kv(i);
            store.set(&k, &v).unwrap();
        }
        // Drop WITHOUT close(): a process crash. The MAP_SHARED pages
        // reach the files; the clean marker stays unset.
        store.shard_infos().iter().map(|s| s.version).collect()
    };
    let store = ShardedDash::open(&dir_cfg(&dir, 2)).unwrap();
    assert_eq!(store.recovered_shards(), 2);
    for (info, v0) in store.shard_infos().iter().zip(&versions_before) {
        assert!(info.recovered, "{info:?}");
        assert!(!info.clean, "missing close() must look like a crash");
        assert_eq!(info.version, v0 + 1, "crash recovery must bump the version");
    }
    for i in 0..N {
        let (k, v) = kv(i);
        assert_eq!(store.get(&k).unwrap(), Some(v), "acknowledged write {i} lost in crash");
    }
    assert_eq!(store.len(), N as u64);
}

#[test]
fn server_restart_on_same_pools_keeps_every_acknowledged_write() {
    let dir = TempDir::new("server-restart");
    const N: u32 = 1_500;
    // Incarnation 1: serve, write N keys, shut down cleanly.
    {
        let server = serve(
            ShardedDash::open(&dir_cfg(&dir, 4)).unwrap(),
            "127.0.0.1:0",
        )
        .unwrap();
        let mut c = RespClient::connect(server.addr()).unwrap();
        for i in 0..N {
            let (k, v) = kv(i);
            // Every one of these replies is an acknowledged, durable write.
            assert_eq!(c.command(&[b"SET", &k, &v]).unwrap(), Value::Simple("OK".into()));
        }
        assert_eq!(c.command(&[b"DBSIZE"]).unwrap(), Value::Integer(N as i64));
        server.shutdown();
    }
    // Incarnation 2: a new server process-equivalent on the same files.
    {
        let server = serve(
            ShardedDash::open(&dir_cfg(&dir, 4)).unwrap(),
            "127.0.0.1:0",
        )
        .unwrap();
        let mut c = RespClient::connect(server.addr()).unwrap();
        assert_eq!(c.command(&[b"DBSIZE"]).unwrap(), Value::Integer(N as i64));
        // INFO must report the recovery: all four shards reattached.
        let Value::Bulk(info) = c.command(&[b"INFO"]).unwrap() else {
            panic!("INFO must return a bulk string");
        };
        let info = String::from_utf8(info).unwrap();
        assert!(info.contains("recovered_shards:4"), "{info}");
        assert!(info.contains("shard3:"), "{info}");
        // Pipelined read-back of every acknowledged write.
        for i in 0..N {
            c.enqueue(&[b"GET", &kv(i).0]);
        }
        c.flush().unwrap();
        for i in 0..N {
            let (_, v) = kv(i);
            assert_eq!(
                c.read_reply().unwrap(),
                Value::Bulk(v),
                "acknowledged write {i} lost across server restart"
            );
        }
        server.shutdown();
    }
}

/// The acceptance-criteria mix: ≥4 connections, 90/10 read/write, all
/// concurrent, zero errors — values are a pure function of the key so
/// every GET that hits is exactly checkable even under racing writers.
#[test]
fn mixed_90_10_over_four_connections_zero_errors() {
    let dir = TempDir::new("server-mixed");
    let server = serve(
        ShardedDash::open(&dir_cfg(&dir, 4)).unwrap(),
        "127.0.0.1:0",
    )
    .unwrap();
    let addr = server.addr();
    const OPS_PER_CONN: usize = 2_000;
    const KEYSPACE: u32 = 500;
    std::thread::scope(|s| {
        for t in 0..4u64 {
            s.spawn(move || {
                let mut c = RespClient::connect(addr).unwrap();
                let mut rng = t.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
                for _ in 0..OPS_PER_CONN {
                    rng ^= rng << 13;
                    rng ^= rng >> 7;
                    rng ^= rng << 17;
                    let (k, v) = kv((rng >> 8) as u32 % KEYSPACE);
                    if rng % 100 < 90 {
                        match c.command(&[b"GET", &k]).unwrap() {
                            Value::Nil => {} // not yet written by anyone
                            Value::Bulk(got) => assert_eq!(got, v, "GET returned a foreign value"),
                            other => panic!("unexpected GET reply {other:?}"),
                        }
                    } else {
                        assert_eq!(
                            c.command(&[b"SET", &k, &v]).unwrap(),
                            Value::Simple("OK".into())
                        );
                    }
                }
            });
        }
    });
    server.shutdown();
}
