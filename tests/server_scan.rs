//! `SCAN` / `KEYS` over the wire: cursor pagination through the sharded
//! engine's packed u64 cursors, the at-least-once guarantee under
//! concurrent writers, and the `INFO scan_len` consistency field.
#![cfg(unix)]

use std::collections::HashSet;

use dash_repro::dash_server::Value;
use dash_repro::{serve, EngineConfig, RespClient, ServerHandle, ShardedDash};

mod common;

fn mem_server(shards: usize) -> ServerHandle {
    let engine = ShardedDash::open(&EngineConfig {
        shards,
        shard_bytes: 16 << 20,
        dir: None,
        ..EngineConfig::default()
    })
    .unwrap();
    serve(engine, "127.0.0.1:0").unwrap()
}

#[test]
fn scan_enumerates_every_key_exactly_once_when_quiescent() {
    let server = mem_server(4);
    let mut c = RespClient::connect(server.addr()).unwrap();
    const N: u32 = 2_000;
    for i in 0..N {
        c.enqueue(&[b"SET", format!("k{i:05}").as_bytes(), format!("v{i}").as_bytes()]);
    }
    c.flush().unwrap();
    for _ in 0..N {
        assert_eq!(c.read_reply().unwrap(), Value::Simple("OK".into()));
    }
    // Page with a small COUNT: many pages, no duplicates, full coverage.
    let mut seen: HashSet<Vec<u8>> = HashSet::new();
    let mut yielded = 0usize;
    let mut pages = 0usize;
    let mut cursor = 0u64;
    loop {
        let (next, keys) = c.scan(cursor, 100).unwrap();
        yielded += keys.len();
        seen.extend(keys);
        pages += 1;
        if next == 0 {
            break;
        }
        cursor = next;
    }
    assert!(pages > 1, "COUNT 100 must paginate 2000 keys (got {pages} pages)");
    assert_eq!(yielded, N as usize, "quiescent scan must not duplicate");
    assert_eq!(seen.len(), N as usize);
    for i in 0..N {
        assert!(seen.contains(format!("k{i:05}").as_bytes()), "key {i} never scanned");
    }
    // scan_all drains the same iteration in one call.
    assert_eq!(c.scan_all(256).unwrap().len(), N as usize);
    server.shutdown();
}

#[test]
fn scan_under_concurrent_writers_keeps_stable_keys() {
    let server = mem_server(4);
    let addr = server.addr();
    let mut c = RespClient::connect(addr).unwrap();
    const STABLE: u32 = 1_000;
    for i in 0..STABLE {
        assert_eq!(
            c.command(&[b"SET", format!("stable:{i}").as_bytes(), b"s"]).unwrap(),
            Value::Simple("OK".into())
        );
    }
    let stop = std::sync::atomic::AtomicBool::new(false);
    std::thread::scope(|s| {
        for t in 0..2u32 {
            let stop = &stop;
            s.spawn(move || {
                let mut w = RespClient::connect(addr).unwrap();
                let mut i = 0u32;
                while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                    let key = format!("churn:{t}:{}", i % 400);
                    if i.is_multiple_of(3) {
                        let _ = w.del(&[key.as_bytes()]).unwrap();
                    } else {
                        assert_eq!(
                            w.command(&[b"SET", key.as_bytes(), b"c"]).unwrap(),
                            Value::Simple("OK".into())
                        );
                    }
                    i += 1;
                }
            });
        }
        let mut yielded: HashSet<Vec<u8>> = HashSet::new();
        let mut cursor = 0u64;
        loop {
            let (next, keys) = c.scan(cursor, 64).unwrap();
            yielded.extend(keys);
            if next == 0 {
                break;
            }
            cursor = next;
        }
        stop.store(true, std::sync::atomic::Ordering::Relaxed);
        for i in 0..STABLE {
            assert!(
                yielded.contains(format!("stable:{i}").as_bytes()),
                "stable key {i} lost by a scan under write load"
            );
        }
    });
    server.shutdown();
}

#[test]
fn keys_command_is_scan_in_one_reply() {
    let server = mem_server(2);
    let mut c = RespClient::connect(server.addr()).unwrap();
    for i in 0..50u32 {
        c.command(&[b"SET", format!("k{i}").as_bytes(), b"v"]).unwrap();
    }
    let Value::Array(keys) = c.command(&[b"KEYS", b"*"]).unwrap() else {
        panic!("KEYS must return an array");
    };
    assert_eq!(keys.len(), 50);
    // Only the match-everything pattern is supported (test-only command).
    let Value::Error(e) = c.command(&[b"KEYS", b"k*"]).unwrap() else {
        panic!("non-* patterns must error");
    };
    assert!(e.contains("pattern"), "{e}");
    server.shutdown();
}

#[test]
fn scan_argument_errors_are_replies() {
    let server = mem_server(2);
    let mut c = RespClient::connect(server.addr()).unwrap();
    for (cmd, needle) in [
        (vec![b"SCAN".to_vec()], "wrong number of arguments"),
        (vec![b"SCAN".to_vec(), b"notanumber".to_vec()], "invalid cursor"),
        (vec![b"SCAN".to_vec(), b"0".to_vec(), b"COUNT".to_vec(), b"0".to_vec()], "COUNT"),
        (vec![b"SCAN".to_vec(), b"0".to_vec(), b"BADWORD".to_vec(), b"5".to_vec()],
            "wrong number of arguments"),
        // A cursor pointing at a shard that does not exist.
        (vec![b"SCAN".to_vec(), format!("{}", 99u64 << 32).into_bytes()], "invalid scan cursor"),
    ] {
        let parts: Vec<&[u8]> = cmd.iter().map(|p| p.as_slice()).collect();
        let Value::Error(e) = c.command(&parts).unwrap() else {
            panic!("{cmd:?} must produce an error reply");
        };
        assert!(e.contains(needle), "{cmd:?}: {e}");
    }
    // The connection survives every error.
    assert_eq!(c.command(&[b"PING"]).unwrap(), Value::Simple("PONG".into()));
    server.shutdown();
}

#[test]
fn info_keyspace_reports_scan_len_matching_dbsize_when_quiescent() {
    let server = mem_server(3);
    let mut c = RespClient::connect(server.addr()).unwrap();
    for i in 0..777u32 {
        c.command(&[b"SET", format!("k{i}").as_bytes(), b"v"]).unwrap();
    }
    // The scan ground truth moved to the opt-in `INFO keyspace` section
    // (it walks every bucket); the default INFO stays O(shards) and
    // must NOT carry it.
    let info = c.keyspace_info().unwrap();
    assert!(info.contains("keys:777"), "{info}");
    assert!(
        info.contains("scan_len:777"),
        "scan ground truth must agree with the counters: {info}"
    );
    let default_info = c.info().unwrap();
    assert!(
        !default_info.contains("scan_len"),
        "default INFO must not pay the O(keys) scan: {default_info}"
    );
    server.shutdown();
}
