//! Redo-log recovery through the service layer, mirroring the snapshot
//! suite: logs must record every mutation, replay into fresh stores
//! (the incremental-backup path), truncate torn tails on reopen, and
//! never turn a corrupted byte into replayed state.
#![cfg(unix)]

use dash_repro::dash_server::repl::log::{read_log, LogWriter};
use dash_repro::dash_server::ReplOp;
use dash_repro::{EngineConfig, ShardedDash};

mod common;
use common::TempDir;

fn dir_cfg(dir: &TempDir, shards: usize) -> EngineConfig {
    EngineConfig { shards, shard_bytes: 8 << 20, dir: Some(dir.path.clone()), ..EngineConfig::default() }
}

fn kv(i: u32) -> (Vec<u8>, Vec<u8>) {
    (
        format!("log:{i:06}").into_bytes(),
        format!("value-{}", i.wrapping_mul(0x9E37_79B9)).into_bytes(),
    )
}

/// The log records every mutation in order, and replaying it into a
/// fresh store (any shard count) reproduces the final state — sets,
/// overwrites and deletes included.
#[test]
fn full_log_replay_reconstructs_the_store() {
    let src = TempDir::new("repl-log-src");
    let dst = TempDir::new("repl-log-dst");
    {
        let store = ShardedDash::open(&dir_cfg(&src, 2)).unwrap();
        for i in 0..800 {
            let (k, v) = kv(i);
            store.set(&k, &v).unwrap();
        }
        // Overwrites: the replay must end on the second value.
        for i in 0..200 {
            let (k, _) = kv(i);
            store.set(&k, b"rewritten").unwrap();
        }
        // Deletes: the replay must not resurrect them.
        for i in 600..800 {
            let (k, _) = kv(i);
            assert!(store.del(&k).unwrap());
        }
        assert_eq!(store.repl_offset(), 800 + 200 + 200, "every mutation must be logged");
        // Crash-style teardown: drop without close(). Log appends go
        // straight to the file, so nothing is lost with the process.
    }
    // Replay into a fresh store with a DIFFERENT shard count: per-key
    // history lives in one source log, so order is preserved.
    let restored = ShardedDash::open(&dir_cfg(&dst, 5)).unwrap();
    let applied = restored.replay_log_dir(&src.path).unwrap();
    assert_eq!(applied, 1200);
    assert_eq!(restored.len(), 600);
    for i in 0..600 {
        let (k, v) = kv(i);
        let want = if i < 200 { b"rewritten".to_vec() } else { v };
        assert_eq!(restored.get(&k).unwrap(), Some(want), "key {i}");
    }
    for i in 600..800 {
        let (k, _) = kv(i);
        assert_eq!(restored.get(&k).unwrap(), None, "deleted key {i} resurrected");
    }
    restored.close().unwrap();
}

/// The ROADMAP's incremental backup: an old snapshot plus a full log
/// replay reconstructs everything written after the snapshot, without
/// re-exporting the whole store.
#[test]
fn incremental_backup_is_snapshot_plus_log_replay() {
    let src = TempDir::new("repl-inc-src");
    let dst = TempDir::new("repl-inc-dst");
    let snap = src.path.join("early.snap");
    {
        let store = ShardedDash::open(&dir_cfg(&src, 2)).unwrap();
        for i in 0..1000 {
            let (k, v) = kv(i);
            store.set(&k, &v).unwrap();
        }
        store.snapshot_to(&snap).unwrap();
        // Everything after this point exists only in the redo logs.
        for i in 1000..2000 {
            let (k, v) = kv(i);
            store.set(&k, &v).unwrap();
        }
        for i in 0..100 {
            let (k, _) = kv(i);
            store.del(&k).unwrap();
        }
        // Crash: no clean close, no fresh snapshot.
    }
    let restored = ShardedDash::restore(&dir_cfg(&dst, 3), &snap).unwrap();
    assert_eq!(restored.len(), 1000, "snapshot alone is the old state");
    restored.replay_log_dir(&src.path).unwrap();
    assert_eq!(restored.len(), 1900, "log replay must bring the state current");
    for i in (100..2000).step_by(97) {
        let (k, v) = kv(i);
        assert_eq!(restored.get(&k).unwrap(), Some(v), "key {i} lost");
    }
    for i in 0..100 {
        let (k, _) = kv(i);
        assert_eq!(restored.get(&k).unwrap(), None, "deleted key {i} resurrected");
    }
    restored.close().unwrap();
}

/// A store refuses to replay its own logs into itself (that would
/// append every replayed op back onto the log being read).
#[test]
fn replay_refuses_own_log_dir() {
    let src = TempDir::new("repl-self");
    let store = ShardedDash::open(&dir_cfg(&src, 1)).unwrap();
    store.set(b"k", b"v").unwrap();
    let err = store.replay_log_dir(&src.path).unwrap_err();
    assert!(err.to_string().contains("own logs"), "{err}");
    store.close().unwrap();
}

/// Torn tails truncate on reopen: the engine comes back up, the offset
/// reflects only intact records, and appends continue cleanly.
#[test]
fn torn_tail_truncates_on_reopen_and_offset_recovers() {
    let src = TempDir::new("repl-torn");
    {
        let store = ShardedDash::open(&dir_cfg(&src, 1)).unwrap();
        for i in 0..50 {
            let (k, v) = kv(i);
            store.set(&k, &v).unwrap();
        }
        store.close().unwrap();
    }
    let log_path = src.path.join("repl-0.log");
    {
        // Clean reopen first: the offset is recovered from the log.
        let store = ShardedDash::open(&dir_cfg(&src, 1)).unwrap();
        assert_eq!(store.repl_offset(), 50);
        store.close().unwrap();
    }
    // Simulate a crash mid-append: chop bytes off the last record.
    let full = std::fs::read(&log_path).unwrap();
    std::fs::write(&log_path, &full[..full.len() - 3]).unwrap();
    {
        let store = ShardedDash::open(&dir_cfg(&src, 1)).unwrap();
        assert_eq!(store.repl_offset(), 49, "the torn record must not count");
        assert!(
            std::fs::metadata(&log_path).unwrap().len() < full.len() as u64,
            "the torn tail must be physically truncated"
        );
        // The store itself is intact (pools are authoritative) and
        // still writable; new appends extend the truncated log.
        assert_eq!(store.len(), 50);
        store.set(b"after-truncate", b"x").unwrap();
        assert_eq!(store.repl_offset(), 50);
        store.close().unwrap();
    }
    let (ops, rec) = read_log(&log_path).unwrap();
    assert_eq!(rec.records, 50);
    assert!(matches!(ops.last(), Some(ReplOp::Set { key, .. }) if key == b"after-truncate"));
}

/// Every-byte corruption sweep over a real store's log, mirroring the
/// snapshot suite's: a flipped byte may shorten the replayable prefix
/// but can never invent, alter or reorder a record — so replay can
/// never create state that was not written.
#[test]
fn every_byte_corruption_yields_only_a_valid_prefix() {
    let src = TempDir::new("repl-sweep");
    {
        let store = ShardedDash::open(&dir_cfg(&src, 1)).unwrap();
        for i in 0..40 {
            let (k, v) = kv(i);
            store.set(&k, &v).unwrap();
            if i % 5 == 4 {
                let (k, _) = kv(i - 1);
                store.del(&k).unwrap();
            }
        }
        store.close().unwrap();
    }
    let log_path = src.path.join("repl-0.log");
    let original = std::fs::read(&log_path).unwrap();
    let (pristine, _) = read_log(&log_path).unwrap();
    assert_eq!(pristine.len(), 48);
    for pos in 0..original.len() {
        let mut bad = original.clone();
        bad[pos] ^= 0x20;
        std::fs::write(&log_path, &bad).unwrap();
        match read_log(&log_path) {
            // Header corruption → rejected outright.
            Err(_) => assert!(pos < 16, "record flip at {pos} must not reject the whole log"),
            Ok((ops, _)) => {
                assert!(
                    ops.len() < pristine.len() || pos < 16,
                    "flip at byte {pos} went undetected"
                );
                assert_eq!(
                    ops,
                    pristine[..ops.len()],
                    "flip at byte {pos} must yield a strict prefix, never altered records"
                );
            }
        }
    }
    // Engine-level spot checks: whatever the flip position, the store
    // must reopen (log recovery never bricks the pools).
    for pos in [4usize, 13, 16, original.len() / 2, original.len() - 2] {
        let mut bad = original.clone();
        bad[pos] ^= 0x20;
        std::fs::write(&log_path, &bad).unwrap();
        let store = ShardedDash::open(&dir_cfg(&src, 1)).unwrap();
        assert!(store.repl_offset() <= 48);
        assert_eq!(store.len(), 32, "pool state must be untouched by log corruption");
        store.close().unwrap();
        std::fs::write(&log_path, &original).unwrap();
    }
    // LogWriter reopen on a mid-record flip truncates and keeps going.
    let mut bad = original.clone();
    let mid = 16 + (original.len() - 16) / 2;
    bad[mid] ^= 0x20;
    std::fs::write(&log_path, &bad).unwrap();
    let (mut w, rec) = LogWriter::open(&log_path, 0, None).unwrap();
    assert!(rec.records < 48 && rec.truncated_bytes > 0);
    w.append(&ReplOp::Set { key: b"resume".to_vec(), value: b"ok".to_vec() }).unwrap();
    drop(w);
    let (ops, _) = read_log(&log_path).unwrap();
    assert_eq!(ops.last().unwrap(), &ReplOp::Set { key: b"resume".to_vec(), value: b"ok".to_vec() });
}

/// `repl_offset` equals the total mutation count across shards and
/// survives restarts (it seeds from the recovered logs).
#[test]
fn offset_recovers_across_restarts() {
    let src = TempDir::new("repl-offset");
    {
        let store = ShardedDash::open(&dir_cfg(&src, 3)).unwrap();
        for i in 0..120 {
            let (k, v) = kv(i);
            store.set(&k, &v).unwrap();
        }
        store.close().unwrap();
    }
    let store = ShardedDash::open(&dir_cfg(&src, 3)).unwrap();
    assert_eq!(store.repl_offset(), 120);
    let (k, v) = kv(999);
    store.set(&k, &v).unwrap();
    assert_eq!(store.repl_offset(), 121);
    store.close().unwrap();
}
