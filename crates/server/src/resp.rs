//! RESP2 wire encoding/decoding (the Redis serialization protocol subset
//! `dash-server` speaks).
//!
//! Two decoders live here, both **incremental**: they take the unconsumed
//! tail of a connection's read buffer and either produce a value plus the
//! number of bytes it occupied, report that more bytes are needed
//! ([`Decode::Incomplete`]), or reject the stream as malformed. That
//! shape is what makes pipelining trivial — the connection loop keeps
//! decoding until `Incomplete`, executes everything it got, and writes
//! all replies back in one burst.
//!
//! * [`decode_command`] — the server side: a client request, restricted
//!   (as real Redis restricts it) to an array of bulk strings. Inline
//!   commands are rejected cleanly rather than half-supported.
//! * [`decode_value`] — the client side: any RESP2 reply, including
//!   nested arrays.

use std::fmt;

/// Upper bound on one bulk string (key or value) on the wire: 8 MiB.
/// Far above the engine's value cap, low enough that a malicious length
/// prefix cannot make the server reserve gigabytes.
pub const MAX_BULK_LEN: usize = 8 << 20;
/// Upper bound on elements in one command array.
pub const MAX_COMMAND_ARGS: usize = 1024;
/// Upper bound on one command's total wire size (16 MiB). Without it the
/// per-bulk and per-arg caps still compose to gigabytes that a client
/// could force the server to buffer before the command completes.
pub const MAX_COMMAND_BYTES: usize = 16 << 20;

/// One RESP2 value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Value {
    /// `+OK\r\n`
    Simple(String),
    /// `-ERR ...\r\n`
    Error(String),
    /// `:42\r\n`
    Integer(i64),
    /// `$5\r\nhello\r\n`
    Bulk(Vec<u8>),
    /// `$-1\r\n`
    Nil,
    /// `*2\r\n...` (also used for `*-1\r\n`, decoded as `Nil`)
    Array(Vec<Value>),
}

impl Value {
    /// Shorthand for the common "bulk from bytes" construction.
    pub fn bulk(bytes: impl Into<Vec<u8>>) -> Value {
        Value::Bulk(bytes.into())
    }
}

/// A protocol violation; the connection is broken and must be closed
/// (RESP has no way to resynchronize a corrupt stream).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProtocolError(pub String);

impl fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "protocol error: {}", self.0)
    }
}

impl std::error::Error for ProtocolError {}

fn protocol(msg: impl Into<String>) -> ProtocolError {
    ProtocolError(msg.into())
}

/// Outcome of an incremental decode step.
#[derive(Debug, PartialEq, Eq)]
pub enum Decode<T> {
    /// A complete item and the bytes it consumed from the buffer head.
    Complete(T, usize),
    /// The buffer holds only a prefix of an item; read more and retry.
    Incomplete,
}

// ---- encoding ------------------------------------------------------------

/// Append the wire form of `v` to `out`.
pub fn encode(v: &Value, out: &mut Vec<u8>) {
    match v {
        Value::Simple(s) => {
            out.push(b'+');
            out.extend_from_slice(s.as_bytes());
            out.extend_from_slice(b"\r\n");
        }
        Value::Error(s) => {
            out.push(b'-');
            out.extend_from_slice(s.as_bytes());
            out.extend_from_slice(b"\r\n");
        }
        Value::Integer(i) => {
            out.push(b':');
            out.extend_from_slice(i.to_string().as_bytes());
            out.extend_from_slice(b"\r\n");
        }
        Value::Bulk(b) => {
            out.push(b'$');
            out.extend_from_slice(b.len().to_string().as_bytes());
            out.extend_from_slice(b"\r\n");
            out.extend_from_slice(b);
            out.extend_from_slice(b"\r\n");
        }
        Value::Nil => out.extend_from_slice(b"$-1\r\n"),
        Value::Array(items) => {
            out.push(b'*');
            out.extend_from_slice(items.len().to_string().as_bytes());
            out.extend_from_slice(b"\r\n");
            for item in items {
                encode(item, out);
            }
        }
    }
}

/// Encode a command (array of bulk strings) — what clients send.
pub fn encode_command(parts: &[&[u8]], out: &mut Vec<u8>) {
    out.push(b'*');
    out.extend_from_slice(parts.len().to_string().as_bytes());
    out.extend_from_slice(b"\r\n");
    for p in parts {
        out.push(b'$');
        out.extend_from_slice(p.len().to_string().as_bytes());
        out.extend_from_slice(b"\r\n");
        out.extend_from_slice(p);
        out.extend_from_slice(b"\r\n");
    }
}

// ---- decoding ------------------------------------------------------------

/// Find the `\r\n`-terminated line starting at `pos`; returns the line
/// body (without terminator) and the offset just past the terminator.
fn read_line(buf: &[u8], pos: usize) -> Result<Option<(&[u8], usize)>, ProtocolError> {
    let rest = &buf[pos.min(buf.len())..];
    match rest.windows(2).position(|w| w == b"\r\n") {
        Some(i) => {
            let line = &rest[..i];
            if line.contains(&b'\n') || line.contains(&b'\r') {
                return Err(protocol("bare CR or LF inside line"));
            }
            Ok(Some((line, pos + i + 2)))
        }
        None => {
            // A lone CR at the end may still become CRLF; but a bare LF
            // anywhere means the stream is not RESP.
            if rest.contains(&b'\n') {
                return Err(protocol("LF without preceding CR"));
            }
            Ok(None)
        }
    }
}

/// Parse an ASCII integer with an optional leading `-`, rejecting empty
/// bodies, signs alone, and non-digit bytes (RESP lengths are strict).
fn parse_int(line: &[u8], what: &str) -> Result<i64, ProtocolError> {
    let s = std::str::from_utf8(line).map_err(|_| protocol(format!("non-ASCII {what}")))?;
    if s.is_empty() || s == "-" {
        return Err(protocol(format!("empty {what}")));
    }
    s.parse::<i64>().map_err(|_| protocol(format!("invalid {what}: {s:?}")))
}

/// Result of decoding one bulk string: incomplete, the nil bulk, or data;
/// complete variants carry the offset just past what they consumed.
enum Bulk {
    Incomplete,
    Nil(usize),
    Data(Vec<u8>, usize),
}

/// Decode one bulk string whose `$` type byte sits at `buf[pos]`.
fn decode_bulk(buf: &[u8], pos: usize) -> Result<Bulk, ProtocolError> {
    if pos >= buf.len() {
        return Ok(Bulk::Incomplete);
    }
    if buf[pos] != b'$' {
        return Err(protocol(format!(
            "expected bulk string, got type byte {:?}",
            buf[pos] as char
        )));
    }
    let Some((line, body)) = read_line(buf, pos + 1)? else {
        return Ok(Bulk::Incomplete);
    };
    let len = parse_int(line, "bulk length")?;
    if len == -1 {
        return Ok(Bulk::Nil(body));
    }
    if len < 0 {
        return Err(protocol(format!("negative bulk length {len}")));
    }
    let len = len as usize;
    if len > MAX_BULK_LEN {
        return Err(protocol(format!("bulk length {len} exceeds limit")));
    }
    if buf.len() < body + len + 2 {
        return Ok(Bulk::Incomplete);
    }
    if &buf[body + len..body + len + 2] != b"\r\n" {
        return Err(protocol("bulk string not terminated by CRLF"));
    }
    Ok(Bulk::Data(buf[body..body + len].to_vec(), body + len + 2))
}

/// Decode one client command from the head of `buf`: an array of bulk
/// strings, the only request form `dash-server` accepts. Inline commands
/// (a bare `PING\r\n` text line) are rejected with a clear error instead
/// of being guessed at.
pub fn decode_command(buf: &[u8]) -> Result<Decode<Vec<Vec<u8>>>, ProtocolError> {
    if buf.is_empty() {
        return Ok(Decode::Incomplete);
    }
    if buf[0] != b'*' {
        return Err(protocol(format!(
            "inline commands are not supported (got {:?}; send a RESP array)",
            buf[0] as char
        )));
    }
    let Some((line, mut pos)) = read_line(buf, 1)? else {
        if buf.len() > MAX_COMMAND_BYTES {
            return Err(protocol("command exceeds total size limit"));
        }
        return Ok(Decode::Incomplete);
    };
    let n = parse_int(line, "array length")?;
    if n < 1 {
        return Err(protocol(format!("command array length {n} out of range")));
    }
    if n as usize > MAX_COMMAND_ARGS {
        return Err(protocol(format!("command array length {n} exceeds limit")));
    }
    let mut parts = Vec::with_capacity(n as usize);
    for _ in 0..n {
        match decode_bulk(buf, pos)? {
            Bulk::Incomplete => {
                // Refuse to keep buffering a command that can no longer
                // fit under the size cap, instead of letting a client
                // grow the connection buffer toward args × bulk-limit.
                if buf.len() > MAX_COMMAND_BYTES {
                    return Err(protocol("command exceeds total size limit"));
                }
                return Ok(Decode::Incomplete);
            }
            Bulk::Nil(_) => return Err(protocol("nil bulk inside a command")),
            Bulk::Data(part, next) => {
                parts.push(part);
                pos = next;
                if pos > MAX_COMMAND_BYTES {
                    return Err(protocol("command exceeds total size limit"));
                }
            }
        }
    }
    Ok(Decode::Complete(parts, pos))
}

/// Decode one RESP2 value of any type from the head of `buf` (client
/// side; nested arrays allowed to depth 8).
pub fn decode_value(buf: &[u8]) -> Result<Decode<Value>, ProtocolError> {
    Ok(match decode_value_at(buf, 0, 8)? {
        Some((v, consumed)) => Decode::Complete(v, consumed),
        None => Decode::Incomplete,
    })
}

/// `None` = incomplete; `Some((value, next))` = decoded, with `next` the
/// offset just past the value.
fn decode_value_at(
    buf: &[u8],
    pos: usize,
    depth: u32,
) -> Result<Option<(Value, usize)>, ProtocolError> {
    if depth == 0 {
        return Err(protocol("array nesting too deep"));
    }
    if pos >= buf.len() {
        return Ok(None);
    }
    match buf[pos] {
        b'+' | b'-' => {
            let Some((line, next)) = read_line(buf, pos + 1)? else {
                return Ok(None);
            };
            let text = String::from_utf8_lossy(line).into_owned();
            let v = if buf[pos] == b'+' { Value::Simple(text) } else { Value::Error(text) };
            Ok(Some((v, next)))
        }
        b':' => {
            let Some((line, next)) = read_line(buf, pos + 1)? else {
                return Ok(None);
            };
            Ok(Some((Value::Integer(parse_int(line, "integer")?), next)))
        }
        b'$' => match decode_bulk(buf, pos)? {
            Bulk::Incomplete => Ok(None),
            Bulk::Nil(next) => Ok(Some((Value::Nil, next))),
            Bulk::Data(b, next) => Ok(Some((Value::Bulk(b), next))),
        },
        b'*' => {
            let Some((line, mut next)) = read_line(buf, pos + 1)? else {
                return Ok(None);
            };
            let n = parse_int(line, "array length")?;
            if n == -1 {
                return Ok(Some((Value::Nil, next)));
            }
            if n < 0 || n as usize > MAX_COMMAND_ARGS {
                return Err(protocol(format!("array length {n} out of range")));
            }
            let mut items = Vec::with_capacity(n as usize);
            for _ in 0..n {
                match decode_value_at(buf, next, depth - 1)? {
                    None => return Ok(None),
                    Some((v, n2)) => {
                        items.push(v);
                        next = n2;
                    }
                }
            }
            Ok(Some((Value::Array(items), next)))
        }
        other => Err(protocol(format!("unknown RESP type byte {:?}", other as char))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn enc(v: &Value) -> Vec<u8> {
        let mut out = Vec::new();
        encode(v, &mut out);
        out
    }

    #[test]
    fn encode_all_types() {
        assert_eq!(enc(&Value::Simple("OK".into())), b"+OK\r\n");
        assert_eq!(enc(&Value::Error("ERR boom".into())), b"-ERR boom\r\n");
        assert_eq!(enc(&Value::Integer(-7)), b":-7\r\n");
        assert_eq!(enc(&Value::bulk(*b"hi")), b"$2\r\nhi\r\n");
        assert_eq!(enc(&Value::bulk(*b"")), b"$0\r\n\r\n");
        assert_eq!(enc(&Value::Nil), b"$-1\r\n");
        assert_eq!(
            enc(&Value::Array(vec![Value::Integer(1), Value::Nil])),
            b"*2\r\n:1\r\n$-1\r\n"
        );
    }

    #[test]
    fn command_roundtrip() {
        let mut wire = Vec::new();
        encode_command(&[b"SET", b"key", b"value"], &mut wire);
        assert_eq!(wire, b"*3\r\n$3\r\nSET\r\n$3\r\nkey\r\n$5\r\nvalue\r\n");
        match decode_command(&wire).unwrap() {
            Decode::Complete(parts, consumed) => {
                assert_eq!(parts, vec![b"SET".to_vec(), b"key".to_vec(), b"value".to_vec()]);
                assert_eq!(consumed, wire.len());
            }
            Decode::Incomplete => panic!("complete command not decoded"),
        }
    }

    #[test]
    fn binary_safe_payloads() {
        let key = vec![0u8, 13, 10, 255, 36, 42]; // embedded CR, LF, $, *
        let mut wire = Vec::new();
        encode_command(&[b"SET", &key, &key], &mut wire);
        let Decode::Complete(parts, n) = decode_command(&wire).unwrap() else {
            panic!("incomplete");
        };
        assert_eq!(parts[1], key);
        assert_eq!(parts[2], key);
        assert_eq!(n, wire.len());
    }

    #[test]
    fn pipelined_commands_decode_one_at_a_time() {
        let mut wire = Vec::new();
        encode_command(&[b"PING"], &mut wire);
        encode_command(&[b"GET", b"k"], &mut wire);
        let Decode::Complete(first, n1) = decode_command(&wire).unwrap() else {
            panic!("incomplete");
        };
        assert_eq!(first, vec![b"PING".to_vec()]);
        let Decode::Complete(second, n2) = decode_command(&wire[n1..]).unwrap() else {
            panic!("incomplete");
        };
        assert_eq!(second, vec![b"GET".to_vec(), b"k".to_vec()]);
        assert_eq!(n1 + n2, wire.len());
    }

    #[test]
    fn split_reads_report_incomplete_at_every_prefix() {
        let mut wire = Vec::new();
        encode_command(&[b"SET", b"some-key", b"some-value"], &mut wire);
        for cut in 0..wire.len() {
            match decode_command(&wire[..cut]) {
                Ok(Decode::Incomplete) => {}
                other => panic!("prefix of {cut} bytes must be Incomplete, got {other:?}"),
            }
        }
        assert!(matches!(decode_command(&wire), Ok(Decode::Complete(_, _))));
    }

    #[test]
    fn reply_split_reads_report_incomplete_at_every_prefix() {
        let v = Value::Array(vec![
            Value::Simple("OK".into()),
            Value::bulk(*b"payload"),
            Value::Integer(12345),
            Value::Nil,
        ]);
        let wire = enc(&v);
        for cut in 0..wire.len() {
            match decode_value(&wire[..cut]) {
                Ok(Decode::Incomplete) => {}
                other => panic!("prefix of {cut} bytes must be Incomplete, got {other:?}"),
            }
        }
        let Decode::Complete(decoded, n) = decode_value(&wire).unwrap() else {
            panic!("incomplete");
        };
        assert_eq!(decoded, v);
        assert_eq!(n, wire.len());
    }

    #[test]
    fn inline_commands_rejected_cleanly() {
        let e = decode_command(b"PING\r\n").unwrap_err();
        assert!(e.0.contains("inline"), "{e}");
        // Leading whitespace is equally not a RESP array.
        assert!(decode_command(b" *1\r\n").is_err());
    }

    #[test]
    fn malformed_lengths_rejected() {
        // Non-numeric array length.
        assert!(decode_command(b"*x\r\n").is_err());
        // Empty array length.
        assert!(decode_command(b"*\r\n").is_err());
        // Zero and negative command arrays are meaningless requests.
        assert!(decode_command(b"*0\r\n").is_err());
        assert!(decode_command(b"*-1\r\n").is_err());
        // Bulk length garbage / overflow-ish values.
        assert!(decode_command(b"*1\r\n$abc\r\n").is_err());
        assert!(decode_command(b"*1\r\n$-2\r\n").is_err());
        assert!(decode_command(b"*1\r\n$99999999999999999999\r\n").is_err());
        // A nil bulk cannot be a command word.
        assert!(decode_command(b"*1\r\n$-1\r\n").is_err());
    }

    #[test]
    fn oversized_claims_rejected_before_allocation() {
        let huge_bulk = format!("*1\r\n${}\r\n", MAX_BULK_LEN + 1);
        assert!(decode_command(huge_bulk.as_bytes()).is_err());
        let huge_array = format!("*{}\r\n", MAX_COMMAND_ARGS + 1);
        assert!(decode_command(huge_array.as_bytes()).is_err());
    }

    #[test]
    fn aggregate_command_size_capped() {
        // Many individually-legal bulks must not compose past the total
        // cap: stream 5 MiB bulks until the buffer crosses the limit and
        // check the decoder errors out instead of asking for more.
        let bulk_len = 5 << 20;
        let mut wire = format!("*{MAX_COMMAND_ARGS}\r\n").into_bytes();
        while wire.len() <= MAX_COMMAND_BYTES {
            wire.extend_from_slice(format!("${bulk_len}\r\n").as_bytes());
            wire.resize(wire.len() + bulk_len, b'x');
            wire.extend_from_slice(b"\r\n");
        }
        assert!(
            decode_command(&wire).is_err(),
            "an over-limit partial command must be rejected, not buffered"
        );
    }

    #[test]
    fn bulk_payload_must_end_with_crlf() {
        assert!(decode_command(b"*1\r\n$2\r\nhiXX").is_err());
        // Payload longer than declared: terminator check catches it.
        assert!(decode_command(b"*1\r\n$2\r\nhello\r\n").is_err());
    }

    #[test]
    fn bare_line_endings_rejected() {
        assert!(decode_command(b"*1\n$4\r\nPING\r\n").is_err());
        assert!(decode_value(b":12\n34\r\n").is_err());
    }

    #[test]
    fn wrong_type_byte_inside_command_rejected() {
        // Integer where a bulk string must be.
        assert!(decode_command(b"*1\r\n:5\r\n").is_err());
    }

    #[test]
    fn reply_types_decode() {
        for (wire, want) in [
            (&b"+PONG\r\n"[..], Value::Simple("PONG".into())),
            (&b"-ERR nope\r\n"[..], Value::Error("ERR nope".into())),
            (&b":0\r\n"[..], Value::Integer(0)),
            (&b":-42\r\n"[..], Value::Integer(-42)),
            (&b"$-1\r\n"[..], Value::Nil),
            (&b"*-1\r\n"[..], Value::Nil),
            (&b"$3\r\nabc\r\n"[..], Value::bulk(*b"abc")),
        ] {
            let Decode::Complete(v, n) = decode_value(wire).unwrap() else {
                panic!("incomplete for {wire:?}");
            };
            assert_eq!(v, want);
            assert_eq!(n, wire.len());
        }
    }

    #[test]
    fn nested_arrays_decode_and_depth_is_bounded() {
        let wire = b"*2\r\n*2\r\n:1\r\n:2\r\n$1\r\nx\r\n";
        let Decode::Complete(v, _) = decode_value(wire).unwrap() else {
            panic!("incomplete");
        };
        assert_eq!(
            v,
            Value::Array(vec![
                Value::Array(vec![Value::Integer(1), Value::Integer(2)]),
                Value::bulk(*b"x"),
            ])
        );
        let bomb = "*1\r\n".repeat(64);
        assert!(decode_value(bomb.as_bytes()).is_err(), "deep nesting must be rejected");
    }

    #[test]
    fn unknown_type_byte_rejected() {
        assert!(decode_value(b"!oops\r\n").is_err());
    }

    #[test]
    fn trailing_bytes_left_unconsumed() {
        let wire = b":1\r\n:2\r\n";
        let Decode::Complete(v, n) = decode_value(wire).unwrap() else {
            panic!("incomplete");
        };
        assert_eq!(v, Value::Integer(1));
        assert_eq!(n, 4);
    }
}
