//! The networked service: an **event-driven** TCP server speaking the
//! RESP2 subset `GET` / `SET` (with `EX`/`PX`/`EXAT`/`PXAT`) / `MGET` /
//! `MSET` / `DEL` / `UNLINK` / `EXISTS` / `EXPIRE` / `PEXPIRE` / `TTL`
//! / `PTTL` / `PERSIST` / `SCAN` / `KEYS` / `SNAPSHOT` / `PING` /
//! `INFO` / `DBSIZE` (plus `SHUTDOWN` for orderly teardown) over a
//! [`ShardedDash`] engine.
//!
//! `SCAN cursor [COUNT n]` pages through the keyspace with the Redis
//! cursor contract (every key present for the whole scan is returned at
//! least once, even across concurrent segment splits); `SNAPSHOT <path>`
//! streams an online, checksummed backup of the whole store to a file on
//! the **server's** filesystem while writers keep running.
//!
//! Pipelining comes for free from the decode loop: every complete
//! command sitting in the read buffer is executed and its reply appended
//! to one write buffer, which is flushed in a single burst — a client
//! that sends N requests back-to-back pays one round trip, not N.
//! The multi-key commands (`MGET`, `MSET`, variadic `DEL`/`EXISTS`) go
//! further: one command executes its whole key set through the engine's
//! batch paths, which group keys by shard and pay one epoch entry and
//! one write-lock acquisition per shard instead of one per key.
//!
//! Connections are served by a fixed pool of epoll event-loop workers
//! ([`crate::net`]) — default one per CPU, `--event-workers` to
//! override — assigned round-robin at accept time. Connection count no
//! longer costs thread stacks or scheduler churn, and the idle *event
//! core* makes zero periodic wakeups (the old model parked one thread
//! per connection in a 50 ms read-timeout poll); the one periodic
//! thread in the process is the ~100 ms expiry/reclamation tick, whose
//! cost is independent of connection count. Shutdown is event-driven
//! too: an eventfd wakes every loop, replacing the throwaway
//! self-connect that used to unblock `accept`. The one place a
//! connection still owns a blocking socket and a dedicated thread is
//! the `PSYNC` replication stream ([`serve_replica_stream`]), which
//! genuinely does.
//!
//! This file owns the protocol surface (command dispatch, INFO,
//! replication handshake) and the server lifecycle; the readiness
//! machinery lives in [`crate::net`].

use std::io::Write;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::sync::Arc;
use std::time::Duration;

use parking_lot::Mutex;

use crate::engine::ShardedDash;
use crate::metrics::{CmdFamily, Metrics, DEFAULT_SLOWLOG_THRESHOLD_US};
use crate::net::EventFd;
use crate::repl::ReplOp;
use crate::resp::{encode, encode_command, Value};

/// How long a blocking reply write (SHUTDOWN ack, replication stream)
/// may stall before the connection is dropped.
pub(crate) const WRITE_TIMEOUT: Duration = Duration::from_secs(30);
/// `SCAN` page size when the client sends no `COUNT`.
const DEFAULT_SCAN_COUNT: usize = 64;
/// Cap on a client-supplied `COUNT` (bounds one reply's memory).
const MAX_SCAN_COUNT: usize = 10_000;

/// Which side of replication this server is on. A server starts as a
/// primary (the default) or as a replica (`--replica-of`); a replica
/// becomes a primary through `REPLICAOF NO ONE` (promotion).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Role {
    Primary,
    Replica,
}

/// Options for [`serve_with`].
#[derive(Debug, Clone, Default)]
pub struct ServeOptions {
    /// Start as a read-only replica of the primary at `host:port`:
    /// bootstrap via `PSYNC` (snapshot + tail) and keep applying the
    /// primary's stream until promoted. The engine should be empty —
    /// the first full sync clears it.
    pub replica_of: Option<String>,
    /// Event-loop worker threads serving connections. `None` = one per
    /// available CPU (minimum 1).
    pub event_workers: Option<usize>,
    /// Serve Prometheus text exposition over HTTP on this address
    /// (`GET /metrics`). Served by the accept loop itself — no extra
    /// threads. `None` disables the endpoint.
    pub metrics_addr: Option<String>,
    /// SLOWLOG threshold in microseconds; commands at or above it are
    /// recorded. `None` = [`DEFAULT_SLOWLOG_THRESHOLD_US`].
    pub slowlog_threshold_us: Option<u64>,
    /// Enable cluster mode, announcing this `host:port` to peers and
    /// clients (what redirects and the slot map record for this node).
    /// The literal `"auto"` announces the actual bound address — handy
    /// with port 0. Mutually exclusive with `replica_of`.
    pub cluster_announce: Option<String>,
}

pub(crate) struct Inner {
    pub(crate) engine: ShardedDash,
    pub(crate) shutdown: AtomicBool,
    pub(crate) addr: SocketAddr,
    /// The telemetry registry: every health counter, the per-command
    /// latency histograms and the SLOWLOG ring. The single home for
    /// these numbers — `net/` increments here, and INFO, SLOWLOG and
    /// the metrics endpoint all render from here.
    pub(crate) metrics: Metrics,
    /// The request-tracing control plane: sampling knobs, span ids, and
    /// the per-worker flight-recorder rings behind `TRACE DUMP`.
    pub(crate) tracer: crate::trace::Tracer,
    /// Where the Prometheus endpoint is bound (`--metrics-addr`).
    pub(crate) metrics_addr: Option<SocketAddr>,
    /// Size of the event-loop worker pool.
    pub(crate) event_workers: usize,
    /// One wakeup eventfd per event loop (accept + workers): shutdown
    /// pokes them all so every loop notices the flag immediately.
    wakes: Mutex<Vec<Arc<EventFd>>>,
    /// Dedicated threads serving `PSYNC` replication streams — the only
    /// remaining per-connection threads. Reaped with a real `join` (a
    /// panic is counted, not silently dropped).
    stream_threads: Mutex<Vec<std::thread::JoinHandle<()>>>,
    /// `Role` as a u8 (0 = primary, 1 = replica); flipped by promotion.
    role: AtomicU8,
    /// Replica: the primary this server follows.
    pub(crate) master_addr: Option<String>,
    /// Replica: replication-stream offset applied so far (primary
    /// numbering: FULLRESYNC base + tail ops applied).
    pub(crate) applied_offset: AtomicU64,
    /// Replica: is the link to the primary currently established?
    pub(crate) link_up: AtomicBool,
    /// Replica: tells the sync thread to stop (promotion fence).
    pub(crate) sync_stop: AtomicBool,
    /// Replica: the background sync thread, joined at shutdown.
    replica_thread: Mutex<Option<std::thread::JoinHandle<()>>>,
    /// Cluster mode (slot ownership, redirects, migration) — `Some`
    /// when started with `--cluster-announce`.
    pub(crate) cluster: Option<Arc<crate::cluster::ClusterState>>,
    /// The expiry/reclamation tick thread (~100 ms cadence), joined at
    /// shutdown before the engine closes.
    tick_thread: Mutex<Option<std::thread::JoinHandle<()>>>,
}

impl Inner {
    pub(crate) fn role(&self) -> Role {
        if self.role.load(Ordering::SeqCst) == 0 { Role::Primary } else { Role::Replica }
    }

    pub(crate) fn count_accept(&self) {
        self.metrics.connections_accepted.incr();
    }

    pub(crate) fn count_command(&self) {
        self.metrics.commands_served.incr();
    }

    /// Make an event loop's wakeup reachable from [`Inner::wake_all`].
    pub(crate) fn register_wake(&self, wake: Arc<EventFd>) {
        self.wakes.lock().push(wake);
    }

    fn wake_all(&self) {
        for wake in self.wakes.lock().iter() {
            wake.wake();
        }
    }

    /// Raise the shutdown flag and wake every event loop so it notices
    /// now — the event-driven replacement for the old throwaway
    /// self-connect plus 50 ms per-connection polling.
    pub(crate) fn begin_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        self.wake_all();
    }

    /// Start a dedicated thread for an accepted `PSYNC` stream, reaping
    /// finished ones first so handles don't accumulate unjoined on a
    /// long-lived primary.
    pub(crate) fn spawn_stream_thread(self: &Arc<Self>, stream: TcpStream) {
        self.reap_stream_threads();
        let inner = self.clone();
        let handle = std::thread::spawn(move || {
            let _ = serve_replica_stream(stream, &inner);
        });
        self.stream_threads.lock().push(handle);
    }

    /// Join every finished stream thread. Unlike the old
    /// `retain(|h| !h.is_finished())`, a panicked thread is *joined* and
    /// counted in `worker_panics` instead of vanishing with its handle.
    pub(crate) fn reap_stream_threads(&self) {
        let mut threads = self.stream_threads.lock();
        let mut i = 0;
        while i < threads.len() {
            if threads[i].is_finished() {
                if threads.swap_remove(i).join().is_err() {
                    self.metrics.worker_panics.incr();
                }
            } else {
                i += 1;
            }
        }
    }

    /// The tail of teardown, run by the accept loop after its workers
    /// are joined: replication-stream threads, the replica sync thread,
    /// then the engine's pools — the last acknowledged write is durably
    /// on disk when this returns.
    pub(crate) fn finish_shutdown(&self) {
        let threads = std::mem::take(&mut *self.stream_threads.lock());
        for t in threads {
            if t.join().is_err() {
                self.metrics.worker_panics.incr();
            }
        }
        if let Some(t) = self.replica_thread.lock().take() {
            let _ = t.join();
        }
        if let Some(cl) = &self.cluster {
            // The migration loops poll the shutdown flag (~100ms) and
            // bail out; the failed migration is simply re-run later.
            crate::cluster::join_migration_thread(cl);
        }
        if let Some(t) = self.tick_thread.lock().take() {
            let _ = t.join();
        }
        let _ = self.engine.close();
    }

    /// Promote to primary (idempotent). The role only flips — i.e.
    /// writes are only accepted — after the sync thread has been
    /// stopped AND joined: a replicated batch already in flight when
    /// the promotion arrived must fully apply (it is pre-promotion
    /// state) before any client write can land, or the stale batch
    /// could overwrite an acknowledged post-promotion write. Holding
    /// the thread-handle lock across the join serializes concurrent
    /// promotions onto the same fence.
    fn promote(&self) {
        self.sync_stop.store(true, Ordering::SeqCst);
        let mut handle = self.replica_thread.lock();
        if let Some(t) = handle.take() {
            let _ = t.join();
        }
        if self.role.swap(0, Ordering::SeqCst) == 1 {
            self.link_up.store(false, Ordering::SeqCst);
            // This node is the clock now: expiry decisions are made
            // (and published as DELs) here from this point on.
            self.engine.set_local_expiry(true);
        }
    }
}

/// Handle to a running server: address, shutdown, join.
pub struct ServerHandle {
    inner: Arc<Inner>,
    accept_thread: Option<std::thread::JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.inner.addr
    }

    /// Where the Prometheus endpoint is bound (useful with port 0);
    /// `None` when the server was started without `--metrics-addr`.
    pub fn metrics_addr(&self) -> Option<SocketAddr> {
        self.inner.metrics_addr
    }

    /// Block until the server stops on its own (a client issued
    /// `SHUTDOWN`) — the serve-forever mode of the `dash-server` binary.
    pub fn join(mut self) {
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }

    /// Ask the server to stop, wait for every event loop and stream
    /// thread to drain, and close the engine's pools cleanly.
    pub fn shutdown(mut self) {
        self.inner.begin_shutdown();
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

/// Serve `engine` on `addr` (e.g. `"127.0.0.1:0"` for an ephemeral
/// port). Returns once the listener is bound; accepting runs on a
/// background thread. Dropping the handle without calling
/// [`ServerHandle::shutdown`] leaves the pools uncleanly closed — the
/// store recovers, but with a version bump, exactly like a crash.
pub fn serve(engine: ShardedDash, addr: impl ToSocketAddrs) -> std::io::Result<ServerHandle> {
    serve_with(engine, addr, ServeOptions::default())
}

/// [`serve`] with options — replica mode, cluster mode, worker count,
/// metrics endpoint.
pub fn serve_with(
    engine: ShardedDash,
    addr: impl ToSocketAddrs,
    opts: ServeOptions,
) -> std::io::Result<ServerHandle> {
    if opts.cluster_announce.is_some() && opts.replica_of.is_some() {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidInput,
            "cluster mode and replica mode are mutually exclusive on one server",
        ));
    }
    let listener = TcpListener::bind(addr)?;
    let addr = listener.local_addr()?;
    let cluster = match opts.cluster_announce.as_deref() {
        Some(announce) => {
            let announce =
                if announce == "auto" { addr.to_string() } else { announce.to_string() };
            Some(crate::cluster::ClusterState::open(announce, engine.store_dir())?)
        }
        None => None,
    };
    let event_workers = opts
        .event_workers
        .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |n| n.get()))
        .max(1);
    // Bind the metrics endpoint up front, like the service listener:
    // a bad --metrics-addr fails serve_with instead of surfacing later.
    let metrics_listener = match &opts.metrics_addr {
        Some(a) => Some(TcpListener::bind(a)?),
        None => None,
    };
    let metrics_addr = match &metrics_listener {
        Some(l) => Some(l.local_addr()?),
        None => None,
    };
    let inner = Arc::new(Inner {
        engine,
        shutdown: AtomicBool::new(false),
        addr,
        metrics: Metrics::new(
            opts.slowlog_threshold_us.unwrap_or(DEFAULT_SLOWLOG_THRESHOLD_US),
        ),
        tracer: crate::trace::Tracer::new(),
        metrics_addr,
        event_workers,
        wakes: Mutex::new(Vec::new()),
        stream_threads: Mutex::new(Vec::new()),
        role: AtomicU8::new(u8::from(opts.replica_of.is_some())),
        master_addr: opts.replica_of.clone(),
        applied_offset: AtomicU64::new(0),
        link_up: AtomicBool::new(false),
        sync_stop: AtomicBool::new(false),
        replica_thread: Mutex::new(None),
        cluster,
        tick_thread: Mutex::new(None),
    });
    if let Some(cl) = &inner.cluster {
        cl.bind(&inner);
    }
    if let Some(master) = opts.replica_of {
        // A replica is never the expiry clock: due keys are hidden from
        // its reads, but only the primary's replicated DEL deletes them.
        inner.engine.set_local_expiry(false);
        let sync_inner = inner.clone();
        let handle = std::thread::spawn(move || crate::repl::replica::run(sync_inner, master));
        *inner.replica_thread.lock() = Some(handle);
    }
    // The expiry/reclamation tick: active TTL expiry from the timer
    // wheel, one incremental sweep page (catches deadlines set before
    // the last open, which the volatile wheel never saw), and value-log
    // reclamation when a shard's garbage crosses the threshold. This is
    // the one deliberate periodic wakeup in the process — the *event
    // core* still makes none while idle.
    {
        let tick_inner = inner.clone();
        let handle = std::thread::spawn(move || {
            while !tick_inner.shutdown.load(Ordering::SeqCst) {
                std::thread::sleep(Duration::from_millis(100));
                tick_inner.engine.expire_tick(512);
                tick_inner.engine.sweep_tick(256);
                tick_inner.engine.reclaim_tick();
            }
        });
        *inner.tick_thread.lock() = Some(handle);
    }
    // Build the whole event core fallibly before anything serves: the
    // worker pool first, then the accept loop wired to it.
    let workers = (0..event_workers)
        .map(|id| crate::net::spawn_worker(id, inner.clone()))
        .collect::<std::io::Result<Vec<_>>>()?;
    let acceptor = crate::net::Acceptor::new(listener, metrics_listener, workers, &inner)?;
    let accept_inner = inner.clone();
    let accept_thread = std::thread::spawn(move || acceptor.run(accept_inner));
    Ok(ServerHandle { inner, accept_thread: Some(accept_thread) })
}

pub(crate) enum Outcome {
    Reply(Value),
    /// `PSYNC` accepted: the connection becomes a replication stream.
    StartReplication,
    Shutdown,
}

/// Per-connection command-dispatch state: the cluster `ASKING` flag and
/// the `TRACEID` forced-capture token — both one-shot, licensing only
/// the **next** command.
#[derive(Default)]
pub(crate) struct Session {
    pub(crate) asking: bool,
    /// Set by `TRACEID <id> <hops>`: the next command is trace-captured
    /// under this `(origin id, hop count)` regardless of sampling —
    /// how a cluster client or the replication stream carries one
    /// request's identity across servers.
    pub(crate) trace_force: Option<(u64, u32)>,
}

/// Does this command mutate engine state? The replica write gate — keep
/// in lockstep with the dispatch arms in [`execute`]: every command that
/// reaches a mutating engine call MUST be listed here, or clients could
/// write to a replica and silently diverge it from its primary.
fn writes_engine_state(name: &str) -> bool {
    matches!(name, "SET" | "MSET" | "DEL" | "UNLINK" | "EXPIRE" | "PEXPIRE" | "PERSIST")
}

fn err(msg: impl Into<String>) -> Outcome {
    Outcome::Reply(Value::Error(format!("ERR {}", msg.into())))
}

/// Map an engine error to its reply. [`EngineError::Oom`] gets the
/// Redis `OOM` error class (clients special-case it); everything else
/// is generic `ERR`.
fn engine_err(e: crate::engine::EngineError) -> Outcome {
    match e {
        crate::engine::EngineError::Oom => Outcome::Reply(Value::Error(format!("OOM {e}"))),
        e => err(e.to_string()),
    }
}

fn parse_int(b: &[u8]) -> Option<i64> {
    std::str::from_utf8(b).ok().and_then(|s| s.parse::<i64>().ok())
}

fn wrong_args(cmd: &str) -> Outcome {
    err(format!("wrong number of arguments for '{cmd}' command"))
}

/// Execute one decoded command against the engine.
pub(crate) fn execute(parts: &[Vec<u8>], inner: &Inner, session: &mut Session) -> Outcome {
    let engine = &inner.engine;
    let name = String::from_utf8_lossy(&parts[0]).to_ascii_uppercase();
    let args = &parts[1..];
    // ASKING is one-shot: it covers exactly the next command.
    let asking = std::mem::take(&mut session.asking);
    // A replica owns no writes: its state is the primary's stream (the
    // sync thread applies that through the engine directly, not through
    // commands). Client writes bounce with the Redis error class.
    if writes_engine_state(&name) && inner.role() == Role::Replica {
        return Outcome::Reply(Value::Error(
            "READONLY You can't write against a read only replica.".into(),
        ));
    }
    // The cluster slot gate: every keyed command must hash to a slot
    // this node may serve, or the redirect (MOVED/ASK/TRYAGAIN/
    // CROSSSLOT) is the reply. The returned guard marks the command
    // in-flight against a migrating slot until it finishes executing —
    // the migration flip's fence waits on those.
    let mut _migrating_guard = None;
    if let Some(cl) = &inner.cluster {
        match name.as_str() {
            "ASKING" => {
                session.asking = true;
                return Outcome::Reply(Value::Simple("OK".into()));
            }
            "CLUSTER" => {
                return Outcome::Reply(crate::cluster::cluster_command(cl, inner, args));
            }
            _ => {
                if let Some(keys) = crate::cluster::keyed_args(&name, args) {
                    match cl.check(&keys, asking) {
                        Ok(guard) => _migrating_guard = guard,
                        Err(reply) => return Outcome::Reply(reply),
                    }
                }
            }
        }
    }
    match name.as_str() {
        "PING" => match args {
            [] => Outcome::Reply(Value::Simple("PONG".into())),
            [msg] => Outcome::Reply(Value::bulk(msg.clone())),
            _ => wrong_args("ping"),
        },
        "GET" => match args {
            [key] => match engine.get(key) {
                Ok(Some(v)) => Outcome::Reply(Value::Bulk(v)),
                Ok(None) => Outcome::Reply(Value::Nil),
                Err(e) => err(e.to_string()),
            },
            _ => wrong_args("get"),
        },
        // `SET key value [EX s | PX ms | EXAT s | PXAT ms]`. The
        // relative forms resolve to an absolute Unix-ms deadline *here*,
        // on the primary — everything downstream (redo log, replica
        // stream, snapshots, migration) carries the absolute deadline
        // and never re-derives time. Plain SET clears any existing TTL.
        "SET" => {
            let (key, value, ttl) = match args {
                [key, value] => (key, value, None),
                [key, value, unit, n] => (key, value, Some((unit, n))),
                _ => return wrong_args("set"),
            };
            let expire_at_ms = match ttl {
                None => 0,
                Some((unit, n)) => {
                    let Some(n) = parse_int(n).filter(|n| *n >= 1) else {
                        return err("invalid expire time in 'set' command");
                    };
                    let n = n as u64;
                    let now = crate::expire::now_ms();
                    if unit.eq_ignore_ascii_case(b"EX") {
                        now.saturating_add(n.saturating_mul(1000))
                    } else if unit.eq_ignore_ascii_case(b"PX") {
                        now.saturating_add(n)
                    } else if unit.eq_ignore_ascii_case(b"EXAT") {
                        n.saturating_mul(1000)
                    } else if unit.eq_ignore_ascii_case(b"PXAT") {
                        n
                    } else {
                        return err("syntax error");
                    }
                }
            };
            match engine.set_with_expiry(key, value, expire_at_ms) {
                Ok(()) => Outcome::Reply(Value::Simple("OK".into())),
                Err(e) => engine_err(e),
            }
        }
        "MGET" => {
            if args.is_empty() {
                return wrong_args("mget");
            }
            let keys: Vec<&[u8]> = args.iter().map(|a| a.as_slice()).collect();
            match engine.mget(&keys) {
                Ok(values) => Outcome::Reply(Value::Array(
                    values
                        .into_iter()
                        .map(|v| v.map_or(Value::Nil, Value::Bulk))
                        .collect(),
                )),
                Err(e) => err(e.to_string()),
            }
        }
        "MSET" => {
            if args.is_empty() || !args.len().is_multiple_of(2) {
                return wrong_args("mset");
            }
            let pairs: Vec<(&[u8], &[u8])> =
                args.chunks_exact(2).map(|c| (c[0].as_slice(), c[1].as_slice())).collect();
            match engine.mset(&pairs) {
                Ok(()) => Outcome::Reply(Value::Simple("OK".into())),
                Err(e) => engine_err(e),
            }
        }
        "DEL" => match args {
            [] => wrong_args("del"),
            // Single key (the common case): skip the batch path's
            // grouping allocations.
            [key] => match engine.del(key) {
                Ok(removed) => Outcome::Reply(Value::Integer(i64::from(removed))),
                Err(e) => err(e.to_string()),
            },
            _ => {
                let keys: Vec<&[u8]> = args.iter().map(|a| a.as_slice()).collect();
                match engine.mdel(&keys) {
                    Ok(removed) => Outcome::Reply(Value::Integer(removed as i64)),
                    Err(e) => err(e.to_string()),
                }
            }
        },
        // UNLINK: DEL's contract through the batch path unconditionally
        // — one write-lock acquisition per shard for the whole key set.
        // (Frees are epoch-deferred here as everywhere, so the "async
        // reclaim" half of Redis UNLINK is the engine's normal mode.)
        "UNLINK" => match args {
            [] => wrong_args("unlink"),
            _ => {
                let keys: Vec<&[u8]> = args.iter().map(|a| a.as_slice()).collect();
                match engine.mdel(&keys) {
                    Ok(removed) => Outcome::Reply(Value::Integer(removed as i64)),
                    Err(e) => err(e.to_string()),
                }
            }
        },
        // `EXPIRE key s` / `PEXPIRE key ms`: resolved to an absolute
        // deadline here on the primary (the one clock); a non-positive
        // TTL deletes the key now, exactly like Redis.
        "EXPIRE" | "PEXPIRE" => match args {
            [key, n] => {
                let Some(n) = parse_int(n) else {
                    return err("value is not an integer or out of range");
                };
                let now = crate::expire::now_ms();
                let deadline = if n <= 0 {
                    now // already due: expire_at deletes outright
                } else if name == "EXPIRE" {
                    now.saturating_add((n as u64).saturating_mul(1000))
                } else {
                    now.saturating_add(n as u64)
                };
                match engine.expire_at(key, deadline) {
                    Ok(set) => Outcome::Reply(Value::Integer(i64::from(set))),
                    Err(e) => engine_err(e),
                }
            }
            _ => wrong_args(if name == "EXPIRE" { "expire" } else { "pexpire" }),
        },
        "TTL" | "PTTL" => match args {
            [key] => match engine.ttl_ms(key) {
                // TTL rounds the remaining time *up*: a key with 1 ms
                // left reports 1 s, never the "no expiry" -0.
                Ok(ms) if ms >= 0 && name == "TTL" => {
                    Outcome::Reply(Value::Integer((ms + 999) / 1000))
                }
                Ok(ms) => Outcome::Reply(Value::Integer(ms)),
                Err(e) => err(e.to_string()),
            },
            _ => wrong_args(if name == "TTL" { "ttl" } else { "pttl" }),
        },
        "PERSIST" => match args {
            [key] => match engine.persist(key) {
                Ok(cleared) => Outcome::Reply(Value::Integer(i64::from(cleared))),
                Err(e) => engine_err(e),
            },
            _ => wrong_args("persist"),
        },
        "EXISTS" => match args {
            [] => wrong_args("exists"),
            [key] => match engine.exists(key) {
                Ok(present) => Outcome::Reply(Value::Integer(i64::from(present))),
                Err(e) => err(e.to_string()),
            },
            _ => {
                let keys: Vec<&[u8]> = args.iter().map(|a| a.as_slice()).collect();
                match engine.mexists(&keys) {
                    Ok(present) => Outcome::Reply(Value::Integer(present as i64)),
                    Err(e) => err(e.to_string()),
                }
            }
        },
        "SCAN" => {
            let (cursor, count) = match args {
                [cur] => (cur, DEFAULT_SCAN_COUNT),
                [cur, word, n] if word.eq_ignore_ascii_case(b"COUNT") => {
                    match std::str::from_utf8(n).ok().and_then(|s| s.parse::<usize>().ok()) {
                        Some(n) if n >= 1 => (cur, n.min(MAX_SCAN_COUNT)),
                        _ => return err("COUNT must be a positive integer"),
                    }
                }
                _ => return wrong_args("scan"),
            };
            let Some(cursor) =
                std::str::from_utf8(cursor).ok().and_then(|s| s.parse::<u64>().ok())
            else {
                return err("invalid cursor");
            };
            match engine.scan_keys(cursor, count) {
                Ok((next, keys)) => Outcome::Reply(Value::Array(vec![
                    Value::Bulk(next.to_string().into_bytes()),
                    Value::Array(keys.into_iter().map(Value::Bulk).collect()),
                ])),
                Err(e) => err(e.to_string()),
            }
        }
        // Test-only: enumerates the whole store in one reply. Only the
        // match-everything pattern is supported; use SCAN in production.
        "KEYS" => match args {
            [pat] if pat.as_slice() == b"*" => match engine.keys() {
                Ok(keys) => {
                    Outcome::Reply(Value::Array(keys.into_iter().map(Value::Bulk).collect()))
                }
                Err(e) => err(e.to_string()),
            },
            [_] => err("only the '*' pattern is supported"),
            _ => wrong_args("keys"),
        },
        "SNAPSHOT" => match args {
            [path] => match std::str::from_utf8(path) {
                Ok(path) => match engine.snapshot_to(std::path::Path::new(path)) {
                    Ok(count) => Outcome::Reply(Value::Integer(count as i64)),
                    Err(e) => err(e.to_string()),
                },
                Err(_) => err("snapshot path must be valid UTF-8"),
            },
            _ => wrong_args("snapshot"),
        },
        "DBSIZE" => match args {
            [] => {
                // Collapse due timers first so the count never includes
                // an expired-but-unreclaimed key. Only a primary may do
                // this (it publishes the DELs); a replica's count
                // converges through the primary's stream.
                if inner.role() == Role::Primary {
                    engine.expire_now();
                }
                Outcome::Reply(Value::Integer(engine.len() as i64))
            }
            _ => wrong_args("dbsize"),
        },
        // Every INFO form is O(shards) except `INFO keyspace`, which
        // pays an O(total keys) ground-truth scan — deliberately opt-in
        // so monitoring polls never scale with the data they watch.
        "INFO" => match args {
            [] => Outcome::Reply(Value::Bulk(info_text(inner).into_bytes())),
            [section] if section.eq_ignore_ascii_case(b"replication") => {
                Outcome::Reply(Value::Bulk(replication_info_text(inner).into_bytes()))
            }
            [section] if section.eq_ignore_ascii_case(b"stats") => {
                Outcome::Reply(Value::Bulk(stats_info_text(inner).into_bytes()))
            }
            [section] if section.eq_ignore_ascii_case(b"latency") => {
                Outcome::Reply(Value::Bulk(latency_info_text(inner).into_bytes()))
            }
            [section] if section.eq_ignore_ascii_case(b"keyspace") => {
                Outcome::Reply(Value::Bulk(keyspace_info_text(inner).into_bytes()))
            }
            [section] if section.eq_ignore_ascii_case(b"memory") => {
                Outcome::Reply(Value::Bulk(memory_info_text(inner).into_bytes()))
            }
            [_] => err(
                "unknown INFO section ('replication', 'stats', 'latency', 'memory' and 'keyspace' are supported)",
            ),
            _ => wrong_args("info"),
        },
        // The slow-command ring: `SLOWLOG GET [n]` (newest first),
        // `SLOWLOG LEN`, `SLOWLOG RESET`. Entries are arrays shaped like
        // Redis's: id, unix time, duration µs, [command, key prefix],
        // plus the serving worker id.
        "SLOWLOG" => match args {
            [sub] if sub.eq_ignore_ascii_case(b"LEN") => {
                Outcome::Reply(Value::Integer(inner.metrics.slowlog.len() as i64))
            }
            [sub] if sub.eq_ignore_ascii_case(b"RESET") => {
                inner.metrics.slowlog.reset();
                Outcome::Reply(Value::Simple("OK".into()))
            }
            [sub] | [sub, _] if sub.eq_ignore_ascii_case(b"GET") => {
                let n = match args {
                    [_, n] => match std::str::from_utf8(n).ok().and_then(|s| s.parse::<i64>().ok())
                    {
                        Some(-1) => usize::MAX,
                        Some(n) if n >= 0 => n as usize,
                        _ => return err("SLOWLOG GET count must be an integer >= -1"),
                    },
                    _ => 10,
                };
                let entries = inner
                    .metrics
                    .slowlog
                    .get(n)
                    .into_iter()
                    .map(|e| {
                        let mut fields = vec![
                            Value::Integer(e.id as i64),
                            Value::Integer(e.unix_secs as i64),
                            Value::Integer(e.duration_us as i64),
                            Value::Array(vec![
                                Value::Bulk(e.cmd.into_bytes()),
                                Value::Bulk(e.key.into_bytes()),
                            ]),
                            Value::Integer(e.worker as i64),
                        ];
                        // The sampled trace's stage breakdown, when the
                        // tracer captured the same request: 7 integers
                        // (ns) in `Stage::ALL` order.
                        if let Some(stages) = e.stages_ns {
                            fields.push(Value::Array(
                                stages.iter().map(|&ns| Value::Integer(ns as i64)).collect(),
                            ));
                        }
                        Value::Array(fields)
                    })
                    .collect();
                Outcome::Reply(Value::Array(entries))
            }
            _ => err("SLOWLOG subcommand must be GET [count], LEN or RESET"),
        },
        // The tracing control surface. `TRACE ON [SAMPLE n]` /
        // `TRACE OFF` gate the sampler; DUMP/GET read the flight
        // recorder; THRESHOLD tunes always-on slow capture; STATUS
        // reports the knobs; RESET clears the rings.
        "TRACE" => trace_command(inner, args),
        // One-shot trace propagation: capture the NEXT command under
        // this identity. `TRACEID 0 0` asks the server to assign a
        // fresh id (the reply), which is how a client starts a trace it
        // can later look up; nonzero ids arrive from cluster clients
        // re-sending after a redirect and from the PSYNC tail.
        "TRACEID" => match args {
            [id, hops] => {
                let (Some(id), Some(hops)) = (parse_int(id), parse_int(hops)) else {
                    return err("TRACEID arguments must be integers");
                };
                if id < 0 || hops < 0 {
                    return err("TRACEID arguments must be non-negative");
                }
                let id = if id == 0 { inner.tracer.alloc_id() } else { id as u64 };
                session.trace_force = Some((id, hops as u32));
                Outcome::Reply(Value::Integer(id as i64))
            }
            _ => wrong_args("traceid"),
        },
        // Replication handshake: REPLCONF carries replica metadata
        // (accepted and ignored — `listening-port` etc. are advisory);
        // PSYNC turns the connection into a replication stream.
        "REPLCONF" => Outcome::Reply(Value::Simple("OK".into())),
        "PSYNC" => {
            if inner.role() == Role::Replica {
                err("PSYNC on a replica (chained replication) is not supported")
            } else {
                Outcome::StartReplication
            }
        }
        "REPLICAOF" => match args {
            [host, port]
                if host.eq_ignore_ascii_case(b"NO") && port.eq_ignore_ascii_case(b"ONE") =>
            {
                // Promote: stop and join the sync loop, then accept
                // writes. +OK is sent only once the fence is complete.
                inner.promote();
                Outcome::Reply(Value::Simple("OK".into()))
            }
            [_, _] => err("attaching to a primary at runtime is not supported; start with --replica-of"),
            _ => wrong_args("replicaof"),
        },
        // Cluster commands exist (as errors) outside cluster mode too,
        // so misdirected clients get a clear diagnosis instead of
        // "unknown command".
        "CLUSTER" | "ASKING" => err("this server was not started in cluster mode"),
        "SHUTDOWN" => Outcome::Shutdown,
        // Test-only: panics inside the command handler, to prove a
        // connection panic is caught, counted, and costs only that
        // connection (not the worker or its other connections).
        #[cfg(test)]
        "PANICTEST" => panic!("PANICTEST: injected command-handler panic"),
        _ => err(format!("unknown command '{}'", String::from_utf8_lossy(&parts[0]))),
    }
}

/// Dispatch the `TRACE` subcommands against [`Inner::tracer`].
fn trace_command(inner: &Inner, args: &[Vec<u8>]) -> Outcome {
    let t = &inner.tracer;
    match args {
        [sub] if sub.eq_ignore_ascii_case(b"ON") => {
            t.set_enabled(true);
            Outcome::Reply(Value::Simple("OK".into()))
        }
        [sub, word, n]
            if sub.eq_ignore_ascii_case(b"ON") && word.eq_ignore_ascii_case(b"SAMPLE") =>
        {
            match parse_int(n) {
                Some(n) if n >= 0 => {
                    t.set_sample_every(n as u64);
                    t.set_enabled(true);
                    Outcome::Reply(Value::Simple("OK".into()))
                }
                _ => err("SAMPLE must be a non-negative integer (0 disables the sampler)"),
            }
        }
        [sub] if sub.eq_ignore_ascii_case(b"OFF") => {
            t.set_enabled(false);
            Outcome::Reply(Value::Simple("OK".into()))
        }
        [sub] | [sub, _] if sub.eq_ignore_ascii_case(b"DUMP") => {
            let n = match args {
                [_, n] => match parse_int(n) {
                    Some(n) if n >= 1 => n as usize,
                    _ => return err("TRACE DUMP count must be a positive integer"),
                },
                _ => usize::MAX,
            };
            Outcome::Reply(Value::Array(t.dump(n).iter().map(trace_record_value).collect()))
        }
        [sub, id] if sub.eq_ignore_ascii_case(b"GET") => match parse_int(id) {
            Some(id) if id >= 1 => Outcome::Reply(Value::Array(
                t.get(id as u64).iter().map(trace_record_value).collect(),
            )),
            _ => err("TRACE GET id must be a positive integer"),
        },
        [sub, us] if sub.eq_ignore_ascii_case(b"THRESHOLD") => match parse_int(us) {
            Some(us) if us >= 0 => {
                t.set_threshold_us(us as u64);
                Outcome::Reply(Value::Simple("OK".into()))
            }
            _ => err("THRESHOLD must be microseconds >= 0 (0 disables threshold capture)"),
        },
        [sub] if sub.eq_ignore_ascii_case(b"RESET") => {
            t.reset();
            Outcome::Reply(Value::Simple("OK".into()))
        }
        [sub] if sub.eq_ignore_ascii_case(b"STATUS") => {
            let pairs: [(&str, i64); 6] = [
                ("enabled", i64::from(t.enabled())),
                ("sample_every", t.sample_every() as i64),
                ("threshold_us", t.threshold_us() as i64),
                ("captured", t.captured_total() as i64),
                ("abandoned", t.abandoned_total() as i64),
                ("retained", t.len() as i64),
            ];
            Outcome::Reply(Value::Array(
                pairs
                    .iter()
                    .flat_map(|(k, v)| [Value::bulk(k.as_bytes()), Value::Integer(*v)])
                    .collect(),
            ))
        }
        _ => err(
            "TRACE subcommand must be ON [SAMPLE n], OFF, DUMP [n], GET <id>, THRESHOLD <us>, STATUS or RESET",
        ),
    }
}

/// One flight-recorder span on the wire: a flat array alternating
/// field-name / value, so clients need no fixed-position schema.
/// Durations are nanoseconds (sub-µs stages must survive rounding for
/// the stage-sum ≈ total invariant to be checkable from a dump).
fn trace_record_value(r: &crate::trace::TraceRecord) -> Value {
    let mut fields: Vec<Value> = Vec::with_capacity(2 * (9 + crate::trace::Stage::COUNT));
    let mut push = |name: &str, v: Value| {
        fields.push(Value::bulk(name.as_bytes()));
        fields.push(v);
    };
    push("id", Value::Integer(r.id as i64));
    push("origin", Value::Integer(r.origin as i64));
    push("hops", Value::Integer(i64::from(r.hops)));
    push("unix_ms", Value::Integer(r.unix_ms as i64));
    push("cmd", Value::bulk(r.cmd.as_bytes()));
    push("key", Value::bulk(r.key.as_bytes()));
    push("worker", Value::Integer(r.worker as i64));
    push("reason", Value::bulk(r.reason.name().as_bytes()));
    push("total_ns", Value::Integer(r.total_ns as i64));
    for stage in crate::trace::Stage::ALL {
        push(
            &format!("{}_ns", stage.name()),
            Value::Integer(r.stages_ns[stage.index()] as i64),
        );
    }
    Value::Array(fields)
}

/// Serve one replica over an accepted connection (the `PSYNC` handoff):
/// subscribe to the op stream *first* (pinning the offset cut), then
/// stream an online snapshot as `+FULLRESYNC <offset>` plus one bulk
/// string, then forward the live tail as `SET`/`DEL` commands, with a
/// `PING` every ~2 s of idleness as a liveness signal.
pub(crate) fn serve_replica_stream(mut stream: TcpStream, inner: &Inner) -> std::io::Result<()> {
    let sub = inner.engine.repl_subscribe();
    let snap = match inner.engine.snapshot_bytes() {
        Ok((bytes, _records)) => bytes,
        Err(e) => {
            let mut wbuf = Vec::new();
            encode(&Value::Error(format!("ERR {e}")), &mut wbuf);
            stream.write_all(&wbuf)?;
            return Ok(());
        }
    };
    // The snapshot is written directly — copying it into a reply
    // buffer would double peak memory per attaching replica.
    let mut wbuf =
        format!("+FULLRESYNC {}\r\n${}\r\n", sub.start_offset, snap.len()).into_bytes();
    stream.write_all(&wbuf)?;
    stream.write_all(&snap)?;
    stream.write_all(b"\r\n")?;
    drop(snap);
    let mut idle_polls = 0u32;
    loop {
        if inner.shutdown.load(Ordering::SeqCst) {
            return Ok(());
        }
        match sub.recv_timeout(Duration::from_millis(100)) {
            Ok(op) => {
                wbuf.clear();
                encode_traced_op(&op, &mut wbuf);
                // Drain whatever else is queued into the same write —
                // the stream-side analogue of pipelining — but bound
                // the burst so one write_all stays shippable.
                while wbuf.len() < 4 << 20 {
                    match sub.try_recv() {
                        Ok(more) => encode_traced_op(&more, &mut wbuf),
                        Err(_) => break,
                    }
                }
                stream.write_all(&wbuf)?;
                idle_polls = 0;
            }
            Err(std::sync::mpsc::RecvTimeoutError::Timeout) => {
                idle_polls += 1;
                if idle_polls >= 20 {
                    // Not an op (PINGs don't advance the offset on
                    // either side) — just proof of life, and the way a
                    // dead replica connection is detected while idle.
                    stream.write_all(b"*1\r\n$4\r\nPING\r\n")?;
                    idle_polls = 0;
                }
            }
            // The hub dropped this sink as too slow: close the stream
            // so the replica reconnects and runs a fresh full sync.
            Err(std::sync::mpsc::RecvTimeoutError::Disconnected) => return Ok(()),
        }
    }
}

/// One fan-out item on the wire. An op produced under a trace span is
/// preceded by `TRACEID <id> 0` — the same one-shot propagation command
/// clients use — so the replica captures its apply under the primary's
/// span id and `TRACE GET <id>` on either server finds both halves.
fn encode_traced_op(top: &crate::repl::hub::TracedOp, out: &mut Vec<u8>) {
    if top.trace_id != 0 {
        encode_command(&[b"TRACEID", top.trace_id.to_string().as_bytes(), b"0"], out);
    }
    encode_op(&top.op, out);
}

/// The wire form of one replicated op: exactly the client command that
/// would have produced it, so the replica applies the stream with the
/// same decoder the server uses for clients.
fn encode_op(op: &ReplOp, out: &mut Vec<u8>) {
    match op {
        ReplOp::Set { key, value } => encode_command(&[b"SET", key, value], out),
        // Always the absolute-deadline spelling: the replica applies the
        // primary's clock, never its own.
        ReplOp::SetEx { key, value, expire_at_ms } => {
            encode_command(&[b"SET", key, value, b"PXAT", expire_at_ms.to_string().as_bytes()], out)
        }
        ReplOp::Del { key } => encode_command(&[b"DEL", key], out),
    }
}

/// The default INFO payload: the server section, replication, stats,
/// latency, and one line per shard with its recovery provenance.
///
/// Everything here is **O(shards)**: per-shard key counts come from the
/// engine's counters, never a scan, so monitoring can poll INFO at any
/// frequency without the cost scaling with the data. The ground-truth
/// `scan_len` lives in the opt-in `INFO keyspace` section.
fn info_text(inner: &Inner) -> String {
    let engine = &inner.engine;
    let infos = engine.shard_infos();
    let keys = engine.shard_keys();
    let mut out = String::new();
    out.push_str("# dash-server\r\n");
    out.push_str(&format!("shards:{}\r\n", engine.shard_count()));
    out.push_str(&format!("keys:{}\r\n", engine.len()));
    out.push_str(&format!("recovered_shards:{}\r\n", engine.recovered_shards()));
    out.push_str(&format!("event_workers:{}\r\n", inner.event_workers));
    out.push_str(&replication_info_text(inner));
    out.push_str(&stats_info_text(inner));
    out.push_str(&memory_info_text(inner));
    out.push_str(&latency_info_text(inner));
    out.push_str("# shards\r\n");
    for (i, (info, n)) in infos.iter().zip(&keys).enumerate() {
        out.push_str(&format!(
            "shard{i}:keys={n},recovered={},clean={},version={}\r\n",
            u8::from(info.recovered),
            u8::from(info.clean),
            info.version,
        ));
    }
    out
}

/// The stats section (`INFO stats`): the event core's health counters
/// and the engine's aggregate instrumentation. O(shards), no scans.
fn stats_info_text(inner: &Inner) -> String {
    let m = &inner.metrics;
    let shards = inner.engine.shard_telemetry();
    let sum = |f: fn(&crate::engine::ShardTelemetry) -> u64| shards.iter().map(f).sum::<u64>();
    let blob_net: i64 =
        shards.iter().map(|t| t.blob_bytes_written as i64 - t.blob_bytes_released as i64).sum();
    let mut out = String::new();
    out.push_str("# stats\r\n");
    out.push_str(&format!("connections_accepted:{}\r\n", m.connections_accepted.get()));
    out.push_str(&format!("commands_served:{}\r\n", m.commands_served.get()));
    out.push_str(&format!("active_connections:{}\r\n", m.active_connections.get()));
    out.push_str(&format!("accept_errors:{}\r\n", m.accept_errors.get()));
    out.push_str(&format!("worker_panics:{}\r\n", m.worker_panics.get()));
    out.push_str(&format!("slowlog_len:{}\r\n", m.slowlog.len()));
    out.push_str(&format!("slowlog_threshold_us:{}\r\n", m.slowlog.threshold_us()));
    out.push_str(&format!("trace_enabled:{}\r\n", u8::from(inner.tracer.enabled())));
    out.push_str(&format!("trace_sample_every:{}\r\n", inner.tracer.sample_every()));
    out.push_str(&format!("traces_captured:{}\r\n", inner.tracer.captured_total()));
    out.push_str(&format!("traces_abandoned:{}\r\n", inner.tracer.abandoned_total()));
    out.push_str(&format!("epoch_pins:{}\r\n", sum(|t| t.epoch_pins)));
    out.push_str(&format!("write_lock_waits:{}\r\n", sum(|t| t.write_lock_waits)));
    out.push_str(&format!("eh_splits:{}\r\n", sum(|t| t.eh_splits)));
    out.push_str(&format!("eh_doublings:{}\r\n", sum(|t| t.eh_doublings)));
    out.push_str(&format!("eh_merges:{}\r\n", sum(|t| t.eh_merges)));
    out.push_str(&format!("blob_bytes_net:{blob_net}\r\n"));
    out.push_str(&format!("expired_keys:{}\r\n", inner.engine.expired_keys_total()));
    out.push_str(&format!("evicted_keys:{}\r\n", inner.engine.evicted_keys_total()));
    out.push_str(&format!("oom_rejections:{}\r\n", inner.engine.oom_rejections_total()));
    out.push_str(&format!("compactions:{}\r\n", inner.engine.compactions_total()));
    out.push_str(&format!("reclaimed_bytes:{}\r\n", inner.engine.reclaimed_bytes_total()));
    out.push_str(&format!("repl_reconnects:{}\r\n", m.repl_reconnects.get()));
    for (id, lag) in inner.engine.replica_lags() {
        out.push_str(&format!("replica_sink{id}:lag_ops={lag}\r\n"));
    }
    out
}

/// The latency section (`INFO latency`): per command family, the
/// observation count and the p50/p99/p999 quantiles in microseconds
/// (bucket upper bounds — see the histogram docs for the ~41% bound on
/// quantization error). Families with no observations report count 0
/// and no quantile lines.
fn latency_info_text(inner: &Inner) -> String {
    let mut out = String::new();
    out.push_str("# latency\r\n");
    let mut all = crate::metrics::HistSnapshot::default();
    for fam in CmdFamily::ALL {
        let snap = inner.metrics.cmd_snapshot(fam);
        let name = fam.name();
        out.push_str(&format!("cmd_{name}_count:{}\r\n", snap.count()));
        if snap.count() > 0 {
            for (label, q) in [("p50", 0.5), ("p99", 0.99), ("p999", 0.999)] {
                if let Some(ns) = snap.quantile_ns(q) {
                    out.push_str(&format!("cmd_{name}_{label}_us:{}\r\n", ns.div_ceil(1_000)));
                }
            }
        }
        all.merge(&snap);
    }
    // The merged row: one latency profile over every executed command.
    out.push_str(&format!("cmd_all_count:{}\r\n", all.count()));
    if all.count() > 0 {
        for (label, q) in [("p50", 0.5), ("p99", 0.99), ("p999", 0.999)] {
            if let Some(ns) = all.quantile_ns(q) {
                out.push_str(&format!("cmd_all_{label}_us:{}\r\n", ns.div_ceil(1_000)));
            }
        }
    }
    out
}

/// The memory section (`INFO memory`): the eviction budget and policy,
/// live vs dead value-log bytes (the fragmentation signal reclamation
/// acts on), and the per-shard breakdown. O(shards), no scans.
fn memory_info_text(inner: &Inner) -> String {
    let engine = &inner.engine;
    let mut out = String::new();
    out.push_str("# memory\r\n");
    out.push_str(&format!("maxmemory:{}\r\n", engine.max_memory().unwrap_or(0)));
    out.push_str(&format!("maxmemory_policy:{}\r\n", engine.eviction_policy().name()));
    out.push_str(&format!("mem_used_bytes:{}\r\n", engine.mem_used()));
    out.push_str(&format!("dead_bytes:{}\r\n", engine.dead_bytes()));
    out.push_str(&format!("expire_wheel_entries:{}\r\n", engine.wheel_entries()));
    for (i, t) in engine.shard_telemetry().iter().enumerate() {
        out.push_str(&format!(
            "shard{i}:mem_used={},dead={}\r\n",
            t.mem_used_bytes, t.dead_bytes
        ));
    }
    out
}

/// The keyspace section (`INFO keyspace`): the O(shards) counter next
/// to its **ground truth by full scan** — persistent disagreement on a
/// quiescent server means counter drift (momentary disagreement under
/// live writers is expected). O(total keys): the one INFO section whose
/// cost scales with the data, which is why it is opt-in.
fn keyspace_info_text(inner: &Inner) -> String {
    let engine = &inner.engine;
    let mut out = String::new();
    out.push_str("# keyspace\r\n");
    out.push_str(&format!("keys:{}\r\n", engine.len()));
    out.push_str(&format!("scan_len:{}\r\n", engine.scan_len()));
    for (i, n) in engine.shard_keys().iter().enumerate() {
        out.push_str(&format!("shard{i}_keys:{n}\r\n"));
    }
    out
}

/// The replication lines of INFO, also served standalone as
/// `INFO replication` (cheap — no key counts, no scans): the role, the
/// stream position (primary: ops published since store creation;
/// replica: primary-numbered offset applied), and the live replica
/// streams. Offset equality between a primary and its quiesced replica
/// means the replica holds every acknowledged write — the precondition
/// the failover drill checks before killing the primary.
fn replication_info_text(inner: &Inner) -> String {
    let engine = &inner.engine;
    let role = inner.role();
    let mut out = String::new();
    out.push_str("# replication\r\n");
    out.push_str(&format!(
        "role:{}\r\n",
        match role {
            Role::Primary => "primary",
            Role::Replica => "replica",
        }
    ));
    let repl_offset = match role {
        Role::Primary => engine.repl_offset(),
        Role::Replica => inner.applied_offset.load(Ordering::SeqCst),
    };
    out.push_str(&format!("repl_offset:{repl_offset}\r\n"));
    out.push_str(&format!("connected_replicas:{}\r\n", engine.connected_replicas()));
    out.push_str(&format!("log_append_errors:{}\r\n", engine.log_append_errors()));
    // Total bytes across the per-shard redo logs — what --replay-logs
    // would read, and the number capacity planning wants to watch.
    out.push_str(&format!("repl_log_bytes:{}\r\n", engine.repl_log_bytes()));
    if role == Role::Replica {
        if let Some(master) = &inner.master_addr {
            out.push_str(&format!("master_addr:{master}\r\n"));
        }
        out.push_str(&format!(
            "master_link:{}\r\n",
            if inner.link_up.load(Ordering::SeqCst) { "up" } else { "down" }
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::RespClient;
    use crate::engine::EngineConfig;
    use std::io::Read;

    fn mem_server() -> ServerHandle {
        let engine = ShardedDash::open(&EngineConfig {
            shards: 2,
            shard_bytes: 16 << 20,
            dir: None,
            ..EngineConfig::default()
        })
        .unwrap();
        serve(engine, "127.0.0.1:0").unwrap()
    }

    #[test]
    fn command_surface_end_to_end() {
        let server = mem_server();
        let mut c = RespClient::connect(server.addr()).unwrap();
        assert_eq!(c.command(&[b"PING"]).unwrap(), Value::Simple("PONG".into()));
        assert_eq!(c.command(&[b"PING", b"hey"]).unwrap(), Value::bulk(*b"hey"));
        assert_eq!(c.command(&[b"GET", b"nope"]).unwrap(), Value::Nil);
        assert_eq!(c.command(&[b"SET", b"a", b"1"]).unwrap(), Value::Simple("OK".into()));
        assert_eq!(c.command(&[b"GET", b"a"]).unwrap(), Value::bulk(*b"1"));
        assert_eq!(c.command(&[b"EXISTS", b"a", b"nope", b"a"]).unwrap(), Value::Integer(2));
        assert_eq!(c.command(&[b"DBSIZE"]).unwrap(), Value::Integer(1));
        assert_eq!(c.command(&[b"DEL", b"a", b"nope"]).unwrap(), Value::Integer(1));
        assert_eq!(c.command(&[b"DBSIZE"]).unwrap(), Value::Integer(0));
        let Value::Bulk(info) = c.command(&[b"INFO"]).unwrap() else {
            panic!("INFO must return a bulk string");
        };
        let info = String::from_utf8(info).unwrap();
        assert!(info.contains("shards:2"), "{info}");
        assert!(info.contains("recovered_shards:0"), "{info}");
        // The event core's health counters: nothing failed or panicked
        // while this test drove the whole command surface.
        assert!(info.contains("worker_panics:0"), "{info}");
        assert!(info.contains("accept_errors:0"), "{info}");
        assert!(info.contains("active_connections:1"), "{info}");
        server.shutdown();
    }

    #[test]
    fn multi_key_commands_end_to_end() {
        let server = mem_server();
        let mut c = RespClient::connect(server.addr()).unwrap();
        c.mset(&[(b"a", b"1"), (b"b", b"2"), (b"c", b"3")]).unwrap();
        assert_eq!(
            c.mget(&[b"a", b"missing", b"c", b"a"]).unwrap(),
            vec![Some(b"1".to_vec()), None, Some(b"3".to_vec()), Some(b"1".to_vec())],
            "MGET must preserve key order and report absences as Nil"
        );
        assert_eq!(c.exists(&[b"a", b"b", b"missing", b"a"]).unwrap(), 3);
        // Single-key DEL/EXISTS take the non-batch fast path — same
        // observable semantics.
        assert_eq!(c.exists(&[b"b"]).unwrap(), 1);
        assert_eq!(c.del(&[b"b"]).unwrap(), 1);
        assert_eq!(c.exists(&[b"b"]).unwrap(), 0);
        assert_eq!(c.command(&[b"SET", b"b", b"2"]).unwrap(), Value::Simple("OK".into()));
        assert_eq!(c.del(&[b"a", b"missing", b"c"]).unwrap(), 2);
        assert_eq!(c.command(&[b"DBSIZE"]).unwrap(), Value::Integer(1));
        // Arity errors are replies, not disconnects.
        let Value::Error(e) = c.command(&[b"MSET", b"odd", b"pair", b"dangling"]).unwrap() else {
            panic!("odd MSET arity must produce an error reply");
        };
        assert!(e.contains("wrong number of arguments"), "{e}");
        let Value::Error(e) = c.command(&[b"MGET"]).unwrap() else {
            panic!("empty MGET must produce an error reply");
        };
        assert!(e.contains("wrong number of arguments"), "{e}");
        assert_eq!(c.command(&[b"PING"]).unwrap(), Value::Simple("PONG".into()));
        server.shutdown();
    }

    #[test]
    fn pipelined_batch_gets_replies_in_order() {
        let server = mem_server();
        let mut c = RespClient::connect(server.addr()).unwrap();
        for i in 0..100u32 {
            c.enqueue(&[b"SET", format!("k{i}").as_bytes(), format!("v{i}").as_bytes()]);
        }
        for i in 0..100u32 {
            c.enqueue(&[b"GET", format!("k{i}").as_bytes()]);
        }
        c.flush().unwrap();
        for _ in 0..100 {
            assert_eq!(c.read_reply().unwrap(), Value::Simple("OK".into()));
        }
        for i in 0..100u32 {
            assert_eq!(c.read_reply().unwrap(), Value::bulk(format!("v{i}").into_bytes()));
        }
        server.shutdown();
    }

    #[test]
    fn errors_are_replies_not_disconnects() {
        let server = mem_server();
        let mut c = RespClient::connect(server.addr()).unwrap();
        let Value::Error(e) = c.command(&[b"NOSUCH", b"x"]).unwrap() else {
            panic!("unknown command must produce an error reply");
        };
        assert!(e.contains("unknown command"), "{e}");
        let Value::Error(e) = c.command(&[b"SET", b"only-key"]).unwrap() else {
            panic!("arity error must produce an error reply");
        };
        assert!(e.contains("wrong number of arguments"), "{e}");
        // The connection is still healthy afterwards.
        assert_eq!(c.command(&[b"PING"]).unwrap(), Value::Simple("PONG".into()));
        server.shutdown();
    }

    #[test]
    fn protocol_error_closes_connection() {
        let server = mem_server();
        let mut s = TcpStream::connect(server.addr()).unwrap();
        s.write_all(b"GET inline\r\n").unwrap();
        let mut reply = Vec::new();
        s.read_to_end(&mut reply).unwrap(); // server replies then hangs up
        let text = String::from_utf8_lossy(&reply);
        assert!(text.starts_with("-ERR"), "{text}");
        assert!(text.contains("inline"), "{text}");
        server.shutdown();
    }

    #[test]
    fn concurrent_clients() {
        let server = mem_server();
        let addr = server.addr();
        std::thread::scope(|scope| {
            for t in 0..4u32 {
                scope.spawn(move || {
                    let mut c = RespClient::connect(addr).unwrap();
                    for i in 0..200u32 {
                        let key = format!("c{t}-{i}");
                        assert_eq!(
                            c.command(&[b"SET", key.as_bytes(), key.as_bytes()]).unwrap(),
                            Value::Simple("OK".into())
                        );
                        assert_eq!(
                            c.command(&[b"GET", key.as_bytes()]).unwrap(),
                            Value::bulk(key.into_bytes())
                        );
                    }
                });
            }
        });
        let mut c = RespClient::connect(addr).unwrap();
        assert_eq!(c.command(&[b"DBSIZE"]).unwrap(), Value::Integer(800));
        assert_eq!(c.info_field("worker_panics").unwrap().as_deref(), Some("0"));
        server.shutdown();
    }

    /// A panic inside one connection's command handler costs that
    /// connection only: it is caught, counted in `worker_panics`, and
    /// the worker keeps serving its other connections.
    #[test]
    fn handler_panic_is_caught_counted_and_isolated() {
        // One worker, so the survivor provably shares its event loop
        // with the panicking connection.
        let engine =
            ShardedDash::open(&EngineConfig { shards: 2, shard_bytes: 16 << 20, dir: None, ..EngineConfig::default() })
                .unwrap();
        let server = serve_with(
            engine,
            "127.0.0.1:0",
            ServeOptions { event_workers: Some(1), ..Default::default() },
        )
        .unwrap();
        let mut survivor = RespClient::connect(server.addr()).unwrap();
        assert_eq!(survivor.command(&[b"SET", b"k", b"v"]).unwrap(), Value::Simple("OK".into()));

        let mut victim = TcpStream::connect(server.addr()).unwrap();
        let mut buf = Vec::new();
        encode_command(&[b"PANICTEST"], &mut buf);
        victim.write_all(&buf).unwrap();
        // The handler panics before any reply: the connection is
        // dropped, observed here as EOF (not a hang, not a server loss).
        let mut got = Vec::new();
        victim.read_to_end(&mut got).unwrap();
        assert!(got.is_empty(), "panicked handler must not send a reply: {got:?}");

        // The worker survived: its other connection is still served.
        assert_eq!(survivor.command(&[b"GET", b"k"]).unwrap(), Value::bulk(*b"v"));
        assert_eq!(survivor.info_field("worker_panics").unwrap().as_deref(), Some("1"));
        server.shutdown();
    }

    #[test]
    fn shutdown_command_stops_the_server() {
        let server = mem_server();
        let addr = server.addr();
        let mut c = RespClient::connect(addr).unwrap();
        assert_eq!(c.command(&[b"SHUTDOWN"]).unwrap(), Value::Simple("OK".into()));
        // The accept thread exits; join via the handle must not hang.
        server.shutdown();
        // New connections are refused (or reset) once the listener died.
        std::thread::sleep(Duration::from_millis(50));
        let mut failed = false;
        for _ in 0..20 {
            match TcpStream::connect(addr) {
                Err(_) => {
                    failed = true;
                    break;
                }
                Ok(_) => std::thread::sleep(Duration::from_millis(50)),
            }
        }
        assert!(failed, "listener must stop accepting after SHUTDOWN");
    }
}
