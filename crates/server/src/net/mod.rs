//! The event-driven server core: epoll readiness loops instead of a
//! thread per connection.
//!
//! Layout:
//!
//! * [`sys`] — safe wrappers over the vendored `libc` shim: `epoll`,
//!   `eventfd`, and the `RLIMIT_NOFILE` helpers (public, because the
//!   load generator and the soak tests raise their own fd limits).
//! * [`conn`](self) — the per-connection nonblocking state machine:
//!   incremental RESP decode, pipelined execution, write backpressure.
//! * [`event_loop`](self) — the fixed worker pool; each worker owns an
//!   epoll and the connections assigned to it.
//! * [`accept`](self) — the accept loop: nonblocking listener + wakeup
//!   eventfd on an epoll of its own, EMFILE backoff, and the
//!   shutdown-announcement drain.
//!
//! An idle server parks every thread in `epoll_wait` with no timeout:
//! zero periodic wakeups, where the previous architecture woke every
//! connection thread every 50 ms to poll for shutdown.

mod accept;
mod conn;
mod event_loop;
pub mod sys;

pub(crate) use accept::Acceptor;
pub(crate) use event_loop::spawn_worker;
pub(crate) use sys::EventFd;

pub use sys::{ensure_nofile_limit, nofile_limit, set_nofile_limit};
