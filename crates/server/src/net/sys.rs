//! Safe wrappers over the `libc` shim: `epoll`, `eventfd`, and the
//! `RLIMIT_NOFILE` helpers the high-connection paths need.
//!
//! Everything here is Linux-only, like the rest of the tree (the pmem
//! substrate already binds `mmap` directly). The wrappers own their
//! descriptors and close them on drop; errors surface as `io::Error`
//! from `errno` so callers keep the usual `ErrorKind` matching.

use std::io;
use std::os::unix::io::RawFd;

/// An owned epoll instance.
#[derive(Debug)]
pub struct Epoll {
    fd: RawFd,
}

/// One decoded readiness record: which registration (token) and what
/// kind of readiness. `error` folds EPOLLERR and EPOLLHUP together —
/// both mean "drive the connection and let the read/write fail".
#[derive(Debug, Clone, Copy)]
pub struct Event {
    pub token: u64,
    pub readable: bool,
    pub writable: bool,
    pub error: bool,
}

/// Interest set for a registration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interest {
    pub readable: bool,
    pub writable: bool,
}

impl Interest {
    pub const READ: Interest = Interest { readable: true, writable: false };
    pub const WRITE: Interest = Interest { readable: false, writable: true };

    fn bits(self) -> u32 {
        let mut bits = libc::EPOLLRDHUP;
        if self.readable {
            bits |= libc::EPOLLIN;
        }
        if self.writable {
            bits |= libc::EPOLLOUT;
        }
        bits
    }
}

impl Epoll {
    pub fn new() -> io::Result<Epoll> {
        let fd = unsafe { libc::epoll_create1(libc::EPOLL_CLOEXEC) };
        if fd < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(Epoll { fd })
    }

    fn ctl(&self, op: libc::c_int, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        let mut ev = libc::epoll_event { events: interest.bits(), u64: token };
        let rc = unsafe { libc::epoll_ctl(self.fd, op, fd, &mut ev) };
        if rc < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(())
    }

    pub fn add(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        self.ctl(libc::EPOLL_CTL_ADD, fd, token, interest)
    }

    pub fn modify(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        self.ctl(libc::EPOLL_CTL_MOD, fd, token, interest)
    }

    pub fn del(&self, fd: RawFd) -> io::Result<()> {
        // The event argument is ignored for DEL (must merely be non-null
        // on pre-2.6.9 kernels — keep it non-null anyway).
        self.ctl(libc::EPOLL_CTL_DEL, fd, 0, Interest { readable: false, writable: false })
    }

    /// Wait for readiness, `timeout_ms < 0` = block indefinitely.
    /// Retries `EINTR` internally; appends decoded events to `out`.
    pub fn wait(&self, out: &mut Vec<Event>, timeout_ms: i32) -> io::Result<()> {
        const CAP: usize = 256;
        let mut buf = [libc::epoll_event { events: 0, u64: 0 }; CAP];
        let n = loop {
            let n = unsafe { libc::epoll_wait(self.fd, buf.as_mut_ptr(), CAP as i32, timeout_ms) };
            if n >= 0 {
                break n as usize;
            }
            let e = io::Error::last_os_error();
            if e.kind() != io::ErrorKind::Interrupted {
                return Err(e);
            }
        };
        for ev in &buf[..n] {
            // Copy out of the (possibly packed) struct before use.
            let bits = { ev.events };
            out.push(Event {
                token: { ev.u64 },
                readable: bits & (libc::EPOLLIN | libc::EPOLLRDHUP) != 0,
                writable: bits & libc::EPOLLOUT != 0,
                error: bits & (libc::EPOLLERR | libc::EPOLLHUP) != 0,
            });
        }
        Ok(())
    }
}

impl Drop for Epoll {
    fn drop(&mut self) {
        unsafe { libc::close(self.fd) };
    }
}

/// An owned eventfd used as a cross-thread wakeup: any thread may
/// [`EventFd::wake`]; the owning event loop registers it for `EPOLLIN`
/// and [`EventFd::drain`]s it when it fires. Nonblocking on both ends.
#[derive(Debug)]
pub struct EventFd {
    fd: RawFd,
}

impl EventFd {
    pub fn new() -> io::Result<EventFd> {
        let fd = unsafe { libc::eventfd(0, libc::EFD_CLOEXEC | libc::EFD_NONBLOCK) };
        if fd < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(EventFd { fd })
    }

    pub fn raw(&self) -> RawFd {
        self.fd
    }

    /// Post a wakeup. Infallible by construction: the only way an
    /// eventfd write fails (besides EBADF) is counter overflow, which
    /// still leaves the descriptor readable — the wakeup is delivered
    /// either way.
    pub fn wake(&self) {
        let one: u64 = 1;
        unsafe { libc::write(self.fd, (&one as *const u64).cast(), 8) };
    }

    /// Consume pending wakeups so the next `epoll_wait` sleeps.
    pub fn drain(&self) {
        let mut counter: u64 = 0;
        unsafe { libc::read(self.fd, (&mut counter as *mut u64).cast(), 8) };
    }
}

impl Drop for EventFd {
    fn drop(&mut self) {
        unsafe { libc::close(self.fd) };
    }
}

/// `(soft, hard)` RLIMIT_NOFILE for this process.
pub fn nofile_limit() -> io::Result<(u64, u64)> {
    let mut lim = libc::rlimit { rlim_cur: 0, rlim_max: 0 };
    if unsafe { libc::getrlimit(libc::RLIMIT_NOFILE, &mut lim) } < 0 {
        return Err(io::Error::last_os_error());
    }
    Ok((lim.rlim_cur, lim.rlim_max))
}

/// Set RLIMIT_NOFILE to `(soft, hard)` — test support for the EMFILE
/// regression coverage, and the backing call for [`ensure_nofile_limit`].
pub fn set_nofile_limit(soft: u64, hard: u64) -> io::Result<()> {
    let lim = libc::rlimit { rlim_cur: soft, rlim_max: hard };
    if unsafe { libc::setrlimit(libc::RLIMIT_NOFILE, &lim) } < 0 {
        return Err(io::Error::last_os_error());
    }
    Ok(())
}

/// Raise the soft RLIMIT_NOFILE toward the hard limit until at least
/// `want` descriptors are allowed (a process may always raise soft up to
/// hard unprivileged). Returns the resulting soft limit; `Ok` even when
/// the hard limit caps it below `want` — the caller sees what it got.
pub fn ensure_nofile_limit(want: u64) -> io::Result<u64> {
    let (soft, hard) = nofile_limit()?;
    if soft >= want {
        return Ok(soft);
    }
    let target = want.min(hard);
    set_nofile_limit(target, hard)?;
    Ok(target)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;
    use std::net::{TcpListener, TcpStream};
    use std::os::unix::io::AsRawFd;

    #[test]
    fn epoll_reports_socket_readiness_by_token() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (server_side, _) = listener.accept().unwrap();
        server_side.set_nonblocking(true).unwrap();

        let ep = Epoll::new().unwrap();
        ep.add(server_side.as_raw_fd(), 7, Interest::READ).unwrap();

        let mut events = Vec::new();
        ep.wait(&mut events, 0).unwrap();
        assert!(events.is_empty(), "no bytes yet: {events:?}");

        (&client).write_all(b"x").unwrap();
        ep.wait(&mut events, 1000).unwrap();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].token, 7);
        assert!(events[0].readable);

        // Switching interest to write-only silences the pending read.
        ep.modify(
            server_side.as_raw_fd(),
            7,
            Interest { readable: false, writable: true },
        )
        .unwrap();
        events.clear();
        ep.wait(&mut events, 100).unwrap();
        assert_eq!(events.len(), 1);
        assert!(events[0].writable && !events[0].readable, "{:?}", events[0]);

        ep.del(server_side.as_raw_fd()).unwrap();
        events.clear();
        ep.wait(&mut events, 0).unwrap();
        assert!(events.is_empty());
    }

    #[test]
    fn eventfd_wake_crosses_threads_and_drains() {
        let ep = Epoll::new().unwrap();
        let ev = std::sync::Arc::new(EventFd::new().unwrap());
        ep.add(ev.raw(), 1, Interest::READ).unwrap();

        let poster = ev.clone();
        let t = std::thread::spawn(move || poster.wake());
        let mut events = Vec::new();
        ep.wait(&mut events, 2000).unwrap();
        t.join().unwrap();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].token, 1);

        ev.drain();
        events.clear();
        ep.wait(&mut events, 0).unwrap();
        assert!(events.is_empty(), "drained eventfd must go quiet");
    }

    #[test]
    fn nofile_limit_is_sane_and_raisable_to_itself() {
        let (soft, hard) = nofile_limit().unwrap();
        assert!(soft > 0 && hard >= soft);
        assert_eq!(ensure_nofile_limit(soft).unwrap(), soft);
    }
}
