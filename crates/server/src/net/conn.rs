//! The non-blocking connection state machine: one [`Conn`] per client,
//! driven by its event loop whenever epoll reports readiness.
//!
//! A readiness tick does bounded work — read what the socket has,
//! execute every complete pipelined command into the write buffer, and
//! write what the socket will take — and then parks the connection
//! again with exactly the epoll interest that can make further
//! progress. Two rules bound memory against a client that writes
//! commands faster than it reads replies (or never reads them at all):
//!
//! * **Write backpressure.** Once [`HIGH_WATER`] reply bytes are
//!   pending, the connection stops *executing* (and stops reading), and
//!   re-arms only for writability; decoding resumes as the kernel
//!   drains the buffer. Pending replies are therefore bounded by
//!   `HIGH_WATER` plus one command's reply.
//! * **Bounded read bursts.** At most [`MAX_READS_PER_EVENT`] chunks
//!   are read per tick; level-triggered epoll re-arms the rest, so one
//!   firehose connection cannot starve its loop-mates.
//!
//! The slow paths keep their blocking shape deliberately: `SHUTDOWN`'s
//! `+OK` and the `PSYNC` handoff flush with a bounded blocking write,
//! because both are once-per-connection events whose next act (server
//! teardown, replication streaming) is blocking anyway.

use std::io::{self, ErrorKind, Read, Write};
use std::net::TcpStream;
use std::os::unix::io::{AsRawFd, RawFd};
use std::time::Instant;

use crate::resp::{decode_command, encode, Decode, Value};
use crate::server::{execute, Inner, Outcome, Session, WRITE_TIMEOUT};

use super::sys::Interest;

/// Read chunk per `read` call.
const READ_CHUNK: usize = 64 * 1024;
/// Reads per readiness tick before yielding to other connections.
const MAX_READS_PER_EVENT: usize = 4;
/// Pending-reply bytes above which the connection stops executing
/// commands until the kernel drains the write side.
const HIGH_WATER: usize = 1 << 20;
/// Consumed-prefix size above which a partially written buffer is
/// compacted instead of growing.
const COMPACT_AT: usize = 1 << 20;

/// The error sent to a connection the shutdown path can no longer
/// serve, so clients can tell an orderly shutdown from a network fault.
pub(crate) const SHUTDOWN_ERR: &[u8] = b"-ERR server shutting down\r\n";

/// What the event loop should do with the connection after a tick.
#[derive(Debug)]
pub(crate) enum Drive {
    /// Keep it registered (interest may have changed).
    Continue,
    /// Deregister and drop it.
    Close,
    /// `PSYNC` accepted: hand the (flushed, re-blocked) socket to a
    /// dedicated replication-stream thread.
    Replicate,
}

/// Why the command-execution loop stopped.
enum Ran {
    /// Every complete command in the read buffer was executed.
    Drained,
    /// Stopped at [`HIGH_WATER`]; more complete commands may remain.
    Paused,
    /// `SHUTDOWN` executed (its `+OK` is in the write buffer).
    Shutdown,
    /// `PSYNC` accepted.
    Replicate,
}

pub(crate) struct Conn {
    stream: TcpStream,
    /// Id of the event-loop worker driving this connection (SLOWLOG
    /// entries carry it, so a hot worker is attributable).
    worker: u64,
    rbuf: Vec<u8>,
    consumed: usize,
    wbuf: Vec<u8>,
    wpos: usize,
    /// The interest currently registered with epoll (owned by the
    /// worker; stored here so a tick can tell whether it changed).
    pub(crate) registered: Interest,
    /// Protocol error replied: close once the write buffer drains.
    close_after_flush: bool,
    /// Client half-closed its write side; serve what's buffered, then
    /// close once replies are flushed.
    peer_eof: bool,
    /// Per-connection dispatch state (the cluster `ASKING` flag).
    session: Session,
}

impl Conn {
    /// Wrap an accepted stream (already nonblocking + nodelay).
    pub(crate) fn new(stream: TcpStream, worker: u64) -> Conn {
        Conn {
            stream,
            worker,
            rbuf: Vec::with_capacity(READ_CHUNK),
            consumed: 0,
            wbuf: Vec::new(),
            wpos: 0,
            registered: Interest::READ,
            close_after_flush: false,
            peer_eof: false,
            session: Session::default(),
        }
    }

    pub(crate) fn fd(&self) -> RawFd {
        self.stream.as_raw_fd()
    }

    /// Reply bytes not yet written to the socket.
    fn pending(&self) -> usize {
        self.wbuf.len() - self.wpos
    }

    /// The epoll interest that can make progress right now.
    pub(crate) fn desired_interest(&self) -> Interest {
        Interest {
            readable: !self.close_after_flush && !self.peer_eof && self.pending() < HIGH_WATER,
            writable: self.pending() > 0,
        }
    }

    /// One readiness tick. `Err` means the connection is broken and
    /// should be dropped (the thread-per-connection model's behavior).
    pub(crate) fn on_ready(
        &mut self,
        readable: bool,
        writable: bool,
        inner: &Inner,
    ) -> io::Result<Drive> {
        if writable {
            self.flush_some()?;
        }
        if readable && !self.close_after_flush && !self.peer_eof && self.pending() < HIGH_WATER {
            self.read_burst()?;
        }
        // Execute + flush until neither can progress: a tick that
        // drains the write buffer below HIGH_WATER resumes executing
        // commands that backpressure had parked in the read buffer.
        loop {
            match self.run_commands(inner) {
                Ran::Shutdown => {
                    // Deliver the +OK before the listener dies; then the
                    // whole server winds down, so blocking (bounded by
                    // the write timeout) costs nothing.
                    let _ = self.flush_blocking();
                    inner.begin_shutdown();
                    return Ok(Drive::Close);
                }
                Ran::Replicate => {
                    // Flush pipelined replies ahead of the handoff; a
                    // failure here closes instead of streaming to a
                    // replica that already lost its socket.
                    self.flush_blocking()?;
                    return Ok(Drive::Replicate);
                }
                Ran::Drained => {
                    self.flush_some()?;
                    break;
                }
                Ran::Paused => {
                    self.flush_some()?;
                    if self.pending() >= HIGH_WATER {
                        break; // clogged: wait for EPOLLOUT
                    }
                }
            }
        }
        if (self.close_after_flush || self.peer_eof) && self.pending() == 0 {
            return Ok(Drive::Close);
        }
        Ok(Drive::Continue)
    }

    /// Take the socket for the replication handoff (blocking mode was
    /// restored by the preceding [`Conn::flush_blocking`]).
    pub(crate) fn into_stream(self) -> TcpStream {
        self.stream
    }

    fn read_burst(&mut self) -> io::Result<()> {
        let mut chunk = [0u8; READ_CHUNK];
        for _ in 0..MAX_READS_PER_EVENT {
            match self.stream.read(&mut chunk) {
                Ok(0) => {
                    self.peer_eof = true;
                    return Ok(());
                }
                Ok(n) => {
                    self.rbuf.extend_from_slice(&chunk[..n]);
                    if n < chunk.len() {
                        return Ok(()); // socket drained
                    }
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => return Ok(()),
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
        Ok(())
    }

    /// Execute complete commands from the read buffer into the write
    /// buffer until it drains, backpressure pauses it, or a
    /// connection-fate command (SHUTDOWN/PSYNC) executes.
    fn run_commands(&mut self, inner: &Inner) -> Ran {
        loop {
            if self.pending() >= HIGH_WATER {
                return Ran::Paused;
            }
            match decode_command(&self.rbuf[self.consumed..]) {
                Ok(Decode::Incomplete) => {
                    if self.consumed > 0 {
                        self.rbuf.drain(..self.consumed);
                        self.consumed = 0;
                    }
                    return Ran::Drained;
                }
                Ok(Decode::Complete(parts, used)) => {
                    self.consumed += used;
                    inner.count_command();
                    // The instrumentation seam: every executed command is
                    // timed here, and the elapsed time feeds the per-family
                    // histogram and (if over threshold) the SLOWLOG.
                    let started = Instant::now();
                    let outcome = execute(&parts, inner, &mut self.session);
                    inner.metrics.observe_command(&parts, started.elapsed(), self.worker);
                    match outcome {
                        Outcome::Reply(v) => encode(&v, &mut self.wbuf),
                        Outcome::Shutdown => {
                            encode(&Value::Simple("OK".into()), &mut self.wbuf);
                            return Ran::Shutdown;
                        }
                        Outcome::StartReplication => return Ran::Replicate,
                    }
                }
                Err(e) => {
                    // Protocol errors are fatal for the connection:
                    // reply, discard the unparseable tail, and hang up
                    // once the reply is flushed.
                    encode(&Value::Error(format!("ERR {e}")), &mut self.wbuf);
                    self.rbuf.clear();
                    self.consumed = 0;
                    self.close_after_flush = true;
                    return Ran::Drained;
                }
            }
        }
    }

    /// Write as much pending reply as the socket takes right now.
    fn flush_some(&mut self) -> io::Result<()> {
        while self.wpos < self.wbuf.len() {
            match self.stream.write(&self.wbuf[self.wpos..]) {
                Ok(0) => {
                    return Err(io::Error::new(ErrorKind::WriteZero, "socket accepted 0 bytes"))
                }
                Ok(n) => self.wpos += n,
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
        if self.wpos == self.wbuf.len() {
            self.wbuf.clear();
            self.wpos = 0;
        } else if self.wpos > COMPACT_AT {
            self.wbuf.drain(..self.wpos);
            self.wpos = 0;
        }
        Ok(())
    }

    /// Flush everything, blocking (bounded by [`WRITE_TIMEOUT`]), and
    /// leave the socket in blocking mode — the SHUTDOWN / PSYNC paths.
    fn flush_blocking(&mut self) -> io::Result<()> {
        self.stream.set_nonblocking(false)?;
        self.stream.set_write_timeout(Some(WRITE_TIMEOUT))?;
        self.stream.write_all(&self.wbuf[self.wpos..])?;
        self.wbuf.clear();
        self.wpos = 0;
        Ok(())
    }
}
