//! The non-blocking connection state machine: one [`Conn`] per client,
//! driven by its event loop whenever epoll reports readiness.
//!
//! A readiness tick does bounded work — read what the socket has,
//! execute every complete pipelined command into the write buffer, and
//! write what the socket will take — and then parks the connection
//! again with exactly the epoll interest that can make further
//! progress. Two rules bound memory against a client that writes
//! commands faster than it reads replies (or never reads them at all):
//!
//! * **Write backpressure.** Once [`HIGH_WATER`] reply bytes are
//!   pending, the connection stops *executing* (and stops reading), and
//!   re-arms only for writability; decoding resumes as the kernel
//!   drains the buffer. Pending replies are therefore bounded by
//!   `HIGH_WATER` plus one command's reply.
//! * **Bounded read bursts.** At most [`MAX_READS_PER_EVENT`] chunks
//!   are read per tick; level-triggered epoll re-arms the rest, so one
//!   firehose connection cannot starve its loop-mates.
//!
//! The slow paths keep their blocking shape deliberately: `SHUTDOWN`'s
//! `+OK` and the `PSYNC` handoff flush with a bounded blocking write,
//! because both are once-per-connection events whose next act (server
//! teardown, replication streaming) is blocking anyway.

use std::collections::VecDeque;
use std::io::{self, ErrorKind, Read, Write};
use std::net::TcpStream;
use std::os::unix::io::{AsRawFd, RawFd};
use std::time::{Duration, Instant};

use crate::metrics::CmdFamily;
use crate::resp::{decode_command, encode, Decode, Value};
use crate::server::{execute, Inner, Outcome, Session, WRITE_TIMEOUT};
use crate::trace::{self, Stage};

use super::sys::Interest;

/// Read chunk per `read` call.
const READ_CHUNK: usize = 64 * 1024;
/// Reads per readiness tick before yielding to other connections.
const MAX_READS_PER_EVENT: usize = 4;
/// Pending-reply bytes above which the connection stops executing
/// commands until the kernel drains the write side.
const HIGH_WATER: usize = 1 << 20;
/// Consumed-prefix size above which a partially written buffer is
/// compacted instead of growing.
const COMPACT_AT: usize = 1 << 20;
/// Captured spans that may await their reply-flush completion on one
/// connection. A deeply pipelined connection past this loses its oldest
/// spans (counted as abandoned) rather than growing without bound.
const PENDING_TRACE_CAP: usize = 128;
/// Bytes of command name / key kept for the worker-panic log line.
const PANIC_CTX_LEN: usize = 24;

/// The error sent to a connection the shutdown path can no longer
/// serve, so clients can tell an orderly shutdown from a network fault.
pub(crate) const SHUTDOWN_ERR: &[u8] = b"-ERR server shutting down\r\n";

/// What the event loop should do with the connection after a tick.
#[derive(Debug)]
pub(crate) enum Drive {
    /// Keep it registered (interest may have changed).
    Continue,
    /// Deregister and drop it.
    Close,
    /// `PSYNC` accepted: hand the (flushed, re-blocked) socket to a
    /// dedicated replication-stream thread.
    Replicate,
}

/// Why the command-execution loop stopped.
enum Ran {
    /// Every complete command in the read buffer was executed.
    Drained,
    /// Stopped at [`HIGH_WATER`]; more complete commands may remain.
    Paused,
    /// `SHUTDOWN` executed (its `+OK` is in the write buffer).
    Shutdown,
    /// `PSYNC` accepted.
    Replicate,
}

pub(crate) struct Conn {
    stream: TcpStream,
    /// Id of the event-loop worker driving this connection (SLOWLOG
    /// entries carry it, so a hot worker is attributable).
    worker: u64,
    rbuf: Vec<u8>,
    consumed: usize,
    wbuf: Vec<u8>,
    wpos: usize,
    /// The interest currently registered with epoll (owned by the
    /// worker; stored here so a tick can tell whether it changed).
    pub(crate) registered: Interest,
    /// Protocol error replied: close once the write buffer drains.
    close_after_flush: bool,
    /// Client half-closed its write side; serve what's buffered, then
    /// close once replies are flushed.
    peer_eof: bool,
    /// Per-connection dispatch state (the cluster `ASKING` flag).
    session: Session,
    /// Monotonic count of reply bytes written to the socket. Together
    /// with `pending()` it orders captured spans against the byte
    /// stream, surviving write-buffer clears and compactions.
    wsent: u64,
    /// When the next command's queue-wait clock started: socket
    /// readiness for the first command of a tick, the previous
    /// command's completion for pipelined successors.
    cmd_mark: Option<Instant>,
    /// Captured spans whose replies have not fully reached the kernel
    /// yet; completed (reply-flush stage stamped, record published) as
    /// `wsent` passes their end offset.
    pending_traces: VecDeque<PendingTrace>,
    /// In-flight command context for the worker-panic log line: name and
    /// key prefixes (fixed-size copies, no per-command allocation) plus
    /// the active trace span id (0 when untraced).
    panic_cmd: [u8; PANIC_CTX_LEN],
    panic_cmd_len: u8,
    panic_key: [u8; PANIC_CTX_LEN],
    panic_key_len: u8,
    panic_span: u64,
}

/// A captured span waiting for its reply bytes to reach the kernel.
struct PendingTrace {
    rec: trace::TraceRecord,
    family: CmdFamily,
    /// When execution finished: the reply-flush stage runs from here.
    exec_end: Instant,
    /// `wsent` value at which this span's reply is fully written.
    end_off: u64,
}

fn dur_ns(d: Duration) -> u64 {
    u64::try_from(d.as_nanos()).unwrap_or(u64::MAX)
}

impl Conn {
    /// Wrap an accepted stream (already nonblocking + nodelay).
    pub(crate) fn new(stream: TcpStream, worker: u64) -> Conn {
        Conn {
            stream,
            worker,
            rbuf: Vec::with_capacity(READ_CHUNK),
            consumed: 0,
            wbuf: Vec::new(),
            wpos: 0,
            registered: Interest::READ,
            close_after_flush: false,
            peer_eof: false,
            session: Session::default(),
            wsent: 0,
            cmd_mark: None,
            pending_traces: VecDeque::new(),
            panic_cmd: [0; PANIC_CTX_LEN],
            panic_cmd_len: 0,
            panic_key: [0; PANIC_CTX_LEN],
            panic_key_len: 0,
            panic_span: 0,
        }
    }

    pub(crate) fn fd(&self) -> RawFd {
        self.stream.as_raw_fd()
    }

    /// Reply bytes not yet written to the socket.
    fn pending(&self) -> usize {
        self.wbuf.len() - self.wpos
    }

    /// The epoll interest that can make progress right now.
    pub(crate) fn desired_interest(&self) -> Interest {
        Interest {
            readable: !self.close_after_flush && !self.peer_eof && self.pending() < HIGH_WATER,
            writable: self.pending() > 0,
        }
    }

    /// One readiness tick. `Err` means the connection is broken and
    /// should be dropped (the thread-per-connection model's behavior).
    pub(crate) fn on_ready(
        &mut self,
        readable: bool,
        writable: bool,
        inner: &Inner,
    ) -> io::Result<Drive> {
        if writable {
            self.flush_some()?;
            self.complete_traces(inner);
        }
        if readable && !self.close_after_flush && !self.peer_eof && self.pending() < HIGH_WATER {
            self.read_burst()?;
            // Queue-wait starts at readiness: commands now buffered have
            // been waiting since this moment (unless a prior command's
            // completion already started the clock).
            if self.cmd_mark.is_none() && self.rbuf.len() > self.consumed {
                self.cmd_mark = Some(Instant::now());
            }
        }
        // Execute + flush until neither can progress: a tick that
        // drains the write buffer below HIGH_WATER resumes executing
        // commands that backpressure had parked in the read buffer.
        loop {
            match self.run_commands(inner) {
                Ran::Shutdown => {
                    // Deliver the +OK before the listener dies; then the
                    // whole server winds down, so blocking (bounded by
                    // the write timeout) costs nothing.
                    let _ = self.flush_blocking();
                    inner.begin_shutdown();
                    return Ok(Drive::Close);
                }
                Ran::Replicate => {
                    // Flush pipelined replies ahead of the handoff; a
                    // failure here closes instead of streaming to a
                    // replica that already lost its socket.
                    self.flush_blocking()?;
                    return Ok(Drive::Replicate);
                }
                Ran::Drained => {
                    self.flush_some()?;
                    self.complete_traces(inner);
                    break;
                }
                Ran::Paused => {
                    self.flush_some()?;
                    self.complete_traces(inner);
                    if self.pending() >= HIGH_WATER {
                        break; // clogged: wait for EPOLLOUT
                    }
                }
            }
        }
        if (self.close_after_flush || self.peer_eof) && self.pending() == 0 {
            return Ok(Drive::Close);
        }
        Ok(Drive::Continue)
    }

    /// Take the socket for the replication handoff (blocking mode was
    /// restored by the preceding [`Conn::flush_blocking`]).
    pub(crate) fn into_stream(self) -> TcpStream {
        self.stream
    }

    fn read_burst(&mut self) -> io::Result<()> {
        let mut chunk = [0u8; READ_CHUNK];
        for _ in 0..MAX_READS_PER_EVENT {
            match self.stream.read(&mut chunk) {
                Ok(0) => {
                    self.peer_eof = true;
                    return Ok(());
                }
                Ok(n) => {
                    self.rbuf.extend_from_slice(&chunk[..n]);
                    if n < chunk.len() {
                        return Ok(()); // socket drained
                    }
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => return Ok(()),
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
        Ok(())
    }

    /// Execute complete commands from the read buffer into the write
    /// buffer until it drains, backpressure pauses it, or a
    /// connection-fate command (SHUTDOWN/PSYNC) executes.
    fn run_commands(&mut self, inner: &Inner) -> Ran {
        loop {
            if self.pending() >= HIGH_WATER {
                return Ran::Paused;
            }
            let t_parse = Instant::now();
            match decode_command(&self.rbuf[self.consumed..]) {
                Ok(Decode::Incomplete) => {
                    if self.consumed > 0 {
                        self.rbuf.drain(..self.consumed);
                        self.consumed = 0;
                    }
                    // No buffered command bytes left: the queue-wait
                    // clock must restart at the next readiness, not
                    // bill the idle gap between requests to the next
                    // command. A partial command keeps the mark — its
                    // first bytes ARE already waiting.
                    if self.rbuf.is_empty() {
                        self.cmd_mark = None;
                    }
                    return Ran::Drained;
                }
                Ok(Decode::Complete(parts, used)) => {
                    self.consumed += used;
                    inner.count_command();
                    // The instrumentation seam: every executed command is
                    // timed here, and the elapsed time feeds the per-family
                    // histogram and (if over threshold) the SLOWLOG. A
                    // command is *captured* — full per-stage attribution —
                    // when a TRACEID forced it or the 1-in-N sampler picked
                    // it; everything else pays only the timestamps below.
                    let queue_start = self.cmd_mark.take();
                    let forced = self.session.trace_force.take();
                    let tracing = inner.tracer.enabled();
                    let captured =
                        forced.is_some() || (tracing && inner.tracer.sample_tick());
                    let span_id = if captured {
                        let id = match forced {
                            Some((id, _)) => id,
                            None => inner.tracer.alloc_id(),
                        };
                        trace::begin_span(id);
                        id
                    } else {
                        0
                    };
                    self.note_panic_context(&parts, span_id);
                    let started = Instant::now();
                    let outcome = execute(&parts, inner, &mut self.session);
                    let exec_end = Instant::now();
                    let exec_ns = dur_ns(exec_end - started);
                    // End the span whatever the outcome, so the
                    // thread-locals are disarmed before the next command.
                    let detail = if captured {
                        Some(trace::end_span(started, exec_ns))
                    } else {
                        None
                    };
                    self.panic_span = 0;
                    let mut stages: Option<[u64; Stage::COUNT]> = None;
                    let mut pre_total_ns = 0u64;
                    if tracing || captured {
                        let queue_ns =
                            queue_start.map_or(0, |t| dur_ns(t_parse.saturating_duration_since(t)));
                        let parse_ns = dur_ns(started.saturating_duration_since(t_parse));
                        if let Some(d) = detail {
                            let mut s = [0u64; Stage::COUNT];
                            s[Stage::QueueWait.index()] = queue_ns;
                            s[Stage::Parse.index()] = parse_ns;
                            s[Stage::Dispatch.index()] = d.dispatch_ns;
                            s[Stage::LockWait.index()] = d.lock_wait_ns;
                            s[Stage::Execute.index()] = d.execute_ns;
                            s[Stage::Persist.index()] = d.persist_ns;
                            stages = Some(s);
                            pre_total_ns = queue_ns + parse_ns + exec_ns;
                        } else {
                            // Not sampled, but slow enough to capture
                            // anyway — coarse: the whole execute seam lands
                            // in the execute stage.
                            let threshold_us = inner.tracer.threshold_us();
                            let total = queue_ns + parse_ns + exec_ns;
                            if threshold_us > 0 && total >= threshold_us.saturating_mul(1000) {
                                let mut s = [0u64; Stage::COUNT];
                                s[Stage::QueueWait.index()] = queue_ns;
                                s[Stage::Parse.index()] = parse_ns;
                                s[Stage::Execute.index()] = exec_ns;
                                stages = Some(s);
                                pre_total_ns = total;
                            }
                        }
                    }
                    inner.metrics.observe_command(&parts, exec_end - started, self.worker, stages);
                    match outcome {
                        Outcome::Reply(v) => {
                            encode(&v, &mut self.wbuf);
                            if let Some(s) = stages {
                                self.push_pending_trace(
                                    inner,
                                    &parts,
                                    span_id,
                                    forced,
                                    s,
                                    pre_total_ns,
                                    exec_end,
                                );
                            }
                        }
                        Outcome::Shutdown => {
                            encode(&Value::Simple("OK".into()), &mut self.wbuf);
                            return Ran::Shutdown;
                        }
                        Outcome::StartReplication => return Ran::Replicate,
                    }
                    // The next pipelined command has been queued since
                    // this one finished.
                    self.cmd_mark = Some(exec_end);
                }
                Err(e) => {
                    // Protocol errors are fatal for the connection:
                    // reply, discard the unparseable tail, and hang up
                    // once the reply is flushed.
                    encode(&Value::Error(format!("ERR {e}")), &mut self.wbuf);
                    self.rbuf.clear();
                    self.consumed = 0;
                    self.close_after_flush = true;
                    return Ran::Drained;
                }
            }
        }
    }

    /// Write as much pending reply as the socket takes right now.
    fn flush_some(&mut self) -> io::Result<()> {
        while self.wpos < self.wbuf.len() {
            match self.stream.write(&self.wbuf[self.wpos..]) {
                Ok(0) => {
                    return Err(io::Error::new(ErrorKind::WriteZero, "socket accepted 0 bytes"))
                }
                Ok(n) => {
                    self.wpos += n;
                    self.wsent += n as u64;
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
        if self.wpos == self.wbuf.len() {
            self.wbuf.clear();
            self.wpos = 0;
        } else if self.wpos > COMPACT_AT {
            self.wbuf.drain(..self.wpos);
            self.wpos = 0;
        }
        Ok(())
    }

    /// Flush everything, blocking (bounded by [`WRITE_TIMEOUT`]), and
    /// leave the socket in blocking mode — the SHUTDOWN / PSYNC paths.
    fn flush_blocking(&mut self) -> io::Result<()> {
        self.stream.set_nonblocking(false)?;
        self.stream.set_write_timeout(Some(WRITE_TIMEOUT))?;
        self.stream.write_all(&self.wbuf[self.wpos..])?;
        self.wsent += (self.wbuf.len() - self.wpos) as u64;
        self.wbuf.clear();
        self.wpos = 0;
        Ok(())
    }

    /// Queue a captured span to complete when its reply bytes reach the
    /// kernel. The reply-flush stage and the final record are stamped in
    /// [`Conn::complete_traces`].
    #[allow(clippy::too_many_arguments)]
    fn push_pending_trace(
        &mut self,
        inner: &Inner,
        parts: &[Vec<u8>],
        span_id: u64,
        forced: Option<(u64, u32)>,
        stages_ns: [u64; Stage::COUNT],
        pre_total_ns: u64,
        exec_end: Instant,
    ) {
        if self.pending_traces.len() >= PENDING_TRACE_CAP {
            self.pending_traces.pop_front();
            inner.tracer.note_abandoned(1);
        }
        let (id, hops, reason) = match forced {
            Some((fid, hops)) => (fid, hops, trace::Reason::Forced),
            None if span_id != 0 => (span_id, 0, trace::Reason::Sampled),
            None => (inner.tracer.alloc_id(), 0, trace::Reason::Threshold),
        };
        let rec =
            trace::TraceRecord::new(id, hops, parts, self.worker, stages_ns, pre_total_ns, reason);
        let name = parts.first().map(Vec::as_slice).unwrap_or(b"");
        self.pending_traces.push_back(PendingTrace {
            rec,
            family: CmdFamily::classify(name),
            exec_end,
            end_off: self.wsent + self.pending() as u64,
        });
    }

    /// Complete every pending span whose reply bytes have fully reached
    /// the kernel: stamp the reply-flush stage, publish the record to
    /// the flight recorder, and feed the per-stage histograms.
    fn complete_traces(&mut self, inner: &Inner) {
        if self.pending_traces.is_empty() {
            return;
        }
        let now = Instant::now();
        while let Some(front) = self.pending_traces.front() {
            if self.wsent < front.end_off {
                break;
            }
            let mut pt = self.pending_traces.pop_front().expect("front exists");
            let flush_ns = dur_ns(now.saturating_duration_since(pt.exec_end));
            pt.rec.stages_ns[Stage::ReplyFlush.index()] = flush_ns;
            pt.rec.total_ns += flush_ns;
            inner.metrics.observe_stages(pt.family, &pt.rec.stages_ns);
            inner.tracer.record(pt.rec);
        }
    }

    /// The connection is going away: spans still waiting for their
    /// reply flush will never complete. Count them so `TRACE STATUS`
    /// can tell silence from loss.
    pub(crate) fn abandon_traces(&mut self, inner: &Inner) {
        let n = self.pending_traces.len() as u64;
        if n > 0 {
            self.pending_traces.clear();
            inner.tracer.note_abandoned(n);
        }
    }

    /// Remember the in-flight command (fixed-size copies, no per-command
    /// allocation) so a worker panic can be logged with context.
    fn note_panic_context(&mut self, parts: &[Vec<u8>], span_id: u64) {
        let cmd = parts.first().map(Vec::as_slice).unwrap_or(b"");
        let n = cmd.len().min(PANIC_CTX_LEN);
        self.panic_cmd[..n].copy_from_slice(&cmd[..n]);
        self.panic_cmd_len = n as u8;
        let key = parts.get(1).map(Vec::as_slice).unwrap_or(b"");
        let k = key.len().min(PANIC_CTX_LEN);
        self.panic_key[..k].copy_from_slice(&key[..k]);
        self.panic_key_len = k as u8;
        self.panic_span = span_id;
    }

    /// The last command this connection started executing (command name
    /// prefix, key prefix, active trace id) — the worker-panic log line.
    pub(crate) fn panic_context(&self) -> (String, String, u64) {
        let cmd = String::from_utf8_lossy(&self.panic_cmd[..self.panic_cmd_len as usize])
            .into_owned();
        let key = String::from_utf8_lossy(&self.panic_key[..self.panic_key_len as usize])
            .into_owned();
        (cmd, key, self.panic_span)
    }
}
