//! The fixed pool of event-loop workers. Each worker owns one epoll
//! instance, an eventfd for cross-thread wakeups, and the connections
//! the accept loop assigned to it (round-robin at accept time); a
//! connection lives on one worker for its whole life, so no connection
//! state is ever shared between loops.
//!
//! A worker tick is: wait on epoll (no timeout — an idle server makes
//! **zero** wakeups), drain the wakeup eventfd if it fired, register
//! any newly assigned connections, then drive each ready connection's
//! state machine. A panic inside one connection's handler is caught,
//! counted in the `worker_panics` INFO counter, and costs only that
//! connection — not the worker, and not the other connections on it.

use std::net::TcpStream;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::Ordering;
use std::sync::Arc;

use parking_lot::Mutex;

use crate::server::Inner;

use super::accept::reply_shutdown_error;
use super::conn::{Conn, Drive};
use super::sys::{Epoll, EventFd, Interest};

/// Token for the worker's wakeup eventfd; connection tokens are slab
/// indices, which stay far below this.
const TOKEN_WAKE: u64 = u64::MAX;

/// The accept loop's handle to one worker: where to put new
/// connections, and how to wake the loop to pick them up (or to notice
/// shutdown).
pub(crate) struct WorkerShared {
    pub(crate) inbox: Mutex<Vec<TcpStream>>,
    pub(crate) wake: Arc<EventFd>,
}

pub(crate) struct Worker {
    pub(crate) shared: Arc<WorkerShared>,
    pub(crate) thread: std::thread::JoinHandle<()>,
}

/// Create a worker's epoll + eventfd (fallibly, so `serve()` surfaces
/// the error) and start its loop thread.
pub(crate) fn spawn_worker(id: usize, inner: Arc<Inner>) -> std::io::Result<Worker> {
    let epoll = Epoll::new()?;
    let wake = Arc::new(EventFd::new()?);
    epoll.add(wake.raw(), TOKEN_WAKE, Interest::READ)?;
    inner.register_wake(wake.clone());
    let shared = Arc::new(WorkerShared { inbox: Mutex::new(Vec::new()), wake });
    let loop_shared = shared.clone();
    let thread = std::thread::Builder::new()
        .name(format!("dash-evloop-{id}"))
        .spawn(move || run(id as u64, epoll, loop_shared, inner))?;
    Ok(Worker { shared, thread })
}

/// What to do with a connection after driving it (computed while the
/// connection is borrowed, applied after).
enum After {
    Keep,
    Remove,
    Handoff,
}

fn run(id: u64, epoll: Epoll, shared: Arc<WorkerShared>, inner: Arc<Inner>) {
    let mut conns: Vec<Option<Conn>> = Vec::new();
    let mut free: Vec<usize> = Vec::new();
    let mut events = Vec::with_capacity(256);
    loop {
        events.clear();
        if epoll.wait(&mut events, -1).is_err() {
            break;
        }
        if events.iter().any(|ev| ev.token == TOKEN_WAKE) {
            shared.wake.drain();
        }
        if inner.shutdown.load(Ordering::SeqCst) {
            break;
        }
        // Adopt newly assigned connections. Checked on every tick, not
        // just wakeups: the check is one uncontended lock when empty.
        let incoming = std::mem::take(&mut *shared.inbox.lock());
        for stream in incoming {
            register(&epoll, &mut conns, &mut free, stream, &inner, id);
        }
        for ev in &events {
            if ev.token == TOKEN_WAKE {
                continue;
            }
            let idx = ev.token as usize;
            let Some(conn) = conns.get_mut(idx).and_then(Option::as_mut) else {
                continue; // closed earlier this batch
            };
            // EPOLLERR/EPOLLHUP have no interest bit — fold them into a
            // read attempt so the failure surfaces as the read error.
            let readable = ev.readable || ev.error;
            let after = match catch_unwind(AssertUnwindSafe(|| {
                conn.on_ready(readable, ev.writable, &inner)
            })) {
                Err(_) => {
                    // A panic poisons only this connection. Count it:
                    // the old thread-per-connection model dropped the
                    // JoinHandle and the panic vanished silently. The
                    // in-flight command and trace id were stashed before
                    // execute, so the log line says what blew up.
                    inner.metrics.worker_panics.incr();
                    let (cmd, key, span) = conn.panic_context();
                    crate::log_error!(
                        "net",
                        "worker {id}: connection handler panicked in {cmd:?} \
                         (key prefix {key:?}, trace id {span}); dropping the connection"
                    );
                    After::Remove
                }
                Ok(Err(_)) => After::Remove, // I/O error: drop, as before
                Ok(Ok(Drive::Continue)) => {
                    let want = conn.desired_interest();
                    if want == conn.registered {
                        After::Keep
                    } else {
                        match epoll.modify(conn.fd(), ev.token, want) {
                            Ok(()) => {
                                conn.registered = want;
                                After::Keep
                            }
                            Err(_) => After::Remove,
                        }
                    }
                }
                Ok(Ok(Drive::Close)) => After::Remove,
                Ok(Ok(Drive::Replicate)) => After::Handoff,
            };
            match after {
                After::Keep => {}
                After::Remove => remove(&epoll, &mut conns, &mut free, idx, &inner),
                After::Handoff => {
                    // PSYNC: the socket leaves the event loop for a
                    // dedicated blocking replication-stream thread — the
                    // one place a connection genuinely owns its socket.
                    if let Some(conn) = conns[idx].take() {
                        let _ = epoll.del(conn.fd());
                        free.push(idx);
                        inner.metrics.active_connections.sub(1);
                        inner.spawn_stream_thread(conn.into_stream());
                    }
                }
            }
        }
    }
    // Shutdown. Connections assigned but never registered were accepted
    // around the shutdown flag — tell them why they're being dropped.
    // Registered connections close silently, as they always have.
    for stream in std::mem::take(&mut *shared.inbox.lock()) {
        reply_shutdown_error(stream);
    }
    let open = conns.iter().flatten().count() as i64;
    inner.metrics.active_connections.sub(open);
}

fn register(
    epoll: &Epoll,
    conns: &mut Vec<Option<Conn>>,
    free: &mut Vec<usize>,
    stream: TcpStream,
    inner: &Inner,
    worker: u64,
) {
    let idx = free.pop().unwrap_or_else(|| {
        conns.push(None);
        conns.len() - 1
    });
    let conn = Conn::new(stream, worker);
    if epoll.add(conn.fd(), idx as u64, conn.registered).is_err() {
        free.push(idx);
        return; // dropping the stream closes it
    }
    conns[idx] = Some(conn);
    inner.metrics.active_connections.add(1);
}

fn remove(
    epoll: &Epoll,
    conns: &mut [Option<Conn>],
    free: &mut Vec<usize>,
    idx: usize,
    inner: &Inner,
) {
    if let Some(mut conn) = conns[idx].take() {
        conn.abandon_traces(inner);
        let _ = epoll.del(conn.fd());
        free.push(idx);
        inner.metrics.active_connections.sub(1);
    }
}
