//! The event-driven accept loop: a nonblocking listener plus a wakeup
//! eventfd on one epoll, so the loop sleeps with **no timeout** and
//! wakes for exactly two reasons — a connection to accept, or a
//! shutdown to run (no more throwaway self-connect to unblock a
//! blocking `accept`).
//!
//! Accepted sockets are made nonblocking and dealt round-robin to the
//! worker pool. Two failure paths that used to be wrong are handled
//! here:
//!
//! * **Transient accept errors survive.** EMFILE/ENFILE (fd
//!   exhaustion) used to shut the whole server down; now the listener
//!   is unarmed for [`ACCEPT_BACKOFF_MS`], the `accept_errors` INFO
//!   counter ticks, and existing connections keep being served. The
//!   backlog is retried once descriptors free up.
//! * **Shutdown is announced.** A connection that raced the shutdown
//!   flag — including everything still sitting in the listener backlog
//!   at teardown — gets `-ERR server shutting down` before the close,
//!   so clients can tell an orderly shutdown from a network fault.

use std::io::{ErrorKind, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Duration;

use crate::server::Inner;

use super::conn::SHUTDOWN_ERR;
use super::event_loop::Worker;
use super::sys::{Epoll, EventFd, Interest};

const TOKEN_WAKE: u64 = 0;
const TOKEN_LISTENER: u64 = 1;

/// How long the listener stays unarmed after a transient accept error
/// (fd exhaustion, ENOMEM, ...) before the backlog is retried.
const ACCEPT_BACKOFF_MS: i32 = 100;
/// Accepts per wakeup before re-checking shutdown; the level-triggered
/// listener re-fires immediately if more are pending.
const ACCEPT_BURST: usize = 512;

pub(crate) struct Acceptor {
    listener: TcpListener,
    epoll: Epoll,
    wake: Arc<EventFd>,
    workers: Vec<Worker>,
    /// Round-robin assignment cursor.
    next: usize,
    /// Is the listener registered with epoll (false while backing off
    /// after an accept error)?
    armed: bool,
}

impl Acceptor {
    /// Build the accept loop's epoll state (fallibly, before any thread
    /// spawns) and register its wakeup with the server.
    pub(crate) fn new(
        listener: TcpListener,
        workers: Vec<Worker>,
        inner: &Inner,
    ) -> std::io::Result<Acceptor> {
        listener.set_nonblocking(true)?;
        let epoll = Epoll::new()?;
        let wake = Arc::new(EventFd::new()?);
        epoll.add(wake.raw(), TOKEN_WAKE, Interest::READ)?;
        {
            use std::os::unix::io::AsRawFd;
            epoll.add(listener.as_raw_fd(), TOKEN_LISTENER, Interest::READ)?;
        }
        inner.register_wake(wake.clone());
        Ok(Acceptor { listener, epoll, wake, workers, next: 0, armed: true })
    }

    /// Serve accepts until shutdown, then run the whole teardown:
    /// backlog drain, worker join, replication threads, engine close.
    pub(crate) fn run(mut self, inner: Arc<Inner>) {
        let mut events = Vec::with_capacity(8);
        loop {
            events.clear();
            let timeout = if self.armed { -1 } else { ACCEPT_BACKOFF_MS };
            if self.epoll.wait(&mut events, timeout).is_err() {
                // epoll itself failing is unrecoverable for this loop;
                // treat it as a shutdown request so the server winds
                // down cleanly instead of wedging.
                inner.begin_shutdown();
            }
            if events.iter().any(|ev| ev.token == TOKEN_WAKE) {
                self.wake.drain();
            }
            if inner.shutdown.load(Ordering::SeqCst) {
                break;
            }
            if !self.armed {
                // Backoff elapsed: re-arm and fall through to accept —
                // the burst below retries the backlog immediately.
                use std::os::unix::io::AsRawFd;
                if self.epoll.add(self.listener.as_raw_fd(), TOKEN_LISTENER, Interest::READ).is_ok()
                {
                    self.armed = true;
                }
            }
            if self.armed {
                self.accept_burst(&inner);
            }
        }
        self.teardown(&inner);
    }

    fn accept_burst(&mut self, inner: &Arc<Inner>) {
        for _ in 0..ACCEPT_BURST {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    if inner.shutdown.load(Ordering::SeqCst) {
                        // Raced the flag: announce instead of a silent
                        // drop. The outer loop breaks next iteration
                        // and teardown drains the rest of the backlog.
                        reply_shutdown_error(stream);
                        return;
                    }
                    inner.count_accept();
                    self.dispatch(stream);
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => return,
                Err(e)
                    if matches!(
                        e.kind(),
                        ErrorKind::ConnectionAborted | ErrorKind::Interrupted
                    ) =>
                {
                    continue
                }
                Err(e) => {
                    // Transient resource exhaustion (EMFILE/ENFILE/
                    // ENOMEM): back off and keep serving what's already
                    // connected. This used to shut the server down.
                    let n = inner.accept_errors.fetch_add(1, Ordering::Relaxed);
                    if n.is_multiple_of(64) {
                        eprintln!(
                            "dash-server: accept failed ({e}); backing off {ACCEPT_BACKOFF_MS} ms \
                             (error #{})",
                            n + 1
                        );
                    }
                    use std::os::unix::io::AsRawFd;
                    let _ = self.epoll.del(self.listener.as_raw_fd());
                    self.armed = false;
                    return;
                }
            }
        }
    }

    fn dispatch(&mut self, stream: TcpStream) {
        let _ = stream.set_nodelay(true);
        if stream.set_nonblocking(true).is_err() {
            return; // dropping closes it; nothing was promised yet
        }
        let worker = &self.workers[self.next];
        self.next = (self.next + 1) % self.workers.len();
        worker.shared.inbox.lock().push(stream);
        worker.shared.wake.wake();
    }

    fn teardown(self, inner: &Arc<Inner>) {
        // Reply to every connection still in the listener backlog, then
        // close the listener so new connects are refused outright.
        drain_backlog_with_error(&self.listener);
        drop(self.listener);
        // Stop the workers. Joining counts panicked loops; a dispatch
        // that raced a worker's exit leaves its stream in the inbox,
        // which is drained here — after the join, so without racing the
        // worker's own drain.
        for w in &self.workers {
            w.shared.wake.wake();
        }
        for w in self.workers {
            let shared = w.shared.clone();
            if w.thread.join().is_err() {
                inner.worker_panics.fetch_add(1, Ordering::Relaxed);
            }
            for stream in std::mem::take(&mut *shared.inbox.lock()) {
                reply_shutdown_error(stream);
            }
        }
        // Replication-stream threads, the replica sync thread, then the
        // pools: the last reply written is durably on disk after close.
        inner.finish_shutdown();
    }
}

/// Accept whatever is still queued on `listener` (which must be
/// nonblocking) and tell each connection the server is shutting down.
/// Bounded, so connects racing in forever cannot pin the teardown.
pub(crate) fn drain_backlog_with_error(listener: &TcpListener) {
    for _ in 0..4096 {
        match listener.accept() {
            Ok((stream, _)) => reply_shutdown_error(stream),
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(_) => return, // WouldBlock (backlog empty) or worse
        }
    }
}

/// Best-effort `-ERR server shutting down` + close. The write is given
/// a short blocking window: the reply is a courtesy, not a promise
/// worth wedging teardown for.
pub(crate) fn reply_shutdown_error(stream: TcpStream) {
    let mut stream = stream;
    let _ = stream.set_nonblocking(false);
    let _ = stream.set_write_timeout(Some(Duration::from_millis(500)));
    let _ = stream.write_all(SHUTDOWN_ERR);
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Read;

    /// The satellite-3 contract, tested deterministically at the unit
    /// seam: a connection sitting in the backlog when the server tears
    /// down reads the shutdown error, not a bare RST/EOF.
    #[test]
    fn backlog_drain_replies_shutdown_error() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        listener.set_nonblocking(true).unwrap();
        let mut c1 = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let mut c2 = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        drain_backlog_with_error(&listener);
        drop(listener);
        for c in [&mut c1, &mut c2] {
            let mut got = Vec::new();
            c.read_to_end(&mut got).unwrap();
            assert_eq!(got, SHUTDOWN_ERR, "{:?}", String::from_utf8_lossy(&got));
        }
    }

    #[test]
    fn backlog_drain_on_empty_listener_is_a_noop() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        listener.set_nonblocking(true).unwrap();
        drain_backlog_with_error(&listener); // must not block or panic
    }
}
