//! The event-driven accept loop: a nonblocking listener plus a wakeup
//! eventfd on one epoll, so the loop sleeps with **no timeout** and
//! wakes for exactly two reasons — a connection to accept, or a
//! shutdown to run (no more throwaway self-connect to unblock a
//! blocking `accept`).
//!
//! Accepted sockets are made nonblocking and dealt round-robin to the
//! worker pool. Two failure paths that used to be wrong are handled
//! here:
//!
//! * **Transient accept errors survive.** EMFILE/ENFILE (fd
//!   exhaustion) used to shut the whole server down; now the listener
//!   is unarmed for [`ACCEPT_BACKOFF_MS`], the `accept_errors` INFO
//!   counter ticks, and existing connections keep being served. The
//!   backlog is retried once descriptors free up.
//! * **Shutdown is announced.** A connection that raced the shutdown
//!   flag — including everything still sitting in the listener backlog
//!   at teardown — gets `-ERR server shutting down` before the close,
//!   so clients can tell an orderly shutdown from a network fault.
//!
//! The accept loop also serves the Prometheus endpoint
//! (`--metrics-addr`): a second nonblocking listener on the same epoll
//! whose connections run a minimal HTTP/1.0 exchange (read one request
//! head, write one response, close). Scrapes are rare (seconds apart)
//! and the exposition render is O(shards + buckets), so putting them on
//! the accept loop costs no service latency and **zero extra threads**.

use std::io::{ErrorKind, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Duration;

use crate::metrics::prometheus;
use crate::server::Inner;

use super::conn::SHUTDOWN_ERR;
use super::event_loop::Worker;
use super::sys::{Epoll, EventFd, Interest};

const TOKEN_WAKE: u64 = 0;
const TOKEN_LISTENER: u64 = 1;
const TOKEN_METRICS_LISTENER: u64 = 2;
/// Metrics-connection tokens start here (slab index + base); far above
/// any fixed token.
const METRICS_CONN_BASE: u64 = 1 << 32;
/// Concurrent in-flight metrics connections (a scraper or two plus a
/// curious operator; anything more is a misconfigured poller).
const MAX_METRICS_CONNS: usize = 64;
/// Request heads larger than this are dropped (a GET line plus a few
/// headers fits in a fraction of it).
const MAX_METRICS_HEAD: usize = 8 * 1024;

/// How long the listener stays unarmed after a transient accept error
/// (fd exhaustion, ENOMEM, ...) before the backlog is retried.
const ACCEPT_BACKOFF_MS: i32 = 100;
/// Accepts per wakeup before re-checking shutdown; the level-triggered
/// listener re-fires immediately if more are pending.
const ACCEPT_BURST: usize = 512;

/// One in-flight HTTP exchange on the metrics endpoint: buffer the
/// request head, then drain the rendered response, then close.
struct MetricsConn {
    stream: TcpStream,
    rbuf: Vec<u8>,
    wbuf: Vec<u8>,
    wpos: usize,
}

pub(crate) struct Acceptor {
    listener: TcpListener,
    /// The Prometheus endpoint's listener (`--metrics-addr`), served by
    /// this same loop.
    metrics_listener: Option<TcpListener>,
    /// In-flight metrics connections (token = slab index + base).
    metrics_conns: Vec<Option<MetricsConn>>,
    epoll: Epoll,
    wake: Arc<EventFd>,
    workers: Vec<Worker>,
    /// Round-robin assignment cursor.
    next: usize,
    /// Is the listener registered with epoll (false while backing off
    /// after an accept error)?
    armed: bool,
}

impl Acceptor {
    /// Build the accept loop's epoll state (fallibly, before any thread
    /// spawns) and register its wakeup with the server.
    pub(crate) fn new(
        listener: TcpListener,
        metrics_listener: Option<TcpListener>,
        workers: Vec<Worker>,
        inner: &Inner,
    ) -> std::io::Result<Acceptor> {
        listener.set_nonblocking(true)?;
        let epoll = Epoll::new()?;
        let wake = Arc::new(EventFd::new()?);
        epoll.add(wake.raw(), TOKEN_WAKE, Interest::READ)?;
        {
            use std::os::unix::io::AsRawFd;
            epoll.add(listener.as_raw_fd(), TOKEN_LISTENER, Interest::READ)?;
            if let Some(ml) = &metrics_listener {
                ml.set_nonblocking(true)?;
                epoll.add(ml.as_raw_fd(), TOKEN_METRICS_LISTENER, Interest::READ)?;
            }
        }
        inner.register_wake(wake.clone());
        Ok(Acceptor {
            listener,
            metrics_listener,
            metrics_conns: Vec::new(),
            epoll,
            wake,
            workers,
            next: 0,
            armed: true,
        })
    }

    /// Serve accepts until shutdown, then run the whole teardown:
    /// backlog drain, worker join, replication threads, engine close.
    pub(crate) fn run(mut self, inner: Arc<Inner>) {
        let mut events = Vec::with_capacity(8);
        loop {
            events.clear();
            let timeout = if self.armed { -1 } else { ACCEPT_BACKOFF_MS };
            if self.epoll.wait(&mut events, timeout).is_err() {
                // epoll itself failing is unrecoverable for this loop;
                // treat it as a shutdown request so the server winds
                // down cleanly instead of wedging.
                inner.begin_shutdown();
            }
            if events.iter().any(|ev| ev.token == TOKEN_WAKE) {
                self.wake.drain();
            }
            if inner.shutdown.load(Ordering::SeqCst) {
                break;
            }
            // Metrics endpoint: accept and drive its HTTP exchanges.
            for ev in &events {
                match ev.token {
                    TOKEN_METRICS_LISTENER => self.accept_metrics_burst(),
                    t if t >= METRICS_CONN_BASE => {
                        self.drive_metrics_conn((t - METRICS_CONN_BASE) as usize, &inner);
                    }
                    _ => {}
                }
            }
            if !self.armed {
                // Backoff elapsed: re-arm and fall through to accept —
                // the burst below retries the backlog immediately.
                use std::os::unix::io::AsRawFd;
                if self.epoll.add(self.listener.as_raw_fd(), TOKEN_LISTENER, Interest::READ).is_ok()
                {
                    self.armed = true;
                }
            }
            if self.armed {
                self.accept_burst(&inner);
            }
        }
        self.teardown(&inner);
    }

    fn accept_burst(&mut self, inner: &Arc<Inner>) {
        for _ in 0..ACCEPT_BURST {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    if inner.shutdown.load(Ordering::SeqCst) {
                        // Raced the flag: announce instead of a silent
                        // drop. The outer loop breaks next iteration
                        // and teardown drains the rest of the backlog.
                        reply_shutdown_error(stream);
                        return;
                    }
                    inner.count_accept();
                    self.dispatch(stream);
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => return,
                Err(e)
                    if matches!(
                        e.kind(),
                        ErrorKind::ConnectionAborted | ErrorKind::Interrupted
                    ) =>
                {
                    continue
                }
                Err(e) => {
                    // Transient resource exhaustion (EMFILE/ENFILE/
                    // ENOMEM): back off and keep serving what's already
                    // connected. This used to shut the server down.
                    inner.metrics.accept_errors.incr();
                    let n = inner.metrics.accept_errors.get();
                    if (n - 1).is_multiple_of(64) {
                        crate::log_warn!(
                            "net",
                            "accept failed ({e}); backing off {ACCEPT_BACKOFF_MS} ms (error #{n})"
                        );
                    }
                    use std::os::unix::io::AsRawFd;
                    let _ = self.epoll.del(self.listener.as_raw_fd());
                    self.armed = false;
                    return;
                }
            }
        }
    }

    /// Accept pending metrics connections. Beyond [`MAX_METRICS_CONNS`]
    /// in flight, new ones are dropped (closed) rather than queued — a
    /// scraper retries; the service listener is never affected.
    fn accept_metrics_burst(&mut self) {
        let Some(listener) = &self.metrics_listener else { return };
        loop {
            match listener.accept() {
                Ok((stream, _)) => {
                    if stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    let idx = match self.metrics_conns.iter().position(Option::is_none) {
                        Some(i) => i,
                        None if self.metrics_conns.len() < MAX_METRICS_CONNS => {
                            self.metrics_conns.push(None);
                            self.metrics_conns.len() - 1
                        }
                        None => continue, // at capacity: drop (close)
                    };
                    use std::os::unix::io::AsRawFd;
                    let token = METRICS_CONN_BASE + idx as u64;
                    if self.epoll.add(stream.as_raw_fd(), token, Interest::READ).is_ok() {
                        self.metrics_conns[idx] = Some(MetricsConn {
                            stream,
                            rbuf: Vec::new(),
                            wbuf: Vec::new(),
                            wpos: 0,
                        });
                    }
                }
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(_) => return, // WouldBlock, or transient: retried next fire
            }
        }
    }

    /// Drive one metrics connection: buffer the request head, render the
    /// response once it is complete, drain it, close. Any error just
    /// drops the connection — the scraper retries.
    fn drive_metrics_conn(&mut self, idx: usize, inner: &Inner) {
        use std::os::unix::io::AsRawFd;
        let Some(conn) = self.metrics_conns.get_mut(idx).and_then(Option::as_mut) else {
            return;
        };
        let token = METRICS_CONN_BASE + idx as u64;
        let mut close = false;
        // Read phase: until the head is complete (response not built).
        if conn.wbuf.is_empty() {
            let mut chunk = [0u8; 1024];
            loop {
                match conn.stream.read(&mut chunk) {
                    Ok(0) => {
                        close = true; // EOF before a full request head
                        break;
                    }
                    Ok(n) => {
                        conn.rbuf.extend_from_slice(&chunk[..n]);
                        if prometheus::request_complete(&conn.rbuf) {
                            conn.wbuf =
                                prometheus::respond(&conn.rbuf, || prometheus::render(inner));
                            close = self
                                .epoll
                                .modify(conn.stream.as_raw_fd(), token, Interest::WRITE)
                                .is_err();
                            break;
                        }
                        if conn.rbuf.len() > MAX_METRICS_HEAD {
                            close = true;
                            break;
                        }
                    }
                    Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                    Err(_) => {
                        close = true;
                        break;
                    }
                }
            }
        }
        // Write phase: drain the response, then close (HTTP/1.0).
        while !close && conn.wpos < conn.wbuf.len() {
            match conn.stream.write(&conn.wbuf[conn.wpos..]) {
                Ok(0) => close = true,
                Ok(n) => {
                    conn.wpos += n;
                    if conn.wpos == conn.wbuf.len() {
                        close = true;
                    }
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(_) => close = true,
            }
        }
        if close {
            if let Some(conn) = self.metrics_conns[idx].take() {
                let _ = self.epoll.del(conn.stream.as_raw_fd());
            }
        }
    }

    fn dispatch(&mut self, stream: TcpStream) {
        let _ = stream.set_nodelay(true);
        if stream.set_nonblocking(true).is_err() {
            return; // dropping closes it; nothing was promised yet
        }
        let worker = &self.workers[self.next];
        self.next = (self.next + 1) % self.workers.len();
        worker.shared.inbox.lock().push(stream);
        worker.shared.wake.wake();
    }

    fn teardown(self, inner: &Arc<Inner>) {
        // Reply to every connection still in the listener backlog, then
        // close the listener so new connects are refused outright.
        drain_backlog_with_error(&self.listener);
        drop(self.listener);
        // Stop the workers. Joining counts panicked loops; a dispatch
        // that raced a worker's exit leaves its stream in the inbox,
        // which is drained here — after the join, so without racing the
        // worker's own drain.
        for w in &self.workers {
            w.shared.wake.wake();
        }
        for w in self.workers {
            let shared = w.shared.clone();
            if w.thread.join().is_err() {
                inner.metrics.worker_panics.incr();
            }
            for stream in std::mem::take(&mut *shared.inbox.lock()) {
                reply_shutdown_error(stream);
            }
        }
        // Replication-stream threads, the replica sync thread, then the
        // pools: the last reply written is durably on disk after close.
        inner.finish_shutdown();
    }
}

/// Accept whatever is still queued on `listener` (which must be
/// nonblocking) and tell each connection the server is shutting down.
/// Bounded, so connects racing in forever cannot pin the teardown.
pub(crate) fn drain_backlog_with_error(listener: &TcpListener) {
    for _ in 0..4096 {
        match listener.accept() {
            Ok((stream, _)) => reply_shutdown_error(stream),
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(_) => return, // WouldBlock (backlog empty) or worse
        }
    }
}

/// Best-effort `-ERR server shutting down` + close. The write is given
/// a short blocking window: the reply is a courtesy, not a promise
/// worth wedging teardown for.
pub(crate) fn reply_shutdown_error(stream: TcpStream) {
    let mut stream = stream;
    let _ = stream.set_nonblocking(false);
    let _ = stream.set_write_timeout(Some(Duration::from_millis(500)));
    let _ = stream.write_all(SHUTDOWN_ERR);
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Read;

    /// The satellite-3 contract, tested deterministically at the unit
    /// seam: a connection sitting in the backlog when the server tears
    /// down reads the shutdown error, not a bare RST/EOF.
    #[test]
    fn backlog_drain_replies_shutdown_error() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        listener.set_nonblocking(true).unwrap();
        let mut c1 = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let mut c2 = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        drain_backlog_with_error(&listener);
        drop(listener);
        for c in [&mut c1, &mut c2] {
            let mut got = Vec::new();
            c.read_to_end(&mut got).unwrap();
            assert_eq!(got, SHUTDOWN_ERR, "{:?}", String::from_utf8_lossy(&got));
        }
    }

    #[test]
    fn backlog_drain_on_empty_listener_is_a_noop() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        listener.set_nonblocking(true).unwrap();
        drain_backlog_with_error(&listener); // must not block or panic
    }
}
