//! A minimal blocking RESP2 client with explicit pipelining — what
//! `dash-loadgen`, the integration tests and the CI smoke job speak to
//! the server with.
//!
//! `enqueue` buffers requests locally; `flush` ships the whole batch in
//! one write; `read_reply` then yields the replies in order. `command`
//! is the one-shot convenience wrapping all three.

use std::io::{ErrorKind, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};

use crate::resp::{decode_value, encode_command, Decode, Value};

pub struct RespClient {
    stream: TcpStream,
    wbuf: Vec<u8>,
    rbuf: Vec<u8>,
    /// Bytes of `rbuf` already decoded into replies.
    rpos: usize,
}

impl RespClient {
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(RespClient { stream, wbuf: Vec::new(), rbuf: Vec::new(), rpos: 0 })
    }

    /// Append one command to the outgoing pipeline (not sent yet).
    pub fn enqueue(&mut self, parts: &[&[u8]]) {
        encode_command(parts, &mut self.wbuf);
    }

    /// Ship every enqueued command in one write.
    pub fn flush(&mut self) -> std::io::Result<()> {
        if !self.wbuf.is_empty() {
            self.stream.write_all(&self.wbuf)?;
            self.wbuf.clear();
        }
        Ok(())
    }

    /// Read the next reply (blocking).
    pub fn read_reply(&mut self) -> std::io::Result<Value> {
        loop {
            match decode_value(&self.rbuf[self.rpos..]) {
                Ok(Decode::Complete(v, used)) => {
                    self.rpos += used;
                    // Compact once the buffer is fully drained so long
                    // pipelines don't accumulate forever.
                    if self.rpos == self.rbuf.len() {
                        self.rbuf.clear();
                        self.rpos = 0;
                    }
                    return Ok(v);
                }
                Ok(Decode::Incomplete) => {
                    let mut chunk = [0u8; 16 * 1024];
                    let n = self.stream.read(&mut chunk)?;
                    if n == 0 {
                        return Err(std::io::Error::new(
                            ErrorKind::UnexpectedEof,
                            "server closed the connection mid-reply",
                        ));
                    }
                    self.rbuf.extend_from_slice(&chunk[..n]);
                }
                Err(e) => {
                    return Err(std::io::Error::new(ErrorKind::InvalidData, e.to_string()));
                }
            }
        }
    }

    /// Send one command and wait for its reply.
    pub fn command(&mut self, parts: &[&[u8]]) -> std::io::Result<Value> {
        self.enqueue(parts);
        self.flush()?;
        self.read_reply()
    }
}
