//! A minimal blocking RESP2 client with explicit pipelining — what
//! `dash-loadgen`, the integration tests and the CI smoke job speak to
//! the server with.
//!
//! `enqueue` buffers requests locally; `flush` ships the whole batch in
//! one write; `read_reply` then yields the replies in order. `command`
//! is the one-shot convenience wrapping all three.

use std::io::{ErrorKind, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use crate::cluster::slots::key_slot;
use crate::resp::{decode_value, encode_command, Decode, Value};

pub struct RespClient {
    stream: TcpStream,
    wbuf: Vec<u8>,
    rbuf: Vec<u8>,
    /// Bytes of `rbuf` already decoded into replies.
    rpos: usize,
}

impl RespClient {
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(RespClient { stream, wbuf: Vec::new(), rbuf: Vec::new(), rpos: 0 })
    }

    /// Connect with a deadline, and apply the same deadline to every
    /// subsequent read and write: a dead or wedged node fails fast with
    /// `TimedOut` instead of blocking forever. [`RespClient::connect`]
    /// keeps the historical fully-blocking behavior.
    pub fn connect_timeout(addr: &str, timeout: Duration) -> std::io::Result<Self> {
        let mut last_err = None;
        for resolved in addr.to_socket_addrs()? {
            match TcpStream::connect_timeout(&resolved, timeout) {
                Ok(stream) => {
                    stream.set_nodelay(true)?;
                    stream.set_read_timeout(Some(timeout))?;
                    stream.set_write_timeout(Some(timeout))?;
                    return Ok(RespClient { stream, wbuf: Vec::new(), rbuf: Vec::new(), rpos: 0 });
                }
                Err(e) => last_err = Some(e),
            }
        }
        Err(last_err.unwrap_or_else(|| {
            std::io::Error::new(ErrorKind::InvalidInput, format!("{addr:?} resolved to nothing"))
        }))
    }

    /// Append one command to the outgoing pipeline (not sent yet).
    pub fn enqueue(&mut self, parts: &[&[u8]]) {
        encode_command(parts, &mut self.wbuf);
    }

    /// Ship every enqueued command in one write.
    pub fn flush(&mut self) -> std::io::Result<()> {
        if !self.wbuf.is_empty() {
            self.stream.write_all(&self.wbuf)?;
            self.wbuf.clear();
        }
        Ok(())
    }

    /// Read the next reply (blocking).
    pub fn read_reply(&mut self) -> std::io::Result<Value> {
        loop {
            match decode_value(&self.rbuf[self.rpos..]) {
                Ok(Decode::Complete(v, used)) => {
                    self.rpos += used;
                    // Compact once the buffer is fully drained so long
                    // pipelines don't accumulate forever.
                    if self.rpos == self.rbuf.len() {
                        self.rbuf.clear();
                        self.rpos = 0;
                    }
                    return Ok(v);
                }
                Ok(Decode::Incomplete) => {
                    let mut chunk = [0u8; 16 * 1024];
                    let n = self.stream.read(&mut chunk).map_err(|e| {
                        // With a read timeout set, a silent server
                        // surfaces as WouldBlock/TimedOut depending on
                        // the platform; normalize to one clear error.
                        if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) {
                            std::io::Error::new(
                                ErrorKind::TimedOut,
                                "server did not reply within the read timeout",
                            )
                        } else {
                            e
                        }
                    })?;
                    if n == 0 {
                        return Err(std::io::Error::new(
                            ErrorKind::UnexpectedEof,
                            "server closed the connection mid-reply",
                        ));
                    }
                    self.rbuf.extend_from_slice(&chunk[..n]);
                }
                Err(e) => {
                    return Err(std::io::Error::new(ErrorKind::InvalidData, e.to_string()));
                }
            }
        }
    }

    /// Send one command and wait for its reply.
    pub fn command(&mut self, parts: &[&[u8]]) -> std::io::Result<Value> {
        self.enqueue(parts);
        self.flush()?;
        self.read_reply()
    }

    // ---- typed multi-key conveniences -------------------------------------
    //
    // One wire command per call (the server executes the whole key set
    // through the engine's shard-grouped batch paths), with the reply
    // decoded into the natural Rust shape. Server `-ERR` replies and
    // shape mismatches surface as `InvalidData` errors.

    /// `MGET`: values in key order, `None` for absent keys.
    pub fn mget(&mut self, keys: &[&[u8]]) -> std::io::Result<Vec<Option<Vec<u8>>>> {
        let mut parts: Vec<&[u8]> = Vec::with_capacity(keys.len() + 1);
        parts.push(b"MGET");
        parts.extend_from_slice(keys);
        match self.command(&parts)? {
            Value::Array(items) if items.len() == keys.len() => items
                .into_iter()
                .map(|v| match v {
                    Value::Bulk(b) => Ok(Some(b)),
                    Value::Nil => Ok(None),
                    other => Err(bad_reply("MGET", &other)),
                })
                .collect(),
            other => Err(bad_reply("MGET", &other)),
        }
    }

    /// `MSET`: store every pair; the single `+OK` covers the whole batch.
    pub fn mset(&mut self, pairs: &[(&[u8], &[u8])]) -> std::io::Result<()> {
        let mut parts: Vec<&[u8]> = Vec::with_capacity(pairs.len() * 2 + 1);
        parts.push(b"MSET");
        for (k, v) in pairs {
            parts.push(k);
            parts.push(v);
        }
        match self.command(&parts)? {
            Value::Simple(s) if s == "OK" => Ok(()),
            other => Err(bad_reply("MSET", &other)),
        }
    }

    /// Variadic `DEL`: how many of the keys existed and were removed.
    pub fn del(&mut self, keys: &[&[u8]]) -> std::io::Result<i64> {
        self.integer_command(b"DEL", keys)
    }

    /// Variadic `EXISTS`: how many of the keys are present (repeats count).
    pub fn exists(&mut self, keys: &[&[u8]]) -> std::io::Result<i64> {
        self.integer_command(b"EXISTS", keys)
    }

    /// One `SCAN` page: `(next_cursor, keys)`. Pass cursor `0` to start;
    /// a returned `0` means the iteration is complete (Redis semantics).
    pub fn scan(&mut self, cursor: u64, count: usize) -> std::io::Result<(u64, Vec<Vec<u8>>)> {
        let cursor_arg = cursor.to_string().into_bytes();
        let count_arg = count.to_string().into_bytes();
        let reply = self.command(&[b"SCAN", &cursor_arg, b"COUNT", &count_arg])?;
        let Value::Array(mut parts) = reply else {
            return Err(bad_reply("SCAN", &reply));
        };
        if parts.len() != 2 {
            return Err(bad_reply("SCAN", &Value::Array(parts)));
        }
        let keys_value = parts.pop().expect("len checked");
        let cursor_value = parts.pop().expect("len checked");
        let next = match &cursor_value {
            Value::Bulk(b) => std::str::from_utf8(b)
                .ok()
                .and_then(|s| s.parse::<u64>().ok())
                .ok_or_else(|| bad_reply("SCAN", &cursor_value))?,
            other => return Err(bad_reply("SCAN", other)),
        };
        let Value::Array(items) = keys_value else {
            return Err(bad_reply("SCAN", &keys_value));
        };
        let keys = items
            .into_iter()
            .map(|v| match v {
                Value::Bulk(b) => Ok(b),
                other => Err(bad_reply("SCAN", &other)),
            })
            .collect::<std::io::Result<Vec<_>>>()?;
        Ok((next, keys))
    }

    /// Drain a full `SCAN` iteration into one key list (the cursor-driven
    /// equivalent of `KEYS *`, but paged — safe against huge keyspaces).
    pub fn scan_all(&mut self, count: usize) -> std::io::Result<Vec<Vec<u8>>> {
        let mut all = Vec::new();
        let mut cursor = 0u64;
        loop {
            let (next, mut keys) = self.scan(cursor, count)?;
            all.append(&mut keys);
            if next == 0 {
                return Ok(all);
            }
            cursor = next;
        }
    }

    /// `SNAPSHOT`: ask the server to stream an online backup to `path`
    /// on **its** filesystem; returns the record count.
    pub fn snapshot(&mut self, path: &str) -> std::io::Result<i64> {
        match self.command(&[b"SNAPSHOT", path.as_bytes()])? {
            Value::Integer(n) => Ok(n),
            other => Err(bad_reply("SNAPSHOT", &other)),
        }
    }

    // ---- typed INFO accessors ---------------------------------------------
    //
    // INFO is `key:value` lines; these pull single fields out so
    // replication tooling (loadgen's --wait-sync, the CI failover
    // drill, tests) doesn't re-implement the parsing. Every section is
    // O(shards) except `keyspace`, whose `scan_len` ground truth walks
    // every bucket — that one is opt-in via [`RespClient::keyspace_info`]
    // and deliberately absent from the default payload, so a 10 Hz
    // poll never inflicts an O(total keys) scan on a live server.

    /// The raw default `INFO` payload: server, replication, stats,
    /// latency and per-shard lines — all O(shards), safe to poll.
    pub fn info(&mut self) -> std::io::Result<String> {
        self.info_payload(&[b"INFO"])
    }

    /// The raw `INFO replication` payload (cheap: no key counts).
    pub fn replication_info(&mut self) -> std::io::Result<String> {
        self.info_payload(&[b"INFO", b"replication"])
    }

    /// The raw `INFO stats` payload: connection/command totals, event-
    /// core health counters, engine and replication telemetry.
    pub fn stats_info(&mut self) -> std::io::Result<String> {
        self.info_payload(&[b"INFO", b"stats"])
    }

    /// The raw `INFO latency` payload: per-command-family counts and
    /// histogram-derived p50/p99/p999 in microseconds.
    pub fn latency_info(&mut self) -> std::io::Result<String> {
        self.info_payload(&[b"INFO", b"latency"])
    }

    /// The raw `INFO keyspace` payload. **O(total keys)**: contains the
    /// `scan_len` full-iteration ground truth next to the O(shards)
    /// counter — the drift check, priced accordingly.
    pub fn keyspace_info(&mut self) -> std::io::Result<String> {
        self.info_payload(&[b"INFO", b"keyspace"])
    }

    fn info_payload(&mut self, cmd: &[&[u8]]) -> std::io::Result<String> {
        match self.command(cmd)? {
            Value::Bulk(text) => String::from_utf8(text).map_err(|_| {
                std::io::Error::new(ErrorKind::InvalidData, "INFO payload is not UTF-8")
            }),
            other => Err(bad_reply("INFO", &other)),
        }
    }

    /// One `field:value` line out of the full `INFO` (`None` when the
    /// server doesn't report that field).
    pub fn info_field(&mut self, field: &str) -> std::io::Result<Option<String>> {
        Ok(find_field(&self.info()?, field))
    }

    fn repl_field(&mut self, field: &str) -> std::io::Result<String> {
        find_field(&self.replication_info()?, field).ok_or_else(|| {
            std::io::Error::new(
                ErrorKind::InvalidData,
                format!("INFO replication has no {field} field"),
            )
        })
    }

    fn repl_u64(&mut self, field: &str) -> std::io::Result<u64> {
        let value = self.repl_field(field)?;
        value.parse().map_err(|_| {
            std::io::Error::new(
                ErrorKind::InvalidData,
                format!("INFO {field} is not an integer: {value:?}"),
            )
        })
    }

    /// `role`: `"primary"` or `"replica"`.
    pub fn role(&mut self) -> std::io::Result<String> {
        self.repl_field("role")
    }

    /// `repl_offset`: the server's replication stream position. Equal
    /// on a primary and its caught-up replica once writes quiesce.
    pub fn repl_offset(&mut self) -> std::io::Result<u64> {
        self.repl_u64("repl_offset")
    }

    /// `connected_replicas`: live replica streams on a primary.
    pub fn connected_replicas(&mut self) -> std::io::Result<u64> {
        self.repl_u64("connected_replicas")
    }

    /// `master_link` on a replica: `"up"` or `"down"` (`None` on a
    /// primary, which reports no link).
    pub fn master_link(&mut self) -> std::io::Result<Option<String>> {
        Ok(find_field(&self.replication_info()?, "master_link"))
    }

    /// One integer field out of `INFO stats` (e.g. `"worker_panics"`,
    /// `"commands_served"`, `"eh_splits"`).
    pub fn stat_u64(&mut self, field: &str) -> std::io::Result<u64> {
        let text = self.stats_info()?;
        let value = find_field(&text, field).ok_or_else(|| {
            std::io::Error::new(
                ErrorKind::InvalidData,
                format!("INFO stats has no {field} field"),
            )
        })?;
        value.parse().map_err(|_| {
            std::io::Error::new(
                ErrorKind::InvalidData,
                format!("INFO stats {field} is not an integer: {value:?}"),
            )
        })
    }

    // ---- SLOWLOG ----------------------------------------------------------

    /// `SLOWLOG LEN`: entries currently retained in the ring.
    pub fn slowlog_len(&mut self) -> std::io::Result<i64> {
        match self.command(&[b"SLOWLOG", b"LEN"])? {
            Value::Integer(n) => Ok(n),
            other => Err(bad_reply("SLOWLOG LEN", &other)),
        }
    }

    /// `SLOWLOG RESET`: drop every retained entry (ids keep counting).
    pub fn slowlog_reset(&mut self) -> std::io::Result<()> {
        match self.command(&[b"SLOWLOG", b"RESET"])? {
            Value::Simple(s) if s == "OK" => Ok(()),
            other => Err(bad_reply("SLOWLOG RESET", &other)),
        }
    }

    /// `SLOWLOG GET n`: the most recent `n` slow commands, newest first.
    pub fn slowlog_get(&mut self, n: usize) -> std::io::Result<Vec<SlowlogEntry>> {
        let arg = n.to_string().into_bytes();
        let reply = self.command(&[b"SLOWLOG", b"GET", &arg])?;
        let Value::Array(items) = reply else {
            return Err(bad_reply("SLOWLOG GET", &reply));
        };
        items.into_iter().map(decode_slowlog_entry).collect()
    }

    fn integer_command(&mut self, name: &'static [u8], keys: &[&[u8]]) -> std::io::Result<i64> {
        let mut parts: Vec<&[u8]> = Vec::with_capacity(keys.len() + 1);
        parts.push(name);
        parts.extend_from_slice(keys);
        match self.command(&parts)? {
            Value::Integer(n) => Ok(n),
            other => Err(bad_reply(std::str::from_utf8(name).unwrap_or("?"), &other)),
        }
    }
}

/// One decoded `SLOWLOG GET` entry (the client-side mirror of the wire
/// array: id, unix time, duration µs, `[command, key prefix]`, worker).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SlowlogEntry {
    /// Monotonic id (survives wrap and `SLOWLOG RESET`).
    pub id: i64,
    /// Unix timestamp (seconds) when the command finished.
    pub unix_secs: i64,
    /// Execution time in microseconds.
    pub duration_us: i64,
    /// Uppercased command name.
    pub cmd: String,
    /// Prefix of the first argument (usually the key).
    pub key: String,
    /// The event-loop worker that executed it.
    pub worker: i64,
}

fn decode_slowlog_entry(value: Value) -> std::io::Result<SlowlogEntry> {
    let bad = || bad_reply("SLOWLOG GET", &Value::Nil);
    let Value::Array(fields) = value else { return Err(bad()) };
    let [Value::Integer(id), Value::Integer(unix_secs), Value::Integer(duration_us), Value::Array(cmd_parts), Value::Integer(worker)] =
        fields.as_slice()
    else {
        return Err(bad());
    };
    let [Value::Bulk(cmd), Value::Bulk(key)] = cmd_parts.as_slice() else {
        return Err(bad());
    };
    Ok(SlowlogEntry {
        id: *id,
        unix_secs: *unix_secs,
        duration_us: *duration_us,
        cmd: String::from_utf8_lossy(cmd).into_owned(),
        key: String::from_utf8_lossy(key).into_owned(),
        worker: *worker,
    })
}

// ---- cluster client -------------------------------------------------------

/// Redirect/retry counters accumulated by a [`ClusterClient`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClusterClientStats {
    /// `-MOVED` redirects followed (each updates the slot cache).
    pub moved: u64,
    /// `-ASK` redirects followed (one-shot, not cached).
    pub ask: u64,
    /// `-TRYAGAIN` retries (a migration flip in flight).
    pub tryagain: u64,
    /// Full topology refreshes via `CLUSTER SLOTS`.
    pub refreshes: u64,
}

/// A cluster-aware client: caches the slot→node map, follows `MOVED`
/// (updating the cache), retries `ASK` with `ASKING` at the named
/// target, waits out `TRYAGAIN` flips, and refreshes the topology from
/// any reachable node when a connection dies.
///
/// Connections use [`RespClient::connect_timeout`], so a killed node
/// costs one timeout, not a hang.
pub struct ClusterClient {
    seeds: Vec<String>,
    conns: std::collections::HashMap<String, RespClient>,
    /// Slot → owner cache; start empty, learn via `CLUSTER SLOTS` and
    /// `MOVED` replies.
    slots: Vec<Option<std::sync::Arc<str>>>,
    timeout: Duration,
    stats: ClusterClientStats,
}

/// Redirect hops per command before declaring a loop.
const MAX_HOPS: usize = 8;
/// `TRYAGAIN` retry budget: 120 × 25ms ≈ 3s, comfortably above the
/// server's 1s frozen-slot wait.
const MAX_TRYAGAIN: usize = 120;

impl ClusterClient {
    /// `seeds` is a comma-separated `host:port` list; the initial
    /// topology comes from the first seed that answers `CLUSTER SLOTS`.
    pub fn connect(seeds: &str, timeout: Duration) -> std::io::Result<Self> {
        let seeds: Vec<String> =
            seeds.split(',').map(str::trim).filter(|s| !s.is_empty()).map(String::from).collect();
        if seeds.is_empty() {
            return Err(std::io::Error::new(ErrorKind::InvalidInput, "no seed addresses"));
        }
        let mut client = ClusterClient {
            seeds,
            conns: std::collections::HashMap::new(),
            slots: vec![None; crate::cluster::slots::NUM_SLOTS as usize],
            timeout,
            stats: ClusterClientStats::default(),
        };
        client.refresh()?;
        Ok(client)
    }

    pub fn stats(&self) -> ClusterClientStats {
        self.stats
    }

    /// Distinct node addresses in the current slot cache (seed-order
    /// fallback when the cache is empty).
    pub fn known_nodes(&self) -> Vec<String> {
        let mut nodes: Vec<String> = Vec::new();
        for owner in self.slots.iter().flatten() {
            if !nodes.iter().any(|n| n.as_str() == &**owner) {
                nodes.push(owner.to_string());
            }
        }
        if nodes.is_empty() {
            nodes.extend(self.seeds.iter().cloned());
        }
        nodes
    }

    /// Re-learn the full slot map from the first reachable known node.
    pub fn refresh(&mut self) -> std::io::Result<()> {
        let mut candidates: Vec<String> = self.conns.keys().cloned().collect();
        candidates.extend(self.seeds.iter().cloned());
        let mut last_err: Option<std::io::Error> = None;
        for addr in candidates {
            let reply = match self.conn(&addr).and_then(|c| c.command(&[b"CLUSTER", b"SLOTS"])) {
                Ok(v) => v,
                Err(e) => {
                    self.conns.remove(&addr);
                    last_err = Some(e);
                    continue;
                }
            };
            let Value::Array(ranges) = reply else {
                last_err = Some(bad_reply("CLUSTER SLOTS", &reply));
                continue;
            };
            self.slots.fill(None);
            for range in &ranges {
                let Value::Array(parts) = range else { continue };
                let [Value::Integer(start), Value::Integer(end), Value::Bulk(addr)] =
                    parts.as_slice()
                else {
                    continue;
                };
                let owner: std::sync::Arc<str> =
                    std::sync::Arc::from(String::from_utf8_lossy(addr).into_owned());
                for slot in *start..=*end {
                    if let Some(entry) = self.slots.get_mut(slot as usize) {
                        *entry = Some(owner.clone());
                    }
                }
            }
            self.stats.refreshes += 1;
            return Ok(());
        }
        Err(last_err.unwrap_or_else(|| {
            std::io::Error::new(ErrorKind::NotConnected, "no cluster node reachable")
        }))
    }

    fn conn(&mut self, addr: &str) -> std::io::Result<&mut RespClient> {
        if !self.conns.contains_key(addr) {
            let client = RespClient::connect_timeout(addr, self.timeout)?;
            self.conns.insert(addr.to_string(), client);
        }
        Ok(self.conns.get_mut(addr).expect("just inserted"))
    }

    /// Route one keyed command: pick the cached owner of the key's
    /// slot, follow redirects, survive dead nodes. Non-redirect error
    /// replies come back as `Ok(Value::Error(..))`, like
    /// [`RespClient::command`].
    pub fn command_keyed(&mut self, key: &[u8], parts: &[&[u8]]) -> std::io::Result<Value> {
        let slot = key_slot(key);
        let mut ask_target: Option<String> = None;
        let mut tryagain_left = MAX_TRYAGAIN;
        let mut hops = 0usize;
        while hops < MAX_HOPS {
            let addr = match &ask_target {
                Some(a) => a.clone(),
                None => match &self.slots[slot as usize] {
                    Some(owner) => owner.to_string(),
                    None => {
                        // Unknown owner: learn the topology, else try a seed.
                        let _ = self.refresh();
                        self.slots[slot as usize]
                            .as_ref()
                            .map(|o| o.to_string())
                            .unwrap_or_else(|| self.seeds[0].clone())
                    }
                },
            };
            let asking = ask_target.take().is_some();
            let reply = match self.exchange(&addr, parts, asking) {
                Ok(v) => v,
                Err(_) => {
                    // Dead node: drop the connection, re-learn the
                    // topology (the migration may have completed or the
                    // node restarted) and retry.
                    self.conns.remove(&addr);
                    let _ = self.refresh();
                    hops += 1;
                    continue;
                }
            };
            if let Value::Error(e) = &reply {
                if let Some(rest) = e.strip_prefix("MOVED ") {
                    if let Some((_, owner)) = rest.split_once(' ') {
                        self.stats.moved += 1;
                        self.slots[slot as usize] = Some(std::sync::Arc::from(owner));
                        hops += 1;
                        continue;
                    }
                }
                if let Some(rest) = e.strip_prefix("ASK ") {
                    if let Some((_, target)) = rest.split_once(' ') {
                        self.stats.ask += 1;
                        ask_target = Some(target.to_string());
                        hops += 1;
                        continue;
                    }
                }
                if e.starts_with("TRYAGAIN") {
                    if tryagain_left == 0 {
                        return Err(std::io::Error::other(format!(
                            "slot {slot} still migrating after {MAX_TRYAGAIN} retries: {e}"
                        )));
                    }
                    tryagain_left -= 1;
                    std::thread::sleep(Duration::from_millis(25));
                    continue; // retries don't consume redirect hops
                }
            }
            return Ok(reply);
        }
        Err(std::io::Error::other(format!(
            "redirect loop: slot {slot} unresolved after {MAX_HOPS} redirects"
        )))
    }

    /// One request/reply against `addr`, optionally `ASKING`-prefixed.
    fn exchange(&mut self, addr: &str, parts: &[&[u8]], asking: bool) -> std::io::Result<Value> {
        let conn = self.conn(addr)?;
        if asking {
            conn.enqueue(&[b"ASKING"]);
        }
        conn.enqueue(parts);
        conn.flush()?;
        if asking {
            match conn.read_reply()? {
                Value::Simple(_) => {}
                other => return Err(bad_reply("ASKING", &other)),
            }
        }
        conn.read_reply()
    }

    pub fn set(&mut self, key: &[u8], value: &[u8]) -> std::io::Result<()> {
        match self.command_keyed(key, &[b"SET", key, value])? {
            Value::Simple(s) if s == "OK" => Ok(()),
            other => Err(bad_reply("SET", &other)),
        }
    }

    pub fn get(&mut self, key: &[u8]) -> std::io::Result<Option<Vec<u8>>> {
        match self.command_keyed(key, &[b"GET", key])? {
            Value::Bulk(b) => Ok(Some(b)),
            Value::Nil => Ok(None),
            other => Err(bad_reply("GET", &other)),
        }
    }

    pub fn del(&mut self, key: &[u8]) -> std::io::Result<i64> {
        match self.command_keyed(key, &[b"DEL", key])? {
            Value::Integer(n) => Ok(n),
            other => Err(bad_reply("DEL", &other)),
        }
    }
}

/// Find `field:value` in an INFO-style payload.
fn find_field(text: &str, field: &str) -> Option<String> {
    text.lines().find_map(|line| {
        line.trim_end()
            .split_once(':')
            .filter(|(k, _)| *k == field)
            .map(|(_, v)| v.to_string())
    })
}

fn bad_reply(cmd: &str, got: &Value) -> std::io::Error {
    std::io::Error::new(
        ErrorKind::InvalidData,
        format!("unexpected {cmd} reply: {got:?}"),
    )
}
