//! A minimal blocking RESP2 client with explicit pipelining — what
//! `dash-loadgen`, the integration tests and the CI smoke job speak to
//! the server with.
//!
//! `enqueue` buffers requests locally; `flush` ships the whole batch in
//! one write; `read_reply` then yields the replies in order. `command`
//! is the one-shot convenience wrapping all three.

use std::io::{ErrorKind, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use crate::cluster::slots::key_slot;
use crate::resp::{decode_value, encode_command, Decode, Value};

pub struct RespClient {
    stream: TcpStream,
    wbuf: Vec<u8>,
    rbuf: Vec<u8>,
    /// Bytes of `rbuf` already decoded into replies.
    rpos: usize,
}

impl RespClient {
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(RespClient { stream, wbuf: Vec::new(), rbuf: Vec::new(), rpos: 0 })
    }

    /// Connect with a deadline, and apply the same deadline to every
    /// subsequent read and write: a dead or wedged node fails fast with
    /// `TimedOut` instead of blocking forever. [`RespClient::connect`]
    /// keeps the historical fully-blocking behavior.
    pub fn connect_timeout(addr: &str, timeout: Duration) -> std::io::Result<Self> {
        let mut last_err = None;
        for resolved in addr.to_socket_addrs()? {
            match TcpStream::connect_timeout(&resolved, timeout) {
                Ok(stream) => {
                    stream.set_nodelay(true)?;
                    stream.set_read_timeout(Some(timeout))?;
                    stream.set_write_timeout(Some(timeout))?;
                    return Ok(RespClient { stream, wbuf: Vec::new(), rbuf: Vec::new(), rpos: 0 });
                }
                Err(e) => last_err = Some(e),
            }
        }
        Err(last_err.unwrap_or_else(|| {
            std::io::Error::new(ErrorKind::InvalidInput, format!("{addr:?} resolved to nothing"))
        }))
    }

    /// Append one command to the outgoing pipeline (not sent yet).
    pub fn enqueue(&mut self, parts: &[&[u8]]) {
        encode_command(parts, &mut self.wbuf);
    }

    /// Ship every enqueued command in one write.
    pub fn flush(&mut self) -> std::io::Result<()> {
        if !self.wbuf.is_empty() {
            self.stream.write_all(&self.wbuf)?;
            self.wbuf.clear();
        }
        Ok(())
    }

    /// Read the next reply (blocking).
    pub fn read_reply(&mut self) -> std::io::Result<Value> {
        loop {
            match decode_value(&self.rbuf[self.rpos..]) {
                Ok(Decode::Complete(v, used)) => {
                    self.rpos += used;
                    // Compact once the buffer is fully drained so long
                    // pipelines don't accumulate forever.
                    if self.rpos == self.rbuf.len() {
                        self.rbuf.clear();
                        self.rpos = 0;
                    }
                    return Ok(v);
                }
                Ok(Decode::Incomplete) => {
                    let mut chunk = [0u8; 16 * 1024];
                    let n = self.stream.read(&mut chunk).map_err(|e| {
                        // With a read timeout set, a silent server
                        // surfaces as WouldBlock/TimedOut depending on
                        // the platform; normalize to one clear error.
                        if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) {
                            std::io::Error::new(
                                ErrorKind::TimedOut,
                                "server did not reply within the read timeout",
                            )
                        } else {
                            e
                        }
                    })?;
                    if n == 0 {
                        return Err(std::io::Error::new(
                            ErrorKind::UnexpectedEof,
                            "server closed the connection mid-reply",
                        ));
                    }
                    self.rbuf.extend_from_slice(&chunk[..n]);
                }
                Err(e) => {
                    return Err(std::io::Error::new(ErrorKind::InvalidData, e.to_string()));
                }
            }
        }
    }

    /// Send one command and wait for its reply.
    pub fn command(&mut self, parts: &[&[u8]]) -> std::io::Result<Value> {
        self.enqueue(parts);
        self.flush()?;
        self.read_reply()
    }

    // ---- typed multi-key conveniences -------------------------------------
    //
    // One wire command per call (the server executes the whole key set
    // through the engine's shard-grouped batch paths), with the reply
    // decoded into the natural Rust shape. Server `-ERR` replies and
    // shape mismatches surface as `InvalidData` errors.

    /// `MGET`: values in key order, `None` for absent keys.
    pub fn mget(&mut self, keys: &[&[u8]]) -> std::io::Result<Vec<Option<Vec<u8>>>> {
        let mut parts: Vec<&[u8]> = Vec::with_capacity(keys.len() + 1);
        parts.push(b"MGET");
        parts.extend_from_slice(keys);
        match self.command(&parts)? {
            Value::Array(items) if items.len() == keys.len() => items
                .into_iter()
                .map(|v| match v {
                    Value::Bulk(b) => Ok(Some(b)),
                    Value::Nil => Ok(None),
                    other => Err(bad_reply("MGET", &other)),
                })
                .collect(),
            other => Err(bad_reply("MGET", &other)),
        }
    }

    /// `MSET`: store every pair; the single `+OK` covers the whole batch.
    pub fn mset(&mut self, pairs: &[(&[u8], &[u8])]) -> std::io::Result<()> {
        let mut parts: Vec<&[u8]> = Vec::with_capacity(pairs.len() * 2 + 1);
        parts.push(b"MSET");
        for (k, v) in pairs {
            parts.push(k);
            parts.push(v);
        }
        match self.command(&parts)? {
            Value::Simple(s) if s == "OK" => Ok(()),
            other => Err(bad_reply("MSET", &other)),
        }
    }

    /// Variadic `DEL`: how many of the keys existed and were removed.
    pub fn del(&mut self, keys: &[&[u8]]) -> std::io::Result<i64> {
        self.integer_command(b"DEL", keys)
    }

    /// Variadic `EXISTS`: how many of the keys are present (repeats count).
    pub fn exists(&mut self, keys: &[&[u8]]) -> std::io::Result<i64> {
        self.integer_command(b"EXISTS", keys)
    }

    /// One `SCAN` page: `(next_cursor, keys)`. Pass cursor `0` to start;
    /// a returned `0` means the iteration is complete (Redis semantics).
    pub fn scan(&mut self, cursor: u64, count: usize) -> std::io::Result<(u64, Vec<Vec<u8>>)> {
        let cursor_arg = cursor.to_string().into_bytes();
        let count_arg = count.to_string().into_bytes();
        let reply = self.command(&[b"SCAN", &cursor_arg, b"COUNT", &count_arg])?;
        let Value::Array(mut parts) = reply else {
            return Err(bad_reply("SCAN", &reply));
        };
        if parts.len() != 2 {
            return Err(bad_reply("SCAN", &Value::Array(parts)));
        }
        let keys_value = parts.pop().expect("len checked");
        let cursor_value = parts.pop().expect("len checked");
        let next = match &cursor_value {
            Value::Bulk(b) => std::str::from_utf8(b)
                .ok()
                .and_then(|s| s.parse::<u64>().ok())
                .ok_or_else(|| bad_reply("SCAN", &cursor_value))?,
            other => return Err(bad_reply("SCAN", other)),
        };
        let Value::Array(items) = keys_value else {
            return Err(bad_reply("SCAN", &keys_value));
        };
        let keys = items
            .into_iter()
            .map(|v| match v {
                Value::Bulk(b) => Ok(b),
                other => Err(bad_reply("SCAN", &other)),
            })
            .collect::<std::io::Result<Vec<_>>>()?;
        Ok((next, keys))
    }

    /// Drain a full `SCAN` iteration into one key list (the cursor-driven
    /// equivalent of `KEYS *`, but paged — safe against huge keyspaces).
    pub fn scan_all(&mut self, count: usize) -> std::io::Result<Vec<Vec<u8>>> {
        let mut all = Vec::new();
        let mut cursor = 0u64;
        loop {
            let (next, mut keys) = self.scan(cursor, count)?;
            all.append(&mut keys);
            if next == 0 {
                return Ok(all);
            }
            cursor = next;
        }
    }

    /// `SNAPSHOT`: ask the server to stream an online backup to `path`
    /// on **its** filesystem; returns the record count.
    pub fn snapshot(&mut self, path: &str) -> std::io::Result<i64> {
        match self.command(&[b"SNAPSHOT", path.as_bytes()])? {
            Value::Integer(n) => Ok(n),
            other => Err(bad_reply("SNAPSHOT", &other)),
        }
    }

    // ---- typed INFO accessors ---------------------------------------------
    //
    // INFO is `key:value` lines; these pull single fields out so
    // replication tooling (loadgen's --wait-sync, the CI failover
    // drill, tests) doesn't re-implement the parsing. Every section is
    // O(shards) except `keyspace`, whose `scan_len` ground truth walks
    // every bucket — that one is opt-in via [`RespClient::keyspace_info`]
    // and deliberately absent from the default payload, so a 10 Hz
    // poll never inflicts an O(total keys) scan on a live server.

    /// The raw default `INFO` payload: server, replication, stats,
    /// latency and per-shard lines — all O(shards), safe to poll.
    pub fn info(&mut self) -> std::io::Result<String> {
        self.info_payload(&[b"INFO"])
    }

    /// The raw `INFO replication` payload (cheap: no key counts).
    pub fn replication_info(&mut self) -> std::io::Result<String> {
        self.info_payload(&[b"INFO", b"replication"])
    }

    /// The raw `INFO stats` payload: connection/command totals, event-
    /// core health counters, engine and replication telemetry.
    pub fn stats_info(&mut self) -> std::io::Result<String> {
        self.info_payload(&[b"INFO", b"stats"])
    }

    /// The raw `INFO latency` payload: per-command-family counts and
    /// histogram-derived p50/p99/p999 in microseconds.
    pub fn latency_info(&mut self) -> std::io::Result<String> {
        self.info_payload(&[b"INFO", b"latency"])
    }

    /// The raw `INFO keyspace` payload. **O(total keys)**: contains the
    /// `scan_len` full-iteration ground truth next to the O(shards)
    /// counter — the drift check, priced accordingly.
    pub fn keyspace_info(&mut self) -> std::io::Result<String> {
        self.info_payload(&[b"INFO", b"keyspace"])
    }

    fn info_payload(&mut self, cmd: &[&[u8]]) -> std::io::Result<String> {
        match self.command(cmd)? {
            Value::Bulk(text) => String::from_utf8(text).map_err(|_| {
                std::io::Error::new(ErrorKind::InvalidData, "INFO payload is not UTF-8")
            }),
            other => Err(bad_reply("INFO", &other)),
        }
    }

    /// One `field:value` line out of the full `INFO` (`None` when the
    /// server doesn't report that field).
    pub fn info_field(&mut self, field: &str) -> std::io::Result<Option<String>> {
        Ok(find_field(&self.info()?, field))
    }

    fn repl_field(&mut self, field: &str) -> std::io::Result<String> {
        find_field(&self.replication_info()?, field).ok_or_else(|| {
            std::io::Error::new(
                ErrorKind::InvalidData,
                format!("INFO replication has no {field} field"),
            )
        })
    }

    fn repl_u64(&mut self, field: &str) -> std::io::Result<u64> {
        let value = self.repl_field(field)?;
        value.parse().map_err(|_| {
            std::io::Error::new(
                ErrorKind::InvalidData,
                format!("INFO {field} is not an integer: {value:?}"),
            )
        })
    }

    /// `role`: `"primary"` or `"replica"`.
    pub fn role(&mut self) -> std::io::Result<String> {
        self.repl_field("role")
    }

    /// `repl_offset`: the server's replication stream position. Equal
    /// on a primary and its caught-up replica once writes quiesce.
    pub fn repl_offset(&mut self) -> std::io::Result<u64> {
        self.repl_u64("repl_offset")
    }

    /// `connected_replicas`: live replica streams on a primary.
    pub fn connected_replicas(&mut self) -> std::io::Result<u64> {
        self.repl_u64("connected_replicas")
    }

    /// `master_link` on a replica: `"up"` or `"down"` (`None` on a
    /// primary, which reports no link).
    pub fn master_link(&mut self) -> std::io::Result<Option<String>> {
        Ok(find_field(&self.replication_info()?, "master_link"))
    }

    /// One integer field out of `INFO stats` (e.g. `"worker_panics"`,
    /// `"commands_served"`, `"eh_splits"`).
    pub fn stat_u64(&mut self, field: &str) -> std::io::Result<u64> {
        let text = self.stats_info()?;
        let value = find_field(&text, field).ok_or_else(|| {
            std::io::Error::new(
                ErrorKind::InvalidData,
                format!("INFO stats has no {field} field"),
            )
        })?;
        value.parse().map_err(|_| {
            std::io::Error::new(
                ErrorKind::InvalidData,
                format!("INFO stats {field} is not an integer: {value:?}"),
            )
        })
    }

    // ---- SLOWLOG ----------------------------------------------------------

    /// `SLOWLOG LEN`: entries currently retained in the ring.
    pub fn slowlog_len(&mut self) -> std::io::Result<i64> {
        match self.command(&[b"SLOWLOG", b"LEN"])? {
            Value::Integer(n) => Ok(n),
            other => Err(bad_reply("SLOWLOG LEN", &other)),
        }
    }

    /// `SLOWLOG RESET`: drop every retained entry (ids keep counting).
    pub fn slowlog_reset(&mut self) -> std::io::Result<()> {
        match self.command(&[b"SLOWLOG", b"RESET"])? {
            Value::Simple(s) if s == "OK" => Ok(()),
            other => Err(bad_reply("SLOWLOG RESET", &other)),
        }
    }

    /// `SLOWLOG GET n`: the most recent `n` slow commands, newest first.
    pub fn slowlog_get(&mut self, n: usize) -> std::io::Result<Vec<SlowlogEntry>> {
        let arg = n.to_string().into_bytes();
        let reply = self.command(&[b"SLOWLOG", b"GET", &arg])?;
        let Value::Array(items) = reply else {
            return Err(bad_reply("SLOWLOG GET", &reply));
        };
        items.into_iter().map(decode_slowlog_entry).collect()
    }

    // ---- TRACE ------------------------------------------------------------

    /// `TRACE ON [SAMPLE n]`: enable request tracing, optionally setting
    /// the 1-in-`n` sampling period.
    pub fn trace_on(&mut self, sample_every: Option<u64>) -> std::io::Result<()> {
        let reply = match sample_every {
            Some(n) => {
                let arg = n.to_string().into_bytes();
                self.command(&[b"TRACE", b"ON", b"SAMPLE", &arg])?
            }
            None => self.command(&[b"TRACE", b"ON"])?,
        };
        match reply {
            Value::Simple(s) if s == "OK" => Ok(()),
            other => Err(bad_reply("TRACE ON", &other)),
        }
    }

    /// `TRACE OFF`: stop capturing (rings keep their contents).
    pub fn trace_off(&mut self) -> std::io::Result<()> {
        match self.command(&[b"TRACE", b"OFF"])? {
            Value::Simple(s) if s == "OK" => Ok(()),
            other => Err(bad_reply("TRACE OFF", &other)),
        }
    }

    /// `TRACE DUMP n`: the most recent `n` captured spans, newest first.
    pub fn trace_dump(&mut self, n: usize) -> std::io::Result<Vec<TraceEntry>> {
        let arg = n.to_string().into_bytes();
        let reply = self.command(&[b"TRACE", b"DUMP", &arg])?;
        let Value::Array(items) = reply else {
            return Err(bad_reply("TRACE DUMP", &reply));
        };
        items.into_iter().map(decode_trace_entry).collect()
    }

    /// `TRACE GET id`: one span by server id **or** cross-hop origin id
    /// (`None` if it fell out of the flight recorder). The wire reply is
    /// an array of zero or one records.
    pub fn trace_get(&mut self, id: u64) -> std::io::Result<Option<TraceEntry>> {
        let arg = id.to_string().into_bytes();
        match self.command(&[b"TRACE", b"GET", &arg])? {
            Value::Nil => Ok(None),
            Value::Array(items) if items.is_empty() => Ok(None),
            Value::Array(mut items) if items.len() == 1 => {
                decode_trace_entry(items.pop().expect("len checked")).map(Some)
            }
            other => Err(bad_reply("TRACE GET", &other)),
        }
    }

    fn integer_command(&mut self, name: &'static [u8], keys: &[&[u8]]) -> std::io::Result<i64> {
        let mut parts: Vec<&[u8]> = Vec::with_capacity(keys.len() + 1);
        parts.push(name);
        parts.extend_from_slice(keys);
        match self.command(&parts)? {
            Value::Integer(n) => Ok(n),
            other => Err(bad_reply(std::str::from_utf8(name).unwrap_or("?"), &other)),
        }
    }
}

/// One decoded `SLOWLOG GET` entry (the client-side mirror of the wire
/// array: id, unix time, duration µs, `[command, key prefix]`, worker).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SlowlogEntry {
    /// Monotonic id (survives wrap and `SLOWLOG RESET`).
    pub id: i64,
    /// Unix timestamp (seconds) when the command finished.
    pub unix_secs: i64,
    /// Execution time in microseconds.
    pub duration_us: i64,
    /// Uppercased command name.
    pub cmd: String,
    /// Prefix of the first argument (usually the key).
    pub key: String,
    /// The event-loop worker that executed it.
    pub worker: i64,
    /// Per-stage nanoseconds in the server's stage order (queue_wait,
    /// parse, dispatch, lock_wait, execute, persist, reply_flush) —
    /// present when the slow command was also a captured trace.
    pub stages_ns: Option<Vec<i64>>,
}

fn decode_slowlog_entry(value: Value) -> std::io::Result<SlowlogEntry> {
    let bad = || bad_reply("SLOWLOG GET", &Value::Nil);
    let Value::Array(fields) = value else { return Err(bad()) };
    if fields.len() != 5 && fields.len() != 6 {
        return Err(bad());
    }
    let [Value::Integer(id), Value::Integer(unix_secs), Value::Integer(duration_us), Value::Array(cmd_parts), Value::Integer(worker)] =
        &fields[..5]
    else {
        return Err(bad());
    };
    let [Value::Bulk(cmd), Value::Bulk(key)] = cmd_parts.as_slice() else {
        return Err(bad());
    };
    let stages_ns = match fields.get(5) {
        None => None,
        Some(Value::Array(stages)) => Some(
            stages
                .iter()
                .map(|v| match v {
                    Value::Integer(ns) => Ok(*ns),
                    _ => Err(bad()),
                })
                .collect::<std::io::Result<Vec<i64>>>()?,
        ),
        Some(_) => return Err(bad()),
    };
    Ok(SlowlogEntry {
        id: *id,
        unix_secs: *unix_secs,
        duration_us: *duration_us,
        cmd: String::from_utf8_lossy(cmd).into_owned(),
        key: String::from_utf8_lossy(key).into_owned(),
        worker: *worker,
        stages_ns,
    })
}

/// One decoded `TRACE DUMP` / `TRACE GET` span: the wire record is a
/// flat field-name/value array, parsed here into the named fields plus
/// a `(stage name, ns)` list for the `*_ns` stage entries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEntry {
    pub id: i64,
    /// Cross-hop correlation id (equals `id` for local spans).
    pub origin: i64,
    /// Redirect hop count the span arrived with.
    pub hops: i64,
    pub unix_ms: i64,
    pub cmd: String,
    pub key: String,
    /// Event-loop worker id (`-1` = the replication apply thread).
    pub worker: i64,
    /// `sampled` / `threshold` / `forced` / `repl`.
    pub reason: String,
    /// Independently measured total, nanoseconds.
    pub total_ns: i64,
    /// `(stage, ns)` in server stage order, names without the `_ns`.
    pub stages_ns: Vec<(String, i64)>,
}

impl TraceEntry {
    /// One stage's nanoseconds by name (e.g. `"persist"`).
    pub fn stage_ns(&self, stage: &str) -> Option<i64> {
        self.stages_ns.iter().find(|(s, _)| s == stage).map(|&(_, ns)| ns)
    }

    /// Sum of all stage attributions — compare against `total_ns`.
    pub fn stage_sum_ns(&self) -> i64 {
        self.stages_ns.iter().map(|&(_, ns)| ns).sum()
    }
}

fn decode_trace_entry(value: Value) -> std::io::Result<TraceEntry> {
    let bad = || bad_reply("TRACE", &Value::Nil);
    let Value::Array(fields) = value else { return Err(bad()) };
    if !fields.len().is_multiple_of(2) {
        return Err(bad());
    }
    let mut entry = TraceEntry {
        id: 0,
        origin: 0,
        hops: 0,
        unix_ms: 0,
        cmd: String::new(),
        key: String::new(),
        worker: 0,
        reason: String::new(),
        total_ns: 0,
        stages_ns: Vec::new(),
    };
    for pair in fields.chunks_exact(2) {
        let Value::Bulk(name) = &pair[0] else { return Err(bad()) };
        let name = String::from_utf8_lossy(name);
        match (&*name, &pair[1]) {
            ("id", Value::Integer(n)) => entry.id = *n,
            ("origin", Value::Integer(n)) => entry.origin = *n,
            ("hops", Value::Integer(n)) => entry.hops = *n,
            ("unix_ms", Value::Integer(n)) => entry.unix_ms = *n,
            ("cmd", Value::Bulk(b)) => entry.cmd = String::from_utf8_lossy(b).into_owned(),
            ("key", Value::Bulk(b)) => entry.key = String::from_utf8_lossy(b).into_owned(),
            ("worker", Value::Integer(n)) => entry.worker = *n,
            ("reason", Value::Bulk(b)) => entry.reason = String::from_utf8_lossy(b).into_owned(),
            ("total_ns", Value::Integer(n)) => entry.total_ns = *n,
            (stage, Value::Integer(ns)) if stage.ends_with("_ns") => {
                entry.stages_ns.push((stage.trim_end_matches("_ns").to_string(), *ns));
            }
            _ => return Err(bad()),
        }
    }
    Ok(entry)
}

// ---- cluster client -------------------------------------------------------

/// Redirect/retry counters accumulated by a [`ClusterClient`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClusterClientStats {
    /// `-MOVED` redirects followed (each updates the slot cache).
    pub moved: u64,
    /// `-ASK` redirects followed (one-shot, not cached).
    pub ask: u64,
    /// `-TRYAGAIN` retries (a migration flip in flight).
    pub tryagain: u64,
    /// Full topology refreshes via `CLUSTER SLOTS`.
    pub refreshes: u64,
}

/// A cluster-aware client: caches the slot→node map, follows `MOVED`
/// (updating the cache), retries `ASK` with `ASKING` at the named
/// target, waits out `TRYAGAIN` flips, and refreshes the topology from
/// any reachable node when a connection dies.
///
/// Connections use [`RespClient::connect_timeout`], so a killed node
/// costs one timeout, not a hang.
pub struct ClusterClient {
    seeds: Vec<String>,
    conns: std::collections::HashMap<String, RespClient>,
    /// Slot → owner cache; start empty, learn via `CLUSTER SLOTS` and
    /// `MOVED` replies.
    slots: Vec<Option<std::sync::Arc<str>>>,
    timeout: Duration,
    stats: ClusterClientStats,
    /// Force-trace every Nth keyed command via `TRACEID` (0 = never).
    trace_every: u64,
    trace_tick: u64,
    /// Server-assigned id of the most recent forced trace (for
    /// `TRACE GET` on whichever node ended up serving it).
    last_trace_id: u64,
}

/// Redirect hops per command before declaring a loop.
const MAX_HOPS: usize = 8;
/// `TRYAGAIN` retry budget: 120 × 25ms ≈ 3s, comfortably above the
/// server's 1s frozen-slot wait.
const MAX_TRYAGAIN: usize = 120;

impl ClusterClient {
    /// `seeds` is a comma-separated `host:port` list; the initial
    /// topology comes from the first seed that answers `CLUSTER SLOTS`.
    pub fn connect(seeds: &str, timeout: Duration) -> std::io::Result<Self> {
        let seeds: Vec<String> =
            seeds.split(',').map(str::trim).filter(|s| !s.is_empty()).map(String::from).collect();
        if seeds.is_empty() {
            return Err(std::io::Error::new(ErrorKind::InvalidInput, "no seed addresses"));
        }
        let mut client = ClusterClient {
            seeds,
            conns: std::collections::HashMap::new(),
            slots: vec![None; crate::cluster::slots::NUM_SLOTS as usize],
            timeout,
            stats: ClusterClientStats::default(),
            trace_every: 0,
            trace_tick: 0,
            last_trace_id: 0,
        };
        client.refresh()?;
        Ok(client)
    }

    pub fn stats(&self) -> ClusterClientStats {
        self.stats
    }

    /// Force-trace every `n`th keyed command (0 disables). The trace id
    /// is carried across `MOVED`/`ASK` redirects with an incremented
    /// hop count, so the final server's record shows the whole journey.
    pub fn set_trace_every(&mut self, n: u64) {
        self.trace_every = n;
        self.trace_tick = 0;
    }

    /// Server-assigned id of the most recent forced trace (0 = none
    /// yet). Look it up with `TRACE GET` on the serving node.
    pub fn last_trace_id(&self) -> u64 {
        self.last_trace_id
    }

    /// Distinct node addresses in the current slot cache (seed-order
    /// fallback when the cache is empty).
    pub fn known_nodes(&self) -> Vec<String> {
        let mut nodes: Vec<String> = Vec::new();
        for owner in self.slots.iter().flatten() {
            if !nodes.iter().any(|n| n.as_str() == &**owner) {
                nodes.push(owner.to_string());
            }
        }
        if nodes.is_empty() {
            nodes.extend(self.seeds.iter().cloned());
        }
        nodes
    }

    /// Re-learn the full slot map from the first reachable known node.
    pub fn refresh(&mut self) -> std::io::Result<()> {
        let mut candidates: Vec<String> = self.conns.keys().cloned().collect();
        candidates.extend(self.seeds.iter().cloned());
        let mut last_err: Option<std::io::Error> = None;
        for addr in candidates {
            let reply = match self.conn(&addr).and_then(|c| c.command(&[b"CLUSTER", b"SLOTS"])) {
                Ok(v) => v,
                Err(e) => {
                    self.conns.remove(&addr);
                    last_err = Some(e);
                    continue;
                }
            };
            let Value::Array(ranges) = reply else {
                last_err = Some(bad_reply("CLUSTER SLOTS", &reply));
                continue;
            };
            self.slots.fill(None);
            for range in &ranges {
                let Value::Array(parts) = range else { continue };
                let [Value::Integer(start), Value::Integer(end), Value::Bulk(addr)] =
                    parts.as_slice()
                else {
                    continue;
                };
                let owner: std::sync::Arc<str> =
                    std::sync::Arc::from(String::from_utf8_lossy(addr).into_owned());
                for slot in *start..=*end {
                    if let Some(entry) = self.slots.get_mut(slot as usize) {
                        *entry = Some(owner.clone());
                    }
                }
            }
            self.stats.refreshes += 1;
            return Ok(());
        }
        Err(last_err.unwrap_or_else(|| {
            std::io::Error::new(ErrorKind::NotConnected, "no cluster node reachable")
        }))
    }

    fn conn(&mut self, addr: &str) -> std::io::Result<&mut RespClient> {
        if !self.conns.contains_key(addr) {
            let client = RespClient::connect_timeout(addr, self.timeout)?;
            self.conns.insert(addr.to_string(), client);
        }
        Ok(self.conns.get_mut(addr).expect("just inserted"))
    }

    /// Route one keyed command: pick the cached owner of the key's
    /// slot, follow redirects, survive dead nodes. Non-redirect error
    /// replies come back as `Ok(Value::Error(..))`, like
    /// [`RespClient::command`].
    pub fn command_keyed(&mut self, key: &[u8], parts: &[&[u8]]) -> std::io::Result<Value> {
        let slot = key_slot(key);
        let mut ask_target: Option<String> = None;
        let mut tryagain_left = MAX_TRYAGAIN;
        let mut hops = 0usize;
        // One trace id per command, carried across redirects: 0 asks the
        // first server to assign one; later hops propagate it.
        let mut trace: Option<u64> = if self.trace_every > 0 {
            let tick = self.trace_tick;
            self.trace_tick += 1;
            tick.is_multiple_of(self.trace_every).then_some(0)
        } else {
            None
        };
        while hops < MAX_HOPS {
            let addr = match &ask_target {
                Some(a) => a.clone(),
                None => match &self.slots[slot as usize] {
                    Some(owner) => owner.to_string(),
                    None => {
                        // Unknown owner: learn the topology, else try a seed.
                        let _ = self.refresh();
                        self.slots[slot as usize]
                            .as_ref()
                            .map(|o| o.to_string())
                            .unwrap_or_else(|| self.seeds[0].clone())
                    }
                },
            };
            let asking = ask_target.take().is_some();
            let traced = trace.map(|id| (id, hops as u32));
            let reply = match self.exchange(&addr, parts, asking, traced) {
                Ok((v, assigned)) => {
                    if let Some(tid) = trace.as_mut() {
                        *tid = assigned;
                        self.last_trace_id = assigned;
                    }
                    v
                }
                Err(_) => {
                    // Dead node: drop the connection, re-learn the
                    // topology (the migration may have completed or the
                    // node restarted) and retry.
                    self.conns.remove(&addr);
                    let _ = self.refresh();
                    hops += 1;
                    continue;
                }
            };
            if let Value::Error(e) = &reply {
                if let Some(rest) = e.strip_prefix("MOVED ") {
                    if let Some((_, owner)) = rest.split_once(' ') {
                        self.stats.moved += 1;
                        self.slots[slot as usize] = Some(std::sync::Arc::from(owner));
                        hops += 1;
                        continue;
                    }
                }
                if let Some(rest) = e.strip_prefix("ASK ") {
                    if let Some((_, target)) = rest.split_once(' ') {
                        self.stats.ask += 1;
                        ask_target = Some(target.to_string());
                        hops += 1;
                        continue;
                    }
                }
                if e.starts_with("TRYAGAIN") {
                    if tryagain_left == 0 {
                        return Err(std::io::Error::other(format!(
                            "slot {slot} still migrating after {MAX_TRYAGAIN} retries: {e}"
                        )));
                    }
                    tryagain_left -= 1;
                    std::thread::sleep(Duration::from_millis(25));
                    continue; // retries don't consume redirect hops
                }
            }
            return Ok(reply);
        }
        Err(std::io::Error::other(format!(
            "redirect loop: slot {slot} unresolved after {MAX_HOPS} redirects"
        )))
    }

    /// One request/reply against `addr`, optionally `ASKING`-prefixed
    /// and/or `TRACEID`-prefixed (returns the server-assigned trace id,
    /// 0 when untraced). `ASKING` goes first: `TRACEID` forces capture
    /// of the *next* command, which must be the real one.
    fn exchange(
        &mut self,
        addr: &str,
        parts: &[&[u8]],
        asking: bool,
        trace: Option<(u64, u32)>,
    ) -> std::io::Result<(Value, u64)> {
        let conn = self.conn(addr)?;
        if asking {
            conn.enqueue(&[b"ASKING"]);
        }
        if let Some((id, hops)) = trace {
            let id_arg = id.to_string().into_bytes();
            let hops_arg = hops.to_string().into_bytes();
            conn.enqueue(&[b"TRACEID", &id_arg, &hops_arg]);
        }
        conn.enqueue(parts);
        conn.flush()?;
        if asking {
            match conn.read_reply()? {
                Value::Simple(_) => {}
                other => return Err(bad_reply("ASKING", &other)),
            }
        }
        let mut assigned = trace.map_or(0, |(id, _)| id);
        if trace.is_some() {
            match conn.read_reply()? {
                Value::Integer(n) if n > 0 => assigned = n as u64,
                other => return Err(bad_reply("TRACEID", &other)),
            }
        }
        Ok((conn.read_reply()?, assigned))
    }

    pub fn set(&mut self, key: &[u8], value: &[u8]) -> std::io::Result<()> {
        match self.command_keyed(key, &[b"SET", key, value])? {
            Value::Simple(s) if s == "OK" => Ok(()),
            other => Err(bad_reply("SET", &other)),
        }
    }

    pub fn get(&mut self, key: &[u8]) -> std::io::Result<Option<Vec<u8>>> {
        match self.command_keyed(key, &[b"GET", key])? {
            Value::Bulk(b) => Ok(Some(b)),
            Value::Nil => Ok(None),
            other => Err(bad_reply("GET", &other)),
        }
    }

    pub fn del(&mut self, key: &[u8]) -> std::io::Result<i64> {
        match self.command_keyed(key, &[b"DEL", key])? {
            Value::Integer(n) => Ok(n),
            other => Err(bad_reply("DEL", &other)),
        }
    }
}

/// Find `field:value` in an INFO-style payload.
fn find_field(text: &str, field: &str) -> Option<String> {
    text.lines().find_map(|line| {
        line.trim_end()
            .split_once(':')
            .filter(|(k, _)| *k == field)
            .map(|(_, v)| v.to_string())
    })
}

fn bad_reply(cmd: &str, got: &Value) -> std::io::Error {
    std::io::Error::new(
        ErrorKind::InvalidData,
        format!("unexpected {cmd} reply: {got:?}"),
    )
}
