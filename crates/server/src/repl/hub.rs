//! The in-memory replication fan-out: a store-wide monotonic offset and
//! the set of live replica sinks.
//!
//! Every applied mutation is published here (by the shard that applied
//! it, after its table update and redo-log append), which assigns the
//! op the next offset and hands it to every subscribed replica stream.
//! The publish path must not re-serialize the shards it exists to fan
//! out, so it takes only a **read** lock on the sink list plus one
//! atomic for the offset; subscribing takes the write lock. That still
//! gives a subscriber an exact cut: the write lock excludes every
//! in-flight publish, so every op whose offset was assigned before the
//! subscription existed was fully applied to the tables first (and is
//! therefore visible to a snapshot scan started afterwards), and every
//! later publish sees the sink and delivers through the channel. That
//! is the whole correctness argument for snapshot+tail bootstrap.
//!
//! Sinks are budgeted, not blocking: a replica that stops draining (or
//! falls behind an entire bootstrap transfer plus [`MAX_QUEUED_OPS`]
//! ops) is marked overflowed — its stream sees a disconnect and the
//! replica re-syncs — so the primary's memory is never held hostage by
//! a slow follower, while the budget is deep enough that a bootstrap
//! under heavy write load doesn't trivially evict the new sink before
//! its snapshot even finishes sending.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{channel, Receiver, RecvTimeoutError, Sender, TryRecvError};
use std::sync::Arc;

use parking_lot::RwLock;

use crate::repl::ReplOp;

/// What a sink actually carries: the op plus the id of the trace span
/// that produced it (0 = untraced). The id rides *alongside* the op —
/// the `ReplOp` itself, and therefore the redo-log record format, is
/// unchanged; only the live fan-out learns trace identity. The stream
/// thread turns a nonzero id into a `TRACEID` command ahead of the op
/// so the replica records its apply under the primary's span id.
#[derive(Debug, Clone)]
pub struct TracedOp {
    pub op: Arc<ReplOp>,
    pub trace_id: u64,
}

/// Ops a sink may hold queued before it is dropped as too slow. At a
/// ~100-byte average op this bounds a stalled replica's cost at
/// ~100 MB — the same order as Redis's default replica output-buffer
/// limit — while covering several seconds of full-rate writes during a
/// bootstrap snapshot transfer.
pub const MAX_QUEUED_OPS: u64 = 1 << 20;

struct Sink {
    id: u64,
    tx: Sender<TracedOp>,
    /// Ops sent but not yet drained by the stream thread.
    queued: Arc<AtomicU64>,
    /// Set once the budget was blown or the receiver went away; the
    /// sink is skipped from then on (its stream has a gap, so the only
    /// correct continuation is a fresh full sync).
    overflowed: Arc<AtomicBool>,
}

/// Offset counter + replica fan-out. One per
/// [`ShardedDash`](crate::engine::ShardedDash), shared by all its shards.
pub struct ReplHub {
    offset: AtomicU64,
    next_id: AtomicU64,
    sinks: RwLock<Vec<Sink>>,
}

impl Default for ReplHub {
    fn default() -> Self {
        Self::new()
    }
}

impl ReplHub {
    pub fn new() -> Self {
        ReplHub {
            offset: AtomicU64::new(0),
            next_id: AtomicU64::new(0),
            sinks: RwLock::new(Vec::new()),
        }
    }

    /// Current replication offset: ops published since store creation
    /// (recovered from the redo logs on open).
    pub fn offset(&self) -> u64 {
        self.offset.load(Ordering::SeqCst)
    }

    /// Seed the offset at open time (sum of recovered log records).
    pub fn set_offset(&self, offset: u64) {
        self.offset.store(offset, Ordering::SeqCst);
    }

    /// Live (non-overflowed) replica sinks.
    pub fn sink_count(&self) -> usize {
        self.sinks.read().iter().filter(|s| !s.overflowed.load(Ordering::Relaxed)).count()
    }

    /// `(sink id, queued ops)` for every live sink — the per-replica lag
    /// surfaced by `INFO stats` and the metrics endpoint. A sink's
    /// acknowledged position is the hub offset minus its queued count.
    pub fn sink_lags(&self) -> Vec<(u64, u64)> {
        self.sinks
            .read()
            .iter()
            .filter(|s| !s.overflowed.load(Ordering::Relaxed))
            .map(|s| (s.id, s.queued.load(Ordering::Relaxed)))
            .collect()
    }

    /// Publish one op: bump the offset and fan the op out to every live
    /// sink. `make` is only invoked when a sink exists — with no
    /// replicas connected the publish is the atomic bump under an
    /// uncontended read lock, so shards publish concurrently.
    pub fn publish_with(&self, make: impl FnOnce() -> ReplOp) {
        let sinks = self.sinks.read();
        // Assigned while holding the read lock: a subscriber's write
        // lock therefore cleanly separates "offset ≤ start, not
        // delivered" from "offset > start, delivered".
        self.offset.fetch_add(1, Ordering::SeqCst);
        if sinks.is_empty() {
            return;
        }
        // Publishes run on the thread that executed the command, so the
        // active trace span (if any) is this thread-local — the op it
        // produced inherits the span's identity.
        let trace_id = crate::trace::current_span_id();
        let mut make = Some(make);
        let mut op: Option<Arc<ReplOp>> = None;
        for s in sinks.iter() {
            if s.overflowed.load(Ordering::Relaxed) {
                continue;
            }
            if s.queued.fetch_add(1, Ordering::SeqCst) >= MAX_QUEUED_OPS {
                s.overflowed.store(true, Ordering::SeqCst);
                continue;
            }
            let msg = match &op {
                Some(a) => a.clone(),
                None => {
                    let a = Arc::new((make.take().expect("op built once"))());
                    op = Some(a.clone());
                    a
                }
            };
            if s.tx.send(TracedOp { op: msg, trace_id }).is_err() {
                s.overflowed.store(true, Ordering::SeqCst);
            }
        }
    }

    /// Register a replica stream. The returned subscription's
    /// `start_offset` is the exact cut described in the module docs.
    pub fn subscribe(self: &Arc<Self>) -> ReplSubscription {
        let (tx, rx) = channel();
        let queued = Arc::new(AtomicU64::new(0));
        let overflowed = Arc::new(AtomicBool::new(false));
        let id = self.next_id.fetch_add(1, Ordering::SeqCst);
        let mut sinks = self.sinks.write();
        let start_offset = self.offset.load(Ordering::SeqCst);
        sinks.push(Sink { id, tx, queued: queued.clone(), overflowed: overflowed.clone() });
        drop(sinks);
        ReplSubscription { hub: self.clone(), id, start_offset, rx, queued, overflowed }
    }

    fn unsubscribe(&self, id: u64) {
        self.sinks.write().retain(|s| s.id != id);
    }
}

/// A live replica stream's end of the hub; dropping it deregisters the
/// sink (so `connected_replicas` is accurate even for idle primaries).
pub struct ReplSubscription {
    hub: Arc<ReplHub>,
    id: u64,
    /// Offset of the cut: every op ≤ this is visible to a snapshot scan
    /// started after `subscribe` returned; every later op arrives via
    /// [`recv_timeout`](Self::recv_timeout).
    pub start_offset: u64,
    rx: Receiver<TracedOp>,
    queued: Arc<AtomicU64>,
    overflowed: Arc<AtomicBool>,
}

impl ReplSubscription {
    /// Receive the next op. Reports `Disconnected` the moment the sink
    /// overflowed — the stream has a gap, so draining the remainder
    /// would only delay the full re-sync the replica now needs.
    pub fn recv_timeout(&self, timeout: std::time::Duration) -> Result<TracedOp, RecvTimeoutError> {
        if self.overflowed.load(Ordering::SeqCst) {
            return Err(RecvTimeoutError::Disconnected);
        }
        let op = self.rx.recv_timeout(timeout)?;
        self.queued.fetch_sub(1, Ordering::SeqCst);
        Ok(op)
    }

    /// Non-blocking receive, same overflow semantics.
    pub fn try_recv(&self) -> Result<TracedOp, TryRecvError> {
        if self.overflowed.load(Ordering::SeqCst) {
            return Err(TryRecvError::Disconnected);
        }
        let op = self.rx.try_recv()?;
        self.queued.fetch_sub(1, Ordering::SeqCst);
        Ok(op)
    }
}

impl Drop for ReplSubscription {
    fn drop(&mut self) {
        self.hub.unsubscribe(self.id);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn set(i: u32) -> ReplOp {
        ReplOp::Set { key: format!("k{i}").into_bytes(), value: b"v".to_vec() }
    }

    #[test]
    fn offsets_count_even_without_sinks() {
        let hub = Arc::new(ReplHub::new());
        hub.set_offset(40);
        for i in 0..10 {
            hub.publish_with(|| set(i));
        }
        assert_eq!(hub.offset(), 50);
        assert_eq!(hub.sink_count(), 0);
    }

    #[test]
    fn subscriber_sees_exactly_the_ops_after_its_cut() {
        let hub = Arc::new(ReplHub::new());
        hub.publish_with(|| set(0));
        let sub = hub.subscribe();
        assert_eq!(sub.start_offset, 1);
        assert_eq!(hub.sink_count(), 1);
        hub.publish_with(|| set(1));
        hub.publish_with(|| set(2));
        assert_eq!(*sub.recv_timeout(Duration::from_secs(5)).unwrap().op, set(1));
        assert_eq!(*sub.recv_timeout(Duration::from_secs(5)).unwrap().op, set(2));
        drop(sub);
        assert_eq!(hub.sink_count(), 0, "drop must deregister");
        hub.publish_with(|| set(3)); // no sink → lazily skipped, offset still moves
        assert_eq!(hub.offset(), 4);
    }

    #[test]
    fn concurrent_publishers_from_many_threads_never_lose_an_offset() {
        let hub = Arc::new(ReplHub::new());
        let sub = hub.subscribe();
        std::thread::scope(|s| {
            for t in 0..4u32 {
                let hub = hub.clone();
                s.spawn(move || {
                    for i in 0..500 {
                        hub.publish_with(|| set(t * 1000 + i));
                    }
                });
            }
        });
        assert_eq!(hub.offset(), 2000);
        let mut got = 0;
        while sub.try_recv().is_ok() {
            got += 1;
        }
        assert_eq!(got, 2000, "every published op must reach the sink exactly once");
    }

    #[test]
    fn slow_sink_is_dropped_not_blocked_on() {
        let hub = Arc::new(ReplHub::new());
        let sub = hub.subscribe();
        for i in 0..(MAX_QUEUED_OPS as u32 + 10) {
            hub.publish_with(|| set(i));
        }
        assert_eq!(hub.sink_count(), 0, "an over-budget sink must stop counting as live");
        // The stream side sees a disconnect immediately (no pointless
        // drain of a gapped stream) and re-syncs from scratch.
        assert!(matches!(
            sub.recv_timeout(Duration::from_millis(10)),
            Err(RecvTimeoutError::Disconnected)
        ));
        // Offsets kept counting throughout.
        assert_eq!(hub.offset(), MAX_QUEUED_OPS + 10);
    }

    #[test]
    fn ops_published_under_a_span_carry_its_trace_id() {
        let hub = Arc::new(ReplHub::new());
        let sub = hub.subscribe();
        hub.publish_with(|| set(0));
        crate::trace::begin_span(99);
        hub.publish_with(|| set(1));
        crate::trace::end_span(std::time::Instant::now(), 0);
        hub.publish_with(|| set(2));
        let ids: Vec<u64> = (0..3)
            .map(|_| sub.recv_timeout(Duration::from_secs(5)).unwrap().trace_id)
            .collect();
        assert_eq!(ids, vec![0, 99, 0], "only the op under the span is tagged");
    }
}
