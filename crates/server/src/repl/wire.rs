//! The on-disk framing shared by `dash-server`'s checksummed file
//! formats (the snapshot format and the replication redo log): a 16-byte
//! versioned header, FNV-1a integrity checksums, and a bounds-checked
//! little-endian parser. Each format keeps its own record layout; what
//! lives here is everything they would otherwise duplicate.

/// Running FNV-1a 64 (not cryptographic — an integrity check against
/// torn writes and bit rot, not an authenticity check).
#[derive(Clone, Copy, Default)]
pub struct Fnv(u64);

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

impl Fnv {
    pub fn new() -> Self {
        Fnv(FNV_OFFSET)
    }

    pub fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
    }

    pub fn value(&self) -> u64 {
        self.0
    }
}

/// One-shot FNV-1a of `bytes`.
pub fn fnv64(bytes: &[u8]) -> u64 {
    let mut f = Fnv::new();
    f.update(bytes);
    f.value()
}

/// The 16-byte file header every checksummed format starts with: a
/// format magic, a format version, and one format-defined `meta` word
/// (the snapshot stores its source shard count there, the redo log its
/// shard index).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FileHeader {
    pub magic: u64,
    pub version: u32,
    pub meta: u32,
}

impl FileHeader {
    pub const LEN: usize = 16;

    pub fn encode(&self) -> [u8; Self::LEN] {
        let mut out = [0u8; Self::LEN];
        out[..8].copy_from_slice(&self.magic.to_le_bytes());
        out[8..12].copy_from_slice(&self.version.to_le_bytes());
        out[12..].copy_from_slice(&self.meta.to_le_bytes());
        out
    }

    /// Parse and validate a header against the expected magic/version;
    /// returns the format's `meta` word. `kind` names the format in
    /// error messages ("snapshot", "repl log").
    pub fn read(p: &mut Parser<'_>, magic: u64, version: u32, kind: &str) -> Result<u32, String> {
        if p.u64("magic")? != magic {
            return Err(format!("bad magic: not a dash {kind} file"));
        }
        let got = p.u32("version")?;
        if got != version {
            return Err(format!("unsupported {kind} version {got}"));
        }
        p.u32("meta")
    }
}

/// Bounds-checked cursor over a byte buffer; every error message says
/// what was being read and where it fell off the end.
pub struct Parser<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    pub fn new(buf: &'a [u8]) -> Self {
        Parser { buf, pos: 0 }
    }

    pub fn pos(&self) -> usize {
        self.pos
    }

    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    pub fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8], String> {
        if self.remaining() < n {
            return Err(format!("truncated file: {what} at offset {}", self.pos));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    pub fn u8(&mut self, what: &str) -> Result<u8, String> {
        Ok(self.take(1, what)?[0])
    }

    pub fn u32(&mut self, what: &str) -> Result<u32, String> {
        Ok(u32::from_le_bytes(self.take(4, what)?.try_into().unwrap()))
    }

    pub fn u64(&mut self, what: &str) -> Result<u64, String> {
        Ok(u64::from_le_bytes(self.take(8, what)?.try_into().unwrap()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_matches_known_vector() {
        // FNV-1a 64 of "a" is a published test vector.
        assert_eq!(fnv64(b"a"), 0xaf63dc4c8601ec8c);
        assert_eq!(fnv64(b""), FNV_OFFSET);
        let mut split = Fnv::new();
        split.update(b"hello ");
        split.update(b"world");
        assert_eq!(split.value(), fnv64(b"hello world"), "incremental == one-shot");
    }

    #[test]
    fn header_roundtrip_and_rejection() {
        let h = FileHeader { magic: 0x1122_3344_5566_7788, version: 3, meta: 9 };
        let bytes = h.encode();
        let mut p = Parser::new(&bytes);
        assert_eq!(FileHeader::read(&mut p, h.magic, 3, "test").unwrap(), 9);
        assert_eq!(p.pos(), FileHeader::LEN);
        let mut p = Parser::new(&bytes);
        assert!(FileHeader::read(&mut p, h.magic + 1, 3, "test").unwrap_err().contains("magic"));
        let mut p = Parser::new(&bytes);
        assert!(FileHeader::read(&mut p, h.magic, 4, "test").unwrap_err().contains("version"));
        let mut p = Parser::new(&bytes[..10]);
        assert!(FileHeader::read(&mut p, h.magic, 3, "test").unwrap_err().contains("truncated"));
    }

    #[test]
    fn parser_bounds() {
        let mut p = Parser::new(&[1, 0, 0, 0, 2]);
        assert_eq!(p.u32("x").unwrap(), 1);
        assert_eq!(p.u8("y").unwrap(), 2);
        assert_eq!(p.remaining(), 0);
        let e = p.u8("z").unwrap_err();
        assert!(e.contains("z at offset 5"), "{e}");
    }
}
