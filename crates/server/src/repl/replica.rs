//! The replica-side sync loop: connect to the primary, bootstrap from
//! the `PSYNC` snapshot+tail stream, apply the tail through the engine's
//! batch write API, reconnect (with a fresh full sync) whenever the link
//! drops, and stop the moment the server is promoted or shut down.
//!
//! Runs on one background thread owned by the server
//! ([`crate::serve_with`] spawns it, shutdown joins it). All reads are
//! under a short timeout so the loop notices shutdown/promotion within
//! ~100 ms even when the primary is silent.

use std::io::{self, ErrorKind, Read, Write};
use std::net::TcpStream;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Duration;

use crate::repl::ReplOp;
use crate::resp::{decode_command, decode_value, encode_command, Decode, Value};
use crate::server::{Inner, Role};
use crate::snapshot;

/// How long one blocking read may sit before the loop re-checks
/// shutdown/promotion.
const READ_POLL: Duration = Duration::from_millis(100);
/// Ceiling on the `$len` a FULLRESYNC bulk may claim (a corrupt length
/// prefix must not make the replica reserve gigabytes). Generous: a
/// snapshot is bounded by the primary's pools.
const MAX_SNAPSHOT_BYTES: usize = 4 << 30;

/// Should the sync loop stop (promotion or server shutdown)?
/// Promotion raises `sync_stop` *before* flipping the role and joins
/// this thread before accepting writes — see `Inner::promote`.
fn stopping(inner: &Inner) -> bool {
    inner.shutdown.load(Ordering::SeqCst)
        || inner.sync_stop.load(Ordering::SeqCst)
        || inner.role() != Role::Replica
}

/// The sync thread's entry point: keep a replication session alive
/// against `master` until promoted or shut down.
pub(crate) fn run(inner: Arc<Inner>, master: String) {
    let mut announced_down = false;
    while !stopping(&inner) {
        match session(&inner, &master) {
            // A session only returns Ok when stopping — fall out.
            Ok(()) => break,
            Err(e) => {
                // Each failed session costs a fresh full sync on the
                // next attempt — worth a counter (`repl_reconnects`).
                inner.metrics.repl_reconnects.incr();
                // A drop after an established link is a fresh outage:
                // announce it even if an earlier one was announced too.
                if inner.link_up.swap(false, Ordering::SeqCst) {
                    announced_down = false;
                }
                if !announced_down {
                    crate::log_warn!("repl", "replication link to {master}: {e}; retrying");
                    announced_down = true;
                }
                // Brief backoff, still responsive to shutdown/promote.
                for _ in 0..6 {
                    if stopping(&inner) {
                        break;
                    }
                    std::thread::sleep(Duration::from_millis(50));
                }
            }
        }
    }
    inner.link_up.store(false, Ordering::SeqCst);
}

/// A buffered connection to the primary with incremental decoding.
struct Conn {
    stream: TcpStream,
    rbuf: Vec<u8>,
    pos: usize,
}

impl Conn {
    fn connect(master: &str) -> io::Result<Conn> {
        let stream = TcpStream::connect(master)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(READ_POLL))?;
        stream.set_write_timeout(Some(Duration::from_secs(30)))?;
        Ok(Conn { stream, rbuf: Vec::new(), pos: 0 })
    }

    fn send(&mut self, parts: &[&[u8]]) -> io::Result<()> {
        let mut wire = Vec::new();
        encode_command(parts, &mut wire);
        self.stream.write_all(&wire)
    }

    /// One read into the buffer. `Ok(false)` = timeout (nothing read),
    /// `Ok(true)` = bytes arrived, `Err(UnexpectedEof)` = primary gone.
    fn fill(&mut self) -> io::Result<bool> {
        let mut chunk = [0u8; 64 * 1024];
        match self.stream.read(&mut chunk) {
            Ok(0) => Err(io::Error::new(ErrorKind::UnexpectedEof, "primary closed the stream")),
            Ok(n) => {
                self.rbuf.extend_from_slice(&chunk[..n]);
                Ok(true)
            }
            Err(e)
                if e.kind() == ErrorKind::WouldBlock
                    || e.kind() == ErrorKind::TimedOut
                    || e.kind() == ErrorKind::Interrupted =>
            {
                Ok(false)
            }
            Err(e) => Err(e),
        }
    }

    /// Drop consumed bytes once the buffer is fully drained.
    fn compact(&mut self) {
        if self.pos == self.rbuf.len() {
            self.rbuf.clear();
            self.pos = 0;
        } else if self.pos > 0 {
            self.rbuf.drain(..self.pos);
            self.pos = 0;
        }
    }

    /// Read one RESP value (handshake replies), polling for stop.
    fn read_value(&mut self, inner: &Inner) -> io::Result<Option<Value>> {
        loop {
            match decode_value(&self.rbuf[self.pos..]) {
                Ok(Decode::Complete(v, used)) => {
                    self.pos += used;
                    self.compact();
                    return Ok(Some(v));
                }
                Ok(Decode::Incomplete) => {
                    if stopping(inner) {
                        return Ok(None);
                    }
                    self.fill()?;
                }
                Err(e) => return Err(io::Error::new(ErrorKind::InvalidData, e.to_string())),
            }
        }
    }

    /// Read the FULLRESYNC payload: `$<len>\r\n` + `len` raw bytes +
    /// `\r\n`. Read manually (not via `decode_value`) because a
    /// snapshot may legitimately exceed the codec's per-bulk cap.
    fn read_snapshot_bulk(&mut self, inner: &Inner) -> io::Result<Option<Vec<u8>>> {
        let len = loop {
            let head = &self.rbuf[self.pos..];
            if let Some(nl) = head.windows(2).position(|w| w == b"\r\n") {
                if head[0] != b'$' {
                    return Err(io::Error::new(
                        ErrorKind::InvalidData,
                        "FULLRESYNC payload is not a bulk string",
                    ));
                }
                let len: usize = std::str::from_utf8(&head[1..nl])
                    .ok()
                    .and_then(|s| s.parse().ok())
                    .filter(|&n| n <= MAX_SNAPSHOT_BYTES)
                    .ok_or_else(|| {
                        io::Error::new(ErrorKind::InvalidData, "bad FULLRESYNC bulk length")
                    })?;
                self.pos += nl + 2;
                break len;
            }
            if stopping(inner) {
                return Ok(None);
            }
            self.fill()?;
        };
        // Shift the consumed prefix away so the bulk starts at 0, then
        // carve the body out of rbuf in place — duplicating it with a
        // copy would hold ~2x the snapshot in memory at once, on
        // exactly the path the primary side kept single-copy.
        if self.pos > 0 {
            self.rbuf.drain(..self.pos);
            self.pos = 0;
        }
        while self.rbuf.len() < len + 2 {
            if stopping(inner) {
                return Ok(None);
            }
            self.fill()?;
        }
        if &self.rbuf[len..len + 2] != b"\r\n" {
            return Err(io::Error::new(
                ErrorKind::InvalidData,
                "FULLRESYNC bulk not terminated by CRLF",
            ));
        }
        let rest = self.rbuf.split_off(len + 2);
        let mut body = std::mem::replace(&mut self.rbuf, rest);
        body.truncate(len);
        Ok(Some(body))
    }
}

fn bad_stream(msg: impl Into<String>) -> io::Error {
    io::Error::new(ErrorKind::InvalidData, msg.into())
}

fn engine_err(e: crate::engine::EngineError) -> io::Error {
    io::Error::other(format!("applying replicated ops: {e}"))
}

/// One replication session: handshake, full sync, tail. Returns `Ok`
/// only on a deliberate stop (promotion/shutdown); every failure path is
/// an `Err` so [`run`] reconnects and re-syncs.
fn session(inner: &Inner, master: &str) -> io::Result<()> {
    let mut conn = Conn::connect(master)?;
    // Advisory metadata; the primary replies +OK and ignores it.
    let port = inner.addr.port().to_string();
    conn.send(&[b"REPLCONF", b"listening-port", port.as_bytes()])?;
    match conn.read_value(inner)? {
        None => return Ok(()),
        Some(Value::Simple(s)) if s == "OK" => {}
        Some(other) => return Err(bad_stream(format!("REPLCONF got {other:?}"))),
    }
    conn.send(&[b"PSYNC", b"?", b"-1"])?;
    let base_offset = match conn.read_value(inner)? {
        None => return Ok(()),
        Some(Value::Simple(s)) => match s.strip_prefix("FULLRESYNC ") {
            Some(off) => off
                .trim()
                .parse::<u64>()
                .map_err(|_| bad_stream(format!("bad FULLRESYNC offset in {s:?}")))?,
            None => return Err(bad_stream(format!("PSYNC got +{s}"))),
        },
        Some(Value::Error(e)) => return Err(bad_stream(format!("PSYNC refused: {e}"))),
        Some(other) => return Err(bad_stream(format!("PSYNC got {other:?}"))),
    };
    let Some(snap) = conn.read_snapshot_bulk(inner)? else {
        return Ok(());
    };
    let records = snapshot::parse_all(&snap)
        .map_err(|e| bad_stream(format!("bootstrap snapshot: {e}")))?;
    drop(snap);
    // Full-resync semantics: local state is replaced wholesale. On the
    // first sync of a fresh replica the clear is a no-op; after a link
    // loss it removes keys the primary may have deleted meanwhile.
    inner.engine.clear().map_err(engine_err)?;
    let loaded = records.len();
    // Deadlines load verbatim from the snapshot — a replica never
    // derives time (the primary's clock decided them once).
    let ops: Vec<ReplOp> = records
        .into_iter()
        .map(|(key, value, expire_at_ms)| {
            if expire_at_ms == 0 {
                ReplOp::Set { key, value }
            } else {
                ReplOp::SetEx { key, value, expire_at_ms }
            }
        })
        .collect();
    inner.engine.apply_ops(&ops).map_err(engine_err)?;
    drop(ops);
    inner.applied_offset.store(base_offset, Ordering::SeqCst);
    inner.link_up.store(true, Ordering::SeqCst);
    crate::log_info!(
        "repl",
        "replica of {master}: full sync loaded {loaded} records at offset {base_offset}"
    );
    // Tail: decode every complete command in the buffer, apply them as
    // one batch through the engine's batch paths, repeat.
    let mut ops: Vec<ReplOp> = Vec::new();
    // A `TRACEID <id> 0` in the stream marks the NEXT op as traced on
    // the primary: its apply here is timed individually under the same
    // id so `TRACE GET <id>` works on either end.
    let mut pending_trace: Option<u64> = None;
    loop {
        if stopping(inner) {
            return Ok(());
        }
        ops.clear();
        loop {
            match decode_command(&conn.rbuf[conn.pos..]) {
                Ok(Decode::Complete(mut parts, used)) => {
                    conn.pos += used;
                    let name = parts[0].to_ascii_uppercase();
                    match (name.as_slice(), parts.len()) {
                        (b"SET", 3) => {
                            let value = parts.pop().expect("len checked");
                            let key = parts.pop().expect("len checked");
                            queue_op(inner, &mut ops, &mut pending_trace, ReplOp::Set { key, value })?;
                        }
                        // TTL write: `SET key value PXAT <deadline-ms>` —
                        // the absolute-deadline form is the only one the
                        // stream carries (determinism: the primary is the
                        // single clock).
                        (b"SET", 5) => {
                            let ms = parts.pop().expect("len checked");
                            let px = parts.pop().expect("len checked");
                            let value = parts.pop().expect("len checked");
                            let key = parts.pop().expect("len checked");
                            if !px.eq_ignore_ascii_case(b"PXAT") {
                                return Err(bad_stream(format!(
                                    "unexpected SET modifier {:?} in replication stream",
                                    String::from_utf8_lossy(&px)
                                )));
                            }
                            let expire_at_ms = std::str::from_utf8(&ms)
                                .ok()
                                .and_then(|s| s.parse::<u64>().ok())
                                .ok_or_else(|| bad_stream("bad PXAT deadline in stream"))?;
                            queue_op(
                                inner,
                                &mut ops,
                                &mut pending_trace,
                                ReplOp::SetEx { key, value, expire_at_ms },
                            )?;
                        }
                        (b"DEL", 2) => {
                            let key = parts.pop().expect("len checked");
                            queue_op(inner, &mut ops, &mut pending_trace, ReplOp::Del { key })?;
                        }
                        // Liveness only; does not advance the offset.
                        (b"PING", 1) => {}
                        // Trace propagation: the next op was traced on
                        // the primary. Not an op — the offset does not
                        // advance. The pending batch is applied first so
                        // the traced op's timing stands alone.
                        (b"TRACEID", 3) => {
                            let id = std::str::from_utf8(&parts[1])
                                .ok()
                                .and_then(|s| s.parse::<u64>().ok())
                                .ok_or_else(|| bad_stream("bad TRACEID id in stream"))?;
                            if !ops.is_empty() {
                                inner.engine.apply_ops(&ops).map_err(engine_err)?;
                                inner
                                    .applied_offset
                                    .fetch_add(ops.len() as u64, Ordering::SeqCst);
                                ops.clear();
                            }
                            pending_trace = Some(id);
                        }
                        _ => {
                            return Err(bad_stream(format!(
                                "unexpected command {:?} in replication stream",
                                String::from_utf8_lossy(&parts[0])
                            )))
                        }
                    }
                }
                Ok(Decode::Incomplete) => break,
                Err(e) => return Err(io::Error::new(ErrorKind::InvalidData, e.to_string())),
            }
        }
        conn.compact();
        if !ops.is_empty() {
            inner.engine.apply_ops(&ops).map_err(engine_err)?;
            inner.applied_offset.fetch_add(ops.len() as u64, Ordering::SeqCst);
        }
        conn.fill()?;
    }
}

/// Queue an op for the batch apply — unless a `TRACEID` marked it, in
/// which case it applies alone, timed, under the propagated span id.
fn queue_op(
    inner: &Inner,
    ops: &mut Vec<ReplOp>,
    pending_trace: &mut Option<u64>,
    op: ReplOp,
) -> io::Result<()> {
    match pending_trace.take() {
        Some(id) => apply_traced(inner, op, id),
        None => {
            ops.push(op);
            Ok(())
        }
    }
}

/// Apply one replicated op under a trace span and record the result in
/// the flight recorder: same id as the primary's span (so `TRACE GET`
/// correlates the two), worker [`trace::REPL_WORKER`], reason `repl`.
/// Queue-wait/parse/reply-flush are zero by construction — a replica
/// apply has no client-visible ingress or egress.
fn apply_traced(inner: &Inner, op: ReplOp, trace_id: u64) -> io::Result<()> {
    use crate::trace::{self, Stage};
    let (cmd, key) = match &op {
        ReplOp::Set { key, .. } | ReplOp::SetEx { key, .. } => ("SET", key),
        ReplOp::Del { key } => ("DEL", key),
    };
    let key = String::from_utf8_lossy(&key[..key.len().min(32)]).into_owned();
    trace::begin_span(trace_id);
    let start = std::time::Instant::now();
    let res = inner.engine.apply_ops(std::slice::from_ref(&op));
    let total_ns = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
    let d = trace::end_span(start, total_ns);
    let mut stages_ns = [0u64; Stage::COUNT];
    stages_ns[Stage::Dispatch.index()] = d.dispatch_ns;
    stages_ns[Stage::LockWait.index()] = d.lock_wait_ns;
    stages_ns[Stage::Execute.index()] = d.execute_ns;
    stages_ns[Stage::Persist.index()] = d.persist_ns;
    inner.tracer.record(trace::TraceRecord {
        id: trace_id,
        origin: trace_id,
        hops: 0,
        unix_ms: trace::unix_ms(),
        cmd: cmd.into(),
        key,
        worker: trace::REPL_WORKER,
        total_ns,
        reason: trace::Reason::Repl,
        stages_ns,
    });
    res.map_err(engine_err)?;
    inner.applied_offset.fetch_add(1, Ordering::SeqCst);
    Ok(())
}
