//! The per-shard redo log: an append-only file of checksummed mutation
//! records, written under the shard's existing write serialization.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! header    16 B  LOG_MAGIC, LOG_VERSION, shard index (wire::FileHeader)
//! record    *     u32 body_len
//!                 body: u8 op (1=SET, 2=DEL), u32 key_len, key, value…
//!                 u64 FNV-1a over (body_len ‖ body)
//! ```
//!
//! There is no trailer: the log is meant to be appended to forever and
//! read back after any kind of crash, so each record carries its own
//! checksum and the valid prefix is whatever parses. On reopen
//! ([`LogWriter::open`]) the file is scanned once; the first record that
//! is truncated, oversized, structurally invalid or checksum-mismatched
//! ends the valid prefix, and the file is **truncated back to it** — a
//! torn tail from a crash mid-append disappears instead of poisoning
//! later appends, and a corrupt record can never be replayed into state.
//! A corrupt *header* resets the whole log (the pools remain the
//! authoritative store state; the log is the replication/backup feed).
//!
//! The writer issues one unbuffered `write` per record: the bytes are in
//! the kernel page cache when `append` returns, so a process kill (the
//! failure mode the service recovers from) loses nothing; [`sync`]
//! (called from the engine's clean close) makes the file durable against
//! power loss too.

use std::fs::{File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::Path;

use dash_common::MAX_KEY_LEN;

use crate::engine::MAX_VALUE_LEN;
use crate::repl::wire::{fnv64, FileHeader, Fnv, Parser};
use crate::repl::ReplOp;

/// `b"DASHLOG1"` as a little-endian u64.
pub const LOG_MAGIC: u64 = u64::from_le_bytes(*b"DASHLOG1");
/// Current format version.
pub const LOG_VERSION: u32 = 1;

const OP_SET: u8 = 1;
const OP_DEL: u8 = 2;
/// Largest legal record body: tag + key_len field + max key + max value.
const MAX_BODY: usize = 1 + 4 + MAX_KEY_LEN + MAX_VALUE_LEN;

/// Append the wire form of `op` to `out`.
pub fn encode_record(op: &ReplOp, out: &mut Vec<u8>) {
    let (tag, key, value): (u8, &[u8], &[u8]) = match op {
        ReplOp::Set { key, value } => (OP_SET, key, value),
        ReplOp::Del { key } => (OP_DEL, key, &[]),
    };
    let body_len = 1 + 4 + key.len() + value.len();
    let start = out.len();
    out.extend_from_slice(&(body_len as u32).to_le_bytes());
    out.push(tag);
    out.extend_from_slice(&(key.len() as u32).to_le_bytes());
    out.extend_from_slice(key);
    out.extend_from_slice(value);
    let checksum = fnv64(&out[start..]);
    out.extend_from_slice(&checksum.to_le_bytes());
}

/// Decode the record starting at `p`'s position. `Ok(None)` means the
/// bytes from here on are not a valid record (torn tail / corruption) —
/// the caller must treat everything from `p.pos()` as garbage.
fn decode_record(p: &mut Parser<'_>) -> Option<ReplOp> {
    let start = p.pos();
    let body_len = p.u32("record length").ok()? as usize;
    if !(1 + 4..=MAX_BODY).contains(&body_len) {
        return None;
    }
    let body = p.take(body_len, "record body").ok()?;
    let checksum = p.u64("record checksum").ok()?;
    // The checksum covers the length prefix too, so a corrupted length
    // cannot masquerade as a differently-framed valid record.
    let mut fnv = Fnv::new();
    fnv.update(&(body_len as u32).to_le_bytes());
    fnv.update(body);
    if fnv.value() != checksum {
        return None;
    }
    let mut b = Parser::new(body);
    let tag = b.u8("op tag").ok()?;
    let key_len = b.u32("key length").ok()? as usize;
    if key_len > MAX_KEY_LEN {
        return None;
    }
    let key = b.take(key_len, "key bytes").ok()?.to_vec();
    let op = match tag {
        OP_SET => {
            let value = body[5 + key_len..].to_vec();
            if value.len() > MAX_VALUE_LEN {
                return None;
            }
            ReplOp::Set { key, value }
        }
        OP_DEL => {
            if b.remaining() != 0 {
                return None;
            }
            ReplOp::Del { key }
        }
        _ => return None,
    };
    debug_assert!(p.pos() > start);
    Some(op)
}

/// Parse a whole log buffer: the header's shard index, the records of
/// the valid prefix, and the byte length of that prefix (header
/// included). `Err` only when the header itself is unusable.
fn parse(buf: &[u8]) -> Result<(u32, Vec<ReplOp>, usize), String> {
    let mut p = Parser::new(buf);
    let shard = FileHeader::read(&mut p, LOG_MAGIC, LOG_VERSION, "repl log")?;
    let mut ops = Vec::new();
    let mut valid_len = p.pos();
    while p.remaining() > 0 {
        match decode_record(&mut p) {
            Some(op) => {
                ops.push(op);
                valid_len = p.pos();
            }
            None => break,
        }
    }
    Ok((shard, ops, valid_len))
}

/// What [`LogWriter::open`] found on disk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LogRecovery {
    /// Intact records recovered from the existing file.
    pub records: u64,
    /// Bytes cut off the tail (0 for a cleanly closed log).
    pub truncated_bytes: u64,
    /// The header was unusable and the log was reset to empty. The
    /// store itself is unaffected — but log-replay backups from before
    /// the reset no longer cover this shard.
    pub reset: bool,
}

/// Read every intact record of a log file (the replay path). Rejects an
/// unusable header as an error; a torn tail simply ends the record list.
pub fn read_log(path: &Path) -> io::Result<(Vec<ReplOp>, LogRecovery)> {
    let mut buf = Vec::new();
    File::open(path)?.read_to_end(&mut buf)?;
    let (_shard, ops, valid_len) =
        parse(&buf).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
    let recovery = LogRecovery {
        records: ops.len() as u64,
        truncated_bytes: (buf.len() - valid_len) as u64,
        reset: false,
    };
    Ok((ops, recovery))
}

/// The append handle one shard holds. Creation recovers the existing
/// file (torn-tail truncation) or starts a fresh one.
pub struct LogWriter {
    file: File,
    records: u64,
    /// Current file length (header + valid records + appends) — what
    /// `INFO repl_log_bytes` and the metrics endpoint report, kept here
    /// so observing log growth never pays a stat() per scrape.
    bytes: u64,
}

impl LogWriter {
    /// Open (or create) the log at `path` for shard `shard`. An existing
    /// file is scanned, its torn tail truncated, and appends continue
    /// from the end of the valid prefix.
    pub fn open(path: &Path, shard: u32) -> io::Result<(LogWriter, LogRecovery)> {
        // truncate(false): an existing log is recovered, not clobbered.
        let mut file =
            OpenOptions::new().read(true).write(true).create(true).truncate(false).open(path)?;
        let mut buf = Vec::new();
        file.read_to_end(&mut buf)?;
        if buf.is_empty() {
            let header = FileHeader { magic: LOG_MAGIC, version: LOG_VERSION, meta: shard };
            let header = header.encode();
            file.write_all(&header)?;
            let recovery = LogRecovery { records: 0, truncated_bytes: 0, reset: false };
            return Ok((LogWriter { file, records: 0, bytes: header.len() as u64 }, recovery));
        }
        match parse(&buf) {
            // The header's shard index is outside any record checksum;
            // a mismatch (corruption, or a file moved between shard
            // slots) makes the whole log untrustworthy → reset.
            Ok((got_shard, _, _)) if got_shard != shard => {
                Self::reset(file, buf.len(), shard)
            }
            Ok((_, ops, valid_len)) => {
                if valid_len < buf.len() {
                    file.set_len(valid_len as u64)?;
                }
                file.seek(SeekFrom::Start(valid_len as u64))?;
                let recovery = LogRecovery {
                    records: ops.len() as u64,
                    truncated_bytes: (buf.len() - valid_len) as u64,
                    reset: false,
                };
                Ok((LogWriter { file, records: ops.len() as u64, bytes: valid_len as u64 }, recovery))
            }
            // Unusable header: the log cannot be trusted at all. Reset
            // it rather than refuse to open the store — the pools hold
            // the authoritative state.
            Err(_) => Self::reset(file, buf.len(), shard),
        }
    }

    fn reset(mut file: File, old_len: usize, shard: u32) -> io::Result<(LogWriter, LogRecovery)> {
        file.set_len(0)?;
        file.seek(SeekFrom::Start(0))?;
        let header = FileHeader { magic: LOG_MAGIC, version: LOG_VERSION, meta: shard };
        let header = header.encode();
        file.write_all(&header)?;
        let recovery = LogRecovery { records: 0, truncated_bytes: old_len as u64, reset: true };
        Ok((LogWriter { file, records: 0, bytes: header.len() as u64 }, recovery))
    }

    /// Append one record. One `write` syscall: in the page cache (and so
    /// safe against a process kill) when this returns.
    pub fn append(&mut self, op: &ReplOp) -> io::Result<()> {
        let mut rec = Vec::with_capacity(64);
        encode_record(op, &mut rec);
        self.file.write_all(&rec)?;
        self.records += 1;
        self.bytes += rec.len() as u64;
        Ok(())
    }

    /// Records in the log (recovered + appended).
    pub fn records(&self) -> u64 {
        self.records
    }

    /// File bytes (header + records), recovered + appended.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// fsync — durable against power loss, not just process death.
    pub fn sync(&self) -> io::Result<()> {
        self.file.sync_all()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    struct TempPath(PathBuf);

    impl TempPath {
        fn new(tag: &str) -> Self {
            let mut p = std::env::temp_dir();
            p.push(format!("dash-repl-log-{tag}-{}", std::process::id()));
            let _ = std::fs::remove_file(&p);
            TempPath(p)
        }
    }

    impl Drop for TempPath {
        fn drop(&mut self) {
            let _ = std::fs::remove_file(&self.0);
        }
    }

    fn sample_ops(n: u32) -> Vec<ReplOp> {
        (0..n)
            .map(|i| {
                if i % 4 == 3 {
                    ReplOp::Del { key: format!("key-{}", i - 1).into_bytes() }
                } else {
                    ReplOp::Set {
                        key: format!("key-{i}").into_bytes(),
                        value: format!("value-{i}").into_bytes(),
                    }
                }
            })
            .collect()
    }

    #[test]
    fn roundtrip_and_reopen_append() {
        let p = TempPath::new("roundtrip");
        let ops = sample_ops(20);
        {
            let (mut w, rec) = LogWriter::open(&p.0, 7).unwrap();
            assert_eq!(rec, LogRecovery { records: 0, truncated_bytes: 0, reset: false });
            for op in &ops[..10] {
                w.append(op).unwrap();
            }
            w.sync().unwrap();
        }
        // Reopen continues where the valid prefix ends.
        let (mut w, rec) = LogWriter::open(&p.0, 7).unwrap();
        assert_eq!(rec, LogRecovery { records: 10, truncated_bytes: 0, reset: false });
        for op in &ops[10..] {
            w.append(op).unwrap();
        }
        drop(w);
        let (read, rec) = read_log(&p.0).unwrap();
        assert_eq!(read, ops);
        assert_eq!(rec.records, 20);
    }

    #[test]
    fn empty_and_binary_payloads() {
        let p = TempPath::new("binary");
        let ops = vec![
            ReplOp::Set { key: b"empty".to_vec(), value: Vec::new() },
            ReplOp::Set { key: (0..=255u8).collect(), value: vec![0u8; 10_000] },
            ReplOp::Del { key: vec![0u8, 13, 10, 255] },
        ];
        let (mut w, _) = LogWriter::open(&p.0, 0).unwrap();
        for op in &ops {
            w.append(op).unwrap();
        }
        drop(w);
        assert_eq!(read_log(&p.0).unwrap().0, ops);
    }

    #[test]
    fn torn_tail_is_truncated_on_reopen() {
        let p = TempPath::new("torn");
        let ops = sample_ops(10);
        {
            let (mut w, _) = LogWriter::open(&p.0, 0).unwrap();
            for op in &ops {
                w.append(op).unwrap();
            }
        }
        let full = std::fs::read(&p.0).unwrap();
        // Cut the file mid-record: reopen must drop the torn record,
        // truncate the file back to the valid prefix, and keep working.
        std::fs::write(&p.0, &full[..full.len() - 5]).unwrap();
        let (mut w, rec) = LogWriter::open(&p.0, 0).unwrap();
        assert_eq!(rec.records, 9, "the torn last record must be dropped");
        assert!(rec.truncated_bytes > 0);
        assert!(!rec.reset);
        assert!(
            std::fs::metadata(&p.0).unwrap().len() < full.len() as u64,
            "the file itself must shrink to the valid prefix"
        );
        w.append(&ops[9]).unwrap();
        drop(w);
        let (read, _) = read_log(&p.0).unwrap();
        assert_eq!(read, ops, "append after truncation must continue the sequence");
    }

    #[test]
    fn every_corrupted_byte_yields_only_a_valid_prefix() {
        let p = TempPath::new("corrupt");
        let ops = sample_ops(12);
        {
            let (mut w, _) = LogWriter::open(&p.0, 3).unwrap();
            for op in &ops {
                w.append(op).unwrap();
            }
        }
        let original = std::fs::read(&p.0).unwrap();
        for pos in 0..original.len() {
            let mut bad = original.clone();
            bad[pos] ^= 0x40;
            std::fs::write(&p.0, &bad).unwrap();
            if pos < FileHeader::LEN {
                // Header corruption: the writer resets to an empty log
                // (never an error, never data). Magic/version flips are
                // also rejected by the reader; a flipped shard index
                // (bytes 12..16) is informational to the reader but
                // still a mismatch the writer refuses to append behind.
                if pos < 12 {
                    assert!(read_log(&p.0).is_err(), "header flip at {pos} accepted by reader");
                }
                let (w, rec) = LogWriter::open(&p.0, 3).unwrap();
                assert!(rec.reset && rec.records == 0, "header flip at {pos} must reset");
                assert_eq!(w.records(), 0);
            } else {
                // Record corruption: the result must be an exact prefix
                // of the original op sequence — a flipped byte can
                // never invent or alter a record.
                let (read, rec) = read_log(&p.0).unwrap();
                assert!(read.len() < ops.len(), "flip at byte {pos} went undetected");
                assert_eq!(
                    read,
                    ops[..read.len()],
                    "flip at byte {pos} must yield a strict prefix"
                );
                assert!(rec.truncated_bytes > 0);
            }
        }
        // Restore and confirm the pristine file still reads fully.
        std::fs::write(&p.0, &original).unwrap();
        assert_eq!(read_log(&p.0).unwrap().0, ops);
    }

    #[test]
    fn oversized_length_claims_are_rejected() {
        let p = TempPath::new("oversize");
        {
            let (mut w, _) = LogWriter::open(&p.0, 0).unwrap();
            w.append(&ReplOp::Set { key: b"k".to_vec(), value: b"v".to_vec() }).unwrap();
        }
        // Append a record claiming a gigantic body: must end the prefix,
        // not trigger a gigantic allocation or a bogus record.
        let mut bytes = std::fs::read(&p.0).unwrap();
        bytes.extend_from_slice(&(u32::MAX).to_le_bytes());
        bytes.extend_from_slice(b"garbage");
        std::fs::write(&p.0, &bytes).unwrap();
        let (read, rec) = read_log(&p.0).unwrap();
        assert_eq!(read.len(), 1);
        assert!(rec.truncated_bytes > 0);
    }
}
