//! The per-shard redo log: an append-only file of checksummed mutation
//! records, written under the shard's existing write serialization.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! header    16 B  LOG_MAGIC, LOG_VERSION, shard index (wire::FileHeader)
//! record    *     u32 body_len
//!                 body: u8 op (1=SET, 2=DEL, 3=SETEX), u32 key_len, key,
//!                       [u64 expire_at_ms when SETEX], value…
//!                 u64 FNV-1a over (body_len ‖ body)
//! ```
//!
//! **Rotation** (`--repl-log-max-bytes`): when the active file crosses
//! the size cap it is sealed — renamed to `repl-N.seg{K}.log` with a
//! monotonically increasing K — and a fresh active file starts. Sealed
//! segments are immutable; reopen discovers them in K order and counts
//! their records so the store-wide replication offset stays continuous,
//! and [`read_log_chain`] replays segments-then-active as one stream. A
//! durable snapshot may then delete every segment sealed *before* its
//! scan began (the engine forces a rotation under each shard's write
//! lock first), bounding log disk usage without losing replay coverage:
//! snapshot + remaining log still reconstructs the final state.
//!
//! There is no trailer: the log is meant to be appended to forever and
//! read back after any kind of crash, so each record carries its own
//! checksum and the valid prefix is whatever parses. On reopen
//! ([`LogWriter::open`]) the file is scanned once; the first record that
//! is truncated, oversized, structurally invalid or checksum-mismatched
//! ends the valid prefix, and the file is **truncated back to it** — a
//! torn tail from a crash mid-append disappears instead of poisoning
//! later appends, and a corrupt record can never be replayed into state.
//! A corrupt *header* resets the whole log (the pools remain the
//! authoritative store state; the log is the replication/backup feed).
//!
//! The writer issues one unbuffered `write` per record: the bytes are in
//! the kernel page cache when `append` returns, so a process kill (the
//! failure mode the service recovers from) loses nothing; [`sync`]
//! (called from the engine's clean close) makes the file durable against
//! power loss too.

use std::fs::{File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use dash_common::MAX_KEY_LEN;

use crate::engine::MAX_VALUE_LEN;
use crate::repl::wire::{fnv64, FileHeader, Fnv, Parser};
use crate::repl::ReplOp;

/// `b"DASHLOG1"` as a little-endian u64.
pub const LOG_MAGIC: u64 = u64::from_le_bytes(*b"DASHLOG1");
/// Current format version.
pub const LOG_VERSION: u32 = 1;

const OP_SET: u8 = 1;
const OP_DEL: u8 = 2;
const OP_SET_EX: u8 = 3;
/// Largest legal record body: tag + key_len field + max key + expiry
/// deadline + max value.
const MAX_BODY: usize = 1 + 4 + MAX_KEY_LEN + 8 + MAX_VALUE_LEN;

/// Append the wire form of `op` to `out`.
pub fn encode_record(op: &ReplOp, out: &mut Vec<u8>) {
    let (tag, key, value, expire): (u8, &[u8], &[u8], u64) = match op {
        ReplOp::Set { key, value } => (OP_SET, key, value, 0),
        ReplOp::SetEx { key, value, expire_at_ms } => (OP_SET_EX, key, value, *expire_at_ms),
        ReplOp::Del { key } => (OP_DEL, key, &[], 0),
    };
    let body_len =
        1 + 4 + key.len() + value.len() + if tag == OP_SET_EX { 8 } else { 0 };
    let start = out.len();
    out.extend_from_slice(&(body_len as u32).to_le_bytes());
    out.push(tag);
    out.extend_from_slice(&(key.len() as u32).to_le_bytes());
    out.extend_from_slice(key);
    if tag == OP_SET_EX {
        out.extend_from_slice(&expire.to_le_bytes());
    }
    out.extend_from_slice(value);
    let checksum = fnv64(&out[start..]);
    out.extend_from_slice(&checksum.to_le_bytes());
}

/// Decode the record starting at `p`'s position. `Ok(None)` means the
/// bytes from here on are not a valid record (torn tail / corruption) —
/// the caller must treat everything from `p.pos()` as garbage.
fn decode_record(p: &mut Parser<'_>) -> Option<ReplOp> {
    let start = p.pos();
    let body_len = p.u32("record length").ok()? as usize;
    if !(1 + 4..=MAX_BODY).contains(&body_len) {
        return None;
    }
    let body = p.take(body_len, "record body").ok()?;
    let checksum = p.u64("record checksum").ok()?;
    // The checksum covers the length prefix too, so a corrupted length
    // cannot masquerade as a differently-framed valid record.
    let mut fnv = Fnv::new();
    fnv.update(&(body_len as u32).to_le_bytes());
    fnv.update(body);
    if fnv.value() != checksum {
        return None;
    }
    let mut b = Parser::new(body);
    let tag = b.u8("op tag").ok()?;
    let key_len = b.u32("key length").ok()? as usize;
    if key_len > MAX_KEY_LEN {
        return None;
    }
    let key = b.take(key_len, "key bytes").ok()?.to_vec();
    let op = match tag {
        OP_SET => {
            let value = body[5 + key_len..].to_vec();
            if value.len() > MAX_VALUE_LEN {
                return None;
            }
            ReplOp::Set { key, value }
        }
        OP_SET_EX => {
            let expire_at_ms = b.u64("expire deadline").ok()?;
            let value = body[5 + key_len + 8..].to_vec();
            if value.len() > MAX_VALUE_LEN {
                return None;
            }
            ReplOp::SetEx { key, value, expire_at_ms }
        }
        OP_DEL => {
            if b.remaining() != 0 {
                return None;
            }
            ReplOp::Del { key }
        }
        _ => return None,
    };
    debug_assert!(p.pos() > start);
    Some(op)
}

/// Parse a whole log buffer: the header's shard index, the records of
/// the valid prefix, and the byte length of that prefix (header
/// included). `Err` only when the header itself is unusable.
fn parse(buf: &[u8]) -> Result<(u32, Vec<ReplOp>, usize), String> {
    let mut p = Parser::new(buf);
    let shard = FileHeader::read(&mut p, LOG_MAGIC, LOG_VERSION, "repl log")?;
    let mut ops = Vec::new();
    let mut valid_len = p.pos();
    while p.remaining() > 0 {
        match decode_record(&mut p) {
            Some(op) => {
                ops.push(op);
                valid_len = p.pos();
            }
            None => break,
        }
    }
    Ok((shard, ops, valid_len))
}

/// What [`LogWriter::open`] found on disk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LogRecovery {
    /// Intact records recovered from the existing files (sealed
    /// segments included — this seeds the store-wide offset).
    pub records: u64,
    /// Bytes cut off the active file's tail (0 for a clean close).
    pub truncated_bytes: u64,
    /// The active file's header was unusable and it was reset to empty.
    /// The store itself is unaffected — but log-replay backups from
    /// before the reset no longer cover this shard.
    pub reset: bool,
}

/// Read every intact record of a single log file. Rejects an unusable
/// header as an error; a torn tail simply ends the record list.
pub fn read_log(path: &Path) -> io::Result<(Vec<ReplOp>, LogRecovery)> {
    let mut buf = Vec::new();
    File::open(path)?.read_to_end(&mut buf)?;
    let (_shard, ops, valid_len) =
        parse(&buf).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
    let recovery = LogRecovery {
        records: ops.len() as u64,
        truncated_bytes: (buf.len() - valid_len) as u64,
        reset: false,
    };
    Ok((ops, recovery))
}

/// Read a shard's full op stream: sealed segments in sequence order,
/// then the active file at `path` — the replay path under rotation.
pub fn read_log_chain(path: &Path) -> io::Result<(Vec<ReplOp>, LogRecovery)> {
    let mut ops = Vec::new();
    let mut total = LogRecovery { records: 0, truncated_bytes: 0, reset: false };
    for (_, seg) in segment_files(path)? {
        let (mut seg_ops, r) = read_log(&seg)?;
        ops.append(&mut seg_ops);
        total.records += r.records;
        total.truncated_bytes += r.truncated_bytes;
    }
    let (mut tail, r) = read_log(path)?;
    ops.append(&mut tail);
    total.records += r.records;
    total.truncated_bytes += r.truncated_bytes;
    Ok((ops, total))
}

/// Sealed-segment path for the active log at `path`:
/// `repl-N.log` → `repl-N.seg{K}.log`.
fn segment_path(path: &Path, seq: u64) -> PathBuf {
    let stem = path.file_stem().unwrap_or_default().to_string_lossy();
    path.with_file_name(format!("{stem}.seg{seq}.log"))
}

/// Sealed segments for the active log at `path`, sorted by sequence
/// number. Holes are fine — snapshot truncation deletes old segments.
pub fn segment_files(path: &Path) -> io::Result<Vec<(u64, PathBuf)>> {
    let stem = path.file_stem().unwrap_or_default().to_string_lossy().into_owned();
    let prefix = format!("{stem}.seg");
    let dir = path.parent().filter(|p| !p.as_os_str().is_empty()).unwrap_or(Path::new("."));
    let mut segs = Vec::new();
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        let Some(mid) = name.strip_prefix(&prefix).and_then(|s| s.strip_suffix(".log")) else {
            continue;
        };
        if let Ok(seq) = mid.parse::<u64>() {
            segs.push((seq, entry.path()));
        }
    }
    segs.sort_unstable();
    Ok(segs)
}

/// The append handle one shard holds. Creation recovers the existing
/// active file (torn-tail truncation), discovers sealed segments, and
/// continues the record count across all of them.
pub struct LogWriter {
    file: File,
    path: PathBuf,
    shard: u32,
    /// Rotation threshold for the active file; `None` = never rotate.
    max_bytes: Option<u64>,
    /// Next sealed-segment sequence number.
    next_seq: u64,
    /// Records across sealed segments + active (recovered + appended).
    records: u64,
    /// Records in the active file only (a rotation seals only these).
    active_records: u64,
    /// Bytes in sealed segments (for total-size reporting).
    segment_bytes: u64,
    /// Active file length (header + valid records + appends) — kept
    /// here so observing log growth never pays a stat() per scrape.
    bytes: u64,
}

impl LogWriter {
    /// Open (or create) the log at `path` for shard `shard`. An existing
    /// active file is scanned, its torn tail truncated, and appends
    /// continue from the end of the valid prefix; sealed segments are
    /// discovered and their records counted into the recovery total.
    pub fn open(
        path: &Path,
        shard: u32,
        max_bytes: Option<u64>,
    ) -> io::Result<(LogWriter, LogRecovery)> {
        let mut seg_records = 0u64;
        let mut segment_bytes = 0u64;
        let mut next_seq = 0u64;
        for (seq, seg) in segment_files(path)? {
            // An unreadable segment contributes nothing to the offset;
            // its sequence number is still reserved.
            if let Ok((ops, _)) = read_log(&seg) {
                seg_records += ops.len() as u64;
            }
            segment_bytes += std::fs::metadata(&seg).map(|m| m.len()).unwrap_or(0);
            next_seq = next_seq.max(seq + 1);
        }
        // truncate(false): an existing log is recovered, not clobbered.
        let mut file =
            OpenOptions::new().read(true).write(true).create(true).truncate(false).open(path)?;
        let mut buf = Vec::new();
        file.read_to_end(&mut buf)?;
        let base = |file: File, active: u64, bytes: u64| LogWriter {
            file,
            path: path.to_path_buf(),
            shard,
            max_bytes,
            next_seq,
            records: seg_records + active,
            active_records: active,
            segment_bytes,
            bytes,
        };
        if buf.is_empty() {
            let header = FileHeader { magic: LOG_MAGIC, version: LOG_VERSION, meta: shard };
            let header = header.encode();
            file.write_all(&header)?;
            let recovery =
                LogRecovery { records: seg_records, truncated_bytes: 0, reset: false };
            return Ok((base(file, 0, header.len() as u64), recovery));
        }
        match parse(&buf) {
            // The header's shard index is outside any record checksum;
            // a mismatch (corruption, or a file moved between shard
            // slots) makes the whole log untrustworthy → reset.
            Ok((got_shard, _, _)) if got_shard != shard => {
                Self::reset(base(file, 0, 0), buf.len())
            }
            Ok((_, ops, valid_len)) => {
                if valid_len < buf.len() {
                    file.set_len(valid_len as u64)?;
                }
                file.seek(SeekFrom::Start(valid_len as u64))?;
                let recovery = LogRecovery {
                    records: seg_records + ops.len() as u64,
                    truncated_bytes: (buf.len() - valid_len) as u64,
                    reset: false,
                };
                Ok((base(file, ops.len() as u64, valid_len as u64), recovery))
            }
            // Unusable header: the active log cannot be trusted at all.
            // Reset it rather than refuse to open the store — the pools
            // hold the authoritative state.
            Err(_) => Self::reset(base(file, 0, 0), buf.len()),
        }
    }

    fn reset(mut w: LogWriter, old_len: usize) -> io::Result<(LogWriter, LogRecovery)> {
        w.file.set_len(0)?;
        w.file.seek(SeekFrom::Start(0))?;
        let header = FileHeader { magic: LOG_MAGIC, version: LOG_VERSION, meta: w.shard };
        let header = header.encode();
        w.file.write_all(&header)?;
        w.bytes = header.len() as u64;
        let recovery = LogRecovery {
            records: w.records,
            truncated_bytes: old_len as u64,
            reset: true,
        };
        Ok((w, recovery))
    }

    /// Seal the active file: rename it to the next `segN` name and start
    /// a fresh active file. On failure the active file keeps growing and
    /// the next append retries.
    fn rotate(&mut self) -> io::Result<()> {
        let seg = segment_path(&self.path, self.next_seq);
        std::fs::rename(&self.path, &seg)?;
        let mut fresh = match OpenOptions::new()
            .read(true)
            .write(true)
            .create_new(true)
            .open(&self.path)
        {
            Ok(f) => f,
            Err(e) => {
                // Undo so appends keep landing in a discoverable file.
                let _ = std::fs::rename(&seg, &self.path);
                return Err(e);
            }
        };
        let header =
            FileHeader { magic: LOG_MAGIC, version: LOG_VERSION, meta: self.shard }.encode();
        fresh.write_all(&header)?;
        self.file = fresh;
        self.next_seq += 1;
        self.segment_bytes += self.bytes;
        self.bytes = header.len() as u64;
        self.active_records = 0;
        Ok(())
    }

    /// Seal the active file (if it holds any records) and return every
    /// sealed segment currently on disk — the set a snapshot started
    /// *after* this call covers, and may delete once durable.
    pub fn rotate_for_snapshot(&mut self) -> io::Result<Vec<PathBuf>> {
        if self.active_records > 0 {
            self.rotate()?;
        }
        Ok(segment_files(&self.path)?.into_iter().map(|(_, p)| p).collect())
    }

    /// Append one record. One `write` syscall: in the page cache (and so
    /// safe against a process kill) when this returns. Crossing the size
    /// cap seals the active file first (best-effort — a failed rotation
    /// leaves the log growing, to be retried on the next append).
    pub fn append(&mut self, op: &ReplOp) -> io::Result<()> {
        if let Some(max) = self.max_bytes {
            if self.bytes >= max && self.active_records > 0 {
                let _ = self.rotate();
            }
        }
        let mut rec = Vec::with_capacity(64);
        encode_record(op, &mut rec);
        self.file.write_all(&rec)?;
        self.records += 1;
        self.active_records += 1;
        self.bytes += rec.len() as u64;
        Ok(())
    }

    /// Records across sealed segments + active (recovered + appended).
    pub fn records(&self) -> u64 {
        self.records
    }

    /// Total log bytes on disk: sealed segments + the active file.
    pub fn bytes(&self) -> u64 {
        self.segment_bytes + self.bytes
    }

    /// fsync the active file — durable against power loss, not just
    /// process death.
    pub fn sync(&self) -> io::Result<()> {
        self.file.sync_all()
    }

    /// Delete sealed segments a durable snapshot now covers. Returns how
    /// many were removed; a segment already gone is not an error.
    pub fn truncate_segments(&mut self, covered: &[PathBuf]) -> io::Result<u64> {
        let mut removed = 0u64;
        for p in covered {
            let len = std::fs::metadata(p).map(|m| m.len()).unwrap_or(0);
            match std::fs::remove_file(p) {
                Ok(()) => {
                    removed += 1;
                    self.segment_bytes = self.segment_bytes.saturating_sub(len);
                }
                Err(e) if e.kind() == io::ErrorKind::NotFound => {}
                Err(e) => return Err(e),
            }
        }
        Ok(removed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    struct TempPath(PathBuf);

    impl TempPath {
        fn new(tag: &str) -> Self {
            let mut p = std::env::temp_dir();
            p.push(format!("dash-repl-log-{tag}-{}", std::process::id()));
            let _ = std::fs::remove_file(&p);
            TempPath(p)
        }
    }

    impl Drop for TempPath {
        fn drop(&mut self) {
            if let Ok(segs) = segment_files(&self.0) {
                for (_, seg) in segs {
                    let _ = std::fs::remove_file(seg);
                }
            }
            let _ = std::fs::remove_file(&self.0);
        }
    }

    fn sample_ops(n: u32) -> Vec<ReplOp> {
        (0..n)
            .map(|i| {
                if i % 4 == 3 {
                    ReplOp::Del { key: format!("key-{}", i - 1).into_bytes() }
                } else if i % 4 == 1 {
                    ReplOp::SetEx {
                        key: format!("key-{i}").into_bytes(),
                        value: format!("value-{i}").into_bytes(),
                        expire_at_ms: 1_700_000_000_000 + u64::from(i),
                    }
                } else {
                    ReplOp::Set {
                        key: format!("key-{i}").into_bytes(),
                        value: format!("value-{i}").into_bytes(),
                    }
                }
            })
            .collect()
    }

    #[test]
    fn roundtrip_and_reopen_append() {
        let p = TempPath::new("roundtrip");
        let ops = sample_ops(20);
        {
            let (mut w, rec) = LogWriter::open(&p.0, 7, None).unwrap();
            assert_eq!(rec, LogRecovery { records: 0, truncated_bytes: 0, reset: false });
            for op in &ops[..10] {
                w.append(op).unwrap();
            }
            w.sync().unwrap();
        }
        // Reopen continues where the valid prefix ends.
        let (mut w, rec) = LogWriter::open(&p.0, 7, None).unwrap();
        assert_eq!(rec, LogRecovery { records: 10, truncated_bytes: 0, reset: false });
        for op in &ops[10..] {
            w.append(op).unwrap();
        }
        drop(w);
        let (read, rec) = read_log(&p.0).unwrap();
        assert_eq!(read, ops);
        assert_eq!(rec.records, 20);
    }

    #[test]
    fn empty_and_binary_payloads() {
        let p = TempPath::new("binary");
        let ops = vec![
            ReplOp::Set { key: b"empty".to_vec(), value: Vec::new() },
            ReplOp::Set { key: (0..=255u8).collect(), value: vec![0u8; 10_000] },
            ReplOp::Del { key: vec![0u8, 13, 10, 255] },
        ];
        let (mut w, _) = LogWriter::open(&p.0, 0, None).unwrap();
        for op in &ops {
            w.append(op).unwrap();
        }
        drop(w);
        assert_eq!(read_log(&p.0).unwrap().0, ops);
    }

    #[test]
    fn torn_tail_is_truncated_on_reopen() {
        let p = TempPath::new("torn");
        let ops = sample_ops(10);
        {
            let (mut w, _) = LogWriter::open(&p.0, 0, None).unwrap();
            for op in &ops {
                w.append(op).unwrap();
            }
        }
        let full = std::fs::read(&p.0).unwrap();
        // Cut the file mid-record: reopen must drop the torn record,
        // truncate the file back to the valid prefix, and keep working.
        std::fs::write(&p.0, &full[..full.len() - 5]).unwrap();
        let (mut w, rec) = LogWriter::open(&p.0, 0, None).unwrap();
        assert_eq!(rec.records, 9, "the torn last record must be dropped");
        assert!(rec.truncated_bytes > 0);
        assert!(!rec.reset);
        assert!(
            std::fs::metadata(&p.0).unwrap().len() < full.len() as u64,
            "the file itself must shrink to the valid prefix"
        );
        w.append(&ops[9]).unwrap();
        drop(w);
        let (read, _) = read_log(&p.0).unwrap();
        assert_eq!(read, ops, "append after truncation must continue the sequence");
    }

    #[test]
    fn every_corrupted_byte_yields_only_a_valid_prefix() {
        let p = TempPath::new("corrupt");
        let ops = sample_ops(12);
        {
            let (mut w, _) = LogWriter::open(&p.0, 3, None).unwrap();
            for op in &ops {
                w.append(op).unwrap();
            }
        }
        let original = std::fs::read(&p.0).unwrap();
        for pos in 0..original.len() {
            let mut bad = original.clone();
            bad[pos] ^= 0x40;
            std::fs::write(&p.0, &bad).unwrap();
            if pos < FileHeader::LEN {
                // Header corruption: the writer resets to an empty log
                // (never an error, never data). Magic/version flips are
                // also rejected by the reader; a flipped shard index
                // (bytes 12..16) is informational to the reader but
                // still a mismatch the writer refuses to append behind.
                if pos < 12 {
                    assert!(read_log(&p.0).is_err(), "header flip at {pos} accepted by reader");
                }
                let (w, rec) = LogWriter::open(&p.0, 3, None).unwrap();
                assert!(rec.reset && rec.records == 0, "header flip at {pos} must reset");
                assert_eq!(w.records(), 0);
            } else {
                // Record corruption: the result must be an exact prefix
                // of the original op sequence — a flipped byte can
                // never invent or alter a record.
                let (read, rec) = read_log(&p.0).unwrap();
                assert!(read.len() < ops.len(), "flip at byte {pos} went undetected");
                assert_eq!(
                    read,
                    ops[..read.len()],
                    "flip at byte {pos} must yield a strict prefix"
                );
                assert!(rec.truncated_bytes > 0);
            }
        }
        // Restore and confirm the pristine file still reads fully.
        std::fs::write(&p.0, &original).unwrap();
        assert_eq!(read_log(&p.0).unwrap().0, ops);
    }

    #[test]
    fn oversized_length_claims_are_rejected() {
        let p = TempPath::new("oversize");
        {
            let (mut w, _) = LogWriter::open(&p.0, 0, None).unwrap();
            w.append(&ReplOp::Set { key: b"k".to_vec(), value: b"v".to_vec() }).unwrap();
        }
        // Append a record claiming a gigantic body: must end the prefix,
        // not trigger a gigantic allocation or a bogus record.
        let mut bytes = std::fs::read(&p.0).unwrap();
        bytes.extend_from_slice(&(u32::MAX).to_le_bytes());
        bytes.extend_from_slice(b"garbage");
        std::fs::write(&p.0, &bytes).unwrap();
        let (read, rec) = read_log(&p.0).unwrap();
        assert_eq!(read.len(), 1);
        assert!(rec.truncated_bytes > 0);
    }

    #[test]
    fn rotation_seals_segments_and_the_chain_replays_in_order() {
        let p = TempPath::new("rotate");
        let ops = sample_ops(200);
        {
            // Tiny cap: every few records seals a segment.
            let (mut w, _) = LogWriter::open(&p.0, 0, Some(256)).unwrap();
            for op in &ops {
                w.append(op).unwrap();
            }
            assert_eq!(w.records(), 200);
            assert!(
                w.bytes() > 256,
                "total bytes must count sealed segments, not just the active file"
            );
        }
        let segs = segment_files(&p.0).unwrap();
        assert!(segs.len() > 2, "a 256-byte cap over 200 records must seal many segments");
        for (_, seg) in &segs {
            assert!(
                std::fs::metadata(seg).unwrap().len() < 1024,
                "sealed segments must respect the cap up to one record of overshoot"
            );
        }
        let (read, rec) = read_log_chain(&p.0).unwrap();
        assert_eq!(read, ops, "segments-then-active must replay the exact op sequence");
        assert_eq!(rec.records, 200);
    }

    #[test]
    fn reopen_counts_segment_records_into_the_offset() {
        let p = TempPath::new("rotate-reopen");
        let ops = sample_ops(50);
        {
            let (mut w, _) = LogWriter::open(&p.0, 0, Some(256)).unwrap();
            for op in &ops {
                w.append(op).unwrap();
            }
        }
        // Reopen (rotation disabled now): the recovered record count must
        // still span the sealed segments, or the store-wide replication
        // offset would jump backwards after a restart.
        let (mut w, rec) = LogWriter::open(&p.0, 0, None).unwrap();
        assert_eq!(rec.records, 50);
        w.append(&ReplOp::Del { key: b"k".to_vec() }).unwrap();
        assert_eq!(w.records(), 51);
        drop(w);
        assert_eq!(read_log_chain(&p.0).unwrap().0.len(), 51);
    }

    #[test]
    fn snapshot_rotation_returns_covered_segments_and_truncation_removes_them() {
        let p = TempPath::new("rotate-snap");
        let ops = sample_ops(40);
        let (mut w, _) = LogWriter::open(&p.0, 0, Some(512)).unwrap();
        for op in &ops {
            w.append(op).unwrap();
        }
        let covered = w.rotate_for_snapshot().unwrap();
        assert!(!covered.is_empty());
        assert_eq!(
            covered.len(),
            segment_files(&p.0).unwrap().len(),
            "after the forced rotation every record lives in a sealed segment"
        );
        // Ops appended *after* the cut are not covered and must survive.
        w.append(&ReplOp::Set { key: b"post".to_vec(), value: b"cut".to_vec() }).unwrap();
        let removed = w.truncate_segments(&covered).unwrap();
        assert_eq!(removed as usize, covered.len());
        assert!(segment_files(&p.0).unwrap().is_empty());
        let (read, _) = read_log_chain(&p.0).unwrap();
        assert_eq!(read.len(), 1, "only the post-snapshot op remains in the log");
        assert_eq!(read[0].key(), b"post");
        assert_eq!(w.records(), 41, "the offset counter never rewinds on truncation");
    }
}
