//! Replication: a per-shard persistent redo log, a primary-side fan-out
//! hub feeding live replica streams, and the replica-side sync loop.
//!
//! The moving parts:
//!
//! * [`wire`] — the versioned-header + FNV-checksummed framing shared by
//!   the snapshot format and the redo log (one reader/writer helper
//!   instead of two hand-rolled copies).
//! * [`log`] — the redo log: one append-only `repl-N.log` file per
//!   shard, written under the shard's existing write serialization.
//!   Reopen truncates torn tails and never yields a corrupt record, so
//!   the log doubles as an incremental backup: replaying it on top of a
//!   snapshot (or an empty store) reconstructs the final state without
//!   rewriting the full store.
//! * [`hub`] — the in-memory fan-out: every applied mutation is
//!   published as a [`ReplOp`] with a store-wide monotonic offset;
//!   replica-serving connections subscribe and stream the tail.
//! * [`replica`] — the follower: connects to the primary, bootstraps
//!   from an epoch-pinned `SNAPSHOT`-format stream pinned at a log
//!   offset (`PSYNC` → `+FULLRESYNC <offset>`), then applies the tail
//!   through the engine's batch write API until promoted.
//!
//! Replication is asynchronous (a write is acknowledged once durable on
//! the primary); convergence is observable — `INFO` exposes
//! `repl_offset` on both sides, and equality after quiescing means the
//! replica holds every acknowledged write. The failover drill is:
//! quiesce, wait for offset equality, kill the primary, `REPLICAOF NO
//! ONE` on the replica.

pub mod hub;
pub mod log;
pub(crate) mod replica;
pub mod wire;

pub use hub::{ReplHub, ReplSubscription, TracedOp};
pub use log::{read_log, LogRecovery, LogWriter};

/// One replicated mutation: the unit the redo log stores, the hub fans
/// out, and the replication stream carries (as a RESP `SET`/`DEL`
/// command). Ops are idempotent — applying a prefix twice converges to
/// the same state — which is what lets the snapshot+tail bootstrap
/// overlap the two sources without coordination.
///
/// Time never appears as a duration here: a TTL write carries the
/// **absolute** deadline the primary computed, and an expiry travels as
/// a plain [`ReplOp::Del`]. Consumers of this stream (replicas, log
/// replay, migration) apply it without consulting a clock.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReplOp {
    /// Insert or overwrite `key` with `value`, clearing any expiry.
    Set { key: Vec<u8>, value: Vec<u8> },
    /// Insert or overwrite `key` with `value` expiring at the given
    /// Unix-millisecond deadline (wire form `SET key value PXAT ms`).
    SetEx { key: Vec<u8>, value: Vec<u8>, expire_at_ms: u64 },
    /// Remove `key` (only logged when the key existed — expiries and
    /// evictions travel as this, decided solely by the primary).
    Del { key: Vec<u8> },
}

impl ReplOp {
    pub fn key(&self) -> &[u8] {
        match self {
            ReplOp::Set { key, .. } | ReplOp::SetEx { key, .. } | ReplOp::Del { key } => key,
        }
    }
}
