//! # dash-server — a sharded, persistent KV service over Dash
//!
//! The paper builds a hash table designed to sit under a heavily
//! concurrent service; this crate is that service. It layers three
//! pieces over the reproduction:
//!
//! * [`ShardedDash`] ([`engine`]) — the storage engine: the keyspace
//!   partitioned by hash over N independent `DashEh<VarKey>` tables,
//!   each on its own file-backed [`pmem::PmemPool`] (`MAP_SHARED`), so
//!   the store survives real process restarts and reopens in constant
//!   time per shard (Dash §4.8). Values are byte strings stored out of
//!   line in the owning shard's pool; reads are lock-free under an
//!   epoch pin, writes serialize per shard.
//! * [`serve`] ([`server`], [`net`]) — an event-driven TCP server
//!   speaking a RESP2 subset (`GET` `SET` `MGET` `MSET` `DEL` `EXISTS`
//!   `PING` `INFO` `DBSIZE` `SHUTDOWN`) with full pipelining: a fixed
//!   pool of epoll event-loop workers (default: one per CPU) drives
//!   nonblocking connections round-robin-assigned at accept time, so
//!   thousands of connections cost no threads and an idle server makes
//!   zero periodic wakeups. The multi-key commands run through the
//!   engine's batch paths: keys grouped by shard, one epoch entry and
//!   one write-lock acquisition per shard per command.
//! * [`repl`] — replication: a per-shard redo log (torn-tail-safe,
//!   doubling as incremental backup via `--replay-logs`), primary-side
//!   streaming (`REPLCONF`/`PSYNC` → `+FULLRESYNC` snapshot + tail),
//!   and replica mode ([`serve_with`] + [`ServeOptions::replica_of`]):
//!   reads served, writes bounced with `-READONLY`, promotion via
//!   `REPLICAOF NO ONE`.
//! * [`cluster`] — horizontal partitioning, Redis cluster-style: 16384
//!   CRC16 hash slots (hash-tag aware), a persistent epoch-versioned
//!   slot map, `MOVED`/`ASK` redirects enforced at the dispatch seam,
//!   and live slot migration (epoch-pinned bulk copy + redo-log tail
//!   replay + fenced ownership flip) that loses no acknowledged write.
//!   Enabled via [`ServeOptions::cluster_announce`].
//! * [`resp`] / [`RespClient`] ([`client`]) — the wire codec (strict,
//!   incremental, binary-safe) and a small blocking client used by
//!   `dash-loadgen`, the tests and the CI smoke job; [`ClusterClient`]
//!   layers slot-aware routing and redirect following on top.
//!
//! ```no_run
//! use dash_server::{serve, EngineConfig, RespClient, ShardedDash, Value};
//!
//! let engine = ShardedDash::open(&EngineConfig {
//!     shards: 4,
//!     shard_bytes: 64 << 20,
//!     dir: Some("/tmp/dash-store".into()),
//!     ..EngineConfig::default()
//! }).unwrap();
//! let server = serve(engine, "127.0.0.1:6379").unwrap();
//!
//! let mut client = RespClient::connect(server.addr()).unwrap();
//! client.command(&[b"SET", b"user:1", b"ada"]).unwrap();
//! assert_eq!(client.command(&[b"GET", b"user:1"]).unwrap(), Value::bulk(*b"ada"));
//! server.shutdown(); // clean close: next open skips the version bump
//! ```

pub mod client;
pub mod cluster;
pub mod engine;
pub mod expire;
pub(crate) mod metrics;
pub mod net;
pub mod repl;
pub mod resp;
pub mod server;
pub mod snapshot;
pub mod trace;

pub use client::{ClusterClient, ClusterClientStats, RespClient, SlowlogEntry};
pub use cluster::slots::{key_slot, NUM_SLOTS};
pub use engine::{EngineConfig, EngineError, EngineResult, ShardInfo, ShardedDash, MAX_VALUE_LEN};
pub use expire::EvictionPolicy;
pub use repl::ReplOp;
pub use resp::{ProtocolError, Value};
pub use server::{serve, serve_with, Role, ServeOptions, ServerHandle};
pub use snapshot::{SnapshotError, SnapshotWriter};
pub use trace::{log::Level as LogLevel, Stage, TraceRecord, Tracer};
