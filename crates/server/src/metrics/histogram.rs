//! Log-bucketed latency histograms (HDR-style): ~2 buckets per octave
//! from 1 µs to beyond 10 s, recorded lock-free into per-thread stripes
//! and merged on read.
//!
//! Bucket bounds are nanoseconds. Even-indexed bounds are exact powers
//! of two microseconds (`1000 << k` ns); odd-indexed bounds sit ×√2
//! above them (×181/128, the closest 7-bit rational), so consecutive
//! bounds are a factor ≈1.41 apart — a worst-case quantization error
//! of ~41% on any reported quantile, constant across the whole range.
//! The top finite bound is ≈23.7 s, comfortably past the 10 s target;
//! anything beyond lands in the overflow (`+Inf`) bucket.
//!
//! Recording is one thread-local stripe pick plus two relaxed
//! `fetch_add`s; a [`snapshot`](Histogram::snapshot) folds the stripes
//! into plain arrays that merge across histograms (workers, families)
//! with element-wise addition.

use std::sync::atomic::{AtomicU64, Ordering};

use super::counter::{STRIPES, STRIPE_ID};

/// Octave count: bounds span `1000 << 0` .. `1000 << (OCTAVES-1)` ns.
const OCTAVES: usize = 25;
/// Finite bucket bounds (two per octave).
pub const NUM_BOUNDS: usize = OCTAVES * 2;
/// Total buckets: the finite bounds plus the overflow (`+Inf`) bucket.
pub const BUCKETS: usize = NUM_BOUNDS + 1;

/// The finite bucket upper bounds, in nanoseconds, strictly increasing:
/// 1 µs, ~1.41 µs, 2 µs, ~2.83 µs, ... ~23.7 s.
pub const BOUNDS_NS: [u64; NUM_BOUNDS] = build_bounds();

const fn build_bounds() -> [u64; NUM_BOUNDS] {
    let mut bounds = [0u64; NUM_BOUNDS];
    let mut i = 0;
    while i < NUM_BOUNDS {
        let base = 1_000u64 << (i / 2);
        bounds[i] = if i % 2 == 0 { base } else { (base * 181) >> 7 };
        i += 1;
    }
    bounds
}

/// The bucket a duration of `ns` nanoseconds falls in: the first bound
/// ≥ `ns` (Prometheus `le` semantics), or the overflow bucket.
#[inline]
pub fn bucket_index(ns: u64) -> usize {
    BOUNDS_NS.partition_point(|&b| b < ns)
}

#[repr(align(64))]
struct Stripe {
    counts: [AtomicU64; BUCKETS],
    sum_ns: AtomicU64,
}

impl Default for Stripe {
    fn default() -> Self {
        Stripe { counts: std::array::from_fn(|_| AtomicU64::new(0)), sum_ns: AtomicU64::new(0) }
    }
}

/// A write-striped latency histogram.
pub struct Histogram {
    stripes: Box<[Stripe]>,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    pub fn new() -> Histogram {
        let mut stripes = Vec::with_capacity(STRIPES);
        stripes.resize_with(STRIPES, Stripe::default);
        Histogram { stripes: stripes.into_boxed_slice() }
    }

    /// Record one observation of `ns` nanoseconds.
    #[inline]
    pub fn record(&self, ns: u64) {
        let stripe = &self.stripes[STRIPE_ID.with(|s| *s)];
        stripe.counts[bucket_index(ns)].fetch_add(1, Ordering::Relaxed);
        stripe.sum_ns.fetch_add(ns, Ordering::Relaxed);
    }

    /// Fold the stripes into one plain snapshot.
    pub fn snapshot(&self) -> HistSnapshot {
        let mut out = HistSnapshot::default();
        for stripe in self.stripes.iter() {
            for (acc, cell) in out.counts.iter_mut().zip(&stripe.counts) {
                *acc += cell.load(Ordering::Relaxed);
            }
            out.sum_ns += stripe.sum_ns.load(Ordering::Relaxed);
        }
        out
    }
}

/// A point-in-time aggregate of one histogram (or a merge of several).
#[derive(Clone)]
pub struct HistSnapshot {
    /// Per-bucket observation counts (NOT cumulative; the Prometheus
    /// renderer accumulates when it writes `_bucket` lines).
    pub counts: [u64; BUCKETS],
    pub sum_ns: u64,
}

impl Default for HistSnapshot {
    fn default() -> Self {
        HistSnapshot { counts: [0; BUCKETS], sum_ns: 0 }
    }
}

impl HistSnapshot {
    /// Total observations.
    pub fn count(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Element-wise merge (aggregation across workers or families).
    pub fn merge(&mut self, other: &HistSnapshot) {
        for (acc, n) in self.counts.iter_mut().zip(&other.counts) {
            *acc += n;
        }
        self.sum_ns += other.sum_ns;
    }

    /// The `q`-quantile (0 < q ≤ 1) as the upper bound of the bucket
    /// holding the rank-`ceil(q·count)` observation, in nanoseconds.
    /// Overflow-bucket ranks saturate to the top finite bound. `None`
    /// on an empty snapshot.
    pub fn quantile_ns(&self, q: f64) -> Option<u64> {
        let total = self.count();
        if total == 0 {
            return None;
        }
        let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
        let mut cum = 0u64;
        for (i, &n) in self.counts.iter().enumerate() {
            cum += n;
            if cum >= rank {
                return Some(BOUNDS_NS[i.min(NUM_BOUNDS - 1)]);
            }
        }
        Some(BOUNDS_NS[NUM_BOUNDS - 1])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bounds_are_strictly_increasing_and_cover_ten_seconds() {
        for w in BOUNDS_NS.windows(2) {
            assert!(w[0] < w[1], "bounds must strictly increase: {w:?}");
        }
        assert_eq!(BOUNDS_NS[0], 1_000, "first bound is 1 µs");
        assert!(
            BOUNDS_NS[NUM_BOUNDS - 1] >= 10_000_000_000,
            "top bound must reach 10 s, got {} ns",
            BOUNDS_NS[NUM_BOUNDS - 1]
        );
    }

    /// The satellite's exact-placement contract: 1 µs, 1 ms and 10 s
    /// land in the buckets the bound formula predicts.
    #[test]
    fn exact_bucket_boundaries() {
        // 1 µs is exactly the first bound — bucket 0 (le semantics).
        assert_eq!(bucket_index(1_000), 0);
        assert_eq!(bucket_index(1_001), 1);
        // 1 ms: the octave bounds around it are 724 µs (index 19) and
        // 1.024 ms (index 20).
        assert_eq!(BOUNDS_NS[19], 724_000);
        assert_eq!(BOUNDS_NS[20], 1_024_000);
        assert_eq!(bucket_index(1_000_000), 20);
        // 10 s: between 8.39 s (index 46) and 11.86 s (index 47).
        assert_eq!(bucket_index(10_000_000_000), 47);
        assert!(BOUNDS_NS[46] < 10_000_000_000 && 10_000_000_000 <= BOUNDS_NS[47]);
        // Beyond the top bound: the overflow bucket.
        assert_eq!(bucket_index(u64::MAX), NUM_BOUNDS);
        // Zero (a sub-tick duration) is still counted, in bucket 0.
        assert_eq!(bucket_index(0), 0);
    }

    #[test]
    fn merge_across_workers_matches_single_recorder() {
        // Record the same observation set from 8 threads (distinct
        // stripes) and from one, into two histograms; snapshots must
        // agree exactly.
        let striped = Histogram::new();
        let single = Histogram::new();
        let obs: Vec<u64> = (0..1000u64).map(|i| 1_000 + i * 37_000).collect();
        std::thread::scope(|s| {
            for chunk in obs.chunks(125) {
                let striped = &striped;
                s.spawn(move || {
                    for &ns in chunk {
                        striped.record(ns);
                    }
                });
            }
        });
        for &ns in &obs {
            single.record(ns);
        }
        let a = striped.snapshot();
        let b = single.snapshot();
        assert_eq!(a.counts, b.counts);
        assert_eq!(a.sum_ns, b.sum_ns);
        assert_eq!(a.count(), 1000);

        // Merging two half-snapshots reproduces the whole.
        let half = Histogram::new();
        for &ns in &obs[..500] {
            half.record(ns);
        }
        let other = Histogram::new();
        for &ns in &obs[500..] {
            other.record(ns);
        }
        let mut merged = half.snapshot();
        merged.merge(&other.snapshot());
        assert_eq!(merged.counts, b.counts);
        assert_eq!(merged.sum_ns, b.sum_ns);
    }

    #[test]
    fn quantiles_report_bucket_upper_bounds() {
        let h = Histogram::new();
        assert_eq!(h.snapshot().quantile_ns(0.99), None, "empty histogram has no quantiles");
        // 99 fast observations and one slow one: p50 reports the fast
        // bucket's bound, p99 still fast, p999+ (and max) the slow one.
        for _ in 0..99 {
            h.record(900); // < 1 µs → bucket 0, bound 1 µs
        }
        h.record(2_000_000_000); // 2 s
        let snap = h.snapshot();
        assert_eq!(snap.quantile_ns(0.5), Some(1_000));
        assert_eq!(snap.quantile_ns(0.99), Some(1_000));
        let slow_bound = BOUNDS_NS[bucket_index(2_000_000_000)];
        assert_eq!(snap.quantile_ns(1.0), Some(slow_bound));
    }
}
