//! The SLOWLOG ring: a fixed-size buffer of over-threshold commands,
//! Redis-flavored (`SLOWLOG GET/RESET/LEN` on the wire).
//!
//! The hot path pays exactly one relaxed load when a command is under
//! the threshold — the entry (with its string allocations) is only
//! built for commands that are already slow, and only then is the ring
//! mutex taken. The ring keeps the most recent [`SLOWLOG_CAP`] entries;
//! ids are monotonic and survive wrap (but not `RESET`, which clears
//! the ring while ids keep counting — Redis semantics).

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{SystemTime, UNIX_EPOCH};

use parking_lot::Mutex;

/// Entries the ring retains (older ones are evicted).
pub const SLOWLOG_CAP: usize = 128;
/// How many bytes of the first key are kept (enough to identify a key
/// family without copying a whole 1 MB value-sized key into the log).
const KEY_PREFIX_LEN: usize = 32;

/// One over-threshold command.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SlowEntry {
    /// Monotonic id (never reused, not reset by `SLOWLOG RESET`).
    pub id: u64,
    /// Unix timestamp (seconds) when the command finished.
    pub unix_secs: u64,
    /// Execution time in microseconds.
    pub duration_us: u64,
    /// Uppercased command name.
    pub cmd: String,
    /// Prefix of the first argument (usually the key), lossy UTF-8;
    /// empty for zero-argument commands.
    pub key: String,
    /// The event-loop worker that executed it.
    pub worker: u64,
    /// Per-stage nanoseconds from the sampled trace of this command,
    /// indexed by [`crate::trace::Stage::index`] — present only when
    /// the tracer captured the same request, so the slow query is
    /// explainable, not just listed.
    pub stages_ns: Option<[u64; crate::trace::Stage::COUNT]>,
}

/// The fixed-size ring of slow commands.
pub struct SlowLog {
    threshold_us: AtomicU64,
    next_id: AtomicU64,
    ring: Mutex<VecDeque<SlowEntry>>,
}

impl SlowLog {
    pub fn new(threshold_us: u64) -> SlowLog {
        SlowLog {
            threshold_us: AtomicU64::new(threshold_us),
            next_id: AtomicU64::new(0),
            ring: Mutex::new(VecDeque::with_capacity(SLOWLOG_CAP)),
        }
    }

    pub fn threshold_us(&self) -> u64 {
        self.threshold_us.load(Ordering::Relaxed)
    }

    /// Record the command if it ran for at least the threshold.
    /// `parts` is the decoded command (`parts[0]` the name); the cheap
    /// under-threshold exit happens before anything is copied.
    /// `stages_ns` is the sampled trace's stage breakdown when the
    /// tracer captured this same request.
    pub fn maybe_record(
        &self,
        duration_ns: u64,
        parts: &[Vec<u8>],
        worker: u64,
        stages_ns: Option<[u64; crate::trace::Stage::COUNT]>,
    ) {
        let duration_us = duration_ns / 1_000;
        if duration_us < self.threshold_us.load(Ordering::Relaxed) {
            return;
        }
        let cmd = String::from_utf8_lossy(&parts[0]).to_ascii_uppercase();
        let key = parts.get(1).map_or_else(String::new, |k| {
            String::from_utf8_lossy(&k[..k.len().min(KEY_PREFIX_LEN)]).into_owned()
        });
        let unix_secs =
            SystemTime::now().duration_since(UNIX_EPOCH).map_or(0, |d| d.as_secs());
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let mut ring = self.ring.lock();
        if ring.len() == SLOWLOG_CAP {
            ring.pop_front();
        }
        ring.push_back(SlowEntry { id, unix_secs, duration_us, cmd, key, worker, stages_ns });
    }

    /// The most recent `n` entries, newest first (Redis `SLOWLOG GET`).
    pub fn get(&self, n: usize) -> Vec<SlowEntry> {
        let ring = self.ring.lock();
        ring.iter().rev().take(n).cloned().collect()
    }

    /// Entries currently retained.
    pub fn len(&self) -> usize {
        self.ring.lock().len()
    }

    /// Drop every retained entry (ids keep counting).
    pub fn reset(&self) {
        self.ring.lock().clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(log: &SlowLog, us: u64, name: &str) {
        log.maybe_record(us * 1_000, &[name.as_bytes().to_vec(), b"some-key".to_vec()], 3, None);
    }

    #[test]
    fn threshold_filters_and_entries_carry_context() {
        let log = SlowLog::new(100);
        record(&log, 99, "get");
        assert_eq!(log.len(), 0, "under-threshold command must not be logged");
        record(&log, 100, "get");
        let entries = log.get(10);
        assert_eq!(entries.len(), 1);
        let e = &entries[0];
        assert_eq!((e.id, e.duration_us, e.worker), (0, 100, 3));
        assert_eq!(e.cmd, "GET");
        assert_eq!(e.key, "some-key");
        assert!(e.unix_secs > 0);
    }

    #[test]
    fn ring_wraps_keeping_newest_and_reset_clears_but_ids_continue() {
        let log = SlowLog::new(0);
        for i in 0..(SLOWLOG_CAP as u64 + 40) {
            log.maybe_record(i * 1_000, &[b"set".to_vec()], 0, None);
        }
        assert_eq!(log.len(), SLOWLOG_CAP, "ring must cap at SLOWLOG_CAP");
        let newest = log.get(3);
        let ids: Vec<u64> = newest.iter().map(|e| e.id).collect();
        let top = SLOWLOG_CAP as u64 + 39;
        assert_eq!(ids, vec![top, top - 1, top - 2], "GET returns newest first");
        // The oldest retained id is top - CAP + 1: earlier ones evicted.
        let all = log.get(usize::MAX);
        assert_eq!(all.last().unwrap().id, top - SLOWLOG_CAP as u64 + 1);
        log.reset();
        assert_eq!(log.len(), 0);
        log.maybe_record(5_000, &[b"del".to_vec()], 0, None);
        assert_eq!(log.get(1)[0].id, top + 1, "ids keep counting across RESET");
    }

    #[test]
    fn long_keys_are_truncated() {
        let log = SlowLog::new(0);
        log.maybe_record(1, &[b"get".to_vec(), vec![b'k'; 500]], 0, None);
        assert_eq!(log.get(1)[0].key.len(), 32);
    }

    #[test]
    fn stage_breakdown_rides_along_when_present() {
        let log = SlowLog::new(0);
        let stages = [1, 2, 3, 4, 5, 6, 7];
        log.maybe_record(9_000, &[b"set".to_vec(), b"k".to_vec()], 0, Some(stages));
        assert_eq!(log.get(1)[0].stages_ns, Some(stages));
    }
}
