//! Prometheus text exposition (format 0.0.4) plus the tiny HTTP/1.0
//! response builder the accept loop serves it with.
//!
//! Rendering is a pure read: striped counters are summed, histograms
//! snapshotted and written as cumulative `_bucket`/`_sum`/`_count`
//! series (bounds converted from nanoseconds to seconds for `le`), and
//! the engine/replication gauges are sampled — no locks beyond the
//! slowlog's (untouched here) and the repl hub's sink-list read lock.
//! Nothing scans the keyspace: per-shard key counts come from the
//! O(shards) counters, so a scrape is safe at any poll frequency.

use std::fmt::Write;

use crate::server::Inner;

use super::histogram::{HistSnapshot, BOUNDS_NS, NUM_BOUNDS};
use super::CmdFamily;

/// Render the whole exposition payload.
pub(crate) fn render(inner: &Inner) -> String {
    let m = &inner.metrics;
    let mut out = String::with_capacity(16 * 1024);

    counter(&mut out, "dash_connections_accepted_total", "Connections accepted.", m.connections_accepted.get());
    counter(&mut out, "dash_commands_served_total", "Commands decoded and executed.", m.commands_served.get());
    counter(&mut out, "dash_accept_errors_total", "Accept-loop errors survived (EMFILE and friends).", m.accept_errors.get());
    counter(&mut out, "dash_worker_panics_total", "Caught connection-handler and worker panics.", m.worker_panics.get());
    gauge_i(&mut out, "dash_active_connections", "Connections currently registered on an event loop.", m.active_connections.get());
    gauge_i(&mut out, "dash_event_workers", "Event-loop worker pool size.", inner.event_workers as i64);
    gauge_i(&mut out, "dash_slowlog_len", "Entries currently retained in the SLOWLOG ring.", m.slowlog.len() as i64);

    // Per-command latency histograms, one labeled series per family.
    help_type(&mut out, "dash_cmd_latency_seconds", "Command execution latency at the execute seam.", "histogram");
    for fam in CmdFamily::ALL {
        let snap = m.cmd_hist[fam.index()].snapshot();
        write_histogram(&mut out, "dash_cmd_latency_seconds", fam.name(), &snap);
    }

    // Per-stage latency from sampled traces: {stage, cmd} series.
    // Families a stage never observed are skipped — with tracing off
    // the whole block renders nothing but HELP/TYPE.
    help_type(&mut out, "dash_stage_seconds", "Per-stage request latency from sampled traces.", "histogram");
    for stage in crate::trace::Stage::ALL {
        for fam in CmdFamily::ALL {
            let snap = m.stage_snapshot(stage, fam);
            if snap.count() == 0 {
                continue;
            }
            write_stage_histogram(&mut out, stage.name(), fam.name(), &snap);
        }
    }
    counter(&mut out, "dash_traces_captured_total", "Request spans captured into the flight recorder.", inner.tracer.captured_total());
    counter(&mut out, "dash_traces_abandoned_total", "Captured spans whose reply flush was never observed.", inner.tracer.abandoned_total());

    // Engine: per-shard gauges and the paper's own instrumentation axis
    // (segment splits / directory doublings), summed engine-wide too.
    let shards = inner.engine.shard_telemetry();
    help_type(&mut out, "dash_shard_keys", "Keys per shard (O(shards) counters, no scan).", "gauge");
    help_type(&mut out, "dash_shard_capacity_slots", "Table slot capacity per shard.", "gauge");
    help_type(&mut out, "dash_shard_load_factor", "keys / capacity_slots per shard.", "gauge");
    help_type(&mut out, "dash_shard_blob_bytes", "Net value-blob bytes written minus released since open.", "gauge");
    help_type(&mut out, "dash_blob_dead_bytes", "Dead (released, unreclaimed) value-log bytes per shard.", "gauge");
    help_type(&mut out, "dash_eh_splits_total", "Dash-EH segment splits since open.", "counter");
    help_type(&mut out, "dash_eh_doublings_total", "Dash-EH directory doublings since open.", "counter");
    help_type(&mut out, "dash_eh_merges_total", "Dash-EH segment merges since open.", "counter");
    help_type(&mut out, "dash_write_lock_waits_total", "Shard write-lock acquisitions that had to wait.", "counter");
    help_type(&mut out, "dash_epoch_pins_total", "Epoch pins taken by engine operations.", "counter");
    for (i, t) in shards.iter().enumerate() {
        let lf = if t.capacity_slots == 0 { 0.0 } else { t.keys as f64 / t.capacity_slots as f64 };
        let _ = writeln!(out, "dash_shard_keys{{shard=\"{i}\"}} {}", t.keys);
        let _ = writeln!(out, "dash_shard_capacity_slots{{shard=\"{i}\"}} {}", t.capacity_slots);
        let _ = writeln!(out, "dash_shard_load_factor{{shard=\"{i}\"}} {lf}");
        let _ = writeln!(
            out,
            "dash_shard_blob_bytes{{shard=\"{i}\"}} {}",
            t.blob_bytes_written as i64 - t.blob_bytes_released as i64
        );
        let _ = writeln!(out, "dash_blob_dead_bytes{{shard=\"{i}\"}} {}", t.dead_bytes);
        let _ = writeln!(out, "dash_eh_splits_total{{shard=\"{i}\"}} {}", t.eh_splits);
        let _ = writeln!(out, "dash_eh_doublings_total{{shard=\"{i}\"}} {}", t.eh_doublings);
        let _ = writeln!(out, "dash_eh_merges_total{{shard=\"{i}\"}} {}", t.eh_merges);
        let _ = writeln!(out, "dash_write_lock_waits_total{{shard=\"{i}\"}} {}", t.write_lock_waits);
        let _ = writeln!(out, "dash_epoch_pins_total{{shard=\"{i}\"}} {}", t.epoch_pins);
    }

    // Expiration & eviction: the memory budget, what counts against it,
    // and the four ways a key leaves without a client DEL.
    let engine = &inner.engine;
    gauge_i(&mut out, "dash_maxmemory_bytes", "Configured memory budget (0 = unlimited).", engine.max_memory().unwrap_or(0) as i64);
    gauge_i(&mut out, "dash_mem_used_bytes", "Value-log bytes counted against the budget (live + pending frees).", engine.mem_used() as i64);
    gauge_i(&mut out, "dash_expire_wheel_entries", "Timer-wheel entries queued for active expiry.", engine.wheel_entries() as i64);
    counter(&mut out, "dash_expired_keys_total", "Keys removed because their TTL deadline passed (lazy + active + sweep).", engine.expired_keys_total());
    counter(&mut out, "dash_evicted_keys_total", "Keys evicted by the maxmemory policy.", engine.evicted_keys_total());
    counter(&mut out, "dash_oom_rejections_total", "Writes rejected with -OOM (eviction could not make room).", engine.oom_rejections_total());
    counter(&mut out, "dash_compactions_total", "Value-log reclamation passes that freed space.", engine.compactions_total());
    counter(&mut out, "dash_reclaimed_bytes_total", "Value-log bytes returned to the free lists by reclamation.", engine.reclaimed_bytes_total());

    // Replication: the stream position, each live sink's position and
    // lag, and how often this replica's link had to be rebuilt.
    counter(&mut out, "dash_repl_offset", "Replication stream offset (ops since store creation).", inner.engine.repl_offset());
    gauge_i(&mut out, "dash_repl_connected_replicas", "Live replica streams.", inner.engine.connected_replicas() as i64);
    counter(&mut out, "dash_log_append_errors_total", "Redo-log append failures (ops applied, records missing).", inner.engine.log_append_errors());
    counter(&mut out, "dash_repl_reconnects_total", "Replica-side reconnects to the primary.", m.repl_reconnects.get());
    help_type(&mut out, "dash_repl_sink_lag_ops", "Ops queued to a replica sink, not yet drained.", "gauge");
    help_type(&mut out, "dash_repl_sink_offset", "The sink's acknowledged stream position (offset minus lag).", "gauge");
    let offset = inner.engine.repl_offset();
    for (id, lag) in inner.engine.replica_lags() {
        let _ = writeln!(out, "dash_repl_sink_lag_ops{{sink=\"{id}\"}} {lag}");
        let _ = writeln!(out, "dash_repl_sink_offset{{sink=\"{id}\"}} {}", offset.saturating_sub(lag));
    }
    gauge_i(&mut out, "dash_repl_log_bytes", "Total bytes across the per-shard redo logs.", inner.engine.repl_log_bytes() as i64);

    // Cluster: slot ownership, redirect and migration counters. Only in
    // cluster mode — a non-cluster server exports no cluster series.
    if let Some(cl) = &inner.cluster {
        use std::sync::atomic::Ordering;
        gauge_i(&mut out, "dash_cluster_enabled", "1 when this server runs in cluster mode.", 1);
        gauge_i(&mut out, "dash_cluster_epoch", "Slot-map epoch (bumps on every topology change).", cl.epoch() as i64);
        let (assigned, owned) = cl.slot_counts();
        gauge_i(&mut out, "dash_cluster_slots_assigned", "Slots with a known owner in this node's map.", assigned as i64);
        gauge_i(&mut out, "dash_cluster_slots_owned", "Slots this node owns.", owned as i64);
        counter(&mut out, "dash_cluster_moved_redirects_total", "MOVED redirects issued.", cl.moved_redirects.load(Ordering::Relaxed));
        counter(&mut out, "dash_cluster_ask_redirects_total", "ASK redirects issued.", cl.ask_redirects.load(Ordering::Relaxed));
        counter(&mut out, "dash_cluster_migrations_started_total", "Slot migrations started on this node (source side).", cl.migrations_started.load(Ordering::Relaxed));
        counter(&mut out, "dash_cluster_migrations_completed_total", "Slot migrations completed (ownership flipped).", cl.migrations_completed.load(Ordering::Relaxed));
        counter(&mut out, "dash_cluster_migrations_failed_total", "Slot migrations aborted before the flip.", cl.migrations_failed.load(Ordering::Relaxed));
        counter(&mut out, "dash_cluster_keys_migrated_total", "Keys streamed to migration targets (bulk + tail).", cl.keys_migrated_total.load(Ordering::Relaxed));
        gauge_i(&mut out, "dash_cluster_migration_active", "1 while an outbound slot migration is running.", i64::from(cl.migration.lock().active));
    }
    out
}

fn help_type(out: &mut String, name: &str, help: &str, kind: &str) {
    let _ = writeln!(out, "# HELP {name} {help}");
    let _ = writeln!(out, "# TYPE {name} {kind}");
}

fn counter(out: &mut String, name: &str, help: &str, value: u64) {
    help_type(out, name, help, "counter");
    let _ = writeln!(out, "{name} {value}");
}

fn gauge_i(out: &mut String, name: &str, help: &str, value: i64) {
    help_type(out, name, help, "gauge");
    let _ = writeln!(out, "{name} {value}");
}

/// One family's `_bucket`/`_sum`/`_count` series. Buckets are emitted
/// cumulative with an explicit `+Inf`, per the exposition format.
fn write_histogram(out: &mut String, name: &str, family: &str, snap: &HistSnapshot) {
    let mut cum = 0u64;
    for (count, bound) in snap.counts.iter().zip(BOUNDS_NS.iter()) {
        cum += count;
        let le = *bound as f64 / 1e9;
        let _ = writeln!(out, "{name}_bucket{{cmd=\"{family}\",le=\"{le}\"}} {cum}");
    }
    cum += snap.counts[NUM_BOUNDS];
    let _ = writeln!(out, "{name}_bucket{{cmd=\"{family}\",le=\"+Inf\"}} {cum}");
    let _ = writeln!(out, "{name}_sum{{cmd=\"{family}\"}} {}", snap.sum_ns as f64 / 1e9);
    let _ = writeln!(out, "{name}_count{{cmd=\"{family}\"}} {cum}");
}

/// The two-label (`stage`, `cmd`) variant of [`write_histogram`] for
/// `dash_stage_seconds`.
fn write_stage_histogram(out: &mut String, stage: &str, family: &str, snap: &HistSnapshot) {
    let labels = format!("stage=\"{stage}\",cmd=\"{family}\"");
    let mut cum = 0u64;
    for (count, bound) in snap.counts.iter().zip(BOUNDS_NS.iter()) {
        cum += count;
        let le = *bound as f64 / 1e9;
        let _ = writeln!(out, "dash_stage_seconds_bucket{{{labels},le=\"{le}\"}} {cum}");
    }
    cum += snap.counts[NUM_BOUNDS];
    let _ = writeln!(out, "dash_stage_seconds_bucket{{{labels},le=\"+Inf\"}} {cum}");
    let _ = writeln!(out, "dash_stage_seconds_sum{{{labels}}} {}", snap.sum_ns as f64 / 1e9);
    let _ = writeln!(out, "dash_stage_seconds_count{{{labels}}} {cum}");
}

// ---- minimal HTTP/1.0 responder ------------------------------------------
//
// Just enough HTTP for `curl` and a Prometheus scraper: the request head
// is parsed for its path, the body is rendered lazily (404s never pay
// for an exposition render), and the response always closes the
// connection (HTTP/1.0, `Connection: close`).

/// Is a full request head (`...\r\n\r\n`) present in `buf`?
pub(crate) fn request_complete(buf: &[u8]) -> bool {
    buf.windows(4).any(|w| w == b"\r\n\r\n")
}

/// Build the full response bytes for a buffered request head.
/// `metrics_body` is only invoked for a scrape-path hit.
pub(crate) fn respond(head: &[u8], metrics_body: impl FnOnce() -> String) -> Vec<u8> {
    let line = head.split(|&b| b == b'\r').next().unwrap_or(b"");
    let mut words = line.split(|&b| b == b' ').filter(|w| !w.is_empty());
    let method = words.next().unwrap_or(b"");
    let path = words.next().unwrap_or(b"");
    if method != b"GET" {
        return http_response(405, "Method Not Allowed", "text/plain", "method not allowed\n");
    }
    match path {
        b"/metrics" | b"/" => http_response(
            200,
            "OK",
            "text/plain; version=0.0.4; charset=utf-8",
            &metrics_body(),
        ),
        _ => http_response(404, "Not Found", "text/plain", "not found (try /metrics)\n"),
    }
}

fn http_response(code: u16, reason: &str, content_type: &str, body: &str) -> Vec<u8> {
    format!(
        "HTTP/1.0 {code} {reason}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    )
    .into_bytes()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_head_detection() {
        assert!(!request_complete(b"GET /metrics HTTP/1.0\r\n"));
        assert!(request_complete(b"GET /metrics HTTP/1.0\r\n\r\n"));
        assert!(request_complete(b"GET / HTTP/1.1\r\nHost: x\r\nAccept: */*\r\n\r\n"));
    }

    #[test]
    fn routes_and_statuses() {
        let ok = respond(b"GET /metrics HTTP/1.0\r\n\r\n", || "dash_up 1\n".into());
        let text = String::from_utf8(ok).unwrap();
        assert!(text.starts_with("HTTP/1.0 200 OK\r\n"), "{text}");
        assert!(text.contains("Content-Length: 10\r\n"), "{text}");
        assert!(text.ends_with("\r\n\r\ndash_up 1\n"), "{text}");

        let mut rendered = false;
        let nf = respond(b"GET /nope HTTP/1.1\r\nHost: x\r\n\r\n", || {
            rendered = true;
            String::new()
        });
        assert!(String::from_utf8(nf).unwrap().starts_with("HTTP/1.0 404"));
        assert!(!rendered, "a 404 must not pay for an exposition render");

        let mna = respond(b"POST /metrics HTTP/1.0\r\n\r\n", String::new);
        assert!(String::from_utf8(mna).unwrap().starts_with("HTTP/1.0 405"));
    }

    #[test]
    fn histogram_series_are_cumulative_with_inf_and_count() {
        let h = super::super::histogram::Histogram::new();
        h.record(500);
        h.record(1_500);
        h.record(u64::MAX); // overflow bucket
        let mut out = String::new();
        write_histogram(&mut out, "t_seconds", "get", &h.snapshot());
        let buckets: Vec<u64> = out
            .lines()
            .filter(|l| l.starts_with("t_seconds_bucket"))
            .map(|l| l.rsplit(' ').next().unwrap().parse().unwrap())
            .collect();
        assert_eq!(buckets.len(), NUM_BOUNDS + 1);
        assert!(buckets.windows(2).all(|w| w[0] <= w[1]), "buckets must be cumulative");
        assert_eq!(*buckets.last().unwrap(), 3, "+Inf bucket equals the count");
        assert!(out.contains("t_seconds_count{cmd=\"get\"} 3"), "{out}");
        assert!(out.contains("le=\"0.000001\""), "1 µs bound in seconds: {out}");
        assert!(out.contains("le=\"+Inf\""), "{out}");
        assert!(out.contains("t_seconds_sum{cmd=\"get\"}"), "{out}");
    }

    #[test]
    fn stage_series_carry_both_labels() {
        let h = super::super::histogram::Histogram::new();
        h.record(2_000);
        let mut out = String::new();
        write_stage_histogram(&mut out, "persist", "set", &h.snapshot());
        assert!(
            out.contains("dash_stage_seconds_bucket{stage=\"persist\",cmd=\"set\",le=\"+Inf\"} 1"),
            "{out}"
        );
        assert!(out.contains("dash_stage_seconds_count{stage=\"persist\",cmd=\"set\"} 1"), "{out}");
        assert!(out.contains("dash_stage_seconds_sum{stage=\"persist\",cmd=\"set\"}"), "{out}");
    }
}
