//! The server's telemetry layer: a registry-free, lock-free set of
//! counters, gauges, per-command-family latency histograms and the
//! SLOWLOG ring — everything `INFO stats` / `INFO latency`, the
//! `SLOWLOG` command and the `--metrics-addr` Prometheus endpoint read.
//!
//! Design constraints, in order:
//!
//! * **The hot path pays almost nothing.** Recording a command is one
//!   `Instant` pair around `execute`, two relaxed `fetch_add`s into a
//!   thread-local stripe ([`histogram`]), and one relaxed load for the
//!   slowlog threshold. No locks, no allocation, no shared cacheline
//!   between event workers.
//! * **Readers pay the aggregation.** INFO and a scrape sum the
//!   stripes; both are O(shards + buckets), never O(keys).
//! * **Nothing is counted twice.** The event core's health counters
//!   (`worker_panics`, `accept_errors`, ...) that used to live as ad-hoc
//!   `pub(crate)` atomics on `Inner` live *here* now — `net/` pokes the
//!   registry, and INFO/Prometheus render the same cells.

pub mod counter;
pub mod histogram;
pub mod slowlog;
pub(crate) mod prometheus;

use std::time::Duration;

pub use counter::{Counter, Gauge};
pub use histogram::{HistSnapshot, Histogram};
pub use slowlog::SlowLog;

/// Default `--slowlog-threshold-us`: 10 ms.
pub const DEFAULT_SLOWLOG_THRESHOLD_US: u64 = 10_000;

/// The command families latency is recorded under. Coarse on purpose:
/// a family is a latency *class* (point read, point write, batch read,
/// batch write, delete, iteration, replication bootstrap), not a
/// command name — `EXISTS` times like `GET` but is rare enough to pool
/// under `other` with the rest of the admin surface.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmdFamily {
    Get,
    Set,
    Mget,
    Mset,
    Del,
    Scan,
    Psync,
    Other,
}

impl CmdFamily {
    pub const COUNT: usize = 8;
    pub const ALL: [CmdFamily; Self::COUNT] = [
        CmdFamily::Get,
        CmdFamily::Set,
        CmdFamily::Mget,
        CmdFamily::Mset,
        CmdFamily::Del,
        CmdFamily::Scan,
        CmdFamily::Psync,
        CmdFamily::Other,
    ];

    /// Classify a wire command name (case-insensitive).
    pub fn classify(name: &[u8]) -> CmdFamily {
        const TABLE: [(&[u8], CmdFamily); 8] = [
            (b"GET", CmdFamily::Get),
            (b"SET", CmdFamily::Set),
            (b"MGET", CmdFamily::Mget),
            (b"MSET", CmdFamily::Mset),
            (b"DEL", CmdFamily::Del),
            // Same contract, same latency class — only the reclaim
            // batching differs, which the hot path never sees.
            (b"UNLINK", CmdFamily::Del),
            (b"SCAN", CmdFamily::Scan),
            (b"PSYNC", CmdFamily::Psync),
        ];
        TABLE
            .iter()
            .find(|(n, _)| name.eq_ignore_ascii_case(n))
            .map_or(CmdFamily::Other, |(_, f)| *f)
    }

    pub fn index(self) -> usize {
        self as usize
    }

    /// The label value on the wire (`INFO latency` field prefixes and
    /// the Prometheus `cmd` label).
    pub fn name(self) -> &'static str {
        match self {
            CmdFamily::Get => "get",
            CmdFamily::Set => "set",
            CmdFamily::Mget => "mget",
            CmdFamily::Mset => "mset",
            CmdFamily::Del => "del",
            CmdFamily::Scan => "scan",
            CmdFamily::Psync => "psync",
            CmdFamily::Other => "other",
        }
    }
}

/// The server-wide metrics registry, owned by `server::Inner`.
pub struct Metrics {
    /// Connections accepted by the listener.
    pub connections_accepted: Counter,
    /// Commands decoded and executed.
    pub commands_served: Counter,
    /// Accept-loop errors survived (EMFILE and friends).
    pub accept_errors: Counter,
    /// Caught connection-handler panics plus panicked worker/stream
    /// threads found at join. Zero on a healthy server.
    pub worker_panics: Counter,
    /// Connections currently registered on an event loop.
    pub active_connections: Gauge,
    /// Replica-side reconnects to the primary (each costs a full sync).
    pub repl_reconnects: Counter,
    /// Per-family execute-seam latency, indexed by [`CmdFamily::index`].
    pub cmd_hist: [Histogram; CmdFamily::COUNT],
    /// Per-stage latency by command family, `stage_hist[stage][family]`
    /// — fed only by sampled trace completions (so the un-sampled hot
    /// path never touches it), rendered as
    /// `dash_stage_seconds{stage,cmd}` on the Prometheus endpoint.
    /// Boxed: 7×8 striped histograms are a few hundred KB.
    pub stage_hist: Box<[[Histogram; CmdFamily::COUNT]; crate::trace::Stage::COUNT]>,
    /// The SLOWLOG ring.
    pub slowlog: SlowLog,
}

impl Metrics {
    pub fn new(slowlog_threshold_us: u64) -> Metrics {
        Metrics {
            connections_accepted: Counter::new(),
            commands_served: Counter::new(),
            accept_errors: Counter::new(),
            worker_panics: Counter::new(),
            active_connections: Gauge::new(),
            repl_reconnects: Counter::new(),
            cmd_hist: std::array::from_fn(|_| Histogram::new()),
            stage_hist: Box::new(std::array::from_fn(|_| {
                std::array::from_fn(|_| Histogram::new())
            })),
            slowlog: SlowLog::new(slowlog_threshold_us),
        }
    }

    /// Record one executed command: classify, time, and slowlog it.
    /// Called at the `conn.rs` execute seam with the decoded command;
    /// `stages_ns` carries the stage breakdown when this request was
    /// trace-sampled, so SLOWLOG entries can explain themselves.
    #[inline]
    pub fn observe_command(
        &self,
        parts: &[Vec<u8>],
        elapsed: Duration,
        worker: u64,
        stages_ns: Option<[u64; crate::trace::Stage::COUNT]>,
    ) {
        let ns = u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX);
        let family = CmdFamily::classify(&parts[0]);
        self.cmd_hist[family.index()].record(ns);
        self.slowlog.maybe_record(ns, parts, worker, stages_ns);
    }

    /// Feed one completed sampled span into the per-stage histograms.
    /// Runs once per *captured* trace, never on the un-sampled path.
    pub fn observe_stages(&self, family: CmdFamily, stages_ns: &[u64; crate::trace::Stage::COUNT]) {
        for (stage_row, &ns) in self.stage_hist.iter().zip(stages_ns) {
            stage_row[family.index()].record(ns);
        }
    }

    /// One family's merged latency snapshot.
    pub fn cmd_snapshot(&self, family: CmdFamily) -> HistSnapshot {
        self.cmd_hist[family.index()].snapshot()
    }

    /// One (stage, family) cell's snapshot.
    pub fn stage_snapshot(&self, stage: crate::trace::Stage, family: CmdFamily) -> HistSnapshot {
        self.stage_hist[stage.index()][family.index()].snapshot()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_is_case_insensitive_and_total() {
        assert_eq!(CmdFamily::classify(b"get"), CmdFamily::Get);
        assert_eq!(CmdFamily::classify(b"GeT"), CmdFamily::Get);
        assert_eq!(CmdFamily::classify(b"MSET"), CmdFamily::Mset);
        assert_eq!(CmdFamily::classify(b"psync"), CmdFamily::Psync);
        assert_eq!(CmdFamily::classify(b"EXISTS"), CmdFamily::Other);
        assert_eq!(CmdFamily::classify(b"NOSUCH"), CmdFamily::Other);
        for (i, fam) in CmdFamily::ALL.iter().enumerate() {
            assert_eq!(fam.index(), i, "index must match ALL order");
        }
    }

    #[test]
    fn observe_routes_to_family_and_slowlog() {
        let m = Metrics::new(0); // threshold 0: everything is "slow"
        m.observe_command(&[b"GET".to_vec(), b"k".to_vec()], Duration::from_micros(5), 1, None);
        m.observe_command(
            &[b"SET".to_vec(), b"k".to_vec(), b"v".to_vec()],
            Duration::from_micros(7),
            2,
            None,
        );
        assert_eq!(m.cmd_snapshot(CmdFamily::Get).count(), 1);
        assert_eq!(m.cmd_snapshot(CmdFamily::Set).count(), 1);
        assert_eq!(m.cmd_snapshot(CmdFamily::Other).count(), 0);
        assert_eq!(m.slowlog.len(), 2);
        assert_eq!(m.slowlog.get(1)[0].cmd, "SET");
    }

    #[test]
    fn stage_observations_land_in_their_cells_only() {
        use crate::trace::Stage;
        let m = Metrics::new(1_000_000);
        m.observe_stages(CmdFamily::Set, &[10, 20, 30, 40, 50, 60, 70]);
        for stage in Stage::ALL {
            assert_eq!(m.stage_snapshot(stage, CmdFamily::Set).count(), 1);
            assert_eq!(m.stage_snapshot(stage, CmdFamily::Get).count(), 0);
        }
        let persist = m.stage_snapshot(Stage::Persist, CmdFamily::Set);
        assert_eq!(persist.sum_ns, 60);
    }
}
