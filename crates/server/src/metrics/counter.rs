//! Striped atomic counters and a plain gauge — the primitive cells the
//! metrics registry is built from.
//!
//! A [`Counter`] spreads its increments over [`STRIPES`] cacheline-
//! padded atomics, indexed by a thread-local stripe id (the same
//! pattern the pmem crate's `PmStats` uses): event-loop workers bump
//! disjoint cachelines on the hot path, and only a reader (INFO, a
//! Prometheus scrape) pays the sum. A [`Gauge`] is one signed atomic —
//! its users (connection counts) change it at accept/close frequency,
//! where contention is irrelevant and signed add/sub semantics matter
//! more than striping.

use std::sync::atomic::{AtomicI64, AtomicU64, AtomicUsize, Ordering};

/// Stripe count: enough that a worker pool sized to available CPUs
/// rarely shares a stripe, small enough that reads stay trivial.
pub(crate) const STRIPES: usize = 16;

thread_local! {
    /// This thread's stripe index, assigned round-robin at first use.
    pub(crate) static STRIPE_ID: usize = {
        static NEXT: AtomicUsize = AtomicUsize::new(0);
        NEXT.fetch_add(1, Ordering::Relaxed) % STRIPES
    };
}

#[repr(align(64))]
#[derive(Default)]
struct Cell(AtomicU64);

/// A monotonic, lock-free, write-striped counter.
pub struct Counter {
    cells: Box<[Cell]>,
}

impl Default for Counter {
    fn default() -> Self {
        Self::new()
    }
}

impl Counter {
    pub fn new() -> Counter {
        let mut cells = Vec::with_capacity(STRIPES);
        cells.resize_with(STRIPES, Cell::default);
        Counter { cells: cells.into_boxed_slice() }
    }

    #[inline]
    pub fn add(&self, n: u64) {
        let id = STRIPE_ID.with(|s| *s);
        self.cells[id].0.fetch_add(n, Ordering::Relaxed);
    }

    #[inline]
    pub fn incr(&self) {
        self.add(1);
    }

    /// Current total (sums the stripes — a read-side cost by design).
    pub fn get(&self) -> u64 {
        self.cells.iter().map(|c| c.0.load(Ordering::Relaxed)).sum()
    }
}

/// A signed point-in-time gauge (e.g. active connections).
#[derive(Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    pub fn new() -> Gauge {
        Gauge(AtomicI64::new(0))
    }

    #[inline]
    pub fn add(&self, n: i64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    #[inline]
    pub fn sub(&self, n: i64) {
        self.0.fetch_sub(n, Ordering::Relaxed);
    }

    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_sums_across_threads() {
        let c = Counter::new();
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    for _ in 0..1000 {
                        c.incr();
                    }
                });
            }
        });
        assert_eq!(c.get(), 8000);
        c.add(5);
        assert_eq!(c.get(), 8005);
    }

    #[test]
    fn gauge_goes_both_ways() {
        let g = Gauge::new();
        g.add(3);
        g.sub(5);
        assert_eq!(g.get(), -2);
    }
}
