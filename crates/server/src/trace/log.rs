//! Structured leveled logging: JSON lines to stderr or `--log-file`.
//!
//! One line per event, machine-greppable (`grep '"level":"error"'`
//! must come back empty on a healthy run — CI asserts exactly that):
//!
//! ```json
//! {"ts_ms":1722950400123,"level":"warn","target":"repl","msg":"replication link to 127.0.0.1:7379: connection refused; retrying"}
//! ```
//!
//! The global logger is process-wide and reconfigurable (tests and the
//! two binaries set it up; library code just calls the macros). Level
//! filtering is one relaxed atomic load, so a suppressed `debug!` costs
//! nothing measurable. The sink mutex is only taken for lines that
//! pass the filter.

use std::fs::{File, OpenOptions};
use std::io::{self, Write as _};
use std::path::Path;
use std::sync::atomic::{AtomicU8, Ordering};

use parking_lot::Mutex;

/// Log severity, ordered: a configured level admits itself and
/// everything more severe.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    Error = 0,
    Warn = 1,
    Info = 2,
    Debug = 3,
}

impl Level {
    pub fn name(self) -> &'static str {
        match self {
            Level::Error => "error",
            Level::Warn => "warn",
            Level::Info => "info",
            Level::Debug => "debug",
        }
    }

    /// Parse a `--log-level` argument (case-insensitive).
    pub fn parse(s: &str) -> Option<Level> {
        match s.to_ascii_lowercase().as_str() {
            "error" => Some(Level::Error),
            "warn" | "warning" => Some(Level::Warn),
            "info" => Some(Level::Info),
            "debug" => Some(Level::Debug),
            _ => None,
        }
    }

    fn from_u8(v: u8) -> Level {
        match v {
            0 => Level::Error,
            1 => Level::Warn,
            2 => Level::Info,
            _ => Level::Debug,
        }
    }
}

static MAX_LEVEL: AtomicU8 = AtomicU8::new(Level::Info as u8);
static SINK: Mutex<Option<File>> = Mutex::new(None);

/// Set the maximum level that gets emitted (default: info).
pub fn set_level(level: Level) {
    MAX_LEVEL.store(level as u8, Ordering::SeqCst);
}

pub fn level() -> Level {
    Level::from_u8(MAX_LEVEL.load(Ordering::Relaxed))
}

/// Route log lines to a file (append, created if missing) instead of
/// stderr. Fails if the file cannot be opened.
pub fn set_file(path: &Path) -> io::Result<()> {
    let f = OpenOptions::new().create(true).append(true).open(path)?;
    *SINK.lock() = Some(f);
    Ok(())
}

/// Route log lines back to stderr (the default; used by tests).
pub fn set_stderr() {
    *SINK.lock() = None;
}

#[inline]
pub fn enabled(level: Level) -> bool {
    level as u8 <= MAX_LEVEL.load(Ordering::Relaxed)
}

/// Emit one JSON line. Prefer the [`error!`]/[`warn!`]/[`info!`]/
/// [`debug!`] macros, which skip formatting when the level is off.
pub fn log(level: Level, target: &str, msg: &str) {
    if !enabled(level) {
        return;
    }
    let mut line = String::with_capacity(64 + target.len() + msg.len());
    line.push_str("{\"ts_ms\":");
    line.push_str(&super::unix_ms().to_string());
    line.push_str(",\"level\":\"");
    line.push_str(level.name());
    line.push_str("\",\"target\":\"");
    escape_into(&mut line, target);
    line.push_str("\",\"msg\":\"");
    escape_into(&mut line, msg);
    line.push_str("\"}\n");
    let mut sink = SINK.lock();
    // A full or broken sink must never take the server down with it.
    let _ = match sink.as_mut() {
        Some(f) => f.write_all(line.as_bytes()),
        None => io::stderr().write_all(line.as_bytes()),
    };
}

/// Minimal JSON string escaping (quotes, backslash, control chars).
fn escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

#[macro_export]
macro_rules! log_error {
    ($target:expr, $($arg:tt)*) => {
        if $crate::trace::log::enabled($crate::trace::log::Level::Error) {
            $crate::trace::log::log($crate::trace::log::Level::Error, $target, &format!($($arg)*));
        }
    };
}

#[macro_export]
macro_rules! log_warn {
    ($target:expr, $($arg:tt)*) => {
        if $crate::trace::log::enabled($crate::trace::log::Level::Warn) {
            $crate::trace::log::log($crate::trace::log::Level::Warn, $target, &format!($($arg)*));
        }
    };
}

#[macro_export]
macro_rules! log_info {
    ($target:expr, $($arg:tt)*) => {
        if $crate::trace::log::enabled($crate::trace::log::Level::Info) {
            $crate::trace::log::log($crate::trace::log::Level::Info, $target, &format!($($arg)*));
        }
    };
}

#[macro_export]
macro_rules! log_debug {
    ($target:expr, $($arg:tt)*) => {
        if $crate::trace::log::enabled($crate::trace::log::Level::Debug) {
            $crate::trace::log::log($crate::trace::log::Level::Debug, $target, &format!($($arg)*));
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn level_parse_and_ordering() {
        assert_eq!(Level::parse("WARN"), Some(Level::Warn));
        assert_eq!(Level::parse("warning"), Some(Level::Warn));
        assert_eq!(Level::parse("nope"), None);
        assert!(Level::Error < Level::Debug, "error is most severe / lowest");
    }

    #[test]
    fn escaping_produces_valid_json_strings() {
        let mut s = String::new();
        escape_into(&mut s, "a\"b\\c\nd\te\u{1}");
        assert_eq!(s, "a\\\"b\\\\c\\nd\\te\\u0001");
    }

    #[test]
    fn file_sink_receives_json_lines() {
        let dir = std::env::temp_dir().join(format!("dash-logtest-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("log.jsonl");
        set_file(&path).unwrap();
        set_level(Level::Debug);
        log(Level::Warn, "test", "hello \"world\"");
        log(Level::Debug, "test", "fine-grained");
        set_level(Level::Info);
        log(Level::Debug, "test", "suppressed");
        set_stderr();
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::remove_dir_all(&dir).ok();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2, "suppressed line must not be written: {text}");
        assert!(lines[0].contains("\"level\":\"warn\""));
        assert!(lines[0].contains("\"target\":\"test\""));
        assert!(lines[0].contains("hello \\\"world\\\""));
        assert!(lines[1].contains("\"level\":\"debug\""));
    }
}
