//! End-to-end request tracing: per-stage latency attribution and the
//! flight recorder.
//!
//! The paper's argument (Dash §3) is that PM hash-table latency is
//! dominated by *avoidable* costs — bucket lock waits, cacheline
//! flushes, fence stalls. One merged latency histogram cannot show
//! that; this module follows individual requests from epoll readiness
//! to flushed reply and attributes their time to seven stages:
//!
//! | stage         | measures                                            |
//! |---------------|-----------------------------------------------------|
//! | `queue_wait`  | readiness (or previous pipelined command) → parse   |
//! | `parse`       | RESP decode of the command                          |
//! | `dispatch`    | execute entry → first engine touch (cluster gate,   |
//! |               | role check, argument parsing)                       |
//! | `lock_wait`   | blocked time acquiring contended shard write locks  |
//! | `execute`     | engine work proper (table probe, blob copy, …)      |
//! | `persist`     | PM flush + fence wall time ([`pmem::persist_timer`])|
//! | `reply_flush` | execute end → last reply byte accepted by the socket|
//!
//! The stage sums are within rounding of the measured total *by
//! construction*: `dispatch` is the residual before the first engine
//! touch, `execute` the engine residual after `lock_wait` and
//! `persist` are subtracted.
//!
//! **Cost discipline.** Full stage detail is only collected for
//! *captured* requests — 1-in-N sampled ([`Tracer::sample_every`]),
//! forced by `TRACEID` (trace propagation), or over the latency
//! threshold (coarse, from timestamps already taken). A non-captured
//! request on a tracing-enabled server pays two extra `Instant` reads
//! and a thread-local counter bump; with tracing off it pays one
//! relaxed atomic load. The engine/pmem hooks behind `lock_wait` and
//! `persist` check a thread-local flag and do nothing when no span is
//! active, so the un-sampled hot path never takes a timestamp there.
//!
//! Captured spans land in fixed-size per-worker flight-recorder rings
//! ([`Tracer::record`]), dumpable on demand (`TRACE DUMP`,
//! `TRACE GET <id>`) and on worker panic — a tail-latency spike or a
//! crash always leaves a forensic record. Trace identity propagates:
//! a cluster client re-sends its correlation id with an incremented
//! hop count after every MOVED/ASK redirect, and a traced write on the
//! primary emits `TRACEID` into the PSYNC tail so the replica records
//! the apply under the same id.

pub mod log;

use std::cell::Cell;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Instant, SystemTime, UNIX_EPOCH};

use parking_lot::{Mutex, RwLock};

/// Spans each per-worker flight-recorder ring retains.
pub const RING_CAP: usize = 256;
/// Default `TRACE ON` sampling period (1-in-N).
pub const DEFAULT_SAMPLE: u64 = 64;
/// Default always-capture threshold in microseconds (aligned with the
/// SLOWLOG default): a request slower than this is recorded even when
/// the sampler did not pick it. 0 disables threshold capture.
pub const DEFAULT_THRESHOLD_US: u64 = 10_000;
/// Worker id recorded for spans captured on the replica sync thread.
pub const REPL_WORKER: u64 = u64::MAX;
/// Bytes of key kept in a span (same truncation as the SLOWLOG).
const KEY_PREFIX_LEN: usize = 32;

/// The seven stages of a request's timeline, in wall-clock order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stage {
    QueueWait,
    Parse,
    Dispatch,
    LockWait,
    Execute,
    Persist,
    ReplyFlush,
}

impl Stage {
    pub const COUNT: usize = 7;
    pub const ALL: [Stage; Self::COUNT] = [
        Stage::QueueWait,
        Stage::Parse,
        Stage::Dispatch,
        Stage::LockWait,
        Stage::Execute,
        Stage::Persist,
        Stage::ReplyFlush,
    ];

    pub fn index(self) -> usize {
        self as usize
    }

    /// The label on every wire surface (TRACE replies, the Prometheus
    /// `stage` label, the loadgen stage table).
    pub fn name(self) -> &'static str {
        match self {
            Stage::QueueWait => "queue_wait",
            Stage::Parse => "parse",
            Stage::Dispatch => "dispatch",
            Stage::LockWait => "lock_wait",
            Stage::Execute => "execute",
            Stage::Persist => "persist",
            Stage::ReplyFlush => "reply_flush",
        }
    }
}

/// Why a span was captured.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Reason {
    /// The 1-in-N sampler picked it (full stage detail).
    Sampled,
    /// Over the latency threshold but not sampled — stage detail is
    /// coarse (`execute` holds the whole execute-seam time).
    Threshold,
    /// Forced by a `TRACEID` command (cluster/client propagation).
    Forced,
    /// A replicated op applied on a replica under a propagated id.
    Repl,
}

impl Reason {
    pub fn name(self) -> &'static str {
        match self {
            Reason::Sampled => "sampled",
            Reason::Threshold => "threshold",
            Reason::Forced => "forced",
            Reason::Repl => "repl",
        }
    }
}

/// One captured request span — a flight-recorder ring entry.
#[derive(Debug, Clone)]
pub struct TraceRecord {
    /// This server's id for the span (unique per server process).
    pub id: u64,
    /// Correlation id shared across hops (cluster redirects,
    /// replication). Equals `id` for spans that originated here.
    pub origin: u64,
    /// Redirect hop count (0 = first attempt / not a redirect).
    pub hops: u32,
    /// Unix milliseconds when the span completed.
    pub unix_ms: u64,
    /// Uppercased command name.
    pub cmd: String,
    /// Prefix of the first argument (usually the key), lossy UTF-8.
    pub key: String,
    /// Event-loop worker that served it ([`REPL_WORKER`] = sync thread).
    pub worker: u64,
    /// Independently measured total (readiness → flushed reply), ns.
    pub total_ns: u64,
    pub reason: Reason,
    /// Per-stage nanoseconds, indexed by [`Stage::index`].
    pub stages_ns: [u64; Stage::COUNT],
}

impl TraceRecord {
    /// Build a record at execute completion. `total_ns` is the
    /// independently measured pre-flush total (readiness → execute end);
    /// the reply-flush stage is stamped — and added to the total — when
    /// the reply bytes reach the kernel. `origin` starts equal to `id`;
    /// propagated spans overwrite it.
    pub fn new(
        id: u64,
        hops: u32,
        parts: &[Vec<u8>],
        worker: u64,
        stages_ns: [u64; Stage::COUNT],
        total_ns: u64,
        reason: Reason,
    ) -> TraceRecord {
        let cmd = parts
            .first()
            .map(|c| String::from_utf8_lossy(c).to_ascii_uppercase())
            .unwrap_or_default();
        let key = parts
            .get(1)
            .map(|k| String::from_utf8_lossy(&k[..k.len().min(KEY_PREFIX_LEN)]).into_owned())
            .unwrap_or_default();
        TraceRecord {
            id,
            origin: id,
            hops,
            unix_ms: unix_ms(),
            cmd,
            key,
            worker,
            total_ns,
            reason,
            stages_ns,
        }
    }

    /// Sum of the stage attributions — the invariant surface checked
    /// against [`TraceRecord::total_ns`] (within rounding + clock
    /// saturation, ≤ 10% by the acceptance bar).
    pub fn stage_sum_ns(&self) -> u64 {
        self.stages_ns.iter().sum()
    }
}

type Ring = Mutex<VecDeque<TraceRecord>>;

/// The tracing control plane, owned by `server::Inner`: on/off, the
/// sampling knobs, the id allocator, and the per-worker rings.
pub struct Tracer {
    enabled: AtomicBool,
    sample_every: AtomicU64,
    threshold_us: AtomicU64,
    next_id: AtomicU64,
    /// Spans captured into a ring since start.
    captured: AtomicU64,
    /// Captured spans whose reply-flush completion was never observed
    /// (connection died first) or that were evicted from the pending
    /// queue under backpressure.
    abandoned: AtomicU64,
    /// `(worker id, ring)` — created on first use per worker, read
    /// whole by DUMP/GET. The list write lock is only taken on first
    /// registration of a worker.
    rings: RwLock<Vec<(u64, Arc<Ring>)>>,
}

impl Default for Tracer {
    fn default() -> Self {
        Self::new()
    }
}

impl Tracer {
    pub fn new() -> Tracer {
        Tracer {
            enabled: AtomicBool::new(false),
            sample_every: AtomicU64::new(DEFAULT_SAMPLE),
            threshold_us: AtomicU64::new(DEFAULT_THRESHOLD_US),
            next_id: AtomicU64::new(1),
            captured: AtomicU64::new(0),
            abandoned: AtomicU64::new(0),
            rings: RwLock::new(Vec::new()),
        }
    }

    #[inline]
    pub fn enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::SeqCst);
    }

    pub fn sample_every(&self) -> u64 {
        self.sample_every.load(Ordering::Relaxed)
    }

    /// Set the sampling period (1-in-N; 0 disables the sampler, leaving
    /// threshold and forced capture).
    pub fn set_sample_every(&self, n: u64) {
        self.sample_every.store(n, Ordering::SeqCst);
    }

    pub fn threshold_us(&self) -> u64 {
        self.threshold_us.load(Ordering::Relaxed)
    }

    pub fn set_threshold_us(&self, us: u64) {
        self.threshold_us.store(us, Ordering::SeqCst);
    }

    pub fn captured_total(&self) -> u64 {
        self.captured.load(Ordering::Relaxed)
    }

    pub fn abandoned_total(&self) -> u64 {
        self.abandoned.load(Ordering::Relaxed)
    }

    pub fn note_abandoned(&self, n: u64) {
        self.abandoned.fetch_add(n, Ordering::Relaxed);
    }

    /// Allocate a fresh span id (unique on this server, never 0).
    pub fn alloc_id(&self) -> u64 {
        self.next_id.fetch_add(1, Ordering::Relaxed)
    }

    /// Should this command be sampled? One thread-local counter bump;
    /// every worker samples its own 1-in-N slice.
    #[inline]
    pub fn sample_tick(&self) -> bool {
        let n = self.sample_every.load(Ordering::Relaxed);
        if n == 0 {
            return false;
        }
        SAMPLE_TICK.with(|t| {
            let v = t.get().wrapping_add(1);
            t.set(v);
            v % n == 0
        })
    }

    fn ring_for(&self, worker: u64) -> Arc<Ring> {
        if let Some((_, r)) = self.rings.read().iter().find(|(w, _)| *w == worker) {
            return r.clone();
        }
        let mut rings = self.rings.write();
        if let Some((_, r)) = rings.iter().find(|(w, _)| *w == worker) {
            return r.clone();
        }
        let r = Arc::new(Mutex::new(VecDeque::with_capacity(RING_CAP)));
        rings.push((worker, r.clone()));
        r
    }

    /// Append a completed span to its worker's ring (oldest evicted at
    /// [`RING_CAP`]). Runs on the worker that served the request, so
    /// the ring mutex is uncontended except against a concurrent dump.
    pub fn record(&self, rec: TraceRecord) {
        let ring = self.ring_for(rec.worker);
        let mut ring = ring.lock();
        if ring.len() == RING_CAP {
            ring.pop_front();
        }
        ring.push_back(rec);
        self.captured.fetch_add(1, Ordering::Relaxed);
    }

    /// The most recent `n` spans across every worker ring, newest
    /// first (by completion time, id as the tiebreak).
    pub fn dump(&self, n: usize) -> Vec<TraceRecord> {
        let rings: Vec<Arc<Ring>> =
            self.rings.read().iter().map(|(_, r)| r.clone()).collect();
        let mut all: Vec<TraceRecord> = Vec::new();
        for ring in rings {
            all.extend(ring.lock().iter().cloned());
        }
        all.sort_by_key(|r| std::cmp::Reverse((r.unix_ms, r.id)));
        all.truncate(n);
        all
    }

    /// Every retained span whose id *or* origin matches — the lookup
    /// behind `TRACE GET <id>`, which must find propagated spans by
    /// their cross-server correlation id.
    pub fn get(&self, id: u64) -> Vec<TraceRecord> {
        let rings: Vec<Arc<Ring>> =
            self.rings.read().iter().map(|(_, r)| r.clone()).collect();
        let mut out = Vec::new();
        for ring in rings {
            out.extend(ring.lock().iter().filter(|r| r.id == id || r.origin == id).cloned());
        }
        out.sort_by_key(|r| (r.unix_ms, r.id));
        out
    }

    /// Spans currently retained across all rings.
    pub fn len(&self) -> usize {
        self.rings.read().iter().map(|(_, r)| r.lock().len()).sum()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Clear every ring (ids keep counting).
    pub fn reset(&self) {
        for (_, r) in self.rings.read().iter() {
            r.lock().clear();
        }
    }
}

/// Unix milliseconds now (span completion stamps).
pub fn unix_ms() -> u64 {
    SystemTime::now().duration_since(UNIX_EPOCH).map_or(0, |d| d.as_millis() as u64)
}

// ---- the per-thread active span -----------------------------------------
//
// A command executes synchronously on one worker thread, so the span
// scratch can be plain thread-locals: armed before `execute`, stamped
// by the engine hooks mid-flight, drained right after. All `Cell`s of
// `Copy` types — no RefCell bookkeeping on the hot path.

thread_local! {
    static SAMPLE_TICK: Cell<u64> = const { Cell::new(0) };
    /// Id of the active span (0 = none). Doubles as the "active" flag
    /// for the engine hooks and as the trace id the replication hub
    /// attaches to ops published while this span runs.
    static SPAN_ID: Cell<u64> = const { Cell::new(0) };
    /// First engine touch of the active span (the dispatch→engine
    /// boundary), stamped once by [`note_engine_entry`].
    static ENGINE_MARK: Cell<Option<Instant>> = const { Cell::new(None) };
    /// Nanoseconds spent blocked on contended shard write locks.
    static LOCK_NS: Cell<u64> = const { Cell::new(0) };
}

/// Arm the span scratch for a captured command (worker thread, just
/// before `execute`). Also arms the pmem persist accumulator.
pub fn begin_span(id: u64) {
    SPAN_ID.with(|s| s.set(id));
    ENGINE_MARK.with(|m| m.set(None));
    LOCK_NS.with(|l| l.set(0));
    pmem::persist_timer::begin();
}

/// The id of the span active on this thread (0 = none) — what the
/// replication hub stamps onto ops published under a traced command.
#[inline]
pub fn current_span_id() -> u64 {
    SPAN_ID.with(Cell::get)
}

/// Engine entry hook (`Shard::pin` / `Shard::lock_write`): stamp the
/// dispatch→engine boundary, first call wins. No-op without a span.
#[inline]
pub fn note_engine_entry() {
    if SPAN_ID.with(Cell::get) == 0 {
        return;
    }
    ENGINE_MARK.with(|m| {
        if m.get().is_none() {
            m.set(Some(Instant::now()));
        }
    });
}

/// Prologue of a contended write-lock acquisition: a timestamp when a
/// span is active, `None` otherwise (the caller passes it back to
/// [`note_lock_wait`] after blocking).
#[inline]
pub fn lock_wait_mark() -> Option<Instant> {
    if SPAN_ID.with(Cell::get) == 0 {
        None
    } else {
        Some(Instant::now())
    }
}

/// Epilogue of a contended write-lock acquisition.
#[inline]
pub fn note_lock_wait(mark: Option<Instant>) {
    if let Some(t0) = mark {
        let ns = u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX);
        LOCK_NS.with(|l| l.set(l.get().saturating_add(ns)));
    }
}

/// The execute-seam attribution of a finished span.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanDetail {
    pub dispatch_ns: u64,
    pub lock_wait_ns: u64,
    pub execute_ns: u64,
    pub persist_ns: u64,
}

/// Disarm the span scratch and attribute the execute seam:
/// `dispatch` = entry → first engine touch (whole seam if the command
/// never touched the engine), `execute` = engine residual after lock
/// waits and persist time. The four parts sum to `total_exec_ns`
/// exactly, except when clock skew would drive `execute` negative (it
/// saturates at 0).
pub fn end_span(exec_start: Instant, total_exec_ns: u64) -> SpanDetail {
    SPAN_ID.with(|s| s.set(0));
    let persist_ns = pmem::persist_timer::take_ns();
    let lock_wait_ns = LOCK_NS.with(Cell::take);
    let dispatch_ns = match ENGINE_MARK.with(Cell::take) {
        Some(mark) => u64::try_from((mark - exec_start).as_nanos())
            .unwrap_or(u64::MAX)
            .min(total_exec_ns),
        None => total_exec_ns,
    };
    let engine_ns = total_exec_ns - dispatch_ns;
    let execute_ns = engine_ns.saturating_sub(lock_wait_ns.saturating_add(persist_ns));
    SpanDetail { dispatch_ns, lock_wait_ns, execute_ns, persist_ns }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn rec(id: u64, worker: u64, unix_ms: u64) -> TraceRecord {
        TraceRecord {
            id,
            origin: id,
            hops: 0,
            unix_ms,
            cmd: "SET".into(),
            key: "k".into(),
            worker,
            total_ns: 1_000,
            reason: Reason::Sampled,
            stages_ns: [100, 100, 100, 100, 400, 100, 100],
        }
    }

    #[test]
    fn sampler_honors_period_and_zero_disables() {
        let t = Tracer::new();
        t.set_sample_every(4);
        let hits = (0..100).filter(|_| t.sample_tick()).count();
        assert_eq!(hits, 25, "1-in-4 over 100 ticks");
        t.set_sample_every(0);
        assert!((0..100).all(|_| !t.sample_tick()), "period 0 disables sampling");
    }

    #[test]
    fn rings_wrap_and_dump_merges_newest_first() {
        let t = Tracer::new();
        for i in 0..(RING_CAP as u64 + 10) {
            t.record(rec(t.alloc_id(), 0, i));
        }
        assert_eq!(t.len(), RING_CAP, "per-worker ring must cap");
        // A second worker's spans interleave in the dump by time.
        t.record(rec(t.alloc_id(), 1, 5_000));
        let dump = t.dump(3);
        assert_eq!(dump.len(), 3);
        assert_eq!(dump[0].worker, 1, "newest span first regardless of ring");
        assert!(dump[0].unix_ms >= dump[1].unix_ms && dump[1].unix_ms >= dump[2].unix_ms);
        assert_eq!(t.captured_total(), RING_CAP as u64 + 11);
        t.reset();
        assert!(t.is_empty());
    }

    #[test]
    fn get_matches_id_and_origin() {
        let t = Tracer::new();
        let mut propagated = rec(77, 0, 1);
        propagated.origin = 42; // arrived via TRACEID from another node
        t.record(propagated);
        t.record(rec(42, 1, 2));
        assert_eq!(t.get(42).len(), 2, "matches own id and propagated origin");
        assert_eq!(t.get(77).len(), 1);
        assert!(t.get(9_999).is_empty());
    }

    #[test]
    fn span_attribution_sums_to_the_seam_total() {
        begin_span(1);
        assert_eq!(current_span_id(), 1);
        let start = Instant::now();
        std::thread::sleep(Duration::from_millis(2)); // "dispatch"
        note_engine_entry();
        let m = lock_wait_mark();
        std::thread::sleep(Duration::from_millis(2)); // "lock wait"
        note_lock_wait(m);
        std::thread::sleep(Duration::from_millis(1)); // "execute"
        let total = u64::try_from(start.elapsed().as_nanos()).unwrap();
        let d = end_span(start, total);
        assert_eq!(current_span_id(), 0, "end_span must disarm");
        assert_eq!(
            d.dispatch_ns + d.lock_wait_ns + d.execute_ns + d.persist_ns,
            total,
            "attribution must be exhaustive"
        );
        assert!(d.dispatch_ns >= 1_500_000, "dispatch ≈ first sleep: {d:?}");
        assert!(d.lock_wait_ns >= 1_500_000, "lock wait ≈ second sleep: {d:?}");
    }

    #[test]
    fn spans_without_engine_contact_attribute_everything_to_dispatch() {
        begin_span(2);
        let start = Instant::now();
        let d = end_span(start, 10_000);
        assert_eq!(d.dispatch_ns, 10_000);
        assert_eq!(d.execute_ns + d.lock_wait_ns + d.persist_ns, 0);
    }

    #[test]
    fn hooks_are_inert_without_a_span() {
        assert_eq!(current_span_id(), 0);
        note_engine_entry(); // must not arm anything
        assert!(lock_wait_mark().is_none());
        begin_span(3);
        let d = end_span(Instant::now(), 1_000);
        assert_eq!(d.dispatch_ns, 1_000, "earlier inert calls must not have stamped");
    }

    #[test]
    fn concurrent_workers_record_without_interference() {
        let t = Arc::new(Tracer::new());
        std::thread::scope(|s| {
            for w in 0..4u64 {
                let t = t.clone();
                s.spawn(move || {
                    for i in 0..200 {
                        t.record(rec(t.alloc_id(), w, i));
                    }
                });
            }
        });
        assert_eq!(t.captured_total(), 800);
        assert_eq!(t.len(), 800.min(4 * RING_CAP));
        // Every worker ring retained its newest span.
        for w in 0..4u64 {
            assert!(t.dump(usize::MAX).iter().any(|r| r.worker == w));
        }
    }
}
