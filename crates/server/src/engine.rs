//! `ShardedDash`: the storage engine under the service — N independent
//! Dash-EH tables, each on its own file-backed [`PmemPool`], with the
//! keyspace partitioned by hash.
//!
//! Why shards instead of one big table: each shard is an independent
//! failure/recovery domain (one pool file each, recovered per Dash §4.8
//! in constant time on open), an independent allocator arena (no shared
//! bump pointer between shards), and an independent write domain — so
//! the service scales writes across cores the way the paper scales
//! threads across one table, while the pool files together form the
//! persistent image of the whole store.
//!
//! Values are arbitrary byte strings, stored out of line in the owning
//! shard's pool behind a 16-byte header:
//!
//! ```text
//! u32 len | u32 access | u64 expire_at_ms | payload…
//! ```
//!
//! The table's 8-byte value field holds the blob's pool offset. `len`
//! and `expire_at_ms` are immutable per blob (`EXPIRE`/`PERSIST`
//! *rewrite* the blob, so a lock-free reader can never observe a torn
//! deadline); `access` is the only mutable field — the advisory LRU/LFU
//! word the sampled evictor scores by, updated with relaxed atomics and
//! never persisted. Readers run lock-free under an epoch pin;
//! overwrites and deletes retire the old blob through the pool's epoch
//! manager so a concurrent reader never dereferences recycled memory.
//!
//! Expiry and eviction obey one rule: **the primary is the only clock**
//! (see [`crate::expire`]). Reads *hide* an expired key everywhere, but
//! only a primary deletes it — lazily on access, actively from the
//! timer wheel/sweep — and every such delete is recorded as an explicit
//! `DEL`, so replicas and log replay converge byte-exactly without ever
//! consulting time.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

use dash_common::{hash64_seed, PmHashTable, ScanCursor, TableError, VarKey, MAX_KEY_LEN};
use dash_core::{DashConfig, DashEh};
use parking_lot::Mutex;
use pmem::{PmError, PmOffset, PmemPool, PoolConfig};

use crate::cluster::slots::{key_slot, NUM_SLOTS};
use crate::expire::{is_expired, now_ms, policy, EvictionPolicy, TimerWheel};
use crate::repl::hub::{ReplHub, ReplSubscription};
use crate::repl::log::LogWriter;
use crate::repl::ReplOp;
use crate::snapshot::{SnapshotResult, SnapshotStream, SnapshotWriter};

/// Upper bound on one value. Bounded (like keys) so a stale blob pointer
/// scanned by an optimistic reader can never walk far out of a block.
pub const MAX_VALUE_LEN: usize = 1 << 20;

/// Routing hash seed. Deliberately distinct from the tables' own key
/// hash: reusing `hash64` for routing would hand every shard a keyspace
/// with `log2(shards)` bits pinned, biasing bucket selection inside the
/// shard's table.
const SHARD_SEED: u64 = 0x5AD5_C0DE_BA5E_B33F;

/// Service-layer errors (wire layer maps these onto RESP `-ERR` replies).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// Key exceeds [`MAX_KEY_LEN`].
    KeyTooLong(usize),
    /// Value exceeds [`MAX_VALUE_LEN`].
    ValueTooLong(usize),
    /// The underlying pool/table failed (most commonly: shard pool full).
    Table(TableError),
    /// The pool directory exists but does not look like a store (gaps in
    /// the shard files, unreadable dir, ...).
    Layout(String),
    /// A `SCAN` continuation cursor the engine never issued.
    BadCursor(u64),
    /// Snapshot export/import failed (I/O or a corrupt file).
    Snapshot(String),
    /// Redo-log open/replay failed (I/O or a corrupt file).
    ReplLog(String),
    /// The memory budget is exhausted and eviction could not make room
    /// (the wire layer maps this onto Redis's bare `-OOM` reply).
    Oom,
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::KeyTooLong(n) => write!(f, "key of {n} bytes exceeds {MAX_KEY_LEN}"),
            EngineError::ValueTooLong(n) => write!(f, "value of {n} bytes exceeds {MAX_VALUE_LEN}"),
            EngineError::Table(e) => write!(f, "{e}"),
            EngineError::Layout(s) => write!(f, "store layout error: {s}"),
            EngineError::BadCursor(c) => write!(f, "invalid scan cursor {c}"),
            EngineError::Snapshot(s) => write!(f, "snapshot error: {s}"),
            EngineError::ReplLog(s) => write!(f, "repl log error: {s}"),
            EngineError::Oom => {
                write!(f, "command not allowed when used memory > 'maxmemory'")
            }
        }
    }
}

impl std::error::Error for EngineError {}

impl From<TableError> for EngineError {
    fn from(e: TableError) -> Self {
        EngineError::Table(e)
    }
}

impl From<PmError> for EngineError {
    fn from(e: PmError) -> Self {
        EngineError::Table(TableError::Pm(e))
    }
}

pub type EngineResult<T> = Result<T, EngineError>;

/// Configuration for opening (or creating) a sharded store.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Shard count for a **fresh** store. Reopening an existing directory
    /// always uses the shard count found on disk (the partition function
    /// depends on it; changing it would orphan keys).
    pub shards: usize,
    /// Pool bytes per shard (4 KB multiple, ≥ 64 KB).
    pub shard_bytes: usize,
    /// Directory holding one `shard-N.pool` file per shard. `None` runs
    /// the store on volatile heap pools (tests, throwaway caches).
    pub dir: Option<PathBuf>,
    /// Memory budget over live value bytes (`--max-memory`). Enforced
    /// per shard as `max_memory / shards` at the client write path:
    /// pending garbage is reclaimed first, then keys are evicted under
    /// the configured policy, and a write that still cannot fit is
    /// rejected with [`EngineError::Oom`]. `None` = unlimited.
    pub max_memory: Option<u64>,
    /// What to evict when the budget is hit (`--maxmemory-policy`).
    pub eviction: EvictionPolicy,
    /// Rotate a shard's redo log once its active file crosses this size
    /// (`--repl-log-max-bytes`); a durable `SNAPSHOT` then deletes the
    /// sealed segments it covers. `None` = logs grow forever.
    pub repl_log_max_bytes: Option<u64>,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            shards: 4,
            shard_bytes: 64 << 20,
            dir: None,
            max_memory: None,
            eviction: EvictionPolicy::NoEviction,
            repl_log_max_bytes: None,
        }
    }
}

/// How one shard came up, surfaced through `INFO`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardInfo {
    /// An existing pool file was reopened (vs created fresh).
    pub recovered: bool,
    /// The reopened pool had a clean-shutdown marker (§4.8).
    pub clean: bool,
    /// The pool's global recovery version after open.
    pub version: u8,
}

/// One shard's point-in-time telemetry (see
/// [`ShardedDash::shard_telemetry`]). All counters are volatile,
/// "since this open" values.
#[derive(Debug, Clone, Copy)]
pub struct ShardTelemetry {
    /// Keys stored (the O(shards) counter, not a scan).
    pub keys: u64,
    /// Table slot capacity (grows with segment splits).
    pub capacity_slots: u64,
    /// Value-blob bytes allocated since open (headers included).
    pub blob_bytes_written: u64,
    /// Value-blob bytes retired since open. The net `written - released`
    /// can go negative after recovery (pre-existing blobs retired).
    pub blob_bytes_released: u64,
    /// Dash-EH segment splits completed.
    pub eh_splits: u64,
    /// Dash-EH directory doublings.
    pub eh_doublings: u64,
    /// Dash-EH segment merges completed.
    pub eh_merges: u64,
    /// Write-lock acquisitions that found the lock held.
    pub write_lock_waits: u64,
    /// Epoch pins taken by engine operations.
    pub epoch_pins: u64,
    /// Bytes the shard's allocator considers in use (bump minus free
    /// lists) — what the memory budget is enforced against.
    pub mem_used_bytes: u64,
    /// Dead bytes: retired blobs awaiting epoch reclamation. The
    /// numerator of the shard's fragmentation ratio.
    pub dead_bytes: u64,
}

/// Store-wide per-hash-slot key counters — the cluster layer's
/// accounting (`CLUSTER COUNTKEYSINSLOT`, migration progress). Same
/// lazy-base trick as `Shard::base_keys`: deltas are maintained from the
/// first write, and the base (keys per slot at open) is computed by a
/// one-time full scan on first read, corrected by the delta snapshot
/// taken before the scan — `open` stays constant-time.
struct SlotCounters {
    base: OnceLock<Box<[i64]>>,
    delta: Box<[AtomicI64]>,
}

impl SlotCounters {
    fn new() -> Self {
        SlotCounters {
            base: OnceLock::new(),
            delta: (0..NUM_SLOTS).map(|_| AtomicI64::new(0)).collect(),
        }
    }
}

struct Shard {
    pool: Arc<PmemPool>,
    table: DashEh<VarKey>,
    /// Serializes read-modify-write sequences (overwrite, delete) so two
    /// writers can never double-free a value blob. Plain reads do not
    /// take it — they go through the table's optimistic path.
    write_lock: Mutex<()>,
    /// Key count at open, computed **lazily** on the first `DBSIZE` /
    /// `INFO` (it needs a table scan, and paying it inside `open` would
    /// break the constant-time-recovery contract). Fresh shards seed it
    /// with 0 eagerly.
    base_keys: OnceLock<u64>,
    /// Net keys added/removed since open; `count ≈ base_keys + delta`.
    keys_delta: AtomicI64,
    info: ShardInfo,
    /// Redo log (file-backed stores only): every applied mutation is
    /// appended here, under the write lock the caller already holds —
    /// the log needs no locking of its own, the `Mutex` is just interior
    /// mutability for the `File`.
    log: Option<Mutex<LogWriter>>,
    /// Store-wide replication fan-out (shared by all shards).
    hub: Arc<ReplHub>,
    /// Redo-log append failures (the write itself already succeeded, so
    /// they must not fail the op — they are counted and surfaced).
    log_errors: AtomicU64,
    /// Value-blob bytes allocated (header included) since open.
    blob_written: AtomicU64,
    /// Value-blob bytes retired since open. `written - released` is the
    /// net live-blob footprint *of this incarnation* — negative after
    /// recovery when more pre-existing blobs die than new ones are born.
    blob_released: AtomicU64,
    /// Write-lock acquisitions that found the lock held (contention).
    lock_waits: AtomicU64,
    /// Epoch pins taken by engine operations (one per single op, one per
    /// shard group for batches/scans — the §4.5 amortization, visible).
    pins: AtomicU64,
    /// Store-wide per-slot key counters (shared by all shards).
    slots: Arc<SlotCounters>,
    /// Active-expiry timer wheel: every TTL write queues its deadline
    /// here; the background tick drains due entries and re-checks them
    /// under this shard's write lock.
    wheel: TimerWheel,
    /// Eviction sampling cursor: each eviction round resumes the table
    /// scan here, so successive rounds sample fresh regions of the
    /// keyspace instead of hammering the first segment.
    sample_pos: AtomicU64,
}

impl Shard {
    /// Current key count: exact when quiescent, momentarily approximate
    /// while writers race the first scan.
    fn key_count(&self) -> u64 {
        let base = *self.base_keys.get_or_init(|| {
            let d0 = self.keys_delta.load(Ordering::SeqCst);
            (self.table.len_scan() as i64 - d0).max(0) as u64
        });
        (base as i64 + self.keys_delta.load(Ordering::SeqCst)).max(0) as u64
    }

    /// Take the shard write lock, counting acquisitions that had to wait
    /// (the telemetry behind `write_lock_waits`). Every write path
    /// enters the engine through here, so this doubles as a trace
    /// chokepoint: the engine-entry stamp for the dispatch/execute
    /// split, and the blocked time of a contended acquisition credited
    /// to the active span's `lock_wait` stage. Both hooks are a
    /// thread-local load when no span is active.
    fn lock_write(&self) -> parking_lot::MutexGuard<'_, ()> {
        crate::trace::note_engine_entry();
        match self.write_lock.try_lock() {
            Some(g) => g,
            None => {
                self.lock_waits.fetch_add(1, Ordering::Relaxed);
                let mark = crate::trace::lock_wait_mark();
                let g = self.write_lock.lock();
                crate::trace::note_lock_wait(mark);
                g
            }
        }
    }

    /// Pin this shard's epoch, counting the pin. The read paths'
    /// engine-entry chokepoint (see [`Shard::lock_write`]).
    fn pin(&self) -> pmem::EpochGuard<'_> {
        crate::trace::note_engine_entry();
        self.pins.fetch_add(1, Ordering::Relaxed);
        self.pool.epoch().pin()
    }
    /// Decode the header at `off`: payload length, access word, expiry
    /// deadline. See the free function [`blob_meta`].
    fn blob_meta(&self, off: u64) -> Option<BlobMeta> {
        blob_meta(&self.pool, off)
    }

    /// Copy out the payload of the blob whose header `meta` already
    /// decoded (the caller holds an epoch pin).
    fn read_payload(&self, off: u64, meta: &BlobMeta) -> Vec<u8> {
        self.pool.note_pm_read(BLOB_HDR + meta.len);
        // SAFETY: bounds checked by blob_meta.
        unsafe {
            std::slice::from_raw_parts(self.pool.base().add(off as usize + BLOB_HDR), meta.len)
                .to_vec()
        }
    }

    /// Allocate, fill and persist a value blob; returns its offset.
    fn write_blob(&self, value: &[u8], expire_at_ms: u64, access: u32) -> EngineResult<u64> {
        let total = BLOB_HDR + value.len();
        let off = self.pool.alloc(total)?;
        // SAFETY: freshly allocated block of at least `total` bytes.
        unsafe {
            let p = self.pool.base().add(off.get() as usize);
            (p as *mut u32).write(value.len() as u32);
            (p.add(4) as *mut u32).write(access);
            (p.add(8) as *mut u64).write(expire_at_ms);
            std::ptr::copy_nonoverlapping(value.as_ptr(), p.add(BLOB_HDR), value.len());
        }
        self.pool.persist(off, total);
        self.blob_written.fetch_add(total as u64, Ordering::Relaxed);
        Ok(off.get())
    }

    /// Retire a value blob once no epoch-pinned reader can still see it.
    fn release_blob(&self, off: u64) {
        if let Some(meta) = self.blob_meta(off) {
            self.pool.defer_free(PmOffset::new(off), BLOB_HDR + meta.len);
            self.blob_released.fetch_add((BLOB_HDR + meta.len) as u64, Ordering::Relaxed);
        }
    }

    /// Insert or overwrite one key with an optional expiry deadline (0 =
    /// none). The caller holds this shard's write lock (and, for
    /// batches, one epoch pin for the whole group) — the shared body of
    /// every engine write path. Records `SetEx` when a deadline is set,
    /// plain `Set` otherwise, and queues the deadline on the wheel.
    fn set_locked(
        &self,
        k: &VarKey,
        value: &[u8],
        expire_at_ms: u64,
        access: u32,
    ) -> EngineResult<()> {
        let new_off = self.write_blob(value, expire_at_ms, access)?;
        match self.table.get(k) {
            Some(old_off) => {
                if !self.table.update(k, new_off) {
                    // The write lock excludes concurrent mutators, so the
                    // key cannot have vanished between get and update.
                    unreachable!("key disappeared under the shard write lock");
                }
                self.release_blob(old_off);
            }
            None => {
                if let Err(e) = self.table.insert(k, new_off) {
                    self.release_blob(new_off);
                    return Err(e.into());
                }
                self.keys_delta.fetch_add(1, Ordering::Relaxed);
                self.slots.delta[key_slot(k.as_bytes()) as usize].fetch_add(1, Ordering::SeqCst);
            }
        }
        if expire_at_ms != 0 {
            self.wheel.insert(k.as_bytes().to_vec(), expire_at_ms);
            self.record(|| ReplOp::SetEx {
                key: k.as_bytes().to_vec(),
                value: value.to_vec(),
                expire_at_ms,
            });
        } else {
            self.record(|| ReplOp::Set { key: k.as_bytes().to_vec(), value: value.to_vec() });
        }
        Ok(())
    }

    /// Delete one key; true when it existed. The caller holds this
    /// shard's write lock — the shared body of [`ShardedDash::del`] and
    /// [`ShardedDash::mdel`].
    fn del_locked(&self, k: &VarKey) -> bool {
        match self.table.get(k) {
            None => false,
            Some(off) => {
                let removed = self.table.remove(k);
                debug_assert!(removed, "key disappeared under the shard write lock");
                self.release_blob(off);
                self.keys_delta.fetch_sub(1, Ordering::Relaxed);
                self.slots.delta[key_slot(k.as_bytes()) as usize].fetch_sub(1, Ordering::SeqCst);
                self.record(|| ReplOp::Del { key: k.as_bytes().to_vec() });
                true
            }
        }
    }

    /// Record one applied mutation: append it to the shard's redo log
    /// (when file-backed) and publish it to the replication hub. Called
    /// with the shard write lock held, *after* the table update — which
    /// is what makes the hub's offset a consistent cut (every op at or
    /// below a subscriber's start offset is already in the table).
    ///
    /// A log append failure must not fail the op (the write is already
    /// applied and durable in the pool), but it must not leave a silent
    /// *gap* either — a replay over a gapped log would reconstruct a
    /// state that never existed. So the first failure poisons the
    /// shard's log: no further records are appended (the log stays a
    /// clean prefix, replaying to a consistent-but-stale state, exactly
    /// like an older backup), and every skipped op keeps incrementing
    /// the `INFO log_append_errors` counter so the operator sees both
    /// the failure and its scale. Live replica streams are unaffected
    /// (they feed from the hub, not the log).
    fn record(&self, make: impl FnOnce() -> ReplOp) {
        match &self.log {
            Some(log) => {
                let op = make();
                if self.log_errors.load(Ordering::Relaxed) == 0 {
                    if log.lock().append(&op).is_err() {
                        self.log_errors.fetch_add(1, Ordering::Relaxed);
                    }
                } else {
                    self.log_errors.fetch_add(1, Ordering::Relaxed);
                }
                self.hub.publish_with(move || op);
            }
            None => self.hub.publish_with(make),
        }
    }
}

/// What [`ShardedDash::snapshot_each`] feeds each record to:
/// `(key, value, expire_at_ms)`.
type SnapshotEmit<'a> = dyn FnMut(&[u8], &[u8], u64) -> SnapshotResult<()> + 'a;

/// Value-blob header size: `u32 len | u32 access | u64 expire_at_ms`.
const BLOB_HDR: usize = 16;

/// Keys sampled per eviction decision (Redis's `maxmemory-samples`).
const EVICT_SAMPLES: usize = 5;
/// Bound on reclaim/evict rounds per write — turns a no-progress
/// pathology (everything pinned, nothing evictable) into `-OOM`.
const MAX_EVICT_ROUNDS: usize = 64;
/// Floor under which a shard's dead bytes are not worth a reclamation
/// pass, whatever the ratio.
const RECLAIM_MIN_BYTES: u64 = 256 << 10;

/// Did a write die of pool exhaustion (as opposed to a structural
/// error)? The evict-and-retry path only retries these.
fn is_pool_oom(e: &EngineError) -> bool {
    matches!(e, EngineError::Table(TableError::Pm(PmError::OutOfMemory { .. })))
}

/// A decoded value-blob header.
#[derive(Debug, Clone, Copy)]
struct BlobMeta {
    /// Payload length.
    len: usize,
    /// The advisory LRU/LFU access word (see [`crate::expire::policy`]).
    access: u32,
    /// Absolute expiry deadline in Unix ms; 0 = no expiry.
    expire_at_ms: u64,
}

/// Decode and bounds-check the blob header at `off`. `None` means the
/// offset cannot be a valid blob in this pool (corrupt table / stale
/// pointer) — the single gate every read and release of a value blob
/// goes through. Blob offsets are ≥ 32-aligned (the allocator's minimum
/// size class), so the 16-alignment check is strict for any corrupt
/// offset that isn't.
fn blob_meta(pool: &PmemPool, off: u64) -> Option<BlobMeta> {
    if off == 0 || !off.is_multiple_of(16) || off + BLOB_HDR as u64 > pool.size() as u64 {
        return None;
    }
    // SAFETY: bounds checked above; off is 16-aligned so every field is
    // naturally aligned. `expire_at_ms` is immutable per blob and the
    // access word is read through its atomic home below, so plain reads
    // here cannot tear.
    let (len, access, expire_at_ms) = unsafe {
        let p = pool.base().add(off as usize);
        (
            (p as *const u32).read() as usize,
            (*(p.add(4) as *const AtomicU32)).load(Ordering::Relaxed),
            (p.add(8) as *const u64).read(),
        )
    };
    if len > MAX_VALUE_LEN || off + (BLOB_HDR + len) as u64 > pool.size() as u64 {
        return None;
    }
    Some(BlobMeta { len, access, expire_at_ms })
}

/// The sharded, persistent KV engine. All operations are safe under full
/// concurrency: reads are optimistic (epoch-pinned, no locks), writes
/// serialize per shard.
pub struct ShardedDash {
    shards: Vec<Shard>,
    /// The shard pool files backing this store (empty for a volatile
    /// store) — what `snapshot_to` must never be pointed at.
    shard_paths: Vec<PathBuf>,
    /// Replication offset counter + live replica sinks.
    hub: Arc<ReplHub>,
    /// Per-hash-slot key counters (cluster accounting).
    slots: Arc<SlotCounters>,
    /// Store-wide memory budget; enforced per shard as `budget/shards`.
    max_memory: Option<u64>,
    /// Per-shard slice of the budget (cached `max_memory / shards`).
    shard_budget: Option<u64>,
    /// Eviction policy when the budget is hit.
    policy: EvictionPolicy,
    /// Whether reads may *delete* expired keys (primary-only — replicas
    /// hide them but wait for the primary's `DEL`). Flipped on promote.
    local_expiry: AtomicBool,
    /// Background-sweep position: `(shard index, table scan pos)`. The
    /// sweep is what eventually expires keys whose deadlines predate
    /// this open (the wheel is volatile, and rebuilding it on open
    /// would break constant-time recovery).
    sweep_cursor: Mutex<(usize, u64)>,
    /// Whether redo-log rotation is configured (`--repl-log-max-bytes`);
    /// gates snapshot-time segment sealing + truncation.
    log_rotation: bool,
    /// Keys deleted because their deadline passed (lazy + active).
    expired_keys: AtomicU64,
    /// Keys evicted to satisfy the memory budget.
    evicted_keys: AtomicU64,
    /// Writes rejected with `-OOM`.
    oom_rejections: AtomicU64,
    /// Value-log reclamation passes that freed anything.
    compactions: AtomicU64,
    /// Bytes returned to the allocators by reclamation.
    reclaimed_bytes: AtomicU64,
}

fn shard_file(dir: &Path, i: usize) -> PathBuf {
    dir.join(format!("shard-{i}.pool"))
}

fn log_file(dir: &Path, i: usize) -> PathBuf {
    dir.join(format!("repl-{i}.log"))
}

/// Do `a` and `b` name the same file? Compared by file name plus
/// canonicalized parent, so it works for an `a` that does not exist yet
/// (snapshot targets) and sees through `.`/`..`/symlinked directories.
fn same_target(a: &Path, b: &Path) -> bool {
    let (Some(an), Some(bn)) = (a.file_name(), b.file_name()) else {
        return false;
    };
    if an != bn {
        return false;
    }
    let canon = |p: &Path| {
        let parent = p.parent().filter(|d| !d.as_os_str().is_empty()).unwrap_or(Path::new("."));
        parent.canonicalize().ok()
    };
    match (canon(a), canon(b)) {
        (Some(x), Some(y)) => x == y,
        _ => false,
    }
}

/// Count the `shard-N.pool` files in `dir`, insisting they are exactly
/// `0..n` — a gap means someone deleted part of the store, and opening
/// the remainder would silently lose the missing shard's keyspace.
fn discover_shards(dir: &Path) -> EngineResult<usize> {
    let entries = std::fs::read_dir(dir)
        .map_err(|e| EngineError::Layout(format!("cannot read {}: {e}", dir.display())))?;
    let mut indices: Vec<usize> = entries
        .filter_map(|e| e.ok())
        .filter_map(|e| {
            let name = e.file_name();
            let name = name.to_str()?;
            name.strip_prefix("shard-")?.strip_suffix(".pool")?.parse().ok()
        })
        .collect();
    indices.sort_unstable();
    for (want, &got) in indices.iter().enumerate() {
        if want != got {
            return Err(EngineError::Layout(format!(
                "shard files not contiguous in {}: missing shard-{want}.pool",
                dir.display()
            )));
        }
    }
    Ok(indices.len())
}

impl ShardedDash {
    /// Open the store in `cfg.dir`, creating it (with `cfg.shards`
    /// shards) when no shard files exist yet, otherwise reattaching to
    /// every `shard-N.pool` found — each pool runs Dash's constant-work
    /// recovery, so open time is independent of the data volume.
    pub fn open(cfg: &EngineConfig) -> EngineResult<Self> {
        if cfg.shards == 0 {
            return Err(EngineError::Layout("shard count must be at least 1".into()));
        }
        let hub = Arc::new(ReplHub::new());
        let slots = Arc::new(SlotCounters::new());
        let now = now_ms();
        let mut shards = Vec::new();
        let mut shard_paths = Vec::new();
        match &cfg.dir {
            None => {
                for _ in 0..cfg.shards {
                    let pool = PmemPool::create(PoolConfig::with_size(cfg.shard_bytes))?;
                    let table = DashEh::create(pool.clone(), DashConfig::default())?;
                    shards.push(Shard {
                        pool,
                        table,
                        write_lock: Mutex::new(()),
                        base_keys: OnceLock::from(0),
                        keys_delta: AtomicI64::new(0),
                        info: ShardInfo { recovered: false, clean: true, version: 1 },
                        log: None,
                        hub: hub.clone(),
                        log_errors: AtomicU64::new(0),
                        blob_written: AtomicU64::new(0),
                        blob_released: AtomicU64::new(0),
                        lock_waits: AtomicU64::new(0),
                        pins: AtomicU64::new(0),
                        slots: slots.clone(),
                        wheel: TimerWheel::new(now),
                        sample_pos: AtomicU64::new(0),
                    });
                }
            }
            Some(dir) => {
                std::fs::create_dir_all(dir)
                    .map_err(|e| EngineError::Layout(format!("cannot create {}: {e}", dir.display())))?;
                // An existing store dictates its own shard count: the
                // partition function baked into the data must not change.
                let existing = discover_shards(dir)?;
                let n = if existing > 0 { existing } else { cfg.shards };
                let mut log_records = 0u64;
                for i in 0..n {
                    let path = shard_file(dir, i);
                    shard_paths.push(path.clone());
                    let pool_cfg = PoolConfig::with_size(cfg.shard_bytes);
                    let (pool, recovered) = PmemPool::open_or_create_file(&path, pool_cfg)?;
                    let table = if recovered {
                        DashEh::open(pool.clone())?
                    } else {
                        DashEh::create(pool.clone(), DashConfig::default())?
                    };
                    let out = pool.recovery_outcome();
                    // The shard's redo log opens alongside its pool:
                    // torn tails truncate here, and the recovered record
                    // count seeds the store-wide replication offset.
                    let (log, log_rec) =
                        LogWriter::open(&log_file(dir, i), i as u32, cfg.repl_log_max_bytes)
                            .map_err(|e| {
                                EngineError::ReplLog(format!(
                                    "{}: {e}",
                                    log_file(dir, i).display()
                                ))
                            })?;
                    log_records += log_rec.records;
                    // Recovered shards defer their base count to the
                    // first DBSIZE/INFO; fresh ones are known empty.
                    let base_keys = if recovered { OnceLock::new() } else { OnceLock::from(0) };
                    shards.push(Shard {
                        pool,
                        table,
                        write_lock: Mutex::new(()),
                        base_keys,
                        keys_delta: AtomicI64::new(0),
                        info: ShardInfo { recovered, clean: out.clean, version: out.version },
                        log: Some(Mutex::new(log)),
                        hub: hub.clone(),
                        log_errors: AtomicU64::new(0),
                        blob_written: AtomicU64::new(0),
                        blob_released: AtomicU64::new(0),
                        lock_waits: AtomicU64::new(0),
                        pins: AtomicU64::new(0),
                        slots: slots.clone(),
                        wheel: TimerWheel::new(now),
                        sample_pos: AtomicU64::new(0),
                    });
                }
                hub.set_offset(log_records);
            }
        }
        // A store with no recovered shard is known empty: seed the slot
        // base eagerly so the first COUNTKEYSINSLOT never pays a scan.
        if shards.iter().all(|s| !s.info.recovered) {
            let _ = slots.base.set(vec![0i64; NUM_SLOTS as usize].into_boxed_slice());
        }
        let shard_budget = cfg.max_memory.map(|m| (m / shards.len() as u64).max(1));
        Ok(ShardedDash {
            shards,
            shard_paths,
            hub,
            slots,
            max_memory: cfg.max_memory,
            shard_budget,
            policy: cfg.eviction,
            local_expiry: AtomicBool::new(true),
            sweep_cursor: Mutex::new((0, 0)),
            log_rotation: cfg.repl_log_max_bytes.is_some(),
            expired_keys: AtomicU64::new(0),
            evicted_keys: AtomicU64::new(0),
            oom_rejections: AtomicU64::new(0),
            compactions: AtomicU64::new(0),
            reclaimed_bytes: AtomicU64::new(0),
        })
    }

    #[inline]
    fn shard_index(&self, key: &[u8]) -> usize {
        let h = hash64_seed(key, SHARD_SEED);
        (h % self.shards.len() as u64) as usize
    }

    #[inline]
    fn shard(&self, key: &[u8]) -> &Shard {
        &self.shards[self.shard_index(key)]
    }

    fn check_key(key: &[u8]) -> EngineResult<VarKey> {
        if key.len() > MAX_KEY_LEN {
            return Err(EngineError::KeyTooLong(key.len()));
        }
        Ok(VarKey::new(key.to_vec()))
    }

    /// Read a key's value (`None` when absent — or expired: an expired
    /// key is never served). Lock-free; on a primary an expired key
    /// found here is lazily deleted (replicated as `DEL`).
    pub fn get(&self, key: &[u8]) -> EngineResult<Option<Vec<u8>>> {
        Ok(self.get_with_expiry(key)?.map(|(v, _)| v))
    }

    /// Read a key's value plus its expiry deadline in Unix ms (0 = no
    /// expiry) — how cluster migration carries TTLs across nodes.
    pub fn get_with_expiry(&self, key: &[u8]) -> EngineResult<Option<(Vec<u8>, u64)>> {
        let k = Self::check_key(key)?;
        let shard = self.shard(key);
        let now = now_ms();
        {
            let _pin = shard.pin();
            let Some(off) = shard.table.get(&k) else {
                return Ok(None);
            };
            let Some(meta) = shard.blob_meta(off) else {
                return Ok(None);
            };
            if !is_expired(meta.expire_at_ms, now) {
                self.touch(shard, off, &meta, now);
                return Ok(Some((shard.read_payload(off, &meta), meta.expire_at_ms)));
            }
        }
        // Deadline passed: hidden everywhere, deleted on a primary (the
        // pin is dropped first — the delete defers the blob free, which
        // a pin held by this thread would keep pending forever).
        self.lazy_expire_key(shard, &k, now);
        Ok(None)
    }

    /// Whether a key is present (expired keys are not). Lock-free, does
    /// not copy the value.
    pub fn exists(&self, key: &[u8]) -> EngineResult<bool> {
        let k = Self::check_key(key)?;
        let shard = self.shard(key);
        let now = now_ms();
        let live = {
            let _pin = shard.pin();
            match shard.table.get(&k).and_then(|off| shard.blob_meta(off)) {
                None => return Ok(false),
                Some(meta) => !is_expired(meta.expire_at_ms, now),
            }
        };
        if !live {
            self.lazy_expire_key(shard, &k, now);
        }
        Ok(live)
    }

    /// Insert or overwrite. Durable before return: both the value blob
    /// and the table update are persisted by the time this returns, so a
    /// reply sent after `set` is an acknowledged write that survives a
    /// process kill. Clears any previous TTL (plain `SET` semantics).
    pub fn set(&self, key: &[u8], value: &[u8]) -> EngineResult<()> {
        self.set_with_expiry(key, value, 0)
    }

    /// Insert or overwrite with an absolute expiry deadline in Unix ms
    /// (0 = none). The memory budget is enforced here: pending garbage
    /// is reclaimed, then keys are evicted under the policy, and a
    /// write that still cannot fit fails with [`EngineError::Oom`].
    pub fn set_with_expiry(
        &self,
        key: &[u8],
        value: &[u8],
        expire_at_ms: u64,
    ) -> EngineResult<()> {
        let k = Self::check_key(key)?;
        if value.len() > MAX_VALUE_LEN {
            return Err(EngineError::ValueTooLong(value.len()));
        }
        let si = self.shard_index(key);
        let shard = &self.shards[si];
        let _w = shard.lock_write();
        self.set_under_budget(si, &k, value, expire_at_ms, now_ms())
    }

    /// Delete a key; true when it existed.
    pub fn del(&self, key: &[u8]) -> EngineResult<bool> {
        let k = Self::check_key(key)?;
        let shard = self.shard(key);
        let _w = shard.lock_write();
        Ok(shard.del_locked(&k))
    }

    /// Remaining TTL of `key` in milliseconds: `-2` when absent (or
    /// expired), `-1` when present without expiry, else the remaining
    /// time.
    pub fn ttl_ms(&self, key: &[u8]) -> EngineResult<i64> {
        let k = Self::check_key(key)?;
        let shard = self.shard(key);
        let now = now_ms();
        let deadline = {
            let _pin = shard.pin();
            shard.table.get(&k).and_then(|off| shard.blob_meta(off)).map(|m| m.expire_at_ms)
        };
        match deadline {
            None => Ok(-2),
            Some(0) => Ok(-1),
            Some(e) if is_expired(e, now) => {
                self.lazy_expire_key(shard, &k, now);
                Ok(-2)
            }
            Some(e) => Ok((e - now) as i64),
        }
    }

    /// Set `key`'s expiry to an absolute deadline (`EXPIRE`/`PEXPIRE`);
    /// true when the key exists. Deadlines are immutable per blob, so
    /// the value is rewritten and the op replicates as a full `SetEx` —
    /// the deterministic form (replicas never re-derive time). A
    /// deadline already in the past deletes the key outright (Redis
    /// semantics), replicated as `DEL`.
    pub fn expire_at(&self, key: &[u8], expire_at_ms: u64) -> EngineResult<bool> {
        let k = Self::check_key(key)?;
        let si = self.shard_index(key);
        let shard = &self.shards[si];
        let now = now_ms();
        let _w = shard.lock_write();
        let current = {
            let _pin = shard.pin();
            match shard.table.get(&k).and_then(|off| shard.blob_meta(off).map(|m| (off, m))) {
                None => return Ok(false),
                Some((off, meta)) => (!is_expired(meta.expire_at_ms, now))
                    .then(|| shard.read_payload(off, &meta)),
            }
        };
        match current {
            None => {
                // It was already past its *old* deadline: it is gone.
                if shard.del_locked(&k) {
                    self.expired_keys.fetch_add(1, Ordering::Relaxed);
                }
                Ok(false)
            }
            Some(value) => {
                if is_expired(expire_at_ms, now) {
                    let _ = shard.del_locked(&k);
                    self.expired_keys.fetch_add(1, Ordering::Relaxed);
                } else {
                    self.set_under_budget(si, &k, &value, expire_at_ms, now)?;
                }
                Ok(true)
            }
        }
    }

    /// Remove `key`'s expiry (`PERSIST`); true when the key existed and
    /// had one. Replicates as a plain `Set` (full value, no deadline).
    pub fn persist(&self, key: &[u8]) -> EngineResult<bool> {
        let k = Self::check_key(key)?;
        let si = self.shard_index(key);
        let shard = &self.shards[si];
        let now = now_ms();
        let _w = shard.lock_write();
        let current = {
            let _pin = shard.pin();
            match shard.table.get(&k).and_then(|off| shard.blob_meta(off).map(|m| (off, m))) {
                None => return Ok(false),
                Some((_, meta)) if meta.expire_at_ms == 0 => return Ok(false),
                Some((off, meta)) => (!is_expired(meta.expire_at_ms, now))
                    .then(|| shard.read_payload(off, &meta)),
            }
        };
        match current {
            None => {
                if shard.del_locked(&k) {
                    self.expired_keys.fetch_add(1, Ordering::Relaxed);
                }
                Ok(false)
            }
            Some(value) => {
                self.set_under_budget(si, &k, &value, 0, now)?;
                Ok(true)
            }
        }
    }

    /// Update a blob's access word on read. Only when a budget exists —
    /// the word is advisory, and without eviction it is dead weight.
    fn touch(&self, shard: &Shard, off: u64, meta: &BlobMeta, now: u64) {
        if self.max_memory.is_none() {
            return;
        }
        let word = match self.policy {
            EvictionPolicy::AllKeysLfu => policy::lfu_touch(meta.access, now, off),
            _ => policy::lru_stamp(now),
        };
        // SAFETY: blob_meta bounds-checked `off`; off+4 is 4-aligned.
        let cell = unsafe { &*(shard.pool.base().add(off as usize + 4) as *const AtomicU32) };
        cell.store(word, Ordering::Relaxed);
    }

    /// Delete `key` if its deadline is (still) past, under the shard
    /// write lock — the lazy half of expiry. Primary only: a replica
    /// hides the key and waits for the primary's `DEL`.
    fn lazy_expire_key(&self, shard: &Shard, k: &VarKey, now: u64) {
        if !self.local_expiry.load(Ordering::Relaxed) {
            return;
        }
        let _w = shard.lock_write();
        let _pin = shard.pin();
        let still = shard
            .table
            .get(k)
            .and_then(|off| shard.blob_meta(off))
            .is_some_and(|m| is_expired(m.expire_at_ms, now));
        if still && shard.del_locked(k) {
            self.expired_keys.fetch_add(1, Ordering::Relaxed);
        }
    }

    // ---- batched operations ----------------------------------------------
    //
    // The batch entry points group keys by owning shard, then execute
    // each shard's whole group under ONE epoch pin (reads) plus ONE
    // write-lock acquisition (mutations) — the service-layer analogue of
    // Dash §4.5's epoch amortization. Keys are validated up front, so a
    // `KeyTooLong`/`ValueTooLong` error means nothing was executed; a
    // mid-batch pool error (`mset` only) can leave earlier keys written,
    // exactly like the equivalent sequence of single-key calls.

    /// Group `keys` by shard. Returns the per-key encoded `VarKey`s plus,
    /// per shard, the indices of the keys it owns (in input order).
    fn group_keys(&self, keys: &[&[u8]]) -> EngineResult<(Vec<VarKey>, Vec<Vec<usize>>)> {
        let mut vks = Vec::with_capacity(keys.len());
        let mut groups: Vec<Vec<usize>> = vec![Vec::new(); self.shards.len()];
        for (i, key) in keys.iter().enumerate() {
            vks.push(Self::check_key(key)?);
            groups[self.shard_index(key)].push(i);
        }
        Ok((vks, groups))
    }

    /// Batched read: values in key order, `None` for absent (or
    /// expired) keys. Each shard's keys resolve under one epoch pin; no
    /// locks taken. Expired keys found along the way are lazily deleted
    /// after the pins drop (primary only).
    pub fn mget(&self, keys: &[&[u8]]) -> EngineResult<Vec<Option<Vec<u8>>>> {
        let (vks, groups) = self.group_keys(keys)?;
        let now = now_ms();
        let mut out = vec![None; keys.len()];
        let mut expired: Vec<(usize, usize)> = Vec::new(); // (shard, key index)
        for (si, (shard, group)) in self.shards.iter().zip(&groups).enumerate() {
            if group.is_empty() {
                continue;
            }
            let _pin = shard.pin();
            for &i in group {
                let Some(off) = shard.table.get(&vks[i]) else { continue };
                let Some(meta) = shard.blob_meta(off) else { continue };
                if is_expired(meta.expire_at_ms, now) {
                    expired.push((si, i));
                } else {
                    self.touch(shard, off, &meta, now);
                    out[i] = Some(shard.read_payload(off, &meta));
                }
            }
        }
        for (si, i) in expired {
            self.lazy_expire_key(&self.shards[si], &vks[i], now);
        }
        Ok(out)
    }

    /// Batched insert-or-overwrite. Durable before return, like `set`.
    /// Each shard's pairs execute under one write-lock acquisition.
    pub fn mset(&self, pairs: &[(&[u8], &[u8])]) -> EngineResult<()> {
        let triples: Vec<(&[u8], &[u8], u64)> =
            pairs.iter().map(|(k, v)| (*k, *v, 0)).collect();
        self.mset_impl(&triples, true)
    }

    /// Shared body of [`mset`](Self::mset), snapshot restore, and the
    /// replication apply path: batched insert-or-overwrite of
    /// `(key, value, expire_at_ms)` triples. `enforce` turns on memory
    /// budget enforcement — client writes enforce; the apply/restore
    /// paths do not (a replica executes the primary's decisions, it
    /// does not make its own).
    fn mset_impl(&self, triples: &[(&[u8], &[u8], u64)], enforce: bool) -> EngineResult<()> {
        for (_, value, _) in triples {
            if value.len() > MAX_VALUE_LEN {
                return Err(EngineError::ValueTooLong(value.len()));
            }
        }
        let keys: Vec<&[u8]> = triples.iter().map(|(k, _, _)| *k).collect();
        let (vks, groups) = self.group_keys(&keys)?;
        let now = now_ms();
        let enforce = enforce && self.shard_budget.is_some();
        for (si, (shard, group)) in self.shards.iter().zip(&groups).enumerate() {
            if group.is_empty() {
                continue;
            }
            let _w = shard.lock_write();
            if enforce {
                // No group pin here: making room may need to reclaim
                // deferred frees, and a pin held by this thread would
                // keep them pending forever.
                for &i in group {
                    self.set_under_budget(si, &vks[i], triples[i].1, triples[i].2, now)?;
                }
            } else {
                let _pin = shard.pin();
                let access = policy::initial_access(self.policy, now);
                for &i in group {
                    shard.set_locked(&vks[i], triples[i].1, triples[i].2, access)?;
                }
            }
        }
        Ok(())
    }

    /// Batched delete; returns how many of the keys existed. Each shard's
    /// keys execute under one write-lock acquisition and one epoch pin.
    pub fn mdel(&self, keys: &[&[u8]]) -> EngineResult<u64> {
        let (vks, groups) = self.group_keys(keys)?;
        let mut removed = 0u64;
        for (shard, group) in self.shards.iter().zip(&groups) {
            if group.is_empty() {
                continue;
            }
            let _w = shard.lock_write();
            let _pin = shard.pin();
            for &i in group {
                removed += u64::from(shard.del_locked(&vks[i]));
            }
        }
        Ok(removed)
    }

    /// Batched existence check; returns how many of the keys are present
    /// (a key listed twice counts twice, RESP `EXISTS` semantics).
    /// Lock-free: one epoch pin per shard group.
    pub fn mexists(&self, keys: &[&[u8]]) -> EngineResult<u64> {
        let (vks, groups) = self.group_keys(keys)?;
        let now = now_ms();
        let mut present = 0u64;
        let mut expired: Vec<(usize, usize)> = Vec::new();
        for (si, (shard, group)) in self.shards.iter().zip(&groups).enumerate() {
            if group.is_empty() {
                continue;
            }
            let _pin = shard.pin();
            for &i in group {
                match shard.table.get(&vks[i]).and_then(|off| shard.blob_meta(off)) {
                    Some(meta) if is_expired(meta.expire_at_ms, now) => expired.push((si, i)),
                    Some(_) => present += 1,
                    None => {}
                }
            }
        }
        for (si, i) in expired {
            self.lazy_expire_key(&self.shards[si], &vks[i], now);
        }
        Ok(present)
    }

    // ---- cursor scans ------------------------------------------------------
    //
    // The engine's scan walks the shards in order, paging each one with
    // its table's native split-stable cursor (Dash-EH: a keyspace
    // boundary). The two coordinates are packed into one opaque `u64` —
    // what `SCAN` puts on the wire: the shard index in the high 32 bits
    // and the shard position's top 32 bits below it. Dash-EH positions
    // are hash-prefix boundaries with at most `MAX_DEPTH` (24) high bits
    // set, so the low 32 bits of the position are always zero and the
    // truncation is exact (enforced by debug assertion). Cursor 0 means
    // "start"; a returned 0 means "done" — the Redis convention.

    fn encode_cursor(shard: usize, pos: u64) -> u64 {
        debug_assert_eq!(pos & 0xFFFF_FFFF, 0, "EH scan position must be a high-bit boundary");
        ((shard as u64) << 32) | (pos >> 32)
    }

    fn decode_cursor(&self, cursor: u64) -> EngineResult<(usize, u64)> {
        let shard = (cursor >> 32) as usize;
        let pos = (cursor & 0xFFFF_FFFF) << 32;
        if shard >= self.shards.len() {
            return Err(EngineError::BadCursor(cursor));
        }
        Ok((shard, pos))
    }

    /// One `SCAN` page: up to roughly `count` keys (a hint — pages run
    /// over to finish a segment) plus the continuation cursor, `0` when
    /// the iteration completed. Guarantee (from the tables' cursors):
    /// every key present from the first page to the last is returned at
    /// least once; duplicates only when a concurrent split/merge moved
    /// the record mid-scan.
    pub fn scan_keys(&self, cursor: u64, count: usize) -> EngineResult<(u64, Vec<Vec<u8>>)> {
        self.scan_impl(cursor, count, true)
    }

    /// The physical scan: every record in the tables, expired-but-
    /// unreclaimed keys included. Internal accounting (slot-count
    /// seeding, full-resync clear, migration purge) must see the
    /// physical keyspace — hiding a record there would leave it behind.
    pub(crate) fn scan_keys_physical(
        &self,
        cursor: u64,
        count: usize,
    ) -> EngineResult<(u64, Vec<Vec<u8>>)> {
        self.scan_impl(cursor, count, false)
    }

    fn scan_impl(
        &self,
        cursor: u64,
        count: usize,
        hide_expired: bool,
    ) -> EngineResult<(u64, Vec<Vec<u8>>)> {
        let (mut shard_idx, mut pos) = self.decode_cursor(cursor)?;
        let count = count.max(1);
        let now = now_ms();
        let mut keys = Vec::new();
        while shard_idx < self.shards.len() {
            let shard = &self.shards[shard_idx];
            let _pin = shard.pin();
            // `keys.len() < count` here: the loop breaks as soon as the
            // budget is met, so the remaining budget is always positive.
            let page = shard.table.scan(ScanCursor::resume(pos), count - keys.len());
            for (k, off) in page.items {
                // `SCAN` never surfaces a key whose deadline has passed,
                // even before any expiry path reclaims it. (A blob the
                // defensive decode rejects is kept visible: deleting it
                // is still meaningful.)
                if hide_expired
                    && shard
                        .blob_meta(off)
                        .is_some_and(|m| is_expired(m.expire_at_ms, now))
                {
                    continue;
                }
                keys.push(k.0);
            }
            if page.cursor.is_done() {
                shard_idx += 1;
                pos = 0;
            } else {
                pos = page.cursor.pos();
            }
            if keys.len() >= count {
                break;
            }
        }
        if shard_idx >= self.shards.len() {
            Ok((0, keys))
        } else {
            Ok((Self::encode_cursor(shard_idx, pos), keys))
        }
    }

    /// Every key in the store, by draining the scan (test/debug helper
    /// behind the `KEYS` command — O(total keys), not for production).
    pub fn keys(&self) -> EngineResult<Vec<Vec<u8>>> {
        let mut all = Vec::new();
        let mut cursor = 0u64;
        loop {
            let (next, mut page) = self.scan_keys(cursor, 4096)?;
            all.append(&mut page);
            if next == 0 {
                return Ok(all);
            }
            cursor = next;
        }
    }

    // ---- cluster accounting ------------------------------------------------

    /// The per-slot base counts, computed on first use by a full scan
    /// (see [`SlotCounters`]). Exact when quiescent; momentarily
    /// approximate while writers race the seeding scan, same contract
    /// as [`len`](Self::len).
    fn slot_base(&self) -> &[i64] {
        self.slots.base.get_or_init(|| {
            let d0: Vec<i64> =
                self.slots.delta.iter().map(|d| d.load(Ordering::SeqCst)).collect();
            let mut counts = vec![0i64; NUM_SLOTS as usize];
            let mut cursor = 0u64;
            loop {
                // Physical scan: the per-slot deltas count physical
                // inserts/deletes, so the base must too (an expired key
                // still decrements its slot when its DEL lands).
                let (next, keys) = self
                    .scan_keys_physical(cursor, 4096)
                    .expect("engine-issued scan cursor cannot be invalid");
                for key in &keys {
                    counts[key_slot(key) as usize] += 1;
                }
                if next == 0 {
                    break;
                }
                cursor = next;
            }
            for (count, d) in counts.iter_mut().zip(&d0) {
                *count -= *d;
            }
            counts.into_boxed_slice()
        })
    }

    /// Keys currently stored in one hash slot (`CLUSTER COUNTKEYSINSLOT`).
    pub fn count_keys_in_slot(&self, slot: u16) -> u64 {
        let base = self.slot_base();
        (base[slot as usize] + self.slots.delta[slot as usize].load(Ordering::SeqCst)).max(0)
            as u64
    }

    /// Keys currently stored in an inclusive slot range.
    pub fn count_keys_in_slots(&self, start: u16, end: u16) -> u64 {
        let base = self.slot_base();
        (start..=end)
            .map(|s| {
                (base[s as usize] + self.slots.delta[s as usize].load(Ordering::SeqCst)).max(0)
                    as u64
            })
            .sum()
    }

    /// Acquire and release every shard's write lock in turn. When this
    /// returns, every write whose lock was held when it was called has
    /// completed — including its `record()` publish to the replication
    /// hub (done under the lock). The migration flip's fence: after
    /// freezing a slot range and calling this, the hub offset bounds
    /// every op that will ever touch the frozen range.
    pub fn write_barrier(&self) {
        for s in &self.shards {
            drop(s.lock_write());
        }
    }

    /// Total redo-log bytes across shards (0 for a volatile store).
    pub fn repl_log_bytes(&self) -> u64 {
        self.shards.iter().filter_map(|s| s.log.as_ref()).map(|l| l.lock().bytes()).sum()
    }

    /// The directory holding this store's files (`None` for a volatile
    /// store) — where the cluster layer persists its slot map.
    pub fn store_dir(&self) -> Option<PathBuf> {
        self.shard_paths.first().and_then(|p| p.parent()).map(Path::to_path_buf)
    }

    /// Key count by full scan — ground truth for the O(shards) counters
    /// behind [`len`](Self::len). Exact when quiescent; under live
    /// writers the two may legitimately diverge momentarily, which is
    /// why the drift assertion lives in [`close`](Self::close) (a
    /// quiescence point) and not here.
    pub fn scan_len(&self) -> u64 {
        self.shards.iter().map(|s| s.table.len_scan()).sum()
    }

    // ---- memory budget, expiry & reclamation -------------------------------
    //
    // The write path enforces `--max-memory` (per shard, as
    // budget/shards): reclaim pending garbage first, then evict sampled-
    // worst keys under the policy, then reject with `-OOM`. The
    // background tick drives active expiry (timer wheel + physical
    // sweep) and threshold-based value-log reclamation. Every deletion
    // these paths make goes through `del_locked` — logged and published
    // as a `DEL` like any client delete, which is what keeps expiry and
    // eviction deterministic on replicas and in log replay.

    /// One budget-enforced write, under the shard's write lock: make
    /// room (reclaim, then evict), write, and on pool exhaustion
    /// evict-and-retry. [`EngineError::Oom`] when no room can be made.
    fn set_under_budget(
        &self,
        si: usize,
        k: &VarKey,
        value: &[u8],
        expire_at_ms: u64,
        now: u64,
    ) -> EngineResult<()> {
        let shard = &self.shards[si];
        let access = policy::initial_access(self.policy, now);
        if let Some(budget) = self.shard_budget {
            let incoming = (BLOB_HDR + value.len()) as u64;
            let mut rounds = 0;
            while shard.pool.mem_used().saturating_add(incoming) > budget {
                rounds += 1;
                if rounds > MAX_EVICT_ROUNDS || !self.make_room(si, now) {
                    self.oom_rejections.fetch_add(1, Ordering::Relaxed);
                    return Err(EngineError::Oom);
                }
            }
        }
        let mut attempts = 0;
        loop {
            match shard.set_locked(k, value, expire_at_ms, access) {
                Err(e)
                    if is_pool_oom(&e)
                        && self.max_memory.is_some()
                        && attempts < MAX_EVICT_ROUNDS =>
                {
                    attempts += 1;
                    if !self.make_room(si, now) {
                        self.oom_rejections.fetch_add(1, Ordering::Relaxed);
                        return Err(EngineError::Oom);
                    }
                }
                r => return r,
            }
        }
    }

    /// Try to lower shard `si`'s `mem_used`: reclaim pending garbage
    /// first (cheap, loses nothing), then evict one sampled-worst key.
    /// True when either made progress. Caller holds the write lock and
    /// must NOT hold an epoch pin (it would block the reclaim).
    fn make_room(&self, si: usize, now: u64) -> bool {
        let shard = &self.shards[si];
        if shard.pool.pending_reclaim_bytes() > 0 {
            let (_, bytes) = shard.pool.reclaim();
            if bytes > 0 {
                self.reclaimed_bytes.fetch_add(bytes, Ordering::Relaxed);
                return true;
            }
        }
        if self.policy == EvictionPolicy::NoEviction {
            return false;
        }
        self.evict_one(si, now)
    }

    /// Evict one sampled-worst key from shard `si` (caller holds its
    /// write lock). Samples ~[`EVICT_SAMPLES`] keys from a rotating scan
    /// cursor, scores them by policy — an already-expired key wins
    /// outright — and deletes the worst. The delete is recorded like any
    /// other, so replicas follow the primary's eviction decisions
    /// exactly. True when a key was removed.
    fn evict_one(&self, si: usize, now: u64) -> bool {
        let shard = &self.shards[si];
        let mut victim: Option<(VarKey, u64, bool)> = None; // (key, score, expired)
        {
            let _pin = shard.pin();
            let mut pos = shard.sample_pos.load(Ordering::Relaxed);
            let mut sampled = 0usize;
            // A page can come back short (sparse segments); walk a few,
            // wrapping at the end so a cursor parked at the tail still
            // sees the head next round.
            for _ in 0..4 {
                let page = shard.table.scan(ScanCursor::resume(pos), EVICT_SAMPLES);
                for (k, off) in page.items {
                    let Some(meta) = shard.blob_meta(off) else { continue };
                    sampled += 1;
                    let (score, expired) = if is_expired(meta.expire_at_ms, now) {
                        (0u64, true)
                    } else {
                        let s = match self.policy {
                            EvictionPolicy::AllKeysLfu => {
                                u64::from(policy::lfu_score(meta.access, now))
                            }
                            _ => u64::from(meta.access),
                        };
                        (s + 1, false)
                    };
                    if victim.as_ref().is_none_or(|(_, best, _)| score < *best) {
                        victim = Some((k, score, expired));
                    }
                }
                pos = if page.cursor.is_done() { 0 } else { page.cursor.pos() };
                if sampled >= EVICT_SAMPLES {
                    break;
                }
            }
            shard.sample_pos.store(pos, Ordering::Relaxed);
        }
        match victim {
            Some((k, _, expired)) if shard.del_locked(&k) => {
                let counter = if expired { &self.expired_keys } else { &self.evicted_keys };
                counter.fetch_add(1, Ordering::Relaxed);
                true
            }
            _ => false,
        }
    }

    /// One active-expiry tick: drain every shard's due timer-wheel
    /// entries (up to `budget` per shard), re-check each deadline under
    /// the shard write lock, and delete — recorded as `DEL`s. Returns
    /// keys expired. On a replica the due hints are drained and
    /// discarded (the primary's `DEL` does the deleting; stragglers
    /// after a promotion are caught by the sweep).
    pub fn expire_tick(&self, budget: usize) -> u64 {
        let now = now_ms();
        let local = self.local_expiry.load(Ordering::Relaxed);
        let mut n = 0u64;
        for shard in &self.shards {
            let due = shard.wheel.drain_due(now, budget);
            if due.is_empty() || !local {
                continue;
            }
            let _w = shard.lock_write();
            let _pin = shard.pin();
            for entry in due {
                let k = VarKey::new(entry.key);
                // The entry is a hint: the key may be gone, overwritten
                // without a TTL, or re-written with a later deadline.
                let still = shard
                    .table
                    .get(&k)
                    .and_then(|off| shard.blob_meta(off))
                    .is_some_and(|m| is_expired(m.expire_at_ms, now));
                if still && shard.del_locked(&k) {
                    n += 1;
                }
            }
        }
        if n > 0 {
            self.expired_keys.fetch_add(n, Ordering::Relaxed);
        }
        n
    }

    /// Drain everything currently due — the `DBSIZE` strictness hook
    /// (an exact count must not include keys whose tick has passed).
    pub fn expire_now(&self) -> u64 {
        self.expire_tick(usize::MAX)
    }

    /// One incremental sweep step: scan a window of ~`budget` physical
    /// records for deadlines the wheel never saw (they predate this
    /// open — the wheel is volatile and open never scans) and expire
    /// them. Returns keys expired.
    pub fn sweep_tick(&self, budget: usize) -> u64 {
        if !self.local_expiry.load(Ordering::Relaxed) {
            return 0;
        }
        let now = now_ms();
        let mut cur = self.sweep_cursor.lock();
        let (si, pos) = *cur;
        let si = if si >= self.shards.len() { 0 } else { si };
        let shard = &self.shards[si];
        let mut stale: Vec<VarKey> = Vec::new();
        {
            let _pin = shard.pin();
            let page = shard.table.scan(ScanCursor::resume(pos), budget.max(1));
            for (k, off) in page.items {
                if shard.blob_meta(off).is_some_and(|m| is_expired(m.expire_at_ms, now)) {
                    stale.push(k);
                }
            }
            *cur = if page.cursor.is_done() {
                ((si + 1) % self.shards.len(), 0)
            } else {
                (si, page.cursor.pos())
            };
        }
        drop(cur);
        if stale.is_empty() {
            return 0;
        }
        let mut n = 0u64;
        let _w = shard.lock_write();
        let _pin = shard.pin();
        for k in &stale {
            let still = shard
                .table
                .get(k)
                .and_then(|off| shard.blob_meta(off))
                .is_some_and(|m| is_expired(m.expire_at_ms, now));
            if still && shard.del_locked(k) {
                n += 1;
            }
        }
        self.expired_keys.fetch_add(n, Ordering::Relaxed);
        n
    }

    /// One value-log reclamation pass: a shard whose dead bytes clear
    /// the floor AND whose garbage ratio (dead / used) crosses one half
    /// gets an epoch collection, returning retired blobs to the
    /// allocator free lists — space reuse without moving live data.
    /// Returns bytes reclaimed.
    pub fn reclaim_tick(&self) -> u64 {
        let mut total = 0u64;
        for shard in &self.shards {
            let dead = shard.pool.pending_reclaim_bytes();
            if dead < RECLAIM_MIN_BYTES || dead * 2 < shard.pool.mem_used() {
                continue;
            }
            total += self.reclaim_shard(shard);
        }
        total
    }

    /// Force a reclamation pass on every shard regardless of thresholds
    /// (tests and the `DEBUG RECLAIM` command). Returns bytes reclaimed.
    pub fn reclaim_all(&self) -> u64 {
        self.shards.iter().map(|s| self.reclaim_shard(s)).sum()
    }

    fn reclaim_shard(&self, shard: &Shard) -> u64 {
        let (_, bytes) = shard.pool.reclaim();
        if bytes > 0 {
            self.compactions.fetch_add(1, Ordering::Relaxed);
            self.reclaimed_bytes.fetch_add(bytes, Ordering::Relaxed);
        }
        bytes
    }

    /// Enable/disable read-side expiry *deletion* and the active-expiry
    /// paths (primary: on; replica: off — flipped by promotion).
    /// Expired keys are hidden from reads either way.
    pub fn set_local_expiry(&self, enabled: bool) {
        self.local_expiry.store(enabled, Ordering::Relaxed);
    }

    /// Bytes the shard allocators consider in use (bump minus free
    /// lists; retired-but-unreclaimed blobs still count).
    pub fn mem_used(&self) -> u64 {
        self.shards.iter().map(|s| s.pool.mem_used()).sum()
    }

    /// Dead bytes: retired value blobs awaiting epoch reclamation.
    pub fn dead_bytes(&self) -> u64 {
        self.shards.iter().map(|s| s.pool.pending_reclaim_bytes()).sum()
    }

    /// The configured store-wide memory budget, if any.
    pub fn max_memory(&self) -> Option<u64> {
        self.max_memory
    }

    pub fn eviction_policy(&self) -> EvictionPolicy {
        self.policy
    }

    /// Keys deleted because their deadline passed (lazy + active).
    pub fn expired_keys_total(&self) -> u64 {
        self.expired_keys.load(Ordering::Relaxed)
    }

    /// Keys evicted to satisfy the memory budget.
    pub fn evicted_keys_total(&self) -> u64 {
        self.evicted_keys.load(Ordering::Relaxed)
    }

    /// Writes rejected with `-OOM`.
    pub fn oom_rejections_total(&self) -> u64 {
        self.oom_rejections.load(Ordering::Relaxed)
    }

    /// Value-log reclamation passes that freed anything.
    pub fn compactions_total(&self) -> u64 {
        self.compactions.load(Ordering::Relaxed)
    }

    /// Bytes returned to the allocators by reclamation.
    pub fn reclaimed_bytes_total(&self) -> u64 {
        self.reclaimed_bytes.load(Ordering::Relaxed)
    }

    /// Deadlines queued on the shard timer wheels (stale hints
    /// included) — a gauge, not a key count.
    pub fn wheel_entries(&self) -> u64 {
        self.shards.iter().map(|s| s.wheel.queued()).sum()
    }

    // ---- snapshot / restore ------------------------------------------------

    /// Walk every `(key, value)` record the way a snapshot sees them:
    /// per shard, the epoch is pinned once and held across **all** of
    /// that shard's scan pages and value-blob reads, so an offset
    /// captured in a page can never be reclaimed before its blob is
    /// copied out; concurrent writers keep running (reads take no
    /// locks) and an overwritten key lands with either its old or new
    /// value. The shared body of [`snapshot_to`](Self::snapshot_to) and
    /// [`snapshot_bytes`](Self::snapshot_bytes).
    fn snapshot_each(&self, emit: &mut SnapshotEmit<'_>) -> EngineResult<()> {
        const SNAPSHOT_PAGE: usize = 1024;
        let now = now_ms();
        for shard in &self.shards {
            let _pin = shard.pin();
            let mut cursor = ScanCursor::START;
            loop {
                let page = shard.table.scan(cursor, SNAPSHOT_PAGE);
                for (key, off) in &page.items {
                    // A blob the defensive decode rejects is a corrupt
                    // record; skip it rather than abort the backup. An
                    // expired record is dead weight the restore target
                    // would only have to re-expire — skipped too.
                    let Some(meta) = shard.blob_meta(*off) else { continue };
                    if is_expired(meta.expire_at_ms, now) {
                        continue;
                    }
                    let value = shard.read_payload(*off, &meta);
                    emit(key.as_bytes(), &value, meta.expire_at_ms)
                        .map_err(|e| EngineError::Snapshot(e.to_string()))?;
                }
                if page.cursor.is_done() {
                    break;
                }
                cursor = page.cursor;
            }
        }
        Ok(())
    }

    /// Online snapshot: stream every `(key, value)` record to a
    /// checksummed file at `path` (written to `<path>.tmp` and renamed —
    /// never half-present). Returns the record count.
    pub fn snapshot_to(&self, path: &Path) -> EngineResult<u64> {
        // A snapshot renamed over a live shard pool file would destroy
        // that shard's data at the next restart (the running server keeps
        // its mapping of the old inode, so nothing would even fail until
        // then). The path is client-controlled on the SNAPSHOT command —
        // refuse the store's own files outright.
        if self.shard_paths.iter().any(|shard| same_target(path, shard)) {
            return Err(EngineError::Snapshot(format!(
                "refusing to overwrite live shard pool file {}",
                path.display()
            )));
        }
        // With log rotation on, seal each shard's active log under its
        // write lock before the scan: every op sealed into a segment
        // here updated the table before the scan starts (both happen
        // under the same lock), so once the snapshot is durable those
        // segments are redundant and can be deleted.
        let mut covered: Vec<(usize, Vec<PathBuf>)> = Vec::new();
        if self.log_rotation {
            for (si, shard) in self.shards.iter().enumerate() {
                if let Some(log) = &shard.log {
                    let _w = shard.lock_write();
                    if let Ok(segs) = log.lock().rotate_for_snapshot() {
                        if !segs.is_empty() {
                            covered.push((si, segs));
                        }
                    }
                }
            }
        }
        let mut writer = SnapshotWriter::create(path, self.shards.len() as u32)
            .map_err(|e| EngineError::Snapshot(e.to_string()))?;
        self.snapshot_each(&mut |key, value, expire| writer.append(key, value, expire))?;
        let n = writer.finish().map_err(|e| EngineError::Snapshot(e.to_string()))?;
        // The snapshot is durable (tmp + rename): drop the covered
        // segments. Best-effort — a failure only leaves extra log.
        for (si, segs) in covered {
            if let Some(log) = &self.shards[si].log {
                let _ = log.lock().truncate_segments(&segs);
            }
        }
        Ok(n)
    }

    /// Online snapshot into memory — the replica-bootstrap payload
    /// (`PSYNC` streams these bytes as one bulk string). Same format and
    /// same epoch-pinned consistency as [`snapshot_to`](Self::snapshot_to).
    /// Returns the bytes and the record count.
    pub fn snapshot_bytes(&self) -> EngineResult<(Vec<u8>, u64)> {
        let mut stream = SnapshotStream::new(Vec::new(), self.shards.len() as u32)
            .map_err(|e| EngineError::Snapshot(e.to_string()))?;
        self.snapshot_each(&mut |key, value, expire| stream.append(key, value, expire))?;
        stream.finish().map_err(|e| EngineError::Snapshot(e.to_string()))
    }

    /// Restore a snapshot into a **fresh** store opened with `cfg` (the
    /// open-from-backup path). The file is fully verified — structure,
    /// record count, checksum — *before* any store state is created, so
    /// a corrupted snapshot is rejected with a clean error and no
    /// half-restored directory. Records re-partition under `cfg.shards`;
    /// the snapshot's source shard count does not constrain the target.
    pub fn restore(cfg: &EngineConfig, snapshot: &Path) -> EngineResult<Self> {
        let records =
            crate::snapshot::read_all(snapshot).map_err(|e| EngineError::Snapshot(e.to_string()))?;
        if let Some(dir) = &cfg.dir {
            if dir.exists() && discover_shards(dir).map_or(true, |n| n > 0) {
                return Err(EngineError::Layout(format!(
                    "refusing to restore into {}: it already holds a store",
                    dir.display()
                )));
            }
        }
        let open_and_load = || -> EngineResult<Self> {
            let store = Self::open(cfg)?;
            // Load through the batch path: one write-lock + epoch entry
            // per shard group per chunk. No budget enforcement — the
            // snapshot is already-accepted state, and deadlines are
            // restored verbatim (a restore never re-derives time).
            for chunk in records.chunks(256) {
                let triples: Vec<(&[u8], &[u8], u64)> = chunk
                    .iter()
                    .map(|(k, v, e)| (k.as_slice(), v.as_slice(), *e))
                    .collect();
                store.mset_impl(&triples, false)?;
            }
            Ok(store)
        };
        match open_and_load() {
            Ok(store) => Ok(store),
            Err(e) => {
                // A failure mid-restore (snapshot bigger than the
                // configured pools, disk full, ...) must not leave a
                // half-built store behind: a retry would be refused as
                // "already holds a store" and a plain open would
                // silently serve partial data. The directory was
                // store-free before (checked above), so every shard
                // file a fresh open could have created is ours to
                // delete — including ones `open` itself created before
                // failing.
                if let Some(dir) = &cfg.dir {
                    for i in 0..cfg.shards {
                        let _ = std::fs::remove_file(shard_file(dir, i));
                        let lf = log_file(dir, i);
                        if let Ok(segs) = crate::repl::log::segment_files(&lf) {
                            for (_, seg) in segs {
                                let _ = std::fs::remove_file(seg);
                            }
                        }
                        let _ = std::fs::remove_file(lf);
                    }
                }
                Err(e)
            }
        }
    }

    // ---- replication -------------------------------------------------------
    //
    // The engine's side of the replication subsystem: every applied
    // mutation is appended to the owning shard's redo log and published
    // through the hub (see `Shard::record`); what lives here is the
    // consumer surface — subscribing a replica stream, applying a
    // replicated op sequence through the batch paths, and replaying
    // redo logs as an incremental backup.

    /// Ops published since store creation (recovered from the redo logs
    /// on open). On a caught-up replica, `INFO repl_offset` of primary
    /// and replica are equal.
    pub fn repl_offset(&self) -> u64 {
        self.hub.offset()
    }

    /// Live replica streams.
    pub fn connected_replicas(&self) -> usize {
        self.hub.sink_count()
    }

    /// Redo-log append failures since open (the ops themselves
    /// succeeded; their log records are missing).
    pub fn log_append_errors(&self) -> u64 {
        self.shards.iter().map(|s| s.log_errors.load(Ordering::Relaxed)).sum()
    }

    /// Register a replica stream: returns the subscription whose
    /// `start_offset` is the pinned cut — a snapshot taken *after* this
    /// call holds every op at or below it, and the subscription's
    /// channel delivers every op above it.
    pub fn repl_subscribe(&self) -> ReplSubscription {
        self.hub.subscribe()
    }

    /// Apply a replicated op sequence through the batch write paths:
    /// consecutive runs of `Set`s become one `mset` (one write-lock
    /// acquisition + one epoch pin per shard group), runs of `Del`s one
    /// `mdel` — order between runs is preserved, so per-key op order is
    /// too. Returns how many ops were applied.
    pub fn apply_ops(&self, ops: &[ReplOp]) -> EngineResult<u64> {
        const CHUNK: usize = 256;
        let is_set = |op: &ReplOp| !matches!(op, ReplOp::Del { .. });
        let mut i = 0;
        while i < ops.len() {
            let set_run = is_set(&ops[i]);
            let mut j = i;
            while j < ops.len() && j - i < CHUNK && is_set(&ops[j]) == set_run {
                j += 1;
            }
            if set_run {
                let triples: Vec<(&[u8], &[u8], u64)> = ops[i..j]
                    .iter()
                    .map(|op| match op {
                        ReplOp::Set { key, value } => (key.as_slice(), value.as_slice(), 0),
                        ReplOp::SetEx { key, value, expire_at_ms } => {
                            (key.as_slice(), value.as_slice(), *expire_at_ms)
                        }
                        ReplOp::Del { .. } => unreachable!("run split by kind"),
                    })
                    .collect();
                self.mset_impl(&triples, false)?;
            } else {
                let keys: Vec<&[u8]> = ops[i..j].iter().map(|op| op.key()).collect();
                self.mdel(&keys)?;
            }
            i = j;
        }
        Ok(ops.len() as u64)
    }

    /// Delete every key (the replica's full-resync reset). Quiescent
    /// callers only — concurrent writers could race the scan.
    ///
    /// Each pass resumes its cursor (the EH cursor is a keyspace
    /// boundary, unaffected by deleting already-visited records), so a
    /// quiescent clear is one linear walk; the outer loop only repeats
    /// until a whole pass finds nothing, catching records a structural
    /// op moved mid-pass.
    pub fn clear(&self) -> EngineResult<u64> {
        let mut removed = 0u64;
        loop {
            let mut cursor = 0u64;
            let mut pass_removed = 0u64;
            loop {
                // Physical: a clear that skipped expired-but-unreclaimed
                // records would leave a replica diverging from the
                // snapshot applied on top.
                let (next, keys) = self.scan_keys_physical(cursor, 4096)?;
                if !keys.is_empty() {
                    let refs: Vec<&[u8]> = keys.iter().map(|k| k.as_slice()).collect();
                    pass_removed += self.mdel(&refs)?;
                }
                if next == 0 {
                    break;
                }
                cursor = next;
            }
            removed += pass_removed;
            if pass_removed == 0 {
                return Ok(removed);
            }
        }
    }

    /// Replay the redo logs found in `dir` (`repl-N.log`, any shard
    /// count) on top of this store — the incremental-backup restore: a
    /// store bootstrapped from an old snapshot plus a full log replay
    /// converges to the log's final state, because each key's last op
    /// wins and per-shard order is preserved (a key lives in exactly one
    /// source shard, so one file holds its whole history in order).
    /// Returns how many ops were applied.
    pub fn replay_log_dir(&self, dir: &Path) -> EngineResult<u64> {
        // Replaying a store's own logs into it would append every
        // replayed op back onto the very logs being read.
        let own_dir = self
            .shard_paths
            .first()
            .and_then(|p| p.parent())
            .and_then(|d| d.canonicalize().ok());
        if own_dir.is_some() && own_dir == dir.canonicalize().ok() {
            return Err(EngineError::ReplLog(format!(
                "refusing to replay a store's own logs ({}) into it",
                dir.display()
            )));
        }
        if !log_file(dir, 0).exists() {
            return Err(EngineError::ReplLog(format!(
                "no repl-0.log in {}",
                dir.display()
            )));
        }
        let mut applied = 0u64;
        for i in 0.. {
            let path = log_file(dir, i);
            if !path.exists() {
                break;
            }
            // The chain reader walks rotated segments first, then the
            // active file — the original append order.
            let (ops, _recovery) = crate::repl::log::read_log_chain(&path)
                .map_err(|e| EngineError::ReplLog(format!("{}: {e}", path.display())))?;
            applied += self.apply_ops(&ops)?;
        }
        Ok(applied)
    }

    /// Does `dir` already hold a store? (What replica bootstrap refuses
    /// to clobber.)
    pub fn store_exists(dir: &Path) -> bool {
        discover_shards(dir).map_or_else(|_| shard_file(dir, 0).exists(), |n| n > 0)
    }

    /// Keys stored across all shards. O(shards) once warm; the first
    /// call after recovering existing shards pays a one-time scan that
    /// `open` deliberately skipped (constant-time recovery).
    pub fn len(&self) -> u64 {
        self.shards.iter().map(|s| s.key_count()).sum()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Per-shard key counts (INFO).
    pub fn shard_keys(&self) -> Vec<u64> {
        self.shards.iter().map(|s| s.key_count()).collect()
    }

    /// How each shard came up (INFO's recovery section).
    pub fn shard_infos(&self) -> Vec<ShardInfo> {
        self.shards.iter().map(|s| s.info).collect()
    }

    /// Shards whose pool file predates this open — i.e. data recovered
    /// from a previous incarnation.
    pub fn recovered_shards(&self) -> usize {
        self.shards.iter().filter(|s| s.info.recovered).count()
    }

    /// One [`ShardTelemetry`] per shard — everything `INFO shards` and
    /// the metrics endpoint report. O(shards) once the key counters are
    /// warm (the first call on a recovered store pays the same one-time
    /// base scan `DBSIZE` does).
    pub fn shard_telemetry(&self) -> Vec<ShardTelemetry> {
        self.shards
            .iter()
            .map(|s| ShardTelemetry {
                keys: s.key_count(),
                capacity_slots: s.table.capacity_slots(),
                blob_bytes_written: s.blob_written.load(Ordering::Relaxed),
                blob_bytes_released: s.blob_released.load(Ordering::Relaxed),
                eh_splits: s.table.split_count(),
                eh_doublings: s.table.doubling_count(),
                eh_merges: s.table.merge_count(),
                write_lock_waits: s.lock_waits.load(Ordering::Relaxed),
                epoch_pins: s.pins.load(Ordering::Relaxed),
                mem_used_bytes: s.pool.mem_used(),
                dead_bytes: s.pool.pending_reclaim_bytes(),
            })
            .collect()
    }

    /// `(sink id, lag in ops)` for every live replica sink.
    pub fn replica_lags(&self) -> Vec<(u64, u64)> {
        self.hub.sink_lags()
    }

    /// Clean shutdown: durably sync every shard pool and set its clean
    /// marker, so the next open skips the version bump (§4.8).
    ///
    /// In debug builds this is also the drift check between the
    /// O(shards) `DBSIZE` counters and a ground-truth full scan: close
    /// is a quiescence point (the server joins every connection thread
    /// first), so any disagreement here is a real accounting bug, not a
    /// racing writer.
    pub fn close(&self) -> EngineResult<()> {
        debug_assert_eq!(
            self.len(),
            self.scan_len(),
            "DBSIZE counters drifted from the scan ground truth"
        );
        // Log fsync is best-effort and must never stop the pools from
        // closing cleanly: the pools are the authoritative state, and
        // aborting here would turn a log-partition hiccup into a full
        // crash-recovery restart. The first log error is still reported
        // — after every pool is closed.
        let mut log_err = None;
        for s in &self.shards {
            if let Some(log) = &s.log {
                if let Err(e) = log.lock().sync() {
                    log_err.get_or_insert(e);
                }
            }
            s.pool.close()?;
        }
        match log_err {
            None => Ok(()),
            Some(e) => Err(EngineError::ReplLog(format!("redo log sync failed: {e}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mem_engine(shards: usize) -> ShardedDash {
        ShardedDash::open(&EngineConfig {
            shards,
            shard_bytes: 16 << 20,
            dir: None,
            ..EngineConfig::default()
        })
        .unwrap()
    }

    #[test]
    fn set_get_del_roundtrip() {
        let e = mem_engine(4);
        assert_eq!(e.get(b"k").unwrap(), None);
        e.set(b"k", b"v1").unwrap();
        assert_eq!(e.get(b"k").unwrap(), Some(b"v1".to_vec()));
        assert!(e.exists(b"k").unwrap());
        e.set(b"k", b"v2-longer-than-before").unwrap();
        assert_eq!(e.get(b"k").unwrap(), Some(b"v2-longer-than-before".to_vec()));
        assert_eq!(e.len(), 1, "overwrite must not grow the key count");
        assert!(e.del(b"k").unwrap());
        assert!(!e.del(b"k").unwrap());
        assert_eq!(e.get(b"k").unwrap(), None);
        assert_eq!(e.len(), 0);
    }

    #[test]
    fn empty_and_binary_values() {
        let e = mem_engine(2);
        e.set(b"empty", b"").unwrap();
        assert_eq!(e.get(b"empty").unwrap(), Some(Vec::new()));
        let blob: Vec<u8> = (0..=255u8).cycle().take(10_000).collect();
        e.set(b"blob", &blob).unwrap();
        assert_eq!(e.get(b"blob").unwrap(), Some(blob));
    }

    #[test]
    fn keys_spread_across_shards() {
        let e = mem_engine(8);
        for i in 0..2_000u32 {
            e.set(format!("key-{i}").as_bytes(), b"x").unwrap();
        }
        let per = e.shard_keys();
        assert_eq!(per.iter().sum::<u64>(), 2_000);
        assert!(
            per.iter().all(|&n| n > 100),
            "routing must spread keys over all shards: {per:?}"
        );
    }

    #[test]
    fn batch_ops_roundtrip_across_shards() {
        let e = mem_engine(4);
        let keys: Vec<Vec<u8>> = (0..400u32).map(|i| format!("bk-{i}").into_bytes()).collect();
        let pairs: Vec<(&[u8], &[u8])> =
            keys.iter().map(|k| (k.as_slice(), k.as_slice())).collect();
        e.mset(&pairs).unwrap();
        assert_eq!(e.len(), 400);
        assert!(
            e.shard_keys().iter().all(|&n| n > 0),
            "mset must have touched every shard: {:?}",
            e.shard_keys()
        );
        let refs: Vec<&[u8]> = keys.iter().map(|k| k.as_slice()).collect();
        let got = e.mget(&refs).unwrap();
        for (k, g) in keys.iter().zip(&got) {
            assert_eq!(g.as_deref(), Some(k.as_slice()), "mget must preserve key order");
        }
        // Absent keys come back None in position; EXISTS counts repeats.
        let probe: Vec<&[u8]> = vec![b"bk-0", b"nope", b"bk-1", b"bk-0"];
        assert_eq!(
            e.mget(&probe).unwrap(),
            vec![Some(b"bk-0".to_vec()), None, Some(b"bk-1".to_vec()), Some(b"bk-0".to_vec())]
        );
        assert_eq!(e.mexists(&probe).unwrap(), 3);
        // mset overwrites like set.
        e.mset(&[(b"bk-0".as_slice(), b"rewritten".as_slice())]).unwrap();
        assert_eq!(e.get(b"bk-0").unwrap(), Some(b"rewritten".to_vec()));
        assert_eq!(e.len(), 400, "overwrite must not grow the key count");
        assert_eq!(e.mdel(&refs[..150]).unwrap(), 150);
        assert_eq!(e.mdel(&refs[..150]).unwrap(), 0, "second delete finds nothing");
        assert_eq!(e.len(), 250);
    }

    #[test]
    fn batch_validation_happens_before_any_write() {
        let e = mem_engine(2);
        let long_key = vec![b'k'; MAX_KEY_LEN + 1];
        let r = e.mset(&[(b"good".as_slice(), b"v".as_slice()), (long_key.as_slice(), b"v")]);
        assert!(matches!(r, Err(EngineError::KeyTooLong(_))));
        assert_eq!(e.get(b"good").unwrap(), None, "up-front validation must write nothing");
        let long_val = vec![0u8; MAX_VALUE_LEN + 1];
        let r = e.mset(&[(b"good".as_slice(), b"v".as_slice()), (b"k2".as_slice(), &long_val)]);
        assert!(matches!(r, Err(EngineError::ValueTooLong(_))));
        assert_eq!(e.get(b"good").unwrap(), None);
        assert!(matches!(e.mget(&[b"ok".as_slice(), &long_key]), Err(EngineError::KeyTooLong(_))));
        assert!(matches!(e.mdel(&[long_key.as_slice()]), Err(EngineError::KeyTooLong(_))));
        assert!(matches!(e.mexists(&[long_key.as_slice()]), Err(EngineError::KeyTooLong(_))));
    }

    #[test]
    fn concurrent_batch_and_single_ops_stay_consistent() {
        let e = Arc::new(mem_engine(4));
        std::thread::scope(|s| {
            for t in 0..6usize {
                let e = e.clone();
                s.spawn(move || {
                    for round in 0..60usize {
                        let keys: Vec<Vec<u8>> = (0..16u32)
                            .map(|i| format!("cb{}-{}", t % 3, (round as u32 + i) % 40).into_bytes())
                            .collect();
                        let refs: Vec<&[u8]> = keys.iter().map(|k| k.as_slice()).collect();
                        match round % 3 {
                            0 => {
                                let pairs: Vec<(&[u8], &[u8])> =
                                    keys.iter().map(|k| (k.as_slice(), k.as_slice())).collect();
                                e.mset(&pairs).unwrap();
                            }
                            1 => {
                                for (k, got) in keys.iter().zip(e.mget(&refs).unwrap()) {
                                    if let Some(v) = got {
                                        assert_eq!(&v, k, "value must match its key");
                                    }
                                }
                            }
                            _ => {
                                let _ = e.mdel(&refs).unwrap();
                            }
                        }
                    }
                });
            }
        });
    }

    #[test]
    fn scan_pages_cover_all_shards_without_duplicates() {
        let e = mem_engine(4);
        for i in 0..1_000u32 {
            e.set(format!("sk-{i}").as_bytes(), b"x").unwrap();
        }
        let mut seen = std::collections::HashSet::new();
        let mut yielded = 0usize;
        let mut pages = 0usize;
        let mut cursor = 0u64;
        loop {
            let (next, keys) = e.scan_keys(cursor, 64).unwrap();
            yielded += keys.len();
            seen.extend(keys);
            pages += 1;
            if next == 0 {
                break;
            }
            cursor = next;
        }
        assert!(pages > 4, "64-key pages over 4 shards must paginate, got {pages}");
        assert_eq!(yielded, 1_000, "quiescent engine scan must not duplicate");
        assert_eq!(seen.len(), 1_000);
        for i in 0..1_000u32 {
            assert!(seen.contains(format!("sk-{i}").as_bytes()), "key {i} never scanned");
        }
        assert_eq!(e.keys().unwrap().len(), 1_000);
        assert_eq!(e.scan_len(), 1_000);
        assert_eq!(e.scan_len(), e.len(), "counters must match the scan when quiescent");
    }

    #[test]
    fn scan_cursor_for_missing_shard_is_rejected() {
        let e = mem_engine(2);
        assert!(matches!(e.scan_keys(99u64 << 32, 10), Err(EngineError::BadCursor(_))));
        // Cursor 0 on an empty store terminates immediately.
        assert_eq!(e.scan_keys(0, 10).unwrap(), (0, Vec::new()));
    }

    #[test]
    fn limits_enforced() {
        let e = mem_engine(1);
        let long_key = vec![b'k'; MAX_KEY_LEN + 1];
        assert!(matches!(e.set(&long_key, b"v"), Err(EngineError::KeyTooLong(_))));
        assert!(matches!(e.get(&long_key), Err(EngineError::KeyTooLong(_))));
        let long_val = vec![0u8; MAX_VALUE_LEN + 1];
        assert!(matches!(e.set(b"k", &long_val), Err(EngineError::ValueTooLong(_))));
        // Max sizes themselves are fine.
        e.set(&vec![b'k'; MAX_KEY_LEN], b"v").unwrap();
    }

    #[test]
    fn overwrite_recycles_value_blobs() {
        let e = mem_engine(1);
        let shard = &e.shards[0];
        e.set(b"k", &[7u8; 100]).unwrap();
        let frees_before = shard.pool.stats().frees;
        for _ in 0..300 {
            e.set(b"k", &[8u8; 100]).unwrap();
        }
        shard.pool.epoch_collect();
        assert!(
            shard.pool.stats().frees > frees_before,
            "old value blobs must return to the allocator"
        );
    }

    #[test]
    fn concurrent_mixed_ops_stay_consistent() {
        let e = Arc::new(mem_engine(4));
        std::thread::scope(|s| {
            for t in 0..8usize {
                let e = e.clone();
                s.spawn(move || {
                    for i in 0..500usize {
                        let key = format!("t{}-{}", t % 4, i % 50);
                        match i % 3 {
                            0 => e.set(key.as_bytes(), key.as_bytes()).unwrap(),
                            1 => {
                                if let Some(v) = e.get(key.as_bytes()).unwrap() {
                                    assert_eq!(v, key.as_bytes(), "value must match its key");
                                }
                            }
                            _ => {
                                let _ = e.del(key.as_bytes()).unwrap();
                            }
                        }
                    }
                });
            }
        });
    }

    #[test]
    fn per_slot_key_accounting() {
        let e = mem_engine(4);
        for i in 0..500u32 {
            e.set(format!("slot-key-{i}").as_bytes(), b"x").unwrap();
        }
        assert_eq!(e.count_keys_in_slots(0, NUM_SLOTS - 1), 500);
        let slot = key_slot(b"foo");
        let before = e.count_keys_in_slot(slot);
        e.set(b"foo", b"v").unwrap();
        assert_eq!(e.count_keys_in_slot(slot), before + 1);
        e.set(b"foo", b"overwrite").unwrap();
        assert_eq!(e.count_keys_in_slot(slot), before + 1, "overwrite must not count");
        e.del(b"foo").unwrap();
        assert_eq!(e.count_keys_in_slot(slot), before);
        assert_eq!(e.count_keys_in_slots(0, NUM_SLOTS - 1), 500);
    }

    #[test]
    fn zero_shards_rejected() {
        assert!(matches!(
            ShardedDash::open(&EngineConfig { shards: 0, ..Default::default() }),
            Err(EngineError::Layout(_))
        ));
    }
}
