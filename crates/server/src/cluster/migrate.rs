//! Live slot migration, source side: stream a slot range to the target
//! with zero lost writes.
//!
//! The transfer reuses the replication machinery's snapshot+tail cut:
//!
//! 1. **Cut** — subscribe to the engine's op stream *first*. Every op
//!    counted after `start_offset` will arrive on the subscription; the
//!    bulk scan started afterwards observes everything at or before it.
//! 2. **Handshake** — `CLUSTER IMPORTING` at the target: it purges any
//!    stale keys in the range (a crashed earlier attempt) and starts
//!    accepting `ASKING`-prefixed writes for it.
//! 3. **Bulk** — walk the epoch-pinned scan, forward every in-range
//!    key's current value as `ASKING`+`SET`. Writers keep writing; their
//!    ops are queued on the subscription.
//! 4. **Tail** — replay the queued ops (in offset order, so last write
//!    wins) until the stream lag is small.
//! 5. **Flip** — freeze the range (`Frozen`: new commands wait), wait
//!    out the commands already past the dispatch gate (the in-flight
//!    guard count), take the write barrier, read the final offset, and
//!    drain the subscription up to it. At that point the target has
//!    *every* acknowledged write.
//! 6. **Takeover** — `CLUSTER TAKEOVER` at the target: it records
//!    ownership durably (epoch bump) and starts serving. From here the
//!    flip cannot be abandoned. A lost reply is resolved by probing
//!    with `CLUSTER IMPORT-ABORT`: if the abort succeeds the takeover
//!    never applied (the import was still open) and the source safely
//!    keeps ownership; if it reports no active import, the takeover
//!    committed and the flip proceeds.
//! 7. **Handoff → Remote** — redirect with `ASK` while the local map
//!    persists the new owner, then `MOVED` from the map.
//! 8. **Cleanup** — delete the moved keys locally (multi-pass, through
//!    the engine's normal delete path so logs, replicas and per-slot
//!    counters stay exact).
//!
//! Failures before step 6 abort cleanly: the source keeps ownership
//! (phases restored to `Mine`) and tells the target to drop the partial
//! import. Failures after step 6 are recorded but cannot un-flip — the
//! target already owns the range durably.

use std::sync::atomic::Ordering;
use std::sync::mpsc::{RecvTimeoutError, TryRecvError};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::client::RespClient;
use crate::engine::ShardedDash;
use crate::repl::ReplOp;
use crate::resp::Value;
use crate::server::Inner;

use super::slots::key_slot;
use super::{
    ClusterState, PHASE_FROZEN, PHASE_HANDOFF, PHASE_MIGRATING, PHASE_MINE, PHASE_REMOTE,
};

const CONNECT_TIMEOUT: Duration = Duration::from_secs(5);
/// Keys per epoch-pinned scan page during bulk copy.
const BULK_PAGE: usize = 512;
/// Forwarded ops per ack round-trip batch.
const ACK_BATCH: usize = 128;
/// Stream lag (ops) below which the tail is "caught up" and flips.
const TAIL_LAG_TARGET: u64 = 256;
/// Bound on the tail chase: if writers outrun the stream this long,
/// fail rather than freeze a range that can never drain.
const TAIL_DEADLINE: Duration = Duration::from_secs(120);
/// Bound on the frozen-range drain (milliseconds in practice).
const DRAIN_DEADLINE: Duration = Duration::from_secs(10);
/// Bound on waiting for gate-passed commands to finish after freezing.
const FENCE_DEADLINE: Duration = Duration::from_secs(5);

/// Validate and launch `CLUSTER MIGRATE start end target` on a
/// background thread. The `+OK` means "migration started", not done —
/// poll `CLUSTER INFO` (`migration_active` / `migration_state`).
pub(crate) fn start(
    cl: &Arc<ClusterState>,
    start: u16,
    end: u16,
    target: String,
) -> Result<(), String> {
    if target.is_empty() {
        return Err("target address must not be empty".into());
    }
    if target == cl.announce {
        return Err("cannot migrate a range to this node itself".into());
    }
    let Some(inner) = cl.inner() else {
        return Err("server is not ready".into());
    };
    let mut mig = cl.migration.lock();
    if mig.active {
        return Err(format!(
            "a migration of {}-{} to {} is already active",
            mig.start, mig.end, mig.target
        ));
    }
    for slot in start..=end {
        if cl.phase_of(slot) != PHASE_MINE {
            return Err(format!("slot {slot} is not owned (and idle) by this node"));
        }
    }
    *mig = super::MigrationStatus {
        active: true,
        start,
        end,
        target: target.clone(),
        state: "bulk",
        error: String::new(),
    };
    cl.migration_keys.store(0, Ordering::Relaxed);
    cl.migrations_started.fetch_add(1, Ordering::Relaxed);
    let mut slot_thread = cl.migration_thread.lock();
    if let Some(prev) = slot_thread.take() {
        // The previous migration already finished (active was false);
        // reap its thread.
        let _ = prev.join();
    }
    let cl2 = cl.clone();
    let handle = std::thread::Builder::new()
        .name("dash-migrate".into())
        .spawn(move || run(cl2, inner, start, end, target))
        .map_err(|e| {
            mig.active = false;
            mig.state = "failed";
            mig.error = format!("cannot spawn migration thread: {e}");
            e.to_string()
        })?;
    *slot_thread = Some(handle);
    Ok(())
}

fn run(cl: Arc<ClusterState>, inner: Arc<Inner>, start: u16, end: u16, target: String) {
    match migrate(&cl, &inner, start, end, &target) {
        Ok(()) => {
            cl.migrations_completed.fetch_add(1, Ordering::Relaxed);
            let mut mig = cl.migration.lock();
            mig.active = false;
            mig.state = "done";
        }
        Err(e) => {
            // Pre-takeover failure: this node still owns the range —
            // resume serving it and tell the target to drop what it
            // imported so far.
            cl.set_phase_range(start, end, PHASE_MINE);
            cl.migrations_failed.fetch_add(1, Ordering::Relaxed);
            {
                let mut mig = cl.migration.lock();
                mig.active = false;
                mig.state = "failed";
                mig.error = e;
            }
            let (s, t) = (start.to_string(), end.to_string());
            if let Ok(mut conn) = RespClient::connect_timeout(&target, CONNECT_TIMEOUT) {
                let _ = conn.command(&[b"CLUSTER", b"IMPORT-ABORT", s.as_bytes(), t.as_bytes()]);
            }
        }
    }
}

fn set_state(cl: &ClusterState, state: &'static str) {
    cl.migration.lock().state = state;
}

fn check_shutdown(inner: &Inner) -> Result<(), String> {
    if inner.shutdown.load(Ordering::SeqCst) {
        return Err("server is shutting down".into());
    }
    Ok(())
}

/// The migration proper. `Err` is only possible before the takeover
/// commits at the target; afterwards problems are recorded as soft
/// errors on the (successful) migration status.
fn migrate(
    cl: &ClusterState,
    inner: &Inner,
    start: u16,
    end: u16,
    target: &str,
) -> Result<(), String> {
    let engine = &inner.engine;
    let in_range = |key: &[u8]| (start..=end).contains(&key_slot(key));
    let (start_arg, end_arg) = (start.to_string(), end.to_string());

    // 1. Cut: subscribe before scanning, exactly like PSYNC.
    let sub = engine.repl_subscribe();

    // 2. Handshake.
    let mut conn = RespClient::connect_timeout(target, CONNECT_TIMEOUT)
        .map_err(|e| format!("cannot reach target {target}: {e}"))?;
    // A crashed previous attempt can leave the target with our range
    // still marked importing (its import state is volatile but the
    // target may not have restarted). We are the durable owner of the
    // range — no one else can legitimately be importing it — so a
    // same-range refusal is cleared with IMPORT-ABORT and retried once,
    // which also re-purges the half-imported keys.
    for attempt in 0..2 {
        let reply = conn
            .command(&[
                b"CLUSTER",
                b"IMPORTING",
                start_arg.as_bytes(),
                end_arg.as_bytes(),
                cl.announce.as_bytes(),
            ])
            .map_err(|e| format!("IMPORTING handshake with {target}: {e}"))?;
        match reply {
            Value::Simple(_) => break,
            Value::Error(e) if attempt == 0 && e.contains("already active") => {
                let abort = conn
                    .command(&[
                        b"CLUSTER",
                        b"IMPORT-ABORT",
                        start_arg.as_bytes(),
                        end_arg.as_bytes(),
                    ])
                    .map_err(|e| format!("IMPORT-ABORT at {target}: {e}"))?;
                if let Value::Error(e) = abort {
                    return Err(format!("target stuck importing another range: {e}"));
                }
            }
            Value::Error(e) => return Err(format!("target refused the import: {e}")),
            other => return Err(format!("unexpected IMPORTING reply: {other:?}")),
        }
    }

    // 3. Source serves the range normally while it streams out.
    cl.set_phase_range(start, end, PHASE_MIGRATING);

    // 4. Bulk copy through the epoch-pinned scan.
    let mut pending: Vec<bool> = Vec::with_capacity(ACK_BATCH);
    let mut cursor = 0u64;
    loop {
        check_shutdown(inner)?;
        let (next, keys) = engine
            .scan_keys(cursor, BULK_PAGE)
            .map_err(|e| format!("bulk scan: {e}"))?;
        for key in keys {
            if !in_range(&key) {
                continue;
            }
            // A concurrent DEL may have removed it; the tail replays
            // that DEL, so skipping here is correct either way.
            let Some((value, expire_at_ms)) =
                engine.get_with_expiry(&key).map_err(|e| format!("bulk get: {e}"))?
            else {
                continue;
            };
            conn.enqueue(&[b"ASKING"]);
            if expire_at_ms == 0 {
                conn.enqueue(&[b"SET", &key, &value]);
            } else {
                // The source's absolute deadline travels with the key —
                // the target never re-derives time.
                conn.enqueue(&[
                    b"SET",
                    &key,
                    &value,
                    b"PXAT",
                    expire_at_ms.to_string().as_bytes(),
                ]);
            }
            pending.push(false);
            cl.migration_keys.fetch_add(1, Ordering::Relaxed);
            cl.keys_migrated_total.fetch_add(1, Ordering::Relaxed);
            if pending.len() >= ACK_BATCH {
                flush_acks(&mut conn, &mut pending)?;
            }
        }
        if next == 0 {
            break;
        }
        cursor = next;
    }
    flush_acks(&mut conn, &mut pending)?;

    // 5a. Tail: replay concurrent writes until the lag is small.
    set_state(cl, "tail");
    let mut received = 0u64;
    let tail_deadline = Instant::now() + TAIL_DEADLINE;
    loop {
        check_shutdown(inner)?;
        loop {
            match sub.try_recv() {
                Ok(op) => {
                    received += 1;
                    forward(cl, &mut conn, &mut pending, &op.op, &in_range);
                    if pending.len() >= ACK_BATCH {
                        flush_acks(&mut conn, &mut pending)?;
                    }
                }
                Err(TryRecvError::Empty) => break,
                Err(TryRecvError::Disconnected) => {
                    return Err("op stream overflowed during migration; re-run".into());
                }
            }
        }
        flush_acks(&mut conn, &mut pending)?;
        let lag = engine.repl_offset().saturating_sub(sub.start_offset + received);
        if lag <= TAIL_LAG_TARGET {
            break;
        }
        if Instant::now() >= tail_deadline {
            return Err(format!("write load outran the migration tail (lag {lag} ops)"));
        }
        std::thread::sleep(Duration::from_millis(2));
    }

    // 5b. Flip fence: freeze, let gate-passed commands finish, then
    // drain the stream to the final offset. After this drain the target
    // holds every acknowledged write to the range.
    set_state(cl, "flip");
    cl.set_phase_range(start, end, PHASE_FROZEN);
    let fence_deadline = Instant::now() + FENCE_DEADLINE;
    while cl.migrating_inflight() != 0 {
        if Instant::now() >= fence_deadline {
            return Err("in-flight commands never drained after freeze".into());
        }
        std::thread::sleep(Duration::from_micros(50));
    }
    engine.write_barrier();
    let cut = engine.repl_offset().saturating_sub(sub.start_offset);
    let drain_deadline = Instant::now() + DRAIN_DEADLINE;
    while received < cut {
        match sub.recv_timeout(Duration::from_millis(50)) {
            Ok(op) => {
                received += 1;
                forward(cl, &mut conn, &mut pending, &op.op, &in_range);
            }
            Err(RecvTimeoutError::Timeout) => {
                if Instant::now() >= drain_deadline {
                    return Err(format!(
                        "stream drain stalled at {received}/{cut} ops before the flip"
                    ));
                }
            }
            Err(RecvTimeoutError::Disconnected) => {
                return Err("op stream overflowed during the flip".into());
            }
        }
    }
    flush_acks(&mut conn, &mut pending)?;

    // 6. Takeover: the target records ownership durably and serves.
    let epoch = cl.epoch() + 1;
    let epoch_arg = epoch.to_string();
    let takeover = conn.command(&[
        b"CLUSTER",
        b"TAKEOVER",
        start_arg.as_bytes(),
        end_arg.as_bytes(),
        epoch_arg.as_bytes(),
    ]);
    match takeover {
        Ok(Value::Simple(_)) => {}
        Ok(Value::Error(e)) => return Err(format!("target refused takeover: {e}")),
        Ok(other) => return Err(format!("unexpected TAKEOVER reply: {other:?}")),
        Err(io_err) => {
            // Reply lost mid-flight: the takeover may or may not have
            // applied. Resolve by trying to abort the import on a fresh
            // connection — IMPORT-ABORT succeeds only while the import
            // is still open, i.e. only if the takeover did NOT commit.
            if !takeover_resolved_as_committed(target, &start_arg, &end_arg)? {
                return Err(format!(
                    "takeover reply lost and the target aborted the import; \
                     this node keeps the range ({io_err})"
                ));
            }
        }
    }

    // --- Point of no return: the target durably owns the range. ---

    // 7. ASK while the local map catches up, then MOVED from the map.
    cl.set_phase_range(start, end, PHASE_HANDOFF);
    let mut soft_errors: Vec<String> = Vec::new();
    if let Err(e) = cl.update_map_commit(|m| {
        m.assign(start, end, target);
        m.bump_epoch(epoch);
    }) {
        // The in-memory map still flipped (update_map_commit commits
        // regardless): redirects are correct, only durability lags.
        soft_errors.push(format!("slot map persist failed: {e}"));
    }
    cl.set_phase_range(start, end, PHASE_REMOTE);

    // 8. Cleanup. Drop the subscription first so our own deletes don't
    // queue on it, and delete through the engine's normal path so logs,
    // replicas and slot counters stay exact.
    drop(sub);
    set_state(cl, "cleanup");
    if let Err(e) = purge_range(engine, start, end) {
        soft_errors.push(format!("local cleanup failed: {e}"));
    }
    if !soft_errors.is_empty() {
        cl.migration.lock().error = soft_errors.join("; ");
    }
    Ok(())
}

/// Disambiguate a lost TAKEOVER reply. `Ok(true)`: committed — finish
/// the flip. `Ok(false)`: not committed (the target aborted the still-
/// open import) — the source keeps ownership. `Err`: target unreachable,
/// genuinely unresolvable; fail safe by keeping ownership.
fn takeover_resolved_as_committed(
    target: &str,
    start_arg: &str,
    end_arg: &str,
) -> Result<bool, String> {
    let probe_deadline = Instant::now() + Duration::from_secs(10);
    loop {
        match RespClient::connect_timeout(target, CONNECT_TIMEOUT).and_then(|mut c| {
            c.command(&[b"CLUSTER", b"IMPORT-ABORT", start_arg.as_bytes(), end_arg.as_bytes()])
        }) {
            Ok(Value::Simple(_)) => return Ok(false),
            Ok(_) => return Ok(true), // "no active import" → takeover committed
            Err(_) if Instant::now() < probe_deadline => {
                std::thread::sleep(Duration::from_millis(500));
            }
            Err(e) => {
                return Err(format!(
                    "takeover outcome unknown: reply lost and target unreachable ({e}); \
                     this node keeps the range — verify the target's CLUSTER INFO"
                ));
            }
        }
    }
}

/// Queue one tail op for the target (ASKING + SET/DEL).
fn forward(
    cl: &ClusterState,
    conn: &mut RespClient,
    pending: &mut Vec<bool>,
    op: &ReplOp,
    in_range: &impl Fn(&[u8]) -> bool,
) {
    if !in_range(op.key()) {
        return;
    }
    conn.enqueue(&[b"ASKING"]);
    match op {
        ReplOp::Set { key, value } => {
            conn.enqueue(&[b"SET", key, value]);
            pending.push(false);
        }
        // TTLs migrate as the absolute deadline the source's primary
        // computed — the target never re-derives time.
        ReplOp::SetEx { key, value, expire_at_ms } => {
            conn.enqueue(&[b"SET", key, value, b"PXAT", expire_at_ms.to_string().as_bytes()]);
            pending.push(false);
        }
        ReplOp::Del { key } => {
            conn.enqueue(&[b"DEL", key]);
            pending.push(true);
        }
    }
    cl.migration_keys.fetch_add(1, Ordering::Relaxed);
    cl.keys_migrated_total.fetch_add(1, Ordering::Relaxed);
}

/// Ship the queued ops and verify every ack: each op is an `ASKING`
/// (`+OK`) followed by a `SET` (`+OK`) or `DEL` (integer). Any error
/// reply fails the migration — a silently dropped op is a lost write.
fn flush_acks(conn: &mut RespClient, pending: &mut Vec<bool>) -> Result<(), String> {
    if pending.is_empty() {
        return Ok(());
    }
    conn.flush().map_err(|e| format!("stream to target: {e}"))?;
    for is_del in pending.drain(..) {
        match conn.read_reply().map_err(|e| format!("target ack: {e}"))? {
            Value::Simple(_) => {}
            Value::Error(e) => return Err(format!("target rejected ASKING: {e}")),
            other => return Err(format!("unexpected ASKING ack: {other:?}")),
        }
        let reply = conn.read_reply().map_err(|e| format!("target ack: {e}"))?;
        match (is_del, reply) {
            (false, Value::Simple(_)) | (true, Value::Integer(_)) => {}
            (_, Value::Error(e)) => return Err(format!("target rejected a migrated op: {e}")),
            (_, other) => return Err(format!("unexpected migrated-op ack: {other:?}")),
        }
    }
    Ok(())
}

/// Delete every key in `start..=end` through the engine's normal delete
/// path. Multi-passes until a pass removes nothing, because deletions
/// can compact buckets under an in-flight scan cursor (same idiom as
/// the engine's `clear`).
pub(crate) fn purge_range(engine: &ShardedDash, start: u16, end: u16) -> Result<u64, String> {
    let in_range = |key: &[u8]| (start..=end).contains(&key_slot(key));
    let mut removed = 0u64;
    loop {
        let mut pass_removed = 0u64;
        let mut batch: Vec<Vec<u8>> = Vec::new();
        let mut cursor = 0u64;
        loop {
            let (next, keys) = engine
                .scan_keys(cursor, 1024)
                .map_err(|e| format!("purge scan: {e}"))?;
            batch.extend(keys.into_iter().filter(|k| in_range(k)));
            if batch.len() >= 1024 || next == 0 {
                let refs: Vec<&[u8]> = batch.iter().map(|k| k.as_slice()).collect();
                if !refs.is_empty() {
                    pass_removed +=
                        engine.mdel(&refs).map_err(|e| format!("purge delete: {e}"))?;
                }
                batch.clear();
            }
            if next == 0 {
                break;
            }
            cursor = next;
        }
        removed += pass_removed;
        if pass_removed == 0 {
            return Ok(removed);
        }
    }
}
