//! Cluster mode: hash-slot ownership, MOVED/ASK redirects, and live
//! slot migration.
//!
//! The keyspace is partitioned into [`slots::NUM_SLOTS`] hash slots
//! (CRC16 of the key or its `{hash tag}` — [`slots`]). Each process
//! owns a set of slots recorded in a persistent, versioned slot map
//! ([`map`]); a request for a slot this node does not own is answered
//! with `-MOVED <slot> <host:port>` (stable ownership — the client
//! should update its cache) or `-ASK <slot> <host:port>` (one-shot,
//! mid-migration — the client retries at the target with `ASKING`
//! first, without caching).
//!
//! ## The per-slot phase machine
//!
//! Enforcement happens at the command-dispatch seam: every keyed
//! command resolves its slot and consults one `AtomicU8` phase:
//!
//! * `Remote` — not ours: `-MOVED` to the map's owner (`-CLUSTERDOWN`
//!   when unassigned).
//! * `Mine` — serve normally.
//! * `Migrating` — a migration is streaming this slot out, but this
//!   node is still the owner: serve normally (concurrent writes reach
//!   the target through the redo-log tail).
//! * `Frozen` — the migration's ownership flip is in flight: commands
//!   wait briefly (the flip takes milliseconds), then `-TRYAGAIN`.
//! * `Handoff` — flipped at the target but not yet persisted here:
//!   `-ASK` to the target.
//! * `Importing` — this node is receiving the slot: serve only
//!   connections that sent `ASKING` (the migration stream and
//!   redirected clients); everyone else gets `-MOVED` to the still-
//!   current owner. This is what keeps a half-imported range invisible:
//!   ordinary clients cannot read a partially-transferred slot.
//!
//! Only *ownership* is persistent (see [`map`]); every migration phase
//! is volatile. A node that dies mid-migration restarts as the
//! unambiguous owner of everything it owned before the flip.
//!
//! ## Migration (`CLUSTER MIGRATE <start> <end> <host:port>`)
//!
//! Runs on a background thread ([`migrate`]) using the same
//! snapshot+tail cut as `PSYNC` and the same fencing as promotion:
//! subscribe to the op stream (the cut), bulk-copy the range via the
//! epoch-pinned scan, replay the concurrent-write tail, then freeze the
//! range, drain the last in-flight ops, flip ownership at the target
//! (`CLUSTER TAKEOVER`, epoch bump, durable there), persist the local
//! map, and delete the moved keys. Writers never block for longer than
//! the flip.

pub mod slots;

pub(crate) mod map;
pub(crate) mod migrate;

use std::io;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, OnceLock, Weak};
use std::time::{Duration, Instant};

use parking_lot::{Mutex, RwLock};

use crate::resp::Value;
use crate::server::Inner;

use map::SlotMap;
use slots::{key_slot, NUM_SLOTS};

/// Slot phases (the `AtomicU8` values). See the module docs.
pub(crate) const PHASE_REMOTE: u8 = 0;
pub(crate) const PHASE_MINE: u8 = 1;
pub(crate) const PHASE_MIGRATING: u8 = 2;
pub(crate) const PHASE_FROZEN: u8 = 3;
pub(crate) const PHASE_HANDOFF: u8 = 4;
pub(crate) const PHASE_IMPORTING: u8 = 5;

/// How long a command waits on a `Frozen` slot before `-TRYAGAIN`.
/// The flip is milliseconds; this bound only matters if it wedges.
const FROZEN_WAIT: Duration = Duration::from_secs(1);

/// The filename of the persistent slot map, next to the shard pools.
pub(crate) const MAP_FILE: &str = "cluster.map";

/// Status of the (single) outbound migration, for `CLUSTER INFO`.
pub(crate) struct MigrationStatus {
    pub active: bool,
    pub start: u16,
    pub end: u16,
    pub target: String,
    /// `none` → `bulk` → `tail` → `flip` → `cleanup` → `done` | `failed`.
    pub state: &'static str,
    pub error: String,
}

impl MigrationStatus {
    fn idle() -> Self {
        MigrationStatus {
            active: false,
            start: 0,
            end: 0,
            target: String::new(),
            state: "none",
            error: String::new(),
        }
    }
}

/// An inbound import in progress (target side).
pub(crate) struct ImportStatus {
    pub start: u16,
    pub end: u16,
    pub source: String,
}

/// Everything cluster: the slot map, the per-slot phase machine, the
/// migration/import bookkeeping and the redirect counters. One per
/// server when `--cluster-announce` is set.
pub(crate) struct ClusterState {
    /// The `host:port` other nodes and clients reach this node at —
    /// what the slot map records and redirects carry.
    pub announce: String,
    /// Where the map persists (`None` for a volatile store: tests).
    path: Option<PathBuf>,
    map: RwLock<SlotMap>,
    phase: Box<[AtomicU8]>,
    /// Keyed commands currently executing against a `Migrating` slot —
    /// the flip's fence (see [`ClusterState::check_slot`]).
    migrating_inflight: AtomicU64,
    pub(crate) migration: Mutex<MigrationStatus>,
    pub(crate) import: Mutex<Option<ImportStatus>>,
    migration_thread: Mutex<Option<std::thread::JoinHandle<()>>>,
    /// Back-reference to the server (set once after `Arc<Inner>` is
    /// built) — what the migration thread runs against.
    inner: OnceLock<Weak<Inner>>,
    // Counters (CLUSTER INFO + Prometheus).
    pub(crate) moved_redirects: AtomicU64,
    pub(crate) ask_redirects: AtomicU64,
    pub(crate) migrations_started: AtomicU64,
    pub(crate) migrations_completed: AtomicU64,
    pub(crate) migrations_failed: AtomicU64,
    /// Keys streamed by the current/last migration.
    pub(crate) migration_keys: AtomicU64,
    /// Keys streamed by all migrations since this process started.
    pub(crate) keys_migrated_total: AtomicU64,
}

/// RAII token for one keyed command executing against a `Migrating`
/// slot; the flip waits for all of these to drop before it cuts the
/// stream (no op can slip between the dispatch gate and its hub
/// publish).
pub(crate) struct MigratingGuard<'a>(&'a ClusterState);

impl Drop for MigratingGuard<'_> {
    fn drop(&mut self) {
        self.0.migrating_inflight.fetch_sub(1, Ordering::SeqCst);
    }
}

impl ClusterState {
    /// Build the cluster state: load the persisted map when one exists
    /// in the store directory, else start unassigned.
    pub(crate) fn open(announce: String, dir: Option<PathBuf>) -> io::Result<Arc<ClusterState>> {
        let path = dir.map(|d| d.join(MAP_FILE));
        let slot_map = match &path {
            Some(p) if p.exists() => SlotMap::load(p)?,
            _ => SlotMap::new(),
        };
        let state = ClusterState {
            announce,
            path,
            phase: (0..NUM_SLOTS).map(|_| AtomicU8::new(PHASE_REMOTE)).collect(),
            migrating_inflight: AtomicU64::new(0),
            migration: Mutex::new(MigrationStatus::idle()),
            import: Mutex::new(None),
            migration_thread: Mutex::new(None),
            inner: OnceLock::new(),
            moved_redirects: AtomicU64::new(0),
            ask_redirects: AtomicU64::new(0),
            migrations_started: AtomicU64::new(0),
            migrations_completed: AtomicU64::new(0),
            migrations_failed: AtomicU64::new(0),
            migration_keys: AtomicU64::new(0),
            keys_migrated_total: AtomicU64::new(0),
            map: RwLock::new(slot_map),
        };
        state.sync_phases_to_map();
        Ok(Arc::new(state))
    }

    /// Wire the back-reference once the server's `Arc<Inner>` exists.
    pub(crate) fn bind(&self, inner: &Arc<Inner>) {
        let _ = self.inner.set(Arc::downgrade(inner));
    }

    fn inner(&self) -> Option<Arc<Inner>> {
        self.inner.get().and_then(Weak::upgrade)
    }

    /// Reset every slot's phase from map ownership (`Mine`/`Remote`) —
    /// only valid when no migration phases are live (open, ASSIGN).
    fn sync_phases_to_map(&self) {
        let map = self.map.read();
        for slot in 0..NUM_SLOTS {
            let mine = map.owner(slot).is_some_and(|a| **a == *self.announce);
            let phase = if mine { PHASE_MINE } else { PHASE_REMOTE };
            self.phase[slot as usize].store(phase, Ordering::SeqCst);
        }
    }

    pub(crate) fn phase_of(&self, slot: u16) -> u8 {
        self.phase[slot as usize].load(Ordering::SeqCst)
    }

    pub(crate) fn set_phase_range(&self, start: u16, end: u16, phase: u8) {
        for slot in start..=end {
            self.phase[slot as usize].store(phase, Ordering::SeqCst);
        }
    }

    /// Keyed commands in flight against `Migrating` slots (the flip
    /// spins until this is zero after freezing the range).
    pub(crate) fn migrating_inflight(&self) -> u64 {
        self.migrating_inflight.load(Ordering::SeqCst)
    }

    /// Apply a topology change transactionally: mutate a copy, persist
    /// it, then commit it in memory — a failed save leaves both the
    /// file and the served map unchanged.
    pub(crate) fn update_map(&self, f: impl FnOnce(&mut SlotMap)) -> io::Result<u64> {
        let mut guard = self.map.write();
        let mut next = guard.clone();
        f(&mut next);
        if let Some(path) = &self.path {
            next.save(path)?;
        }
        let epoch = next.epoch();
        *guard = next;
        Ok(epoch)
    }

    /// Like [`update_map`](Self::update_map), but commits the change in
    /// memory even when the persist fails — for the one change that
    /// must not be rolled back: recording that a completed takeover
    /// moved ownership away (the target already owns the range
    /// durably; serving stale `Mine` here would split the slot).
    pub(crate) fn update_map_commit(&self, f: impl FnOnce(&mut SlotMap)) -> io::Result<()> {
        let mut guard = self.map.write();
        let mut next = guard.clone();
        f(&mut next);
        let saved = match &self.path {
            Some(path) => next.save(path),
            None => Ok(()),
        };
        *guard = next;
        saved
    }

    pub(crate) fn epoch(&self) -> u64 {
        self.map.read().epoch()
    }

    /// `(slots_assigned, slots_owned_by_this_node)` from the map.
    pub(crate) fn slot_counts(&self) -> (usize, usize) {
        let map = self.map.read();
        (map.slots_assigned(), map.slots_owned_by(&self.announce))
    }

    fn moved(&self, slot: u16) -> Value {
        match self.map.read().owner(slot) {
            Some(addr) => {
                self.moved_redirects.fetch_add(1, Ordering::Relaxed);
                Value::Error(format!("MOVED {slot} {addr}"))
            }
            None => Value::Error(format!("CLUSTERDOWN Hash slot {slot} is not served")),
        }
    }

    fn ask(&self, slot: u16) -> Value {
        let target = self.migration.lock().target.clone();
        if target.is_empty() {
            // Handoff with no migration on the books cannot happen in
            // one process lifetime; fall back to the map.
            return self.moved(slot);
        }
        self.ask_redirects.fetch_add(1, Ordering::Relaxed);
        Value::Error(format!("ASK {slot} {target}"))
    }

    /// The dispatch gate: may this node serve a command touching
    /// `keys`? `Err` is the redirect (or CROSSSLOT/TRYAGAIN) reply to
    /// send instead. `Ok(Some(guard))` pins the command as in-flight
    /// against a migrating slot; the caller holds it across execution.
    pub(crate) fn check<'a>(
        &'a self,
        keys: &[&[u8]],
        asking: bool,
    ) -> Result<Option<MigratingGuard<'a>>, Value> {
        let slot = key_slot(keys[0]);
        for key in &keys[1..] {
            if key_slot(key) != slot {
                return Err(Value::Error(
                    "CROSSSLOT Keys in request don't hash to the same slot".into(),
                ));
            }
        }
        self.check_slot(slot, asking)
    }

    fn check_slot(&self, slot: u16, asking: bool) -> Result<Option<MigratingGuard<'_>>, Value> {
        let mut deadline: Option<Instant> = None;
        loop {
            match self.phase[slot as usize].load(Ordering::SeqCst) {
                PHASE_MINE => return Ok(None),
                PHASE_MIGRATING => {
                    // Register as in-flight BEFORE re-checking the
                    // phase: if the re-check still says Migrating, the
                    // freeze (which stores Frozen, then reads the
                    // counter) is guaranteed to see this increment —
                    // SeqCst total order — and waits for the guard to
                    // drop. If the phase moved, back out and re-run.
                    self.migrating_inflight.fetch_add(1, Ordering::SeqCst);
                    if self.phase[slot as usize].load(Ordering::SeqCst) == PHASE_MIGRATING {
                        return Ok(Some(MigratingGuard(self)));
                    }
                    self.migrating_inflight.fetch_sub(1, Ordering::SeqCst);
                }
                PHASE_FROZEN => {
                    // The flip is in flight; it takes milliseconds.
                    // Wait it out so writers never see an error for an
                    // ordinary migration, with a bound for the
                    // pathological case.
                    let d = *deadline.get_or_insert_with(|| Instant::now() + FROZEN_WAIT);
                    if Instant::now() >= d {
                        return Err(Value::Error(
                            "TRYAGAIN slot is being migrated, retry shortly".into(),
                        ));
                    }
                    std::thread::sleep(Duration::from_micros(200));
                }
                PHASE_HANDOFF => return Err(self.ask(slot)),
                PHASE_IMPORTING => {
                    if asking {
                        return Ok(None);
                    }
                    return Err(self.moved(slot));
                }
                _ => return Err(self.moved(slot)),
            }
        }
    }

    /// The `CLUSTER INFO` payload (a bulk string of `key:value` lines,
    /// like `INFO`).
    pub(crate) fn info_text(&self) -> String {
        let map = self.map.read();
        let assigned = map.slots_assigned();
        let owned = map.slots_owned_by(&self.announce);
        let nodes = map.nodes().len();
        let epoch = map.epoch();
        drop(map);
        let mut out = String::new();
        out.push_str("# cluster\r\n");
        out.push_str("cluster_enabled:1\r\n");
        out.push_str(&format!(
            "cluster_state:{}\r\n",
            if assigned == NUM_SLOTS as usize { "ok" } else { "down" }
        ));
        out.push_str(&format!("cluster_announce:{}\r\n", self.announce));
        out.push_str(&format!("cluster_epoch:{epoch}\r\n"));
        out.push_str(&format!("cluster_slots_assigned:{assigned}\r\n"));
        out.push_str(&format!("cluster_slots_owned:{owned}\r\n"));
        out.push_str(&format!("cluster_known_nodes:{nodes}\r\n"));
        out.push_str(&format!(
            "moved_redirects:{}\r\n",
            self.moved_redirects.load(Ordering::Relaxed)
        ));
        out.push_str(&format!("ask_redirects:{}\r\n", self.ask_redirects.load(Ordering::Relaxed)));
        out.push_str(&format!(
            "migrations_started:{}\r\n",
            self.migrations_started.load(Ordering::Relaxed)
        ));
        out.push_str(&format!(
            "migrations_completed:{}\r\n",
            self.migrations_completed.load(Ordering::Relaxed)
        ));
        out.push_str(&format!(
            "migrations_failed:{}\r\n",
            self.migrations_failed.load(Ordering::Relaxed)
        ));
        out.push_str(&format!(
            "keys_migrated:{}\r\n",
            self.keys_migrated_total.load(Ordering::Relaxed)
        ));
        let mig = self.migration.lock();
        out.push_str(&format!("migration_active:{}\r\n", u8::from(mig.active)));
        out.push_str(&format!("migration_state:{}\r\n", mig.state));
        if mig.state != "none" {
            out.push_str(&format!("migration_range:{}-{}\r\n", mig.start, mig.end));
            out.push_str(&format!("migration_target:{}\r\n", mig.target));
            out.push_str(&format!(
                "migration_keys:{}\r\n",
                self.migration_keys.load(Ordering::Relaxed)
            ));
        }
        if !mig.error.is_empty() {
            out.push_str(&format!(
                "migration_error:{}\r\n",
                mig.error.replace(['\r', '\n'], " ")
            ));
        }
        drop(mig);
        let imp = self.import.lock();
        out.push_str(&format!("import_active:{}\r\n", u8::from(imp.is_some())));
        if let Some(imp) = imp.as_ref() {
            out.push_str(&format!("import_range:{}-{}\r\n", imp.start, imp.end));
            out.push_str(&format!("import_source:{}\r\n", imp.source));
        }
        out
    }
}

/// The keys a command addresses, for slot routing. `None` means the
/// command is not keyed (node-local or administrative) and bypasses the
/// slot gate entirely — `SCAN`/`KEYS`/`DBSIZE`/`SNAPSHOT` deliberately
/// stay node-local under cluster mode.
pub(crate) fn keyed_args<'a>(name: &str, args: &'a [Vec<u8>]) -> Option<Vec<&'a [u8]>> {
    let keys: Vec<&[u8]> = match name {
        "GET" | "SET" | "EXPIRE" | "PEXPIRE" | "TTL" | "PTTL" | "PERSIST" => {
            vec![args.first()?.as_slice()]
        }
        "MGET" | "DEL" | "UNLINK" | "EXISTS" => args.iter().map(|a| a.as_slice()).collect(),
        "MSET" => args.iter().step_by(2).map(|a| a.as_slice()).collect(),
        _ => return None,
    };
    if keys.is_empty() {
        None // malformed arity; let dispatch produce the error
    } else {
        Some(keys)
    }
}

fn cluster_err(msg: impl Into<String>) -> Value {
    Value::Error(format!("ERR {}", msg.into()))
}

fn ok() -> Value {
    Value::Simple("OK".into())
}

fn parse_slot(raw: &[u8]) -> Option<u16> {
    std::str::from_utf8(raw).ok()?.parse::<u16>().ok().filter(|s| *s < NUM_SLOTS)
}

fn parse_range(a: &[u8], b: &[u8]) -> Option<(u16, u16)> {
    let (start, end) = (parse_slot(a)?, parse_slot(b)?);
    (start <= end).then_some((start, end))
}

/// Dispatch one `CLUSTER <subcommand> ...`.
pub(crate) fn cluster_command(cl: &Arc<ClusterState>, inner: &Inner, args: &[Vec<u8>]) -> Value {
    let Some(sub) = args.first() else {
        return cluster_err("CLUSTER requires a subcommand");
    };
    let sub = String::from_utf8_lossy(sub).to_ascii_uppercase();
    let rest = &args[1..];
    match sub.as_str() {
        "INFO" => Value::Bulk(cl.info_text().into_bytes()),
        "SLOTS" => {
            let ranges = cl.map.read().ranges();
            Value::Array(
                ranges
                    .into_iter()
                    .map(|(start, end, owner)| {
                        Value::Array(vec![
                            Value::Integer(i64::from(start)),
                            Value::Integer(i64::from(end)),
                            Value::Bulk(owner.as_bytes().to_vec()),
                        ])
                    })
                    .collect(),
            )
        }
        "COUNTKEYSINSLOT" => match rest {
            [slot] => match parse_slot(slot) {
                Some(slot) => Value::Integer(inner.engine.count_keys_in_slot(slot) as i64),
                None => cluster_err("invalid slot"),
            },
            _ => cluster_err("COUNTKEYSINSLOT requires a slot"),
        },
        // Operator topology setup: point a slot range at a node. Run
        // against every node (each keeps its own map); the node that
        // hears its own announce address starts serving the range.
        "ASSIGN" => match rest {
            [start, end, addr] => {
                let Some((start, end)) = parse_range(start, end) else {
                    return cluster_err("invalid slot range");
                };
                let Ok(addr) = std::str::from_utf8(addr) else {
                    return cluster_err("node address must be UTF-8");
                };
                if addr.is_empty() {
                    return cluster_err("node address must not be empty");
                }
                for slot in start..=end {
                    if !matches!(cl.phase_of(slot), PHASE_REMOTE | PHASE_MINE) {
                        return cluster_err(format!("slot {slot} is busy migrating"));
                    }
                }
                let addr = addr.to_string();
                match cl.update_map(|m| {
                    m.assign(start, end, &addr);
                    m.bump_epoch(0);
                }) {
                    Ok(_) => {
                        let phase =
                            if addr == cl.announce { PHASE_MINE } else { PHASE_REMOTE };
                        cl.set_phase_range(start, end, phase);
                        ok()
                    }
                    Err(e) => cluster_err(format!("cannot persist slot map: {e}")),
                }
            }
            _ => cluster_err("ASSIGN requires: start end host:port"),
        },
        "MIGRATE" => match rest {
            [start, end, target] => {
                let Some((start, end)) = parse_range(start, end) else {
                    return cluster_err("invalid slot range");
                };
                let Ok(target) = std::str::from_utf8(target) else {
                    return cluster_err("target address must be UTF-8");
                };
                match migrate::start(cl, start, end, target.to_string()) {
                    Ok(()) => ok(),
                    Err(e) => cluster_err(e),
                }
            }
            _ => cluster_err("MIGRATE requires: start end host:port"),
        },
        // Target side of a migration: accept the range. Purges any
        // leftover keys in the range first (a previously crashed
        // migration may have left a partial import behind) — this is
        // what makes restart + re-migrate converge.
        "IMPORTING" => match rest {
            [start, end, source] => {
                let Some((start, end)) = parse_range(start, end) else {
                    return cluster_err("invalid slot range");
                };
                let Ok(source) = std::str::from_utf8(source) else {
                    return cluster_err("source address must be UTF-8");
                };
                let mut imp = cl.import.lock();
                if let Some(active) = imp.as_ref() {
                    return cluster_err(format!(
                        "an import of {}-{} is already active",
                        active.start, active.end
                    ));
                }
                for slot in start..=end {
                    if cl.phase_of(slot) != PHASE_REMOTE {
                        return cluster_err(format!("slot {slot} is already owned or busy"));
                    }
                }
                if let Err(e) = migrate::purge_range(&inner.engine, start, end) {
                    return cluster_err(format!("cannot purge stale keys: {e}"));
                }
                *imp = Some(ImportStatus { start, end, source: source.to_string() });
                cl.set_phase_range(start, end, PHASE_IMPORTING);
                ok()
            }
            _ => cluster_err("IMPORTING requires: start end host:port"),
        },
        "IMPORT-ABORT" => match rest {
            [start, end] => {
                let Some((start, end)) = parse_range(start, end) else {
                    return cluster_err("invalid slot range");
                };
                let mut imp = cl.import.lock();
                match imp.as_ref() {
                    Some(active) if active.start == start && active.end == end => {
                        *imp = None;
                        drop(imp);
                        cl.set_phase_range(start, end, PHASE_REMOTE);
                        let _ = migrate::purge_range(&inner.engine, start, end);
                        ok()
                    }
                    _ => cluster_err("no active import for that range"),
                }
            }
            _ => cluster_err("IMPORT-ABORT requires: start end"),
        },
        // The fenced ownership flip, target side: requires the matching
        // import to still be active (so a TAKEOVER can never land on a
        // node that aborted or never started the import), records
        // ownership durably, and only then serves the range.
        "TAKEOVER" => match rest {
            [start, end, epoch] => {
                let Some((start, end)) = parse_range(start, end) else {
                    return cluster_err("invalid slot range");
                };
                let Some(epoch) = std::str::from_utf8(epoch)
                    .ok()
                    .and_then(|s| s.parse::<u64>().ok())
                else {
                    return cluster_err("invalid epoch");
                };
                let mut imp = cl.import.lock();
                match imp.as_ref() {
                    Some(active) if active.start == start && active.end == end => {
                        let announce = cl.announce.clone();
                        match cl.update_map(|m| {
                            m.assign(start, end, &announce);
                            m.bump_epoch(epoch);
                        }) {
                            Ok(_) => {
                                *imp = None;
                                drop(imp);
                                cl.set_phase_range(start, end, PHASE_MINE);
                                ok()
                            }
                            // Refuse the takeover outright: the source
                            // keeps ownership, nothing changed here.
                            Err(e) => {
                                cluster_err(format!("cannot persist slot map: {e}"))
                            }
                        }
                    }
                    _ => cluster_err("no active import for that range"),
                }
            }
            _ => cluster_err("TAKEOVER requires: start end epoch"),
        },
        _ => cluster_err(format!("unknown CLUSTER subcommand '{sub}'")),
    }
}

/// Join the migration thread if one exists (server shutdown).
pub(crate) fn join_migration_thread(cl: &ClusterState) {
    if let Some(t) = cl.migration_thread.lock().take() {
        let _ = t.join();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn state(announce: &str) -> Arc<ClusterState> {
        ClusterState::open(announce.to_string(), None).unwrap()
    }

    #[test]
    fn keyed_args_extracts_the_right_keys() {
        let args = |v: &[&str]| v.iter().map(|s| s.as_bytes().to_vec()).collect::<Vec<_>>();
        assert_eq!(keyed_args("GET", &args(&["k"])).unwrap(), vec![b"k".as_slice()]);
        assert_eq!(keyed_args("SET", &args(&["k", "v"])).unwrap(), vec![b"k".as_slice()]);
        assert_eq!(
            keyed_args("MGET", &args(&["a", "b"])).unwrap(),
            vec![b"a".as_slice(), b"b".as_slice()]
        );
        assert_eq!(
            keyed_args("MSET", &args(&["a", "1", "b", "2"])).unwrap(),
            vec![b"a".as_slice(), b"b".as_slice()],
            "MSET keys are every other argument"
        );
        assert_eq!(
            keyed_args("DEL", &args(&["a", "b", "c"])).unwrap().len(),
            3
        );
        assert!(keyed_args("PING", &args(&[])).is_none());
        assert!(keyed_args("INFO", &args(&["replication"])).is_none());
        assert!(keyed_args("SCAN", &args(&["0"])).is_none(), "SCAN stays node-local");
        assert!(keyed_args("GET", &args(&[])).is_none(), "bad arity bypasses the gate");
    }

    #[test]
    fn phase_machine_redirects() {
        let cl = state("127.0.0.1:7000");
        let slot = key_slot(b"foo"); // 12182
        // Unassigned slot: CLUSTERDOWN.
        let Err(Value::Error(e)) = cl.check(&[b"foo"], false) else {
            panic!("unassigned slot must not be served")
        };
        assert!(e.starts_with("CLUSTERDOWN"), "{e}");
        // Assigned elsewhere: MOVED with slot and owner.
        cl.update_map(|m| m.assign(0, NUM_SLOTS - 1, "10.0.0.9:7001")).unwrap();
        cl.sync_phases_to_map();
        let Err(Value::Error(e)) = cl.check(&[b"foo"], false) else {
            panic!("remote slot must redirect")
        };
        assert_eq!(e, format!("MOVED {slot} 10.0.0.9:7001"));
        assert_eq!(cl.moved_redirects.load(Ordering::Relaxed), 1);
        // Ours: served.
        cl.update_map(|m| m.assign(0, NUM_SLOTS - 1, "127.0.0.1:7000")).unwrap();
        cl.sync_phases_to_map();
        assert!(cl.check(&[b"foo"], false).unwrap().is_none());
        // Migrating: served, with an in-flight guard.
        cl.set_phase_range(slot, slot, PHASE_MIGRATING);
        let guard = cl.check(&[b"foo"], false).unwrap();
        assert!(guard.is_some());
        assert_eq!(cl.migrating_inflight(), 1);
        drop(guard);
        assert_eq!(cl.migrating_inflight(), 0);
        // Handoff: ASK to the migration target.
        cl.migration.lock().target = "10.0.0.9:7001".into();
        cl.set_phase_range(slot, slot, PHASE_HANDOFF);
        let Err(Value::Error(e)) = cl.check(&[b"foo"], false) else {
            panic!("handoff must redirect")
        };
        assert_eq!(e, format!("ASK {slot} 10.0.0.9:7001"));
        // Importing: only ASKING connections are served.
        cl.set_phase_range(slot, slot, PHASE_IMPORTING);
        assert!(matches!(cl.check(&[b"foo"], false), Err(Value::Error(e)) if e.starts_with("MOVED")));
        assert!(cl.check(&[b"foo"], true).unwrap().is_none());
    }

    #[test]
    fn crossslot_is_rejected_and_hash_tags_allow_multikey() {
        let cl = state("127.0.0.1:7000");
        cl.update_map(|m| m.assign(0, NUM_SLOTS - 1, "127.0.0.1:7000")).unwrap();
        cl.sync_phases_to_map();
        let Err(Value::Error(e)) = cl.check(&[b"foo", b"bar"], false) else {
            panic!("foo (12182) and bar (5061) must not share a command")
        };
        assert!(e.starts_with("CROSSSLOT"), "{e}");
        // Same hash tag → same slot → allowed.
        assert!(cl
            .check(&[b"{user1}.a".as_slice(), b"{user1}.b".as_slice()], false)
            .unwrap()
            .is_none());
    }

    #[test]
    fn frozen_slot_times_out_with_tryagain() {
        let cl = state("127.0.0.1:7000");
        let slot = key_slot(b"foo");
        cl.set_phase_range(slot, slot, PHASE_FROZEN);
        let started = Instant::now();
        let Err(Value::Error(e)) = cl.check(&[b"foo"], false) else {
            panic!("permanently frozen slot must eventually TRYAGAIN")
        };
        assert!(e.starts_with("TRYAGAIN"), "{e}");
        assert!(started.elapsed() >= FROZEN_WAIT, "must have waited out the freeze window");
        // A thaw mid-wait is picked up.
        cl.set_phase_range(slot, slot, PHASE_FROZEN);
        let cl2 = cl.clone();
        let t = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(30));
            cl2.set_phase_range(slot, slot, PHASE_MINE);
        });
        assert!(cl.check(&[b"foo"], false).unwrap().is_none());
        t.join().unwrap();
    }
}
