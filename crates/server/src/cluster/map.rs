//! The persistent, versioned slot map: which node owns each of the
//! 16384 hash slots, plus a monotonically increasing epoch that bumps
//! on every topology change (ASSIGN, migration flip, TAKEOVER).
//!
//! Persistence is a small text file (`cluster.map`) written with the
//! usual crash-safe recipe: serialize to a sibling tmp file, fsync it,
//! rename over the real path. Only *ownership* is durable — migration
//! progress (importing / migrating marks) is deliberately volatile, so
//! a node that dies mid-migration comes back as the unambiguous owner
//! of everything it owned before the flip, and the migration is simply
//! re-run. That asymmetry is the crash-safety argument: there is no
//! intermediate durable state in which both (or neither) side owns a
//! slot.

use std::fs::{self, File, OpenOptions};
use std::io::{self, Read as _, Write as _};
use std::path::Path;
use std::sync::Arc;

use super::slots::NUM_SLOTS;

const MAGIC: &str = "dash-cluster-map v1";

/// Slot → owner assignment with a version epoch.
#[derive(Clone)]
pub(crate) struct SlotMap {
    epoch: u64,
    owners: Vec<Option<Arc<str>>>,
}

impl SlotMap {
    pub fn new() -> Self {
        SlotMap { epoch: 0, owners: vec![None; NUM_SLOTS as usize] }
    }

    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Raise the epoch to at least `floor`, always by at least one.
    pub fn bump_epoch(&mut self, floor: u64) -> u64 {
        self.epoch = (self.epoch + 1).max(floor);
        self.epoch
    }

    pub fn owner(&self, slot: u16) -> Option<&Arc<str>> {
        self.owners[slot as usize].as_ref()
    }

    /// Point `start..=end` at `addr`. The caller bumps the epoch.
    pub fn assign(&mut self, start: u16, end: u16, addr: &str) {
        let addr: Arc<str> = Arc::from(addr);
        for slot in start..=end {
            self.owners[slot as usize] = Some(addr.clone());
        }
    }

    pub fn slots_assigned(&self) -> usize {
        self.owners.iter().filter(|o| o.is_some()).count()
    }

    pub fn slots_owned_by(&self, addr: &str) -> usize {
        self.owners.iter().filter(|o| o.as_deref() == Some(addr)).count()
    }

    /// Distinct owner addresses, in first-slot order.
    pub fn nodes(&self) -> Vec<String> {
        let mut nodes: Vec<String> = Vec::new();
        for owner in self.owners.iter().flatten() {
            if !nodes.iter().any(|n| n.as_str() == &**owner) {
                nodes.push(owner.to_string());
            }
        }
        nodes
    }

    /// Contiguous `(start, end, owner)` runs over the assigned slots —
    /// the shape both `CLUSTER SLOTS` and the file format use.
    pub fn ranges(&self) -> Vec<(u16, u16, Arc<str>)> {
        let mut out: Vec<(u16, u16, Arc<str>)> = Vec::new();
        for (slot, owner) in self.owners.iter().enumerate() {
            let Some(owner) = owner else { continue };
            match out.last_mut() {
                Some((_, end, prev)) if *end as usize + 1 == slot && *prev == *owner => *end = slot as u16,
                _ => out.push((slot as u16, slot as u16, owner.clone())),
            }
        }
        out
    }

    pub fn encode(&self) -> String {
        let mut text = format!("{MAGIC}\nepoch {}\n", self.epoch);
        for (start, end, owner) in self.ranges() {
            text.push_str(&format!("slots {start}-{end} {owner}\n"));
        }
        text
    }

    pub fn parse(text: &str) -> Result<SlotMap, String> {
        let mut lines = text.lines();
        if lines.next() != Some(MAGIC) {
            return Err("bad slot-map header".into());
        }
        let mut map = SlotMap::new();
        let epoch_line = lines.next().ok_or("missing epoch line")?;
        map.epoch = epoch_line
            .strip_prefix("epoch ")
            .and_then(|v| v.parse().ok())
            .ok_or_else(|| format!("bad epoch line {epoch_line:?}"))?;
        for line in lines {
            if line.is_empty() {
                continue;
            }
            let bad = || format!("bad slots line {line:?}");
            let rest = line.strip_prefix("slots ").ok_or_else(bad)?;
            let (range, addr) = rest.split_once(' ').ok_or_else(bad)?;
            let (start, end) = range.split_once('-').ok_or_else(bad)?;
            let start: u16 = start.parse().map_err(|_| bad())?;
            let end: u16 = end.parse().map_err(|_| bad())?;
            if start > end || end >= NUM_SLOTS || addr.is_empty() {
                return Err(bad());
            }
            map.assign(start, end, addr);
        }
        Ok(map)
    }

    /// Crash-safe persist: write a tmp sibling, fsync, rename over.
    pub fn save(&self, path: &Path) -> io::Result<()> {
        let tmp = path.with_extension("map.tmp");
        let mut file = OpenOptions::new().write(true).create(true).truncate(true).open(&tmp)?;
        file.write_all(self.encode().as_bytes())?;
        file.sync_all()?;
        drop(file);
        fs::rename(&tmp, path)?;
        if let Some(dir) = path.parent() {
            if let Ok(d) = File::open(dir) {
                let _ = d.sync_all();
            }
        }
        Ok(())
    }

    pub fn load(path: &Path) -> io::Result<SlotMap> {
        let mut text = String::new();
        File::open(path)?.read_to_string(&mut text)?;
        SlotMap::parse(&text).map_err(io::Error::other)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    struct TempDir(PathBuf);

    impl TempDir {
        fn new(tag: &str) -> Self {
            let mut p = std::env::temp_dir();
            p.push(format!("dash-cluster-map-{tag}-{}", std::process::id()));
            let _ = fs::remove_dir_all(&p);
            fs::create_dir_all(&p).unwrap();
            TempDir(p)
        }
    }

    impl Drop for TempDir {
        fn drop(&mut self) {
            let _ = fs::remove_dir_all(&self.0);
        }
    }

    #[test]
    fn encode_parse_roundtrip() {
        let mut map = SlotMap::new();
        map.assign(0, 8191, "127.0.0.1:7700");
        map.assign(8192, 16383, "127.0.0.1:7701");
        map.assign(100, 200, "127.0.0.1:7702"); // punch a hole in node 0's run
        map.bump_epoch(0);
        map.bump_epoch(41); // floor wins over the +1: max(2, 41)
        assert_eq!(map.epoch(), 41);

        let text = map.encode();
        let back = SlotMap::parse(&text).expect("parse");
        assert_eq!(back.epoch(), 41);
        assert_eq!(back.owner(0).map(|a| &**a), Some("127.0.0.1:7700"));
        assert_eq!(back.owner(150).map(|a| &**a), Some("127.0.0.1:7702"));
        assert_eq!(back.owner(16383).map(|a| &**a), Some("127.0.0.1:7701"));
        assert_eq!(back.slots_assigned(), 16384);
        assert_eq!(back.slots_owned_by("127.0.0.1:7702"), 101);
        assert_eq!(back.nodes().len(), 3);
        // Ranges re-compress to the same text.
        assert_eq!(back.encode(), text);
    }

    #[test]
    fn ranges_compress_contiguous_same_owner_runs() {
        let mut map = SlotMap::new();
        map.assign(5, 10, "a");
        map.assign(11, 20, "a");
        map.assign(30, 30, "b");
        let ranges = map.ranges();
        assert_eq!(ranges.len(), 2);
        assert_eq!((ranges[0].0, ranges[0].1, &*ranges[0].2), (5, 20, "a"));
        assert_eq!((ranges[1].0, ranges[1].1, &*ranges[1].2), (30, 30, "b"));
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(SlotMap::parse("not a map").is_err());
        assert!(SlotMap::parse("dash-cluster-map v1\nepoch x\n").is_err());
        assert!(SlotMap::parse("dash-cluster-map v1\nepoch 1\nslots 5-4 a\n").is_err());
        assert!(SlotMap::parse("dash-cluster-map v1\nepoch 1\nslots 0-16384 a\n").is_err());
        assert!(SlotMap::parse("dash-cluster-map v1\nepoch 1\nbogus\n").is_err());
    }

    #[test]
    fn save_load_roundtrip_and_unassigned_map() {
        let dir = TempDir::new("saveload");
        let path = dir.0.join("cluster.map");
        let mut map = SlotMap::new();
        map.assign(0, 99, "n1");
        map.bump_epoch(0);
        map.save(&path).unwrap();
        let back = SlotMap::load(&path).unwrap();
        assert_eq!(back.epoch(), 1);
        assert_eq!(back.slots_assigned(), 100);
        assert!(back.owner(100).is_none());

        // A fully-unassigned map persists and loads too.
        SlotMap::new().save(&path).unwrap();
        assert_eq!(SlotMap::load(&path).unwrap().slots_assigned(), 0);
    }
}
