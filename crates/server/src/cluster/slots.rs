//! Key → hash-slot mapping: CRC16-XMODEM over the key (or its
//! `{hash tag}`), masked to [`NUM_SLOTS`] — byte-compatible with Redis
//! Cluster, so the slot of a key is a pure, stable function every node
//! and every client computes identically.
//!
//! The hash-tag rule (Redis semantics): if the key contains a `{`, and
//! a `}` appears after it, and the substring between them is non-empty,
//! only that substring is hashed. `{user1000}.following` and
//! `{user1000}.followers` therefore land in the same slot, which is
//! what makes multi-key commands usable under cluster mode — the
//! CROSSSLOT check requires one slot per command.

/// Total hash slots in the cluster keyspace (Redis-compatible: 2^14).
pub const NUM_SLOTS: u16 = 16384;

/// CRC16-CCITT (XMODEM) lookup table: polynomial 0x1021, init 0, no
/// reflection — the exact variant Redis Cluster specifies.
const fn crc16_table() -> [u16; 256] {
    let mut table = [0u16; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = (i as u16) << 8;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 0x8000 != 0 { (crc << 1) ^ 0x1021 } else { crc << 1 };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static CRC16_TABLE: [u16; 256] = crc16_table();

/// CRC16-XMODEM of `data`.
pub fn crc16(data: &[u8]) -> u16 {
    let mut crc = 0u16;
    for &byte in data {
        crc = (crc << 8) ^ CRC16_TABLE[(((crc >> 8) as u8) ^ byte) as usize];
    }
    crc
}

/// The byte range actually hashed: the first `{tag}` when present and
/// non-empty, the whole key otherwise.
pub fn hash_tag(key: &[u8]) -> &[u8] {
    if let Some(open) = key.iter().position(|&b| b == b'{') {
        if let Some(close) = key[open + 1..].iter().position(|&b| b == b'}') {
            if close > 0 {
                return &key[open + 1..open + 1 + close];
            }
        }
    }
    key
}

/// The hash slot `key` belongs to.
pub fn key_slot(key: &[u8]) -> u16 {
    crc16(hash_tag(key)) & (NUM_SLOTS - 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc16_matches_the_xmodem_check_value() {
        // The CRC catalogue's check value for CRC-16/XMODEM.
        assert_eq!(crc16(b"123456789"), 0x31C3);
        assert_eq!(crc16(b""), 0x0000);
    }

    #[test]
    fn key_slots_match_redis_cluster() {
        // Well-known Redis Cluster slot assignments.
        assert_eq!(key_slot(b"foo"), 12182);
        assert_eq!(key_slot(b"bar"), 5061);
        assert_eq!(key_slot(b"123456789"), 0x31C3 & 16383);
    }

    #[test]
    fn hash_tag_rules() {
        // Tagged keys hash only the tag — both land in user1000's slot.
        assert_eq!(key_slot(b"{user1000}.following"), key_slot(b"user1000"));
        assert_eq!(key_slot(b"{user1000}.followers"), key_slot(b"{user1000}.following"));
        // Empty tag: the whole key is hashed.
        assert_eq!(hash_tag(b"{}x"), b"{}x");
        // No closing brace: the whole key is hashed.
        assert_eq!(hash_tag(b"{open"), b"{open");
        // Only the FIRST { and the first } after it count.
        assert_eq!(hash_tag(b"a{b}{c}"), b"b");
        assert_eq!(hash_tag(b"a{{b}}"), b"{b");
        assert_eq!(hash_tag(b"plain"), b"plain");
    }

    #[test]
    fn every_slot_is_in_range() {
        for i in 0..10_000u32 {
            let key = format!("key:{i}");
            assert!(key_slot(key.as_bytes()) < NUM_SLOTS);
        }
    }
}
