//! Eviction policy and the per-key access metadata it scores by.
//!
//! Each value blob carries one u32 access word, updated on read (and
//! initialized on write) only when a memory budget is configured:
//!
//! * **LRU** — the word is the key's last-access time in seconds. The
//!   sampled evictor picks the smallest (oldest) stamp.
//! * **LFU** — Redis-style: the low 8 bits are a logarithmic frequency
//!   counter (probabilistic increment, so 255 spans millions of hits),
//!   the high 24 bits the last-decay time in minutes; the counter decays
//!   by one per elapsed minute. The evictor picks the smallest decayed
//!   counter.
//!
//! The word is advisory (relaxed atomics, never persisted): losing it in
//! a crash only resets eviction ordering, never correctness.

/// What to do when `--max-memory` is exceeded.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EvictionPolicy {
    /// Reject writes with `-OOM` once the budget is hit (Redis
    /// `noeviction`) — the default.
    #[default]
    NoEviction,
    /// Sampled least-recently-used over the whole keyspace.
    AllKeysLru,
    /// Sampled least-frequently-used (decayed log counter).
    AllKeysLfu,
}

impl EvictionPolicy {
    /// Parse the `--maxmemory-policy` spelling.
    pub fn parse(s: &str) -> Option<Self> {
        match s.to_ascii_lowercase().as_str() {
            "noeviction" => Some(EvictionPolicy::NoEviction),
            "allkeys-lru" => Some(EvictionPolicy::AllKeysLru),
            "allkeys-lfu" => Some(EvictionPolicy::AllKeysLfu),
            _ => None,
        }
    }

    pub fn name(self) -> &'static str {
        match self {
            EvictionPolicy::NoEviction => "noeviction",
            EvictionPolicy::AllKeysLru => "allkeys-lru",
            EvictionPolicy::AllKeysLfu => "allkeys-lfu",
        }
    }
}

/// New keys start mid-scale so they survive their first sampling rounds
/// (Redis's `LFU_INIT_VAL`).
const LFU_INIT: u32 = 5;
/// Increment probability divisor grows with the counter (Redis's
/// `lfu-log-factor`): p = 1 / (counter * FACTOR + 1).
const LFU_LOG_FACTOR: u32 = 10;

#[inline]
fn lfu_minutes(now_ms: u64) -> u32 {
    ((now_ms / 60_000) & 0x00FF_FFFF) as u32
}

/// Access word for a key written now.
pub(crate) fn initial_access(policy: EvictionPolicy, now_ms: u64) -> u32 {
    match policy {
        EvictionPolicy::AllKeysLfu => (lfu_minutes(now_ms) << 8) | LFU_INIT,
        _ => lru_stamp(now_ms),
    }
}

/// LRU stamp: seconds, monotone enough for pick-the-smallest sampling.
#[inline]
pub(crate) fn lru_stamp(now_ms: u64) -> u32 {
    (now_ms / 1000) as u32
}

/// The LFU counter after one-per-minute decay (the eviction score).
pub(crate) fn lfu_score(access: u32, now_ms: u64) -> u32 {
    let counter = access & 0xFF;
    let elapsed = lfu_minutes(now_ms).wrapping_sub(access >> 8) & 0x00FF_FFFF;
    counter.saturating_sub(elapsed)
}

/// Decay, then probabilistically bump, the LFU word on an access. The
/// coin is a deterministic mix of the blob offset and the clock — cheap,
/// and unbiased enough for a logarithmic counter.
pub(crate) fn lfu_touch(access: u32, now_ms: u64, salt: u64) -> u32 {
    let counter = lfu_score(access, now_ms);
    let bumped = if counter >= 255 {
        255
    } else if splitmix(salt ^ now_ms).is_multiple_of(u64::from(counter * LFU_LOG_FACTOR + 1)) {
        counter + 1
    } else {
        counter
    };
    (lfu_minutes(now_ms) << 8) | bumped
}

/// splitmix64 finalizer — the deterministic coin above.
fn splitmix(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_round_trips_names() {
        for p in [
            EvictionPolicy::NoEviction,
            EvictionPolicy::AllKeysLru,
            EvictionPolicy::AllKeysLfu,
        ] {
            assert_eq!(EvictionPolicy::parse(p.name()), Some(p));
        }
        assert_eq!(EvictionPolicy::parse("ALLKEYS-LRU"), Some(EvictionPolicy::AllKeysLru));
        assert_eq!(EvictionPolicy::parse("volatile-ttl"), None);
    }

    #[test]
    fn lfu_counter_grows_under_hits_and_decays_with_time() {
        let t0 = 1_700_000_000_000u64;
        let mut access = initial_access(EvictionPolicy::AllKeysLfu, t0);
        assert_eq!(lfu_score(access, t0), LFU_INIT);
        for i in 0..10_000u64 {
            access = lfu_touch(access, t0 + i, i * 7919);
        }
        let hot = lfu_score(access, t0 + 10_000);
        assert!(hot > LFU_INIT, "ten thousand hits must raise the counter, got {hot}");
        assert!(hot < 255, "log counter must not saturate on 10k hits, got {hot}");
        // An hour idle decays it by 60.
        let later = t0 + 60 * 60_000;
        assert_eq!(lfu_score(access, later), hot.saturating_sub(60));
    }

    #[test]
    fn lru_stamp_orders_by_time() {
        assert!(lru_stamp(5_000) < lru_stamp(125_000));
    }
}
