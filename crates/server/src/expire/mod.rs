//! Expiration & eviction: the clock, the eviction policy, and the
//! hashed timer wheel driving active expiry.
//!
//! The design invariant of the whole subsystem is **one clock**: only a
//! primary ever consults [`now_ms`] to decide that a key is dead. Every
//! expiry — lazy (discovered on read) or active (timer wheel / sweep) —
//! is executed as an ordinary delete through the engine's write path,
//! so it lands in the redo log and the replica stream as an explicit
//! `DEL`. Replicas, `--replay-logs`, snapshots and cluster migration
//! therefore never re-derive time: a replica's view filter may *hide* a
//! key whose (absolute, primary-assigned) deadline has passed, but only
//! the primary's `DEL` ever removes it, which is what keeps replicas
//! byte-exact convergent under expiring churn.
//!
//! Expiry metadata lives in the value blob's header (see
//! `engine::blob_meta`): a u64 absolute deadline in Unix milliseconds
//! (0 = no expiry) that is immutable per blob — `EXPIRE`/`PERSIST`
//! rewrite the blob, so lock-free readers never observe a torn
//! deadline — plus a u32 access word the sampled LRU/LFU eviction
//! scores candidates by ([`policy`]).

pub(crate) mod policy;
pub(crate) mod wheel;

pub use policy::EvictionPolicy;
pub(crate) use wheel::TimerWheel;

use std::time::{SystemTime, UNIX_EPOCH};

/// Milliseconds since the Unix epoch — the store's only clock. Deadlines
/// are stored and replicated as absolute values from this clock, so they
/// survive crash/reopen and mean the same thing on every node.
pub fn now_ms() -> u64 {
    SystemTime::now().duration_since(UNIX_EPOCH).map(|d| d.as_millis() as u64).unwrap_or(0)
}

/// Is a deadline past? `0` means "no expiry".
#[inline]
pub(crate) fn is_expired(expire_at_ms: u64, now_ms: u64) -> bool {
    expire_at_ms != 0 && expire_at_ms <= now_ms
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_deadline_never_expires() {
        assert!(!is_expired(0, u64::MAX));
        assert!(is_expired(1, 1), "deadline is inclusive");
        assert!(!is_expired(2, 1));
    }

    #[test]
    fn clock_is_sane() {
        let t = now_ms();
        assert!(t > 1_500_000_000_000, "clock must be Unix milliseconds");
    }
}
