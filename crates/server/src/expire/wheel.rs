//! The hashed timer wheel behind active expiry.
//!
//! Fixed ring of buckets at one-second granularity: a deadline hashes to
//! bucket `(deadline_ms / 1000) % BUCKETS`. The background tick drains
//! every bucket between the last drained tick and "now"; entries whose
//! deadline is still in the future (a later revolution of the wheel)
//! stay queued. Entries are *hints*, not truth: the engine re-reads the
//! key's current deadline under the shard write lock before deleting, so
//! a stale entry (key overwritten, persisted, or already gone) is
//! harmless. Deadlines already inside the drained window are parked on
//! the next tick so they cannot miss a whole revolution.

use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::Mutex;

/// Ring size; with 1 s ticks one revolution is ~8.5 minutes.
const WHEEL_BUCKETS: u64 = 512;
/// Bucket granularity.
const WHEEL_TICK_MS: u64 = 1000;

pub(crate) struct WheelEntry {
    pub key: Vec<u8>,
    pub expire_at_ms: u64,
}

pub(crate) struct TimerWheel {
    buckets: Vec<Mutex<Vec<WheelEntry>>>,
    /// Last fully drained tick (deadline_ms / tick).
    cursor: AtomicU64,
    /// Serializes drains (tick thread vs an on-demand `DBSIZE` drain).
    drain_lock: Mutex<()>,
    /// Entries queued (stale ones included, until their tick drains).
    queued: AtomicU64,
}

impl TimerWheel {
    pub fn new(now_ms: u64) -> Self {
        TimerWheel {
            buckets: (0..WHEEL_BUCKETS).map(|_| Mutex::new(Vec::new())).collect(),
            cursor: AtomicU64::new(now_ms / WHEEL_TICK_MS),
            drain_lock: Mutex::new(()),
            queued: AtomicU64::new(0),
        }
    }

    /// Queue a deadline for a key. Deadlines at or before the drain
    /// cursor land on the next tick (never a full revolution away).
    pub fn insert(&self, key: Vec<u8>, expire_at_ms: u64) {
        let tick =
            (expire_at_ms / WHEEL_TICK_MS).max(self.cursor.load(Ordering::Relaxed) + 1);
        let idx = (tick % WHEEL_BUCKETS) as usize;
        self.buckets[idx].lock().push(WheelEntry { key, expire_at_ms });
        self.queued.fetch_add(1, Ordering::Relaxed);
    }

    /// Pull up to `budget` entries whose deadline is ≤ `now_ms`,
    /// advancing the cursor through every elapsed tick. Future-deadline
    /// entries sharing a bucket stay queued for their revolution.
    pub fn drain_due(&self, now_ms: u64, budget: usize) -> Vec<WheelEntry> {
        let target = now_ms / WHEEL_TICK_MS;
        let mut due = Vec::new();
        let _g = self.drain_lock.lock();
        while self.cursor.load(Ordering::Relaxed) < target && due.len() < budget {
            let tick = self.cursor.load(Ordering::Relaxed) + 1;
            let mut repark = Vec::new();
            {
                let mut bucket = self.buckets[(tick % WHEEL_BUCKETS) as usize].lock();
                let mut i = 0;
                while i < bucket.len() {
                    if bucket[i].expire_at_ms <= now_ms {
                        due.push(bucket.swap_remove(i));
                    } else if bucket[i].expire_at_ms / WHEEL_TICK_MS <= tick {
                        // Deadline lands mid-tick (not yet due) but the
                        // cursor is passing its tick: park on the next
                        // tick or it waits out a whole revolution.
                        repark.push(bucket.swap_remove(i));
                    } else {
                        i += 1;
                    }
                }
            }
            self.cursor.store(tick, Ordering::Relaxed);
            if !repark.is_empty() {
                self.buckets[((tick + 1) % WHEEL_BUCKETS) as usize].lock().extend(repark);
            }
        }
        self.queued.fetch_sub(due.len() as u64, Ordering::Relaxed);
        due
    }

    /// Queued entries (stale hints included) — a gauge, not a key count.
    pub fn queued(&self) -> u64 {
        self.queued.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const T0: u64 = 1_700_000_000_000;

    fn keys(entries: &[WheelEntry]) -> Vec<&[u8]> {
        entries.iter().map(|e| e.key.as_slice()).collect()
    }

    #[test]
    fn due_entries_drain_once_their_tick_passes() {
        let w = TimerWheel::new(T0);
        w.insert(b"a".to_vec(), T0 + 1_500);
        w.insert(b"b".to_vec(), T0 + 10_000);
        assert!(w.drain_due(T0 + 1_000, usize::MAX).is_empty(), "nothing due yet");
        let due = w.drain_due(T0 + 2_000, usize::MAX);
        assert_eq!(keys(&due), vec![b"a".as_slice()]);
        assert_eq!(w.queued(), 1);
        let due = w.drain_due(T0 + 10_000, usize::MAX);
        assert_eq!(keys(&due), vec![b"b".as_slice()]);
        assert_eq!(w.queued(), 0);
    }

    #[test]
    fn deadline_behind_the_cursor_is_not_lost_for_a_revolution() {
        let w = TimerWheel::new(T0);
        let _ = w.drain_due(T0 + 5_000, usize::MAX);
        // Deadline inside the already-drained window: must surface on
        // the very next tick, not 512 s later.
        w.insert(b"late".to_vec(), T0 + 2_000);
        let due = w.drain_due(T0 + 6_000, usize::MAX);
        assert_eq!(keys(&due), vec![b"late".as_slice()]);
    }

    #[test]
    fn far_deadlines_survive_sharing_a_bucket() {
        let w = TimerWheel::new(T0);
        // Same bucket, one revolution apart.
        w.insert(b"near".to_vec(), T0 + 3_000);
        w.insert(b"far".to_vec(), T0 + 3_000 + 512_000);
        let due = w.drain_due(T0 + 4_000, usize::MAX);
        assert_eq!(keys(&due), vec![b"near".as_slice()]);
        let due = w.drain_due(T0 + 4_000 + 512_000, usize::MAX);
        assert_eq!(keys(&due), vec![b"far".as_slice()]);
    }

    #[test]
    fn budget_bounds_one_drain_and_the_rest_follows() {
        let w = TimerWheel::new(T0);
        for i in 0..100u32 {
            w.insert(format!("k{i}").into_bytes(), T0 + 1_000 + u64::from(i % 7));
        }
        let first = w.drain_due(T0 + 60_000, 10);
        assert!(first.len() >= 10, "budget is a floor per bucket batch");
        let rest = w.drain_due(T0 + 60_000, usize::MAX);
        assert_eq!(first.len() + rest.len(), 100);
        assert_eq!(w.queued(), 0);
    }
}
