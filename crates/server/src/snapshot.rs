//! Snapshot files: the length-prefixed, checksummed on-disk format the
//! engine's online `SNAPSHOT` export writes and the restore path loads.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! magic     u64   SNAP_MAGIC
//! version   u32   format version (1)
//! shards    u32   source store's shard count (informational — a restore
//!                 may target any shard count; records re-partition)
//! records   *     u32 key_len, u32 value_len, key bytes, value bytes
//! end mark  u32   key_len = 0xFFFF_FFFF
//! count     u64   number of records
//! checksum  u64   FNV-1a over every preceding byte of the file
//! ```
//!
//! The writer streams records through a running checksum and publishes
//! atomically: everything goes to `<path>.tmp`, which is fsynced and
//! renamed over `<path>` only in [`SnapshotWriter::finish`] — a crash
//! mid-snapshot can never leave a half-written file under the real name.
//!
//! The reader ([`read_all`]) verifies structure, bounds, record count and
//! checksum **before** returning a single record, so a corrupted snapshot
//! is rejected with a clean error instead of partially restored. It holds
//! the whole record set in memory, which is the right trade-off at the
//! sizes this store targets per snapshot (values are capped at
//! [`MAX_VALUE_LEN`](crate::MAX_VALUE_LEN) and the source pools are
//! bounded); a streaming two-pass verify can replace it if pools grow.

use std::fmt;
use std::fs::File;
use std::io::{BufWriter, Read, Write};
use std::path::{Path, PathBuf};

use dash_common::MAX_KEY_LEN;

use crate::engine::MAX_VALUE_LEN;

/// `b"DASHSNP1"` as a little-endian u64.
pub const SNAP_MAGIC: u64 = u64::from_le_bytes(*b"DASHSNP1");
/// Current format version.
pub const SNAP_VERSION: u32 = 1;
/// `key_len` sentinel terminating the record stream.
const END_MARK: u32 = u32::MAX;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Running FNV-1a 64 (not cryptographic — an integrity check against
/// torn writes and bit rot, not an authenticity check).
#[derive(Clone, Copy)]
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(FNV_OFFSET)
    }

    fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
    }
}

/// Why a snapshot could not be written or loaded.
#[derive(Debug)]
pub enum SnapshotError {
    Io(std::io::Error),
    /// Structural or checksum corruption; the message says what and where.
    Corrupt(String),
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::Io(e) => write!(f, "snapshot I/O error: {e}"),
            SnapshotError::Corrupt(s) => write!(f, "snapshot rejected: {s}"),
        }
    }
}

impl std::error::Error for SnapshotError {}

impl From<std::io::Error> for SnapshotError {
    fn from(e: std::io::Error) -> Self {
        SnapshotError::Io(e)
    }
}

fn corrupt(msg: impl Into<String>) -> SnapshotError {
    SnapshotError::Corrupt(msg.into())
}

pub type SnapshotResult<T> = Result<T, SnapshotError>;

/// Streams `(key, value)` records into `<path>.tmp` and publishes the
/// finished, checksummed file as `<path>` on [`finish`](Self::finish).
pub struct SnapshotWriter {
    out: BufWriter<File>,
    tmp: PathBuf,
    path: PathBuf,
    fnv: Fnv,
    count: u64,
}

impl SnapshotWriter {
    /// Start a snapshot destined for `path`. `shards` is recorded in the
    /// header for diagnostics.
    pub fn create(path: &Path, shards: u32) -> SnapshotResult<Self> {
        // A unique tmp name per writer (pid + in-process sequence), so
        // two concurrent snapshots to the same path cannot interleave
        // bytes into a shared tmp file and publish a corrupt backup —
        // the last rename wins with a complete, self-consistent file.
        static TMP_SEQ: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        let mut name = path
            .file_name()
            .ok_or_else(|| corrupt("snapshot path has no file name"))?
            .to_os_string();
        name.push(format!(
            ".tmp.{}.{}",
            std::process::id(),
            TMP_SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed)
        ));
        let tmp = path.with_file_name(name);
        let file = File::create(&tmp)?;
        let mut w = SnapshotWriter {
            out: BufWriter::new(file),
            tmp,
            path: path.to_path_buf(),
            fnv: Fnv::new(),
            count: 0,
        };
        let mut header = Vec::with_capacity(16);
        header.extend_from_slice(&SNAP_MAGIC.to_le_bytes());
        header.extend_from_slice(&SNAP_VERSION.to_le_bytes());
        header.extend_from_slice(&shards.to_le_bytes());
        w.write_hashed(&header)?;
        Ok(w)
    }

    fn write_hashed(&mut self, bytes: &[u8]) -> SnapshotResult<()> {
        self.fnv.update(bytes);
        self.out.write_all(bytes)?;
        Ok(())
    }

    /// Append one record.
    pub fn append(&mut self, key: &[u8], value: &[u8]) -> SnapshotResult<()> {
        let mut lens = [0u8; 8];
        lens[..4].copy_from_slice(&(key.len() as u32).to_le_bytes());
        lens[4..].copy_from_slice(&(value.len() as u32).to_le_bytes());
        self.write_hashed(&lens)?;
        self.write_hashed(key)?;
        self.write_hashed(value)?;
        self.count += 1;
        Ok(())
    }

    /// Write the trailer, fsync, and atomically publish the file under
    /// its real name. Returns the record count.
    pub fn finish(mut self) -> SnapshotResult<u64> {
        let mut trailer = Vec::with_capacity(12);
        trailer.extend_from_slice(&END_MARK.to_le_bytes());
        trailer.extend_from_slice(&self.count.to_le_bytes());
        self.write_hashed(&trailer)?;
        let checksum = self.fnv.0;
        self.out.write_all(&checksum.to_le_bytes())?;
        self.out.flush()?;
        self.out.get_ref().sync_all()?;
        std::fs::rename(&self.tmp, &self.path)?;
        Ok(self.count)
    }
}

impl Drop for SnapshotWriter {
    fn drop(&mut self) {
        // An unfinished snapshot leaves no debris under the real name;
        // clean up the tmp file too (best effort).
        let _ = std::fs::remove_file(&self.tmp);
    }
}

struct Parser<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn take(&mut self, n: usize, what: &str) -> SnapshotResult<&'a [u8]> {
        if self.buf.len() - self.pos < n {
            return Err(corrupt(format!("truncated file: {what} at offset {}", self.pos)));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u32(&mut self, what: &str) -> SnapshotResult<u32> {
        Ok(u32::from_le_bytes(self.take(4, what)?.try_into().unwrap()))
    }

    fn u64(&mut self, what: &str) -> SnapshotResult<u64> {
        Ok(u64::from_le_bytes(self.take(8, what)?.try_into().unwrap()))
    }
}

/// Load and fully verify a snapshot file. Every structural check —
/// magic, version, per-record length bounds, end marker, record count,
/// checksum, no trailing bytes — passes before any record is returned.
pub fn read_all(path: &Path) -> SnapshotResult<Vec<(Vec<u8>, Vec<u8>)>> {
    let mut buf = Vec::new();
    File::open(path)?.read_to_end(&mut buf)?;
    if buf.len() < 8 + 4 + 4 + 4 + 8 + 8 {
        return Err(corrupt(format!("file of {} bytes is smaller than an empty snapshot", buf.len())));
    }
    let mut p = Parser { buf: &buf, pos: 0 };
    if p.u64("magic")? != SNAP_MAGIC {
        return Err(corrupt("bad magic: not a dash snapshot"));
    }
    let version = p.u32("version")?;
    if version != SNAP_VERSION {
        return Err(corrupt(format!("unsupported snapshot version {version}")));
    }
    let _shards = p.u32("shard count")?;
    let mut records = Vec::new();
    loop {
        let klen = p.u32("key length")?;
        if klen == END_MARK {
            break;
        }
        let vlen = p.u32("value length")?;
        if klen as usize > MAX_KEY_LEN {
            return Err(corrupt(format!("key length {klen} exceeds limit")));
        }
        if vlen as usize > MAX_VALUE_LEN {
            return Err(corrupt(format!("value length {vlen} exceeds limit")));
        }
        let key = p.take(klen as usize, "key bytes")?.to_vec();
        let value = p.take(vlen as usize, "value bytes")?.to_vec();
        records.push((key, value));
    }
    let count = p.u64("record count")?;
    if count != records.len() as u64 {
        return Err(corrupt(format!(
            "trailer claims {count} records, file holds {}",
            records.len()
        )));
    }
    let hashed_end = p.pos;
    let checksum = p.u64("checksum")?;
    if p.pos != buf.len() {
        return Err(corrupt(format!("{} trailing bytes after checksum", buf.len() - p.pos)));
    }
    let mut fnv = Fnv::new();
    fnv.update(&buf[..hashed_end]);
    if fnv.0 != checksum {
        return Err(corrupt(format!(
            "checksum mismatch: file says {checksum:#018x}, computed {:#018x}",
            fnv.0
        )));
    }
    Ok(records)
}

#[cfg(test)]
mod tests {
    use super::*;

    struct TempPath(PathBuf);

    impl TempPath {
        fn new(tag: &str) -> Self {
            let mut p = std::env::temp_dir();
            p.push(format!("dash-snap-{tag}-{}", std::process::id()));
            let _ = std::fs::remove_file(&p);
            TempPath(p)
        }
    }

    impl Drop for TempPath {
        fn drop(&mut self) {
            let _ = std::fs::remove_file(&self.0);
        }
    }

    /// Any leftover `<name>.tmp.*` files next to `path`?
    fn tmp_debris(path: &Path) -> bool {
        let stem = format!("{}.tmp", path.file_name().unwrap().to_str().unwrap());
        std::fs::read_dir(path.parent().unwrap())
            .unwrap()
            .filter_map(|e| e.ok())
            .any(|e| e.file_name().to_str().is_some_and(|n| n.starts_with(&stem)))
    }

    fn write_sample(path: &Path, n: u32) -> u64 {
        let mut w = SnapshotWriter::create(path, 4).unwrap();
        for i in 0..n {
            w.append(format!("key-{i}").as_bytes(), format!("value-{i}").as_bytes()).unwrap();
        }
        w.finish().unwrap()
    }

    #[test]
    fn roundtrip() {
        let p = TempPath::new("roundtrip");
        assert_eq!(write_sample(&p.0, 100), 100);
        let records = read_all(&p.0).unwrap();
        assert_eq!(records.len(), 100);
        for (i, (k, v)) in records.iter().enumerate() {
            assert_eq!(k, format!("key-{i}").as_bytes());
            assert_eq!(v, format!("value-{i}").as_bytes());
        }
        assert!(!tmp_debris(&p.0), "tmp must be renamed away");
    }

    #[test]
    fn empty_snapshot_roundtrips() {
        let p = TempPath::new("empty");
        assert_eq!(write_sample(&p.0, 0), 0);
        assert_eq!(read_all(&p.0).unwrap(), Vec::new());
    }

    #[test]
    fn binary_keys_and_values() {
        let p = TempPath::new("binary");
        let key: Vec<u8> = (0..=255u8).collect();
        let value = vec![0u8; 10_000];
        let mut w = SnapshotWriter::create(&p.0, 1).unwrap();
        w.append(&key, &value).unwrap();
        w.finish().unwrap();
        assert_eq!(read_all(&p.0).unwrap(), vec![(key, value)]);
    }

    #[test]
    fn every_corrupted_byte_is_detected() {
        let p = TempPath::new("corrupt");
        write_sample(&p.0, 10);
        let original = std::fs::read(&p.0).unwrap();
        // Flipping any single byte must fail verification (length fields
        // may shift parsing, data bytes break the checksum — either way
        // read_all must reject, never mis-restore).
        for pos in (0..original.len()).step_by(7) {
            let mut bad = original.clone();
            bad[pos] ^= 0x40;
            std::fs::write(&p.0, &bad).unwrap();
            assert!(read_all(&p.0).is_err(), "flip at byte {pos} went undetected");
        }
    }

    #[test]
    fn truncation_is_detected() {
        let p = TempPath::new("trunc");
        write_sample(&p.0, 10);
        let original = std::fs::read(&p.0).unwrap();
        for cut in [1, original.len() / 2, original.len() - 1] {
            std::fs::write(&p.0, &original[..cut]).unwrap();
            assert!(read_all(&p.0).is_err(), "truncation to {cut} bytes went undetected");
        }
    }

    #[test]
    fn unfinished_writer_leaves_no_file() {
        let p = TempPath::new("drop");
        {
            let mut w = SnapshotWriter::create(&p.0, 1).unwrap();
            w.append(b"k", b"v").unwrap();
            // Dropped without finish(): simulated crash mid-snapshot.
        }
        assert!(!p.0.exists(), "unfinished snapshot must not appear under the real name");
        assert!(!tmp_debris(&p.0), "tmp file must be cleaned up");
    }

    #[test]
    fn concurrent_writers_to_one_path_publish_a_valid_file() {
        let p = TempPath::new("concurrent");
        // Interleaved writers with distinct tmp files: whichever rename
        // lands last, the published file must be complete and verify.
        let mut a = SnapshotWriter::create(&p.0, 1).unwrap();
        let mut b = SnapshotWriter::create(&p.0, 1).unwrap();
        for i in 0..50u32 {
            a.append(format!("a-{i}").as_bytes(), b"va").unwrap();
            b.append(format!("b-{i}").as_bytes(), b"vb").unwrap();
        }
        a.finish().unwrap();
        b.finish().unwrap();
        let records = read_all(&p.0).unwrap();
        assert_eq!(records.len(), 50, "the survivor must be one writer's complete stream");
        assert!(records.iter().all(|(k, _)| k.starts_with(b"b-")), "last rename wins");
        assert!(!tmp_debris(&p.0));
    }
}
