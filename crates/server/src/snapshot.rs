//! Snapshot streams: the length-prefixed, checksummed record format the
//! engine's online `SNAPSHOT` export writes, the restore path loads, and
//! replica bootstrap ships over the wire (`PSYNC` → `+FULLRESYNC`).
//!
//! Layout (all integers little-endian; header/checksum framing shared
//! with the repl log via [`crate::repl::wire`]):
//!
//! ```text
//! header    16 B  SNAP_MAGIC, SNAP_VERSION, source shard count
//!                 (informational — a restore may target any shard
//!                 count; records re-partition)
//! records   *     u32 key_len, u32 value_len, u64 expire_at_ms,
//!                 key bytes, value bytes
//! end mark  u32   key_len = 0xFFFF_FFFF
//! count     u64   number of records
//! checksum  u64   FNV-1a over every preceding byte of the stream
//! ```
//!
//! `expire_at_ms` is the record's **absolute** expiry deadline in Unix
//! milliseconds (0 = none) — deadlines survive snapshot/restore verbatim
//! and are never re-derived from a clock. Version-1 streams (no expiry
//! field) still parse; their records load with no expiry.
//!
//! [`SnapshotStream`] writes that layout to any `Write` sink — a `Vec`
//! for the replication bootstrap payload, a buffered temp file for disk
//! backups. [`SnapshotWriter`] is the disk flavor: it streams to
//! `<path>.tmp`, fsyncs, and renames over `<path>` only in
//! [`SnapshotWriter::finish`] — a crash mid-snapshot can never leave a
//! half-written file under the real name.
//!
//! The readers ([`read_all`] / [`parse_all`]) verify structure, bounds,
//! record count and checksum **before** returning a single record, so a
//! corrupted snapshot is rejected with a clean error instead of
//! partially restored. They hold the whole record set in memory, which
//! is the right trade-off at the sizes this store targets per snapshot
//! (values are capped at [`MAX_VALUE_LEN`](crate::MAX_VALUE_LEN) and the
//! source pools are bounded); a streaming two-pass verify can replace it
//! if pools grow.

use std::fmt;
use std::fs::File;
use std::io::{BufWriter, Read, Write};
use std::path::{Path, PathBuf};

use dash_common::MAX_KEY_LEN;

use crate::engine::MAX_VALUE_LEN;
use crate::repl::wire::{FileHeader, Fnv, Parser};

/// `b"DASHSNP1"` as a little-endian u64.
pub const SNAP_MAGIC: u64 = u64::from_le_bytes(*b"DASHSNP1");
/// Current format version: v2 added the per-record expiry deadline.
pub const SNAP_VERSION: u32 = 2;
/// Oldest version the readers still accept.
const SNAP_VERSION_MIN: u32 = 1;
/// `key_len` sentinel terminating the record stream.
const END_MARK: u32 = u32::MAX;

/// Why a snapshot could not be written or loaded.
#[derive(Debug)]
pub enum SnapshotError {
    Io(std::io::Error),
    /// Structural or checksum corruption; the message says what and where.
    Corrupt(String),
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::Io(e) => write!(f, "snapshot I/O error: {e}"),
            SnapshotError::Corrupt(s) => write!(f, "snapshot rejected: {s}"),
        }
    }
}

impl std::error::Error for SnapshotError {}

impl From<std::io::Error> for SnapshotError {
    fn from(e: std::io::Error) -> Self {
        SnapshotError::Io(e)
    }
}

fn corrupt(msg: impl Into<String>) -> SnapshotError {
    SnapshotError::Corrupt(msg.into())
}

pub type SnapshotResult<T> = Result<T, SnapshotError>;

/// One decoded record: `(key, value, expire_at_ms)` — expiry 0 means none.
pub type SnapshotEntry = (Vec<u8>, Vec<u8>, u64);

/// Streams snapshot-format records (header, records, checksummed
/// trailer) into any `Write` sink.
pub struct SnapshotStream<W: Write> {
    out: W,
    fnv: Fnv,
    count: u64,
}

impl<W: Write> SnapshotStream<W> {
    /// Start a stream: writes the header. `shards` is recorded for
    /// diagnostics.
    pub fn new(out: W, shards: u32) -> SnapshotResult<Self> {
        let mut s = SnapshotStream { out, fnv: Fnv::new(), count: 0 };
        let header = FileHeader { magic: SNAP_MAGIC, version: SNAP_VERSION, meta: shards };
        s.write_hashed(&header.encode())?;
        Ok(s)
    }

    fn write_hashed(&mut self, bytes: &[u8]) -> SnapshotResult<()> {
        self.fnv.update(bytes);
        self.out.write_all(bytes)?;
        Ok(())
    }

    /// Append one record. `expire_at_ms` is the absolute expiry deadline
    /// (0 = none).
    pub fn append(&mut self, key: &[u8], value: &[u8], expire_at_ms: u64) -> SnapshotResult<()> {
        let mut head = [0u8; 16];
        head[..4].copy_from_slice(&(key.len() as u32).to_le_bytes());
        head[4..8].copy_from_slice(&(value.len() as u32).to_le_bytes());
        head[8..].copy_from_slice(&expire_at_ms.to_le_bytes());
        self.write_hashed(&head)?;
        self.write_hashed(key)?;
        self.write_hashed(value)?;
        self.count += 1;
        Ok(())
    }

    /// Write the end mark, count and checksum; returns the sink and the
    /// record count.
    pub fn finish(mut self) -> SnapshotResult<(W, u64)> {
        let mut trailer = Vec::with_capacity(12);
        trailer.extend_from_slice(&END_MARK.to_le_bytes());
        trailer.extend_from_slice(&self.count.to_le_bytes());
        self.write_hashed(&trailer)?;
        let checksum = self.fnv.value();
        self.out.write_all(&checksum.to_le_bytes())?;
        Ok((self.out, self.count))
    }
}

/// Streams `(key, value)` records into `<path>.tmp` and publishes the
/// finished, checksummed file as `<path>` on [`finish`](Self::finish).
pub struct SnapshotWriter {
    stream: Option<SnapshotStream<BufWriter<File>>>,
    tmp: PathBuf,
    path: PathBuf,
}

impl SnapshotWriter {
    /// Start a snapshot destined for `path`. `shards` is recorded in the
    /// header for diagnostics.
    pub fn create(path: &Path, shards: u32) -> SnapshotResult<Self> {
        // A unique tmp name per writer (pid + in-process sequence), so
        // two concurrent snapshots to the same path cannot interleave
        // bytes into a shared tmp file and publish a corrupt backup —
        // the last rename wins with a complete, self-consistent file.
        static TMP_SEQ: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        let mut name = path
            .file_name()
            .ok_or_else(|| corrupt("snapshot path has no file name"))?
            .to_os_string();
        name.push(format!(
            ".tmp.{}.{}",
            std::process::id(),
            TMP_SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed)
        ));
        let tmp = path.with_file_name(name);
        let file = File::create(&tmp)?;
        let stream = SnapshotStream::new(BufWriter::new(file), shards)?;
        Ok(SnapshotWriter { stream: Some(stream), tmp, path: path.to_path_buf() })
    }

    /// Append one record (`expire_at_ms` 0 = no expiry).
    pub fn append(&mut self, key: &[u8], value: &[u8], expire_at_ms: u64) -> SnapshotResult<()> {
        self.stream.as_mut().expect("append after finish").append(key, value, expire_at_ms)
    }

    /// Write the trailer, fsync, and atomically publish the file under
    /// its real name. Returns the record count.
    pub fn finish(mut self) -> SnapshotResult<u64> {
        let (mut out, count) = self.stream.take().expect("finish called twice").finish()?;
        out.flush()?;
        out.get_ref().sync_all()?;
        std::fs::rename(&self.tmp, &self.path)?;
        Ok(count)
    }
}

impl Drop for SnapshotWriter {
    fn drop(&mut self) {
        // An unfinished snapshot leaves no debris under the real name;
        // clean up the tmp file too (best effort). After a successful
        // finish the tmp was renamed away and this is a no-op.
        let _ = std::fs::remove_file(&self.tmp);
    }
}

/// Fully verify and decode a snapshot byte stream. Every structural
/// check — magic, version, per-record length bounds, end marker, record
/// count, checksum, no trailing bytes — passes before any record is
/// returned.
pub fn parse_all(buf: &[u8]) -> SnapshotResult<Vec<SnapshotEntry>> {
    if buf.len() < FileHeader::LEN + 4 + 8 + 8 {
        return Err(corrupt(format!("stream of {} bytes is smaller than an empty snapshot", buf.len())));
    }
    let mut p = Parser::new(buf);
    if p.u64("magic").map_err(corrupt)? != SNAP_MAGIC {
        return Err(corrupt("bad magic: not a dash snapshot file"));
    }
    let version = p.u32("version").map_err(corrupt)?;
    if !(SNAP_VERSION_MIN..=SNAP_VERSION).contains(&version) {
        return Err(corrupt(format!("unsupported snapshot version {version}")));
    }
    let _shards = p.u32("meta").map_err(corrupt)?;
    let mut records = Vec::new();
    loop {
        let klen = p.u32("key length").map_err(corrupt)?;
        if klen == END_MARK {
            break;
        }
        let vlen = p.u32("value length").map_err(corrupt)?;
        // v1 records carried no deadline: everything loads as "no expiry".
        let expire_at_ms =
            if version >= 2 { p.u64("expiry deadline").map_err(corrupt)? } else { 0 };
        if klen as usize > MAX_KEY_LEN {
            return Err(corrupt(format!("key length {klen} exceeds limit")));
        }
        if vlen as usize > MAX_VALUE_LEN {
            return Err(corrupt(format!("value length {vlen} exceeds limit")));
        }
        let key = p.take(klen as usize, "key bytes").map_err(corrupt)?.to_vec();
        let value = p.take(vlen as usize, "value bytes").map_err(corrupt)?.to_vec();
        records.push((key, value, expire_at_ms));
    }
    let count = p.u64("record count").map_err(corrupt)?;
    if count != records.len() as u64 {
        return Err(corrupt(format!(
            "trailer claims {count} records, stream holds {}",
            records.len()
        )));
    }
    let hashed_end = p.pos();
    let checksum = p.u64("checksum").map_err(corrupt)?;
    if p.remaining() != 0 {
        return Err(corrupt(format!("{} trailing bytes after checksum", p.remaining())));
    }
    let mut fnv = Fnv::new();
    fnv.update(&buf[..hashed_end]);
    if fnv.value() != checksum {
        return Err(corrupt(format!(
            "checksum mismatch: stream says {checksum:#018x}, computed {:#018x}",
            fnv.value()
        )));
    }
    Ok(records)
}

/// [`parse_all`] over a file on disk.
pub fn read_all(path: &Path) -> SnapshotResult<Vec<SnapshotEntry>> {
    let mut buf = Vec::new();
    File::open(path)?.read_to_end(&mut buf)?;
    parse_all(&buf)
}

#[cfg(test)]
mod tests {
    use super::*;

    struct TempPath(PathBuf);

    impl TempPath {
        fn new(tag: &str) -> Self {
            let mut p = std::env::temp_dir();
            p.push(format!("dash-snap-{tag}-{}", std::process::id()));
            let _ = std::fs::remove_file(&p);
            TempPath(p)
        }
    }

    impl Drop for TempPath {
        fn drop(&mut self) {
            let _ = std::fs::remove_file(&self.0);
        }
    }

    /// Any leftover `<name>.tmp.*` files next to `path`?
    fn tmp_debris(path: &Path) -> bool {
        let stem = format!("{}.tmp", path.file_name().unwrap().to_str().unwrap());
        std::fs::read_dir(path.parent().unwrap())
            .unwrap()
            .filter_map(|e| e.ok())
            .any(|e| e.file_name().to_str().is_some_and(|n| n.starts_with(&stem)))
    }

    fn write_sample(path: &Path, n: u32) -> u64 {
        let mut w = SnapshotWriter::create(path, 4).unwrap();
        for i in 0..n {
            // Every third record carries a deadline, exercising both
            // record shapes in one stream.
            let expire = if i % 3 == 0 { 1_700_000_000_000 + u64::from(i) } else { 0 };
            w.append(format!("key-{i}").as_bytes(), format!("value-{i}").as_bytes(), expire)
                .unwrap();
        }
        w.finish().unwrap()
    }

    #[test]
    fn roundtrip() {
        let p = TempPath::new("roundtrip");
        assert_eq!(write_sample(&p.0, 100), 100);
        let records = read_all(&p.0).unwrap();
        assert_eq!(records.len(), 100);
        for (i, (k, v, e)) in records.iter().enumerate() {
            assert_eq!(k, format!("key-{i}").as_bytes());
            assert_eq!(v, format!("value-{i}").as_bytes());
            let expect = if i % 3 == 0 { 1_700_000_000_000 + i as u64 } else { 0 };
            assert_eq!(*e, expect, "deadline must survive the roundtrip verbatim");
        }
        assert!(!tmp_debris(&p.0), "tmp must be renamed away");
    }

    #[test]
    fn v1_streams_still_parse_with_no_expiry() {
        // Hand-build a version-1 stream: records without the deadline
        // field. Old backups must keep restoring.
        let mut buf = Vec::new();
        let mut fnv = Fnv::new();
        let mut put = |bytes: &[u8], buf: &mut Vec<u8>| {
            fnv.update(bytes);
            buf.extend_from_slice(bytes);
        };
        put(&FileHeader { magic: SNAP_MAGIC, version: 1, meta: 4 }.encode(), &mut buf);
        for i in 0..5u32 {
            let (k, v) = (format!("key-{i}"), format!("value-{i}"));
            put(&(k.len() as u32).to_le_bytes(), &mut buf);
            put(&(v.len() as u32).to_le_bytes(), &mut buf);
            put(k.as_bytes(), &mut buf);
            put(v.as_bytes(), &mut buf);
        }
        put(&END_MARK.to_le_bytes(), &mut buf);
        put(&5u64.to_le_bytes(), &mut buf);
        let checksum = fnv.value();
        buf.extend_from_slice(&checksum.to_le_bytes());
        let records = parse_all(&buf).unwrap();
        assert_eq!(records.len(), 5);
        assert!(records.iter().all(|(_, _, e)| *e == 0), "v1 records load with no expiry");
    }

    #[test]
    fn in_memory_stream_matches_file_format() {
        let p = TempPath::new("memstream");
        write_sample(&p.0, 10);
        let mut s = SnapshotStream::new(Vec::new(), 4).unwrap();
        for i in 0..10u32 {
            let expire = if i % 3 == 0 { 1_700_000_000_000 + u64::from(i) } else { 0 };
            s.append(format!("key-{i}").as_bytes(), format!("value-{i}").as_bytes(), expire)
                .unwrap();
        }
        let (bytes, count) = s.finish().unwrap();
        assert_eq!(count, 10);
        assert_eq!(bytes, std::fs::read(&p.0).unwrap(), "Vec sink and file must be byte-identical");
        assert_eq!(parse_all(&bytes).unwrap().len(), 10);
    }

    #[test]
    fn empty_snapshot_roundtrips() {
        let p = TempPath::new("empty");
        assert_eq!(write_sample(&p.0, 0), 0);
        assert_eq!(read_all(&p.0).unwrap(), Vec::new());
    }

    #[test]
    fn binary_keys_and_values() {
        let p = TempPath::new("binary");
        let key: Vec<u8> = (0..=255u8).collect();
        let value = vec![0u8; 10_000];
        let mut w = SnapshotWriter::create(&p.0, 1).unwrap();
        w.append(&key, &value, 0).unwrap();
        w.finish().unwrap();
        assert_eq!(read_all(&p.0).unwrap(), vec![(key, value, 0)]);
    }

    #[test]
    fn every_corrupted_byte_is_detected() {
        let p = TempPath::new("corrupt");
        write_sample(&p.0, 10);
        let original = std::fs::read(&p.0).unwrap();
        // Flipping any single byte must fail verification (length fields
        // may shift parsing, data bytes break the checksum — either way
        // read_all must reject, never mis-restore).
        for pos in (0..original.len()).step_by(7) {
            let mut bad = original.clone();
            bad[pos] ^= 0x40;
            std::fs::write(&p.0, &bad).unwrap();
            assert!(read_all(&p.0).is_err(), "flip at byte {pos} went undetected");
        }
    }

    #[test]
    fn truncation_is_detected() {
        let p = TempPath::new("trunc");
        write_sample(&p.0, 10);
        let original = std::fs::read(&p.0).unwrap();
        for cut in [1, original.len() / 2, original.len() - 1] {
            std::fs::write(&p.0, &original[..cut]).unwrap();
            assert!(read_all(&p.0).is_err(), "truncation to {cut} bytes went undetected");
        }
    }

    #[test]
    fn unfinished_writer_leaves_no_file() {
        let p = TempPath::new("drop");
        {
            let mut w = SnapshotWriter::create(&p.0, 1).unwrap();
            w.append(b"k", b"v", 0).unwrap();
            // Dropped without finish(): simulated crash mid-snapshot.
        }
        assert!(!p.0.exists(), "unfinished snapshot must not appear under the real name");
        assert!(!tmp_debris(&p.0), "tmp file must be cleaned up");
    }

    #[test]
    fn concurrent_writers_to_one_path_publish_a_valid_file() {
        let p = TempPath::new("concurrent");
        // Interleaved writers with distinct tmp files: whichever rename
        // lands last, the published file must be complete and verify.
        let mut a = SnapshotWriter::create(&p.0, 1).unwrap();
        let mut b = SnapshotWriter::create(&p.0, 1).unwrap();
        for i in 0..50u32 {
            a.append(format!("a-{i}").as_bytes(), b"va", 0).unwrap();
            b.append(format!("b-{i}").as_bytes(), b"vb", 0).unwrap();
        }
        a.finish().unwrap();
        b.finish().unwrap();
        let records = read_all(&p.0).unwrap();
        assert_eq!(records.len(), 50, "the survivor must be one writer's complete stream");
        assert!(records.iter().all(|(k, _, _)| k.starts_with(b"b-")), "last rename wins");
        assert!(!tmp_debris(&p.0));
    }
}
