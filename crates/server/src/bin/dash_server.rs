//! The `dash-server` binary: a sharded, persistent RESP2 KV server over
//! Dash tables on file-backed pools, with async replication.
//!
//! ```sh
//! dash-server --addr 127.0.0.1:6379 --dir /var/lib/dash --shards 4 --pool-mb 64
//! dash-server --addr 127.0.0.1:6380 --dir /var/lib/dash-replica \
//!             --replica-of 127.0.0.1:6379
//! ```
//!
//! Reopening an existing `--dir` reattaches to the shard pool files
//! found there (their count wins over `--shards`) and reports each
//! shard's recovery outcome. A client-issued `SHUTDOWN` closes the
//! pools cleanly; killing the process does not, and the next start
//! recovers with a version bump — by design, no acknowledged write is
//! lost either way.
//!
//! A `--replica-of` server bootstraps from the primary (snapshot +
//! tail over `PSYNC`), serves reads (writes get `-READONLY`), and
//! becomes a primary when a client sends `REPLICAOF NO ONE`.

use dash_common::cli;
use dash_server::{serve_with, EngineConfig, ServeOptions, ShardedDash};

const USAGE: &str = "\
dash-server — sharded persistent RESP2 KV server over Dash

USAGE:
    dash-server [OPTIONS]

OPTIONS:
    --addr HOST:PORT   listen address (default 127.0.0.1:6379)
    --dir PATH         directory for shard pool files; omit for a
                       volatile in-memory store
    --shards N         shard count for a fresh store (default 4;
                       an existing --dir keeps its own count)
    --pool-mb MB       pool size per shard in MiB (default 64)
    --restore PATH     bootstrap a FRESH store from a snapshot file
                       (written by the SNAPSHOT command) before serving;
                       refuses a --dir that already holds a store
    --replay-logs DIR  after opening (or restoring) the store, replay
                       the redo logs (repl-N.log) found in DIR on top —
                       incremental backup: old snapshot + log replay
                       reconstructs the final state
    --max-memory BYTES
                       memory budget over value-log bytes, enforced per
                       shard as BYTES/shards at the write path: pending
                       garbage is reclaimed, then keys are evicted under
                       --maxmemory-policy; a write that still cannot fit
                       is rejected with -OOM (default: unlimited)
    --maxmemory-policy NAME
                       noeviction (default: reject writes at the budget),
                       allkeys-lru (evict the least-recently-used of N
                       samples) or allkeys-lfu (least-frequently-used)
    --repl-log-max-bytes N
                       rotate a shard's redo log once its active file
                       crosses N bytes; a durable SNAPSHOT then deletes
                       the sealed segments it covers (default: never)
    --replica-of HOST:PORT
                       start as a read-only replica of the primary at
                       HOST:PORT (bootstraps via PSYNC snapshot+tail;
                       requires a fresh store; promote with
                       'REPLICAOF NO ONE')
    --cluster-announce HOST:PORT
                       enable cluster mode, announcing this address to
                       peers and clients (slot map + MOVED/ASK
                       redirects; 'auto' announces the bound address);
                       not combinable with --replica-of
    --event-workers N  event-loop worker threads (default: one per CPU)
    --metrics-addr HOST:PORT
                       also serve Prometheus text metrics over HTTP at
                       this address (GET /metrics); off when omitted
    --slowlog-threshold-us N
                       record commands slower than N microseconds in
                       SLOWLOG (default 10000; 0 logs everything)
    --log-file PATH    append structured JSON-lines logs to PATH instead
                       of stderr (one {\"ts_ms\",\"level\",\"target\",
                       \"msg\"} object per line)
    --log-level LEVEL  error, warn, info (default) or debug
    -h, --help         show this help";

fn main() {
    let args = cli::parse_or_exit(
        USAGE,
        &[
            "addr",
            "dir",
            "shards",
            "pool-mb",
            "max-memory",
            "maxmemory-policy",
            "repl-log-max-bytes",
            "restore",
            "replay-logs",
            "replica-of",
            "cluster-announce",
            "event-workers",
            "metrics-addr",
            "slowlog-threshold-us",
            "log-file",
            "log-level",
        ],
        &[],
        0,
    );
    let addr = args.flag_str("addr", "127.0.0.1:6379");
    let shards: usize = args.flag_or_exit("shards", 4, USAGE);
    let pool_mb: usize = args.flag_or_exit("pool-mb", 64, USAGE);
    let dir = args.flag_opt("dir").map(std::path::PathBuf::from);
    let max_memory: Option<u64> = match args.flag_opt("max-memory") {
        None => None,
        Some(s) => match s.parse::<u64>() {
            Ok(n) if n >= 1 => Some(n),
            _ => cli::exit_usage("--max-memory must be a positive byte count", USAGE),
        },
    };
    let eviction = match args.flag_opt("maxmemory-policy") {
        None => dash_server::EvictionPolicy::NoEviction,
        Some(s) => match dash_server::EvictionPolicy::parse(s) {
            Some(p) => p,
            None => cli::exit_usage(
                "--maxmemory-policy must be noeviction, allkeys-lru or allkeys-lfu",
                USAGE,
            ),
        },
    };
    let repl_log_max_bytes: Option<u64> = match args.flag_opt("repl-log-max-bytes") {
        None => None,
        Some(s) => match s.parse::<u64>() {
            Ok(n) if n >= 1 => Some(n),
            _ => cli::exit_usage("--repl-log-max-bytes must be a positive byte count", USAGE),
        },
    };
    let restore = args.flag_opt("restore").map(std::path::PathBuf::from);
    let replay_logs = args.flag_opt("replay-logs").map(std::path::PathBuf::from);
    let replica_of = args.flag_opt("replica-of").map(str::to_owned);
    let cluster_announce = args.flag_opt("cluster-announce").map(str::to_owned);
    if cluster_announce.is_some() && replica_of.is_some() {
        cli::exit_usage("--cluster-announce cannot be combined with --replica-of", USAGE);
    }
    let event_workers: Option<usize> = match args.flag_opt("event-workers") {
        None => None,
        Some(s) => match s.parse::<usize>() {
            Ok(n) if n >= 1 => Some(n),
            _ => cli::exit_usage("--event-workers must be a positive integer", USAGE),
        },
    };
    let metrics_addr = args.flag_opt("metrics-addr").map(str::to_owned);
    let slowlog_threshold_us: Option<u64> = match args.flag_opt("slowlog-threshold-us") {
        None => None,
        Some(s) => match s.parse::<u64>() {
            Ok(n) => Some(n),
            Err(_) => {
                cli::exit_usage("--slowlog-threshold-us must be a non-negative integer", USAGE)
            }
        },
    };

    if let Some(level) = args.flag_opt("log-level") {
        match dash_server::LogLevel::parse(level) {
            Some(l) => dash_server::trace::log::set_level(l),
            None => cli::exit_usage("--log-level must be error, warn, info or debug", USAGE),
        }
    }
    if let Some(path) = args.flag_opt("log-file") {
        if let Err(e) = dash_server::trace::log::set_file(std::path::Path::new(path)) {
            eprintln!("dash-server: cannot open log file {path}: {e}");
            std::process::exit(1);
        }
    }

    if replica_of.is_some() && (restore.is_some() || replay_logs.is_some()) {
        cli::exit_usage(
            "--replica-of bootstraps from the primary; it cannot be combined with --restore or --replay-logs",
            USAGE,
        );
    }
    if let (Some(dir), Some(_)) = (&dir, &replica_of) {
        // A replica's first full sync clears its store; refusing an
        // existing one protects against pointing --replica-of at a
        // directory that holds data someone still wants.
        if ShardedDash::store_exists(dir) {
            eprintln!(
                "dash-server: {} already holds a store; a replica bootstraps from \
                 its primary and needs a fresh --dir (delete the old store first)",
                dir.display()
            );
            std::process::exit(1);
        }
    }

    let cfg = EngineConfig {
        shards,
        shard_bytes: pool_mb << 20,
        dir,
        max_memory,
        eviction,
        repl_log_max_bytes,
    };
    let engine = match &restore {
        None => ShardedDash::open(&cfg),
        Some(snapshot) => ShardedDash::restore(&cfg, snapshot),
    };
    let engine = match engine {
        Ok(e) => e,
        Err(e) => {
            eprintln!("dash-server: cannot open store: {e}");
            std::process::exit(1);
        }
    };
    if let Some(snapshot) = &restore {
        println!("restored {} keys from snapshot {}", engine.len(), snapshot.display());
    }
    if let Some(log_dir) = &replay_logs {
        match engine.replay_log_dir(log_dir) {
            Ok(n) => println!(
                "replayed {n} ops from redo logs in {} ({} keys now)",
                log_dir.display(),
                engine.len()
            ),
            Err(e) => {
                eprintln!("dash-server: cannot replay logs from {}: {e}", log_dir.display());
                std::process::exit(1);
            }
        }
    }
    for (i, info) in engine.shard_infos().iter().enumerate() {
        if info.recovered {
            println!(
                "shard {i}: recovered ({}, version {})",
                if info.clean { "clean shutdown" } else { "CRASH detected" },
                info.version
            );
        } else {
            println!("shard {i}: created fresh");
        }
    }
    if let Some(budget) = max_memory {
        println!(
            "memory budget: {budget} bytes ({} per shard), policy {}",
            budget / engine.shard_count() as u64,
            eviction.name()
        );
    }
    // Serving thousands of connections from a fixed worker pool is fd-
    // bound, not thread-bound: raise the soft RLIMIT_NOFILE to the hard
    // limit so the EMFILE backoff path is for genuine exhaustion only.
    match dash_server::net::ensure_nofile_limit(u64::MAX) {
        Ok(limit) => println!("fd limit: {limit}"),
        Err(e) => eprintln!("dash-server: cannot raise fd limit: {e} (continuing)"),
    }
    let opts = ServeOptions {
        replica_of: replica_of.clone(),
        event_workers,
        metrics_addr,
        slowlog_threshold_us,
        cluster_announce: cluster_announce.clone(),
    };
    let server = match serve_with(engine, addr.as_str(), opts) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("dash-server: cannot listen on {addr}: {e}");
            std::process::exit(1);
        }
    };
    match (&replica_of, &cluster_announce) {
        (Some(master), _) => println!(
            "dash-server listening on {} as a replica of {master} (promote with REPLICAOF NO ONE)",
            server.addr()
        ),
        (None, Some(_)) => println!(
            "dash-server listening on {} in cluster mode (assign slots with CLUSTER ASSIGN)",
            server.addr()
        ),
        (None, None) => println!("dash-server listening on {}", server.addr()),
    }
    if let Some(addr) = server.metrics_addr() {
        println!("metrics (Prometheus text) on http://{addr}/metrics");
    }
    server.join();
    println!("dash-server: shut down cleanly");
}
