//! The `dash-server` binary: a sharded, persistent RESP2 KV server over
//! Dash tables on file-backed pools.
//!
//! ```sh
//! dash-server --addr 127.0.0.1:6379 --dir /var/lib/dash --shards 4 --pool-mb 64
//! ```
//!
//! Reopening an existing `--dir` reattaches to the shard pool files
//! found there (their count wins over `--shards`) and reports each
//! shard's recovery outcome. A client-issued `SHUTDOWN` closes the
//! pools cleanly; killing the process does not, and the next start
//! recovers with a version bump — by design, no acknowledged write is
//! lost either way.

use dash_common::cli;
use dash_server::{serve, EngineConfig, ShardedDash};

const USAGE: &str = "\
dash-server — sharded persistent RESP2 KV server over Dash

USAGE:
    dash-server [OPTIONS]

OPTIONS:
    --addr HOST:PORT   listen address (default 127.0.0.1:6379)
    --dir PATH         directory for shard pool files; omit for a
                       volatile in-memory store
    --shards N         shard count for a fresh store (default 4;
                       an existing --dir keeps its own count)
    --pool-mb MB       pool size per shard in MiB (default 64)
    --restore PATH     bootstrap a FRESH store from a snapshot file
                       (written by the SNAPSHOT command) before serving;
                       refuses a --dir that already holds a store
    -h, --help         show this help";

fn main() {
    let args = cli::parse_or_exit(USAGE, &["addr", "dir", "shards", "pool-mb", "restore"], &[], 0);
    let addr = args.flag_str("addr", "127.0.0.1:6379");
    let shards: usize = args.flag_or_exit("shards", 4, USAGE);
    let pool_mb: usize = args.flag_or_exit("pool-mb", 64, USAGE);
    let dir = args.flag_opt("dir").map(std::path::PathBuf::from);
    let restore = args.flag_opt("restore").map(std::path::PathBuf::from);

    let cfg = EngineConfig { shards, shard_bytes: pool_mb << 20, dir };
    let engine = match &restore {
        None => ShardedDash::open(&cfg),
        Some(snapshot) => ShardedDash::restore(&cfg, snapshot),
    };
    let engine = match engine {
        Ok(e) => e,
        Err(e) => {
            eprintln!("dash-server: cannot open store: {e}");
            std::process::exit(1);
        }
    };
    if let Some(snapshot) = &restore {
        println!("restored {} keys from snapshot {}", engine.len(), snapshot.display());
    }
    for (i, info) in engine.shard_infos().iter().enumerate() {
        if info.recovered {
            println!(
                "shard {i}: recovered ({}, version {})",
                if info.clean { "clean shutdown" } else { "CRASH detected" },
                info.version
            );
        } else {
            println!("shard {i}: created fresh");
        }
    }
    let server = match serve(engine, addr.as_str()) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("dash-server: cannot listen on {addr}: {e}");
            std::process::exit(1);
        }
    };
    println!("dash-server listening on {}", server.addr());
    server.join();
    println!("dash-server: shut down cleanly");
}
