//! Figure 12: table-wide load factor as records are inserted, for
//! Dash-EH with 2 and 4 stash buckets, Dash-LH (2 stash), CCEH and Level
//! Hashing.
//!
//! Expected shape (paper, §6.6): CCEH oscillates between ~35 % and ~43 %
//! (premature splits); Dash-EH(2)/Dash-LH(2) reach ~80 % peaks,
//! Dash-EH(4) ~90 %, matching Level Hashing; the sawtooth dips are
//! segment splits / full-table rehashes.

use std::sync::Arc;

use dash_bench::{print_table, Scale};
use dash_common::{uniform_keys, PmHashTable};
use pmem::{CostModel, PmemPool, PoolConfig};

fn series(table: Arc<dyn PmHashTable<u64>>, keys: &[u64], samples: usize) -> Vec<String> {
    let stride = keys.len() / samples;
    let mut out = Vec::new();
    for (i, k) in keys.iter().enumerate() {
        table.insert(k, i as u64).expect("insert");
        if (i + 1) % stride == 0 {
            out.push(format!("{:.3}", table.load_factor()));
        }
    }
    out
}

fn main() {
    let scale = Scale::from_env();
    // Load-factor scans are O(table), so sample sparsely; no cost model
    // needed (this is a space experiment, not a timing one).
    let n = scale.preload.max(60_000);
    let keys = uniform_keys(n, 0x10AD);
    let samples = 12;
    println!("# Fig. 12 — load factor vs records inserted (n={n})");

    let columns: Vec<String> =
        (1..=samples).map(|s| format!("{}k", s * n / samples / 1000)).collect();
    let mk_pool = || {
        PmemPool::create(PoolConfig {
            size: Scale::pool_bytes(n),
            cost: CostModel::none(),
            ..Default::default()
        })
        .unwrap()
    };

    let mut rows: Vec<(String, Vec<String>)> = Vec::new();
    for stash in [2u32, 4] {
        let cfg = dash_core::DashConfig { stash_buckets: stash, ..Default::default() };
        let t: Arc<dyn PmHashTable<u64>> =
            Arc::new(dash_core::DashEh::<u64>::create(mk_pool(), cfg).unwrap());
        rows.push((format!("Dash-EH ({stash})"), series(t, &keys, samples)));
    }
    {
        let cfg = dash_core::DashConfig::default();
        let t: Arc<dyn PmHashTable<u64>> =
            Arc::new(dash_core::DashLh::<u64>::create(mk_pool(), cfg).unwrap());
        rows.push(("Dash-LH (2)".to_string(), series(t, &keys, samples)));
    }
    {
        let t: Arc<dyn PmHashTable<u64>> =
            Arc::new(cceh::Cceh::<u64>::create(mk_pool(), cceh::CcehConfig::default()).unwrap());
        rows.push(("CCEH".to_string(), series(t, &keys, samples)));
    }
    {
        let t: Arc<dyn PmHashTable<u64>> = Arc::new(
            levelhash::LevelHash::<u64>::create(mk_pool(), levelhash::LevelConfig::default())
                .unwrap(),
        );
        rows.push(("Level Hashing".to_string(), series(t, &keys, samples)));
    }
    print_table("load factor after n records", &columns, &rows);
}
