//! Table 1: recovery time (ms) vs number of indexed records.
//!
//! Expected shape (paper, §6.8): Dash-EH / Dash-LH / Level Hashing stay
//! constant regardless of data size (constant work on restart); CCEH's
//! recovery scans the whole directory, so its time grows linearly with
//! the number of segments.
//!
//! The pool is **file-backed** for this experiment: reopening is an mmap
//! (lazy, O(1)), exactly like the paper's PM pool reopen — so the timed
//! window contains only genuine recovery work (pool header recovery,
//! table open incl. any directory scan, and the first serviced request),
//! not an emulation-artifact image copy.

use std::time::Instant;

use dash_bench::{print_table, Scale};
use dash_common::uniform_keys;
use pmem::{PmemPool, PoolConfig};

fn pool_file(which: &str, n: usize) -> std::path::PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("dash-table1-{which}-{n}-{}.pool", std::process::id()));
    p
}

/// Load `n` records into a fresh file-backed table, tear down without a
/// clean shutdown (crash), and time until the reopened table answers its
/// first search.
fn recovery_ms(which: &str, n: usize, cost: pmem::CostModel) -> f64 {
    let path = pool_file(which, n);
    let pcfg = PoolConfig {
        size: Scale::pool_bytes(n),
        shadow: false, // timing run; shadow copying would skew it
        cost,
        ..Default::default()
    };
    let keys = uniform_keys(n, 0xFACE);
    let probe = keys[0];

    {
        let pool = PmemPool::create_file(&path, pcfg).unwrap();
        match which {
            "Dash-EH" => {
                let t =
                    dash_core::DashEh::<u64>::create(pool.clone(), dash_core::DashConfig::default())
                        .unwrap();
                for (i, k) in keys.iter().enumerate() {
                    t.insert(k, i as u64).unwrap();
                }
            }
            "Dash-LH" => {
                let t =
                    dash_core::DashLh::<u64>::create(pool.clone(), dash_core::DashConfig::default())
                        .unwrap();
                for (i, k) in keys.iter().enumerate() {
                    t.insert(k, i as u64).unwrap();
                }
            }
            "CCEH" => {
                let t =
                    cceh::Cceh::<u64>::create(pool.clone(), cceh::CcehConfig::default()).unwrap();
                for (i, k) in keys.iter().enumerate() {
                    t.insert(k, i as u64).unwrap();
                }
            }
            "Level" => {
                let t = levelhash::LevelHash::<u64>::create(
                    pool.clone(),
                    levelhash::LevelConfig::default(),
                )
                .unwrap();
                for (i, k) in keys.iter().enumerate() {
                    t.insert(k, i as u64).unwrap();
                }
            }
            _ => unreachable!(),
        }
        // Drop without close(): an unclean teardown, like the paper's
        // process kill. The mapping writes back on unmap.
    }

    // Time: reopen pool (mmap + constant-work recovery) + open table
    // (CCEH: directory scan) + first operation serviced.
    let t0 = Instant::now();
    let pool2 = PmemPool::open_file(&path, pcfg).unwrap();
    let first = match which {
        "Dash-EH" => dash_core::DashEh::<u64>::open(pool2).unwrap().get(&probe),
        "Dash-LH" => dash_core::DashLh::<u64>::open(pool2).unwrap().get(&probe),
        "CCEH" => cceh::Cceh::<u64>::open(pool2).unwrap().get(&probe),
        "Level" => levelhash::LevelHash::<u64>::open(pool2).unwrap().get(&probe),
        _ => unreachable!(),
    };
    let ms = t0.elapsed().as_secs_f64() * 1e3;
    assert_eq!(first, Some(0), "{which}: first record must be readable after recovery");
    let _ = std::fs::remove_file(&path);
    ms
}

fn main() {
    let scale = Scale::from_env();
    // Paper sweeps 40M..1280M records; we sweep a scaled-down range with
    // the same 2× progression (override base with DASH_BENCH_PRELOAD).
    let base = scale.preload.max(20_000);
    let sizes: Vec<usize> = (0..5).map(|i| base << i).collect();
    println!("# Table 1 — recovery time (ms) vs indexed records");
    println!("cost model: {:?} (file-backed pools, mmap reopen)", scale.cost);

    let columns: Vec<String> = sizes.iter().map(|n| format!("{}k", n / 1000)).collect();
    let mut rows = Vec::new();
    for which in ["Dash-EH", "Dash-LH", "CCEH", "Level"] {
        let cells: Vec<String> = sizes
            .iter()
            .map(|&n| format!("{:.2}", recovery_ms(which, n, scale.cost)))
            .collect();
        rows.push((which.to_string(), cells));
    }
    print_table("time until first request serviced (ms)", &columns, &rows);
}
