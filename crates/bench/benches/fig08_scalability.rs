//! Figure 8: scalability of all four tables under (a) 100 % insert,
//! (b) 100 % positive search, (c) 100 % negative search, (d) 100 % delete
//! and (e) the 20/80 mixed workload, across thread counts.
//!
//! Expected shape (paper, §6.4): Dash-EH/LH scale near-linearly on
//! searches and lead everywhere; CCEH's searches flatten (read-lock PM
//! writes), Level collapses on inserts (blocking full-table rehash);
//! Dash leads inserts by limited-but-clear margins (inserts inherently
//! write PM and meet the bandwidth wall).

use dash_bench::{print_table, run_cell, Scale, TableKind, Workload};

fn main() {
    let scale = Scale::from_env();
    println!("# Fig. 8 — throughput scalability (Mops/s)");
    println!(
        "preload={}, ops={}, threads={:?}, cost model: {:?}",
        scale.preload, scale.ops, scale.threads, scale.cost
    );

    let columns: Vec<String> = scale.threads.iter().map(|t| format!("{t} thr")).collect();
    for (panel, workload) in Workload::ALL.iter().enumerate() {
        let mut rows = Vec::new();
        for kind in TableKind::ALL {
            let mut cells = Vec::new();
            for &threads in &scale.threads {
                let c = run_cell(kind, *workload, scale.preload, scale.ops, threads, scale.cost);
                cells.push(format!("{:.3}", c.mops));
            }
            rows.push((kind.name().to_string(), cells));
        }
        let panel_letter = (b'a' + panel as u8) as char;
        print_table(&format!("({panel_letter}) 100% {}", workload.name()), &columns, &rows);
    }
}
