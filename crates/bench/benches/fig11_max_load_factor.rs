//! Figure 11: maximum load factor of a single segment as techniques are
//! stacked (bucketized → +probing → +balanced insert → +displacement →
//! +2/+4 stash buckets) across segment sizes from 1 KB to 128 KB.
//!
//! Expected shape (paper, §6.6): bucketized decays from ~80 % (1 KB) to
//! ~40 % (128 KB); each technique lifts the curve; with stashing the
//! small/medium segments approach 100 %.

use dash_bench::print_table;
use dash_core::experiments::max_segment_fill;
use dash_core::{DashConfig, InsertPolicy};

fn main() {
    println!("# Fig. 11 — max single-segment load factor vs segment size");
    // bucket_bits 2..=9 → 4..512 buckets → 1 KB..128 KB of buckets.
    let sizes: Vec<u32> = (2..=9).collect();
    let columns: Vec<String> = sizes
        .iter()
        .map(|b| {
            let kb = (1usize << b) * 256 / 1024;
            format!("{kb} KB")
        })
        .collect();

    let ladder: [(&str, InsertPolicy, u32); 6] = [
        ("bucketized", InsertPolicy::Bucketized, 0),
        ("+ probing", InsertPolicy::Probing, 0),
        ("+ balanced insert", InsertPolicy::Balanced, 0),
        ("+ displacement", InsertPolicy::Displacement, 0),
        ("+ 2 stash buckets", InsertPolicy::Stash, 2),
        ("+ 4 stash buckets", InsertPolicy::Stash, 4),
    ];

    let mut rows = Vec::new();
    for (name, policy, stash) in ladder {
        let cells: Vec<String> = sizes
            .iter()
            .map(|&bits| {
                let cfg = DashConfig {
                    bucket_bits: bits,
                    insert_policy: policy,
                    stash_buckets: stash,
                    ..Default::default()
                };
                let fill = max_segment_fill(&cfg).expect("fill");
                format!("{:.3}", fill.load_factor())
            })
            .collect();
        rows.push((name.to_string(), cells));
    }
    print_table("maximum load factor", &columns, &rows);
}
