//! Figure 10: the overflow-metadata ablation — Dash-EH with and without
//! the overflow fingerprints/counters, with two and four stash buckets
//! per segment, at the maximum thread count.
//!
//! Expected shape (paper, §6.5): without the metadata every probe must
//! scan the stash buckets, hurting negative search most and getting worse
//! as stash buckets are added; with metadata performance stays flat.

use std::sync::Arc;

use dash_bench::{print_table, timed_threads, Scale, Workload};
use dash_common::{negative_keys, uniform_keys};
use dash_core::{DashConfig, DashEh};
use pmem::{PmemPool, PoolConfig};

fn run(metadata: bool, stash: u32, workload: Workload, scale: &Scale, threads: usize) -> f64 {
    let cfg =
        DashConfig { overflow_metadata: metadata, stash_buckets: stash, ..Default::default() };
    let pcfg = PoolConfig {
        size: Scale::pool_bytes(scale.preload + 2 * scale.ops),
        cost: scale.cost,
        ..Default::default()
    };
    let pool = PmemPool::create(pcfg).unwrap();
    let table = Arc::new(DashEh::<u64>::create(pool, cfg).unwrap());
    let pre = Arc::new(uniform_keys(scale.preload, 0xA11CE));
    for (i, k) in pre.iter().enumerate() {
        table.insert(k, i as u64).unwrap();
    }
    let fresh = Arc::new(uniform_keys(scale.ops, 0xF00D));
    let neg = Arc::new(negative_keys(scale.ops, 0xA11CE));
    let del = Arc::new(negative_keys(scale.ops, 0xDE1E7E));
    if workload == Workload::Delete {
        for (i, k) in del.iter().enumerate() {
            table.insert(k, i as u64).unwrap();
        }
    }
    let total = scale.ops;
    let per = total / threads;
    let dur = timed_threads(threads, |tid| {
        let lo = tid * per;
        let hi = if tid == threads - 1 { total } else { lo + per };
        match workload {
            Workload::Insert => {
                for i in lo..hi {
                    table.insert(&fresh[i], i as u64).unwrap();
                }
            }
            Workload::PositiveSearch => {
                for i in lo..hi {
                    assert!(table.get(&pre[i % pre.len()]).is_some());
                }
            }
            Workload::NegativeSearch => {
                for i in lo..hi {
                    assert!(table.get(&neg[i]).is_none());
                }
            }
            Workload::Delete => {
                for i in lo..hi {
                    assert!(table.remove(&del[i]));
                }
            }
            Workload::Mixed => unreachable!(),
        }
    });
    total as f64 / dur.as_secs_f64() / 1e6
}

fn main() {
    let scale = Scale::from_env();
    let threads = *scale.threads.iter().max().unwrap();
    let workloads =
        [Workload::Insert, Workload::PositiveSearch, Workload::NegativeSearch, Workload::Delete];
    println!("# Fig. 10 — effect of overflow metadata on Dash-EH ({threads} threads, Mops/s)");
    let columns: Vec<String> = workloads.iter().map(|w| w.name().to_string()).collect();

    for stash in [2u32, 4] {
        let mut rows = Vec::new();
        for (name, metadata) in [("without metadata", false), ("with metadata", true)] {
            let cells: Vec<String> = workloads
                .iter()
                .map(|&w| format!("{:.3}", run(metadata, stash, w, &scale, threads)))
                .collect();
            rows.push((name.to_string(), cells));
        }
        print_table(&format!("{stash} stash buckets per segment"), &columns, &rows);
    }
}
