//! Figure 9: the fingerprinting ablation — Dash-EH with and without
//! fingerprints, all four operations, fixed- and variable-length keys, at
//! the maximum thread count.
//!
//! Expected shape (paper, §6.5): fingerprints help most on negative
//! search (1.72× fixed keys), and far more with variable-length keys
//! (up to 7× on negative search) because they avoid dereferencing key
//! pointers entirely.

use std::sync::Arc;

use dash_bench::{print_table, timed_threads, var_keys, Scale, VarKey, Workload};
use dash_common::{negative_keys, uniform_keys};
use dash_core::{DashConfig, DashEh};
use pmem::{PmemPool, PoolConfig};

fn run_fixed(fps: bool, workload: Workload, scale: &Scale, threads: usize) -> f64 {
    let cfg = DashConfig { fingerprints: fps, ..Default::default() };
    let pcfg = PoolConfig {
        size: Scale::pool_bytes(scale.preload + 2 * scale.ops),
        cost: scale.cost,
        ..Default::default()
    };
    let pool = PmemPool::create(pcfg).unwrap();
    let table = Arc::new(DashEh::<u64>::create(pool, cfg).unwrap());
    let pre = Arc::new(uniform_keys(scale.preload, 0xA11CE));
    for (i, k) in pre.iter().enumerate() {
        table.insert(k, i as u64).unwrap();
    }
    let fresh = Arc::new(uniform_keys(scale.ops, 0xF00D));
    let neg = Arc::new(negative_keys(scale.ops, 0xA11CE));
    let del = Arc::new(negative_keys(scale.ops, 0xDE1E7E));
    if workload == Workload::Delete {
        for (i, k) in del.iter().enumerate() {
            table.insert(k, i as u64).unwrap();
        }
    }
    let total = scale.ops;
    let per = total / threads;
    let dur = timed_threads(threads, |tid| {
        let lo = tid * per;
        let hi = if tid == threads - 1 { total } else { lo + per };
        match workload {
            Workload::Insert => {
                for i in lo..hi {
                    table.insert(&fresh[i], i as u64).unwrap();
                }
            }
            Workload::PositiveSearch => {
                for i in lo..hi {
                    assert!(table.get(&pre[i % pre.len()]).is_some());
                }
            }
            Workload::NegativeSearch => {
                for i in lo..hi {
                    assert!(table.get(&neg[i]).is_none());
                }
            }
            Workload::Delete => {
                for i in lo..hi {
                    assert!(table.remove(&del[i]));
                }
            }
            Workload::Mixed => unreachable!(),
        }
    });
    total as f64 / dur.as_secs_f64() / 1e6
}

fn run_var(fps: bool, workload: Workload, scale: &Scale, threads: usize) -> f64 {
    let cfg = DashConfig { fingerprints: fps, ..Default::default() };
    let preload = scale.preload / 2;
    let ops = scale.ops / 2;
    let pcfg = PoolConfig {
        size: Scale::pool_bytes(preload + 2 * ops) * 2,
        cost: scale.cost,
        ..Default::default()
    };
    let pool = PmemPool::create(pcfg).unwrap();
    let table = Arc::new(DashEh::<VarKey>::create(pool, cfg).unwrap());
    let pre = Arc::new(var_keys(preload, 0xA11CE, 16));
    for (i, k) in pre.iter().enumerate() {
        table.insert(k, i as u64).unwrap();
    }
    let fresh = Arc::new(var_keys(ops, 0xF00D, 16));
    let neg = Arc::new(var_keys(ops, 0xBAD, 16));
    let del = Arc::new(var_keys(ops, 0xDE1, 16));
    if workload == Workload::Delete {
        for (i, k) in del.iter().enumerate() {
            table.insert(k, i as u64).unwrap();
        }
    }
    let per = ops / threads;
    let dur = timed_threads(threads, |tid| {
        let lo = tid * per;
        let hi = if tid == threads - 1 { ops } else { lo + per };
        match workload {
            Workload::Insert => {
                for i in lo..hi {
                    table.insert(&fresh[i], i as u64).unwrap();
                }
            }
            Workload::PositiveSearch => {
                for i in lo..hi {
                    assert!(table.get(&pre[i % pre.len()]).is_some());
                }
            }
            Workload::NegativeSearch => {
                for i in lo..hi {
                    assert!(table.get(&neg[i]).is_none());
                }
            }
            Workload::Delete => {
                for i in lo..hi {
                    assert!(table.remove(&del[i]));
                }
            }
            Workload::Mixed => unreachable!(),
        }
    });
    ops as f64 / dur.as_secs_f64() / 1e6
}

fn main() {
    let scale = Scale::from_env();
    let threads = *scale.threads.iter().max().unwrap();
    let workloads =
        [Workload::Insert, Workload::PositiveSearch, Workload::NegativeSearch, Workload::Delete];
    println!("# Fig. 9 — effect of fingerprinting on Dash-EH ({threads} threads, Mops/s)");
    let columns: Vec<String> = workloads.iter().map(|w| w.name().to_string()).collect();

    for (label, var) in [("fixed-length keys", false), ("variable-length keys", true)] {
        let mut rows = Vec::new();
        for (name, fps) in [("without fingerprints", false), ("with fingerprints", true)] {
            let cells: Vec<String> = workloads
                .iter()
                .map(|&w| {
                    let mops = if var {
                        run_var(fps, w, &scale, threads)
                    } else {
                        run_fixed(fps, w, &scale, threads)
                    };
                    format!("{mops:.3}")
                })
                .collect();
            rows.push((name.to_string(), cells));
        }
        print_table(label, &columns, &rows);
    }
}
