//! Figure 1: throughput of state-of-the-art PM hashing (CCEH and Level
//! Hashing) for insert (left) and search (right) as thread count grows —
//! the motivation plot showing neither scales on (emulated) Optane.
//!
//! Expected shape: insert throughput flattens early for both (Level worst,
//! throttled by full-table rehashes); even read-only search stops scaling
//! because lock acquisition writes PM under limited write bandwidth.

use dash_bench::{print_table, run_cell, Scale, TableKind, Workload};

fn main() {
    let scale = Scale::from_env();
    println!("# Fig. 1 — motivation: CCEH / Level Hashing do not scale on PM");
    println!(
        "preload={}, ops={}, cost model: {:?}",
        scale.preload, scale.ops, scale.cost
    );

    for workload in [Workload::Insert, Workload::PositiveSearch] {
        let columns: Vec<String> = scale.threads.iter().map(|t| format!("{t} thr")).collect();
        let mut rows = Vec::new();
        for kind in [TableKind::Cceh, TableKind::Level] {
            let mut cells = Vec::new();
            for &threads in &scale.threads {
                let c = run_cell(kind, workload, scale.preload, scale.ops, threads, scale.cost);
                cells.push(format!("{:.3}", c.mops));
            }
            rows.push((kind.name().to_string(), cells));
        }
        print_table(&format!("{} throughput (Mops/s)", workload.name()), &columns, &rows);
    }
}
