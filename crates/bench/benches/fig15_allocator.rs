//! Figure 15: impact of the PM allocator and OS support on Dash-EH and
//! Dash-LH insert scalability — PMDK-style allocation cost vs a
//! pre-faulting custom allocator, on a healthy kernel vs the 5.2.11
//! huge-page-fallback bug (simulated as a 25× allocation-latency hit on
//! every pool allocation).
//!
//! Expected shape (paper, §6.9): Dash-EH is barely sensitive (fixed 16 KB
//! allocations, one per split); Dash-LH on the buggy kernel with the
//! PMDK-style allocator collapses to a fraction of its healthy
//! throughput because threads contend on slow segment-array allocation
//! during expansion; the pre-faulting allocator is immune on both.

use std::sync::Arc;

use dash_bench::{build_dash_eh_with, build_dash_lh_with, print_table, timed_threads, Scale};
use dash_common::{uniform_keys, PmHashTable};
use pmem::{AllocMode, CostModel, PoolConfig};

fn run(lh: bool, alloc_mode: AllocMode, cost: CostModel, scale: &Scale, threads: usize) -> f64 {
    let pool_cfg = PoolConfig {
        size: Scale::pool_bytes(scale.preload + 2 * scale.ops),
        cost,
        alloc_mode,
        ..Default::default()
    };
    let dash_cfg = dash_core::DashConfig::default();
    let (table, _pool): (Arc<dyn PmHashTable<u64>>, _) = if lh {
        let (pool, t) = build_dash_lh_with(dash_cfg, pool_cfg);
        (t, pool)
    } else {
        let (pool, t) = build_dash_eh_with(dash_cfg, pool_cfg);
        (t, pool)
    };
    let pre = Arc::new(uniform_keys(scale.preload, 0xA11CE));
    for (i, k) in pre.iter().enumerate() {
        table.insert(k, i as u64).unwrap();
    }
    let fresh = Arc::new(uniform_keys(scale.ops, 0xF00D));
    let total = scale.ops;
    let per = total / threads;
    let dur = timed_threads(threads, |tid| {
        let lo = tid * per;
        let hi = if tid == threads - 1 { total } else { lo + per };
        for i in lo..hi {
            table.insert(&fresh[i], i as u64).unwrap();
        }
    });
    total as f64 / dur.as_secs_f64() / 1e6
}

fn main() {
    let scale = Scale::from_env();
    println!("# Fig. 15 — PM allocator / kernel impact on insert throughput (Mops/s)");
    let columns: Vec<String> = scale.threads.iter().map(|t| format!("{t} thr")).collect();

    let configs: [(&str, AllocMode, CostModel); 4] = [
        ("PMDK alloc (5.5.3)", AllocMode::Pmdk, CostModel::optane()),
        ("prefault (5.5.3)", AllocMode::Prefault, CostModel::optane()),
        ("PMDK alloc (5.2.11)", AllocMode::Pmdk, CostModel::optane_buggy_kernel()),
        ("prefault (5.2.11)", AllocMode::Prefault, CostModel::optane_buggy_kernel()),
    ];

    for (label, lh) in [("Dash-EH", false), ("Dash-LH", true)] {
        let mut rows = Vec::new();
        for (name, mode, cost) in configs {
            let cells: Vec<String> = scale
                .threads
                .iter()
                .map(|&t| format!("{:.3}", run(lh, mode, cost, &scale, t)))
                .collect();
            rows.push((name.to_string(), cells));
        }
        print_table(label, &columns, &rows);
    }
}
