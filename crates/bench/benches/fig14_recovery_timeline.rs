//! Figure 14: throughput over time immediately after instant recovery,
//! with one thread and with the maximum thread count.
//!
//! Expected shape (paper, §6.8): the table is online immediately but
//! early windows run slow while lazy recovery touches segments on first
//! access; throughput returns to normal sooner with more threads because
//! they recover different segments in parallel.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

use dash_bench::{timed_threads, Scale};
use dash_common::{uniform_keys, PmHashTable};
use pmem::{PmemPool, PoolConfig};

fn timeline(which: &str, threads: usize, scale: &Scale) {
    let n = scale.preload;
    let pcfg = PoolConfig { size: Scale::pool_bytes(2 * n), cost: scale.cost, ..Default::default() };
    let pool = PmemPool::create(pcfg).unwrap();
    let keys = Arc::new(uniform_keys(n, 0xCAFE));

    let img = match which {
        "Dash-EH" => {
            let t = dash_core::DashEh::<u64>::create(pool.clone(), dash_core::DashConfig::default())
                .unwrap();
            for (i, k) in keys.iter().enumerate() {
                t.insert(k, i as u64).unwrap();
            }
            // Kill the process mid-insert (further inserts in flight).
            for k in uniform_keys(n / 10, 0xDEAD) {
                let _ = t.insert(&k, 1);
            }
            pool.crash_image()
        }
        _ => {
            let t = dash_core::DashLh::<u64>::create(pool.clone(), dash_core::DashConfig::default())
                .unwrap();
            for (i, k) in keys.iter().enumerate() {
                t.insert(k, i as u64).unwrap();
            }
            for k in uniform_keys(n / 10, 0xDEAD) {
                let _ = t.insert(&k, 1);
            }
            pool.crash_image()
        }
    };

    let t0 = Instant::now();
    let pool2 = PmemPool::open(img, pcfg).unwrap();
    let table: Arc<dyn PmHashTable<u64>> = match which {
        "Dash-EH" => Arc::new(dash_core::DashEh::<u64>::open(pool2).unwrap()),
        _ => Arc::new(dash_core::DashLh::<u64>::open(pool2).unwrap()),
    };
    let online = t0.elapsed();
    println!("\n{which}, {threads} thread(s): online after {:.1} ms", online.as_secs_f64() * 1e3);

    // Post-restart positive searches; report 20 ms windows.
    let windows = Arc::new(std::sync::Mutex::new(Vec::<(f64, f64)>::new()));
    let cursor = Arc::new(AtomicUsize::new(0));
    let total_ops = n; // one pass over the data
    let run_start = Instant::now();
    timed_threads(threads, |_| {
        let mut window_ops = 0u64;
        let mut window_t0 = Instant::now();
        loop {
            let i = cursor.fetch_add(1, Ordering::Relaxed);
            if i >= total_ops {
                break;
            }
            assert!(table.get(&keys[i]).is_some());
            window_ops += 1;
            if window_t0.elapsed().as_millis() >= 20 {
                let t = run_start.elapsed().as_secs_f64();
                let mops = window_ops as f64 / window_t0.elapsed().as_secs_f64() / 1e6;
                windows.lock().unwrap().push((t, mops));
                window_t0 = Instant::now();
                window_ops = 0;
            }
        }
    });
    let mut w = windows.lock().unwrap().clone();
    w.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
    for (t, mops) in w.iter().take(12) {
        println!("  t={:>7.1} ms  {:>8.3} Mops/s", t * 1e3, mops);
    }
    if let (Some(first), Some(last)) = (w.first(), w.last()) {
        println!(
            "  first window {:.3} Mops/s -> steady {:.3} Mops/s (lazy recovery warming up)",
            first.1, last.1
        );
    }
}

fn main() {
    let scale = Scale::from_env();
    let max_threads = *scale.threads.iter().max().unwrap();
    println!("# Fig. 14 — throughput after instant recovery");
    for which in ["Dash-EH", "Dash-LH"] {
        timeline(which, 1, &scale);
        if max_threads > 1 {
            timeline(which, max_threads, &scale);
        }
    }
}
