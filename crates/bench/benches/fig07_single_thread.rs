//! Figure 7: single-thread performance of all four tables under the four
//! operations, for fixed-length keys (left) and variable-length keys
//! (right).
//!
//! Expected shape (paper, §6.3): Dash-EH/LH lead on every operation; the
//! gap is largest on negative search (fingerprints + overflow metadata
//! eliminate almost all record probing) and widens further with
//! variable-length keys (fingerprints avoid pointer dereferences).

use std::sync::Arc;

use dash_bench::{print_table, run_cell, var_keys, Scale, TableKind, VarKey, Workload};
use dash_common::PmHashTable;
use pmem::{PmemPool, PoolConfig};

fn build_var(kind: TableKind, records: usize, cost: pmem::CostModel) -> (Arc<PmemPool>, Arc<dyn PmHashTable<VarKey>>) {
    let cfg = PoolConfig { size: Scale::pool_bytes(records) * 2, cost, ..Default::default() };
    let pool = PmemPool::create(cfg).expect("pool");
    let table: Arc<dyn PmHashTable<VarKey>> = match kind {
        TableKind::DashEh => Arc::new(
            dash_core::DashEh::<VarKey>::create(pool.clone(), dash_core::DashConfig::default())
                .unwrap(),
        ),
        TableKind::DashLh => Arc::new(
            dash_core::DashLh::<VarKey>::create(pool.clone(), dash_core::DashConfig::default())
                .unwrap(),
        ),
        TableKind::Cceh => {
            Arc::new(cceh::Cceh::<VarKey>::create(pool.clone(), cceh::CcehConfig::default()).unwrap())
        }
        TableKind::Level => Arc::new(
            levelhash::LevelHash::<VarKey>::create(pool.clone(), levelhash::LevelConfig::default())
                .unwrap(),
        ),
    };
    (pool, table)
}

/// Single-thread var-key cell: the paper's 16-byte pointer-mode keys.
fn run_var_cell(kind: TableKind, workload: Workload, preload_n: usize, ops: usize, cost: pmem::CostModel) -> f64 {
    let (_pool, table) = build_var(kind, preload_n + 2 * ops, cost);
    let pre = var_keys(preload_n, 0xA11CE, 16);
    for (i, k) in pre.iter().enumerate() {
        table.insert(k, i as u64).unwrap();
    }
    let fresh = var_keys(ops, 0xF00D, 16);
    let neg: Vec<VarKey> = var_keys(ops, 0xBAD, 16);
    let del = var_keys(ops, 0xDE1, 16);
    if workload == Workload::Delete {
        for (i, k) in del.iter().enumerate() {
            table.insert(k, i as u64).unwrap();
        }
    }
    let t0 = std::time::Instant::now();
    match workload {
        Workload::Insert => {
            for (i, k) in fresh.iter().enumerate() {
                table.insert(k, i as u64).unwrap();
            }
        }
        Workload::PositiveSearch => {
            for i in 0..ops {
                assert!(table.get(&pre[i % pre.len()]).is_some());
            }
        }
        Workload::NegativeSearch => {
            for k in &neg {
                assert!(table.get(k).is_none());
            }
        }
        Workload::Delete => {
            for k in &del {
                assert!(table.remove(k));
            }
        }
        Workload::Mixed => unreachable!("not part of fig. 7"),
    }
    ops as f64 / t0.elapsed().as_secs_f64() / 1e6
}

fn main() {
    let scale = Scale::from_env();
    let ops = scale.ops / 2; // single-threaded; keep the run snappy
    let workloads =
        [Workload::Insert, Workload::PositiveSearch, Workload::NegativeSearch, Workload::Delete];
    println!("# Fig. 7 — single-thread performance (Mops/s)");
    println!("preload={}, ops={ops}, cost model: {:?}", scale.preload, scale.cost);

    let columns: Vec<String> = workloads.iter().map(|w| w.name().to_string()).collect();

    let mut rows = Vec::new();
    for kind in TableKind::ALL {
        let cells: Vec<String> = workloads
            .iter()
            .map(|&w| format!("{:.3}", run_cell(kind, w, scale.preload, ops, 1, scale.cost).mops))
            .collect();
        rows.push((kind.name().to_string(), cells));
    }
    print_table("fixed-length keys (8 B)", &columns, &rows);

    let mut rows = Vec::new();
    for kind in TableKind::ALL {
        let cells: Vec<String> = workloads
            .iter()
            .map(|&w| format!("{:.3}", run_var_cell(kind, w, scale.preload / 2, ops / 2, scale.cost)))
            .collect();
        rows.push((kind.name().to_string(), cells));
    }
    print_table("variable-length keys (16 B, pointer mode)", &columns, &rows);
}
