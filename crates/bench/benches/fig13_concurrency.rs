//! Figure 13: concurrency-control strategies — Dash-EH with optimistic
//! locking vs pessimistic reader-writer spinlocks, positive and negative
//! search, across thread counts.
//!
//! Expected shape (paper, §6.7): optimistic search scales near-linearly;
//! the spinlock version flattens because every read lock acquisition and
//! release writes PM and burns the limited write bandwidth.

use std::sync::Arc;

use dash_bench::{print_table, timed_threads, Scale};
use dash_common::{negative_keys, uniform_keys};
use dash_core::{DashConfig, DashEh, LockMode};
use pmem::{PmemPool, PoolConfig};

fn run(mode: LockMode, positive: bool, scale: &Scale, threads: usize) -> f64 {
    let cfg = DashConfig { lock_mode: mode, ..Default::default() };
    let pcfg = PoolConfig {
        size: Scale::pool_bytes(scale.preload),
        cost: scale.cost,
        ..Default::default()
    };
    let pool = PmemPool::create(pcfg).unwrap();
    let table = Arc::new(DashEh::<u64>::create(pool, cfg).unwrap());
    let pre = Arc::new(uniform_keys(scale.preload, 0xA11CE));
    for (i, k) in pre.iter().enumerate() {
        table.insert(k, i as u64).unwrap();
    }
    let neg = Arc::new(negative_keys(scale.ops, 0xA11CE));
    let total = scale.ops;
    let per = total / threads;
    let dur = timed_threads(threads, |tid| {
        let lo = tid * per;
        let hi = if tid == threads - 1 { total } else { lo + per };
        if positive {
            for i in lo..hi {
                assert!(table.get(&pre[i % pre.len()]).is_some());
            }
        } else {
            for i in lo..hi {
                assert!(table.get(&neg[i]).is_none());
            }
        }
    });
    total as f64 / dur.as_secs_f64() / 1e6
}

fn main() {
    let scale = Scale::from_env();
    println!("# Fig. 13 — optimistic locking vs reader-writer spinlocks (Mops/s)");
    println!("preload={}, ops={}, cost model: {:?}", scale.preload, scale.ops, scale.cost);
    let columns: Vec<String> = scale.threads.iter().map(|t| format!("{t} thr")).collect();

    let mut rows = Vec::new();
    for (name, mode, positive) in [
        ("optimistic (pos)", LockMode::Optimistic, true),
        ("optimistic (neg)", LockMode::Optimistic, false),
        ("spinlock (pos)", LockMode::Pessimistic, true),
        ("spinlock (neg)", LockMode::Pessimistic, false),
    ] {
        let cells: Vec<String> = scale
            .threads
            .iter()
            .map(|&t| format!("{:.3}", run(mode, positive, &scale, t)))
            .collect();
        rows.push((name.to_string(), cells));
    }
    print_table("search throughput", &columns, &rows);
}
