//! Appendix (not a numbered figure): skewed-workload behaviour. The
//! paper ran Zipfian-skewed workloads (§6.2) and reported, without a
//! figure, that all operations *improved* under skew thanks to higher
//! cache-hit ratios on hot keys, with rare contention because hash values
//! remain near-uniform. This harness regenerates that observation.

use std::sync::Arc;

use dash_bench::{build, preload, print_table, timed_threads, Scale, TableKind};
use dash_common::{uniform_keys, ZipfGenerator};

fn run(kind: TableKind, theta: Option<f64>, scale: &Scale, threads: usize) -> f64 {
    let inst = build(kind, scale.preload, scale.cost);
    let keys = Arc::new(uniform_keys(scale.preload, 0xA11CE));
    preload(inst.table.as_ref(), &keys);
    let total = scale.ops;
    // Pre-generate per-thread access sequences (uniform or Zipfian).
    let sequences: Vec<Vec<usize>> = (0..threads)
        .map(|tid| match theta {
            Some(theta) => {
                let mut z = ZipfGenerator::new(keys.len(), theta, 0x5EED ^ tid as u64);
                (0..total / threads).map(|_| z.next_index()).collect()
            }
            None => {
                let u = uniform_keys(total / threads, 0x5EED ^ tid as u64);
                u.into_iter().map(|k| (k as usize) % keys.len()).collect()
            }
        })
        .collect();
    let table = inst.table.clone();
    let dur = timed_threads(threads, |tid| {
        for &i in &sequences[tid] {
            assert!(table.get(&keys[i]).is_some());
        }
    });
    (threads * (total / threads)) as f64 / dur.as_secs_f64() / 1e6
}

fn main() {
    let scale = Scale::from_env();
    let threads = *scale.threads.iter().max().unwrap();
    println!("# Appendix — skewed (Zipfian) positive search, {threads} threads (Mops/s)");
    let distributions: [(&str, Option<f64>); 3] =
        [("uniform", None), ("zipf θ=0.9", Some(0.9)), ("zipf θ=0.99", Some(0.99))];
    let columns: Vec<String> = distributions.iter().map(|(n, _)| n.to_string()).collect();
    let mut rows = Vec::new();
    for kind in TableKind::ALL {
        let cells: Vec<String> = distributions
            .iter()
            .map(|&(_, theta)| format!("{:.3}", run(kind, theta, &scale, threads)))
            .collect();
        rows.push((kind.name().to_string(), cells));
    }
    print_table("positive search under skew", &columns, &rows);
    println!(
        "\nExpected: skew helps or is neutral for every table (hot keys stay\n\
         cache-resident; hash values remain near-uniform so lock contention\n\
         is rare) — the paper's §6.2 observation."
    );
}
