//! Criterion micro-benchmarks: single-operation latency for all four
//! tables (get hit/miss, insert, remove) without the Optane cost model —
//! raw algorithmic cost, useful for regression tracking.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};

use dash_bench::{build, preload, TableKind};
use dash_common::{negative_keys, uniform_keys};
use pmem::CostModel;

const PRELOAD: usize = 50_000;

fn bench_gets(c: &mut Criterion) {
    let keys = uniform_keys(PRELOAD, 1);
    let miss = negative_keys(PRELOAD, 1);
    let mut group = c.benchmark_group("get");
    for kind in TableKind::ALL {
        let inst = build(kind, PRELOAD * 2, CostModel::none());
        preload(inst.table.as_ref(), &keys);
        let mut i = 0usize;
        group.bench_function(format!("{}/hit", kind.name()), |b| {
            b.iter(|| {
                i = (i + 1) % keys.len();
                inst.table.get(&keys[i]).expect("hit")
            })
        });
        let mut j = 0usize;
        group.bench_function(format!("{}/miss", kind.name()), |b| {
            b.iter(|| {
                j = (j + 1) % miss.len();
                assert!(inst.table.get(&miss[j]).is_none());
            })
        });
    }
    group.finish();
}

fn bench_inserts(c: &mut Criterion) {
    let mut group = c.benchmark_group("insert");
    group.sample_size(20);
    for kind in TableKind::ALL {
        group.bench_function(kind.name(), |b| {
            b.iter_batched(
                || {
                    let inst = build(kind, PRELOAD * 4, CostModel::none());
                    (inst, uniform_keys(10_000, 7))
                },
                |(inst, keys)| {
                    for (i, k) in keys.iter().enumerate() {
                        inst.table.insert(k, i as u64).expect("insert");
                    }
                },
                BatchSize::PerIteration,
            )
        });
    }
    group.finish();
}

fn bench_removes(c: &mut Criterion) {
    let mut group = c.benchmark_group("remove");
    group.sample_size(20);
    for kind in TableKind::ALL {
        group.bench_function(kind.name(), |b| {
            b.iter_batched(
                || {
                    let inst = build(kind, PRELOAD * 2, CostModel::none());
                    let keys = uniform_keys(10_000, 9);
                    preload(inst.table.as_ref(), &keys);
                    (inst, keys)
                },
                |(inst, keys)| {
                    for k in &keys {
                        assert!(inst.table.remove(k));
                    }
                },
                BatchSize::PerIteration,
            )
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_gets, bench_inserts, bench_removes
}
criterion_main!(benches);
