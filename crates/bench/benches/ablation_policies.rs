//! Ablation: the throughput side of the §4.3 bucket-load-balancing ladder.
//!
//! Fig. 11/12 show what each technique (probing → balanced insert →
//! displacement → stashing) buys in *load factor*; this harness measures
//! what each rung costs or saves in *throughput* and PM traffic. The
//! paper's argument (§4.3) is twofold:
//!
//! * longer linear probing raises load factor but "may degrade performance
//!   by imposing more PM reads and cache misses" — balanced insert bounds
//!   the probe set to two buckets;
//! * fewer premature splits mean fewer SMOs and allocator interactions, so
//!   the higher rungs win on inserts *despite* doing more work per insert.
//!
//! Output: one row per `InsertPolicy`, with insert throughput (max
//! threads), the load factor reached after the measured insert run, splits
//! observed (segment count growth) and PM reads per insert.

use std::sync::Arc;

use dash_bench::{build_dash_eh, timed_threads, Scale};
use dash_common::{uniform_keys, PmHashTable};
use dash_core::{DashConfig, InsertPolicy};
use pmem::PmemPool;

fn policy_name(p: InsertPolicy) -> &'static str {
    match p {
        InsertPolicy::Bucketized => "bucketized",
        InsertPolicy::Probing => "+probing",
        InsertPolicy::Balanced => "+balanced",
        InsertPolicy::Displacement => "+displacement",
        InsertPolicy::Stash => "+stash (Dash)",
    }
}

fn run_policy(
    policy: InsertPolicy,
    scale: &Scale,
    threads: usize,
) -> (f64, f64, usize, f64, Arc<PmemPool>) {
    let cfg = DashConfig {
        insert_policy: policy,
        // The ladder below `Stash` must not use stash buckets.
        stash_buckets: if policy == InsertPolicy::Stash { 2 } else { 0 },
        ..Default::default()
    };
    let (pool, table) = build_dash_eh(cfg, scale.preload + 2 * scale.ops, scale.cost);
    let pre = uniform_keys(scale.preload, 0xA11CE);
    for (i, k) in pre.iter().enumerate() {
        table.insert(k, i as u64).unwrap();
    }
    let fresh = Arc::new(uniform_keys(scale.ops, 0xF00D));
    let total = scale.ops;
    let per = total / threads;
    let before = pool.stats();
    let t = table.clone();
    let dur = timed_threads(threads, |tid| {
        let lo = tid * per;
        let hi = if tid == threads - 1 { total } else { lo + per };
        for i in lo..hi {
            t.insert(&fresh[i], i as u64).unwrap();
        }
    });
    let d = pool.stats().since(&before);
    let mops = total as f64 / dur.as_secs_f64() / 1e6;
    let reads_per_op = d.pm_reads as f64 / total as f64;
    (mops, table.load_factor(), table.segment_count(), reads_per_op, pool)
}

fn main() {
    let scale = Scale::from_env();
    let threads = *scale.threads.iter().max().unwrap();
    println!(
        "# Ablation — §4.3 insert-policy ladder (Dash-EH, {} threads, preload {}, {} inserts)",
        threads, scale.preload, scale.ops
    );
    println!(
        "\n{:<16} {:>12} {:>12} {:>10} {:>12}",
        "policy", "insert Mops", "load factor", "segments", "reads/insert"
    );
    for policy in [
        InsertPolicy::Bucketized,
        InsertPolicy::Probing,
        InsertPolicy::Balanced,
        InsertPolicy::Displacement,
        InsertPolicy::Stash,
    ] {
        let (mops, lf, segs, rpo, _pool) = run_policy(policy, &scale, threads);
        println!(
            "{:<16} {:>12.3} {:>12.3} {:>10} {:>12.2}",
            policy_name(policy),
            mops,
            lf,
            segs,
            rpo
        );
    }
    println!(
        "\nExpected shape: load factor rises monotonically up the ladder; the\n\
         bucketized/probing rungs burn throughput on premature splits; full\n\
         Dash reaches the highest load factor with the fewest segments."
    );
}
