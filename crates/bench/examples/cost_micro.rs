//! Microbenchmark of the PM cost model's token-bucket mechanics.
use pmem::{CostModel, PmemPool, PoolConfig};
use std::sync::Arc;
use std::time::Instant;

fn run(name: &str, cost: CostModel) {
    for threads in [1usize, 24] {
        let pool = Arc::new(
            PmemPool::create(PoolConfig { size: 1 << 20, cost, ..Default::default() }).unwrap(),
        );
        let n_per = 200_000usize;
        let t0 = Instant::now();
        std::thread::scope(|s| {
            for _ in 0..threads {
                let pool = pool.clone();
                s.spawn(move || {
                    for _ in 0..n_per {
                        pool.note_pm_read(64);
                    }
                });
            }
        });
        let dt = t0.elapsed();
        let total = (threads * n_per) as f64;
        println!(
            "{name:<14} {threads:>2} thr: {:>7.2} M events/s ({:>6.0} ns/event/thread)",
            total / dt.as_secs_f64() / 1e6,
            dt.as_nanos() as f64 * threads as f64 / total
        );
    }
}

fn main() {
    run("latency-only", CostModel { read_latency_ns: 280, ..CostModel::none() });
    run("bw-only", CostModel { read_bw_bytes_per_us: 6000, ..CostModel::none() });
    run("optane", CostModel::optane());
    run("none", CostModel::none());
}
