//! `dash-loadgen` — multi-connection load generator for `dash-server`.
//!
//! Drives a running server with the same deterministic key machinery the
//! offline benches use (`dash_common::workload`): a fixed keyspace of
//! unique keys, a configurable GET/SET mix, uniform or Zipfian key
//! popularity, and pipelined connections. Every value is a pure function
//! of its key, so *any* GET that returns data can be verified exactly —
//! even under concurrent writers — and `--verify-all` can prove after a
//! server restart that no acknowledged write was lost.
//!
//! Exit status: 0 on success, 1 on any error / mismatch / zero
//! throughput, 2 on bad usage.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use dash_common::{cli, mix64, uniform_keys, ZipfGenerator};
use dash_server::{ClusterClient, RespClient, Value};

const USAGE: &str = "\
dash-loadgen — load generator and checker for dash-server

USAGE:
    dash-loadgen [OPTIONS]

OPTIONS:
    --addr HOST:PORT  server address (default 127.0.0.1:6379)
    --conns N         concurrent connections (default 4)
    --ops N           total timed operations across all connections
                      (default 100000)
    --read-pct P      percentage of GETs, 0-100 (default 90)
    --keys N          keyspace size (default 10000)
    --value-size B    value size in bytes (default 64)
    --pipeline D      commands per pipelined batch (default 16)
    --batch N         multi-key mode: issue MGET/MSET of N keys per
                      command. Runs TWO timed phases over --ops each —
                      N-deep pipelined singles, then N-key batches —
                      and reports both throughputs side by side
    --latency-sample N  after the timed run, measure N single-command
                      round trips at pipeline depth 1 and report
                      per-op latency percentiles (default 1000;
                      0 disables)
    --latency-rate R  coordinated-omission-safe latency mode: issue the
                      --latency-sample ops on a FIXED arrival schedule
                      of R ops/sec and measure each from its intended
                      start time, so a stalled server accrues queueing
                      delay instead of silently skipping arrivals
                      (0 = closed-loop sampling, the default)
    --assert-p99-us N fail the run (exit 1) if the sampled per-op p99
                      latency exceeds N microseconds — a regression
                      tripwire for CI and the soak tests (requires a
                      latency sample; 0 disables, the default)
    --ttl-spread LO:HI
                      attach a TTL to every SET: PX with a duration
                      drawn uniformly from [LO, HI] milliseconds.
                      Implies --cache (expired keys come back Nil)
    --cache           cache-mode accounting: a Nil GET is an expired or
                      evicted key (counted, not an error), an -OOM SET
                      reply is an OOM rejection (counted, not an
                      error), and --verify-all tolerates missing keys —
                      surviving keys must still be byte-exact. Use when
                      the server runs with --max-memory or the run sets
                      TTLs
    --zipf THETA      Zipfian skew in (0,1); omitted = uniform
    --seed S          keyspace seed (default 42)
    --preload         SET the whole keyspace before the timed run
    --verify-all      after the run, GET every key and require the
                      exact expected value (use after --preload, or
                      across a server restart)
    --verify-scan     after the run, enumerate the whole store with
                      cursor SCAN and require (a) every preloaded key
                      to appear, (b) the deduplicated key count to
                      match DBSIZE (use after --preload on an
                      otherwise-quiet server)
    --snapshot PATH   after the run, issue `SNAPSHOT PATH` (the server
                      writes an online checksummed backup to PATH on
                      its filesystem)
    --verify-snapshot PATH  read the snapshot file at PATH locally,
                      verify its checksum, and require every preloaded
                      key to be present with its exact expected value
    --wait-sync ADDR  after the timed run, poll until the replica at
                      ADDR reports the same repl_offset as the primary
                      at --addr (fails after 60s) — the catch-up gate
                      the failover drill needs before killing a primary
    --cluster         cluster mode: --addr is a comma-separated seed
                      list; every connection is a cluster client that
                      follows MOVED (updating its slot cache), retries
                      ASK with ASKING, and waits out TRYAGAIN. The run
                      reports redirect counts and the p99 inside the
                      migration window (first to last redirected op),
                      and fails on any detected redirect loop.
                      --preload/--verify-all route through redirects;
                      --verify-scan enumerates EVERY node and proves
                      each key is served exactly once
    --wait-migration ADDR
                      after the timed run, poll CLUSTER INFO on ADDR
                      until its outbound migration completes (fails on
                      a failed migration or after 120s)
    --trace-sample N  enable server-side request tracing (TRACE ON
                      SAMPLE N: every Nth request gets per-stage
                      latency attribution) for the run, then fetch
                      TRACE DUMP and print a stage-latency table;
                      --json gains a \"server_trace\" object. In
                      cluster mode the first seed is traced
    --cmd COMMAND     send one command (words split on whitespace) to
                      --addr before anything else and print the reply;
                      an error reply fails the run. Example:
                      --cmd 'REPLICAOF NO ONE' promotes a replica
    --json PATH       write a machine-readable run summary to PATH:
                      per-phase throughput and op/error counts, the
                      per-op latency percentiles (p50/p95/p99/p999,
                      CO-safe when --latency-rate is set), and the
                      overall pass/fail — what CI archives as an
                      artifact next to the human-readable log
    -h, --help        show this help";

#[derive(Clone)]
struct Config {
    addr: String,
    conns: usize,
    ops: usize,
    read_pct: u32,
    keys: usize,
    value_size: usize,
    pipeline: usize,
    batch: Option<usize>,
    latency_sample: usize,
    latency_rate: f64,
    assert_p99_us: u64,
    zipf: Option<f64>,
    ttl_spread: Option<(u64, u64)>,
    cache: bool,
    seed: u64,
    preload: bool,
    verify_all: bool,
    verify_scan: bool,
    snapshot: Option<String>,
    verify_snapshot: Option<String>,
    wait_sync: Option<String>,
    cluster: bool,
    wait_migration: Option<String>,
    trace_sample: u64,
    cmd: Option<String>,
    json: Option<String>,
}

fn parse_config() -> Config {
    let args = cli::parse_or_exit(
        USAGE,
        &[
            "addr",
            "conns",
            "ops",
            "read-pct",
            "keys",
            "value-size",
            "pipeline",
            "batch",
            "latency-sample",
            "latency-rate",
            "assert-p99-us",
            "zipf",
            "ttl-spread",
            "seed",
            "snapshot",
            "verify-snapshot",
            "wait-sync",
            "wait-migration",
            "trace-sample",
            "cmd",
            "json",
        ],
        &["preload", "verify-all", "verify-scan", "cluster", "cache"],
        0,
    );
    let cfg = Config {
        addr: args.flag_str("addr", "127.0.0.1:6379"),
        conns: args.flag_or_exit("conns", 4, USAGE),
        ops: args.flag_or_exit("ops", 100_000, USAGE),
        read_pct: args.flag_or_exit("read-pct", 90, USAGE),
        keys: args.flag_or_exit("keys", 10_000, USAGE),
        value_size: args.flag_or_exit("value-size", 64, USAGE),
        pipeline: args.flag_or_exit("pipeline", 16, USAGE),
        batch: match args.flag_opt("batch") {
            None => None,
            Some(v) => match v.parse::<usize>() {
                Ok(n) if n >= 1 => Some(n),
                _ => cli::exit_usage(&format!("invalid value {v:?} for --batch (need N >= 1)"), USAGE),
            },
        },
        latency_sample: args.flag_or_exit("latency-sample", 1_000, USAGE),
        latency_rate: match args.flag_opt("latency-rate") {
            None => 0.0,
            Some(v) => match v.parse::<f64>() {
                Ok(r) if r > 0.0 => r,
                _ => cli::exit_usage(
                    &format!("invalid value {v:?} for --latency-rate (need R > 0)"),
                    USAGE,
                ),
            },
        },
        assert_p99_us: args.flag_or_exit("assert-p99-us", 0, USAGE),
        zipf: match args.flag_opt("zipf") {
            None => None,
            Some(v) => match v.parse::<f64>() {
                Ok(t) if t > 0.0 && t < 1.0 => Some(t),
                _ => cli::exit_usage(
                    &format!("invalid value {v:?} for --zipf (need 0 < theta < 1)"),
                    USAGE,
                ),
            },
        },
        ttl_spread: match args.flag_opt("ttl-spread") {
            None => None,
            Some(v) => match v.split_once(':').and_then(|(lo, hi)| {
                let lo = lo.parse::<u64>().ok()?;
                let hi = hi.parse::<u64>().ok()?;
                (lo >= 1 && hi >= lo).then_some((lo, hi))
            }) {
                Some(range) => Some(range),
                None => cli::exit_usage(
                    &format!("invalid value {v:?} for --ttl-spread (need LO:HI ms, 1 <= LO <= HI)"),
                    USAGE,
                ),
            },
        },
        cache: args.switch("cache"),
        seed: args.flag_or_exit("seed", 42, USAGE),
        preload: args.switch("preload"),
        verify_all: args.switch("verify-all"),
        verify_scan: args.switch("verify-scan"),
        snapshot: args.flag_opt("snapshot").map(str::to_owned),
        verify_snapshot: args.flag_opt("verify-snapshot").map(str::to_owned),
        wait_sync: args.flag_opt("wait-sync").map(str::to_owned),
        cluster: args.switch("cluster"),
        wait_migration: args.flag_opt("wait-migration").map(str::to_owned),
        trace_sample: args.flag_or_exit("trace-sample", 0, USAGE),
        cmd: args.flag_opt("cmd").map(str::to_owned),
        json: args.flag_opt("json").map(str::to_owned),
    };
    if cfg.ttl_spread.is_some() && cfg.cluster {
        cli::exit_usage("--ttl-spread is single-node; not supported with --cluster", USAGE);
    }
    if cfg.conns == 0 || cfg.keys == 0 || cfg.pipeline == 0 {
        cli::exit_usage("--conns, --keys and --pipeline must be at least 1", USAGE);
    }
    if cfg.read_pct > 100 {
        cli::exit_usage("--read-pct must be 0-100", USAGE);
    }
    if cfg.cluster {
        if cfg.batch.is_some() {
            cli::exit_usage("--batch is multi-key (CROSSSLOT); not supported with --cluster", USAGE);
        }
        if cfg.wait_sync.is_some() || cfg.snapshot.is_some() || cfg.verify_snapshot.is_some() {
            cli::exit_usage(
                "--wait-sync/--snapshot/--verify-snapshot are single-node checks; not supported with --cluster",
                USAGE,
            );
        }
        if cfg.latency_rate > 0.0 {
            cli::exit_usage(
                "--latency-rate sampling is single-node; not supported with --cluster (per-op latencies come from the timed run)",
                USAGE,
            );
        }
    }
    cfg
}

fn key_bytes(stem: u64) -> Vec<u8> {
    format!("key:{stem:016x}").into_bytes()
}

/// The value every writer stores under `stem`: a pure function of the
/// key, so reads verify exactly regardless of which connection wrote.
fn value_bytes(stem: u64, size: usize) -> Vec<u8> {
    stem.to_le_bytes().iter().copied().cycle().take(size).collect()
}

impl Config {
    /// Cache-mode accounting: Nil GETs and -OOM SET replies are
    /// expected outcomes (expiry/eviction at work), not errors.
    fn cache_mode(&self) -> bool {
        self.cache || self.ttl_spread.is_some()
    }
}

#[derive(Default)]
struct Tally {
    gets: u64,
    sets: u64,
    hits: u64,
    errors: u64,
    /// Cache mode: GETs answered Nil because the key expired or was
    /// evicted (includes keys simply never written when !--preload).
    expired_or_evicted: u64,
    /// Cache mode: SETs rejected with -OOM (eviction couldn't keep up).
    oom_rejections: u64,
    /// Batch round-trip times, microseconds.
    batch_rtt_us: Vec<u64>,
}

/// Check one reply against what the op must produce; returns false on
/// any server error, protocol surprise, or value mismatch. When the
/// keyspace was preloaded every key is known present, so a Nil GET is a
/// lost acknowledged write — an error, not a miss. Cache mode relaxes
/// exactly two outcomes: a Nil GET is an expired/evicted key and an
/// `-OOM` SET reply is the budget holding the line — both counted, and
/// any value that IS returned must still be byte-exact.
fn check_reply(
    reply: &Value,
    expected: Option<&[u8]>,
    preloaded: bool,
    cache_mode: bool,
    tally: &mut Tally,
) -> bool {
    match (reply, expected) {
        (Value::Simple(s), None) => s == "OK",
        (Value::Error(e), None) if cache_mode && e.starts_with("OOM") => {
            tally.oom_rejections += 1;
            true
        }
        (Value::Nil, Some(_)) => {
            if cache_mode {
                tally.expired_or_evicted += 1;
                true
            } else {
                !preloaded
            }
        }
        (Value::Bulk(got), Some(want)) => {
            let matches = got.as_slice() == want;
            if matches {
                tally.hits += 1;
            }
            matches
        }
        _ => false,
    }
}

fn run_connection(cfg: &Config, stems: &[u64], conn_id: usize, my_ops: usize) -> std::io::Result<Tally> {
    let mut client = RespClient::connect(cfg.addr.as_str())?;
    let mut tally = Tally::default();
    let mut zipf = cfg
        .zipf
        .map(|theta| ZipfGenerator::new(stems.len(), theta, mix64(cfg.seed ^ conn_id as u64) | 1));
    let mut rng = mix64(cfg.seed ^ (conn_id as u64).wrapping_mul(0x9E37)) | 1;
    let mut done = 0usize;
    while done < my_ops {
        let batch = cfg.pipeline.min(my_ops - done);
        // (is_get, key stem) per op in the batch.
        let mut ops = Vec::with_capacity(batch);
        for _ in 0..batch {
            rng = mix64(rng);
            let idx = match &mut zipf {
                Some(z) => z.next_index(),
                None => ((rng >> 8) % stems.len() as u64) as usize,
            };
            let stem = stems[idx];
            let is_get = (rng % 100) < cfg.read_pct as u64;
            let key = key_bytes(stem);
            if is_get {
                client.enqueue(&[b"GET", &key]);
            } else {
                let value = value_bytes(stem, cfg.value_size);
                match cfg.ttl_spread {
                    None => client.enqueue(&[b"SET", &key, &value]),
                    Some((lo, hi)) => {
                        let px = lo + mix64(rng ^ 0x7711) % (hi - lo + 1);
                        client.enqueue(&[b"SET", &key, &value, b"PX", px.to_string().as_bytes()]);
                    }
                }
            }
            ops.push((is_get, stem));
        }
        let t0 = Instant::now();
        client.flush()?;
        for (is_get, stem) in &ops {
            let reply = client.read_reply()?;
            let expected = if *is_get { Some(value_bytes(*stem, cfg.value_size)) } else { None };
            if *is_get {
                tally.gets += 1;
            } else {
                tally.sets += 1;
            }
            if !check_reply(&reply, expected.as_deref(), cfg.preload, cfg.cache_mode(), &mut tally)
            {
                tally.errors += 1;
            }
        }
        tally.batch_rtt_us.push(t0.elapsed().as_micros() as u64);
        done += batch;
    }
    Ok(tally)
}

/// One connection's share of the **multi-key** phase: each command is an
/// MGET or MSET of `--batch` keys (kind chosen per command by the
/// read/write mix), and every element of the multi-key reply is verified
/// exactly — order, presence, and value.
fn run_connection_batched(
    cfg: &Config,
    stems: &[u64],
    conn_id: usize,
    my_ops: usize,
) -> std::io::Result<Tally> {
    let mut client = RespClient::connect(cfg.addr.as_str())?;
    let mut tally = Tally::default();
    let n = cfg.batch.expect("batched runner requires --batch");
    let mut zipf = cfg
        .zipf
        .map(|theta| ZipfGenerator::new(stems.len(), theta, mix64(cfg.seed ^ conn_id as u64) | 1));
    let mut rng = mix64(cfg.seed ^ (conn_id as u64).wrapping_mul(0x9E37)) | 1;
    let mut done = 0usize;
    while done < my_ops {
        let batch = n.min(my_ops - done);
        rng = mix64(rng);
        let is_get = (rng % 100) < cfg.read_pct as u64;
        let mut batch_stems = Vec::with_capacity(batch);
        for _ in 0..batch {
            rng = mix64(rng);
            let idx = match &mut zipf {
                Some(z) => z.next_index(),
                None => ((rng >> 8) % stems.len() as u64) as usize,
            };
            batch_stems.push(stems[idx]);
        }
        let keys: Vec<Vec<u8>> = batch_stems.iter().map(|s| key_bytes(*s)).collect();
        let t0 = Instant::now();
        if is_get {
            let refs: Vec<&[u8]> = keys.iter().map(|k| k.as_slice()).collect();
            let values = client.mget(&refs)?;
            tally.gets += batch as u64;
            for (stem, got) in batch_stems.iter().zip(values) {
                match got {
                    Some(v) if v == value_bytes(*stem, cfg.value_size) => tally.hits += 1,
                    None if cfg.cache_mode() => tally.expired_or_evicted += 1,
                    None if !cfg.preload => {} // legitimately absent
                    _ => tally.errors += 1,
                }
            }
        } else {
            let values: Vec<Vec<u8>> =
                batch_stems.iter().map(|s| value_bytes(*s, cfg.value_size)).collect();
            let pairs: Vec<(&[u8], &[u8])> =
                keys.iter().zip(&values).map(|(k, v)| (k.as_slice(), v.as_slice())).collect();
            client.mset(&pairs)?;
            tally.sets += batch as u64;
        }
        tally.batch_rtt_us.push(t0.elapsed().as_micros() as u64);
        done += batch;
    }
    Ok(tally)
}

/// One connection's redirect-aware numbers from the cluster timed run.
#[derive(Default)]
struct ClusterTally {
    /// `(latency_us, this op saw a MOVED/ASK redirect)` per op, in
    /// issue order — the redirect flags bracket the migration window.
    ops: Vec<(u64, bool)>,
    /// Final cumulative client stats (moved/ask/tryagain/refreshes).
    stats: dash_server::ClusterClientStats,
    /// Ops abandoned because redirects never converged — any nonzero
    /// count fails the run: it means the slot map chased its own tail.
    redirect_loops: u64,
}

/// Merged cluster numbers for the report and the `--json` summary.
struct ClusterSummary {
    moved: u64,
    ask: u64,
    tryagain: u64,
    refreshes: u64,
    redirect_loops: u64,
    /// p99 of ops inside the migration window — between each
    /// connection's first and last redirected op. `None` when the run
    /// saw no redirects at all.
    migration_window_p99_us: Option<u64>,
}

/// One connection's share of the cluster timed run: sequential
/// (depth-1) GET/SET through a [`ClusterClient`], timing each op and
/// noting whether it was redirected. No pipelining — a redirect means
/// re-sending to another node, so depth 1 is the honest measurement.
fn run_connection_cluster(
    cfg: &Config,
    stems: &[u64],
    conn_id: usize,
    my_ops: usize,
) -> std::io::Result<(Tally, ClusterTally)> {
    let mut client =
        ClusterClient::connect(cfg.addr.as_str(), std::time::Duration::from_secs(5))?;
    let mut tally = Tally::default();
    let mut ct = ClusterTally { ops: Vec::with_capacity(my_ops), ..Default::default() };
    let mut zipf = cfg
        .zipf
        .map(|theta| ZipfGenerator::new(stems.len(), theta, mix64(cfg.seed ^ conn_id as u64) | 1));
    let mut rng = mix64(cfg.seed ^ (conn_id as u64).wrapping_mul(0x9E37)) | 1;
    for _ in 0..my_ops {
        rng = mix64(rng);
        let idx = match &mut zipf {
            Some(z) => z.next_index(),
            None => ((rng >> 8) % stems.len() as u64) as usize,
        };
        let stem = stems[idx];
        let is_get = (rng % 100) < cfg.read_pct as u64;
        let key = key_bytes(stem);
        let before = client.stats();
        let t0 = Instant::now();
        let result: std::io::Result<bool> = if is_get {
            tally.gets += 1;
            client.get(&key).map(|got| match got {
                Some(v) if v == value_bytes(stem, cfg.value_size) => {
                    tally.hits += 1;
                    true
                }
                None => !cfg.preload, // a Nil after --preload is a lost write
                Some(_) => false,
            })
        } else {
            tally.sets += 1;
            client.set(&key, &value_bytes(stem, cfg.value_size)).map(|()| true)
        };
        let us = t0.elapsed().as_micros() as u64;
        let after = client.stats();
        ct.ops.push((us, after.moved + after.ask > before.moved + before.ask));
        match result {
            Ok(true) => {}
            Ok(false) => tally.errors += 1,
            Err(e) => {
                tally.errors += 1;
                if e.to_string().contains("redirect loop") {
                    ct.redirect_loops += 1;
                }
            }
        }
    }
    ct.stats = client.stats();
    Ok((tally, ct))
}

/// The cluster analogue of [`timed_phase`]: runs the redirect-aware
/// per-connection workers, merges their tallies, prints the report
/// (including the migration-window p99), and returns the summaries plus
/// the flat per-op latency pool (reused as the latency sample — the run
/// is already depth 1, so every op IS a per-op round trip).
fn timed_phase_cluster(
    cfg: &Config,
    stems: &[u64],
) -> (PhaseSummary, ClusterSummary, Vec<u64>, bool) {
    let label = "cluster run";
    let per = cfg.ops / cfg.conns;
    let t0 = Instant::now();
    let results: Vec<std::io::Result<(Tally, ClusterTally)>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..cfg.conns)
            .map(|conn_id| {
                let (cfg, stems) = (cfg, stems);
                let my_ops =
                    if conn_id == cfg.conns - 1 { cfg.ops - per * (cfg.conns - 1) } else { per };
                s.spawn(move || run_connection_cluster(cfg, stems, conn_id, my_ops))
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("worker panicked")).collect()
    });
    let elapsed = t0.elapsed();

    let mut total = Tally::default();
    let mut io_errors = 0u64;
    let mut cluster = ClusterSummary {
        moved: 0,
        ask: 0,
        tryagain: 0,
        refreshes: 0,
        redirect_loops: 0,
        migration_window_p99_us: None,
    };
    let mut all_lats: Vec<u64> = Vec::new();
    let mut window_lats: Vec<u64> = Vec::new();
    for r in results {
        match r {
            Ok((t, ct)) => {
                total.gets += t.gets;
                total.sets += t.sets;
                total.hits += t.hits;
                total.errors += t.errors;
                cluster.moved += ct.stats.moved;
                cluster.ask += ct.stats.ask;
                cluster.tryagain += ct.stats.tryagain;
                cluster.refreshes += ct.stats.refreshes;
                cluster.redirect_loops += ct.redirect_loops;
                all_lats.extend(ct.ops.iter().map(|(us, _)| *us));
                // This connection's migration window: everything between
                // its first and last redirected op (inclusive).
                let first = ct.ops.iter().position(|(_, r)| *r);
                let last = ct.ops.iter().rposition(|(_, r)| *r);
                if let (Some(a), Some(b)) = (first, last) {
                    window_lats.extend(ct.ops[a..=b].iter().map(|(us, _)| *us));
                }
            }
            Err(e) => {
                eprintln!("dash-loadgen: {label}: connection failed: {e}");
                io_errors += 1;
            }
        }
    }
    let ops_done = total.gets + total.sets;
    let throughput = ops_done as f64 / elapsed.as_secs_f64();
    all_lats.sort_unstable();
    println!(
        "{label}: ran {ops_done} ops ({} GET / {} SET, {} hits) over {} connections in {:.2?}",
        total.gets, total.sets, total.hits, cfg.conns, elapsed
    );
    println!("{label}: throughput {throughput:.0} ops/s (depth 1 through redirects)");
    println!(
        "{label}: redirects: {} MOVED, {} ASK, {} TRYAGAIN, {} slot-map refreshes",
        cluster.moved, cluster.ask, cluster.tryagain, cluster.refreshes
    );
    if !window_lats.is_empty() {
        window_lats.sort_unstable();
        let p99 = percentile(&window_lats, 0.99);
        cluster.migration_window_p99_us = Some(p99);
        println!(
            "{label}: migration window: {} ops between first and last redirect, p99 {} us",
            window_lats.len(),
            p99
        );
    }
    let mut failed = false;
    if total.errors > 0 || io_errors > 0 {
        eprintln!(
            "dash-loadgen: {label}: {} op errors, {io_errors} failed connections",
            total.errors
        );
        failed = true;
    }
    if cluster.redirect_loops > 0 {
        eprintln!(
            "dash-loadgen: {label}: {} ops hit a redirect loop (slot map never converged)",
            cluster.redirect_loops
        );
        failed = true;
    }
    if ops_done == 0 || throughput == 0.0 {
        eprintln!("dash-loadgen: {label}: zero throughput");
        failed = true;
    }
    let summary = PhaseSummary {
        label: label.to_string(),
        throughput,
        gets: total.gets,
        sets: total.sets,
        hits: total.hits,
        op_errors: total.errors,
        failed_connections: io_errors,
        expired_or_evicted: 0,
        oom_rejections: 0,
    };
    (summary, cluster, all_lats, failed)
}

/// Cluster preload: SET every key through redirect-following clients,
/// so the keyspace lands on whichever node owns each slot.
fn preload_cluster(cfg: &Config, stems: &[u64]) -> Result<(), String> {
    let errors = AtomicU64::new(0);
    std::thread::scope(|s| {
        for (conn_id, chunk) in stems.chunks(stems.len().div_ceil(cfg.conns)).enumerate() {
            let errors = &errors;
            s.spawn(move || {
                let mut client = match ClusterClient::connect(
                    cfg.addr.as_str(),
                    std::time::Duration::from_secs(5),
                ) {
                    Ok(c) => c,
                    Err(e) => {
                        eprintln!("preload conn {conn_id}: {e}");
                        errors.fetch_add(chunk.len() as u64, Ordering::Relaxed);
                        return;
                    }
                };
                for stem in chunk {
                    let key = key_bytes(*stem);
                    if client.set(&key, &value_bytes(*stem, cfg.value_size)).is_err() {
                        errors.fetch_add(1, Ordering::Relaxed);
                    }
                }
            });
        }
    });
    match errors.load(Ordering::Relaxed) {
        0 => Ok(()),
        n => Err(format!("{n} preload errors")),
    }
}

/// Cluster verify-all: GET every key through redirects and require the
/// exact expected value — if migration lost an acknowledged write, the
/// key is Nil on every node and this catches it.
fn verify_all_cluster(cfg: &Config, stems: &[u64]) -> Result<(), String> {
    let missing = AtomicU64::new(0);
    let wrong = AtomicU64::new(0);
    let io_errors = AtomicU64::new(0);
    std::thread::scope(|s| {
        for chunk in stems.chunks(stems.len().div_ceil(cfg.conns)) {
            let (missing, wrong, io_errors) = (&missing, &wrong, &io_errors);
            s.spawn(move || {
                let mut client = match ClusterClient::connect(
                    cfg.addr.as_str(),
                    std::time::Duration::from_secs(5),
                ) {
                    Ok(c) => c,
                    Err(_) => {
                        io_errors.fetch_add(chunk.len() as u64, Ordering::Relaxed);
                        return;
                    }
                };
                for stem in chunk {
                    match client.get(&key_bytes(*stem)) {
                        Ok(Some(v)) if v == value_bytes(*stem, cfg.value_size) => {}
                        Ok(Some(_)) => {
                            wrong.fetch_add(1, Ordering::Relaxed);
                        }
                        Ok(None) => {
                            missing.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(_) => {
                            io_errors.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
            });
        }
    });
    let (m, w, io) = (
        missing.load(Ordering::Relaxed),
        wrong.load(Ordering::Relaxed),
        io_errors.load(Ordering::Relaxed),
    );
    if m + w + io == 0 {
        Ok(())
    } else {
        Err(format!("{m} keys missing, {w} wrong values, {io} I/O errors"))
    }
}

/// Cluster scan verification — the **exactly-once** proof. Enumerates
/// every node the slot map knows with cursor SCAN and requires:
/// (a) every preloaded key appears somewhere, and (b) the sum of the
/// nodes' DBSIZEs equals the size of the deduplicated union — so no key
/// is held (and served) by two nodes at once, which is precisely what a
/// botched migration handoff would leave behind.
fn verify_scan_cluster(cfg: &Config, stems: &[u64]) -> Result<(), String> {
    let cc = ClusterClient::connect(cfg.addr.as_str(), std::time::Duration::from_secs(5))
        .map_err(|e| format!("connect: {e}"))?;
    let nodes = cc.known_nodes();
    if nodes.is_empty() {
        return Err("slot map names no nodes".into());
    }
    let mut union: std::collections::HashSet<Vec<u8>> = std::collections::HashSet::new();
    let mut dbsize_sum = 0u64;
    for node in &nodes {
        let mut client =
            RespClient::connect_timeout(node, std::time::Duration::from_secs(5))
                .map_err(|e| format!("connect {node}: {e}"))?;
        let mut node_keys = 0u64;
        let mut cursor = 0u64;
        loop {
            let (next, keys) =
                client.scan(cursor, 512).map_err(|e| format!("SCAN on {node}: {e}"))?;
            node_keys += keys.len() as u64;
            union.extend(keys);
            if next == 0 {
                break;
            }
            cursor = next;
        }
        let dbsize = match client.command(&[b"DBSIZE"]) {
            Ok(Value::Integer(n)) => n as u64,
            other => return Err(format!("DBSIZE on {node} gave {other:?}")),
        };
        println!("node {node}: scanned {node_keys} keys, DBSIZE {dbsize}");
        dbsize_sum += dbsize;
    }
    let mut missing = 0u64;
    for stem in stems {
        if !union.contains(&key_bytes(*stem)) {
            missing += 1;
        }
    }
    println!(
        "cluster scan: {} distinct keys across {} nodes, DBSIZE sum {dbsize_sum}",
        union.len(),
        nodes.len()
    );
    if missing > 0 {
        return Err(format!("{missing} preloaded keys not served by any node"));
    }
    if union.len() as u64 != dbsize_sum {
        return Err(format!(
            "DBSIZE sum {dbsize_sum} != {} distinct keys — some key is held by more than one node",
            union.len()
        ));
    }
    Ok(())
}

/// Poll `CLUSTER INFO` on `addr` until its outbound migration reports
/// `done` (no migration active) — the gate CI uses between starting
/// `CLUSTER MIGRATE` under load and verifying the result. Fails fast on
/// a `failed` migration, or after ~120s.
fn wait_migration(addr: &str) -> Result<(), String> {
    let mut client = RespClient::connect_timeout(addr, std::time::Duration::from_secs(5))
        .map_err(|e| format!("connect {addr}: {e}"))?;
    let field = |text: &str, name: &str| -> Option<String> {
        text.lines()
            .find_map(|l| l.strip_prefix(name).and_then(|r| r.strip_prefix(':')))
            .map(|v| v.trim().to_string())
    };
    let mut last_state = String::from("unknown");
    for _ in 0..1200 {
        let text = match client.command(&[b"CLUSTER", b"INFO"]) {
            Ok(Value::Bulk(b)) => String::from_utf8_lossy(&b).into_owned(),
            Ok(other) => return Err(format!("CLUSTER INFO gave {other:?}")),
            Err(e) => return Err(format!("CLUSTER INFO: {e}")),
        };
        let active = field(&text, "migration_active").unwrap_or_default();
        let state = field(&text, "migration_state").unwrap_or_default();
        if state == "failed" {
            let why = field(&text, "migration_error").unwrap_or_default();
            return Err(format!("migration failed: {why}"));
        }
        if active == "0" && state == "done" {
            println!(
                "migration on {addr} complete ({} keys moved)",
                field(&text, "migration_keys").unwrap_or_default()
            );
            return Ok(());
        }
        last_state = if state.is_empty() { "unknown".into() } else { state };
        std::thread::sleep(std::time::Duration::from_millis(100));
    }
    Err(format!("migration on {addr} still {last_state:?} after 120s"))
}

/// SET every key in the keyspace (split across connections), so a later
/// `--verify-all` has a fully defined expectation.
fn preload(cfg: &Config, stems: &[u64]) -> Result<(), String> {
    let errors = AtomicU64::new(0);
    std::thread::scope(|s| {
        for (conn_id, chunk) in stems.chunks(stems.len().div_ceil(cfg.conns)).enumerate() {
            let errors = &errors;
            s.spawn(move || {
                let mut client = match RespClient::connect(cfg.addr.as_str()) {
                    Ok(c) => c,
                    Err(e) => {
                        eprintln!("preload conn {conn_id}: {e}");
                        errors.fetch_add(chunk.len() as u64, Ordering::Relaxed);
                        return;
                    }
                };
                for batch in chunk.chunks(cfg.pipeline) {
                    for stem in batch {
                        let key = key_bytes(*stem);
                        let value = value_bytes(*stem, cfg.value_size);
                        client.enqueue(&[b"SET", &key, &value]);
                    }
                    if client.flush().is_err() {
                        errors.fetch_add(batch.len() as u64, Ordering::Relaxed);
                        return;
                    }
                    for _ in batch {
                        match client.read_reply() {
                            Ok(Value::Simple(s)) if s == "OK" => {}
                            _ => {
                                errors.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                    }
                }
            });
        }
    });
    match errors.load(Ordering::Relaxed) {
        0 => Ok(()),
        n => Err(format!("{n} preload errors")),
    }
}

/// GET every key and require the exact expected value — the
/// no-acknowledged-write-lost check used across server restarts.
fn verify_all(cfg: &Config, stems: &[u64]) -> Result<(), String> {
    let missing = AtomicU64::new(0);
    let wrong = AtomicU64::new(0);
    let io_errors = AtomicU64::new(0);
    std::thread::scope(|s| {
        for chunk in stems.chunks(stems.len().div_ceil(cfg.conns)) {
            let (missing, wrong, io_errors) = (&missing, &wrong, &io_errors);
            s.spawn(move || {
                let mut client = match RespClient::connect(cfg.addr.as_str()) {
                    Ok(c) => c,
                    Err(_) => {
                        io_errors.fetch_add(chunk.len() as u64, Ordering::Relaxed);
                        return;
                    }
                };
                for batch in chunk.chunks(cfg.pipeline) {
                    for stem in batch {
                        client.enqueue(&[b"GET", &key_bytes(*stem)]);
                    }
                    if client.flush().is_err() {
                        io_errors.fetch_add(batch.len() as u64, Ordering::Relaxed);
                        return;
                    }
                    for stem in batch {
                        match client.read_reply() {
                            Ok(Value::Bulk(v)) if v == value_bytes(*stem, cfg.value_size) => {}
                            Ok(Value::Bulk(_)) => {
                                wrong.fetch_add(1, Ordering::Relaxed);
                            }
                            Ok(Value::Nil) => {
                                missing.fetch_add(1, Ordering::Relaxed);
                            }
                            _ => {
                                io_errors.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                    }
                }
            });
        }
    });
    let (m, w, io) = (
        missing.load(Ordering::Relaxed),
        wrong.load(Ordering::Relaxed),
        io_errors.load(Ordering::Relaxed),
    );
    // Cache mode: a key the server expired or evicted is legitimately
    // gone — the invariant is that every SURVIVING key is byte-exact.
    if cfg.cache_mode() && m > 0 && w + io == 0 {
        println!("verify-all: {m} keys missing (expired/evicted — tolerated in cache mode)");
        return Ok(());
    }
    if m + w + io == 0 {
        Ok(())
    } else {
        Err(format!("{m} keys missing, {w} wrong values, {io} I/O errors"))
    }
}

/// Enumerate the whole store with cursor `SCAN` and check it against the
/// preloaded keyspace and `DBSIZE` — the scan-shaped analogue of
/// `verify_all`: every expected key must be yielded, and the number of
/// distinct keys scanned must equal the server's key counter (so the
/// O(shards) counters and the scan ground truth agree end to end).
fn verify_scan(cfg: &Config, stems: &[u64]) -> Result<(), String> {
    let mut client =
        RespClient::connect(cfg.addr.as_str()).map_err(|e| format!("connect: {e}"))?;
    let mut scanned: std::collections::HashSet<Vec<u8>> = std::collections::HashSet::new();
    let mut pages = 0u64;
    let mut yielded = 0u64;
    let mut cursor = 0u64;
    loop {
        let (next, keys) = client.scan(cursor, 512).map_err(|e| format!("SCAN: {e}"))?;
        pages += 1;
        yielded += keys.len() as u64;
        scanned.extend(keys);
        if next == 0 {
            break;
        }
        cursor = next;
    }
    let mut missing = 0u64;
    for stem in stems {
        if !scanned.contains(&key_bytes(*stem)) {
            missing += 1;
        }
    }
    let dbsize = match client.command(&[b"DBSIZE"]) {
        Ok(Value::Integer(n)) => n as u64,
        other => return Err(format!("DBSIZE gave {other:?}")),
    };
    println!(
        "scan enumerated {} distinct keys ({yielded} yielded over {pages} pages)",
        scanned.len()
    );
    if missing > 0 {
        return Err(format!("{missing} preloaded keys never yielded by SCAN"));
    }
    if scanned.len() as u64 != dbsize {
        return Err(format!("SCAN found {} distinct keys but DBSIZE says {dbsize}", scanned.len()));
    }
    Ok(())
}

/// Read a snapshot file (written by `SNAPSHOT`) locally and verify it:
/// the checksum must hold (read_all rejects corruption) and every
/// preloaded key must be present with its exact deterministic value —
/// byte-exact even for a snapshot taken under live 90/10 load, because
/// every writer stores the same pure function of the key.
fn verify_snapshot_file(cfg: &Config, stems: &[u64], path: &str) -> Result<(), String> {
    let records = dash_server::snapshot::read_all(std::path::Path::new(path))
        .map_err(|e| e.to_string())?;
    // A key may appear twice when a segment split raced the scan (the
    // cursor contract is at-least-once under mutation); the restore
    // applies in order, so keeping the last occurrence mirrors it.
    let map: std::collections::HashMap<&[u8], &[u8]> =
        records.iter().map(|(k, v, _expire)| (k.as_slice(), v.as_slice())).collect();
    let (mut missing, mut wrong) = (0u64, 0u64);
    for stem in stems {
        match map.get(key_bytes(*stem).as_slice()) {
            None => missing += 1,
            Some(v) if **v != *value_bytes(*stem, cfg.value_size) => wrong += 1,
            Some(_) => {}
        }
    }
    if missing + wrong > 0 {
        return Err(format!("{missing} keys missing from snapshot, {wrong} wrong values"));
    }
    println!("snapshot {path}: {} records, checksum OK, all {} preloaded keys byte-exact",
        records.len(), stems.len());
    Ok(())
}

fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[idx]
}

/// One timed phase's numbers, as they land in the `--json` summary.
struct PhaseSummary {
    label: String,
    throughput: f64,
    gets: u64,
    sets: u64,
    hits: u64,
    op_errors: u64,
    failed_connections: u64,
    /// Cache mode: Nil GETs attributed to expiry/eviction.
    expired_or_evicted: u64,
    /// Cache mode: SETs the server rejected with `-OOM`.
    oom_rejections: u64,
}

/// Server-side stage-latency numbers from `TRACE DUMP`, aggregated
/// across the dumped records for the table and the `--json` summary.
struct TraceSummary {
    sample_every: u64,
    records: usize,
    /// `(stage, mean ns, max ns)` in server stage order.
    stages: Vec<(String, u64, u64)>,
    /// Mean of the records' independently measured totals.
    total_mean_ns: u64,
    /// mean(stage sums) / mean(totals) — the attribution coverage; the
    /// server promises this stays within 10% of 100.
    stage_sum_over_total_pct: f64,
}

/// Turn on tracing before the run (`TRACE ON SAMPLE n`).
fn trace_begin(probe: &mut RespClient, n: u64) -> std::io::Result<()> {
    probe.trace_on(Some(n))
}

/// After the run: dump the flight recorder and aggregate per stage.
fn trace_collect(probe: &mut RespClient, sample_every: u64) -> std::io::Result<Option<TraceSummary>> {
    let entries = probe.trace_dump(256)?;
    if entries.is_empty() {
        return Ok(None);
    }
    // Stage order comes from the wire (all records carry all stages).
    let names: Vec<String> = entries[0].stages_ns.iter().map(|(s, _)| s.clone()).collect();
    let mut sums = vec![0u64; names.len()];
    let mut maxes = vec![0u64; names.len()];
    let mut total_sum = 0u64;
    let mut stage_sum_sum = 0u64;
    for e in &entries {
        total_sum += e.total_ns.max(0) as u64;
        stage_sum_sum += e.stage_sum_ns().max(0) as u64;
        for (i, name) in names.iter().enumerate() {
            let ns = e.stage_ns(name).unwrap_or(0).max(0) as u64;
            sums[i] += ns;
            maxes[i] = maxes[i].max(ns);
        }
    }
    let n = entries.len() as u64;
    let stages = names
        .into_iter()
        .enumerate()
        .map(|(i, name)| (name, sums[i] / n, maxes[i]))
        .collect();
    Ok(Some(TraceSummary {
        sample_every,
        records: entries.len(),
        stages,
        total_mean_ns: total_sum / n,
        stage_sum_over_total_pct: if total_sum == 0 {
            0.0
        } else {
            stage_sum_sum as f64 * 100.0 / total_sum as f64
        },
    }))
}

fn print_trace_summary(t: &TraceSummary) {
    println!(
        "server trace ({} records at 1-in-{} sampling):",
        t.records, t.sample_every
    );
    println!("  {:<12} {:>10} {:>10}", "stage", "mean_ns", "max_ns");
    for (name, mean, max) in &t.stages {
        println!("  {name:<12} {mean:>10} {max:>10}");
    }
    println!(
        "  {:<12} {:>10}   (stage sums cover {:.1}% of measured totals)",
        "total", t.total_mean_ns, t.stage_sum_over_total_pct
    );
}

/// The per-op latency sample's numbers for the `--json` summary.
struct LatencySummary {
    co_safe: bool,
    samples: usize,
    p50_us: u64,
    p95_us: u64,
    p99_us: u64,
    p999_us: u64,
    max_us: u64,
}

/// Run one timed phase (`runner` per connection), merge the tallies and
/// print its report. Returns `(summary, phase failed)`.
fn timed_phase(
    cfg: &Config,
    stems: &[u64],
    label: &str,
    rtt_note: &str,
    runner: fn(&Config, &[u64], usize, usize) -> std::io::Result<Tally>,
) -> (PhaseSummary, bool) {
    let per = cfg.ops / cfg.conns;
    let t0 = Instant::now();
    let tallies: Vec<std::io::Result<Tally>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..cfg.conns)
            .map(|conn_id| {
                let (cfg, stems) = (cfg, stems);
                let my_ops =
                    if conn_id == cfg.conns - 1 { cfg.ops - per * (cfg.conns - 1) } else { per };
                s.spawn(move || runner(cfg, stems, conn_id, my_ops))
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("worker panicked")).collect()
    });
    let elapsed = t0.elapsed();

    let mut total = Tally::default();
    let mut io_errors = 0u64;
    for t in tallies {
        match t {
            Ok(t) => {
                total.gets += t.gets;
                total.sets += t.sets;
                total.hits += t.hits;
                total.errors += t.errors;
                total.expired_or_evicted += t.expired_or_evicted;
                total.oom_rejections += t.oom_rejections;
                total.batch_rtt_us.extend(t.batch_rtt_us);
            }
            Err(e) => {
                eprintln!("dash-loadgen: {label}: connection failed: {e}");
                io_errors += 1;
            }
        }
    }
    let ops_done = total.gets + total.sets;
    let throughput = ops_done as f64 / elapsed.as_secs_f64();
    total.batch_rtt_us.sort_unstable();
    let rtt = &total.batch_rtt_us;
    println!(
        "{label}: ran {ops_done} ops ({} GET / {} SET, {} hits) over {} connections in {:.2?}",
        total.gets, total.sets, total.hits, cfg.conns, elapsed
    );
    println!("{label}: throughput {throughput:.0} ops/s");
    if cfg.cache_mode() {
        println!(
            "{label}: cache mode: {} expired/evicted Nil GETs, {} -OOM rejections",
            total.expired_or_evicted, total.oom_rejections
        );
    }
    println!(
        "{label}: RTT {rtt_note}: p50 {} us, p95 {} us, p99 {} us, max {} us",
        percentile(rtt, 0.50),
        percentile(rtt, 0.95),
        percentile(rtt, 0.99),
        rtt.last().copied().unwrap_or(0),
    );
    let mut failed = false;
    if total.errors > 0 || io_errors > 0 {
        eprintln!(
            "dash-loadgen: {label}: {} op errors, {io_errors} failed connections",
            total.errors
        );
        failed = true;
    }
    if ops_done == 0 || throughput == 0.0 {
        eprintln!("dash-loadgen: {label}: zero throughput");
        failed = true;
    }
    let summary = PhaseSummary {
        label: label.to_string(),
        throughput,
        gets: total.gets,
        sets: total.sets,
        hits: total.hits,
        op_errors: total.errors,
        failed_connections: io_errors,
        expired_or_evicted: total.expired_or_evicted,
        oom_rejections: total.oom_rejections,
    };
    (summary, failed)
}

/// Coordinated-omission-safe latency sampling: ops depart on a FIXED
/// arrival schedule (`--latency-rate` per second) and each is measured
/// from its *intended* start time, not from when the previous reply
/// freed the connection. A server stall therefore shows up as queueing
/// delay on every op scheduled during the stall — the closed-loop
/// sampler would instead silently issue fewer ops and report only the
/// stall survivor, hiding exactly the tail the percentiles exist to
/// expose.
fn sample_latency_scheduled(cfg: &Config, stems: &[u64]) -> std::io::Result<Vec<u64>> {
    let mut client = RespClient::connect(cfg.addr.as_str())?;
    let mut rng = mix64(cfg.seed ^ 0x1A7E_4C11) | 1;
    let interval = std::time::Duration::from_secs_f64(1.0 / cfg.latency_rate);
    let mut samples = Vec::with_capacity(cfg.latency_sample);
    let mut late_starts = 0u64;
    let t0 = Instant::now();
    for i in 0..cfg.latency_sample {
        let intended = t0 + interval * i as u32;
        let now = Instant::now();
        if now < intended {
            std::thread::sleep(intended - now);
        } else if i > 0 {
            late_starts += 1;
        }
        rng = mix64(rng);
        let stem = stems[((rng >> 8) % stems.len() as u64) as usize];
        let key = key_bytes(stem);
        let is_get = (rng % 100) < cfg.read_pct as u64;
        let reply = if is_get {
            client.command(&[b"GET", &key])?
        } else {
            client.command(&[b"SET", &key, &value_bytes(stem, cfg.value_size)])?
        };
        // Latency = completion minus INTENDED start: queueing included.
        samples.push(intended.elapsed().as_micros() as u64);
        if let Value::Error(e) = reply {
            return Err(std::io::Error::other(format!("server error while sampling: {e}")));
        }
    }
    if late_starts > 0 {
        println!(
            "latency schedule: {late_starts}/{} arrivals departed late (their queueing delay is in the numbers)",
            cfg.latency_sample
        );
    }
    samples.sort_unstable();
    Ok(samples)
}

/// Poll until the replica at `replica_addr` has applied everything the
/// primary at `cfg.addr` has published (equal `repl_offset`s, link up)
/// — the catch-up gate before a deliberate failover. Fails after ~60s.
fn wait_sync(cfg: &Config, replica_addr: &str) -> Result<(), String> {
    let mut primary =
        RespClient::connect(cfg.addr.as_str()).map_err(|e| format!("connect primary: {e}"))?;
    let mut replica =
        RespClient::connect(replica_addr).map_err(|e| format!("connect replica: {e}"))?;
    match replica.role() {
        Ok(r) if r == "replica" => {}
        Ok(r) => return Err(format!("{replica_addr} has role {r:?}, expected a replica")),
        Err(e) => return Err(format!("replica INFO: {e}")),
    }
    // Offsets are numbered by the replica's own primary: comparing them
    // against an unrelated server would be meaningless (and could wave
    // the failover drill through with writes still missing). Insist the
    // replica actually follows --addr.
    match replica.info_field("master_addr") {
        Ok(Some(a)) if a == cfg.addr => {}
        Ok(Some(a)) => {
            return Err(format!("{replica_addr} replicates {a}, not {} — wrong pair", cfg.addr))
        }
        Ok(None) => return Err(format!("{replica_addr} reports no master_addr")),
        Err(e) => return Err(format!("replica INFO: {e}")),
    }
    let mut last = (0, 0);
    for _ in 0..600 {
        // Order matters: replica first, primary second. Offsets only
        // move forward, so replica ≥ primary-read-AFTER proves the
        // replica had applied everything published up to the later
        // timestamp — the reverse order would let writes landing
        // between the two reads hide behind a stale primary number.
        let r = replica.repl_offset().map_err(|e| format!("replica INFO: {e}"))?;
        let link = replica
            .master_link()
            .map_err(|e| format!("replica INFO: {e}"))?
            .unwrap_or_default();
        let p = primary.repl_offset().map_err(|e| format!("primary INFO: {e}"))?;
        if link == "up" && r >= p {
            println!("replica {replica_addr} in sync with {} at offset {r}", cfg.addr);
            return Ok(());
        }
        last = (p, r);
        std::thread::sleep(std::time::Duration::from_millis(100));
    }
    Err(format!(
        "replica never caught up: primary offset {}, replica offset {} after 60s",
        last.0, last.1
    ))
}

/// Per-op latency sampling at pipeline depth 1 (ROADMAP "loadgen latency
/// fidelity"): one connection, one command in flight, each round trip
/// timed individually — the number a pipelined batch RTT cannot give.
fn sample_latency(cfg: &Config, stems: &[u64]) -> std::io::Result<Vec<u64>> {
    let mut client = RespClient::connect(cfg.addr.as_str())?;
    let mut rng = mix64(cfg.seed ^ 0x1A7E_4C11) | 1;
    let mut samples = Vec::with_capacity(cfg.latency_sample);
    for _ in 0..cfg.latency_sample {
        rng = mix64(rng);
        let stem = stems[((rng >> 8) % stems.len() as u64) as usize];
        let key = key_bytes(stem);
        let is_get = (rng % 100) < cfg.read_pct as u64;
        let t0 = Instant::now();
        let reply = if is_get {
            client.command(&[b"GET", &key])?
        } else {
            client.command(&[b"SET", &key, &value_bytes(stem, cfg.value_size)])?
        };
        samples.push(t0.elapsed().as_micros() as u64);
        if let Value::Error(e) = reply {
            return Err(std::io::Error::other(format!("server error while sampling: {e}")));
        }
    }
    samples.sort_unstable();
    Ok(samples)
}

fn main() {
    let cfg = parse_config();
    let stems = uniform_keys(cfg.keys, cfg.seed);

    // High connection counts are fd-bound before they are thread-bound:
    // make sure this process can open a socket per connection (plus
    // headroom for the verify/preload phases), or say why not.
    let want_fds = (cfg.conns as u64) * 2 + 64;
    if let Err(e) = dash_server::net::ensure_nofile_limit(want_fds) {
        eprintln!("dash-loadgen: cannot raise fd limit to {want_fds}: {e} (continuing)");
    }

    // Reachability check with a useful error before spawning anything.
    // In cluster mode --addr is a seed list; the probe (and --cmd) talk
    // to the first seed directly.
    let probe_addr =
        cfg.addr.split(',').map(str::trim).find(|s| !s.is_empty()).unwrap_or(&cfg.addr).to_string();
    let mut probe = match RespClient::connect(probe_addr.as_str()) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("dash-loadgen: cannot connect to {probe_addr}: {e}");
            std::process::exit(1);
        }
    };
    if !matches!(probe.command(&[b"PING"]), Ok(Value::Simple(ref s)) if s == "PONG") {
        eprintln!("dash-loadgen: {probe_addr} did not answer PING");
        std::process::exit(1);
    }

    if let Some(cmd) = &cfg.cmd {
        let words: Vec<&[u8]> = cmd.split_whitespace().map(str::as_bytes).collect();
        if words.is_empty() {
            eprintln!("dash-loadgen: --cmd is empty");
            std::process::exit(2);
        }
        match probe.command(&words) {
            Ok(Value::Error(e)) => {
                eprintln!("dash-loadgen: --cmd {cmd:?} got error reply: {e}");
                std::process::exit(1);
            }
            Ok(reply) => println!("--cmd {cmd:?} → {reply:?}"),
            Err(e) => {
                eprintln!("dash-loadgen: --cmd {cmd:?} failed: {e}");
                std::process::exit(1);
            }
        }
    }

    if cfg.trace_sample > 0 {
        if let Err(e) = trace_begin(&mut probe, cfg.trace_sample) {
            eprintln!("dash-loadgen: TRACE ON SAMPLE {} failed: {e}", cfg.trace_sample);
            std::process::exit(1);
        }
        println!("server tracing on ({probe_addr}, 1-in-{} sampling)", cfg.trace_sample);
    }

    if cfg.preload {
        let t0 = Instant::now();
        let result =
            if cfg.cluster { preload_cluster(&cfg, &stems) } else { preload(&cfg, &stems) };
        if let Err(e) = result {
            eprintln!("dash-loadgen: preload failed: {e}");
            std::process::exit(1);
        }
        println!("preloaded {} keys in {:?}", cfg.keys, t0.elapsed());
    }

    let mut failed = false;
    let mut phases: Vec<PhaseSummary> = Vec::new();
    let mut latency_summary: Option<LatencySummary> = None;
    let mut cluster_summary: Option<ClusterSummary> = None;
    if cfg.ops > 0 && cfg.cluster {
        let (summary, cluster, all_lats, f) = timed_phase_cluster(&cfg, &stems);
        phases.push(summary);
        failed |= f;
        // The cluster run is already depth 1, so its per-op latencies
        // ARE the latency sample — no separate sampling pass.
        if cfg.latency_sample > 0 && !all_lats.is_empty() {
            let p99 = percentile(&all_lats, 0.99);
            println!(
                "per-op latency (cluster run, {} samples): p50 {} us, p95 {} us, p99 {} us, max {} us",
                all_lats.len(),
                percentile(&all_lats, 0.50),
                percentile(&all_lats, 0.95),
                p99,
                all_lats.last().copied().unwrap_or(0),
            );
            latency_summary = Some(LatencySummary {
                co_safe: false,
                samples: all_lats.len(),
                p50_us: percentile(&all_lats, 0.50),
                p95_us: percentile(&all_lats, 0.95),
                p99_us: p99,
                p999_us: percentile(&all_lats, 0.999),
                max_us: all_lats.last().copied().unwrap_or(0),
            });
            if cfg.assert_p99_us > 0 && p99 > cfg.assert_p99_us {
                eprintln!(
                    "dash-loadgen: p99 latency {p99} us exceeds --assert-p99-us {}",
                    cfg.assert_p99_us
                );
                failed = true;
            }
        }
        cluster_summary = Some(cluster);
    } else if cfg.ops > 0 {
        match cfg.batch {
            None => {
                let (summary, f) = timed_phase(
                    &cfg,
                    &stems,
                    "run",
                    &format!("(pipeline depth {})", cfg.pipeline),
                    run_connection,
                );
                phases.push(summary);
                failed |= f;
            }
            Some(n) => {
                // Same op count both ways: N-deep pipelined single-key
                // commands, then N-key MGET/MSET commands — the batch API
                // must win or it has no reason to exist.
                let mut singles_cfg = cfg.clone();
                singles_cfg.pipeline = n;
                let (singles, f1) = timed_phase(
                    &singles_cfg,
                    &stems,
                    "pipelined singles",
                    &format!("(pipeline depth {n})"),
                    run_connection,
                );
                let (batched, f2) = timed_phase(
                    &cfg,
                    &stems,
                    "batched",
                    &format!("(MGET/MSET of {n} keys)"),
                    run_connection_batched,
                );
                failed |= f1 | f2;
                if singles.throughput > 0.0 && batched.throughput > 0.0 {
                    println!(
                        "batched vs pipelined singles: {:.2}x ({:.0} vs {:.0} ops/s)",
                        batched.throughput / singles.throughput,
                        batched.throughput,
                        singles.throughput
                    );
                }
                phases.push(singles);
                phases.push(batched);
            }
        }
    }

    if let Some(addr) = &cfg.wait_migration {
        let t0 = Instant::now();
        match wait_migration(addr) {
            Ok(()) => println!("migration confirmed complete ({:?})", t0.elapsed()),
            Err(e) => {
                eprintln!("dash-loadgen: wait-migration failed: {e}");
                failed = true;
            }
        }
    }

    if !cfg.cluster && cfg.latency_sample > 0 && (cfg.ops > 0 || cfg.latency_rate > 0.0) {
        let (mode, result) = if cfg.latency_rate > 0.0 {
            (
                format!("fixed {} ops/s arrivals, CO-safe", cfg.latency_rate),
                sample_latency_scheduled(&cfg, &stems),
            )
        } else {
            ("pipeline depth 1".to_string(), sample_latency(&cfg, &stems))
        };
        match result {
            Ok(samples) => {
                let p99 = percentile(&samples, 0.99);
                println!(
                    "per-op latency ({mode}, {} samples): p50 {} us, p95 {} us, p99 {} us, max {} us",
                    samples.len(),
                    percentile(&samples, 0.50),
                    percentile(&samples, 0.95),
                    p99,
                    samples.last().copied().unwrap_or(0),
                );
                latency_summary = Some(LatencySummary {
                    co_safe: cfg.latency_rate > 0.0,
                    samples: samples.len(),
                    p50_us: percentile(&samples, 0.50),
                    p95_us: percentile(&samples, 0.95),
                    p99_us: p99,
                    p999_us: percentile(&samples, 0.999),
                    max_us: samples.last().copied().unwrap_or(0),
                });
                if cfg.assert_p99_us > 0 && p99 > cfg.assert_p99_us {
                    eprintln!(
                        "dash-loadgen: p99 latency {p99} us exceeds --assert-p99-us {}",
                        cfg.assert_p99_us
                    );
                    failed = true;
                }
            }
            Err(e) => {
                eprintln!("dash-loadgen: latency sampling failed: {e}");
                failed = true;
            }
        }
    } else if cfg.assert_p99_us > 0 && latency_summary.is_none() {
        eprintln!("dash-loadgen: --assert-p99-us set but no latency sample was taken");
        failed = true;
    }

    if let Some(replica_addr) = &cfg.wait_sync {
        let t0 = Instant::now();
        match wait_sync(&cfg, replica_addr) {
            Ok(()) => println!("replica sync confirmed ({:?})", t0.elapsed()),
            Err(e) => {
                eprintln!("dash-loadgen: wait-sync failed: {e}");
                failed = true;
            }
        }
    }

    if cfg.verify_all {
        let t0 = Instant::now();
        let result =
            if cfg.cluster { verify_all_cluster(&cfg, &stems) } else { verify_all(&cfg, &stems) };
        match result {
            Ok(()) => println!(
                "verified all {} keys hold their expected values ({:?})",
                cfg.keys,
                t0.elapsed()
            ),
            Err(e) => {
                eprintln!("dash-loadgen: verification failed: {e}");
                failed = true;
            }
        }
    }

    if cfg.verify_scan {
        let t0 = Instant::now();
        let result =
            if cfg.cluster { verify_scan_cluster(&cfg, &stems) } else { verify_scan(&cfg, &stems) };
        match result {
            Ok(()) => println!("scan verification passed ({:?})", t0.elapsed()),
            Err(e) => {
                eprintln!("dash-loadgen: scan verification failed: {e}");
                failed = true;
            }
        }
    }

    if let Some(path) = &cfg.snapshot {
        let t0 = Instant::now();
        match probe.snapshot(path) {
            Ok(n) => println!("server snapshotted {n} records to {path} ({:?})", t0.elapsed()),
            Err(e) => {
                eprintln!("dash-loadgen: SNAPSHOT {path} failed: {e}");
                failed = true;
            }
        }
    }

    if let Some(path) = &cfg.verify_snapshot {
        match verify_snapshot_file(&cfg, &stems, path) {
            Ok(()) => {}
            Err(e) => {
                eprintln!("dash-loadgen: snapshot verification failed: {e}");
                failed = true;
            }
        }
    }

    if let Ok(Value::Integer(n)) = probe.command(&[b"DBSIZE"]) {
        if cfg.cluster {
            println!("first seed ({probe_addr}) DBSIZE: {n}");
        } else {
            println!("server DBSIZE: {n}");
        }
    }

    let mut trace_summary: Option<TraceSummary> = None;
    if cfg.trace_sample > 0 {
        match trace_collect(&mut probe, cfg.trace_sample) {
            Ok(Some(t)) => {
                print_trace_summary(&t);
                trace_summary = Some(t);
            }
            Ok(None) => {
                eprintln!("dash-loadgen: TRACE DUMP returned no records despite sampling");
                failed = true;
            }
            Err(e) => {
                eprintln!("dash-loadgen: TRACE DUMP failed: {e}");
                failed = true;
            }
        }
    }

    if let Some(path) = &cfg.json {
        let doc = render_json(
            &cfg,
            &phases,
            latency_summary.as_ref(),
            cluster_summary.as_ref(),
            trace_summary.as_ref(),
            failed,
        );
        match std::fs::write(path, doc) {
            Ok(()) => println!("wrote JSON summary to {path}"),
            Err(e) => {
                eprintln!("dash-loadgen: cannot write --json {path}: {e}");
                failed = true;
            }
        }
    }
    std::process::exit(if failed { 1 } else { 0 });
}

/// Minimal JSON string escaping — enough for addresses, labels and
/// paths (quote, backslash, control characters).
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// The `--json` document, handwritten (no serde in the tree): run
/// parameters, per-phase throughput/counts, the per-op latency
/// percentiles, and the overall verdict.
fn render_json(
    cfg: &Config,
    phases: &[PhaseSummary],
    latency: Option<&LatencySummary>,
    cluster: Option<&ClusterSummary>,
    trace: Option<&TraceSummary>,
    failed: bool,
) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("  \"addr\": \"{}\",\n", json_escape(&cfg.addr)));
    out.push_str(&format!("  \"conns\": {},\n", cfg.conns));
    out.push_str(&format!("  \"ops\": {},\n", cfg.ops));
    out.push_str(&format!("  \"read_pct\": {},\n", cfg.read_pct));
    out.push_str(&format!("  \"keys\": {},\n", cfg.keys));
    out.push_str(&format!("  \"value_size\": {},\n", cfg.value_size));
    out.push_str(&format!("  \"pipeline\": {},\n", cfg.pipeline));
    out.push_str("  \"phases\": [");
    for (i, p) in phases.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    {{\"label\": \"{}\", \"throughput_ops_per_sec\": {:.1}, \
             \"gets\": {}, \"sets\": {}, \"hits\": {}, \"op_errors\": {}, \
             \"failed_connections\": {}, \"expired_or_evicted\": {}, \
             \"oom_rejections\": {}}}",
            json_escape(&p.label),
            p.throughput,
            p.gets,
            p.sets,
            p.hits,
            p.op_errors,
            p.failed_connections,
            p.expired_or_evicted,
            p.oom_rejections
        ));
    }
    out.push_str(if phases.is_empty() { "],\n" } else { "\n  ],\n" });
    match latency {
        None => out.push_str("  \"latency\": null,\n"),
        Some(l) => out.push_str(&format!(
            "  \"latency\": {{\"co_safe\": {}, \"samples\": {}, \"p50_us\": {}, \
             \"p95_us\": {}, \"p99_us\": {}, \"p999_us\": {}, \"max_us\": {}}},\n",
            l.co_safe, l.samples, l.p50_us, l.p95_us, l.p99_us, l.p999_us, l.max_us
        )),
    }
    match cluster {
        None => out.push_str("  \"cluster\": null,\n"),
        Some(c) => {
            let window = match c.migration_window_p99_us {
                None => "null".to_string(),
                Some(us) => us.to_string(),
            };
            out.push_str(&format!(
                "  \"cluster\": {{\"moved\": {}, \"ask\": {}, \"tryagain\": {}, \
                 \"refreshes\": {}, \"redirect_loops\": {}, \
                 \"migration_window_p99_us\": {window}}},\n",
                c.moved, c.ask, c.tryagain, c.refreshes, c.redirect_loops
            ));
        }
    }
    match trace {
        None => out.push_str("  \"server_trace\": null,\n"),
        Some(t) => {
            out.push_str(&format!(
                "  \"server_trace\": {{\"sample_every\": {}, \"records\": {}, \
                 \"total_mean_ns\": {}, \"stage_sum_over_total_pct\": {:.1}, \"stages\": {{",
                t.sample_every, t.records, t.total_mean_ns, t.stage_sum_over_total_pct
            ));
            for (i, (name, mean, max)) in t.stages.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                out.push_str(&format!(
                    "\"{}\": {{\"mean_ns\": {mean}, \"max_ns\": {max}}}",
                    json_escape(name)
                ));
            }
            out.push_str("}},\n");
        }
    }
    out.push_str(&format!("  \"failed\": {failed}\n"));
    out.push_str("}\n");
    out
}
