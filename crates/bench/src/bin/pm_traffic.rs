//! Per-operation PM traffic accounting — the access-count arguments of
//! the paper (§4.2, §6.5) made directly checkable.
//!
//! For each table design and workload this prints PM read events, read
//! bytes, write (flush) events and write bytes *per operation*, measured
//! with the cost model disabled so that counts are exact and fast.
//!
//! Usage: `cargo run --release -p dash_bench --bin pm_traffic -- [preload] [ops]`

use dash_bench::{build, preload, TableKind, Workload};
use dash_common::{cli, negative_keys, uniform_keys};
use pmem::CostModel;

const USAGE: &str = "\
pm_traffic — per-operation PM traffic accounting for all four tables

USAGE:
    pm_traffic [preload] [ops]

ARGS:
    preload    records loaded before measuring (default 50000)
    ops        measured operations per workload (default 50000)";

fn main() {
    let args = cli::parse_or_exit(USAGE, &[], &[], 2);
    let pre_n: usize = args.positional_or_exit(0, 50_000, USAGE);
    let ops_n: usize = args.positional_or_exit(1, 50_000, USAGE);

    println!("# PM traffic per operation (preload {pre_n}, ops {ops_n}, single thread)");
    println!(
        "\n{:<10} {:<12} {:>10} {:>12} {:>10} {:>12} {:>10}",
        "table", "workload", "reads/op", "rd-bytes/op", "writes/op", "wr-bytes/op", "flush/op"
    );

    for kind in TableKind::ALL {
        for wl in [
            Workload::Insert,
            Workload::PositiveSearch,
            Workload::NegativeSearch,
            Workload::Delete,
        ] {
            let inst = build(kind, pre_n + 2 * ops_n, CostModel::none());
            let pre = uniform_keys(pre_n, 0xA11CE);
            preload(inst.table.as_ref(), &pre);
            let fresh = uniform_keys(ops_n, 0xF00D);
            let neg = negative_keys(ops_n, 0xA11CE);
            let del = negative_keys(ops_n, 0xDE1E7E);
            if wl == Workload::Delete {
                for (i, k) in del.iter().enumerate() {
                    inst.table.insert(k, i as u64).unwrap();
                }
            }
            let before = inst.pool.stats();
            match wl {
                Workload::Insert => {
                    for (i, k) in fresh.iter().enumerate() {
                        inst.table.insert(k, i as u64).unwrap();
                    }
                }
                Workload::PositiveSearch => {
                    for i in 0..ops_n {
                        assert!(inst.table.get(&pre[i % pre.len()]).is_some());
                    }
                }
                Workload::NegativeSearch => {
                    for k in &neg {
                        assert!(inst.table.get(k).is_none());
                    }
                }
                Workload::Delete => {
                    for k in &del {
                        assert!(inst.table.remove(k));
                    }
                }
                Workload::Mixed => unreachable!(),
            }
            let d = inst.pool.stats().since(&before);
            let ops = ops_n as f64;
            println!(
                "{:<10} {:<12} {:>10.2} {:>12.1} {:>10.2} {:>12.1} {:>10.2}",
                kind.name(),
                wl.name(),
                d.pm_reads as f64 / ops,
                d.pm_read_bytes as f64 / ops,
                d.pm_writes as f64 / ops,
                d.pm_write_bytes as f64 / ops,
                d.flushes as f64 / ops,
            );
        }
    }
}
