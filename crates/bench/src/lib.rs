//! Shared harness for the benchmark suite that regenerates every table
//! and figure of the Dash paper's evaluation (§6).
//!
//! Scale knobs (environment variables):
//!
//! * `DASH_BENCH_PRELOAD` — records preloaded before measuring
//!   (default 100 000; the paper uses 10 M),
//! * `DASH_BENCH_OPS` — measured operations (default 200 000; the paper
//!   uses 190 M),
//! * `DASH_BENCH_THREADS` — comma-separated thread counts (default
//!   `1,2,4,8,16,24` clipped to the machine),
//! * `DASH_BENCH_COST` — `optane` (default; latency + shared-bandwidth
//!   model from `pmem::CostModel::optane()`) or `none` (raw DRAM speed).
//!
//! Every harness prints the series the corresponding figure plots, plus
//! PM traffic per operation so the paper's access-count arguments are
//! directly checkable.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

use dash_common::{negative_keys, uniform_keys, PmHashTable};
use pmem::{CostModel, PmemPool, PoolConfig};

pub use dash_common::{mixed_ops, var_keys, MixedOp, VarKey};

/// Benchmark scale, read from the environment.
#[derive(Debug, Clone)]
pub struct Scale {
    pub preload: usize,
    pub ops: usize,
    pub threads: Vec<usize>,
    pub cost: CostModel,
}

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

impl Scale {
    pub fn from_env() -> Self {
        let hw = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(8);
        let threads: Vec<usize> = match std::env::var("DASH_BENCH_THREADS") {
            Ok(list) => list.split(',').filter_map(|t| t.trim().parse().ok()).collect(),
            Err(_) => [1, 2, 4, 8, 16, 24].iter().copied().filter(|&t| t <= hw).collect(),
        };
        let cost = match std::env::var("DASH_BENCH_COST").as_deref() {
            Ok("none") => CostModel::none(),
            Ok("buggy") => CostModel::optane_buggy_kernel(),
            _ => CostModel::optane(),
        };
        Scale {
            preload: env_usize("DASH_BENCH_PRELOAD", 100_000),
            ops: env_usize("DASH_BENCH_OPS", 200_000),
            threads: if threads.is_empty() { vec![1] } else { threads },
            cost,
        }
    }

    /// Pool size comfortably holding `records` across all four designs
    /// (CCEH's ~40 % load factor is the sizing constraint).
    pub fn pool_bytes(records: usize) -> usize {
        (records * 192).next_power_of_two().max(64 << 20)
    }
}

/// The four systems under comparison.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TableKind {
    DashEh,
    DashLh,
    Cceh,
    Level,
}

impl TableKind {
    pub const ALL: [TableKind; 4] =
        [TableKind::DashEh, TableKind::DashLh, TableKind::Cceh, TableKind::Level];

    pub fn name(self) -> &'static str {
        match self {
            TableKind::DashEh => "Dash-EH",
            TableKind::DashLh => "Dash-LH",
            TableKind::Cceh => "CCEH",
            TableKind::Level => "Level",
        }
    }
}

/// A constructed table together with its pool (for stats).
pub struct Instance {
    pub pool: Arc<PmemPool>,
    pub table: Arc<dyn PmHashTable<u64>>,
    pub kind: TableKind,
}

/// Build a fresh pool + table of `kind`, sized for `records`.
pub fn build(kind: TableKind, records: usize, cost: CostModel) -> Instance {
    let cfg = PoolConfig { size: Scale::pool_bytes(records), cost, ..Default::default() };
    let pool = PmemPool::create(cfg).expect("pool");
    let table: Arc<dyn PmHashTable<u64>> = match kind {
        TableKind::DashEh => Arc::new(
            dash_core::DashEh::<u64>::create(pool.clone(), dash_core::DashConfig::default())
                .expect("dash-eh"),
        ),
        TableKind::DashLh => Arc::new(
            dash_core::DashLh::<u64>::create(pool.clone(), dash_core::DashConfig::default())
                .expect("dash-lh"),
        ),
        TableKind::Cceh => Arc::new(
            cceh::Cceh::<u64>::create(pool.clone(), cceh::CcehConfig::default()).expect("cceh"),
        ),
        TableKind::Level => Arc::new(
            levelhash::LevelHash::<u64>::create(pool.clone(), levelhash::LevelConfig::default())
                .expect("level"),
        ),
    };
    Instance { pool, table, kind }
}

/// Build a Dash-EH with an explicit config (ablation benches).
pub fn build_dash_eh(
    cfg: dash_core::DashConfig,
    records: usize,
    cost: CostModel,
) -> (Arc<PmemPool>, Arc<dash_core::DashEh<u64>>) {
    let pcfg = PoolConfig { size: Scale::pool_bytes(records), cost, ..Default::default() };
    let pool = PmemPool::create(pcfg).expect("pool");
    let t = Arc::new(dash_core::DashEh::<u64>::create(pool.clone(), cfg).expect("dash-eh"));
    (pool, t)
}

/// Build a Dash-LH with an explicit pool configuration (fig. 15's
/// allocator study needs control over `alloc_mode` and the cost model).
pub fn build_dash_lh_with(
    cfg: dash_core::DashConfig,
    pool_cfg: PoolConfig,
) -> (Arc<PmemPool>, Arc<dash_core::DashLh<u64>>) {
    let pool = PmemPool::create(pool_cfg).expect("pool");
    let t = Arc::new(dash_core::DashLh::<u64>::create(pool.clone(), cfg).expect("dash-lh"));
    (pool, t)
}

/// Build a Dash-EH with an explicit pool configuration.
pub fn build_dash_eh_with(
    cfg: dash_core::DashConfig,
    pool_cfg: PoolConfig,
) -> (Arc<PmemPool>, Arc<dash_core::DashEh<u64>>) {
    let pool = PmemPool::create(pool_cfg).expect("pool");
    let t = Arc::new(dash_core::DashEh::<u64>::create(pool.clone(), cfg).expect("dash-eh"));
    (pool, t)
}

/// Preload `keys[i] -> i` sequentially.
pub fn preload(table: &dyn PmHashTable<u64>, keys: &[u64]) {
    for (i, k) in keys.iter().enumerate() {
        table.insert(k, i as u64).expect("preload insert");
    }
}

/// The operation mixes of §6.3/§6.4.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Workload {
    Insert,
    PositiveSearch,
    NegativeSearch,
    Delete,
    /// 20 % inserts / 80 % searches (fig. 8e).
    Mixed,
}

impl Workload {
    pub const ALL: [Workload; 5] = [
        Workload::Insert,
        Workload::PositiveSearch,
        Workload::NegativeSearch,
        Workload::Delete,
        Workload::Mixed,
    ];

    pub fn name(self) -> &'static str {
        match self {
            Workload::Insert => "insert",
            Workload::PositiveSearch => "pos-search",
            Workload::NegativeSearch => "neg-search",
            Workload::Delete => "delete",
            Workload::Mixed => "mixed-20/80",
        }
    }
}

/// Result of one measured cell.
#[derive(Debug, Clone, Copy)]
pub struct Cell {
    pub mops: f64,
    pub pm_reads_per_op: f64,
    pub pm_writes_per_op: f64,
    pub flushes_per_op: f64,
}

/// Run `total_ops` of `workload` over `threads` threads against a fresh
/// table of `kind` (preloaded with `preload_n` records) and report
/// throughput + PM traffic.
pub fn run_cell(
    kind: TableKind,
    workload: Workload,
    preload_n: usize,
    total_ops: usize,
    threads: usize,
    cost: CostModel,
) -> Cell {
    // The mixed workload preloads more so searches hit real data (§6.4).
    // The paper preloads 60 M then runs 190 M ops (38 M inserts → ~63 %
    // table growth); keep a comparable ops:preload proportion so split
    // activity amortizes over the run instead of dominating it.
    let preload_n = if workload == Workload::Mixed { preload_n * 3 / 2 } else { preload_n };
    let inst = build(kind, preload_n + 2 * total_ops, cost);
    let pre_keys = Arc::new(uniform_keys(preload_n, 0xA11CE));
    preload(inst.table.as_ref(), &pre_keys);

    let fresh = Arc::new(uniform_keys(total_ops, 0xF00D));
    let neg = Arc::new(negative_keys(total_ops, 0xA11CE));
    // Delete workloads remove keys that were preloaded for the purpose.
    let delete_keys = if workload == Workload::Delete {
        let extra = Arc::new(negative_keys(total_ops, 0xDE1E7E));
        preload(inst.table.as_ref(), &extra);
        Some(extra)
    } else {
        None
    };

    let table = inst.table.clone();
    let next = Arc::new(AtomicUsize::new(0));
    let per = total_ops / threads.max(1);
    let before = inst.pool.stats();

    let duration = timed_threads(threads, |tid| {
        let lo = tid * per;
        let hi = if tid == threads - 1 { total_ops } else { lo + per };
        match workload {
            Workload::Insert => {
                for i in lo..hi {
                    table.insert(&fresh[i], i as u64).expect("insert");
                }
            }
            Workload::PositiveSearch => {
                for i in lo..hi {
                    let k = &pre_keys[i % pre_keys.len()];
                    assert!(table.get(k).is_some());
                }
            }
            Workload::NegativeSearch => {
                for i in lo..hi {
                    assert!(table.get(&neg[i]).is_none());
                }
            }
            Workload::Delete => {
                let keys = delete_keys.as_ref().expect("delete keys");
                for i in lo..hi {
                    assert!(table.remove(&keys[i]), "delete miss at {i}");
                }
            }
            Workload::Mixed => {
                let ops = mixed_ops(hi - lo, 20, pre_keys.len(), tid as u64 ^ 0x1234);
                for op in ops {
                    match op {
                        MixedOp::Insert(_) => {
                            let i = next.fetch_add(1, Ordering::Relaxed) % fresh.len();
                            let _ = table.insert(&fresh[i], 1);
                        }
                        MixedOp::Search(i) => {
                            let _ = table.get(&pre_keys[i]);
                        }
                    }
                }
            }
        }
    });
    let d = inst.pool.stats().since(&before);
    cell_from(total_ops, duration, d)
}

fn cell_from(ops: usize, dur: Duration, d: pmem::StatsSnapshot) -> Cell {
    let ops_f = ops as f64;
    Cell {
        mops: ops_f / dur.as_secs_f64() / 1e6,
        pm_reads_per_op: d.pm_reads as f64 / ops_f,
        pm_writes_per_op: d.pm_writes as f64 / ops_f,
        flushes_per_op: d.flushes as f64 / ops_f,
    }
}

/// Time a closure across `threads` threads with a start barrier; returns
/// wall time from release to last join.
pub fn timed_threads(threads: usize, f: impl Fn(usize) + Sync) -> Duration {
    let barrier = Barrier::new(threads + 1);
    let start = std::thread::scope(|s| {
        for tid in 0..threads {
            let barrier = &barrier;
            let f = &f;
            s.spawn(move || {
                barrier.wait();
                f(tid);
            });
        }
        barrier.wait();
        Instant::now()
    });
    start.elapsed()
}

/// Pretty-print one figure's data as an aligned series table.
pub fn print_table(title: &str, columns: &[String], rows: &[(String, Vec<String>)]) {
    println!("\n### {title}");
    let mut header = format!("{:<26}", "");
    for c in columns {
        header.push_str(&format!("{c:>12}"));
    }
    println!("{header}");
    for (name, cells) in rows {
        let mut line = format!("{name:<26}");
        for c in cells {
            line.push_str(&format!("{c:>12}"));
        }
        println!("{line}");
    }
}

pub fn fmt_mops(c: Cell) -> String {
    format!("{:.3}", c.mops)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_defaults() {
        let s = Scale::from_env();
        assert!(s.preload > 0 && s.ops > 0 && !s.threads.is_empty());
    }

    #[test]
    fn pool_sizing_monotone() {
        assert!(Scale::pool_bytes(1_000_000) >= Scale::pool_bytes(100_000));
        assert!(Scale::pool_bytes(10) >= 64 << 20);
    }

    #[test]
    fn build_all_kinds() {
        for kind in TableKind::ALL {
            let inst = build(kind, 1_000, CostModel::none());
            inst.table.insert(&1, 2).unwrap();
            assert_eq!(inst.table.get(&1), Some(2));
            assert!(!inst.kind.name().is_empty());
        }
    }

    #[test]
    fn run_cell_smoke_each_workload() {
        for w in Workload::ALL {
            let c = run_cell(TableKind::DashEh, w, 1_000, 2_000, 2, CostModel::none());
            assert!(c.mops > 0.0, "{} must make progress", w.name());
        }
    }

    #[test]
    fn timed_threads_runs_all() {
        let counter = AtomicUsize::new(0);
        let d = timed_threads(4, |_| {
            counter.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(counter.load(Ordering::SeqCst), 4);
        assert!(d.as_nanos() > 0);
    }
}
