//! CCEH segments: a 64-byte header plus `2^bucket_bits` single-cacheline
//! buckets of four 16-byte records. No fingerprints, no bitmaps — an
//! empty slot is the reserved key value 0 (§6.3).

use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};

use dash_common::Key;
use pmem::{PmOffset, PmemPool};

pub(crate) const SLOTS_PER_BUCKET: usize = 4;
pub(crate) const BUCKET_BYTES: usize = 64;
pub(crate) const HEADER_BYTES: usize = 64;
/// Reserved "empty slot" key value.
pub(crate) const EMPTY_KEY: u64 = 0;

pub(crate) const STATE_NORMAL: u32 = 0;
pub(crate) const STATE_SPLITTING: u32 = 1;

const WRITER_BIT: u32 = 1 << 31;

/// Per-segment header: a reader-writer spinlock (the pessimistic locking
/// the paper's port uses), depth/pattern for the extendible directory,
/// and a side link + state for crash-consistent splits (the fix the paper
/// applied to CCEH's leaky split, §6.1).
#[repr(C, align(64))]
pub(crate) struct CcehSegHeader {
    pub rwlock: AtomicU32,
    pub state: AtomicU32,
    pub local_depth: AtomicU32,
    _pad0: u32,
    pub pattern: AtomicU64,
    pub side_link: AtomicU64,
    _pad1: [u8; 32],
}

const _HDR: () = assert!(std::mem::size_of::<CcehSegHeader>() == HEADER_BYTES);

#[repr(C)]
pub(crate) struct CcehSlot {
    pub key: AtomicU64,
    pub value: AtomicU64,
}

#[repr(C, align(64))]
pub(crate) struct CcehBucket {
    pub slots: [CcehSlot; SLOTS_PER_BUCKET],
}

const _BUCKET: () = assert!(std::mem::size_of::<CcehBucket>() == BUCKET_BYTES);

impl CcehSegHeader {
    /// Acquire a read lock; the CAS dirties a PM cacheline every time —
    /// the write traffic that keeps CCEH searches from scaling (§6.7).
    pub fn read_lock(&self, pool: &PmemPool) {
        loop {
            let v = self.rwlock.load(Ordering::Acquire);
            if v & WRITER_BIT == 0
                && self
                    .rwlock
                    .compare_exchange_weak(v, v + 1, Ordering::Acquire, Ordering::Relaxed)
                    .is_ok()
            {
                pool.note_pm_write(64);
                return;
            }
            std::hint::spin_loop();
        }
    }

    pub fn read_unlock(&self, pool: &PmemPool) {
        self.rwlock.fetch_sub(1, Ordering::Release);
        pool.note_pm_write(64);
    }

    pub fn write_lock(&self, pool: &PmemPool) {
        loop {
            if self
                .rwlock
                .compare_exchange_weak(0, WRITER_BIT, Ordering::Acquire, Ordering::Relaxed)
                .is_ok()
            {
                pool.note_pm_write(64);
                return;
            }
            std::hint::spin_loop();
        }
    }

    pub fn write_unlock(&self, pool: &PmemPool) {
        self.rwlock.store(0, Ordering::Release);
        pool.note_pm_write(64);
    }

    pub fn force_clear_lock(&self) {
        self.rwlock.store(0, Ordering::Release);
    }
}

/// Runtime view of one CCEH segment.
#[derive(Clone, Copy)]
pub(crate) struct CcehSegView<'a> {
    pub pool: &'a PmemPool,
    pub off: PmOffset,
    pub bucket_bits: u32,
}

impl<'a> CcehSegView<'a> {
    pub fn new(pool: &'a PmemPool, off: PmOffset, bucket_bits: u32) -> Self {
        CcehSegView { pool, off, bucket_bits }
    }

    #[inline]
    pub fn buckets(&self) -> usize {
        1usize << self.bucket_bits
    }

    pub fn bytes(bucket_bits: u32) -> usize {
        HEADER_BYTES + (1usize << bucket_bits) * BUCKET_BYTES
    }

    #[inline]
    pub fn header(&self) -> &'a CcehSegHeader {
        // SAFETY: `off` designates a live CCEH segment.
        unsafe { self.pool.at_ref::<CcehSegHeader>(self.off) }
    }

    #[inline]
    pub fn bucket(&self, i: usize) -> &'a CcehBucket {
        debug_assert!(i < self.buckets());
        // SAFETY: bucket i lies within the segment.
        unsafe {
            self.pool
                .at_ref::<CcehBucket>(self.off.add((HEADER_BYTES + i * BUCKET_BYTES) as u64))
        }
    }

    fn slot_off(&self, bucket: usize, slot: usize) -> PmOffset {
        self.off.add((HEADER_BYTES + bucket * BUCKET_BYTES + slot * 16) as u64)
    }

    pub fn init(&self, local_depth: u32, pattern: u64, side_link: PmOffset) {
        self.pool.zero(self.off, Self::bytes(self.bucket_bits));
        let h = self.header();
        h.local_depth.store(local_depth, Ordering::Relaxed);
        h.pattern.store(pattern, Ordering::Relaxed);
        h.side_link.store(side_link.get(), Ordering::Relaxed);
        h.state.store(STATE_NORMAL, Ordering::Relaxed);
        self.pool.flush(self.off, Self::bytes(self.bucket_bits));
        self.pool.fence();
    }

    #[inline]
    pub fn bucket_index(&self, h: u64) -> usize {
        (h as usize) & (self.buckets() - 1)
    }

    /// Probe up to `probe` consecutive cachelines for `key` (bounded
    /// linear probing, §2.3). One metered PM read per cacheline touched.
    pub fn search<K: Key>(&self, h: u64, key: &K, probe: u32) -> Option<(usize, usize, u64)> {
        let y = self.bucket_index(h);
        let mask = self.buckets() - 1;
        for d in 0..probe as usize {
            let b = (y + d) & mask;
            let bucket = self.bucket(b);
            self.pool.note_pm_read(BUCKET_BYTES);
            for (s, slot) in bucket.slots.iter().enumerate() {
                let stored = slot.key.load(Ordering::Acquire);
                if stored != EMPTY_KEY && key.matches(self.pool, stored) {
                    return Some((b, s, slot.value.load(Ordering::Acquire)));
                }
            }
        }
        None
    }

    /// Insert into the first free slot within the probe window. Returns
    /// false when the window is full (the caller splits — CCEH's
    /// premature-split behaviour). Persistence: value first, then the key
    /// as the commit point.
    pub fn insert(&self, h: u64, key_repr: u64, value: u64, probe: u32) -> bool {
        debug_assert_ne!(key_repr, EMPTY_KEY, "key repr 0 is the empty marker");
        let y = self.bucket_index(h);
        let mask = self.buckets() - 1;
        for d in 0..probe as usize {
            let b = (y + d) & mask;
            let bucket = self.bucket(b);
            self.pool.note_pm_read(BUCKET_BYTES);
            for (s, slot) in bucket.slots.iter().enumerate() {
                if slot.key.load(Ordering::Acquire) == EMPTY_KEY {
                    slot.value.store(value, Ordering::Relaxed);
                    self.pool.flush(self.slot_off(b, s).add(8), 8);
                    self.pool.fence();
                    slot.key.store(key_repr, Ordering::Release);
                    self.pool.flush(self.slot_off(b, s), 8);
                    self.pool.fence();
                    return true;
                }
            }
        }
        false
    }

    /// Delete: reset the key word to the empty marker (8-byte atomic).
    pub fn delete(&self, bucket: usize, slot: usize) {
        let b = self.bucket(bucket);
        b.slots[slot].key.store(EMPTY_KEY, Ordering::Release);
        self.pool.persist(self.slot_off(bucket, slot), 8);
    }

    pub fn update(&self, bucket: usize, slot: usize, value: u64) {
        let b = self.bucket(bucket);
        b.slots[slot].value.store(value, Ordering::Release);
        self.pool.persist(self.slot_off(bucket, slot).add(8), 8);
    }

    pub fn for_each_record(&self, mut f: impl FnMut(usize, usize, u64, u64)) {
        for b in 0..self.buckets() {
            let bucket = self.bucket(b);
            for (s, slot) in bucket.slots.iter().enumerate() {
                let k = slot.key.load(Ordering::Acquire);
                if k != EMPTY_KEY {
                    f(b, s, k, slot.value.load(Ordering::Acquire));
                }
            }
        }
    }

    pub fn count_records(&self) -> u64 {
        let mut n = 0;
        self.for_each_record(|_, _, _, _| n += 1);
        n
    }

    pub fn capacity_slots(&self) -> u64 {
        (self.buckets() * SLOTS_PER_BUCKET) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmem::PoolConfig;
    use std::sync::Arc;

    fn setup(bits: u32) -> (Arc<PmemPool>, CcehSegView<'static>) {
        let pool = PmemPool::create(PoolConfig::with_size(4 << 20)).unwrap();
        let off = pool.alloc_zeroed(CcehSegView::bytes(bits)).unwrap();
        let pool_ref: &'static PmemPool = Box::leak(Box::new(pool.clone()));
        let view = CcehSegView::new(pool_ref, off, bits);
        view.init(0, 0, PmOffset::NULL);
        (pool, view)
    }

    #[test]
    fn geometry() {
        assert_eq!(CcehSegView::bytes(8), 64 + 256 * 64); // 16 KB + header
    }

    #[test]
    fn insert_search_delete() {
        let (_pool, view) = setup(4);
        let key = 42u64;
        let h = dash_common::hash_u64(key);
        assert!(view.insert(h, key, 420, 4));
        let (b, s, v) = view.search(h, &key, 4).unwrap();
        assert_eq!(v, 420);
        view.update(b, s, 421);
        assert_eq!(view.search(h, &key, 4).unwrap().2, 421);
        view.delete(b, s);
        assert!(view.search(h, &key, 4).is_none());
    }

    #[test]
    fn probe_window_bounds_inserts() {
        let (_pool, view) = setup(4);
        // Saturate one probe window: 4 buckets × 4 slots = 16 records all
        // hashing to the same bucket index.
        let mut placed = 0;
        for i in 1..=100u64 {
            let h = 0u64; // all map to bucket 0
            if view.insert(h, i, i, 4) {
                placed += 1;
            } else {
                break;
            }
        }
        assert_eq!(placed, 16, "window of 4 cachelines × 4 slots");
    }

    #[test]
    fn rwlock_counts_pm_writes() {
        let (pool, view) = setup(4);
        let before = pool.stats();
        view.header().read_lock(&pool);
        view.header().read_unlock(&pool);
        view.header().write_lock(&pool);
        view.header().write_unlock(&pool);
        assert_eq!(pool.stats().since(&before).pm_writes, 4);
    }

    #[test]
    fn crash_before_key_commit_leaves_slot_empty() {
        let cfg = PoolConfig { size: 4 << 20, shadow: true, ..Default::default() };
        let pool = PmemPool::create(cfg).unwrap();
        let off = pool.alloc_zeroed(CcehSegView::bytes(4)).unwrap();
        let view = CcehSegView::new(&pool, off, 4);
        view.init(0, 0, PmOffset::NULL);
        let base = pool.flushes_issued();
        pool.set_flush_limit(Some(base + 1)); // value flush lands, key flush dropped
        assert!(view.insert(7, 99, 990, 4));
        pool.set_flush_limit(None);
        let img = pool.crash_image();
        let pool2 = PmemPool::open(img, cfg).unwrap();
        let view2 = CcehSegView::new(&pool2, off, 4);
        assert!(view2.search(7, &99u64, 4).is_none(), "uncommitted insert invisible");
        assert_eq!(view2.count_records(), 0);
    }
}
