//! The CCEH table: MSB-indexed directory over segments, bounded-probe
//! inserts, split-heavy growth, pessimistic locking, and the full
//! directory scan on recovery that makes CCEH's restart time linear in
//! data size (Table 1 of the Dash paper).

use std::marker::PhantomData;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use dash_common::{Key, PmHashTable, TableError, TableResult};
use parking_lot::Mutex;
use pmem::{PmOffset, PmemPool};

use crate::segment::{CcehSegView, EMPTY_KEY, STATE_NORMAL, STATE_SPLITTING};

const CCEH_MAGIC: u64 = 0xCCE4_0001_0000_0001;
const MAX_DEPTH: u32 = 24;

/// CCEH parameters; the defaults are the paper's (§6.2): 16 KB segments
/// of 64-byte buckets, probing bounded to four cachelines.
#[derive(Debug, Clone, Copy)]
pub struct CcehConfig {
    /// log2(buckets per segment); 8 → 256 × 64 B = 16 KB.
    pub bucket_bits: u32,
    /// Linear-probe bound in cachelines (buckets).
    pub probe_cachelines: u32,
    /// Initial global depth.
    pub initial_depth: u32,
}

impl Default for CcehConfig {
    fn default() -> Self {
        CcehConfig { bucket_bits: 8, probe_cachelines: 4, initial_depth: 2 }
    }
}

impl CcehConfig {
    fn to_flags(self) -> u64 {
        u64::from(self.bucket_bits)
            | (u64::from(self.probe_cachelines) << 8)
            | (u64::from(self.initial_depth) << 16)
    }

    fn from_flags(f: u64) -> Self {
        CcehConfig {
            bucket_bits: (f & 0xFF) as u32,
            probe_cachelines: ((f >> 8) & 0xFF) as u32,
            initial_depth: ((f >> 16) & 0xFF) as u32,
        }
    }
}

#[repr(C)]
struct CcehRoot {
    magic: AtomicU64,
    flags: AtomicU64,
    directory: AtomicU64,
}

/// Cacheline-conscious extendible hashing over the emulated PM pool.
pub struct Cceh<K: Key = u64> {
    pool: Arc<PmemPool>,
    root: PmOffset,
    cfg: CcehConfig,
    dir_lock: Mutex<()>,
    _k: PhantomData<fn(K) -> K>,
}

impl<K: Key> Cceh<K> {
    pub fn create(pool: Arc<PmemPool>, cfg: CcehConfig) -> TableResult<Self> {
        if cfg.bucket_bits > 12 || cfg.probe_cachelines == 0 || cfg.initial_depth > 16 {
            return Err(TableError::Pm(pmem::PmError::InvalidConfig("cceh config")));
        }
        let root = pool.alloc_zeroed(std::mem::size_of::<CcehRoot>())?;
        let depth = cfg.initial_depth;
        let len = 1usize << depth;
        let dir = pool.alloc_zeroed(8 + 8 * len)?;
        // SAFETY: fresh directory block.
        unsafe { (*pool.at::<AtomicU64>(dir)).store(depth as u64, Ordering::Relaxed) };
        for i in 0..len {
            let seg = pool.alloc(CcehSegView::bytes(cfg.bucket_bits))?;
            CcehSegView::new(&pool, seg, cfg.bucket_bits).init(depth, i as u64, PmOffset::NULL);
            // SAFETY: entry i of the fresh directory.
            unsafe {
                (*pool.at::<AtomicU64>(dir.add(8 + 8 * i as u64))).store(seg.get(), Ordering::Relaxed)
            };
        }
        pool.persist(dir, 8 + 8 * len);
        // SAFETY: fresh root block.
        let rootref = unsafe { pool.at_ref::<CcehRoot>(root) };
        rootref.magic.store(CCEH_MAGIC, Ordering::Relaxed);
        rootref.flags.store(cfg.to_flags(), Ordering::Relaxed);
        rootref.directory.store(dir.get(), Ordering::Relaxed);
        pool.persist(root, std::mem::size_of::<CcehRoot>());
        pool.set_root(root);
        Ok(Cceh { pool, root, cfg, dir_lock: Mutex::new(()), _k: PhantomData })
    }

    /// Reopen after a restart. **Not** instant: CCEH recovery walks the
    /// entire directory — clearing locks, validating depths and finishing
    /// interrupted splits — so the work grows with the number of
    /// segments (Table 1).
    pub fn open(pool: Arc<PmemPool>) -> TableResult<Self> {
        let root = pool.root();
        if root.is_null() {
            return Err(TableError::Pm(pmem::PmError::PoolCorrupt("no root object")));
        }
        // SAFETY: root published by create().
        let rootref = unsafe { pool.at_ref::<CcehRoot>(root) };
        if rootref.magic.load(Ordering::Relaxed) != CCEH_MAGIC {
            return Err(TableError::Pm(pmem::PmError::PoolCorrupt("not a CCEH root")));
        }
        let cfg = CcehConfig::from_flags(rootref.flags.load(Ordering::Relaxed));
        let table = Cceh { pool, root, cfg, dir_lock: Mutex::new(()), _k: PhantomData };
        table.recover_directory_scan();
        Ok(table)
    }

    /// The linear-time recovery pass (Table 1): touch every directory
    /// entry and every distinct segment header.
    fn recover_directory_scan(&self) {
        let dir = self.dir_off();
        let len = 1usize << self.dir_depth(dir);
        let mut last = PmOffset::NULL;
        for i in 0..len {
            // Each entry is a PM read; each new segment header another.
            self.pool.note_pm_read(8);
            let seg = PmOffset::new(self.dir_entry(dir, i).load(Ordering::Relaxed));
            if seg == last {
                continue;
            }
            last = seg;
            let view = self.view(seg);
            self.pool.note_pm_read(64);
            view.header().force_clear_lock();
            if view.header().state.load(Ordering::Relaxed) == STATE_SPLITTING {
                self.finish_split_recovery(view);
            }
        }
    }

    fn view(&self, seg: PmOffset) -> CcehSegView<'_> {
        CcehSegView::new(&self.pool, seg, self.cfg.bucket_bits)
    }

    fn rootref(&self) -> &CcehRoot {
        // SAFETY: validated at create/open.
        unsafe { self.pool.at_ref::<CcehRoot>(self.root) }
    }

    #[inline]
    fn dir_off(&self) -> PmOffset {
        PmOffset::new(self.rootref().directory.load(Ordering::Acquire))
    }

    #[inline]
    fn dir_depth(&self, dir: PmOffset) -> u32 {
        // SAFETY: directory starts with its depth word.
        unsafe { (*self.pool.at::<AtomicU64>(dir)).load(Ordering::Acquire) as u32 }
    }

    #[inline]
    fn dir_entry(&self, dir: PmOffset, idx: usize) -> &AtomicU64 {
        // SAFETY: idx < 2^depth.
        unsafe { self.pool.at_ref::<AtomicU64>(dir.add(8 + 8 * idx as u64)) }
    }

    #[inline]
    fn seg_index(h: u64, depth: u32) -> usize {
        if depth == 0 {
            0
        } else {
            (h >> (64 - depth)) as usize
        }
    }

    fn locate(&self, h: u64) -> PmOffset {
        let dir = self.dir_off();
        let depth = self.dir_depth(dir);
        PmOffset::new(self.dir_entry(dir, Self::seg_index(h, depth)).load(Ordering::Acquire))
    }

    fn for_each_segment(&self, mut f: impl FnMut(PmOffset)) {
        let dir = self.dir_off();
        let len = 1usize << self.dir_depth(dir);
        let mut last = PmOffset::NULL;
        for i in 0..len {
            let s = PmOffset::new(self.dir_entry(dir, i).load(Ordering::Acquire));
            if s != last {
                f(s);
                last = s;
            }
        }
    }

    // ---- operations -------------------------------------------------------

    pub fn get(&self, key: &K) -> Option<u64> {
        let h = key.hash64();
        let _g = self.pool.epoch().pin();
        loop {
            let seg = self.locate(h);
            let view = self.view(seg);
            let hdr = view.header();
            hdr.read_lock(&self.pool);
            if self.locate(h) != seg {
                hdr.read_unlock(&self.pool);
                continue;
            }
            let r = view.search(h, key, self.cfg.probe_cachelines).map(|(_, _, v)| v);
            hdr.read_unlock(&self.pool);
            return r;
        }
    }

    pub fn insert(&self, key: &K, value: u64) -> TableResult<()> {
        let h = key.hash64();
        let _g = self.pool.epoch().pin();
        let key_repr = key.encode(&self.pool)?;
        if key_repr == EMPTY_KEY {
            // CCEH's reserved-value restriction (§6.3).
            return Err(TableError::Pm(pmem::PmError::InvalidConfig(
                "CCEH cannot store a key whose representation is 0",
            )));
        }
        loop {
            let seg = self.locate(h);
            let view = self.view(seg);
            let hdr = view.header();
            hdr.write_lock(&self.pool);
            if self.locate(h) != seg {
                hdr.write_unlock(&self.pool);
                continue;
            }
            if view.search(h, key, self.cfg.probe_cachelines).is_some() {
                hdr.write_unlock(&self.pool);
                if !K::INLINE {
                    K::release(&self.pool, key_repr);
                }
                return Err(TableError::Duplicate);
            }
            if view.insert(h, key_repr, value, self.cfg.probe_cachelines) {
                hdr.write_unlock(&self.pool);
                return Ok(());
            }
            // Probe window full: premature split (§2.3).
            let r = self.split(view);
            hdr.write_unlock(&self.pool);
            r?;
        }
    }

    pub fn update(&self, key: &K, value: u64) -> bool {
        let h = key.hash64();
        let _g = self.pool.epoch().pin();
        loop {
            let seg = self.locate(h);
            let view = self.view(seg);
            let hdr = view.header();
            hdr.write_lock(&self.pool);
            if self.locate(h) != seg {
                hdr.write_unlock(&self.pool);
                continue;
            }
            let r = view.search(h, key, self.cfg.probe_cachelines);
            if let Some((b, s, _)) = r {
                view.update(b, s, value);
            }
            hdr.write_unlock(&self.pool);
            return r.is_some();
        }
    }

    pub fn remove(&self, key: &K) -> bool {
        let h = key.hash64();
        let _g = self.pool.epoch().pin();
        loop {
            let seg = self.locate(h);
            let view = self.view(seg);
            let hdr = view.header();
            hdr.write_lock(&self.pool);
            if self.locate(h) != seg {
                hdr.write_unlock(&self.pool);
                continue;
            }
            let r = view.search(h, key, self.cfg.probe_cachelines);
            if let Some((b, s, _)) = r {
                let repr = view.bucket(b).slots[s].key.load(Ordering::Acquire);
                view.delete(b, s);
                if !K::INLINE {
                    K::release(&self.pool, repr);
                }
            }
            hdr.write_unlock(&self.pool);
            return r.is_some();
        }
    }

    // ---- split (caller holds the segment write lock) ----------------------

    fn split(&self, s: CcehSegView<'_>) -> TableResult<()> {
        let sh = s.header();
        let l = sh.local_depth.load(Ordering::Acquire);
        let dir = self.dir_off();
        if l == self.dir_depth(dir) {
            self.double_directory(l)?;
        }

        sh.state.store(STATE_SPLITTING, Ordering::Release);
        self.pool.persist(self.pool.offset_of(&sh.state), 4);

        let side_slot = self.pool.offset_of(&sh.side_link);
        let ticket = match self.pool.prepare_alloc(CcehSegView::bytes(self.cfg.bucket_bits), side_slot)
        {
            Ok(t) => t,
            Err(e) => {
                sh.state.store(STATE_NORMAL, Ordering::Release);
                self.pool.persist(self.pool.offset_of(&sh.state), 4);
                return Err(e.into());
            }
        };
        let n_off = ticket.block;
        let n = self.view(n_off);
        let pattern = sh.pattern.load(Ordering::Acquire);
        n.init(l + 1, (pattern << 1) | 1, PmOffset::NULL);
        self.pool.commit_alloc(ticket);

        self.rehash_into(s, n)?;
        self.finish_split(s, n);
        Ok(())
    }

    fn rehash_into(&self, s: CcehSegView<'_>, n: CcehSegView<'_>) -> TableResult<()> {
        let new_depth = n.header().local_depth.load(Ordering::Acquire);
        let mut to_move = Vec::new();
        s.for_each_record(|b, slot, k, v| {
            let kh = K::hash_stored(&self.pool, k);
            if (kh >> (64 - new_depth)) & 1 == 1 {
                to_move.push((b, slot, k, v, kh));
            }
        });
        let redo = n.count_records() > 0;
        for (b, slot, k, v, kh) in to_move {
            if redo {
                let mut exists = false;
                n.for_each_record(|_, _, kr, _| {
                    if kr == k {
                        exists = true;
                    }
                });
                if exists {
                    s.delete(b, slot);
                    continue;
                }
            }
            if !n.insert(kh, k, v, self.cfg.probe_cachelines) {
                // Astronomically unlikely (half-empty target); bail out
                // rather than lose the record.
                return Err(TableError::CapacityExhausted);
            }
            s.delete(b, slot);
        }
        Ok(())
    }

    fn finish_split(&self, s: CcehSegView<'_>, n: CcehSegView<'_>) {
        let _dl = self.dir_lock.lock();
        let dir = self.dir_off();
        let g = self.dir_depth(dir);
        let sh = s.header();
        let nh = n.header();
        let new_l = nh.local_depth.load(Ordering::Acquire);
        let pattern_n = nh.pattern.load(Ordering::Acquire);
        let span = 1usize << (g - new_l);
        let start = (pattern_n as usize) << (g - new_l);
        for i in start..start + span {
            self.dir_entry(dir, i).store(n.off.get(), Ordering::Release);
        }
        self.pool.persist(dir.add(8 + 8 * start as u64), 8 * span);
        sh.local_depth.store(new_l, Ordering::Release);
        sh.pattern.store(pattern_n & !1, Ordering::Release);
        self.pool.persist(s.off, 64);
        sh.state.store(STATE_NORMAL, Ordering::Release);
        self.pool.persist(s.off, 64);
    }

    /// Recovery-time completion of an interrupted split, found by the
    /// directory scan.
    fn finish_split_recovery(&self, s: CcehSegView<'_>) {
        let sh = s.header();
        let n_off = PmOffset::new(sh.side_link.load(Ordering::Acquire));
        if n_off.is_null() {
            sh.state.store(STATE_NORMAL, Ordering::Release);
            self.pool.persist(self.pool.offset_of(&sh.state), 4);
            return;
        }
        let n = self.view(n_off);
        let valid = n.header().local_depth.load(Ordering::Acquire)
            == sh.local_depth.load(Ordering::Acquire) + 1;
        if valid && self.rehash_into(s, n).is_ok() {
            self.finish_split(s, n);
        } else {
            sh.state.store(STATE_NORMAL, Ordering::Release);
            self.pool.persist(self.pool.offset_of(&sh.state), 4);
        }
    }

    fn double_directory(&self, seen_depth: u32) -> TableResult<()> {
        let _dl = self.dir_lock.lock();
        let dir = self.dir_off();
        let depth = self.dir_depth(dir);
        if depth > seen_depth {
            return Ok(());
        }
        if depth >= MAX_DEPTH {
            return Err(TableError::CapacityExhausted);
        }
        let old_len = 1usize << depth;
        let new_len = old_len * 2;
        let dir_slot = self.pool.offset_of(&self.rootref().directory);
        let ticket = self.pool.prepare_alloc(8 + 8 * new_len, dir_slot)?;
        let new_dir = ticket.block;
        // SAFETY: fresh directory block.
        unsafe { (*self.pool.at::<AtomicU64>(new_dir)).store(depth as u64 + 1, Ordering::Relaxed) };
        for i in 0..old_len {
            let e = self.dir_entry(dir, i).load(Ordering::Acquire);
            for j in [2 * i, 2 * i + 1] {
                // SAFETY: entry j of the fresh directory.
                unsafe {
                    (*self.pool.at::<AtomicU64>(new_dir.add(8 + 8 * j as u64)))
                        .store(e, Ordering::Relaxed)
                };
            }
        }
        self.pool.persist(new_dir, 8 + 8 * new_len);
        self.pool.commit_alloc(ticket);
        self.pool.defer_free(dir, 8 + 8 * old_len);
        Ok(())
    }

    // ---- introspection ------------------------------------------------------

    pub fn global_depth(&self) -> u32 {
        self.dir_depth(self.dir_off())
    }

    pub fn segment_count(&self) -> usize {
        let mut n = 0;
        self.for_each_segment(|_| n += 1);
        n
    }

    fn slots_total(&self) -> u64 {
        let mut slots = 0;
        self.for_each_segment(|seg| slots += self.view(seg).capacity_slots());
        slots
    }

    pub fn pool(&self) -> &Arc<PmemPool> {
        &self.pool
    }
}

impl<K: Key> PmHashTable<K> for Cceh<K> {
    fn get(&self, key: &K) -> Option<u64> {
        Cceh::get(self, key)
    }

    fn insert(&self, key: &K, value: u64) -> TableResult<()> {
        Cceh::insert(self, key, value)
    }

    fn update(&self, key: &K, value: u64) -> bool {
        Cceh::update(self, key, value)
    }

    fn remove(&self, key: &K) -> bool {
        Cceh::remove(self, key)
    }

    // The batch ops use the trait's default single-pin loops; overriding
    // `pin` is what makes them amortize the epoch entry (pins nest).
    fn pin(&self) -> dash_common::Session<'_> {
        dash_common::Session::pinned(self.pool.epoch().pin())
    }

    // `scan` and `len_scan` use the trait defaults over this walk — the
    // full-walk pagination a table without a stable iteration order gets.
    fn for_each_kv(&self, f: &mut dyn FnMut(&K, u64)) {
        let _g = self.pool.epoch().pin();
        self.for_each_segment(|seg| {
            self.view(seg).for_each_record(|_, _, key_repr, value| {
                if let Some(key) = K::decode_stored(&self.pool, key_repr) {
                    f(&key, value);
                }
            });
        });
    }

    fn capacity_slots(&self) -> u64 {
        self.slots_total()
    }

    fn name(&self) -> &'static str {
        "CCEH"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dash_common::{negative_keys, uniform_keys, VarKey};
    use pmem::PoolConfig;

    fn new_table(pool_mb: usize, cfg: CcehConfig) -> Cceh<u64> {
        let pool = PmemPool::create(PoolConfig::with_size(pool_mb << 20)).unwrap();
        Cceh::create(pool, cfg).unwrap()
    }

    fn small() -> CcehConfig {
        CcehConfig { bucket_bits: 4, initial_depth: 1, ..Default::default() }
    }

    #[test]
    fn basic_crud() {
        let t = new_table(16, CcehConfig::default());
        t.insert(&5, 50).unwrap();
        assert_eq!(t.get(&5), Some(50));
        assert!(matches!(t.insert(&5, 51), Err(TableError::Duplicate)));
        assert!(t.update(&5, 52));
        assert_eq!(t.get(&5), Some(52));
        assert!(t.remove(&5));
        assert_eq!(t.get(&5), None);
    }

    #[test]
    fn grows_with_splits() {
        let t = new_table(64, small());
        let keys = uniform_keys(20_000, 1);
        for (i, k) in keys.iter().enumerate() {
            t.insert(k, i as u64).unwrap();
        }
        assert!(t.segment_count() > 2);
        for (i, k) in keys.iter().enumerate() {
            assert_eq!(t.get(k), Some(i as u64), "key {i}");
        }
        for k in negative_keys(5_000, 1) {
            assert_eq!(t.get(&k), None);
        }
    }

    #[test]
    fn load_factor_is_low_as_in_paper() {
        // Fig. 12: CCEH oscillates between ~35 % and ~43 %.
        let t = new_table(128, CcehConfig::default());
        let keys = uniform_keys(60_000, 3);
        for k in &keys {
            t.insert(k, 1).unwrap();
        }
        let lf = t.load_factor();
        assert!(
            (0.25..0.60).contains(&lf),
            "CCEH load factor should sit in the paper's band, got {lf}"
        );
    }

    #[test]
    fn var_keys_supported() {
        let pool = PmemPool::create(PoolConfig::with_size(64 << 20)).unwrap();
        let t: Cceh<VarKey> = Cceh::create(pool, small()).unwrap();
        let keys = dash_common::var_keys(3_000, 5, 16);
        for (i, k) in keys.iter().enumerate() {
            t.insert(k, i as u64).unwrap();
        }
        for (i, k) in keys.iter().enumerate() {
            assert_eq!(t.get(k), Some(i as u64));
        }
    }

    #[test]
    fn concurrent_mixed_ops() {
        let t = std::sync::Arc::new(new_table(128, CcehConfig::default()));
        let keys = std::sync::Arc::new(uniform_keys(16_000, 9));
        let threads = 8;
        let per = keys.len() / threads;
        std::thread::scope(|s| {
            for tid in 0..threads {
                let t = t.clone();
                let keys = keys.clone();
                s.spawn(move || {
                    for i in tid * per..(tid + 1) * per {
                        t.insert(&keys[i], i as u64).unwrap();
                    }
                });
            }
        });
        for (i, k) in keys.iter().enumerate() {
            assert_eq!(t.get(k), Some(i as u64));
        }
    }

    #[test]
    fn crash_reopen_scans_directory() {
        let cfg = PoolConfig { size: 64 << 20, shadow: true, ..Default::default() };
        let pool = PmemPool::create(cfg).unwrap();
        let t: Cceh<u64> = Cceh::create(pool.clone(), small()).unwrap();
        let keys = uniform_keys(8_000, 13);
        for (i, k) in keys.iter().enumerate() {
            t.insert(k, i as u64).unwrap();
        }
        let img = pool.crash_image();
        drop(t);
        let pool2 = PmemPool::open(img, cfg).unwrap();
        let before = pool2.stats();
        let t2: Cceh<u64> = Cceh::open(pool2.clone()).unwrap();
        let scan_reads = pool2.stats().since(&before).pm_reads;
        assert!(
            scan_reads as usize >= t2.segment_count(),
            "recovery must touch every segment"
        );
        for (i, k) in keys.iter().enumerate() {
            assert_eq!(t2.get(k), Some(i as u64), "key {i} lost");
        }
    }

    #[test]
    fn recovery_reads_scale_with_data_size() {
        // Table 1's shape: more data → more segments → more recovery work.
        let mut reads = Vec::new();
        for n in [2_000usize, 8_000] {
            let cfg = PoolConfig { size: 128 << 20, shadow: true, ..Default::default() };
            let pool = PmemPool::create(cfg).unwrap();
            let t: Cceh<u64> = Cceh::create(pool.clone(), small()).unwrap();
            for (i, k) in uniform_keys(n, 7).iter().enumerate() {
                t.insert(k, i as u64).unwrap();
            }
            let img = pool.crash_image();
            drop(t);
            let pool2 = PmemPool::open(img, cfg).unwrap();
            let before = pool2.stats();
            let _t2: Cceh<u64> = Cceh::open(pool2.clone()).unwrap();
            reads.push(pool2.stats().since(&before).pm_reads);
        }
        assert!(reads[1] > reads[0] * 2, "recovery work must grow with data: {reads:?}");
    }
}
