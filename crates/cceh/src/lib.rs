//! CCEH baseline: Cacheline-Conscious Extendible Hashing (Nam et al.,
//! FAST 2019), the primary comparator of the Dash paper.
//!
//! Faithful to the design the paper evaluates (§2.3, §6.1–6.2):
//!
//! * 16 KB segments of 64-byte single-cacheline buckets (4 records each);
//! * linear probing bounded to **four cachelines** — the short probe
//!   length that causes premature splits and the 35–43 % load factor of
//!   fig. 12;
//! * an MSB-indexed directory of segments with local/global depths;
//! * no allocation bitmap: an empty slot is the reserved key value 0
//!   (the restriction the paper calls out in §6.3);
//! * **pessimistic reader-writer locking** (the paper ports CCEH to PMDK
//!   rwlocks): every search acquires a read lock — a PM write — which is
//!   why CCEH's search throughput stops scaling in fig. 8;
//! * the PM-leak-on-split bug the paper found is fixed the same way the
//!   authors did: crash-safe allocate–activate via the pool (§6.1);
//! * recovery scans the whole directory (fixing depths and clearing
//!   locks), so recovery time grows linearly with data size (Table 1).

mod segment;
mod table;

pub use table::{Cceh, CcehConfig};
